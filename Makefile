# pciebench — reproduction of "Understanding PCIe performance for end
# host networking" (SIGCOMM 2018). CI runs exactly these targets; run
# them locally before pushing.

GO ?= go

.PHONY: all build test test-short race cover fmt fmt-check vet bench bench-smoke bench-compare serve-smoke chaos-smoke clean

all: build test

build:
	$(GO) build ./...

# Full test suite (figure/table shape checks included, ~1 min on one core).
test:
	$(GO) test ./...

# Seconds-fast subset: skips the heavyweight experiment sweeps.
test-short:
	$(GO) test -short ./...

# Full suite under the race detector; the parallel experiment engine
# must stay data-race free at any worker count.
race:
	$(GO) test -race ./...

# Coverage floor enforced by CI. Raise it as coverage grows; never
# lower it to get a change through. (Total was 84.3% when the gate
# landed; the margin absorbs run-to-run flutter from gated/short
# paths.)
COVER_BASELINE ?= 82.0

# Full suite with a statement-coverage profile; fails when total
# coverage drops below the baseline. CI uploads coverage.out.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t+0 < b+0) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% fell below the $(COVER_BASELINE)% baseline"; exit 1; }

fmt:
	gofmt -w .

# Fails if any file is not gofmt-clean (what CI runs).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full benchmark sweep (regenerates every figure as a testing.B target).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# BENCH_N tags the machine-readable benchmark report with the PR
# sequence number (commit count by default) so BENCH_<n>.json files
# track the perf trajectory across PRs.
BENCH_N ?= $(shell git rev-list --count HEAD 2>/dev/null || echo 0)

# One iteration of every benchmark: cheap CI smoke that the bench
# harness still runs end to end. Also writes BENCH_$(BENCH_N).json with
# the per-benchmark medians/bandwidths via cmd/benchjson.
bench-smoke:
	@$(GO) test -bench=. -benchtime=1x -run '^$$' . > bench-smoke.out || (cat bench-smoke.out; rm -f bench-smoke.out; exit 1)
	@cat bench-smoke.out
	@$(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json < bench-smoke.out
	@rm -f bench-smoke.out
	@echo "wrote BENCH_$(BENCH_N).json"

# Runs the smoke benchmarks and prints old-vs-new ns/op against the
# most recent committed BENCH_*.json, so a perf change can be eyeballed
# before committing a new report. Writes nothing.
bench-compare:
	@old=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$old" ]; then echo "no committed BENCH_*.json to compare against"; exit 1; fi; \
	$(GO) test -bench=. -benchtime=1x -run '^$$' . > bench-compare.out || \
		{ cat bench-compare.out; rm -f bench-compare.out; exit 1; }; \
	$(GO) run ./cmd/benchjson -compare $$old < bench-compare.out || \
		{ rm -f bench-compare.out; exit 1; }; \
	rm -f bench-compare.out

# End-to-end smoke of the sweep service (cmd/pcie-served): boots the
# server, drives the v1 HTTP API, checks served-vs-CLI byte identity
# and cache accounting, then shuts it down. What CI's "Service smoke"
# step runs.
serve-smoke:
	sh examples/serve/smoke.sh

# Chaos smoke of the service hardening: oversized body -> 413, slow
# client -> read-deadline disconnect, overrunning job -> "timeout"
# state. What CI's "Service chaos smoke" step runs.
chaos-smoke:
	sh examples/serve/chaos.sh

clean:
	rm -rf repro-out
	$(GO) clean ./...
