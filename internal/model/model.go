// Package model implements the paper's analytical PCIe model (§3): the
// effective bandwidth of a link as a function of transfer size, and the
// achievable throughput of NIC/driver designs expressed as per-packet
// PCIe transaction lists.
//
// Everything here is closed-form arithmetic over the wire-size
// accounting in internal/pcie; no simulation is involved. The simulator
// (internal/rc + internal/bench) measures the same quantities the hard
// way, and the two are cross-validated in the report tests.
package model

import (
	"fmt"

	"pciebench/internal/pcie"
)

// EffectiveWriteBandwidth returns the payload throughput in bits/s of a
// device issuing back-to-back DMA writes of sz bytes (Equation 1
// applied to the device→host direction).
func EffectiveWriteBandwidth(cfg pcie.LinkConfig, sz int) float64 {
	if sz <= 0 {
		return 0
	}
	wire := cfg.WriteBytes(sz)
	return cfg.TLPBandwidth() * float64(sz) / float64(wire)
}

// EffectiveReadBandwidth returns the payload throughput in bits/s of
// back-to-back DMA reads of sz bytes. The host→device direction carries
// the completions (Equation 3); the device→host direction carries only
// the requests, so completions bind.
func EffectiveReadBandwidth(cfg pcie.LinkConfig, sz int) float64 {
	if sz <= 0 {
		return 0
	}
	down := cfg.ReadCompletionBytes(sz)
	return cfg.TLPBandwidth() * float64(sz) / float64(down)
}

// EffectiveBidirBandwidth returns the per-direction payload throughput
// in bits/s when the device simultaneously reads and writes sz-byte
// transfers (one read plus one write per "packet pair", as a
// full-duplex NIC would). The device→host direction carries write data
// and read requests; the host→device direction carries read
// completions. This is the "Effective PCIe BW" curve of Figure 1.
func EffectiveBidirBandwidth(cfg pcie.LinkConfig, sz int) float64 {
	if sz <= 0 {
		return 0
	}
	up := cfg.WriteBytes(sz) + cfg.ReadRequestBytes(sz)
	down := cfg.ReadCompletionBytes(sz)
	binding := up
	if down > binding {
		binding = down
	}
	pairRate := cfg.TLPBandwidth() / 8 / float64(binding) // pairs per second
	return pairRate * float64(sz) * 8
}

// Ethernet framing overhead per frame: 7B preamble + 1B SFD + 12B
// minimum inter-frame gap. The 4B FCS is part of the frame size.
const ethernetOverhead = 20

// EthernetLineRate returns the payload throughput in bits/s of an
// Ethernet link running at linkRate bits/s carrying back-to-back frames
// of frameSz bytes (the "40G Ethernet" reference line of Figures 1/4).
func EthernetLineRate(linkRate float64, frameSz int) float64 {
	if frameSz < 64 {
		frameSz = 64 // minimum frame, padded
	}
	return linkRate * float64(frameSz) / float64(frameSz+ethernetOverhead)
}

// EthernetFrameRate returns frames/s at line rate.
func EthernetFrameRate(linkRate float64, frameSz int) float64 {
	if frameSz < 64 {
		frameSz = 64
	}
	return linkRate / 8 / float64(frameSz+ethernetOverhead)
}

// Direction of a PCIe transaction's initiator.
type Direction int

// Transaction kinds a NIC/driver interaction can use.
const (
	// DMARead: device reads host memory (descriptor fetch, TX packet).
	DMARead = iota
	// DMAWrite: device writes host memory (RX packet, descriptor
	// write-back, MSI interrupt).
	DMAWrite
	// MMIOWrite: driver writes a device register (doorbell/pointer).
	MMIOWrite
	// MMIORead: driver reads a device register (head pointer).
	MMIORead
)

// Role classifies an interaction by the ring mechanism it implements,
// so workload-level knobs (doorbell batching, interrupt moderation,
// descriptor-batch tuning) can retarget the right transactions without
// matching on names. RoleOther interactions are never rewritten.
type Role int

// Interaction roles.
const (
	// RoleOther marks design-specific interactions no generic knob
	// should touch.
	RoleOther Role = iota
	// RoleDoorbell: driver MMIO writes of ring tail pointers.
	RoleDoorbell
	// RoleDescFetch: device DMA reads of TX/freelist descriptors.
	RoleDescFetch
	// RoleWriteBack: device DMA writes of completion descriptors.
	RoleWriteBack
	// RoleInterrupt: MSI/MSI-X interrupt writes.
	RoleInterrupt
	// RoleHeadRead: driver MMIO reads of device head pointers (the
	// register reads poll-mode drivers avoid).
	RoleHeadRead
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleDoorbell:
		return "doorbell"
	case RoleDescFetch:
		return "desc-fetch"
	case RoleWriteBack:
		return "write-back"
	case RoleInterrupt:
		return "interrupt"
	case RoleHeadRead:
		return "head-read"
	}
	return "other"
}

// Interaction is one device/driver PCIe transaction associated with
// packet processing, amortized over PerPackets packets (batching).
type Interaction struct {
	Name  string
	Kind  int
	Bytes int
	// PerPackets is the amortization factor: the interaction occurs
	// once every PerPackets packets (1 = per packet, 40 = per batch of
	// 40). Must be >= 1.
	PerPackets float64
	// Role classifies the interaction for workload-level batching and
	// moderation knobs.
	Role Role
}

// wireBytes returns the (up, down) wire bytes of one occurrence.
func (ia Interaction) wireBytes(cfg pcie.LinkConfig) (up, down float64) {
	switch ia.Kind {
	case DMARead:
		return float64(cfg.ReadRequestBytes(ia.Bytes)), float64(cfg.ReadCompletionBytes(ia.Bytes))
	case DMAWrite:
		return float64(cfg.WriteBytes(ia.Bytes)), 0
	case MMIOWrite:
		return 0, float64(cfg.WriteBytes(ia.Bytes))
	case MMIORead:
		return float64(cfg.ReadCompletionBytes(ia.Bytes)), float64(cfg.ReadRequestBytes(ia.Bytes))
	}
	return 0, 0
}

// NIC is a NIC/driver design expressed as the per-packet PCIe
// transactions beyond the packet payload transfers themselves.
type NIC struct {
	Name string
	// TX lists the per-TX-packet interactions (besides the payload DMA
	// read).
	TX []Interaction
	// RX lists the per-RX-packet interactions (besides the payload DMA
	// write).
	RX []Interaction
}

// PerPacketWireBytes returns the total (up, down) wire bytes consumed
// per full-duplex packet pair (one TX + one RX of pktSz bytes),
// including payload transfers and all amortized interactions.
func (n NIC) PerPacketWireBytes(cfg pcie.LinkConfig, pktSz int) (up, down float64) {
	// Payload: TX is a DMA read, RX is a DMA write.
	up += float64(cfg.ReadRequestBytes(pktSz))
	down += float64(cfg.ReadCompletionBytes(pktSz))
	up += float64(cfg.WriteBytes(pktSz))
	for _, ia := range n.TX {
		u, d := ia.wireBytes(cfg)
		up += u / ia.PerPackets
		down += d / ia.PerPackets
	}
	for _, ia := range n.RX {
		u, d := ia.wireBytes(cfg)
		up += u / ia.PerPackets
		down += d / ia.PerPackets
	}
	return up, down
}

// Bandwidth returns the per-direction payload throughput in bits/s the
// design achieves for pktSz-byte packets: the packet-pair rate is bound
// by the busier link direction.
func (n NIC) Bandwidth(cfg pcie.LinkConfig, pktSz int) float64 {
	if pktSz <= 0 {
		return 0
	}
	up, down := n.PerPacketWireBytes(cfg, pktSz)
	binding := up
	if down > binding {
		binding = down
	}
	pairRate := cfg.TLPBandwidth() / 8 / binding
	return pairRate * float64(pktSz) * 8
}

// PacketRate returns full-duplex packet pairs per second for pktSz.
func (n NIC) PacketRate(cfg pcie.LinkConfig, pktSz int) float64 {
	if pktSz <= 0 {
		return 0
	}
	up, down := n.PerPacketWireBytes(cfg, pktSz)
	binding := up
	if down > binding {
		binding = down
	}
	return cfg.TLPBandwidth() / 8 / binding
}

// Descriptor and doorbell sizes used by the models (paper §3).
const (
	descBytes    = 16
	pointerBytes = 4
)

// SimpleNIC is the paper's strawman: one descriptor DMA per packet,
// per-packet doorbells, interrupts, and head-pointer reads (§3).
func SimpleNIC() NIC {
	return NIC{
		Name: "Simple NIC",
		TX: []Interaction{
			{"tail pointer write", MMIOWrite, pointerBytes, 1, RoleDoorbell},
			{"descriptor fetch", DMARead, descBytes, 1, RoleDescFetch},
			{"interrupt", DMAWrite, pointerBytes, 1, RoleInterrupt},
			{"head pointer read", MMIORead, pointerBytes, 1, RoleHeadRead},
		},
		RX: []Interaction{
			{"freelist tail write", MMIOWrite, pointerBytes, 1, RoleDoorbell},
			{"freelist descriptor fetch", DMARead, descBytes, 1, RoleDescFetch},
			{"RX descriptor write-back", DMAWrite, descBytes, 1, RoleWriteBack},
			{"interrupt", DMAWrite, pointerBytes, 1, RoleInterrupt},
			{"head pointer read", MMIORead, pointerBytes, 1, RoleHeadRead},
		},
	}
}

// Batching factors of the modern-NIC models, patterned on the Intel
// 82599 (Niantic): descriptor fetches in batches of up to 40,
// write-backs in batches of 8, interrupt moderation (§3).
const (
	descFetchBatch = 40
	writeBackBatch = 8
	intrModeration = 40
)

// ModernNICKernel models an optimized NIC with a conventional kernel
// driver: batched descriptor fetches and write-backs, moderated
// interrupts, amortized doorbells, but the driver still reads device
// registers and takes interrupts.
func ModernNICKernel() NIC {
	return NIC{
		Name: "Modern NIC (kernel driver)",
		TX: []Interaction{
			{"tail pointer write", MMIOWrite, pointerBytes, descFetchBatch, RoleDoorbell},
			{"descriptor batch fetch", DMARead, descBytes * descFetchBatch, descFetchBatch, RoleDescFetch},
			{"descriptor write-back", DMAWrite, descBytes * writeBackBatch, writeBackBatch, RoleWriteBack},
			{"interrupt", DMAWrite, pointerBytes, intrModeration, RoleInterrupt},
			{"head pointer read", MMIORead, pointerBytes, intrModeration, RoleHeadRead},
		},
		RX: []Interaction{
			{"freelist tail write", MMIOWrite, pointerBytes, descFetchBatch, RoleDoorbell},
			{"freelist batch fetch", DMARead, descBytes * descFetchBatch, descFetchBatch, RoleDescFetch},
			{"RX descriptor write-back", DMAWrite, descBytes * writeBackBatch, writeBackBatch, RoleWriteBack},
			{"interrupt", DMAWrite, pointerBytes, intrModeration, RoleInterrupt},
			{"head pointer read", MMIORead, pointerBytes, intrModeration, RoleHeadRead},
		},
	}
}

// ModernNICDPDK models the same NIC driven by a DPDK-style poll-mode
// driver: no interrupts and no device register reads — the driver polls
// the write-back descriptors in host memory instead (§3 footnote 6).
func ModernNICDPDK() NIC {
	return NIC{
		Name: "Modern NIC (DPDK driver)",
		TX: []Interaction{
			{"tail pointer write", MMIOWrite, pointerBytes, descFetchBatch, RoleDoorbell},
			{"descriptor batch fetch", DMARead, descBytes * descFetchBatch, descFetchBatch, RoleDescFetch},
			{"descriptor write-back", DMAWrite, descBytes * writeBackBatch, writeBackBatch, RoleWriteBack},
		},
		RX: []Interaction{
			{"freelist tail write", MMIOWrite, pointerBytes, descFetchBatch, RoleDoorbell},
			{"freelist batch fetch", DMARead, descBytes * descFetchBatch, descFetchBatch, RoleDescFetch},
			{"RX descriptor write-back", DMAWrite, descBytes * writeBackBatch, writeBackBatch, RoleWriteBack},
		},
	}
}

// Validate reports interaction-list errors (zero amortization would
// divide by zero).
func (n NIC) Validate() error {
	for _, list := range [][]Interaction{n.TX, n.RX} {
		for _, ia := range list {
			if ia.PerPackets < 1 {
				return fmt.Errorf("model: %s: interaction %q PerPackets %v < 1", n.Name, ia.Name, ia.PerPackets)
			}
			if ia.Bytes <= 0 {
				return fmt.Errorf("model: %s: interaction %q has no bytes", n.Name, ia.Name)
			}
		}
	}
	return nil
}
