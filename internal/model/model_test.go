package model

import (
	"testing"
	"testing/quick"

	"pciebench/internal/pcie"
)

func gbps(bits float64) float64 { return bits / 1e9 }

func TestEffectiveWriteBandwidth(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	// A 256B write moves 256 payload per 280 wire bytes.
	got := gbps(EffectiveWriteBandwidth(cfg, 256))
	want := gbps(cfg.TLPBandwidth()) * 256 / 280
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("256B write BW = %.2f, want %.2f", got, want)
	}
	if EffectiveWriteBandwidth(cfg, 0) != 0 {
		t.Error("0B write")
	}
}

func TestSawToothPattern(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	// Crossing an MPS boundary adds a header: BW(257) < BW(256).
	if EffectiveWriteBandwidth(cfg, 257) >= EffectiveWriteBandwidth(cfg, 256) {
		t.Error("no saw-tooth drop at MPS boundary for writes")
	}
	if EffectiveReadBandwidth(cfg, 257) >= EffectiveReadBandwidth(cfg, 256) {
		t.Error("no saw-tooth drop at MPS boundary for reads")
	}
	// Within a tooth, bandwidth rises with size.
	if EffectiveWriteBandwidth(cfg, 255) <= EffectiveWriteBandwidth(cfg, 128) {
		t.Error("bandwidth not rising within a tooth")
	}
}

func TestEffectiveBWMatchesPaperFigure1(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	// Paper §2: "PCIe protocol overheads reduce the usable bandwidth to
	// around 50 Gb/s" for large bidirectional transfers.
	bw := gbps(EffectiveBidirBandwidth(cfg, 1500))
	if bw < 48 || bw < 0 || bw > 53 {
		t.Errorf("1500B bidirectional effective BW = %.2f Gb/s, want ~50", bw)
	}
	// Small transfers suffer much more.
	small := gbps(EffectiveBidirBandwidth(cfg, 64))
	if small > 35 {
		t.Errorf("64B bidirectional BW = %.2f Gb/s, expected heavy overhead", small)
	}
}

func TestEthernetLineRate(t *testing.T) {
	// 1500B frames on 40G: 40 * 1500/1520 = 39.47 Gb/s.
	got := gbps(EthernetLineRate(40e9, 1500))
	if got < 39.4 || got > 39.5 {
		t.Errorf("1500B Ethernet = %.3f", got)
	}
	// Minimum frame clamp.
	if EthernetLineRate(40e9, 32) != EthernetLineRate(40e9, 64) {
		t.Error("sub-64B frames not clamped")
	}
	// 64B at 40G: 59.5M frames/s.
	fr := EthernetFrameRate(40e9, 64)
	if fr < 59e6 || fr > 60e6 {
		t.Errorf("64B frame rate = %.2fM", fr/1e6)
	}
}

func TestNICModelOrdering(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	simple, kernel, dpdk := SimpleNIC(), ModernNICKernel(), ModernNICDPDK()
	for _, sz := range []int{64, 128, 256, 512, 1024, 1500} {
		raw := EffectiveBidirBandwidth(cfg, sz)
		s := simple.Bandwidth(cfg, sz)
		kk := kernel.Bandwidth(cfg, sz)
		d := dpdk.Bandwidth(cfg, sz)
		// Figure 1 ordering: Effective >= DPDK >= kernel >= simple.
		if !(raw >= d && d >= kk && kk > s) {
			t.Errorf("sz %d: ordering violated: raw %.1f dpdk %.1f kernel %.1f simple %.1f",
				sz, gbps(raw), gbps(d), gbps(kk), gbps(s))
		}
	}
}

func TestSimpleNICCrossoverNear512(t *testing.T) {
	// Paper §2: the simple NIC "would only achieve 40Gb/s line rate
	// throughput for Ethernet frames larger than 512B".
	cfg := pcie.DefaultGen3x8()
	simple := SimpleNIC()
	if simple.Bandwidth(cfg, 256) >= EthernetLineRate(40e9, 256) {
		t.Error("simple NIC reaches 40G line rate at 256B; paper says it should not")
	}
	if simple.Bandwidth(cfg, 1024) < EthernetLineRate(40e9, 1024) {
		t.Error("simple NIC misses 40G line rate at 1024B; paper says it should reach it")
	}
	// The crossover is between 256B and 1024B, near 512B.
	crossed := false
	for sz := 256; sz <= 1024; sz += 8 {
		if simple.Bandwidth(cfg, sz) >= EthernetLineRate(40e9, sz) {
			if sz < 384 || sz > 768 {
				t.Errorf("crossover at %dB, want near 512B", sz)
			}
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("no crossover found")
	}
}

func TestModernNICsSustain40GAt64B(t *testing.T) {
	// Figure 1: both modern models stay above the simple NIC and the
	// DPDK driver clears 40G Ethernet for most sizes; at 64B even
	// modern NICs are below 40G line rate (line rate at 64B is 30.5
	// Gb/s payload).
	cfg := pcie.DefaultGen3x8()
	eth64 := EthernetLineRate(40e9, 64)
	dpdk := ModernNICDPDK().Bandwidth(cfg, 64)
	if gbps(dpdk) < 20 {
		t.Errorf("DPDK at 64B = %.1f Gb/s, implausibly low", gbps(dpdk))
	}
	_ = eth64
	// At 1500B both modern models exceed 40G Ethernet line rate.
	for _, m := range []NIC{ModernNICKernel(), ModernNICDPDK()} {
		if m.Bandwidth(cfg, 1500) < EthernetLineRate(40e9, 1500) {
			t.Errorf("%s below 40G line rate at 1500B", m.Name)
		}
	}
}

func TestPerPacketWireBytes(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	// Simple NIC at 512B, hand-computed:
	// TX: payload MRd up 24, CplD down 2*20+512=552; tail MMIO down 28;
	//     desc fetch up 24 down 36; intr up 28; head read down 24 up 24.
	// RX: payload MWr up 24*2+512=560; freelist tail down 28; freelist
	//     fetch up 24 down 36; desc wb up 40; intr up 28; head read
	//     down 24 up 24.
	up, down := SimpleNIC().PerPacketWireBytes(cfg, 512)
	wantUp := float64(24 + 24 + 28 + 24 + 560 + 24 + 40 + 28 + 24)
	wantDown := float64(552 + 28 + 36 + 24 + 28 + 36 + 24)
	if up != wantUp {
		t.Errorf("up = %v, want %v", up, wantUp)
	}
	if down != wantDown {
		t.Errorf("down = %v, want %v", down, wantDown)
	}
}

func TestValidate(t *testing.T) {
	for _, m := range []NIC{SimpleNIC(), ModernNICKernel(), ModernNICDPDK()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := NIC{Name: "bad", TX: []Interaction{{"x", DMARead, 16, 0, RoleOther}}}
	if err := bad.Validate(); err == nil {
		t.Error("PerPackets 0 accepted")
	}
	bad2 := NIC{Name: "bad2", RX: []Interaction{{"x", DMARead, 0, 1, RoleOther}}}
	if err := bad2.Validate(); err == nil {
		t.Error("0 bytes accepted")
	}
}

// Property: NIC bandwidth is always positive, below the raw effective
// bandwidth, and packet rate times size equals bandwidth.
func TestNICBandwidthBounds(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	nics := []NIC{SimpleNIC(), ModernNICKernel(), ModernNICDPDK()}
	f := func(s uint16, which uint8) bool {
		sz := int(s%2048) + 1
		n := nics[int(which)%len(nics)]
		bw := n.Bandwidth(cfg, sz)
		if bw <= 0 || bw > EffectiveBidirBandwidth(cfg, sz) {
			return false
		}
		rate := n.PacketRate(cfg, sz)
		return !(rate*float64(sz)*8-bw > 1 || bw-rate*float64(sz)*8 > 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZeroSizeEverywhere(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	if SimpleNIC().Bandwidth(cfg, 0) != 0 || SimpleNIC().PacketRate(cfg, 0) != 0 {
		t.Error("0-size packets should yield 0")
	}
	if EffectiveReadBandwidth(cfg, 0) != 0 || EffectiveBidirBandwidth(cfg, 0) != 0 {
		t.Error("0-size transfers should yield 0")
	}
}
