package topo_test

import (
	"reflect"
	"testing"

	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// Regression for the PR 8 open-loop caveat: coupled fabrics driven by
// the textual open-loop arrival forms ("poisson:", "rate:") must stay
// byte-identical to the serial build at every simulation worker count,
// including a count (7) that does not divide the endpoint count.
func TestOpenLoopCoupledArrivalIdentity(t *testing.T) {
	for _, spec := range []string{"poisson:2M:burst=4", "rate:2M:burst=4"} {
		arr, err := workload.ParseArrival(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.Config{Seed: 11, BufferBytes: 1 << 20, Arrival: arr, Queues: 2}
		build := func(w int) *topo.Fabric {
			sys, err := sysconf.ByName("NFP6000-BDW")
			if err != nil {
				t.Fatal(err)
			}
			fab, err := sys.Fabric(topo.Shape{Endpoints: 4}, sysconf.Options{
				Seed: 7, BufferSize: 1 << 20, SimWorkers: w,
			})
			if err != nil {
				t.Fatal(err)
			}
			return fab
		}
		ref, err := topo.RunWorkload(build(1), cfg, 120)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 7} {
			res, err := topo.RunWorkload(build(w), cfg, 120)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("arrival %q simworkers=%d diverged from serial", spec, w)
			}
		}
	}
}

// Probe: open-loop (Poisson) coupled fabric, serial vs linked builds.
func TestProbeOpenLoopCoupled(t *testing.T) {
	arr, err := workload.Poisson(2e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{Seed: 11, BufferBytes: 1 << 20, Arrival: arr, Queues: 2}
	build := func(w int, jitter bool) *topo.Fabric {
		sys, err := sysconf.ByName("NFP6000-BDW")
		if err != nil {
			t.Fatal(err)
		}
		fab, err := sys.Fabric(topo.Shape{Endpoints: 4}, sysconf.Options{
			Seed: 7, BufferSize: 1 << 20, NoJitter: !jitter, SimWorkers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fab
	}
	for _, jitter := range []bool{false, true} {
		ref, err := topo.RunWorkload(build(1, jitter), cfg, 120)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			res, err := topo.RunWorkload(build(w, jitter), cfg, 120)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("jitter=%v simworkers=%d diverged from serial (open-loop)", jitter, w)
			} else {
				t.Logf("jitter=%v simworkers=%d identical", jitter, w)
			}
		}
	}
}
