package topo

// This file computes the conservative-parallel partition of a Spec:
// which endpoints can run on independent event kernels with results
// byte-identical to the single-kernel build.
//
// Two endpoints must share a kernel whenever their simulated traffic
// can meet on mutable simulation state:
//
//   - the same switch (shared uplink arbitration and credit pools),
//   - the same socket (shared root-complex pipeline slots; a switched
//     endpoint ingresses at its switch's socket),
//   - the same buffer NUMA node (shared LLC occupancy in mem.System —
//     AccessFrom touches only the home node's state),
//   - the shared inter-socket bus, when the spec models one: every
//     endpoint whose buffer is remote to its ingress socket queues on
//     the one xbus resource, so all such endpoints couple.
//
// Two spec features serialize the whole fabric:
//
//   - an IOMMU: one translation cache and walker pool on every DMA
//     path, and
//   - root-complex jitter on any socket an endpoint uses: jitter draws
//     from the kernel's random source in global event order, which has
//     no island-local equivalent.
//
// Peer-to-peer BAR traffic cannot be seen statically; it is guarded at
// run time instead (rc rejects DMA that would cross domains).

// unionFind is a plain union-find over endpoint indices.
type unionFind []int

func newUnionFind(n int) unionFind {
	u := make(unionFind, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func (u unionFind) find(i int) int {
	for u[i] != i {
		u[i] = u[u[i]]
		i = u[i]
	}
	return i
}

func (u unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[rb] = ra
	}
}

// socketOf returns the socket index endpoint i's traffic ingresses at:
// its own for direct attachment, its switch's otherwise.
func (s Spec) socketOf(i int) int {
	ep := s.Endpoints[i]
	if ep.Switch == DirectAttach {
		return ep.Socket
	}
	return s.Switches[ep.Switch].Socket
}

// islandsOf partitions the spec's endpoints into simulation islands:
// groups whose traffic never meets, listed in first-endpoint order with
// each group's endpoints in ascending order. A single returned island
// means the spec cannot be parallelized and must build serially.
func islandsOf(spec Spec) [][]int {
	n := len(spec.Endpoints)
	all := func() [][]int {
		one := make([]int, n)
		for i := range one {
			one[i] = i
		}
		return [][]int{one}
	}
	if spec.IOMMU != nil {
		return all()
	}
	for i := range spec.Endpoints {
		if spec.Sockets[spec.socketOf(i)].Jitter != nil {
			return all()
		}
	}

	u := newUnionFind(n)
	bySwitch := map[int]int{}
	bySocket := map[int]int{}
	byNode := map[int]int{}
	xbusFirst := -1
	couple := func(m map[int]int, key, i int) {
		if first, ok := m[key]; ok {
			u.union(first, i)
		} else {
			m[key] = i
		}
	}
	for i, ep := range spec.Endpoints {
		if ep.Switch != DirectAttach {
			couple(bySwitch, ep.Switch, i)
		}
		sock := spec.socketOf(i)
		couple(bySocket, sock, i)
		couple(byNode, ep.BufferNode, i)
		if spec.Interconnect != nil && spec.Interconnect.Shared &&
			ep.BufferNode != spec.Sockets[sock].Node {
			if xbusFirst >= 0 {
				u.union(xbusFirst, i)
			} else {
				xbusFirst = i
			}
		}
	}

	var islands [][]int
	idx := map[int]int{}
	for i := 0; i < n; i++ {
		r := u.find(i)
		d, ok := idx[r]
		if !ok {
			d = len(islands)
			idx[r] = d
			islands = append(islands, nil)
		}
		islands[d] = append(islands[d], i)
	}
	return islands
}
