package topo

import "math/rand"

// This file computes the conservative-parallel partition of a Spec:
// which endpoints can run on independent event kernels with results
// byte-identical to the single-kernel build.
//
// Two endpoints land in the same island whenever their simulated
// traffic can meet on mutable simulation state:
//
//   - the same switch (shared uplink arbitration and credit pools),
//   - the same socket (shared root-complex pipeline slots; a switched
//     endpoint ingresses at its switch's socket),
//   - the same buffer NUMA node (shared LLC occupancy in mem.System —
//     AccessFrom touches only the home node's state),
//   - the shared inter-socket bus, when the spec models one: every
//     endpoint whose buffer is remote to its ingress socket queues on
//     the one xbus resource, so all such endpoints couple,
//   - a declared peer pairing (Spec.Peers): static P2P intent means
//     their BAR traffic must route inside one island's address map
//     instead of hitting the runtime cross-domain refusal,
//   - the same IOMMU translation unit: a global-scope unit sits on
//     every DMA path (one IO-TLB, one walker pool, one LRU clock), so
//     it couples all endpoints; per-socket units (VT-d DRHD scope)
//     are owned by their ingress socket, which the same-socket rule
//     already couples, so they add no edges of their own.
//
// A multi-endpoint island no longer forces a serial build: its
// endpoints get their own event kernels, the shared fabric state binds
// to a hub kernel, and traffic replays through the hub at window
// barriers in serial order (see buildLinked and workload's merge
// protocol). IOMMU state rides the same protocol — the unit binds to
// the kernel of the island owning it, and since every Translate on a
// coupled fabric happens during hub replay, TLB fills, LRU touches and
// walker occupancy evolve in exactly the serial schedule. Root-complex
// jitter does not serialize anything either — each island's sockets
// sample a dedicated random stream keyed by island id (islandRNG), so
// islands consume no shared randomness.
//
// Undeclared peer-to-peer BAR traffic cannot be seen statically; it is
// guarded at run time instead (rc rejects DMA that would cross
// domains).

// unionFind is a plain union-find over endpoint indices.
type unionFind []int

func newUnionFind(n int) unionFind {
	u := make(unionFind, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func (u unionFind) find(i int) int {
	for u[i] != i {
		u[i] = u[u[i]]
		i = u[i]
	}
	return i
}

func (u unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[rb] = ra
	}
}

// socketOf returns the socket index endpoint i's traffic ingresses at:
// its own for direct attachment, its switch's otherwise.
func (s Spec) socketOf(i int) int {
	ep := s.Endpoints[i]
	if ep.Switch == DirectAttach {
		return ep.Socket
	}
	return s.Switches[ep.Switch].Socket
}

// islandsOf partitions the spec's endpoints into simulation islands:
// groups whose traffic never meets, listed in first-endpoint order with
// each group's endpoints in ascending order. A single returned island
// means the spec cannot be parallelized and must build serially.
func islandsOf(spec Spec) [][]int {
	n := len(spec.Endpoints)
	u := newUnionFind(n)
	// A global-scope IOMMU is one mutable translation unit on every DMA
	// path: everything couples. Per-socket units need no edges here —
	// each is owned by exactly one ingress socket, and the bySocket
	// rule below already couples the endpoints sharing a socket.
	if spec.IOMMU != nil && !spec.perSocketIOMMU() {
		for i := 1; i < n; i++ {
			u.union(0, i)
		}
	}
	bySwitch := map[int]int{}
	bySocket := map[int]int{}
	byNode := map[int]int{}
	xbusFirst := -1
	couple := func(m map[int]int, key, i int) {
		if first, ok := m[key]; ok {
			u.union(first, i)
		} else {
			m[key] = i
		}
	}
	for i, ep := range spec.Endpoints {
		if ep.Switch != DirectAttach {
			couple(bySwitch, ep.Switch, i)
		}
		sock := spec.socketOf(i)
		couple(bySocket, sock, i)
		couple(byNode, ep.BufferNode, i)
		if spec.Interconnect != nil && spec.Interconnect.Shared &&
			ep.BufferNode != spec.Sockets[sock].Node {
			if xbusFirst >= 0 {
				u.union(xbusFirst, i)
			} else {
				xbusFirst = i
			}
		}
	}
	for _, pr := range spec.Peers {
		u.union(pr[0], pr[1])
	}

	var islands [][]int
	idx := map[int]int{}
	for i := 0; i < n; i++ {
		r := u.find(i)
		d, ok := idx[r]
		if !ok {
			d = len(islands)
			idx[r] = d
			islands = append(islands, nil)
		}
		islands[d] = append(islands[d], i)
	}
	return islands
}

// islandSeed derives island d's jitter-stream seed from the resolved
// spec seed: a splitmix64-style mix whose increment constant differs
// from runner.Seed's, so jitter streams never correlate with the
// per-endpoint workload streams. Only islands beyond the first use a
// derived stream — island 0's sockets keep the kernel stream, which
// preserves every degenerate and single-island build (and all goldens
// pinned before linked builds existed) byte for byte.
func islandSeed(seed int64, d int) int64 {
	z := uint64(seed) + uint64(d)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0xD1B54A32D192ED03
	}
	return int64(z)
}

// socketRNGs maps each socket to the jitter stream its island owns:
// nil (the kernel stream) for island 0 and for sockets no endpoint
// ingresses at, a stream derived from islandSeed otherwise — one
// shared stream per island, however many sockets it spans. Serial and
// linked builds use the same assignment, which is what keeps them
// byte-identical on jittery multi-island specs.
func socketRNGs(spec Spec, seed int64, islands [][]int) []*rand.Rand {
	rngs := make([]*rand.Rand, len(spec.Sockets))
	if len(islands) < 2 {
		return rngs
	}
	epIsle := make([]int, len(spec.Endpoints))
	for d, isl := range islands {
		for _, i := range isl {
			epIsle[i] = d
		}
	}
	perIsle := make([]*rand.Rand, len(islands))
	for i := range spec.Endpoints {
		s := spec.socketOf(i)
		d := epIsle[i]
		if d == 0 || spec.Sockets[s].Jitter == nil {
			continue
		}
		if perIsle[d] == nil {
			perIsle[d] = rand.New(rand.NewSource(islandSeed(seed, d)))
		}
		rngs[s] = perIsle[d]
	}
	return rngs
}
