package topo_test

import (
	"fmt"
	"reflect"
	"testing"

	"pciebench/internal/fault"
	"pciebench/internal/sim"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// buildFaulty builds an n-endpoint NFP6000-BDW fabric with the given
// fault config and simulation worker budget.
func buildFaulty(t *testing.T, n, workers int, seed int64, fc *fault.Config) *topo.Fabric {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{Endpoints: n}, sysconf.Options{
		Seed: seed, BufferSize: 1 << 20, SimWorkers: workers, Faults: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// The tentpole determinism property, randomized: fault-injected
// workload runs — BER replays, retrain events, mixed shapes and seeds,
// open and closed loop — are byte-identical (counters included) at
// every simulation worker count, because fault streams are keyed by
// (seed, endpoint, class) rather than by island or schedule.
func TestFaultWorkerIdentity(t *testing.T) {
	cases := []struct {
		endpoints int
		seed      int64
		fc        fault.Config
		arrival   string
	}{
		{2, 3, fault.Config{BER: 1e-5}, ""},
		{4, 17, fault.Config{BER: 1e-6}, ""},
		{4, 99, fault.Config{BER: 1e-5, RetrainMTBF: 50 * sim.Microsecond}, ""},
		{5, 7, fault.Config{BER: 1e-5}, "poisson:2M:burst=4"},
		{3, 23, fault.Config{RetrainMTBF: 20 * sim.Microsecond}, "rate:2M"},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			cfg := workload.Config{Seed: tc.seed + 1, BufferBytes: 1 << 20, Queues: 2}
			if tc.arrival != "" {
				arr, err := workload.ParseArrival(tc.arrival)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Arrival = arr
			}
			ref, err := topo.RunWorkload(buildFaulty(t, tc.endpoints, 1, tc.seed, &tc.fc), cfg, 150)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Faults == nil {
				t.Fatal("fault counters missing from result")
			}
			if tc.fc.BER > 0 && ref.Faults.Replays == 0 && ref.Faults.Retrains == 0 {
				t.Logf("warning: no fault events fired (weak case)")
			}
			for _, w := range []int{2, 4, 7} {
				res, err := topo.RunWorkload(buildFaulty(t, tc.endpoints, w, tc.seed, &tc.fc), cfg, 150)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, res) {
					t.Errorf("simworkers=%d diverged from serial (faults: ref=%+v got=%+v)",
						w, *ref.Faults, *res.Faults)
				}
			}
		})
	}
}

// Per-endpoint fault counters must sum to the aggregate, field by
// field — the accounting invariant behind the sweep metrics.
func TestFaultCountersSumConsistent(t *testing.T) {
	fc := &fault.Config{BER: 1e-5, RetrainMTBF: 80 * sim.Microsecond}
	res, err := topo.RunWorkload(buildFaulty(t, 4, 2, 17, fc),
		workload.Config{Seed: 5, BufferBytes: 1 << 20, Queues: 1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("aggregate counters missing")
	}
	var sum fault.Counters
	events := false
	for i, ep := range res.Endpoints {
		if ep.Faults == nil {
			t.Fatalf("endpoint %d counters missing", i)
		}
		sum.Add(*ep.Faults)
		events = events || !ep.Faults.Zero()
	}
	if !events {
		t.Error("no endpoint recorded any fault event at BER 1e-5")
	}
	if sum != *res.Faults {
		t.Errorf("per-endpoint sum %+v != aggregate %+v", sum, *res.Faults)
	}
}

// Zero-fault configs must not allocate fault state at all: the
// omitempty JSON contract and cache-key stability both depend on it.
func TestNoFaultsNoCounters(t *testing.T) {
	res, err := topo.RunWorkload(buildFaulty(t, 2, 1, 3, nil),
		workload.Config{Seed: 5, BufferBytes: 1 << 20, Queues: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Errorf("fault-free run attached aggregate counters: %+v", *res.Faults)
	}
	for i, ep := range res.Endpoints {
		if ep.Faults != nil {
			t.Errorf("fault-free run attached counters to endpoint %d", i)
		}
	}
}
