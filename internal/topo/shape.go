package topo

import (
	"fmt"
	"strconv"
	"strings"

	"pciebench/internal/dll"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

// Shape is the coarse topology selector the sweep engine and CLI
// expose: how many endpoints a system hosts, whether they share a
// switch uplink, and which socket(s) they attach to. sysconf expands a
// Shape against a Table-1 system's calibration into a full Spec.
type Shape struct {
	// Endpoints is the device count (0 and 1 both mean one).
	Endpoints int
	// Switch, when non-nil, funnels every endpoint through one switch
	// whose shared uplink has this link configuration.
	Switch *pcie.LinkConfig
	// Placement selects the socket(s) of directly attached endpoints:
	// "" or a socket index attaches all to that socket; "split"
	// round-robins endpoints across the system's sockets (requires a
	// multi-node system and no switch).
	Placement string
	// LocalBuffers homes each endpoint's DMA buffer on its own
	// socket's NUMA node instead of one shared node (overriding any
	// explicit buffer-node option). Besides modeling the NUMA-aware
	// driver layout, this decouples the endpoints' memory state, which
	// lets a split-socket fabric partition into parallel simulation
	// islands.
	LocalBuffers bool
}

// Degenerate reports whether the shape is the paper's single-device
// form, which must build byte-identically to the pre-topology code.
func (sh Shape) Degenerate() bool {
	return sh.Endpoints <= 1 && sh.Switch == nil && (sh.Placement == "" || sh.Placement == "0") &&
		!sh.LocalBuffers
}

// Count returns the endpoint count with the default applied.
func (sh Shape) Count() int {
	if sh.Endpoints <= 1 {
		return 1
	}
	return sh.Endpoints
}

// Validate checks the shape against a system with nodes NUMA nodes.
func (sh Shape) Validate(nodes int) error {
	if sh.Endpoints < 0 {
		return fmt.Errorf("topo: endpoint count %d", sh.Endpoints)
	}
	if sh.Endpoints > 64 {
		return fmt.Errorf("topo: endpoint count %d exceeds 64", sh.Endpoints)
	}
	switch sh.Placement {
	case "", "split":
		if sh.Placement == "split" {
			if nodes < 2 {
				return fmt.Errorf("topo: split placement needs a multi-socket system")
			}
			if sh.Switch != nil {
				return fmt.Errorf("topo: split placement requires direct attachment, not a switch")
			}
		}
	default:
		n, err := strconv.Atoi(sh.Placement)
		if err != nil || n < 0 {
			return fmt.Errorf("topo: placement %q (want a socket index or \"split\")", sh.Placement)
		}
		if n >= nodes {
			return fmt.Errorf("topo: socket %d outside the %d-socket system", n, nodes)
		}
	}
	return nil
}

// SocketOf returns the socket index endpoint i attaches to (or, below
// a switch, the socket the switch uplink uses).
func (sh Shape) SocketOf(i, nodes int) int {
	switch sh.Placement {
	case "":
		return 0
	case "split":
		return i % nodes
	default:
		n, _ := strconv.Atoi(sh.Placement)
		return n
	}
}

// ParseSwitch parses a sweep/CLI switch selector: "none"/"off" mean no
// switch; "on"/"default" the paper's Gen3 x8 uplink; "gen<G>x<L>"
// (e.g. "gen3x8", "gen4x16") a specific uplink generation and width.
func ParseSwitch(v string) (*pcie.LinkConfig, error) {
	s := strings.ToLower(strings.TrimSpace(v))
	switch s {
	case "none", "off", "false", "no":
		return nil, nil
	case "on", "default", "true", "yes":
		l := pcie.DefaultGen3x8()
		return &l, nil
	}
	rest, ok := strings.CutPrefix(s, "gen")
	if !ok {
		return nil, fmt.Errorf("topo: switch %q (want none, on, or gen<G>x<L>)", v)
	}
	genStr, laneStr, ok := strings.Cut(rest, "x")
	if !ok {
		return nil, fmt.Errorf("topo: switch %q (want none, on, or gen<G>x<L>)", v)
	}
	gen, err1 := strconv.Atoi(genStr)
	lanes, err2 := strconv.Atoi(laneStr)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("topo: switch %q (want none, on, or gen<G>x<L>)", v)
	}
	l := pcie.DefaultGen3x8()
	l.Gen = pcie.Generation(gen)
	l.Lanes = lanes
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("topo: switch %q: %w", v, err)
	}
	return &l, nil
}

// Default switch timing: commodity PCIe switches forward TLPs
// cut-through in ~150 ns port to port, with short uplink traces and
// receiver buffers that drain within tens of nanoseconds.
const (
	DefaultSwitchForwardLatency = 150 * sim.Nanosecond
	DefaultSwitchWireDelay      = 25 * sim.Nanosecond
	DefaultSwitchDrainLatency   = 50 * sim.Nanosecond
)

// DefaultSwitch returns a SwitchSpec with the default forwarding
// timing and flow-control windows for the given shared uplink.
func DefaultSwitch(uplink pcie.LinkConfig, socket int) SwitchSpec {
	return SwitchSpec{
		Socket:         socket,
		Uplink:         uplink,
		WireDelay:      DefaultSwitchWireDelay,
		ForwardLatency: DefaultSwitchForwardLatency,
		DrainLatency:   DefaultSwitchDrainLatency,
		UpCredits:      DefaultUpCredits(),
		DownCredits:    DefaultDownCredits(),
	}
}

// DefaultUpCredits is a root-port-class receiver advertisement toward
// the switch: 64 posted headers with 16 KB of posted data, 64
// non-posted headers, infinite completions (the transmitter is the
// switch; completions flow the other way).
func DefaultUpCredits() rc.CreditLimits {
	return rc.CreditLimits{
		P:  dll.Credits{Hdr: 64, Data: 1024},
		NP: dll.Credits{Hdr: 64, Data: dll.Infinite},
	}
}

// DefaultDownCredits is the endpoint-facing direction: endpoints must
// advertise infinite completion credits per the PCIe spec; host MMIO
// requests get modest posted/non-posted windows.
func DefaultDownCredits() rc.CreditLimits {
	return rc.CreditLimits{
		P:  dll.Credits{Hdr: 32, Data: 512},
		NP: dll.Credits{Hdr: 32, Data: dll.Infinite},
	}
}
