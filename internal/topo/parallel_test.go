package topo_test

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pciebench/internal/sim"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// splitFabric builds the canonical partitionable topology: endpoints
// round-robined across the sockets of a two-node system, each with a
// socket-local buffer, no jitter.
func splitFabric(t *testing.T, endpoints, simWorkers int) *topo.Fabric {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(
		topo.Shape{Endpoints: endpoints, Placement: "split", LocalBuffers: true},
		sysconf.Options{Seed: 7, BufferSize: 1 << 20, NoJitter: true, SimWorkers: simWorkers},
	)
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// TestParallelFabricByteIdentical is the headline tentpole contract: a
// partitioned fabric reproduces the serial build's workload results
// byte for byte at every worker count.
func TestParallelFabricByteIdentical(t *testing.T) {
	cfg := workload.Config{Seed: 11, BufferBytes: 1 << 20}
	serial := splitFabric(t, 4, 1)
	if serial.Parallel() {
		t.Fatalf("simworkers=1 built %d islands, want a serial fabric", len(serial.Islands))
	}
	ref, err := topo.RunWorkload(serial, cfg, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		fab := splitFabric(t, 4, w)
		if !fab.Parallel() {
			t.Fatalf("simworkers=%d did not partition the split fabric", w)
		}
		want := [][]int{{0, 2}, {1, 3}}
		if !reflect.DeepEqual(fab.Islands, want) {
			t.Fatalf("islands %v, want %v", fab.Islands, want)
		}
		// Each island holds two endpoints coupled by a shared socket, so
		// the linked build gives every member its own kernel and routes
		// the shared fabric through a hub per island.
		if len(fab.Coupled) != 2 ||
			!reflect.DeepEqual(fab.Coupled[0].Endpoints, []int{0, 2}) ||
			!reflect.DeepEqual(fab.Coupled[1].Endpoints, []int{1, 3}) {
			t.Fatalf("coupled groups %+v, want islands {0,2} and {1,3}", fab.Coupled)
		}
		kset := map[*sim.Kernel]bool{}
		for i := range fab.Endpoints {
			kset[fab.EndpointKernel(i)] = true
		}
		if len(kset) != len(fab.Endpoints) {
			t.Fatalf("coupled members share kernels: %d distinct of %d", len(kset), len(fab.Endpoints))
		}
		res, err := topo.RunWorkload(fab, cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("simworkers=%d diverged from the serial build:\nref %+v\ngot %+v", w, ref, res)
		}
	}
}

// TestParallelFabricGolden pins a partitioned run to a committed
// golden, so drift in the parallel path is caught even if serial and
// parallel drift together. Regenerate with
// `go test ./internal/topo -run ParallelFabricGolden -update`.
func TestParallelFabricGolden(t *testing.T) {
	fab := splitFabric(t, 4, 4)
	res, err := topo.RunWorkload(fab, workload.Config{Seed: 11, BufferBytes: 1 << 20}, 400)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "parallel.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("partitioned workload drifted from %s (rerun with -update if intended)\ngot:\n%s", path, got)
	}
}

// manyIslandSpec derives a many-socket spec from the BDW calibration:
// sockets NUMA nodes, endpoints round-robined across them with
// socket-local buffers, so the partitioner yields min(sockets,
// endpoints) islands.
func manyIslandSpec(t *testing.T, sockets, endpoints int, seed int64, simWorkers int) topo.Spec {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sys.TopoSpec(
		topo.Shape{Endpoints: 2, Placement: "split", LocalBuffers: true},
		sysconf.Options{Seed: seed, BufferSize: 1 << 20, NoJitter: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec.Mem.Nodes = sockets
	base := spec.Sockets[0]
	spec.Sockets = nil
	for i := 0; i < sockets; i++ {
		s := base
		s.Node = i
		spec.Sockets = append(spec.Sockets, s)
	}
	ep0 := spec.Endpoints[0]
	spec.Endpoints = nil
	for i := 0; i < endpoints; i++ {
		ep := ep0
		ep.Name = ""
		ep.Socket = i % sockets
		ep.BufferNode = i % sockets
		spec.Endpoints = append(spec.Endpoints, ep)
	}
	spec.SimWorkers = simWorkers
	return spec
}

func runSpecWorkload(t *testing.T, spec topo.Spec, cfg workload.Config, pairs int) (*topo.Fabric, *workload.MultiResult) {
	t.Helper()
	fab, err := topo.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.RunWorkload(fab, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return fab, res
}

// TestPropertyParallelFabricInvariance randomizes the topology (socket
// count, endpoint count, seeds, queue counts) and checks that every
// worker count reproduces the serial result exactly.
func TestPropertyParallelFabricInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		sockets := 2 + rng.Intn(7)         // 2..8
		endpoints := sockets + rng.Intn(5) // >= sockets, so every island is populated
		seed := int64(1 + rng.Intn(1000))
		cfg := workload.Config{
			Seed:        int64(1 + rng.Intn(1000)),
			Queues:      1 + rng.Intn(2),
			BufferBytes: 1 << 20,
		}
		pairs := 100 + rng.Intn(150)

		_, ref := runSpecWorkload(t, manyIslandSpec(t, sockets, endpoints, seed, 1), cfg, pairs)
		for _, w := range []int{2, 4, 7} {
			fab, res := runSpecWorkload(t, manyIslandSpec(t, sockets, endpoints, seed, w), cfg, pairs)
			if len(fab.Islands) != sockets {
				t.Fatalf("trial %d: %d islands from %d sockets", trial, len(fab.Islands), sockets)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("trial %d (sockets=%d endpoints=%d workers=%d): parallel run diverged", trial, sockets, endpoints, w)
			}
		}
	}
}

// TestParallelFabric64Endpoints scales the identity check to the
// largest supported shape: 64 endpoints over 8 sockets (8 islands of
// 8), serial vs 4 workers.
func TestParallelFabric64Endpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("64-endpoint fabric is slow; skipped with -short")
	}
	cfg := workload.Config{Seed: 3, BufferBytes: 1 << 20}
	_, ref := runSpecWorkload(t, manyIslandSpec(t, 8, 64, 5, 1), cfg, 60)
	fab, res := runSpecWorkload(t, manyIslandSpec(t, 8, 64, 5, 4), cfg, 60)
	if len(fab.Islands) != 8 || len(fab.Islands[0]) != 8 {
		t.Fatalf("expected 8 islands of 8, got %v", fab.Islands)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Fatal("64-endpoint parallel run diverged from serial")
	}
}

// TestParallelFabricRejectsCrossDomainTraffic pins the guard rails:
// peer-to-peer benchmarks refuse partitioned fabrics, and a raw DMA
// into another island's (mirrored) BAR window is rejected at the
// routing boundary rather than misrouted to host memory.
func TestParallelFabricRejectsCrossDomainTraffic(t *testing.T) {
	fab := splitFabric(t, 4, 4)
	if _, err := topo.RunP2P(fab, topo.P2PDirect, 256, 50); err == nil || !strings.Contains(err.Error(), "simworkers=1") {
		t.Fatalf("p2p on a partitioned fabric: err %v, want a serial-rebuild hint", err)
	}
	// Endpoints 0 and 1 sit on different islands; endpoint 1's BAR is
	// mirrored into island 0's router.
	addr, err := fab.BARAddr(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep0 := fab.Endpoints[0]
	if _, err := ep0.Port.DMAWrite(fab.EndpointKernel(0).Now(), addr, 64); err == nil || !strings.Contains(err.Error(), "crosses simulation domains") {
		t.Fatalf("cross-domain peer write: err %v, want a domain-crossing rejection", err)
	}
	if _, err := ep0.Port.DMARead(fab.EndpointKernel(0).Now(), addr, 64); err == nil || !strings.Contains(err.Error(), "crosses simulation domains") {
		t.Fatalf("cross-domain peer read: err %v, want a domain-crossing rejection", err)
	}
	// Same-island peer traffic (0 -> 2) still works.
	addr02, err := fab.BARAddr(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep0.Port.DMAWrite(fab.EndpointKernel(0).Now(), addr02, 64); err != nil {
		t.Fatalf("same-island peer write failed: %v", err)
	}
}

// TestParallelFallbacks pins the partitioning policy edges: a
// single-endpoint shape has nothing to split and stays serial — while
// jitter, shared buffer nodes, shared switches and IOMMU translation
// no longer force a serial build (jitter draws a per-island stream;
// coupled islands replay through a hub; a global-scope IOMMU binds to
// the hub while per-socket units ride their socket's island).
func TestParallelFallbacks(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	build := func(opt sysconf.Options, shape topo.Shape) *topo.Fabric {
		t.Helper()
		fab, err := sys.Fabric(shape, opt)
		if err != nil {
			t.Fatal(err)
		}
		return fab
	}
	shape := topo.Shape{Endpoints: 4, Placement: "split", LocalBuffers: true}
	// A global-scope IOMMU sits on every DMA path: everyone couples into
	// one island, which still parallelizes through the hub.
	if fab := build(sysconf.Options{SimWorkers: 4, NoJitter: true, IOMMU: true, BufferSize: 1 << 20}, shape); !fab.Parallel() || len(fab.Coupled) != 1 {
		t.Error("global-scope IOMMU fabric did not build one coupled island")
	} else if got := len(fab.Coupled[0].Endpoints); got != 4 {
		t.Errorf("global-scope IOMMU coupled group holds %d endpoints, want 4", got)
	}
	// Per-socket units add no coupling of their own: the split shape
	// partitions along sockets exactly as it does without an IOMMU.
	perSock := sysconf.Options{SimWorkers: 4, NoJitter: true, IOMMU: true,
		IOMMUScope: topo.IOMMUScopePerSocket, BufferSize: 1 << 20}
	if fab := build(perSock, shape); !reflect.DeepEqual(fab.Islands, [][]int{{0, 2}, {1, 3}}) {
		t.Errorf("per-socket IOMMU islands %v, want {0,2} and {1,3}", fab.Islands)
	} else if got := len(fab.IOMMUUnits()); got != 2 {
		t.Errorf("per-socket IOMMU fabric has %d units, want one per socket (2)", got)
	}
	if fab := build(sysconf.Options{SimWorkers: 4, BufferSize: 1 << 20}, shape); !fab.Parallel() {
		t.Error("jittery split fabric stayed serial; each island owns its jitter stream")
	}
	if fab := build(sysconf.Options{SimWorkers: 4, NoJitter: true}, topo.Shape{}); fab.Parallel() {
		t.Error("single-endpoint fabric partitioned")
	}
	// Shared buffer node couples everything into one island — which the
	// linked build still parallelizes, replaying through a hub.
	noLocal := topo.Shape{Endpoints: 4, Placement: "split"}
	if fab := build(sysconf.Options{SimWorkers: 4, NoJitter: true, BufferSize: 1 << 20}, noLocal); !fab.Parallel() || len(fab.Coupled) != 1 {
		t.Error("shared-buffer-node fabric did not build one coupled island")
	}
	// A switch funnels everyone through one uplink: one island, one hub.
	sw := shapeLink()
	swShape := topo.Shape{Endpoints: 4, Switch: sw, LocalBuffers: true}
	if fab := build(sysconf.Options{SimWorkers: 4, NoJitter: true, BufferSize: 1 << 20}, swShape); !fab.Parallel() || len(fab.Coupled) != 1 {
		t.Error("switched fabric did not build one coupled island")
	}
}
