package topo_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pciebench/internal/fault"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// iommuFabric builds a split-socket NFP6000-BDW fabric with every DMA
// translated through the IOMMU under the given unit scope. Jitter stays
// on: translation rides the same replay protocol as the rest of the
// fabric traffic, so determinism must hold on the jittery path too.
func iommuFabric(t *testing.T, endpoints, workers int, scope string, fc *fault.Config) *topo.Fabric {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(
		topo.Shape{Endpoints: endpoints, Placement: "split", LocalBuffers: true},
		sysconf.Options{
			Seed: 7, BufferSize: 1 << 20, SimWorkers: workers,
			IOMMU: true, IOMMUScope: scope, Faults: fc,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// iommuStats sums hit/miss/fault counters over a fabric's translation
// units: identical sums mean the IO-TLB and walker state evolved in the
// serial schedule regardless of how the fabric was partitioned.
func iommuStats(f *topo.Fabric) [3]uint64 {
	var s [3]uint64
	for _, u := range f.IOMMUUnits() {
		s[0] += u.Hits
		s[1] += u.Misses
		s[2] += u.Faults
	}
	return s
}

// TestIOMMUFabricWorkerIdentity is the tentpole determinism property
// for translated fabrics: under both unit scopes — per-socket DRHD
// units riding their island's kernel, and one global unit bound to the
// hub — jittery, fault-injected workload runs are byte-identical at
// every worker count, translation counters included.
func TestIOMMUFabricWorkerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		endpoints := 2 + rng.Intn(5) // 2..6
		cfg := workload.Config{
			Seed:        int64(1 + rng.Intn(1000)),
			Queues:      1 + rng.Intn(2),
			BufferBytes: 1 << 20,
		}
		pairs := 100 + rng.Intn(100)
		var fc *fault.Config
		if trial%2 == 1 {
			fc = &fault.Config{BER: 1e-5}
		}
		for _, scope := range []string{topo.IOMMUScopeGlobal, topo.IOMMUScopePerSocket} {
			t.Run(fmt.Sprintf("trial%d-%s", trial, scope), func(t *testing.T) {
				serial := iommuFabric(t, endpoints, 1, scope, fc)
				ref, err := topo.RunWorkload(serial, cfg, pairs)
				if err != nil {
					t.Fatal(err)
				}
				refStats := iommuStats(serial)
				for _, w := range []int{2, 4, 7} {
					fab := iommuFabric(t, endpoints, w, scope, fc)
					if !fab.Parallel() {
						t.Fatalf("workers=%d: translated fabric stayed serial", w)
					}
					res, err := topo.RunWorkload(fab, cfg, pairs)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, res) {
						t.Fatalf("workers=%d (endpoints=%d faults=%v): parallel run diverged from serial",
							w, endpoints, fc != nil)
					}
					if got := iommuStats(fab); got != refStats {
						t.Fatalf("workers=%d: translation counters %v, serial %v", w, got, refStats)
					}
				}
			})
		}
	}
}

// iommuGolden pins one translated partitioned run to a committed golden
// file. Regenerate with `go test ./internal/topo -run IOMMUGolden -update`.
func iommuGolden(t *testing.T, scope, file string) {
	t.Helper()
	fab := iommuFabric(t, 4, 4, scope, nil)
	res, err := topo.RunWorkload(fab, workload.Config{Seed: 11, BufferBytes: 1 << 20}, 400)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("translated workload drifted from %s (rerun with -update if intended)\ngot:\n%s", path, got)
	}
}

// TestIOMMUGoldenSplit pins the per-socket-scope partitioned run: two
// islands, each with its own translation unit on its own kernel.
func TestIOMMUGoldenSplit(t *testing.T) {
	iommuGolden(t, topo.IOMMUScopePerSocket, "iommu_split.golden.json")
}

// TestIOMMUGoldenShared pins the global-scope run: one shared unit
// bound to the hub kernel of the single coupled island.
func TestIOMMUGoldenShared(t *testing.T) {
	iommuGolden(t, topo.IOMMUScopeGlobal, "iommu_shared.golden.json")
}
