package topo

import (
	"pciebench/internal/fault"
	"pciebench/internal/sim"
	"pciebench/internal/workload"
)

// RunWorkload drives cfg's traffic on every endpoint of the fabric
// concurrently: each endpoint's ring region is host-warmed, its port
// becomes the workload path and its buffer base the queue region, then
// the workload engine executes them all — on the one shared kernel of
// a serial fabric, or island by island on up to f.SimWorkers()
// goroutines for a partitioned one, with byte-identical results at
// every worker count. Coupled islands (shared switch, socket, buffer
// node or declared peering) hand their hub kernels and lookahead
// windows to workload.RunMultiCoupled, which replays their traffic
// through the shared fabric at window barriers in serial order. This
// is the single assembly the sweep engine, the CLI and the examples
// share.
func RunWorkload(f *Fabric, cfg workload.Config, pairsEach int) (*workload.MultiResult, error) {
	paths := make([]workload.Path, len(f.Endpoints))
	bases := make([]uint64, len(f.Endpoints))
	kernels := make([]*sim.Kernel, len(f.Endpoints))
	for i, ep := range f.Endpoints {
		ep.Buffer.WarmHost(0, cfg.Footprint())
		paths[i] = ep.Port
		bases[i] = ep.Buffer.DMAAddr(0)
		kernels[i] = f.EndpointKernel(i)
	}
	var res *workload.MultiResult
	var err error
	if len(f.Coupled) > 0 {
		groups := make([]workload.Coupled, len(f.Coupled))
		for gi, g := range f.Coupled {
			groups[gi] = workload.Coupled{
				Hub:       g.Hub,
				Lookahead: g.Lookahead,
				Endpoints: g.Endpoints,
			}
		}
		res, err = workload.RunMultiCoupled(kernels, groups, paths, bases, cfg, pairsEach, f.SimWorkers())
	} else {
		res, err = workload.RunMultiKernels(kernels, paths, bases, cfg, pairsEach, f.SimWorkers())
	}
	if err == nil {
		attachFaults(f, res)
	}
	return res, err
}

// attachFaults snapshots each endpoint's fault counters into the
// result (and their sum into the aggregate). Fault-free fabrics have
// no counter blocks, so the result is untouched — and its JSON stays
// byte-identical to the pre-fault encoding.
func attachFaults(f *Fabric, res *workload.MultiResult) {
	if !f.Spec.Faults.Enabled() {
		return
	}
	agg := &fault.Counters{}
	for i := range res.Endpoints {
		ep := f.Endpoints[res.Endpoints[i].Endpoint]
		if ep.Faults == nil {
			continue
		}
		c := *ep.Faults
		res.Endpoints[i].Faults = &c
		agg.Add(c)
	}
	res.Faults = agg
}
