package topo

import (
	"pciebench/internal/workload"
)

// RunWorkload drives cfg's traffic on every endpoint of the fabric
// concurrently: each endpoint's ring region is host-warmed, its port
// becomes the workload path and its buffer base the queue region, then
// workload.RunMulti executes them all on the shared kernel. This is
// the single assembly the sweep engine, the CLI and the examples share.
func RunWorkload(f *Fabric, cfg workload.Config, pairsEach int) (*workload.MultiResult, error) {
	paths := make([]workload.Path, len(f.Endpoints))
	bases := make([]uint64, len(f.Endpoints))
	for i, ep := range f.Endpoints {
		ep.Buffer.WarmHost(0, cfg.Footprint())
		paths[i] = ep.Port
		bases[i] = ep.Buffer.DMAAddr(0)
	}
	return workload.RunMulti(f.Kernel, paths, bases, cfg, pairsEach)
}
