// Package topo describes and assembles composable PCIe topologies: the
// sockets, switches and endpoints of a host, wired into a runnable
// fabric of simulator components.
//
// The paper measures one adapter on one link into one root-complex
// port. Its NUMA results (§6.4) and its host-interface bottleneck
// analysis only generalize if the simulator can express *topologies*:
// several endpoints contending for a shared upstream link, multi-socket
// hosts routing DMA across the inter-socket interconnect, and
// SmartNIC-style peer-to-peer transfers between devices. A Spec is the
// declarative description of such a machine; Build turns it into a
// Fabric — one simulation kernel, one memory system, a multi-port
// internal/rc router, and one DMA engine plus host buffer per
// endpoint.
//
// The degenerate one-socket, one-endpoint, no-switch Spec reproduces
// the paper's Table-1 systems exactly: internal/sysconf builds those
// systems through this package, and the byte-identity tests pin the
// equivalence.
package topo

import (
	"fmt"
	"strings"

	"pciebench/internal/device"
	"pciebench/internal/fault"
	"pciebench/internal/hostif"
	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

// DirectAttach marks an endpoint as plugged straight into its socket's
// root port rather than below a switch.
const DirectAttach = -1

// SocketSpec calibrates one CPU socket: its root-complex pipeline and
// the NUMA node its memory controller owns.
type SocketSpec struct {
	Node        int
	PipeLatency sim.Time
	PipeSlots   int
	Jitter      rc.Jitter
}

// SwitchSpec describes a PCIe switch: the socket its shared uplink
// plugs into and the uplink's timing and flow-control parameters.
type SwitchSpec struct {
	Socket         int
	Uplink         pcie.LinkConfig
	WireDelay      sim.Time
	ForwardLatency sim.Time
	DrainLatency   sim.Time
	UpCredits      rc.CreditLimits
	DownCredits    rc.CreditLimits
}

// BARSpec sizes an endpoint's device-memory window for peer-to-peer
// DMA and calibrates its internal access costs.
type BARSpec struct {
	// Size is the window size in bytes; Build assigns the bus address.
	Size int
	// ReadLatency/WriteLatency/PSPerByte are the device-internal access
	// costs (see rc.BARConfig).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	PSPerByte    int64
}

// EndpointSpec describes one device: its engine parameterization, its
// link, where it attaches, and its host DMA buffer.
type EndpointSpec struct {
	// Name labels the endpoint in results.
	Name string
	// Device parameterizes the DMA engine (e.g. nfp.Config()).
	Device device.Config
	// Link and WireDelay shape the endpoint's own link (to the root
	// port, or to its switch's downstream port).
	Link      pcie.LinkConfig
	WireDelay sim.Time
	// Switch is the index of the switch the endpoint sits below, or
	// DirectAttach (-1).
	Switch int
	// Socket is the socket of a directly attached endpoint (ignored
	// below a switch: the switch's socket wins).
	Socket int
	// BufferBytes sizes the endpoint's host DMA buffer; BufferNode
	// selects its NUMA node; AllocMode its allocation strategy; MapPage
	// its IOMMU page granularity (0 = the allocation's natural size).
	BufferBytes int
	BufferNode  int
	AllocMode   hostif.AllocMode
	MapPage     int
	// BAR optionally exposes a device-memory window for peer-to-peer
	// DMA from other endpoints.
	BAR *BARSpec
}

// IOMMU scope values (Spec.IOMMUScope).
const (
	// IOMMUScopeGlobal is the historical single-unit form: one
	// translation unit (IO-TLB + walker pool) on every DMA path,
	// whatever socket ingests the traffic. The empty scope means the
	// same thing.
	IOMMUScopeGlobal = "global"
	// IOMMUScopePerSocket models VT-d's multiple DRHD units: each
	// socket's root ports translate through a unit of their own, with
	// its own IO-TLB, walker pool and Hits/Misses/Faults counters.
	// Endpoints ingressing at different sockets then share no
	// translation state and can partition into independent islands.
	IOMMUScopePerSocket = "per-socket"
)

// ParseIOMMUScope canonicalizes an IOMMU scope string ("" and "global"
// both mean the global single-unit scope).
func ParseIOMMUScope(v string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", IOMMUScopeGlobal:
		return IOMMUScopeGlobal, nil
	case IOMMUScopePerSocket:
		return IOMMUScopePerSocket, nil
	}
	return "", fmt.Errorf("topo: unknown IOMMU scope %q (want %s or %s)", v, IOMMUScopeGlobal, IOMMUScopePerSocket)
}

// Spec is a complete topology description.
type Spec struct {
	// Seed drives all simulation randomness (0 uses 1).
	Seed int64
	// Mem calibrates the (shared) memory system; its Nodes count must
	// cover every socket's Node.
	Mem mem.Config
	// IOMMU, when non-nil, interposes an IOMMU in every DMA path.
	IOMMU *iommu.Config
	// IOMMUScope selects how many translation units serve the fabric
	// when IOMMU is non-nil: IOMMUScopeGlobal ("" or "global", the
	// default) builds one unit shared by every socket;
	// IOMMUScopePerSocket builds one unit per socket.
	IOMMUScope string
	// Interconnect, when non-nil, models explicit inter-socket
	// bandwidth contention on top of the memory system's RemoteLatency.
	Interconnect *rc.InterconnectConfig
	Sockets      []SocketSpec
	Switches     []SwitchSpec
	Endpoints    []EndpointSpec
	// Peers declares static peer-to-peer intent: each pair of endpoint
	// indices exchanges BAR-window DMA. The partitioner couples every
	// declared pair into one island, so declared peer traffic always
	// routes inside a single address map instead of tripping the
	// runtime cross-domain refusal on a parallel build.
	Peers [][2]int
	// SimWorkers asks Build for a conservative-parallel fabric on up
	// to this many worker goroutines (<= 1, the default, builds the
	// serial single-kernel form). Parallelism materializes whenever
	// the spec has more than one endpoint: independent endpoints
	// become islands of their own, and coupled groups run their
	// endpoints on linked kernels that replay shared-fabric traffic
	// through a hub at window barriers. IOMMU specs participate too —
	// a global-scope unit couples everything into one hub-replayed
	// group, while per-socket units couple only the endpoints sharing
	// a socket. Results are byte-identical either way.
	SimWorkers int
	// Faults, when enabled, arms deterministic fault injection on
	// every endpoint: BER-driven link corruption/replay, completion
	// timeouts, and retrain events (see internal/fault). Streams are
	// keyed by (spec seed, global endpoint index, fault class), so
	// results stay byte-identical at every SimWorkers count. Nil or
	// all-zero installs nothing at all.
	Faults *fault.Config
}

// Validate reports structural errors: missing pieces and out-of-range
// references.
func (s Spec) Validate() error {
	if len(s.Sockets) == 0 {
		return fmt.Errorf("topo: spec needs at least one socket")
	}
	if len(s.Endpoints) == 0 {
		return fmt.Errorf("topo: spec needs at least one endpoint")
	}
	for i, sock := range s.Sockets {
		if sock.Node < 0 || sock.Node >= s.Mem.Nodes {
			return fmt.Errorf("topo: socket %d's node %d outside the %d-node memory system", i, sock.Node, s.Mem.Nodes)
		}
	}
	for i, sw := range s.Switches {
		if sw.Socket < 0 || sw.Socket >= len(s.Sockets) {
			return fmt.Errorf("topo: switch %d references socket %d of %d", i, sw.Socket, len(s.Sockets))
		}
	}
	for i, ep := range s.Endpoints {
		if ep.Switch != DirectAttach && (ep.Switch < 0 || ep.Switch >= len(s.Switches)) {
			return fmt.Errorf("topo: endpoint %d references switch %d of %d", i, ep.Switch, len(s.Switches))
		}
		if ep.Switch == DirectAttach && (ep.Socket < 0 || ep.Socket >= len(s.Sockets)) {
			return fmt.Errorf("topo: endpoint %d references socket %d of %d", i, ep.Socket, len(s.Sockets))
		}
		if ep.BufferNode < 0 || ep.BufferNode >= s.Mem.Nodes {
			return fmt.Errorf("topo: endpoint %d's buffer node %d outside the %d-node memory system", i, ep.BufferNode, s.Mem.Nodes)
		}
	}
	for i, pr := range s.Peers {
		for _, e := range pr {
			if e < 0 || e >= len(s.Endpoints) {
				return fmt.Errorf("topo: peer pair %d references endpoint %d of %d", i, e, len(s.Endpoints))
			}
		}
		if pr[0] == pr[1] {
			return fmt.Errorf("topo: peer pair %d pairs endpoint %d with itself", i, pr[0])
		}
	}
	if _, err := ParseIOMMUScope(s.IOMMUScope); err != nil {
		return err
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("topo: %w", err)
	}
	return nil
}

// perSocketIOMMU reports whether the spec builds one translation unit
// per socket (only meaningful when an IOMMU is configured at all).
func (s Spec) perSocketIOMMU() bool {
	return s.IOMMU != nil && s.IOMMUScope == IOMMUScopePerSocket
}

// Endpoint is one assembled device: its fabric port, DMA engine and
// host buffer.
type Endpoint struct {
	Name   string
	Port   *rc.Port
	Engine *device.Engine
	Buffer *hostif.Buffer
	// Faults is the endpoint's AER-style counter block, shared by its
	// port and engine; nil when fault injection is disabled.
	Faults *fault.Counters
}

// CoupledGroup describes one multi-endpoint island of a linked build:
// the group's endpoints run on event kernels of their own while every
// piece of shared fabric state (router, sockets, switches, ports)
// binds to a hub kernel. The workload layer stages each endpoint's
// fabric traffic during a window and replays it through the hub at the
// window barrier, in serial issue order, so shared-uplink and
// shared-pipeline contention is simulated exactly (see
// internal/workload's merge protocol).
type CoupledGroup struct {
	// Island indexes Fabric.Islands.
	Island int
	// Hub is the kernel the group's shared fabric state runs on.
	Hub *sim.Kernel
	// Lookahead is a lower bound on the delay from issuing a workload
	// pair on any group endpoint to its completion arriving back at
	// the device; it becomes the ParallelKernel link latency of the
	// hub->endpoint channels.
	Lookahead sim.Time
	// Endpoints lists the group's endpoint indices, ascending.
	Endpoints []int
}

// Fabric is an assembled topology, ready to run benchmarks and
// workloads on every endpoint concurrently. On a serial build every
// endpoint shares Kernel and RC; on a linked build (SimWorkers > 1,
// several endpoints) each island owns a kernel and router of its own —
// a coupled island's kernel is its hub, with one extra kernel per
// member endpoint — and Kernel/RC alias island 0's.
type Fabric struct {
	Spec   Spec
	Kernel *sim.Kernel
	Mem    *mem.System
	// IOMMU is the fabric-wide translation unit (global scope); nil
	// when the IOMMU is disabled or scoped per socket.
	IOMMU *iommu.IOMMU
	// IOMMUs holds the per-socket translation units, indexed by socket
	// (IOMMUScopePerSocket only; nil otherwise).
	IOMMUs    []*iommu.IOMMU
	Host      *hostif.Host
	RC        *rc.RootComplex
	Switches  []*rc.Switch
	Endpoints []*Endpoint

	// Kernels holds one kernel per simulation island (Kernels[0] ==
	// Kernel); Islands lists each island's endpoint indices in
	// ascending order; Routers holds each island's root complex
	// (Routers[0] == RC).
	Kernels []*sim.Kernel
	Islands [][]int
	Routers []*rc.RootComplex

	// Coupled lists the multi-endpoint islands of a linked build,
	// ascending by island; empty on serial builds and on fabrics whose
	// islands are all singletons.
	Coupled []CoupledGroup

	epKernel []*sim.Kernel // per-endpoint island kernel
}

// Parallel reports whether the fabric runs on more than one event
// kernel (several islands, or at least one coupled group whose
// endpoints link to a hub).
func (f *Fabric) Parallel() bool { return len(f.Kernels) > 1 || len(f.Coupled) > 0 }

// SimWorkers returns the worker-goroutine budget workloads should run
// the fabric's islands on (always >= 1).
func (f *Fabric) SimWorkers() int {
	if f.Spec.SimWorkers > 1 {
		return f.Spec.SimWorkers
	}
	return 1
}

// EndpointKernel returns the kernel endpoint i's island runs on (the
// shared kernel on a serial build).
func (f *Fabric) EndpointKernel(i int) *sim.Kernel { return f.epKernel[i] }

// IOMMUUnits returns every translation unit of the fabric: the single
// global-scope unit, or the per-socket units in socket order. Empty
// when the IOMMU is disabled.
func (f *Fabric) IOMMUUnits() []*iommu.IOMMU {
	if f.IOMMUs != nil {
		return f.IOMMUs
	}
	if f.IOMMU != nil {
		return []*iommu.IOMMU{f.IOMMU}
	}
	return nil
}

// iommuFor returns the unit translating DMA ingested at the given
// socket: its per-socket unit under per-socket scope, the global unit
// otherwise (nil when the IOMMU is disabled).
func (f *Fabric) iommuFor(sock int) *iommu.IOMMU {
	if f.IOMMUs != nil {
		return f.IOMMUs[sock]
	}
	return f.IOMMU
}

// barBase is where Build places auto-assigned BAR windows: far above
// both the hostif physical-address layout and its IOVA range, so
// device windows can never shadow host buffers.
const barBase = uint64(1) << 45

// barStride spaces consecutive BAR windows (8 GB, comfortably above
// any plausible device memory size).
const barStride = uint64(8) << 30

// addEndpoint assembles endpoint i of the spec on the given router and
// kernel and appends it to the fabric: port, optional BAR window (its
// bus address derives from the global endpoint index, so partitioned
// and serial builds lay out identical address maps), DMA engine and
// host buffer.
func addEndpoint(f *Fabric, router *rc.RootComplex, k *sim.Kernel, i int, es EndpointSpec, sock *rc.Socket, sw *rc.Switch) error {
	port, err := router.AddPort(rc.PortConfig{Link: es.Link, WireDelay: es.WireDelay}, sock, sw)
	if err != nil {
		return fmt.Errorf("topo: endpoint %d: %w", i, err)
	}
	if es.BAR != nil {
		if err := port.SetBAR(rc.BARConfig{
			Base: barBase + uint64(i)*barStride, Size: es.BAR.Size,
			ReadLatency: es.BAR.ReadLatency, WriteLatency: es.BAR.WriteLatency,
			PSPerByte: es.BAR.PSPerByte,
		}); err != nil {
			return fmt.Errorf("topo: endpoint %d: %w", i, err)
		}
	}
	eng, err := device.New(k, port, es.Device)
	if err != nil {
		return fmt.Errorf("topo: endpoint %d: %w", i, err)
	}
	// The buffer maps into the unit of the socket whose root ports will
	// ingest this endpoint's DMA; all units share one IOVA allocator,
	// so the address layout is identical under either scope.
	buf, err := f.Host.AllocIn(f.iommuFor(f.Spec.socketOf(i)), es.BufferBytes, es.BufferNode, es.AllocMode, es.MapPage)
	if err != nil {
		return fmt.Errorf("topo: endpoint %d: %w", i, err)
	}
	name := es.Name
	if name == "" {
		name = fmt.Sprintf("ep%d", i)
	}
	ep := &Endpoint{Name: name, Port: port, Engine: eng, Buffer: buf}
	if f.Spec.Faults.Enabled() {
		// Streams key on (resolved seed, global endpoint index, class),
		// so serial and linked builds — which both reach here in spec
		// order with the same i — arm identical fault sequences.
		seed := f.Spec.Seed
		if seed == 0 {
			seed = 1
		}
		fc := f.Spec.Faults.WithDefaults()
		ep.Faults = &fault.Counters{}
		port.InstallFaults(fc,
			fault.NewStream(seed, i, fault.ClassLink),
			fault.NewStream(seed, i, fault.ClassRetrain),
			ep.Faults)
		eng.SetFaults(fc, ep.Faults)
	}
	f.Endpoints = append(f.Endpoints, ep)
	f.epKernel = append(f.epKernel, k)
	return nil
}

// Build assembles the fabric. Construction mirrors the original
// single-device assembly exactly for degenerate specs (one socket, one
// directly attached endpoint): same component order, no randomness
// consumed, so results are byte-identical to the pre-topology code.
//
// With SimWorkers > 1 the endpoints are partitioned into islands (see
// islandsOf) and built linked: independent endpoints get kernels of
// their own, and coupled groups run each endpoint on its own kernel
// with the shared fabric state on a hub kernel that replays their
// traffic at window barriers. IOMMU state partitions the same way: a
// global-scope unit binds to its (single) coupled group's hub, while
// per-socket units bind to the kernel of the island owning their
// socket. Only single-endpoint specs stay on the serial single-kernel
// build.
//
// Either way, the sockets of islands beyond the first sample their
// jitter from a per-island random stream derived from the spec seed
// (see islandSeed); the serial build uses the same assignment, so
// serial remains the reference schedule for every worker count.
func Build(spec Spec) (*Fabric, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	islands := islandsOf(spec)
	if spec.SimWorkers > 1 && (len(islands) > 1 || len(islands[0]) > 1) {
		return buildLinked(spec, islands)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	k := sim.New(seed)

	ms, err := mem.NewSystem(spec.Mem)
	if err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	var mmu *iommu.IOMMU
	var units []*iommu.IOMMU
	if spec.IOMMU != nil {
		if spec.perSocketIOMMU() {
			units = make([]*iommu.IOMMU, len(spec.Sockets))
			for i := range units {
				units[i] = iommu.New(k, *spec.IOMMU)
			}
		} else {
			mmu = iommu.New(k, *spec.IOMMU)
		}
	}
	host := hostif.New(ms, mmu)
	for _, u := range units {
		host.AttachIOMMU(u)
	}

	router := rc.NewRouter(k, ms, mmu, host)
	if spec.Interconnect != nil {
		router.SetInterconnect(*spec.Interconnect)
	}
	sockRNG := socketRNGs(spec, seed, islands)
	sockets := make([]*rc.Socket, len(spec.Sockets))
	for i, sc := range spec.Sockets {
		sockets[i], err = router.AddSocket(rc.SocketConfig{
			Node: sc.Node, PipeLatency: sc.PipeLatency, PipeSlots: sc.PipeSlots,
			Jitter: sc.Jitter, RNG: sockRNG[i], IOMMU: unitAt(units, i),
		})
		if err != nil {
			return nil, fmt.Errorf("topo: socket %d: %w", i, err)
		}
	}
	switches := make([]*rc.Switch, len(spec.Switches))
	for i, sw := range spec.Switches {
		switches[i], err = router.AddSwitch(rc.SwitchConfig{
			Uplink: sw.Uplink, WireDelay: sw.WireDelay,
			ForwardLatency: sw.ForwardLatency, DrainLatency: sw.DrainLatency,
			UpCredits: sw.UpCredits, DownCredits: sw.DownCredits,
		}, sockets[sw.Socket])
		if err != nil {
			return nil, fmt.Errorf("topo: switch %d: %w", i, err)
		}
	}

	f := &Fabric{
		Spec: spec, Kernel: k, Mem: ms, IOMMU: mmu, IOMMUs: units, Host: host,
		RC: router, Switches: switches,
		Kernels: []*sim.Kernel{k}, Routers: []*rc.RootComplex{router},
	}
	for i, es := range spec.Endpoints {
		var sw *rc.Switch
		var sock *rc.Socket
		if es.Switch == DirectAttach {
			sock = sockets[es.Socket]
		} else {
			sw = switches[es.Switch]
		}
		if err := addEndpoint(f, router, k, i, es, sock, sw); err != nil {
			return nil, err
		}
	}
	all := make([]int, len(spec.Endpoints))
	for i := range all {
		all[i] = i
	}
	f.Islands = [][]int{all}
	return f, nil
}

// buildLinked assembles a fabric whose endpoint islands each own an
// event kernel and a root complex — and whose multi-endpoint islands
// (coupled groups) additionally own one kernel per member endpoint,
// with the group's fabric state bound to the island's kernel acting as
// the hub. The shared pieces — the memory system (islands touch
// disjoint NUMA-node state by construction) and the host buffer
// allocator (read-only after Build) — are built once; sockets,
// switches and endpoints are created in spec order on their island's
// router, and host buffers are allocated in global endpoint order, so
// the address layout matches the serial build byte for byte.
func buildLinked(spec Spec, islands [][]int) (*Fabric, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	ms, err := mem.NewSystem(spec.Mem)
	if err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}

	kernels := make([]*sim.Kernel, len(islands))
	for d := range islands {
		// Every kernel is seeded alike, which keeps the spec's
		// single-seed contract: singleton islands draw no kernel
		// randomness (their jitter, if any, samples the per-island
		// stream), and a coupled hub draws jitter in replay order —
		// serial issue order — so island 0's hub replays the serial
		// kernel stream exactly.
		kernels[d] = sim.New(seed)
	}
	epIsle := make([]int, len(spec.Endpoints))
	for d, isl := range islands {
		for _, i := range isl {
			epIsle[i] = d
		}
	}
	// A socket is shared only within one island (that is what the
	// partitioner guarantees); unused sockets build on island 0.
	sockIsle := make([]int, len(spec.Sockets))
	for i := range spec.Endpoints {
		sockIsle[spec.socketOf(i)] = epIsle[i]
	}

	// Translation units bind to the kernel of the island owning them.
	// A global-scope unit couples every endpoint into one island (the
	// partitioner guarantees len(islands) == 1 then), so binding it to
	// kernels[0] — that island's hub — means every Translate call runs
	// in the hub's replay order: the serial schedule. Per-socket units
	// bind wherever their socket builds.
	var mmu *iommu.IOMMU
	var units []*iommu.IOMMU
	if spec.IOMMU != nil {
		if spec.perSocketIOMMU() {
			units = make([]*iommu.IOMMU, len(spec.Sockets))
			for i := range units {
				units[i] = iommu.New(kernels[sockIsle[i]], *spec.IOMMU)
			}
		} else {
			mmu = iommu.New(kernels[0], *spec.IOMMU)
		}
	}
	host := hostif.New(ms, mmu)
	for _, u := range units {
		host.AttachIOMMU(u)
	}

	routers := make([]*rc.RootComplex, len(islands))
	for d := range islands {
		routers[d] = rc.NewRouter(kernels[d], ms, mmu, host)
		if spec.Interconnect != nil {
			routers[d].SetInterconnect(*spec.Interconnect)
		}
	}

	sockRNG := socketRNGs(spec, seed, islands)
	sockets := make([]*rc.Socket, len(spec.Sockets))
	for i, sc := range spec.Sockets {
		sockets[i], err = routers[sockIsle[i]].AddSocket(rc.SocketConfig{
			Node: sc.Node, PipeLatency: sc.PipeLatency, PipeSlots: sc.PipeSlots,
			Jitter: sc.Jitter, RNG: sockRNG[i], IOMMU: unitAt(units, i),
		})
		if err != nil {
			return nil, fmt.Errorf("topo: socket %d: %w", i, err)
		}
	}
	switches := make([]*rc.Switch, len(spec.Switches))
	for i, sw := range spec.Switches {
		switches[i], err = routers[sockIsle[sw.Socket]].AddSwitch(rc.SwitchConfig{
			Uplink: sw.Uplink, WireDelay: sw.WireDelay,
			ForwardLatency: sw.ForwardLatency, DrainLatency: sw.DrainLatency,
			UpCredits: sw.UpCredits, DownCredits: sw.DownCredits,
		}, sockets[sw.Socket])
		if err != nil {
			return nil, fmt.Errorf("topo: switch %d: %w", i, err)
		}
	}

	f := &Fabric{
		Spec: spec, Kernel: kernels[0], Mem: ms, IOMMU: mmu, IOMMUs: units, Host: host,
		RC: routers[0], Switches: switches,
		Kernels: kernels, Islands: islands, Routers: routers,
	}
	for d, isl := range islands {
		if len(isl) > 1 {
			f.Coupled = append(f.Coupled, CoupledGroup{
				Island: d, Hub: kernels[d],
				Lookahead: groupLookahead(spec, isl), Endpoints: isl,
			})
		}
	}
	for i, es := range spec.Endpoints {
		var sw *rc.Switch
		var sock *rc.Socket
		if es.Switch == DirectAttach {
			sock = sockets[es.Socket]
		} else {
			sw = switches[es.Switch]
		}
		d := epIsle[i]
		k := kernels[d]
		if len(islands[d]) > 1 {
			// A coupled group's member runs its control loop on a kernel
			// of its own; the port it drives stays on the hub (island)
			// kernel and is only driven in replay order at window
			// barriers.
			k = sim.New(seed)
		}
		if err := addEndpoint(f, routers[d], k, i, es, sock, sw); err != nil {
			return nil, err
		}
	}
	// Mirror every BAR window into the routers of the other islands so
	// peer DMA that would cross domains is detected and rejected at the
	// routing boundary instead of silently treated as host memory.
	for i, ep := range f.Endpoints {
		if ep.Port.BAR() == nil {
			continue
		}
		for d, r := range routers {
			if d == epIsle[i] {
				continue
			}
			if err := r.MirrorBAR(ep.Port); err != nil {
				return nil, fmt.Errorf("topo: endpoint %d: %w", i, err)
			}
		}
	}
	return f, nil
}

// unitAt returns the per-socket unit for socket i, or nil when the
// fabric has no per-socket units.
func unitAt(units []*iommu.IOMMU, i int) *iommu.IOMMU {
	if units == nil {
		return nil
	}
	return units[i]
}

// groupLookahead returns a lower bound on the delay from a workload
// pair's issue on any of the group's endpoints to its completion
// arriving back at the device. Every pair opens with a payload DMA
// read, whose completion must cross the fabric up (request), through
// the socket pipeline, and back down (first completion TLP) — each
// term below under-approximates that path (jitter, flow control,
// arbitration, memory latency and the inter-socket bus only add time),
// so a pair staged at time t always completes at or after
// t + lookahead. The linked build uses the group minimum as the
// ParallelKernel link latency of its hub->endpoint channels: a window
// bounded by it can never need a completion that has not been
// replayed yet. SocketSpec.PipeLatency is validated positive, so the
// bound always clears ParallelKernel.Connect's 1ps floor.
func groupLookahead(spec Spec, isl []int) sim.Time {
	var la sim.Time
	for _, i := range isl {
		ep := spec.Endpoints[i]
		link := ep.Link
		reqTime := sim.Time(link.BytesTime(pcie.MRdHeaderBytes(link.Addr64, link.ECRC)))
		cplTime := sim.Time(link.BytesTime(pcie.CplDHeaderBytes(link.ECRC) + 1))
		l := reqTime + cplTime + 2*ep.WireDelay + spec.Sockets[spec.socketOf(i)].PipeLatency
		if ep.Switch != DirectAttach {
			sw := spec.Switches[ep.Switch]
			l += 2 * (sw.ForwardLatency + sw.WireDelay)
		}
		if la == 0 || l < la {
			la = l
		}
	}
	return la
}

// BARAddr returns the bus address of byte off inside endpoint ep's BAR
// window — the address a peer device DMAs to for a device-to-device
// transfer.
func (f *Fabric) BARAddr(ep, off int) (uint64, error) {
	bar := f.Endpoints[ep].Port.BAR()
	if bar == nil {
		return 0, fmt.Errorf("topo: endpoint %d has no BAR window", ep)
	}
	if off < 0 || off >= bar.Size {
		return 0, fmt.Errorf("topo: offset %d outside endpoint %d's %dB BAR", off, ep, bar.Size)
	}
	return bar.Base + uint64(off), nil
}
