package topo

import (
	"errors"
	"fmt"

	"pciebench/internal/device"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/stats"
)

// P2P transfer modes.
const (
	// P2PDirect DMAs straight from endpoint 0 into endpoint 1's BAR
	// window — the SmartNIC-style device-to-device path ("In-Network
	// Memory Access" builds entirely on it).
	P2PDirect = "direct"
	// P2PBounce stages the transfer through host DRAM: endpoint 0
	// writes a host buffer, endpoint 1 reads it back out — what hosts
	// without peer routing (or with ACS forcing root-complex bounces)
	// must do. Every payload byte crosses the host interface twice.
	P2PBounce = "bounce"
)

// P2PResult is the outcome of a device-to-device transfer benchmark.
type P2PResult struct {
	Mode     string
	Transfer int
	Samples  int
	// Latency summarizes per-transfer delivery latency in ns: from
	// submission at the source device to the data landing in the
	// destination device (direct) or staged out of host DRAM (bounce).
	Latency stats.Summary
	// Gbps is the delivered payload bandwidth of the saturating phase.
	Gbps float64
	// UplinkWait, when the fabric has a sampling-enabled switch,
	// summarizes the shared-uplink arbitration wait per TLP in ns.
	UplinkWait *stats.Summary
}

// p2pStride spaces consecutive in-flight transfers so they do not
// collide on one cache line / device word.
func p2pStride(transfer int) int {
	s := (transfer + pcie.CacheLineSize - 1) / pcie.CacheLineSize * pcie.CacheLineSize
	if s == 0 {
		s = pcie.CacheLineSize
	}
	return s
}

// RunP2P benchmarks a device-to-device transfer of the given size
// between the fabric's first two endpoints: a dependent-transfer phase
// for latency percentiles, then a saturating phase for bandwidth. Mode
// selects the direct peer path or the bounce through host DRAM.
func RunP2P(f *Fabric, mode string, transfer, n int) (*P2PResult, error) {
	if len(f.Endpoints) < 2 {
		return nil, fmt.Errorf("topo: p2p needs 2 endpoints, fabric has %d", len(f.Endpoints))
	}
	if transfer <= 0 {
		return nil, fmt.Errorf("topo: p2p transfer size %d", transfer)
	}
	if n <= 0 {
		return nil, fmt.Errorf("topo: p2p sample count %d", n)
	}
	if mode != P2PDirect && mode != P2PBounce {
		return nil, fmt.Errorf("topo: p2p mode %q (want %s or %s)", mode, P2PDirect, P2PBounce)
	}
	if f.Parallel() {
		// Peer traffic couples the endpoints' timelines; the partitioned
		// fabric's islands are built on the premise that they never meet.
		return nil, fmt.Errorf("topo: p2p requires a serial fabric; rebuild with simworkers=1 (fabric has %d islands)", len(f.Kernels))
	}
	src, dst := f.Endpoints[0], f.Endpoints[1]
	stride := p2pStride(transfer)
	// Window of addresses the transfers rotate over: bounded by the
	// destination BAR (direct) or a 1MB host staging region (bounce).
	slots := 64
	var addr func(i int) uint64
	if mode == P2PDirect {
		bar := dst.Port.BAR()
		if bar == nil {
			return nil, fmt.Errorf("topo: endpoint %s has no BAR window for p2p", dst.Name)
		}
		if max := bar.Size / stride; slots > max {
			slots = max
		}
		if slots < 1 {
			return nil, fmt.Errorf("topo: %dB transfer does not fit endpoint %s's %dB BAR", transfer, dst.Name, bar.Size)
		}
		base := bar.Base
		addr = func(i int) uint64 { return base + uint64(i%slots)*uint64(stride) }
	} else {
		region := 1 << 20
		if region > src.Buffer.Size {
			region = src.Buffer.Size
		}
		if max := region / stride; slots > max {
			slots = max
		}
		if slots < 1 {
			return nil, fmt.Errorf("topo: %dB transfer does not fit the host staging region", transfer)
		}
		src.Buffer.WarmHost(0, slots*stride)
		addr = func(i int) uint64 { return src.Buffer.DMAAddr((i % slots) * stride) }
	}

	warm := n / 20
	if warm > 100 {
		warm = 100
	}
	if warm < 8 {
		warm = 8
	}
	res := &P2PResult{Mode: mode, Transfer: transfer, Samples: n}

	// Phase 1 — dependent transfers for the latency distribution. Each
	// transfer starts a fixed gap after the previous one's delivery,
	// like the paper's latency firmware.
	const gap = 50 * sim.Nanosecond
	k := f.Kernel
	samples := make([]float64, 0, n)
	for i := 0; i < warm+n; i++ {
		a := addr(i)
		w, ok := src.Engine.SubmitNow(device.Op{Write: true, DMA: a, Size: transfer})
		if !ok {
			return nil, errors.New("topo: source engine busy in p2p latency phase")
		}
		if w.Err != nil {
			return nil, w.Err
		}
		delivered := w.MemVisible
		start := w.Submitted
		if mode == P2PBounce {
			r, ok := dst.Engine.SubmitNow(device.Op{DMA: a, Size: transfer, OrderAfter: w.MemVisible})
			if !ok {
				return nil, errors.New("topo: destination engine busy in p2p latency phase")
			}
			if r.Err != nil {
				return nil, r.Err
			}
			delivered = r.Done
		}
		if i >= warm {
			samples = append(samples, (delivered - start).Nanoseconds())
		}
		k.RunUntil(delivered + gap)
	}
	var err error
	res.Latency, err = stats.Summarize(samples)
	if err != nil {
		return nil, err
	}

	// Phase 2 — saturation for bandwidth: a window of independent
	// transfer chains, each resubmitting on completion.
	window := src.Engine.Config().MaxInFlight
	if mode == P2PBounce {
		if w := dst.Engine.Config().MaxInFlight; w < window {
			window = w
		}
	}
	if window > slots {
		window = slots
	}
	total := warm + n
	var (
		issued, completed    int
		measureFrom, measure sim.Time
		rerr                 error
	)
	var launch func()
	finish := func(c device.Completion) {
		if c.Err != nil && rerr == nil {
			rerr = c.Err
		}
		completed++
		if completed == warm {
			measureFrom = k.Now()
		}
		if completed == total {
			measure = k.Now()
		}
		launch()
	}
	launch = func() {
		if issued >= total || rerr != nil {
			return
		}
		a := addr(issued)
		issued++
		if mode == P2PDirect {
			src.Engine.Submit(device.Op{Write: true, DMA: a, Size: transfer, OnDone: finish})
			return
		}
		src.Engine.Submit(device.Op{Write: true, DMA: a, Size: transfer, OnDone: func(c device.Completion) {
			if c.Err != nil {
				if rerr == nil {
					rerr = c.Err
				}
				return
			}
			dst.Engine.Submit(device.Op{DMA: a, Size: transfer, OrderAfter: c.MemVisible, OnDone: finish})
		}})
	}
	k.After(0, func() {
		for i := 0; i < window && i < total; i++ {
			launch()
		}
	})
	k.Run()
	if rerr != nil {
		return nil, rerr
	}
	if measure <= measureFrom {
		return nil, errors.New("topo: degenerate p2p measurement span")
	}
	res.Gbps = float64(n) * float64(transfer) * 8 / (measure - measureFrom).Seconds() / 1e9

	for _, sw := range f.Switches {
		if s, ok := sw.WaitSummary(true); ok {
			res.UplinkWait = &s
			break
		}
	}
	return res, nil
}
