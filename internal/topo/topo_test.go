package topo_test

import (
	"testing"

	"pciebench/internal/bench"
	"pciebench/internal/pcie"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

func benchParams() bench.Params {
	return bench.Params{
		WindowSize:   8 << 10,
		TransferSize: 64,
		Transactions: 400,
		Cache:        bench.HostWarm,
	}
}

func target(ep *topo.Endpoint, host *topo.Fabric) *bench.Target {
	return &bench.Target{Host: host.Host, Engine: ep.Engine, Buffer: ep.Buffer}
}

// TestDegenerateFabricMatchesBuild: sysconf.Build and a one-endpoint
// Fabric produce identical benchmark samples — Build *is* the
// degenerate fabric.
func TestDegenerateFabricMatchesBuild(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sys.Build(sysconf.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{}, sysconf.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := bench.LatRd(inst.Target(), benchParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.LatRd(target(fab.Endpoints[0], fab), benchParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// transparentSpec returns the system's degenerate spec with a
// timing-transparent switch inserted: zero forwarding latency, zero
// uplink wire delay, same uplink speed, infinite credits.
func transparentSpec(t *testing.T, sys sysconf.System, opt sysconf.Options) topo.Spec {
	t.Helper()
	spec, err := sys.TopoSpec(topo.Shape{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec.Switches = []topo.SwitchSpec{{Socket: 0, Uplink: spec.Endpoints[0].Link}}
	spec.Endpoints[0].Switch = 0
	return spec
}

// TestTransparentSwitchFabricByteIdentical is the satellite
// byte-identity property at the full-stack level: a one-endpoint
// fabric below a transparent switch reproduces the no-switch fabric's
// latency samples and bandwidth exactly, across benchmark kinds and
// the traffic engine.
func TestTransparentSwitchFabricByteIdentical(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	opt := sysconf.Options{Seed: 3}
	plain, err := sys.Fabric(topo.Shape{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := transparentSpec(t, sys, opt)
	switched, err := topo.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	p := benchParams()
	la, err := bench.LatWrRd(target(plain.Endpoints[0], plain), p)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := bench.LatWrRd(target(switched.Endpoints[0], switched), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Samples) != len(lb.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(la.Samples), len(lb.Samples))
	}
	for i := range la.Samples {
		if la.Samples[i] != lb.Samples[i] {
			t.Fatalf("LAT_WRRD sample %d differs: %v vs %v", i, la.Samples[i], lb.Samples[i])
		}
	}

	ba, err := bench.BwRd(target(plain.Endpoints[0], plain), p)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := bench.BwRd(target(switched.Endpoints[0], switched), p)
	if err != nil {
		t.Fatal(err)
	}
	if ba.Gbps != bb.Gbps || ba.Elapsed != bb.Elapsed {
		t.Errorf("BW_RD differs: %v/%v vs %v/%v", ba.Gbps, ba.Elapsed, bb.Gbps, bb.Elapsed)
	}
}

// TestTransparentSwitchWorkloadByteIdentical extends the identity to
// the multi-queue traffic engine.
func TestTransparentSwitchWorkloadByteIdentical(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	opt := sysconf.Options{Seed: 5}
	run := func(f *topo.Fabric) *workload.Result {
		cfg := workload.Config{Queues: 2, Seed: 9, BufferBytes: f.Endpoints[0].Buffer.Size}
		f.Endpoints[0].Buffer.WarmHost(0, cfg.Footprint())
		res, err := workload.Run(f.Kernel, f.RC, f.Endpoints[0].Buffer.DMAAddr(0), cfg, 500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, err := sys.Fabric(topo.Shape{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	switched, err := topo.Build(transparentSpec(t, sys, opt))
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(plain), run(switched)
	if a.Elapsed != b.Elapsed || a.PPS != b.PPS || a.Latency != b.Latency {
		t.Errorf("workload differs: %+v vs %+v", a, b)
	}
}

// TestFabricContention: N endpoints behind one real switch partition
// the uplink near-equally and inflate completion latency vs a single
// endpoint.
func TestFabricContention(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	run := func(n int) *workload.MultiResult {
		fab, err := sys.Fabric(topo.Shape{Endpoints: n, Switch: shapeLink()}, sysconf.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.Config{Seed: 1, BufferBytes: fab.Endpoints[0].Buffer.Size}
		res, err := topo.RunWorkload(fab, cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.Latency.P99 <= one.Latency.P99 {
		t.Errorf("4-endpoint p99 %.0fns not above 1-endpoint %.0fns", four.Latency.P99, one.Latency.P99)
	}
	var min, max float64
	for i, ep := range four.Endpoints {
		if i == 0 || ep.PPS < min {
			min = ep.PPS
		}
		if ep.PPS > max {
			max = ep.PPS
		}
	}
	if min/max < 0.9 {
		t.Errorf("unfair partitioning: %.0f vs %.0f pps", min, max)
	}
}

func shapeLink() *pcie.LinkConfig {
	l := pcie.DefaultGen3x8()
	return &l
}

// TestRunP2P: the direct peer path beats the host-DRAM bounce on
// delivery latency, and both report sane bandwidth.
func TestRunP2P(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode string) *topo.P2PResult {
		fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Switch: shapeLink()}, sysconf.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := topo.RunP2P(fab, mode, 256, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct := run(topo.P2PDirect)
	bounce := run(topo.P2PBounce)
	if direct.Latency.Median >= bounce.Latency.Median {
		t.Errorf("direct p2p median %.0fns not below bounce %.0fns", direct.Latency.Median, bounce.Latency.Median)
	}
	if direct.Gbps <= 0 || bounce.Gbps <= 0 {
		t.Errorf("non-positive bandwidth: direct %.2f bounce %.2f", direct.Gbps, bounce.Gbps)
	}
}

// TestRunP2PErrors: bad modes and missing BARs fail loudly.
func TestRunP2PErrors(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Switch: shapeLink()}, sysconf.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RunP2P(fab, "sideways", 64, 10); err == nil {
		t.Error("bad mode accepted")
	}
	solo, err := sys.Fabric(topo.Shape{}, sysconf.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RunP2P(solo, topo.P2PDirect, 64, 10); err == nil {
		t.Error("single-endpoint fabric accepted")
	}
}

// TestSplitPlacement: on a two-node system, split placement homes
// endpoint 1 on socket 1; its access to a node-0 buffer is remote and
// slower than endpoint 0's local access.
func TestSplitPlacement(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Placement: "split"}, sysconf.Options{Seed: 1, NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := fab.Endpoints[1].Port.Socket().Node(); got != 1 {
		t.Fatalf("endpoint 1 on socket node %d, want 1", got)
	}
	// Both endpoints read endpoint 0's buffer (homed on node 0).
	addr := fab.Endpoints[0].Buffer.DMAAddr(0)
	fab.Endpoints[0].Buffer.WarmHost(0, 4096)
	local, err := fab.Endpoints[0].Port.DMARead(fab.Kernel.Now(), addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := fab.Endpoints[1].Port.DMARead(fab.Kernel.Now(), addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	dl := local.Complete - fab.Kernel.Now()
	dr := remote.Complete - fab.Kernel.Now()
	if dr <= dl {
		t.Errorf("cross-socket read (%v) not slower than local (%v)", dr, dl)
	}
	// Split on a single-node system is rejected.
	hsw, _ := sysconf.ByName("NFP6000-HSW")
	if _, err := hsw.Fabric(topo.Shape{Endpoints: 2, Placement: "split"}, sysconf.Options{}); err == nil {
		t.Error("split placement on a 1-node system accepted")
	}
}

// TestSpecValidate rejects dangling references.
func TestSpecValidate(t *testing.T) {
	sys, _ := sysconf.ByName("NFP6000-HSW")
	spec, err := sys.TopoSpec(topo.Shape{}, sysconf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := spec
	bad.Endpoints = append([]topo.EndpointSpec(nil), spec.Endpoints...)
	bad.Endpoints[0].Switch = 3
	if _, err := topo.Build(bad); err == nil {
		t.Error("dangling switch reference accepted")
	}
	bad = spec
	bad.Sockets = nil
	if _, err := topo.Build(bad); err == nil {
		t.Error("socketless spec accepted")
	}
}

// TestShapeAndSwitchParsing covers the selector surface.
func TestShapeAndSwitchParsing(t *testing.T) {
	if sw, err := topo.ParseSwitch("gen4x16"); err != nil || sw.Lanes != 16 {
		t.Errorf("gen4x16: %v %v", sw, err)
	}
	if sw, err := topo.ParseSwitch("none"); err != nil || sw != nil {
		t.Errorf("none: %v %v", sw, err)
	}
	if sw, err := topo.ParseSwitch("on"); err != nil || sw == nil {
		t.Errorf("on: %v %v", sw, err)
	}
	for _, bad := range []string{"gen9x9", "genx", "gen3", "usb"} {
		if _, err := topo.ParseSwitch(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := (topo.Shape{Endpoints: -1}).Validate(1); err == nil {
		t.Error("negative endpoints accepted")
	}
	if err := (topo.Shape{Endpoints: 65}).Validate(1); err == nil {
		t.Error("65 endpoints accepted")
	}
	if err := (topo.Shape{Placement: "9"}).Validate(2); err == nil {
		t.Error("out-of-range socket accepted")
	}
	if err := (topo.Shape{Placement: "bogus"}).Validate(2); err == nil {
		t.Error("bogus placement accepted")
	}
	l := topo.DefaultSwitch(pcieLink(), 0)
	if l.ForwardLatency != topo.DefaultSwitchForwardLatency || l.UpCredits.P.Hdr == 0 {
		t.Errorf("default switch spec malformed: %+v", l)
	}
}

func pcieLink() pcie.LinkConfig { return pcie.DefaultGen3x8() }

// TestBARAddr covers the p2p address helper.
func TestBARAddr(t *testing.T) {
	sys, _ := sysconf.ByName("NFP6000-HSW")
	fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Switch: shapeLink()}, sysconf.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fab.BARAddr(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := fab.BARAddr(1, 0); a != b+4096 {
		t.Errorf("BARAddr arithmetic: %#x vs %#x", a, b)
	}
	if _, err := fab.BARAddr(1, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := fab.BARAddr(1, 1<<30); err == nil {
		t.Error("offset beyond the window accepted")
	}
	solo, err := sys.Fabric(topo.Shape{}, sysconf.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.BARAddr(0, 0); err == nil {
		t.Error("BARAddr on a BAR-less endpoint accepted")
	}
}

// TestCrossSocketP2PPaysInterconnect: direct peer DMA between sockets
// routes across the inter-socket interconnect and is slower than the
// same transfer between two endpoints on one socket.
func TestCrossSocketP2PPaysInterconnect(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	run := func(placement string) *topo.P2PResult {
		fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Placement: placement}, sysconf.Options{Seed: 1, NoJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := topo.RunP2P(fab, topo.P2PDirect, 1024, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	same := run("")
	cross := run("split")
	if cross.Latency.Median <= same.Latency.Median {
		t.Errorf("cross-socket p2p median %.0fns not above same-socket %.0fns", cross.Latency.Median, same.Latency.Median)
	}
}
