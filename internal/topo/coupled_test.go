package topo_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pciebench/internal/rc"
	"pciebench/internal/sim"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// coupledFabric builds a fabric whose endpoints all couple into one
// island — through a shared switch when sw is true, through the shared
// socket-0 root complex otherwise.
func coupledFabric(t *testing.T, endpoints int, sw bool, jitter bool, simWorkers int) *topo.Fabric {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	shape := topo.Shape{Endpoints: endpoints}
	if sw {
		shape.Switch = shapeLink()
	}
	fab, err := sys.Fabric(shape, sysconf.Options{
		Seed: 7, BufferSize: 1 << 20, NoJitter: !jitter, SimWorkers: simWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// TestCoupledFabricByteIdentical is the tentpole contract for coupled
// topologies: an 8-endpoint fabric sharing a switch (and one sharing a
// socket) reproduces the serial build's workload results byte for byte
// at every worker count, with the traffic flowing through windowed
// channels and barrier replay instead of one collapsed island. The
// worker-4 result is additionally pinned to a committed golden.
// Regenerate with `go test ./internal/topo -run CoupledFabricByteIdentical -update`.
func TestCoupledFabricByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		sw     bool
		golden string
	}{
		{"shared-switch", true, "coupled_switch.golden.json"},
		{"shared-socket", false, "coupled_socket.golden.json"},
	}
	cfg := workload.Config{Seed: 11, BufferBytes: 1 << 20}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := coupledFabric(t, 8, tc.sw, false, 1)
			if serial.Parallel() {
				t.Fatal("simworkers=1 built a parallel fabric")
			}
			ref, err := topo.RunWorkload(serial, cfg, 200)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 7} {
				fab := coupledFabric(t, 8, tc.sw, false, w)
				if !fab.Parallel() || len(fab.Coupled) != 1 || len(fab.Coupled[0].Endpoints) != 8 {
					t.Fatalf("simworkers=%d: want one coupled island of 8, got %+v", w, fab.Coupled)
				}
				if fab.Coupled[0].Lookahead < sim.Picosecond {
					t.Fatalf("lookahead %v below the channel floor", fab.Coupled[0].Lookahead)
				}
				res, err := topo.RunWorkload(fab, cfg, 200)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, res) {
					t.Fatalf("simworkers=%d diverged from the serial build", w)
				}
			}
			got, err := json.MarshalIndent(ref, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("coupled workload drifted from %s (rerun with -update if intended)", path)
			}
		})
	}
}

// TestJitteryFabricByteIdentical pins the per-island jitter streams:
// with the root-complex jitter model enabled, coupled fabrics (island
// 0 keeps the kernel stream, drawn in replay order) and split fabrics
// (islands beyond the first draw derived streams) still reproduce the
// serial build byte for byte at every worker count.
func TestJitteryFabricByteIdentical(t *testing.T) {
	cfg := workload.Config{Seed: 5, BufferBytes: 1 << 20}

	t.Run("coupled-switch", func(t *testing.T) {
		serial := coupledFabric(t, 4, true, true, 1)
		ref, err := topo.RunWorkload(serial, cfg, 150)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 7} {
			fab := coupledFabric(t, 4, true, true, w)
			if !fab.Parallel() || len(fab.Coupled) != 1 {
				t.Fatalf("simworkers=%d: jittery switched fabric did not couple-build", w)
			}
			res, err := topo.RunWorkload(fab, cfg, 150)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("simworkers=%d diverged on the jittery switched fabric", w)
			}
		}
	})

	t.Run("split-sockets", func(t *testing.T) {
		build := func(w int) *topo.Fabric {
			sys, err := sysconf.ByName("NFP6000-BDW")
			if err != nil {
				t.Fatal(err)
			}
			fab, err := sys.Fabric(
				topo.Shape{Endpoints: 4, Placement: "split", LocalBuffers: true},
				sysconf.Options{Seed: 7, BufferSize: 1 << 20, SimWorkers: w},
			)
			if err != nil {
				t.Fatal(err)
			}
			return fab
		}
		ref, err := topo.RunWorkload(build(1), cfg, 150)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 7} {
			fab := build(w)
			if !fab.Parallel() || len(fab.Islands) != 2 {
				t.Fatalf("simworkers=%d: jittery split fabric did not partition", w)
			}
			res, err := topo.RunWorkload(fab, cfg, 150)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("simworkers=%d diverged on the jittery split fabric", w)
			}
		}
	})
}

// TestPropertyCoupledInvariance randomizes coupled topologies (endpoint
// count, switched or socket-shared, jitter, queue count, seeds) and
// checks that every worker count reproduces the serial result exactly.
func TestPropertyCoupledInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		endpoints := 2 + rng.Intn(5) // 2..6
		sw := rng.Intn(2) == 0
		jitter := rng.Intn(2) == 0
		cfg := workload.Config{
			Seed:        int64(1 + rng.Intn(1000)),
			Queues:      1 + rng.Intn(2),
			BufferBytes: 1 << 20,
		}
		pairs := 80 + rng.Intn(80)
		label := fmt.Sprintf("trial %d (endpoints=%d switch=%v jitter=%v)", trial, endpoints, sw, jitter)

		serial := coupledFabric(t, endpoints, sw, jitter, 1)
		ref, err := topo.RunWorkload(serial, cfg, pairs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for _, w := range []int{2, 4, 7} {
			fab := coupledFabric(t, endpoints, sw, jitter, w)
			if !fab.Parallel() || len(fab.Coupled) != 1 {
				t.Fatalf("%s: simworkers=%d did not couple-build", label, w)
			}
			res, err := topo.RunWorkload(fab, cfg, pairs)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("%s: simworkers=%d diverged from serial", label, w)
			}
		}
	}
}

// TestPeersCoupling pins the declared-P2P bugfix: naming a peer pair in
// Spec.Peers pulls both endpoints into one island, so their BAR traffic
// routes inside one address map instead of hitting the runtime
// "crosses simulation domains" refusal — while the fabric still builds
// in parallel form.
func TestPeersCoupling(t *testing.T) {
	spec := func(peers [][2]int) topo.Spec {
		sys, err := sysconf.ByName("NFP6000-BDW")
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sys.TopoSpec(
			topo.Shape{Endpoints: 2, Placement: "split", LocalBuffers: true},
			sysconf.Options{Seed: 7, BufferSize: 1 << 20, NoJitter: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		sp.Peers = peers
		sp.SimWorkers = 4
		return sp
	}

	// Without the declaration the endpoints land on separate islands and
	// the peer write is refused at the routing boundary.
	fab, err := topo.Build(spec(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(fab.Islands) != 2 {
		t.Fatalf("islands %v, want two singletons", fab.Islands)
	}
	addr, err := fab.BARAddr(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Endpoints[0].Port.DMAWrite(fab.EndpointKernel(0).Now(), addr, 64); err == nil ||
		!strings.Contains(err.Error(), "crosses simulation domains") {
		t.Fatalf("undeclared peer write: err %v, want a domain-crossing rejection", err)
	}

	// Declaring the pair couples them: one island, one hub, and the
	// peer write goes through.
	fab, err = topo.Build(spec([][2]int{{0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(fab.Islands) != 1 || len(fab.Coupled) != 1 ||
		!reflect.DeepEqual(fab.Coupled[0].Endpoints, []int{0, 1}) {
		t.Fatalf("peered fabric: islands %v coupled %+v, want one coupled island {0,1}", fab.Islands, fab.Coupled)
	}
	if !fab.Parallel() {
		t.Fatal("peered fabric lost its parallel build")
	}
	addr, err = fab.BARAddr(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Endpoints[0].Port.DMAWrite(fab.EndpointKernel(0).Now(), addr, 64); err != nil {
		t.Fatalf("declared peer write failed: %v", err)
	}

	// Validation rejects malformed declarations.
	bad := spec([][2]int{{0, 2}})
	if _, err := topo.Build(bad); err == nil || !strings.Contains(err.Error(), "peer pair") {
		t.Fatalf("out-of-range peer pair: err %v, want a validation error", err)
	}
	bad = spec([][2]int{{1, 1}})
	if _, err := topo.Build(bad); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("self peer pair: err %v, want a validation error", err)
	}
}

// TestJitterDoesNotSerialize pins the satellite bugfix around the old
// jitter collapse: jitter configured on a socket no endpoint ingresses
// at — or on every socket, with Interconnect{Shared: false} — must not
// cost the fabric its partition.
func TestJitterDoesNotSerialize(t *testing.T) {
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.TopoSpec(
		topo.Shape{Endpoints: 2, Placement: "split", LocalBuffers: true},
		sysconf.Options{Seed: 7, BufferSize: 1 << 20, NoJitter: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	sp.SimWorkers = 4

	// Jitter on an unused third socket: nothing ingresses there, so no
	// island draws from it.
	sp.Mem.Nodes = 3
	base := sp.Sockets[0]
	unused := base
	unused.Node = 2
	unused.Jitter = rc.ConstantJitter(500 * sim.Nanosecond)
	sp.Sockets = append(sp.Sockets, unused)
	fab, err := topo.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !fab.Parallel() || len(fab.Islands) != 2 {
		t.Fatalf("jitter on an unused socket serialized the fabric: islands %v", fab.Islands)
	}

	// Jitter everywhere plus an explicit non-shared interconnect model:
	// islands own their streams, so this partitions too.
	for i := range sp.Sockets {
		sp.Sockets[i].Jitter = rc.ConstantJitter(500 * sim.Nanosecond)
	}
	sp.Interconnect = &rc.InterconnectConfig{Shared: false}
	fab, err = topo.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !fab.Parallel() || len(fab.Islands) != 2 {
		t.Fatalf("jittery non-shared-interconnect fabric serialized: islands %v", fab.Islands)
	}
}
