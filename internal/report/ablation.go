package report

import (
	"fmt"

	"pciebench/internal/bench"
	"pciebench/internal/device"
	"pciebench/internal/iommu"
	"pciebench/internal/model"
	"pciebench/internal/pcie"
	"pciebench/internal/stats"
	"pciebench/internal/sysconf"
)

// Ablation experiments: the design choices DESIGN.md calls out, each
// varied in isolation to show which mechanism carries which paper
// result. They extend the paper's evaluation rather than reproduce a
// specific figure.

// AblationMPS sweeps the negotiated Maximum Payload Size through the
// analytical model: the saw-tooth period and the achievable large-
// transfer bandwidth both follow MPS, which is why the paper's model
// takes it as an explicit parameter.
func AblationMPS() *Figure {
	fig := &Figure{
		ID:     "ablation-mps",
		Title:  "Effective bidirectional bandwidth vs MPS (model)",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Bandwidth (Gb/s)",
	}
	for _, mps := range []int{128, 256, 512} {
		cfg := pcie.DefaultGen3x8()
		cfg.MPS = mps
		s := &stats.Series{Name: fmt.Sprintf("MPS=%d", mps)}
		for sz := 64; sz <= 1520; sz += 16 {
			s.Append(float64(sz), model.EffectiveBidirBandwidth(cfg, sz)/1e9)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// AblationGen4 projects the paper's baseline read bandwidth onto a
// PCIe Gen4 x8 link — the configuration §6 anticipates ("including the
// next generation PCIe Gen 4 once hardware is available"). Both the
// model curve and the simulated NFP are reported; at Gen4's doubled
// signalling rate the small-transfer region becomes latency-bound
// rather than link-bound, which is the projection's takeaway.
func AblationGen4(q Quality) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-gen4",
		Title:  "BW_RD projected onto PCIe Gen4 x8 (NFP6000-HSW host)",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Bandwidth (Gb/s)",
	}
	gens := []pcie.Generation{pcie.Gen3, pcie.Gen4}
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	type cell struct {
		gen pcie.Generation
		sz  int
	}
	var cells []cell
	for _, gen := range gens {
		for _, sz := range sizes {
			cells = append(cells, cell{gen, sz})
		}
	}
	vals, err := runUnits(cells, func(c cell) (float64, error) {
		link := pcie.DefaultGen3x8()
		link.Gen = c.gen
		sys, err := sysconf.ByName("NFP6000-HSW")
		if err != nil {
			return 0, err
		}
		inst, err := sys.Build(sysconf.Options{
			BufferSize: 1 << 20, NoJitter: true, Link: &link, Seed: 61,
		})
		if err != nil {
			return 0, err
		}
		res, err := bench.BwRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: c.sz,
			Cache: bench.HostWarm, Transactions: q.BwN(),
		})
		if err != nil {
			return 0, err
		}
		return res.Gbps, nil
	})
	if err != nil {
		return nil, err
	}
	measOf := make(map[pcie.Generation]*stats.Series)
	for _, gen := range gens {
		link := pcie.DefaultGen3x8()
		link.Gen = gen
		mdl := &stats.Series{Name: fmt.Sprintf("Model BW (%s)", gen)}
		for _, sz := range sizes {
			mdl.Append(float64(sz), model.EffectiveReadBandwidth(link, sz)/1e9)
		}
		measOf[gen] = &stats.Series{Name: fmt.Sprintf("BW_RD (%s)", gen)}
		fig.Series = append(fig.Series, mdl, measOf[gen])
	}
	for i, c := range cells {
		measOf[c.gen].Append(float64(c.sz), vals[i])
	}
	return fig, nil
}

// AblationWalkers sweeps the IOMMU's page-walker pool size at a fixed
// post-cliff window, isolating the mechanism behind Figure 9's -70%:
// translation throughput is walkers/walkLatency, so the 64B bandwidth
// scales nearly linearly with the pool until the in-flight limit takes
// over.
func AblationWalkers(q Quality) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-walkers",
		Title:  "64B BW_RD beyond the IO-TLB reach vs page-walker pool size",
		XLabel: "Walkers",
		YLabel: "Bandwidth (Gb/s)",
	}
	pool := []int{1, 2, 4, 6, 8, 12}
	vals, err := runUnits(pool, func(walkers int) (float64, error) {
		cfg := iommu.DefaultConfig()
		cfg.Walkers = walkers
		sys, err := sysconf.ByName("NFP6000-BDW")
		if err != nil {
			return 0, err
		}
		inst, err := sys.Build(sysconf.Options{
			NoJitter: true, IOMMU: true, IOMMUConfig: &cfg, Seed: 67,
		})
		if err != nil {
			return 0, err
		}
		res, err := bench.BwRd(inst.Target(), bench.Params{
			WindowSize: 16 << 20, TransferSize: 64,
			Cache: bench.HostWarm, Transactions: q.BwN(),
		})
		if err != nil {
			return 0, err
		}
		return res.Gbps, nil
	})
	if err != nil {
		return nil, err
	}
	s := &stats.Series{Name: "64B BW_RD @16MB window"}
	for i, walkers := range pool {
		s.Append(float64(walkers), vals[i])
	}
	fig.Series = []*stats.Series{s}
	return fig, nil
}

// AblationInFlight sweeps the device's in-flight DMA limit for 64B
// reads, the paper's §2 sizing argument: covering a ~550ns latency at
// 40G line rate for small packets needs ~30 concurrent DMAs. Bandwidth
// grows linearly with the window until the link serialization takes
// over.
func AblationInFlight(q Quality) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-inflight",
		Title:  "64B BW_RD vs device in-flight DMA limit (NFP6000-HSW)",
		XLabel: "In-flight DMAs",
		YLabel: "Bandwidth (Gb/s)",
	}
	limits := []int{1, 2, 4, 8, 16, 32, 64, 128}
	vals, err := runUnits(limits, func(inflight int) (float64, error) {
		sys, err := sysconf.ByName("NFP6000-HSW")
		if err != nil {
			return 0, err
		}
		inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true, Seed: 71})
		if err != nil {
			return 0, err
		}
		// Rebuild the engine with the modified limit.
		devCfg := inst.Engine.Config()
		devCfg.MaxInFlight = inflight
		eng, err := rebuiltEngine(inst, devCfg)
		if err != nil {
			return 0, err
		}
		tgt := &bench.Target{Host: inst.Host, Engine: eng, Buffer: inst.Buffer}
		res, err := bench.BwRd(tgt, bench.Params{
			WindowSize: 8 << 10, TransferSize: 64,
			Cache: bench.HostWarm, Transactions: q.BwN(),
		})
		if err != nil {
			return 0, err
		}
		return res.Gbps, nil
	})
	if err != nil {
		return nil, err
	}
	s := &stats.Series{Name: "64B BW_RD"}
	for i, inflight := range limits {
		s.Append(float64(inflight), vals[i])
	}
	fig.Series = []*stats.Series{s}
	return fig, nil
}

// rebuiltEngine swaps the instance's DMA engine for one with modified
// parameters, preserving the kernel and root complex.
func rebuiltEngine(inst *sysconf.Instance, cfg device.Config) (*device.Engine, error) {
	return device.New(inst.Kernel, inst.RC, cfg)
}
