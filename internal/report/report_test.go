package report

import (
	"strings"
	"testing"
)

// skipInShort skips the heavyweight experiment sweeps under
// `go test -short` so a short run finishes in seconds; CI runs both
// modes. The gated tests all use the Quick quality knob already — what
// remains slow is the breadth of their parameter grids.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow experiment sweep; run without -short")
	}
}

// TestParallelDeterminism asserts the runner contract at the report
// layer: the rendered output of a sweep is byte-identical for every
// worker count.
func TestParallelDeterminism(t *testing.T) {
	defer SetParallelism(0)
	render := func(workers int) string {
		SetParallelism(workers)
		fig, err := Fig5(Quick)
		if err != nil {
			t.Fatal(err)
		}
		return fig.TSV()
	}
	want := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != want {
			t.Fatalf("workers=%d output differs from workers=1:\n%s\n--- vs ---\n%s",
				workers, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Errorf("render:\n%s", out)
	}
	tsv := tbl.TSV()
	if !strings.Contains(tsv, "a\tbb") || !strings.Contains(tsv, "333\t4") {
		t.Errorf("tsv:\n%s", tsv)
	}
}

func TestFigureTSV(t *testing.T) {
	fig := Fig1()
	out := fig.TSV()
	for _, want := range []string{"# fig1", "Effective PCIe BW", "Simple NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if fig.SeriesByName("nope") != nil {
		t.Error("unknown series found")
	}
}

func TestFig1Shapes(t *testing.T) {
	fig := Fig1()
	eff := fig.SeriesByName("Effective PCIe BW")
	simple := fig.SeriesByName("Simple NIC")
	kernel := fig.SeriesByName("Modern NIC (kernel driver)")
	dpdk := fig.SeriesByName("Modern NIC (DPDK driver)")
	eth := fig.SeriesByName("40G Ethernet")
	if eff == nil || simple == nil || kernel == nil || dpdk == nil || eth == nil {
		t.Fatal("missing series")
	}
	// Paper: effective BW ~50 Gb/s at large sizes; ordering holds
	// everywhere; simple NIC crosses 40G Ethernet only past ~512B.
	if v := eff.YAt(1500); v < 48 || v > 53 {
		t.Errorf("effective BW @1500 = %.1f", v)
	}
	for i := range eff.X {
		if !(eff.Y[i] >= dpdk.Y[i] && dpdk.Y[i] >= kernel.Y[i] && kernel.Y[i] > simple.Y[i]) {
			t.Fatalf("ordering broken at %gB", eff.X[i])
		}
	}
	if simple.YAt(256) >= eth.YAt(256) {
		t.Error("simple NIC reaches line rate at 256B")
	}
	if simple.YAt(1024) < eth.YAt(1024) {
		t.Error("simple NIC below line rate at 1024B")
	}
}

func TestFig2Shapes(t *testing.T) {
	fig, err := Fig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	total := fig.SeriesByName("NIC")
	frac := fig.SeriesByName("PCIe fraction")
	if total == nil || frac == nil {
		t.Fatal("missing series")
	}
	// Paper Fig 2: ~1000ns around small frames rising to ~2400ns at
	// 1500B; PCIe fraction falls from ~0.9 to ~0.77.
	if v := total.YAt(128); v < 800 || v > 1200 {
		t.Errorf("total @128B = %.0fns", v)
	}
	if v := total.YAt(1500); v < 2000 || v > 3000 {
		t.Errorf("total @1500B = %.0fns", v)
	}
	if f := frac.YAt(128); f < 0.82 || f > 0.95 {
		t.Errorf("fraction @128B = %.2f", f)
	}
	if f := frac.YAt(1500); f < 0.70 || f > 0.85 {
		t.Errorf("fraction @1500B = %.2f", f)
	}
	if frac.YAt(1500) >= frac.YAt(128) {
		t.Error("PCIe fraction does not fall with size")
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.Render()
	for _, want := range []string{"NFP6000-BDW", "NetFPGA-SUME", "Sandy Bridge", "25MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	figs, err := Fig4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	rd := figs[0]
	nfp := rd.SeriesByName("fig4a (NFP6000-HSW)")
	net := rd.SeriesByName("fig4a (NetFPGA-HSW)")
	mdl := rd.SeriesByName("Model BW")
	if nfp == nil || net == nil || mdl == nil {
		t.Fatal("missing series")
	}
	// §6.1: NetFPGA follows the model closely; NFP slightly below;
	// neither reaches 40G line rate for small reads.
	if net.YAt(1024) < 0.85*mdl.YAt(1024) {
		t.Errorf("NetFPGA @1024 = %.1f far from model %.1f", net.YAt(1024), mdl.YAt(1024))
	}
	if nfp.YAt(64) >= net.YAt(64) {
		t.Errorf("NFP (%.1f) above NetFPGA (%.1f) at 64B", nfp.YAt(64), net.YAt(64))
	}
	eth := rd.SeriesByName("40G Ethernet")
	if nfp.YAt(64) >= eth.YAt(64) {
		t.Error("64B reads reach 40G line rate; paper says they must not")
	}
	// Saw-tooth: measured BW drops crossing the MPS boundary (256->257).
	if net.YAt(257) >= net.YAt(256) {
		t.Error("no saw-tooth drop at 257B for reads")
	}
	// Writes: link-limited at ~42 Gb/s for 64B; higher for large.
	wr := figs[1]
	netw := wr.SeriesByName("fig4b (NetFPGA-HSW)")
	if v := netw.YAt(64); v < 34 || v > 44 {
		t.Errorf("BW_WR @64B = %.1f", v)
	}
	if netw.YAt(2048) <= netw.YAt(64) {
		t.Error("write bandwidth not rising with size")
	}
	// Read/write: per-direction throughput below unidirectional read.
	rw := figs[2]
	netrw := rw.SeriesByName("fig4c (NetFPGA-HSW)")
	if netrw.YAt(512) > net.YAt(512) {
		t.Error("BW_RDWR above BW_RD at 512B")
	}
}

func TestFig5Shapes(t *testing.T) {
	fig, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	nfpRd := fig.SeriesByName("LAT_RD (NFP6000-HSW)")
	netRd := fig.SeriesByName("LAT_RD (NetFPGA-HSW)")
	nfpWr := fig.SeriesByName("LAT_WRRD (NFP6000-HSW)")
	if nfpRd == nil || netRd == nil || nfpWr == nil {
		t.Fatal("missing series")
	}
	// Latency rises with size; NFP above NetFPGA with a widening gap;
	// WRRD above RD.
	for i := 1; i < nfpRd.Len(); i++ {
		if nfpRd.Y[i] < nfpRd.Y[i-1] {
			t.Errorf("NFP LAT_RD not monotone at %gB", nfpRd.X[i])
		}
	}
	gapSmall := nfpRd.YAt(64) - netRd.YAt(64)
	gapLarge := nfpRd.YAt(2048) - netRd.YAt(2048)
	if gapSmall < 60 || gapSmall > 160 {
		t.Errorf("small-size NFP-NetFPGA gap = %.0fns, want ~100", gapSmall)
	}
	if gapLarge <= gapSmall {
		t.Error("gap does not widen with size")
	}
	if nfpWr.YAt(64) <= nfpRd.YAt(64) {
		t.Error("LAT_WRRD below LAT_RD")
	}
	// Fig 5 endpoints: NFP ~600ns at 8B rising to ~1500ns at 2048B.
	if v := nfpRd.YAt(8); v < 480 || v > 680 {
		t.Errorf("NFP LAT_RD @8B = %.0f", v)
	}
	if v := nfpRd.YAt(2048); v < 1300 || v > 1700 {
		t.Errorf("NFP LAT_RD @2048B = %.0f", v)
	}
}

func TestFig6Shapes(t *testing.T) {
	fig, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	e5 := fig.SeriesByName("NFP6000-HSW")
	e3 := fig.SeriesByName("NFP6000-HSW-E3")
	if e5 == nil || e3 == nil {
		t.Fatal("missing series")
	}
	med := func(s interface{ YAt(float64) float64 }) float64 { return 0 } // unused helper placeholder
	_ = med
	// E5 is tight: the CDF climbs from ~520 to ~600 almost vertically.
	// E3: median > 1100ns, long tail.
	e5Med := inverseAt(e5.X, e5.Y, 0.5)
	e3Med := inverseAt(e3.X, e3.Y, 0.5)
	if e5Med < 500 || e5Med > 620 {
		t.Errorf("E5 median = %.0f, want ~547", e5Med)
	}
	if e3Med < 1000 || e3Med > 1500 {
		t.Errorf("E3 median = %.0f, want ~1213", e3Med)
	}
	e3p99 := inverseAt(e3.X, e3.Y, 0.99)
	if e3p99 < 4000 || e3p99 > 8000 {
		t.Errorf("E3 p99 = %.0f, want ~5707", e3p99)
	}
	// §6.2: the E3 minimum is lower than the E5's.
	if e3.X[0] >= e5.X[0] {
		t.Errorf("E3 min %.0f not below E5 min %.0f", e3.X[0], e5.X[0])
	}
}

// inverseAt returns the first x with cumulative fraction >= p.
func inverseAt(xs, cum []float64, p float64) float64 {
	for i := range xs {
		if cum[i] >= p {
			return xs[i]
		}
	}
	return xs[len(xs)-1]
}

func TestFig7Shapes(t *testing.T) {
	skipInShort(t)
	figs, err := Fig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	latFig, bwFig := figs[0], figs[1]

	rdCold := latFig.SeriesByName("8B LAT_RD (cold)")
	rdWarm := latFig.SeriesByName("8B LAT_RD (warm)")
	wrCold := latFig.SeriesByName("8B LAT_WRRD (cold)")
	wrWarm := latFig.SeriesByName("8B LAT_WRRD (warm)")
	if rdCold == nil || rdWarm == nil || wrCold == nil || wrWarm == nil {
		t.Fatal("missing latency series")
	}
	// Cold reads: flat (all DRAM).
	if d := rdCold.YAt(64<<20) - rdCold.YAt(4<<10); d > 25 || d < -25 {
		t.Errorf("cold LAT_RD not flat: delta %.0f", d)
	}
	// Warm reads: ~70ns cheaper inside the LLC, rising once the window
	// exceeds the 15MB LLC.
	if d := rdCold.YAt(64<<10) - rdWarm.YAt(64<<10); d < 50 || d > 90 {
		t.Errorf("warm benefit = %.0f, want ~70", d)
	}
	if d := rdWarm.YAt(64<<20) - rdWarm.YAt(64<<10); d < 50 {
		t.Errorf("warm LAT_RD did not rise past the LLC: %.0f", d)
	}
	// Cold WRRD shows the DDIO boundary: fast below 10% of LLC
	// (1.5MB), ~70ns slower beyond it.
	if d := wrCold.YAt(16<<20) - wrCold.YAt(256<<10); d < 50 {
		t.Errorf("DDIO boundary effect = %.0f, want ~70", d)
	}
	// Warm WRRD rises only past the LLC.
	if d := wrWarm.YAt(4<<20) - wrWarm.YAt(64<<10); d > 25 {
		t.Errorf("warm WRRD rose before the LLC boundary: %.0f", d)
	}

	// Bandwidth: 64B reads benefit from residency; writes do not care.
	bwRdCold := bwFig.SeriesByName("64B BW_RD (cold)")
	bwRdWarm := bwFig.SeriesByName("64B BW_RD (warm)")
	bwWrCold := bwFig.SeriesByName("64B BW_WR (cold)")
	bwWrWarm := bwFig.SeriesByName("64B BW_WR (warm)")
	if bwRdWarm.YAt(1<<20) <= bwRdCold.YAt(1<<20)*1.05 {
		t.Errorf("warm BW_RD %.1f not above cold %.1f", bwRdWarm.YAt(1<<20), bwRdCold.YAt(1<<20))
	}
	// Beyond the LLC, warm converges down to cold.
	big := bwRdWarm.YAt(64 << 20)
	if rel := (big - bwRdCold.YAt(64<<20)) / bwRdCold.YAt(64<<20); rel > 0.10 {
		t.Errorf("warm BW_RD still %.0f%% above cold at 64MB", rel*100)
	}
	for _, win := range []int{4 << 10, 1 << 20, 64 << 20} {
		w, c := bwWrWarm.YAt(float64(win)), bwWrCold.YAt(float64(win))
		if rel := (w - c) / c; rel > 0.05 || rel < -0.05 {
			t.Errorf("BW_WR cache sensitivity at %d: %.1f%%", win, rel*100)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	skipInShort(t)
	fig, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s64 := fig.SeriesByName("64B BW_RD")
	s128 := fig.SeriesByName("128B BW_RD")
	s512 := fig.SeriesByName("512B BW_RD")
	if s64 == nil || s128 == nil || s512 == nil {
		t.Fatal("missing series")
	}
	// §6.4: 64B remote reads lose ~20% inside the cache window,
	// ~10% beyond; 128B lose 5-7%; 512B essentially nothing.
	if v := s64.YAt(64 << 10); v > -12 || v < -30 {
		t.Errorf("64B in-cache NUMA penalty = %.1f%%, want ~-20", v)
	}
	if v := s64.YAt(64 << 20); v > -5 || v < -20 {
		t.Errorf("64B out-of-cache NUMA penalty = %.1f%%, want ~-10", v)
	}
	// Paper reports -5..-7% at 128B; in our model 128B reads are
	// already link-capped so the remote penalty is muted (documented
	// deviation in EXPERIMENTS.md). Require the right sign and that it
	// sits between the 64B and 512B penalties.
	if v := s128.YAt(64 << 10); v > 0.5 || v < -15 {
		t.Errorf("128B NUMA penalty = %.1f%%, want small negative", v)
	}
	if !(s64.YAt(64<<10) < s128.YAt(64<<10)) {
		t.Error("64B penalty not larger than 128B penalty")
	}
	if v := s512.YAt(64 << 10); v < -3 || v > 3 {
		t.Errorf("512B NUMA penalty = %.1f%%, want ~0", v)
	}
	// The 64B penalty shrinks once the window leaves the cache.
	if s64.YAt(64<<20) <= s64.YAt(64<<10) {
		t.Error("64B penalty did not shrink beyond the LLC")
	}
}

func TestFig9Shapes(t *testing.T) {
	skipInShort(t)
	fig, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s64 := fig.SeriesByName("64B BW_RD")
	s256 := fig.SeriesByName("256B BW_RD")
	s512 := fig.SeriesByName("512B BW_RD")
	// §6.5: no measurable change while the window fits the IO-TLB
	// reach (256KB = 64 entries x 4KB)...
	for _, s := range []*struct {
		name string
		v    float64
	}{
		{"64B", s64.YAt(64 << 10)},
		{"256B", s256.YAt(64 << 10)},
		{"512B", s512.YAt(64 << 10)},
	} {
		if s.v < -6 || s.v > 6 {
			t.Errorf("%s change inside TLB reach = %.1f%%, want ~0", s.name, s.v)
		}
	}
	// ...then a cliff: ~-70% at 64B, ~-30% at 256B, ~0 at 512B.
	if v := s64.YAt(16 << 20); v > -55 || v < -85 {
		t.Errorf("64B beyond reach = %.1f%%, want ~-70", v)
	}
	if v := s256.YAt(16 << 20); v > -18 || v < -45 {
		t.Errorf("256B beyond reach = %.1f%%, want ~-30", v)
	}
	if v := s512.YAt(16 << 20); v < -10 {
		t.Errorf("512B beyond reach = %.1f%%, want ~0", v)
	}
	// The cliff sits between 256KB and 1MB windows.
	atReach := s64.YAt(256 << 10)
	past := s64.YAt(1 << 20)
	if past > atReach-20 {
		t.Errorf("no cliff between 256KB (%.1f%%) and 1MB (%.1f%%)", atReach, past)
	}
}

func TestTable2(t *testing.T) {
	skipInShort(t)
	tbl, err := Table2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	out := tbl.Render()
	for _, want := range []string{"IOMMU", "DDIO", "NUMA", "superpages", "descriptor rings"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestExpectationsAllPass(t *testing.T) {
	skipInShort(t)
	tbl, err := Expectations(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 15 {
		t.Fatalf("only %d expectation rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// The single documented deviation (128B NUMA) is allowed to
		// carry a "deviation" note in its paper column; everything
		// else must be ok.
		if row[4] != "ok" && !strings.Contains(row[2], "deviation") {
			t.Errorf("%s / %s: paper %s measured %s -> %s", row[0], row[1], row[2], row[3], row[4])
		}
	}
}
