// Package report regenerates every table and figure of the paper's
// evaluation from the pciebench simulator and model, as aligned-text
// tables and gnuplot-ready TSV series.
//
// Each experiment function corresponds to one artifact (Fig1..Fig9,
// Table1, Table2); the per-experiment index in DESIGN.md maps them to
// the modules they exercise. EXPERIMENTS.md records paper-reported
// versus measured values; the tests in this package assert the shape
// invariants that record claims.
package report

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"

	"pciebench/internal/runner"
	"pciebench/internal/stats"
	"pciebench/internal/sweep"
)

// parallelism is the worker count for the package's experiment sweeps;
// 0 selects GOMAXPROCS. Every experiment point builds its own simulator
// instance and results are collected in submission order, so figure and
// table output is byte-identical for any setting.
var parallelism atomic.Int64

// SetParallelism sets the worker count used by all experiment sweeps
// (n <= 0 restores the GOMAXPROCS default).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective sweep worker count.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// runUnits evaluates fn over items on the report worker pool, returning
// the outputs in item order. Each call is one parameter sweep: items
// are the sweep points, fn builds whatever simulator state the point
// needs and measures it.
func runUnits[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	return runner.Map(context.Background(), items,
		runner.Options{Workers: Parallelism()},
		func(_ context.Context, _ int, item T) (R, error) { return fn(item) })
}

// Quality scales experiment sizes; the Quick/Full knob and its
// per-benchmark transaction counts are defined once in internal/sweep
// and aliased here for the experiment entry points.
type Quality = sweep.Quality

// Quality levels.
const (
	Quick = sweep.Quick
	Full  = sweep.Full
)

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV renders the table as tab-separated values.
func (t *Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteString("\n")
	}
	return b.String()
}

// Figure is a multi-series result figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []*stats.Series
}

// TSV renders all series in gnuplot "index" format (blank-line
// separated blocks).
func (f *Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n# x=%s y=%s\n", f.ID, f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		b.WriteString(s.TSV())
		b.WriteString("\n")
	}
	return b.String()
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *stats.Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// transferSizes returns the paper's Fig 4 sweep: powers of two from 64
// to 2048 with ±1 B probes around TLP-relevant boundaries.
func transferSizes() []int {
	return []int{
		64, 128, 192, 255, 256, 257, 384, 511, 512, 513,
		768, 1023, 1024, 1025, 1536, 2047, 2048,
	}
}

// latencySizes returns the Fig 5 sweep (8..2048, powers of two).
func latencySizes() []int {
	return []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
}

// windowSizes returns the Fig 7-9 sweep (4 KB .. 64 MB).
func windowSizes() []int {
	return []int{
		4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20,
	}
}
