package report

import (
	"context"
	"fmt"

	"pciebench/internal/model"
	"pciebench/internal/pcie"
	"pciebench/internal/stats"
	"pciebench/internal/sweep"
	"pciebench/internal/sysconf"
)

// Every measured experiment below is a registered sweep.Spec — the
// declarative grid of axes the paper's figure walks — plus a thin
// assembly function that shapes the executed cells into the figure's
// series. The sweep engine runs each cell as an independent runner
// unit with deterministic seeds, so the output stays byte-identical at
// any parallelism while the wall clock scales with the worker count.
// The same specs are runnable standalone from the CLI (`pcie-repro
// -run fig4 gen=4,5`), where the generic grid emitters apply.

func init() {
	for _, s := range []*sweep.Spec{
		fig2Spec(), fig4Spec(), fig5Spec(), fig6Spec(),
		fig7Spec(), fig8Spec(), fig9Spec(), ddioSpec(),
	} {
		sweep.Register(s)
	}
}

// runSpec executes a spec on the report worker pool.
func runSpec(s *sweep.Spec, q Quality) (*sweep.Result, error) {
	return s.Run(context.Background(), sweep.RunOptions{
		Workers: Parallelism(), Quality: q,
	})
}

// Fig1 computes the modeled bidirectional bandwidth of a Gen3 x8 link
// against the achievable throughput of the paper's NIC/driver designs
// (§2, Figure 1).
func Fig1() *Figure {
	cfg := pcie.DefaultGen3x8()
	fig := &Figure{
		ID:     "fig1",
		Title:  "Modeled bidirectional bandwidth, PCIe Gen3 x8",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Bandwidth (Gb/s)",
	}
	eff := &stats.Series{Name: "Effective PCIe BW"}
	eth := &stats.Series{Name: "40G Ethernet"}
	simple := &stats.Series{Name: "Simple NIC"}
	kernel := &stats.Series{Name: "Modern NIC (kernel driver)"}
	dpdk := &stats.Series{Name: "Modern NIC (DPDK driver)"}
	simpleNIC, kernelNIC, dpdkNIC := model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()
	for sz := 64; sz <= 1520; sz += 16 {
		x := float64(sz)
		eff.Append(x, model.EffectiveBidirBandwidth(cfg, sz)/1e9)
		eth.Append(x, model.EthernetLineRate(40e9, sz)/1e9)
		simple.Append(x, simpleNIC.Bandwidth(cfg, sz)/1e9)
		kernel.Append(x, kernelNIC.Bandwidth(cfg, sz)/1e9)
		dpdk.Append(x, dpdkNIC.Bandwidth(cfg, sz)/1e9)
	}
	fig.Series = []*stats.Series{eff, eth, simple, kernel, dpdk}
	return fig
}

// fig2Sizes returns the Figure 2 frame-size sweep (64..1600 step 64).
func fig2Sizes() []int {
	var sizes []int
	for sz := 64; sz <= 1600; sz += 64 {
		sizes = append(sizes, sz)
	}
	return sizes
}

func fig2Spec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "fig2",
		Title:       "Measurement of NIC PCIe latency (loopback)",
		Description: "ExaNIC-style loopback latency and its PCIe share across frame sizes (§2, Fig 2)",
		XAxis:       "transfer",
		XLabel:      "Transfer Size (Bytes)",
		YLabel:      "Median Latency (ns)",
		Axes:        []sweep.Axis{sweep.IntAxis("transfer", fig2Sizes()...)},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "loopback",
			"buffer": "1M", "nojitter": "true",
		},
		SeedMode: sweep.SeedFixed,
	}
}

// Fig2 measures the ExaNIC-style loopback NIC latency and its PCIe
// share across frame sizes (§2, Figure 2). Each frame size is one cell
// with its own loopback instance.
func Fig2(q Quality) (*Figure, error) {
	res, err := runSpec(fig2Spec(), q)
	if err != nil {
		return nil, err
	}
	total := &stats.Series{Name: "NIC"}
	pcieNS := &stats.Series{Name: "PCIe contribution"}
	frac := &stats.Series{Name: "PCIe fraction"}
	for _, c := range res.Cells {
		x := float64(c.Cell.Int("transfer"))
		m := c.Meas[0]
		total.Append(x, m.Median)
		pcieNS.Append(x, m.Median*m.Frac)
		frac.Append(x, m.Frac)
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Measurement of NIC PCIe latency (loopback)",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Median Latency (ns)",
		Series: []*stats.Series{total, pcieNS, frac},
	}, nil
}

// Table1 reproduces the system-configuration table.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: System configurations",
		Columns: []string{"Name", "CPU", "NUMA", "Architecture", "Memory", "OS/Kernel", "Network Adapter", "LLC"},
	}
	for _, s := range sysconf.Systems() {
		t.Rows = append(t.Rows, []string{
			s.Name, s.CPU, s.NUMA, s.Arch, s.Memory, s.OS, s.Adapter.String(),
			fmt.Sprintf("%dMB", s.LLCBytes>>20),
		})
	}
	return t
}

// baselineSystems are the two devices compared in Figures 4 and 5.
var baselineSystems = []string{"NFP6000-HSW", "NetFPGA-HSW"}

// baselineBase is the Fig 4/5 cell setup: an 8 KB host-warmed window
// in a 1 MB buffer, no jitter for reproducible medians.
func baselineBase(seed string) map[string]string {
	return map[string]string{
		"window": "8K", "cache": "warm", "nojitter": "true",
		"buffer": "1M", "seed": seed,
	}
}

// fig4Kinds maps the Figure 4 benchmark axis to sub-figure IDs and
// model curves.
var fig4Kinds = []struct {
	bench string
	id    string
	title string
	model func(pcie.LinkConfig, int) float64
}{
	{"bw_rd", "fig4a", "PCIe Read Bandwidth", model.EffectiveReadBandwidth},
	{"bw_wr", "fig4b", "PCIe Write Bandwidth", model.EffectiveWriteBandwidth},
	{"bw_rdwr", "fig4c", "PCIe Read/Write Bandwidth", model.EffectiveBidirBandwidth},
}

func fig4Spec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "fig4",
		Title:       "Baseline bandwidth, NFP6000-HSW vs NetFPGA-HSW",
		Description: "BW_RD/BW_WR/BW_RDWR across transfer sizes, warm 8KB window (§6.1, Fig 4)",
		XAxis:       "transfer",
		XLabel:      "Transfer Size (Bytes)",
		YLabel:      "Bandwidth (Gb/s)",
		Axes: []sweep.Axis{
			sweep.StrAxis("bench", "bw_rd", "bw_wr", "bw_rdwr"),
			sweep.StrAxis("system", baselineSystems...),
			sweep.IntAxis("transfer", transferSizes()...),
		},
		Base:     baselineBase("11"),
		SeedMode: sweep.SeedFixed,
	}
}

// Fig4 runs the baseline bandwidth comparison (Figure 4): BW_RD, BW_WR
// and BW_RDWR for NFP6000-HSW and NetFPGA-HSW against the model, with a
// warm 8 KB window. Every (benchmark, system, size) point is one cell
// against a freshly built target.
func Fig4(q Quality) ([]*Figure, error) {
	res, err := runSpec(fig4Spec(), q)
	if err != nil {
		return nil, err
	}
	cfg := pcie.DefaultGen3x8()
	var out []*Figure
	idOf := make(map[string]string)
	seriesOf := make(map[string]*stats.Series)
	for _, kind := range fig4Kinds {
		idOf[kind.bench] = kind.id
		fig := &Figure{
			ID:     kind.id,
			Title:  kind.title,
			XLabel: "Transfer Size (Bytes)",
			YLabel: "Bandwidth (Gb/s)",
		}
		mdl := &stats.Series{Name: "Model BW"}
		eth := &stats.Series{Name: "40G Ethernet"}
		for _, sz := range transferSizes() {
			mdl.Append(float64(sz), kind.model(cfg, sz)/1e9)
			eth.Append(float64(sz), model.EthernetLineRate(40e9, sz)/1e9)
		}
		fig.Series = append(fig.Series, mdl, eth)
		for _, sysName := range baselineSystems {
			series := &stats.Series{Name: fmt.Sprintf("%s (%s)", kind.id, sysName)}
			seriesOf[kind.id+"|"+sysName] = series
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	// Assemble from the cells the sweep ran over, so values cannot land
	// on the wrong series if the enumeration ever changes.
	for _, c := range res.Cells {
		key := idOf[c.Cell.Get("bench")] + "|" + c.Cell.Get("system")
		seriesOf[key].Append(float64(c.Cell.Int("transfer")), c.Values[0])
	}
	return out, nil
}

func fig5Spec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "fig5",
		Title:       "Median DMA latency, NFP6000-HSW vs NetFPGA-HSW",
		Description: "Median LAT_RD and LAT_WRRD across transfer sizes (§6.1, Fig 5)",
		XAxis:       "transfer",
		XLabel:      "Transfer Size (Bytes)",
		YLabel:      "Latency (ns)",
		Axes: []sweep.Axis{
			sweep.StrAxis("system", baselineSystems...),
			sweep.IntAxis("transfer", latencySizes()...),
		},
		Base: baselineBase("13"),
		Probes: []sweep.Probe{
			{Label: "LAT_RD", Set: map[string]string{"bench": "lat_rd"}},
			{Label: "LAT_WRRD", Set: map[string]string{"bench": "lat_wrrd"}},
		},
		SeedMode: sweep.SeedFixed,
	}
}

// Fig5 runs the baseline latency comparison (Figure 5): median LAT_RD
// and LAT_WRRD for both devices across transfer sizes. One cell per
// (system, size) pair measures both benchmarks on fresh targets.
func Fig5(q Quality) (*Figure, error) {
	res, err := runSpec(fig5Spec(), q)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Median DMA latency, NFP6000-HSW vs NetFPGA-HSW",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Latency (ns)",
	}
	rdOf := make(map[string]*stats.Series)
	wrOf := make(map[string]*stats.Series)
	for _, sysName := range baselineSystems {
		rdOf[sysName] = &stats.Series{Name: "LAT_RD (" + sysName + ")"}
		wrOf[sysName] = &stats.Series{Name: "LAT_WRRD (" + sysName + ")"}
		fig.Series = append(fig.Series, rdOf[sysName], wrOf[sysName])
	}
	for _, c := range res.Cells {
		sysName := c.Cell.Get("system")
		x := float64(c.Cell.Int("transfer"))
		rdOf[sysName].Append(x, c.Values[0])
		wrOf[sysName].Append(x, c.Values[1])
	}
	return fig, nil
}

func fig6Spec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "fig6",
		Title:       "Latency distribution, 64B DMA reads, warm cache",
		Description: "64B read-latency CDFs for the Xeon E5 and E3 hosts, jitter models active (§6.2, Fig 6)",
		XLabel:      "Latency (ns)",
		YLabel:      "CDF",
		Axes:        []sweep.Axis{sweep.StrAxis("system", "NFP6000-HSW", "NFP6000-HSW-E3")},
		Base: map[string]string{
			"bench": "lat_rd", "window": "8K", "transfer": "64",
			"cache": "warm", "buffer": "1M", "seed": "17",
		},
		Probes:   []sweep.Probe{{Label: "LAT_RD", Metric: sweep.MetricCDF}},
		SeedMode: sweep.SeedFixed,
	}
}

// Fig6 produces the 64 B read-latency CDFs for the Xeon E5 and E3
// systems (Figure 6), with the jitter models active. Each system is one
// cell.
func Fig6(q Quality) (*Figure, error) {
	res, err := runSpec(fig6Spec(), q)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig6",
		Title:  "Latency distribution, 64B DMA reads, warm cache",
		XLabel: "Latency (ns)",
		YLabel: "CDF",
	}
	for _, c := range res.Cells {
		cdf := c.Meas[0].CDF
		s := &stats.Series{Name: c.Cell.Get("system")}
		s.X = cdf.Values
		s.Y = cdf.Cum
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func fig7Spec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "fig7",
		Title:       "Cache effects on latency and bandwidth (NFP6000-SNB)",
		Description: "Window sweep exposing LLC and DDIO effects, cold vs warm (§6.3, Fig 7)",
		XAxis:       "window",
		XLabel:      "Window size (Bytes)",
		YLabel:      "Latency (ns) / Bandwidth (Gb/s)",
		Axes: []sweep.Axis{
			sweep.StrAxis("cache", "cold", "warm"),
			sweep.IntAxis("window", windowSizes()...),
		},
		Base: map[string]string{
			"system": "NFP6000-SNB", "nojitter": "true", "seed": "19",
		},
		// All four benchmarks of a point run against one freshly built
		// instance, exactly like the paper's per-point runs.
		SharedInstance: true,
		Probes: []sweep.Probe{
			{Label: "8B LAT_RD", Set: map[string]string{"bench": "lat_rd", "transfer": "8", "direct": "true"}},
			{Label: "8B LAT_WRRD", Set: map[string]string{"bench": "lat_wrrd", "transfer": "8", "direct": "true"}},
			{Label: "64B BW_RD", Set: map[string]string{"bench": "bw_rd", "transfer": "64"}},
			{Label: "64B BW_WR", Set: map[string]string{"bench": "bw_wr", "transfer": "64"}},
		},
		SeedMode: sweep.SeedFixed,
	}
}

// Fig7 sweeps the window size to expose LLC and DDIO effects on the
// NFP6000-SNB system (Figure 7): (a) 8 B latency via the direct command
// interface, cold vs warm; (b) 64 B bandwidth, cold vs warm. One cell
// per (cache state, window) runs all four benchmarks against a shared
// freshly built instance.
func Fig7(q Quality) ([]*Figure, error) {
	res, err := runSpec(fig7Spec(), q)
	if err != nil {
		return nil, err
	}
	figA := &Figure{
		ID: "fig7a", Title: "Cache effects on latency (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Latency (ns)",
	}
	figB := &Figure{
		ID: "fig7b", Title: "Cache effects on bandwidth (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Bandwidth (Gb/s)",
	}
	type group struct{ latRd, latWr, bwRd, bwWr *stats.Series }
	groups := make(map[string]group)
	for _, cache := range []string{"cold", "warm"} {
		g := group{
			latRd: &stats.Series{Name: fmt.Sprintf("8B LAT_RD (%s)", cache)},
			latWr: &stats.Series{Name: fmt.Sprintf("8B LAT_WRRD (%s)", cache)},
			bwRd:  &stats.Series{Name: fmt.Sprintf("64B BW_RD (%s)", cache)},
			bwWr:  &stats.Series{Name: fmt.Sprintf("64B BW_WR (%s)", cache)},
		}
		groups[cache] = g
		figA.Series = append(figA.Series, g.latRd, g.latWr)
		figB.Series = append(figB.Series, g.bwRd, g.bwWr)
	}
	for _, c := range res.Cells {
		g := groups[c.Cell.Get("cache")]
		x := float64(c.Cell.Int("window"))
		g.latRd.Append(x, c.Values[0])
		g.latWr.Append(x, c.Values[1])
		g.bwRd.Append(x, c.Values[2])
		g.bwWr.Append(x, c.Values[3])
	}
	return []*Figure{figA, figB}, nil
}

// bwDeltaSpec is the shared shape of Figures 8 and 9: for several
// transfer sizes across window sizes, measure warm-cache BW_RD on
// NFP6000-BDW under a baseline and a perturbed build of the system,
// and report the percentage change. One cell per (size, window)
// measures both settings.
func bwDeltaSpec(name, title, description, seed string, extraBase, contrastSet map[string]string) *sweep.Spec {
	base := map[string]string{
		"system": "NFP6000-BDW", "bench": "bw_rd", "cache": "warm",
		"nojitter": "true", "seed": seed,
	}
	for k, v := range extraBase {
		base[k] = v
	}
	return &sweep.Spec{
		Name:        name,
		Title:       title,
		Description: description,
		XAxis:       "window",
		XLabel:      "Window size (Bytes)",
		YLabel:      "% change of bandwidth",
		Axes: []sweep.Axis{
			sweep.IntAxis("transfer", 64, 128, 256, 512),
			sweep.IntAxis("window", windowSizes()...),
		},
		Base:     base,
		Contrast: &sweep.Contrast{Set: contrastSet},
		SeedMode: sweep.SeedFixed,
	}
}

// bwDeltaFigure assembles a Figure 8/9-shaped result: one series per
// transfer size across window sizes.
func bwDeltaFigure(s *sweep.Spec, q Quality, id, title string) (*Figure, error) {
	res, err := runSpec(s, q)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Window size (Bytes)", YLabel: "% change of bandwidth",
	}
	seriesOf := make(map[int]*stats.Series)
	for _, sz := range []int{64, 128, 256, 512} {
		seriesOf[sz] = &stats.Series{Name: fmt.Sprintf("%dB BW_RD", sz)}
		fig.Series = append(fig.Series, seriesOf[sz])
	}
	for _, c := range res.Cells {
		seriesOf[c.Cell.Int("transfer")].Append(float64(c.Cell.Int("window")), c.Values[0])
	}
	return fig, nil
}

func fig8Spec() *sweep.Spec {
	return bwDeltaSpec("fig8",
		"Local vs remote DMA reads, warm cache (NFP6000-BDW)",
		"NUMA penalty: % change of warm BW_RD, node-local vs remote buffer (§6.4, Fig 8)",
		"23",
		map[string]string{"node": "0"},
		map[string]string{"node": "1"})
}

// Fig8 measures the NUMA penalty on NFP6000-BDW (Figure 8): percentage
// change of warm-cache BW_RD between a node-local and a remote buffer.
func Fig8(q Quality) (*Figure, error) {
	return bwDeltaFigure(fig8Spec(), q, "fig8",
		"Local vs remote DMA reads, warm cache (NFP6000-BDW)")
}

func fig9Spec() *sweep.Spec {
	return bwDeltaSpec("fig9",
		"IOMMU impact on DMA reads, warm cache (NFP6000-BDW)",
		"IOMMU impact: % change of warm BW_RD, IOMMU on (4KB mappings) vs off (§6.5, Fig 9)",
		"29",
		map[string]string{"iommu": "false", "sp": "false"},
		map[string]string{"iommu": "true"})
}

// Fig9 measures the IOMMU impact on NFP6000-BDW (Figure 9): percentage
// change of warm-cache BW_RD with the IOMMU enabled (4 KB mappings,
// sp_off) relative to disabled.
func Fig9(q Quality) (*Figure, error) {
	return bwDeltaFigure(fig9Spec(), q, "fig9",
		"IOMMU impact on DMA reads, warm cache (NFP6000-BDW)")
}

func ddioSpec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "table2-ddio",
		Title:       "DDIO: 8B direct-read latency, warm vs cold (NFP6000-SNB)",
		Description: "Descriptor-sized direct reads with the window cache-resident vs thrashed (Table 2)",
		XAxis:       "cache",
		XLabel:      "Cache state",
		YLabel:      "Median latency (ns)",
		Axes:        []sweep.Axis{sweep.StrAxis("cache", "warm", "cold")},
		Base: map[string]string{
			"system": "NFP6000-SNB", "bench": "lat_rd", "window": "64K",
			"transfer": "8", "direct": "true", "nojitter": "true", "seed": "31",
		},
		SeedMode: sweep.SeedFixed,
	}
}

// Table2 derives the paper's notable-findings table from fresh
// measurements (Table 2), quoting the measured evidence for each
// recommendation.
func Table2(q Quality) (*Table, error) {
	t := &Table{
		Title:   "Table 2: Notable findings, derived experimentally",
		Columns: []string{"Area", "Observation (measured)", "Recommendation"},
	}

	// IOMMU: throughput collapse beyond the IO-TLB reach.
	fig9, err := Fig9(q)
	if err != nil {
		return nil, err
	}
	s64 := fig9.SeriesByName("64B BW_RD")
	inReach := s64.YAt(64 << 10)
	beyond := s64.YAt(16 << 20)
	t.Rows = append(t.Rows, []string{
		"IOMMU (Fig 9)",
		fmt.Sprintf("64B read bandwidth %.0f%% inside the IO-TLB reach, %.0f%% beyond it", inReach, beyond),
		"Co-locate I/O buffers into superpages.",
	})

	// DDIO: warm descriptor-sized accesses are faster. The two cache
	// states are independent cells.
	ddio, err := runSpec(ddioSpec(), q)
	if err != nil {
		return nil, err
	}
	warm, cold := ddio.Cells[0].Values[0], ddio.Cells[1].Values[0]
	t.Rows = append(t.Rows, []string{
		"DDIO (Fig 7)",
		fmt.Sprintf("small reads %.0fns faster when cache resident (%.0f vs %.0f)", cold-warm, warm, cold),
		"DDIO improves descriptor ring access and small-packet receive.",
	})

	// NUMA small transfers: remote cache reads cost bandwidth.
	fig8, err := Fig8(q)
	if err != nil {
		return nil, err
	}
	n64 := fig8.SeriesByName("64B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, small transactions (Fig 8)",
		fmt.Sprintf("64B remote reads lose %.0f%% of bandwidth vs local cache", -n64),
		"Place descriptor rings on the node local to the device.",
	})

	// NUMA large transfers: locality stops mattering.
	n512 := fig8.SeriesByName("512B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, large transactions (Fig 8)",
		fmt.Sprintf("512B remote reads change bandwidth by only %.1f%%", n512),
		"Place packet buffers on the node where processing happens.",
	})
	return t, nil
}
