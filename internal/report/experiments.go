package report

import (
	"fmt"

	"pciebench/internal/bench"
	"pciebench/internal/model"
	"pciebench/internal/nicsim"
	"pciebench/internal/pcie"
	"pciebench/internal/stats"
	"pciebench/internal/sysconf"
)

// Fig1 computes the modeled bidirectional bandwidth of a Gen3 x8 link
// against the achievable throughput of the paper's NIC/driver designs
// (§2, Figure 1).
func Fig1() *Figure {
	cfg := pcie.DefaultGen3x8()
	fig := &Figure{
		ID:     "fig1",
		Title:  "Modeled bidirectional bandwidth, PCIe Gen3 x8",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Bandwidth (Gb/s)",
	}
	eff := &stats.Series{Name: "Effective PCIe BW"}
	eth := &stats.Series{Name: "40G Ethernet"}
	simple := &stats.Series{Name: "Simple NIC"}
	kernel := &stats.Series{Name: "Modern NIC (kernel driver)"}
	dpdk := &stats.Series{Name: "Modern NIC (DPDK driver)"}
	simpleNIC, kernelNIC, dpdkNIC := model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()
	for sz := 64; sz <= 1520; sz += 16 {
		x := float64(sz)
		eff.Append(x, model.EffectiveBidirBandwidth(cfg, sz)/1e9)
		eth.Append(x, model.EthernetLineRate(40e9, sz)/1e9)
		simple.Append(x, simpleNIC.Bandwidth(cfg, sz)/1e9)
		kernel.Append(x, kernelNIC.Bandwidth(cfg, sz)/1e9)
		dpdk.Append(x, dpdkNIC.Bandwidth(cfg, sz)/1e9)
	}
	fig.Series = []*stats.Series{eff, eth, simple, kernel, dpdk}
	return fig
}

// Fig2 measures the ExaNIC-style loopback NIC latency and its PCIe
// share across frame sizes (§2, Figure 2).
func Fig2(q Quality) (*Figure, error) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		return nil, err
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
	if err != nil {
		return nil, err
	}
	inst.Buffer.WarmHost(0, 64<<10) // RX ring is hot in a polling app

	count := 16
	if q == Full {
		count = 200
	}
	total := &stats.Series{Name: "NIC"}
	pcieNS := &stats.Series{Name: "PCIe contribution"}
	frac := &stats.Series{Name: "PCIe fraction"}
	for sz := 64; sz <= 1600; sz += 64 {
		samples, err := nicsim.Loopback(inst.RC, nicsim.DefaultLoopback(), inst.Buffer.DMAAddr(0), sz, count)
		if err != nil {
			return nil, err
		}
		med, f := nicsim.MedianLoopback(samples)
		total.Append(float64(sz), med.Nanoseconds())
		pcieNS.Append(float64(sz), med.Nanoseconds()*f)
		frac.Append(float64(sz), f)
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Measurement of NIC PCIe latency (loopback)",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Median Latency (ns)",
		Series: []*stats.Series{total, pcieNS, frac},
	}, nil
}

// Table1 reproduces the system-configuration table.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: System configurations",
		Columns: []string{"Name", "CPU", "NUMA", "Architecture", "Memory", "OS/Kernel", "Network Adapter", "LLC"},
	}
	for _, s := range sysconf.Systems() {
		t.Rows = append(t.Rows, []string{
			s.Name, s.CPU, s.NUMA, s.Arch, s.Memory, s.OS, s.Adapter.String(),
			fmt.Sprintf("%dMB", s.LLCBytes>>20),
		})
	}
	return t
}

// baselineTarget builds the Fig 4/5 setup: the named system with an
// 8 KB host-warmed buffer window, no jitter for reproducible medians.
func baselineTarget(name string, seed int64) (*bench.Target, error) {
	sys, err := sysconf.ByName(name)
	if err != nil {
		return nil, err
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	return inst.Target(), nil
}

// Fig4 runs the baseline bandwidth comparison (Figure 4): BW_RD, BW_WR
// and BW_RDWR for NFP6000-HSW and NetFPGA-HSW against the model, with a
// warm 8 KB window.
func Fig4(q Quality) ([]*Figure, error) {
	cfg := pcie.DefaultGen3x8()
	kinds := []struct {
		id    string
		title string
		run   func(*bench.Target, bench.Params) (*bench.BandwidthResult, error)
		model func(pcie.LinkConfig, int) float64
	}{
		{"fig4a", "PCIe Read Bandwidth", bench.BwRd, model.EffectiveReadBandwidth},
		{"fig4b", "PCIe Write Bandwidth", bench.BwWr, model.EffectiveWriteBandwidth},
		{"fig4c", "PCIe Read/Write Bandwidth", bench.BwRdWr, model.EffectiveBidirBandwidth},
	}
	var out []*Figure
	for _, kind := range kinds {
		fig := &Figure{
			ID:     kind.id,
			Title:  kind.title,
			XLabel: "Transfer Size (Bytes)",
			YLabel: "Bandwidth (Gb/s)",
		}
		mdl := &stats.Series{Name: "Model BW"}
		eth := &stats.Series{Name: "40G Ethernet"}
		for _, sz := range transferSizes() {
			mdl.Append(float64(sz), kind.model(cfg, sz)/1e9)
			eth.Append(float64(sz), model.EthernetLineRate(40e9, sz)/1e9)
		}
		fig.Series = append(fig.Series, mdl, eth)
		for _, sysName := range []string{"NFP6000-HSW", "NetFPGA-HSW"} {
			series := &stats.Series{Name: fmt.Sprintf("%s (%s)", kind.id, sysName)}
			for _, sz := range transferSizes() {
				tgt, err := baselineTarget(sysName, 11)
				if err != nil {
					return nil, err
				}
				res, err := kind.run(tgt, bench.Params{
					WindowSize: 8 << 10, TransferSize: sz,
					Cache: bench.HostWarm, Transactions: q.bwN(),
				})
				if err != nil {
					return nil, err
				}
				series.Append(float64(sz), res.Gbps)
			}
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig5 runs the baseline latency comparison (Figure 5): median LAT_RD
// and LAT_WRRD for both devices across transfer sizes.
func Fig5(q Quality) (*Figure, error) {
	fig := &Figure{
		ID:     "fig5",
		Title:  "Median DMA latency, NFP6000-HSW vs NetFPGA-HSW",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Latency (ns)",
	}
	for _, sysName := range []string{"NFP6000-HSW", "NetFPGA-HSW"} {
		rd := &stats.Series{Name: "LAT_RD (" + sysName + ")"}
		wr := &stats.Series{Name: "LAT_WRRD (" + sysName + ")"}
		for _, sz := range latencySizes() {
			tgt, err := baselineTarget(sysName, 13)
			if err != nil {
				return nil, err
			}
			p := bench.Params{
				WindowSize: 8 << 10, TransferSize: sz,
				Cache: bench.HostWarm, Transactions: q.latN(),
			}
			r1, err := bench.LatRd(tgt, p)
			if err != nil {
				return nil, err
			}
			rd.Append(float64(sz), r1.Summary.Median)
			tgt, err = baselineTarget(sysName, 13)
			if err != nil {
				return nil, err
			}
			r2, err := bench.LatWrRd(tgt, p)
			if err != nil {
				return nil, err
			}
			wr.Append(float64(sz), r2.Summary.Median)
		}
		fig.Series = append(fig.Series, rd, wr)
	}
	return fig, nil
}

// Fig6 produces the 64 B read-latency CDFs for the Xeon E5 and E3
// systems (Figure 6), with the jitter models active.
func Fig6(q Quality) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Latency distribution, 64B DMA reads, warm cache",
		XLabel: "Latency (ns)",
		YLabel: "CDF",
	}
	for _, sysName := range []string{"NFP6000-HSW", "NFP6000-HSW-E3"} {
		sys, err := sysconf.ByName(sysName)
		if err != nil {
			return nil, err
		}
		inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, Seed: 17})
		if err != nil {
			return nil, err
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: 64,
			Cache: bench.HostWarm, Transactions: q.cdfN(),
		})
		if err != nil {
			return nil, err
		}
		cdf, err := res.CDF()
		if err != nil {
			return nil, err
		}
		s := &stats.Series{Name: sysName}
		s.X = cdf.Values
		s.Y = cdf.Cum
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig7 sweeps the window size to expose LLC and DDIO effects on the
// NFP6000-SNB system (Figure 7): (a) 8 B latency via the direct command
// interface, cold vs warm; (b) 64 B bandwidth, cold vs warm.
func Fig7(q Quality) ([]*Figure, error) {
	figA := &Figure{
		ID: "fig7a", Title: "Cache effects on latency (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Latency (ns)",
	}
	figB := &Figure{
		ID: "fig7b", Title: "Cache effects on bandwidth (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Bandwidth (Gb/s)",
	}
	states := []bench.CacheState{bench.Cold, bench.HostWarm}
	for _, cache := range states {
		latRd := &stats.Series{Name: fmt.Sprintf("8B LAT_RD (%s)", cache)}
		latWr := &stats.Series{Name: fmt.Sprintf("8B LAT_WRRD (%s)", cache)}
		bwRd := &stats.Series{Name: fmt.Sprintf("64B BW_RD (%s)", cache)}
		bwWr := &stats.Series{Name: fmt.Sprintf("64B BW_WR (%s)", cache)}
		for _, win := range windowSizes() {
			sys, err := sysconf.ByName("NFP6000-SNB")
			if err != nil {
				return nil, err
			}
			inst, err := sys.Build(sysconf.Options{NoJitter: true, Seed: 19})
			if err != nil {
				return nil, err
			}
			tgt := inst.Target()
			pl := bench.Params{
				WindowSize: win, TransferSize: 8, Cache: cache,
				Transactions: q.latN(), Direct: true,
			}
			r1, err := bench.LatRd(tgt, pl)
			if err != nil {
				return nil, err
			}
			latRd.Append(float64(win), r1.Summary.Median)
			r2, err := bench.LatWrRd(tgt, pl)
			if err != nil {
				return nil, err
			}
			latWr.Append(float64(win), r2.Summary.Median)

			pb := bench.Params{
				WindowSize: win, TransferSize: 64, Cache: cache,
				Transactions: q.bwN(),
			}
			b1, err := bench.BwRd(tgt, pb)
			if err != nil {
				return nil, err
			}
			bwRd.Append(float64(win), b1.Gbps)
			b2, err := bench.BwWr(tgt, pb)
			if err != nil {
				return nil, err
			}
			bwWr.Append(float64(win), b2.Gbps)
		}
		figA.Series = append(figA.Series, latRd, latWr)
		figB.Series = append(figB.Series, bwRd, bwWr)
	}
	return []*Figure{figA, figB}, nil
}

// Fig8 measures the NUMA penalty on NFP6000-BDW (Figure 8): percentage
// change of warm-cache BW_RD between a node-local and a remote buffer,
// for several transfer sizes across window sizes.
func Fig8(q Quality) (*Figure, error) {
	fig := &Figure{
		ID: "fig8", Title: "Local vs remote DMA reads, warm cache (NFP6000-BDW)",
		XLabel: "Window size (Bytes)", YLabel: "% change of bandwidth",
	}
	for _, sz := range []int{64, 128, 256, 512} {
		s := &stats.Series{Name: fmt.Sprintf("%dB BW_RD", sz)}
		for _, win := range windowSizes() {
			run := func(node int) (float64, error) {
				sys, err := sysconf.ByName("NFP6000-BDW")
				if err != nil {
					return 0, err
				}
				inst, err := sys.Build(sysconf.Options{NoJitter: true, Seed: 23, BufferNode: node})
				if err != nil {
					return 0, err
				}
				res, err := bench.BwRd(inst.Target(), bench.Params{
					WindowSize: win, TransferSize: sz,
					Cache: bench.HostWarm, Transactions: q.bwN(),
				})
				if err != nil {
					return 0, err
				}
				return res.Gbps, nil
			}
			local, err := run(0)
			if err != nil {
				return nil, err
			}
			remote, err := run(1)
			if err != nil {
				return nil, err
			}
			s.Append(float64(win), 100*(remote-local)/local)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9 measures the IOMMU impact on NFP6000-BDW (Figure 9): percentage
// change of warm-cache BW_RD with the IOMMU enabled (4 KB mappings,
// sp_off) relative to disabled, across window sizes.
func Fig9(q Quality) (*Figure, error) {
	fig := &Figure{
		ID: "fig9", Title: "IOMMU impact on DMA reads, warm cache (NFP6000-BDW)",
		XLabel: "Window size (Bytes)", YLabel: "% change of bandwidth",
	}
	for _, sz := range []int{64, 128, 256, 512} {
		s := &stats.Series{Name: fmt.Sprintf("%dB BW_RD", sz)}
		for _, win := range windowSizes() {
			run := func(iommuOn bool) (float64, error) {
				sys, err := sysconf.ByName("NFP6000-BDW")
				if err != nil {
					return 0, err
				}
				inst, err := sys.Build(sysconf.Options{
					NoJitter: true, Seed: 29, IOMMU: iommuOn, SuperPages: false,
				})
				if err != nil {
					return 0, err
				}
				res, err := bench.BwRd(inst.Target(), bench.Params{
					WindowSize: win, TransferSize: sz,
					Cache: bench.HostWarm, Transactions: q.bwN(),
				})
				if err != nil {
					return 0, err
				}
				return res.Gbps, nil
			}
			off, err := run(false)
			if err != nil {
				return nil, err
			}
			on, err := run(true)
			if err != nil {
				return nil, err
			}
			s.Append(float64(win), 100*(on-off)/off)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table2 derives the paper's notable-findings table from fresh
// measurements (Table 2), quoting the measured evidence for each
// recommendation.
func Table2(q Quality) (*Table, error) {
	t := &Table{
		Title:   "Table 2: Notable findings, derived experimentally",
		Columns: []string{"Area", "Observation (measured)", "Recommendation"},
	}

	// IOMMU: throughput collapse beyond the IO-TLB reach.
	fig9, err := Fig9(q)
	if err != nil {
		return nil, err
	}
	s64 := fig9.SeriesByName("64B BW_RD")
	inReach := s64.YAt(64 << 10)
	beyond := s64.YAt(16 << 20)
	t.Rows = append(t.Rows, []string{
		"IOMMU (Fig 9)",
		fmt.Sprintf("64B read bandwidth %.0f%% inside the IO-TLB reach, %.0f%% beyond it", inReach, beyond),
		"Co-locate I/O buffers into superpages.",
	})

	// DDIO: warm descriptor-sized accesses are faster.
	sys, err := sysconf.ByName("NFP6000-SNB")
	if err != nil {
		return nil, err
	}
	run := func(cache bench.CacheState, win int) (float64, error) {
		inst, err := sys.Build(sysconf.Options{NoJitter: true, Seed: 31})
		if err != nil {
			return 0, err
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: win, TransferSize: 8, Cache: cache,
			Transactions: q.latN(), Direct: true,
		})
		if err != nil {
			return 0, err
		}
		return res.Summary.Median, nil
	}
	warm, err := run(bench.HostWarm, 64<<10)
	if err != nil {
		return nil, err
	}
	cold, err := run(bench.Cold, 64<<10)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"DDIO (Fig 7)",
		fmt.Sprintf("small reads %.0fns faster when cache resident (%.0f vs %.0f)", cold-warm, warm, cold),
		"DDIO improves descriptor ring access and small-packet receive.",
	})

	// NUMA small transfers: remote cache reads cost bandwidth.
	fig8, err := Fig8(q)
	if err != nil {
		return nil, err
	}
	n64 := fig8.SeriesByName("64B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, small transactions (Fig 8)",
		fmt.Sprintf("64B remote reads lose %.0f%% of bandwidth vs local cache", -n64),
		"Place descriptor rings on the node local to the device.",
	})

	// NUMA large transfers: locality stops mattering.
	n512 := fig8.SeriesByName("512B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, large transactions (Fig 8)",
		fmt.Sprintf("512B remote reads change bandwidth by only %.1f%%", n512),
		"Place packet buffers on the node where processing happens.",
	})
	return t, nil
}
