package report

import (
	"fmt"

	"pciebench/internal/bench"
	"pciebench/internal/model"
	"pciebench/internal/nicsim"
	"pciebench/internal/pcie"
	"pciebench/internal/stats"
	"pciebench/internal/sysconf"
)

// The measured experiments below all follow the same shape: enumerate
// the sweep's points in their figure order, evaluate every point as an
// independent runner unit (each builds its own simulator instance, so
// units share no mutable state), and assemble the series from the
// order-preserving result slice. That keeps the output byte-identical
// at any parallelism while the wall clock scales with the worker count.

// Fig1 computes the modeled bidirectional bandwidth of a Gen3 x8 link
// against the achievable throughput of the paper's NIC/driver designs
// (§2, Figure 1).
func Fig1() *Figure {
	cfg := pcie.DefaultGen3x8()
	fig := &Figure{
		ID:     "fig1",
		Title:  "Modeled bidirectional bandwidth, PCIe Gen3 x8",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Bandwidth (Gb/s)",
	}
	eff := &stats.Series{Name: "Effective PCIe BW"}
	eth := &stats.Series{Name: "40G Ethernet"}
	simple := &stats.Series{Name: "Simple NIC"}
	kernel := &stats.Series{Name: "Modern NIC (kernel driver)"}
	dpdk := &stats.Series{Name: "Modern NIC (DPDK driver)"}
	simpleNIC, kernelNIC, dpdkNIC := model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()
	for sz := 64; sz <= 1520; sz += 16 {
		x := float64(sz)
		eff.Append(x, model.EffectiveBidirBandwidth(cfg, sz)/1e9)
		eth.Append(x, model.EthernetLineRate(40e9, sz)/1e9)
		simple.Append(x, simpleNIC.Bandwidth(cfg, sz)/1e9)
		kernel.Append(x, kernelNIC.Bandwidth(cfg, sz)/1e9)
		dpdk.Append(x, dpdkNIC.Bandwidth(cfg, sz)/1e9)
	}
	fig.Series = []*stats.Series{eff, eth, simple, kernel, dpdk}
	return fig
}

// Fig2 measures the ExaNIC-style loopback NIC latency and its PCIe
// share across frame sizes (§2, Figure 2). Each frame size is one unit
// with its own loopback instance.
func Fig2(q Quality) (*Figure, error) {
	count := 16
	if q == Full {
		count = 200
	}
	var sizes []int
	for sz := 64; sz <= 1600; sz += 64 {
		sizes = append(sizes, sz)
	}
	type point struct {
		ns   float64
		frac float64
	}
	pts, err := runUnits(sizes, func(sz int) (point, error) {
		sys, err := sysconf.ByName("NFP6000-HSW")
		if err != nil {
			return point{}, err
		}
		inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
		if err != nil {
			return point{}, err
		}
		inst.Buffer.WarmHost(0, 64<<10) // RX ring is hot in a polling app
		samples, err := nicsim.Loopback(inst.RC, nicsim.DefaultLoopback(), inst.Buffer.DMAAddr(0), sz, count)
		if err != nil {
			return point{}, err
		}
		med, f := nicsim.MedianLoopback(samples)
		return point{ns: med.Nanoseconds(), frac: f}, nil
	})
	if err != nil {
		return nil, err
	}
	total := &stats.Series{Name: "NIC"}
	pcieNS := &stats.Series{Name: "PCIe contribution"}
	frac := &stats.Series{Name: "PCIe fraction"}
	for i, sz := range sizes {
		x := float64(sz)
		total.Append(x, pts[i].ns)
		pcieNS.Append(x, pts[i].ns*pts[i].frac)
		frac.Append(x, pts[i].frac)
	}
	return &Figure{
		ID:     "fig2",
		Title:  "Measurement of NIC PCIe latency (loopback)",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Median Latency (ns)",
		Series: []*stats.Series{total, pcieNS, frac},
	}, nil
}

// Table1 reproduces the system-configuration table.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: System configurations",
		Columns: []string{"Name", "CPU", "NUMA", "Architecture", "Memory", "OS/Kernel", "Network Adapter", "LLC"},
	}
	for _, s := range sysconf.Systems() {
		t.Rows = append(t.Rows, []string{
			s.Name, s.CPU, s.NUMA, s.Arch, s.Memory, s.OS, s.Adapter.String(),
			fmt.Sprintf("%dMB", s.LLCBytes>>20),
		})
	}
	return t
}

// baselineTarget builds the Fig 4/5 setup: the named system with an
// 8 KB host-warmed buffer window, no jitter for reproducible medians.
func baselineTarget(name string, seed int64) (*bench.Target, error) {
	sys, err := sysconf.ByName(name)
	if err != nil {
		return nil, err
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	return inst.Target(), nil
}

// baselineSystems are the two devices compared in Figures 4 and 5.
var baselineSystems = []string{"NFP6000-HSW", "NetFPGA-HSW"}

// Fig4 runs the baseline bandwidth comparison (Figure 4): BW_RD, BW_WR
// and BW_RDWR for NFP6000-HSW and NetFPGA-HSW against the model, with a
// warm 8 KB window. Every (benchmark, system, size) point is one unit
// against a freshly built target.
func Fig4(q Quality) ([]*Figure, error) {
	cfg := pcie.DefaultGen3x8()
	kinds := []struct {
		id    string
		title string
		run   func(*bench.Target, bench.Params) (*bench.BandwidthResult, error)
		model func(pcie.LinkConfig, int) float64
	}{
		{"fig4a", "PCIe Read Bandwidth", bench.BwRd, model.EffectiveReadBandwidth},
		{"fig4b", "PCIe Write Bandwidth", bench.BwWr, model.EffectiveWriteBandwidth},
		{"fig4c", "PCIe Read/Write Bandwidth", bench.BwRdWr, model.EffectiveBidirBandwidth},
	}
	type cell struct {
		kind int
		sys  string
		sz   int
	}
	var cells []cell
	for ki := range kinds {
		for _, sysName := range baselineSystems {
			for _, sz := range transferSizes() {
				cells = append(cells, cell{ki, sysName, sz})
			}
		}
	}
	vals, err := runUnits(cells, func(c cell) (float64, error) {
		tgt, err := baselineTarget(c.sys, 11)
		if err != nil {
			return 0, err
		}
		res, err := kinds[c.kind].run(tgt, bench.Params{
			WindowSize: 8 << 10, TransferSize: c.sz,
			Cache: bench.HostWarm, Transactions: q.bwN(),
		})
		if err != nil {
			return 0, err
		}
		return res.Gbps, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Figure
	seriesOf := make(map[string]*stats.Series)
	for _, kind := range kinds {
		fig := &Figure{
			ID:     kind.id,
			Title:  kind.title,
			XLabel: "Transfer Size (Bytes)",
			YLabel: "Bandwidth (Gb/s)",
		}
		mdl := &stats.Series{Name: "Model BW"}
		eth := &stats.Series{Name: "40G Ethernet"}
		for _, sz := range transferSizes() {
			mdl.Append(float64(sz), kind.model(cfg, sz)/1e9)
			eth.Append(float64(sz), model.EthernetLineRate(40e9, sz)/1e9)
		}
		fig.Series = append(fig.Series, mdl, eth)
		for _, sysName := range baselineSystems {
			series := &stats.Series{Name: fmt.Sprintf("%s (%s)", kind.id, sysName)}
			seriesOf[kind.id+"|"+sysName] = series
			fig.Series = append(fig.Series, series)
		}
		out = append(out, fig)
	}
	// Assemble from the same cells slice the units ran over, so values
	// cannot land on the wrong series if the enumeration ever changes.
	for i, c := range cells {
		seriesOf[kinds[c.kind].id+"|"+c.sys].Append(float64(c.sz), vals[i])
	}
	return out, nil
}

// Fig5 runs the baseline latency comparison (Figure 5): median LAT_RD
// and LAT_WRRD for both devices across transfer sizes. One unit per
// (system, size) pair measures both benchmarks on fresh targets.
func Fig5(q Quality) (*Figure, error) {
	type cell struct {
		sys string
		sz  int
	}
	type point struct{ rd, wr float64 }
	var cells []cell
	for _, sysName := range baselineSystems {
		for _, sz := range latencySizes() {
			cells = append(cells, cell{sysName, sz})
		}
	}
	pts, err := runUnits(cells, func(c cell) (point, error) {
		p := bench.Params{
			WindowSize: 8 << 10, TransferSize: c.sz,
			Cache: bench.HostWarm, Transactions: q.latN(),
		}
		tgt, err := baselineTarget(c.sys, 13)
		if err != nil {
			return point{}, err
		}
		r1, err := bench.LatRd(tgt, p)
		if err != nil {
			return point{}, err
		}
		tgt, err = baselineTarget(c.sys, 13)
		if err != nil {
			return point{}, err
		}
		r2, err := bench.LatWrRd(tgt, p)
		if err != nil {
			return point{}, err
		}
		return point{rd: r1.Summary.Median, wr: r2.Summary.Median}, nil
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Median DMA latency, NFP6000-HSW vs NetFPGA-HSW",
		XLabel: "Transfer Size (Bytes)",
		YLabel: "Latency (ns)",
	}
	rdOf := make(map[string]*stats.Series)
	wrOf := make(map[string]*stats.Series)
	for _, sysName := range baselineSystems {
		rdOf[sysName] = &stats.Series{Name: "LAT_RD (" + sysName + ")"}
		wrOf[sysName] = &stats.Series{Name: "LAT_WRRD (" + sysName + ")"}
		fig.Series = append(fig.Series, rdOf[sysName], wrOf[sysName])
	}
	for i, c := range cells {
		rdOf[c.sys].Append(float64(c.sz), pts[i].rd)
		wrOf[c.sys].Append(float64(c.sz), pts[i].wr)
	}
	return fig, nil
}

// Fig6 produces the 64 B read-latency CDFs for the Xeon E5 and E3
// systems (Figure 6), with the jitter models active. Each system is one
// unit.
func Fig6(q Quality) (*Figure, error) {
	series, err := runUnits([]string{"NFP6000-HSW", "NFP6000-HSW-E3"},
		func(sysName string) (*stats.Series, error) {
			sys, err := sysconf.ByName(sysName)
			if err != nil {
				return nil, err
			}
			inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, Seed: 17})
			if err != nil {
				return nil, err
			}
			res, err := bench.LatRd(inst.Target(), bench.Params{
				WindowSize: 8 << 10, TransferSize: 64,
				Cache: bench.HostWarm, Transactions: q.cdfN(),
			})
			if err != nil {
				return nil, err
			}
			cdf, err := res.CDF()
			if err != nil {
				return nil, err
			}
			s := &stats.Series{Name: sysName}
			s.X = cdf.Values
			s.Y = cdf.Cum
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig6",
		Title:  "Latency distribution, 64B DMA reads, warm cache",
		XLabel: "Latency (ns)",
		YLabel: "CDF",
		Series: series,
	}, nil
}

// Fig7 sweeps the window size to expose LLC and DDIO effects on the
// NFP6000-SNB system (Figure 7): (a) 8 B latency via the direct command
// interface, cold vs warm; (b) 64 B bandwidth, cold vs warm. One unit
// per (cache state, window) runs all four benchmarks against a shared
// freshly built instance, exactly like the paper's per-point runs.
func Fig7(q Quality) ([]*Figure, error) {
	states := []bench.CacheState{bench.Cold, bench.HostWarm}
	type cell struct {
		cache bench.CacheState
		win   int
	}
	type point struct{ latRd, latWr, bwRd, bwWr float64 }
	var cells []cell
	for _, cache := range states {
		for _, win := range windowSizes() {
			cells = append(cells, cell{cache, win})
		}
	}
	pts, err := runUnits(cells, func(c cell) (point, error) {
		sys, err := sysconf.ByName("NFP6000-SNB")
		if err != nil {
			return point{}, err
		}
		inst, err := sys.Build(sysconf.Options{NoJitter: true, Seed: 19})
		if err != nil {
			return point{}, err
		}
		tgt := inst.Target()
		pl := bench.Params{
			WindowSize: c.win, TransferSize: 8, Cache: c.cache,
			Transactions: q.latN(), Direct: true,
		}
		r1, err := bench.LatRd(tgt, pl)
		if err != nil {
			return point{}, err
		}
		r2, err := bench.LatWrRd(tgt, pl)
		if err != nil {
			return point{}, err
		}
		pb := bench.Params{
			WindowSize: c.win, TransferSize: 64, Cache: c.cache,
			Transactions: q.bwN(),
		}
		b1, err := bench.BwRd(tgt, pb)
		if err != nil {
			return point{}, err
		}
		b2, err := bench.BwWr(tgt, pb)
		if err != nil {
			return point{}, err
		}
		return point{
			latRd: r1.Summary.Median, latWr: r2.Summary.Median,
			bwRd: b1.Gbps, bwWr: b2.Gbps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	figA := &Figure{
		ID: "fig7a", Title: "Cache effects on latency (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Latency (ns)",
	}
	figB := &Figure{
		ID: "fig7b", Title: "Cache effects on bandwidth (NFP6000-SNB)",
		XLabel: "Window size (Bytes)", YLabel: "Bandwidth (Gb/s)",
	}
	type group struct{ latRd, latWr, bwRd, bwWr *stats.Series }
	groups := make(map[bench.CacheState]group)
	for _, cache := range states {
		g := group{
			latRd: &stats.Series{Name: fmt.Sprintf("8B LAT_RD (%s)", cache)},
			latWr: &stats.Series{Name: fmt.Sprintf("8B LAT_WRRD (%s)", cache)},
			bwRd:  &stats.Series{Name: fmt.Sprintf("64B BW_RD (%s)", cache)},
			bwWr:  &stats.Series{Name: fmt.Sprintf("64B BW_WR (%s)", cache)},
		}
		groups[cache] = g
		figA.Series = append(figA.Series, g.latRd, g.latWr)
		figB.Series = append(figB.Series, g.bwRd, g.bwWr)
	}
	for i, c := range cells {
		g := groups[c.cache]
		x := float64(c.win)
		g.latRd.Append(x, pts[i].latRd)
		g.latWr.Append(x, pts[i].latWr)
		g.bwRd.Append(x, pts[i].bwRd)
		g.bwWr.Append(x, pts[i].bwWr)
	}
	return []*Figure{figA, figB}, nil
}

// bwDeltaFigure is the shared shape of Figures 8 and 9: for several
// transfer sizes across window sizes, measure warm-cache BW_RD on
// NFP6000-BDW under a baseline (toggle=false) and a perturbed
// (toggle=true) build of the system, and report the percentage change.
// One unit per (size, window) measures both settings.
func bwDeltaFigure(q Quality, id, title string, build func(toggle bool) sysconf.Options) (*Figure, error) {
	sizes := []int{64, 128, 256, 512}
	type cell struct{ sz, win int }
	var cells []cell
	for _, sz := range sizes {
		for _, win := range windowSizes() {
			cells = append(cells, cell{sz, win})
		}
	}
	pcts, err := runUnits(cells, func(c cell) (float64, error) {
		run := func(toggle bool) (float64, error) {
			sys, err := sysconf.ByName("NFP6000-BDW")
			if err != nil {
				return 0, err
			}
			inst, err := sys.Build(build(toggle))
			if err != nil {
				return 0, err
			}
			res, err := bench.BwRd(inst.Target(), bench.Params{
				WindowSize: c.win, TransferSize: c.sz,
				Cache: bench.HostWarm, Transactions: q.bwN(),
			})
			if err != nil {
				return 0, err
			}
			return res.Gbps, nil
		}
		base, err := run(false)
		if err != nil {
			return 0, err
		}
		perturbed, err := run(true)
		if err != nil {
			return 0, err
		}
		return 100 * (perturbed - base) / base, nil
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Window size (Bytes)", YLabel: "% change of bandwidth",
	}
	seriesOf := make(map[int]*stats.Series)
	for _, sz := range sizes {
		seriesOf[sz] = &stats.Series{Name: fmt.Sprintf("%dB BW_RD", sz)}
		fig.Series = append(fig.Series, seriesOf[sz])
	}
	for i, c := range cells {
		seriesOf[c.sz].Append(float64(c.win), pcts[i])
	}
	return fig, nil
}

// Fig8 measures the NUMA penalty on NFP6000-BDW (Figure 8): percentage
// change of warm-cache BW_RD between a node-local and a remote buffer.
func Fig8(q Quality) (*Figure, error) {
	return bwDeltaFigure(q, "fig8",
		"Local vs remote DMA reads, warm cache (NFP6000-BDW)",
		func(remote bool) sysconf.Options {
			node := 0
			if remote {
				node = 1
			}
			return sysconf.Options{NoJitter: true, Seed: 23, BufferNode: node}
		})
}

// Fig9 measures the IOMMU impact on NFP6000-BDW (Figure 9): percentage
// change of warm-cache BW_RD with the IOMMU enabled (4 KB mappings,
// sp_off) relative to disabled.
func Fig9(q Quality) (*Figure, error) {
	return bwDeltaFigure(q, "fig9",
		"IOMMU impact on DMA reads, warm cache (NFP6000-BDW)",
		func(iommuOn bool) sysconf.Options {
			return sysconf.Options{NoJitter: true, Seed: 29, IOMMU: iommuOn, SuperPages: false}
		})
}

// Table2 derives the paper's notable-findings table from fresh
// measurements (Table 2), quoting the measured evidence for each
// recommendation.
func Table2(q Quality) (*Table, error) {
	t := &Table{
		Title:   "Table 2: Notable findings, derived experimentally",
		Columns: []string{"Area", "Observation (measured)", "Recommendation"},
	}

	// IOMMU: throughput collapse beyond the IO-TLB reach.
	fig9, err := Fig9(q)
	if err != nil {
		return nil, err
	}
	s64 := fig9.SeriesByName("64B BW_RD")
	inReach := s64.YAt(64 << 10)
	beyond := s64.YAt(16 << 20)
	t.Rows = append(t.Rows, []string{
		"IOMMU (Fig 9)",
		fmt.Sprintf("64B read bandwidth %.0f%% inside the IO-TLB reach, %.0f%% beyond it", inReach, beyond),
		"Co-locate I/O buffers into superpages.",
	})

	// DDIO: warm descriptor-sized accesses are faster. The two cache
	// states are independent units.
	medians, err := runUnits([]bench.CacheState{bench.HostWarm, bench.Cold},
		func(cache bench.CacheState) (float64, error) {
			sys, err := sysconf.ByName("NFP6000-SNB")
			if err != nil {
				return 0, err
			}
			inst, err := sys.Build(sysconf.Options{NoJitter: true, Seed: 31})
			if err != nil {
				return 0, err
			}
			res, err := bench.LatRd(inst.Target(), bench.Params{
				WindowSize: 64 << 10, TransferSize: 8, Cache: cache,
				Transactions: q.latN(), Direct: true,
			})
			if err != nil {
				return 0, err
			}
			return res.Summary.Median, nil
		})
	if err != nil {
		return nil, err
	}
	warm, cold := medians[0], medians[1]
	t.Rows = append(t.Rows, []string{
		"DDIO (Fig 7)",
		fmt.Sprintf("small reads %.0fns faster when cache resident (%.0f vs %.0f)", cold-warm, warm, cold),
		"DDIO improves descriptor ring access and small-packet receive.",
	})

	// NUMA small transfers: remote cache reads cost bandwidth.
	fig8, err := Fig8(q)
	if err != nil {
		return nil, err
	}
	n64 := fig8.SeriesByName("64B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, small transactions (Fig 8)",
		fmt.Sprintf("64B remote reads lose %.0f%% of bandwidth vs local cache", -n64),
		"Place descriptor rings on the node local to the device.",
	})

	// NUMA large transfers: locality stops mattering.
	n512 := fig8.SeriesByName("512B BW_RD").YAt(64 << 10)
	t.Rows = append(t.Rows, []string{
		"NUMA, large transactions (Fig 8)",
		fmt.Sprintf("512B remote reads change bandwidth by only %.1f%%", n512),
		"Place packet buffers on the node where processing happens.",
	})
	return t, nil
}
