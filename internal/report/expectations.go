package report

import (
	"fmt"
	"math"

	"pciebench/internal/stats"
)

// Expectation is one paper-reported quantity checked against the
// simulator.
type Expectation struct {
	Experiment string
	Quantity   string
	Paper      string
	Measured   string
	OK         bool
}

// Expectations runs every experiment and compares the key quantities
// the paper reports against the measured values, producing the table
// recorded in EXPERIMENTS.md. A row is marked ok when the measured
// value falls within the stated tolerance of the paper's figure; rows
// that deviate are kept visible rather than hidden.
func Expectations(q Quality) (*Table, error) {
	t := &Table{
		Title:   "Paper vs measured (tolerances are on shape, not testbed-absolute values)",
		Columns: []string{"Experiment", "Quantity", "Paper", "Measured", "OK"},
	}
	add := func(exp, quantity, paper string, measured float64, unit string, lo, hi float64) {
		ok := measured >= lo && measured <= hi
		t.Rows = append(t.Rows, []string{
			exp, quantity, paper, fmt.Sprintf("%.1f%s", measured, unit), verdict(ok),
		})
	}

	// Figure 1 (analytical).
	fig1 := Fig1()
	add("fig1", "effective bidir BW @1500B", "~50 Gb/s",
		fig1.SeriesByName("Effective PCIe BW").YAt(1500), " Gb/s", 48, 53)
	cross := crossover(fig1)
	add("fig1", "simple NIC 40G crossover", ">512B", cross, " B", 384, 768)

	// Figure 2.
	fig2, err := Fig2(q)
	if err != nil {
		return nil, err
	}
	add("fig2", "loopback latency @128B", "~1000 ns",
		fig2.SeriesByName("NIC").YAt(128), " ns", 800, 1200)
	add("fig2", "PCIe fraction @128B", "90.6%",
		100*fig2.SeriesByName("PCIe fraction").YAt(128), " %", 82, 95)
	add("fig2", "PCIe fraction @1500B", "77.2%",
		100*fig2.SeriesByName("PCIe fraction").YAt(1500), " %", 70, 85)

	// Figure 4.
	fig4, err := Fig4(q)
	if err != nil {
		return nil, err
	}
	rd := fig4[0]
	add("fig4a", "NFP BW_RD @64B", "~30 Gb/s",
		rd.SeriesByName("fig4a (NFP6000-HSW)").YAt(64), " Gb/s", 25, 35)
	add("fig4a", "NetFPGA BW_RD @1024B", "~48 Gb/s",
		rd.SeriesByName("fig4a (NetFPGA-HSW)").YAt(1024), " Gb/s", 44, 54)
	add("fig4b", "NetFPGA BW_WR @64B", "~40 Gb/s",
		fig4[1].SeriesByName("fig4b (NetFPGA-HSW)").YAt(64), " Gb/s", 34, 44)

	// Figure 5.
	fig5, err := Fig5(q)
	if err != nil {
		return nil, err
	}
	gap := fig5.SeriesByName("LAT_RD (NFP6000-HSW)").YAt(64) -
		fig5.SeriesByName("LAT_RD (NetFPGA-HSW)").YAt(64)
	add("fig5", "NFP-NetFPGA LAT_RD gap @64B", "~100 ns", gap, " ns", 60, 160)
	add("fig5", "NFP LAT_RD @2048B", "~1500 ns",
		fig5.SeriesByName("LAT_RD (NFP6000-HSW)").YAt(2048), " ns", 1300, 1700)

	// Figure 6.
	fig6, err := Fig6(q)
	if err != nil {
		return nil, err
	}
	e5 := fig6.SeriesByName("NFP6000-HSW")
	e3 := fig6.SeriesByName("NFP6000-HSW-E3")
	add("fig6", "E5 median @64B", "547 ns", inverseAtSeries(e5, 0.5), " ns", 500, 620)
	add("fig6", "E3 median @64B", "1213 ns", inverseAtSeries(e3, 0.5), " ns", 1000, 1500)
	add("fig6", "E3 p99 @64B", "5707 ns", inverseAtSeries(e3, 0.99), " ns", 4000, 8000)

	// Figure 7.
	fig7, err := Fig7(q)
	if err != nil {
		return nil, err
	}
	latFig := fig7[0]
	warmBenefit := latFig.SeriesByName("8B LAT_RD (cold)").YAt(64<<10) -
		latFig.SeriesByName("8B LAT_RD (warm)").YAt(64<<10)
	add("fig7a", "LLC-resident read benefit", "~70 ns", warmBenefit, " ns", 50, 90)
	ddio := latFig.SeriesByName("8B LAT_WRRD (cold)").YAt(16<<20) -
		latFig.SeriesByName("8B LAT_WRRD (cold)").YAt(256<<10)
	add("fig7a", "DDIO boundary penalty", "~70 ns", ddio, " ns", 50, 95)

	// Figure 8.
	fig8, err := Fig8(q)
	if err != nil {
		return nil, err
	}
	add("fig8", "64B remote penalty (cached)", "-20 %",
		fig8.SeriesByName("64B BW_RD").YAt(64<<10), " %", -30, -12)
	add("fig8", "64B remote penalty (uncached)", "-10 %",
		fig8.SeriesByName("64B BW_RD").YAt(64<<20), " %", -20, -5)
	add("fig8", "128B remote penalty", "-5..-7 % (deviation: link-capped here)",
		fig8.SeriesByName("128B BW_RD").YAt(64<<10), " %", -15, 0.5)
	add("fig8", "512B remote penalty", "~0 %",
		fig8.SeriesByName("512B BW_RD").YAt(64<<10), " %", -3, 3)

	// Figure 9.
	fig9, err := Fig9(q)
	if err != nil {
		return nil, err
	}
	add("fig9", "64B IOMMU drop beyond 256KB", "-70 %",
		fig9.SeriesByName("64B BW_RD").YAt(16<<20), " %", -85, -55)
	add("fig9", "256B IOMMU drop beyond 256KB", "-30 %",
		fig9.SeriesByName("256B BW_RD").YAt(16<<20), " %", -45, -18)
	add("fig9", "512B IOMMU drop beyond 256KB", "~0 %",
		fig9.SeriesByName("512B BW_RD").YAt(16<<20), " %", -10, 5)
	add("fig9", "64B IOMMU drop inside 256KB", "~0 %",
		fig9.SeriesByName("64B BW_RD").YAt(64<<10), " %", -6, 6)

	return t, nil
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "DEVIATES"
}

// crossover finds the packet size where the simple NIC first reaches
// the 40G Ethernet line rate in a Figure 1 result.
func crossover(fig *Figure) float64 {
	simple := fig.SeriesByName("Simple NIC")
	eth := fig.SeriesByName("40G Ethernet")
	for i := range simple.X {
		if simple.Y[i] >= eth.Y[i] {
			return simple.X[i]
		}
	}
	return math.Inf(1)
}

// inverseAtSeries reads a CDF series (X = latency values, Y =
// cumulative fractions): the smallest value whose fraction reaches p.
func inverseAtSeries(s *stats.Series, p float64) float64 {
	for i := range s.X {
		if s.Y[i] >= p {
			return s.X[i]
		}
	}
	return s.X[len(s.X)-1]
}
