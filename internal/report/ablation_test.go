package report

import (
	"testing"
)

func TestAblationMPS(t *testing.T) {
	fig := AblationMPS()
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	s128 := fig.SeriesByName("MPS=128")
	s512 := fig.SeriesByName("MPS=512")
	// Larger MPS always wins at large transfers (fewer headers).
	if s512.YAt(1500) <= s128.YAt(1500) {
		t.Errorf("MPS=512 (%.1f) not above MPS=128 (%.1f) at 1500B",
			s512.YAt(1500), s128.YAt(1500))
	}
	// The saw-tooth period follows MPS: 129B drops for MPS=128 but not
	// for MPS=512 (first tooth runs to 512B).
	if s128.YAt(129) >= s128.YAt(128) {
		t.Error("no tooth at 129B for MPS=128")
	}
	if s512.YAt(129) < s512.YAt(128) {
		t.Error("unexpected tooth at 129B for MPS=512")
	}
}

func TestAblationGen4(t *testing.T) {
	fig, err := AblationGen4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	g3 := fig.SeriesByName("BW_RD (Gen3)")
	g4 := fig.SeriesByName("BW_RD (Gen4)")
	mdl4 := fig.SeriesByName("Model BW (Gen4)")
	if g3 == nil || g4 == nil || mdl4 == nil {
		t.Fatal("missing series")
	}
	// Gen4 doubles large-transfer throughput...
	r := g4.YAt(2048) / g3.YAt(2048)
	if r < 1.7 || r > 2.2 {
		t.Errorf("Gen4/Gen3 @2048B = %.2f, want ~2", r)
	}
	// ...but small transfers stay latency-bound: the 64B gain is far
	// below 2x (the projection's takeaway).
	r64 := g4.YAt(64) / g3.YAt(64)
	if r64 > 1.5 {
		t.Errorf("Gen4/Gen3 @64B = %.2f; small reads should be latency-bound", r64)
	}
	// Gen4 measured tracks its model at large sizes.
	if g4.YAt(2048) < 0.8*mdl4.YAt(2048) {
		t.Errorf("Gen4 measured %.1f far below model %.1f", g4.YAt(2048), mdl4.YAt(2048))
	}
}

func TestAblationWalkers(t *testing.T) {
	fig, err := AblationWalkers(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Bandwidth scales with the pool while translation-bound: 6
	// walkers deliver several times what 1 does, and the curve is
	// monotone non-decreasing.
	if s.YAt(6) < 3*s.YAt(1) {
		t.Errorf("6 walkers (%.1f) not >> 1 walker (%.1f)", s.YAt(6), s.YAt(1))
	}
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1]*0.98 {
			t.Errorf("walker scaling not monotone at %g", s.X[i])
		}
	}
}

func TestAblationInFlight(t *testing.T) {
	fig, err := AblationInFlight(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// §2's sizing argument: 1 in-flight DMA is an order of magnitude
	// below the 32-deep window; beyond ~64 the link caps gains.
	if s.YAt(32) < 8*s.YAt(1) {
		t.Errorf("32-deep (%.1f) not >> serial (%.1f)", s.YAt(32), s.YAt(1))
	}
	gain := s.YAt(128) / s.YAt(64)
	if gain > 1.3 {
		t.Errorf("128 vs 64 in flight still gains %.2fx; link should cap", gain)
	}
}
