package report

import (
	"pciebench/internal/sweep"
)

// The workload sweeps expose the multi-queue traffic engine
// (internal/workload) on the registry, so realistic scenario grids —
// queue scaling, packet-size mixes, bursty arrivals, moderation
// settings — run from the CLIs and from JSON specs exactly like the
// paper figures. They are scenario families the paper's single-queue
// fixed-size harness could not express, not reproductions of specific
// figures.

func init() {
	for _, s := range []*sweep.Spec{
		wlIMIXSpec(), wlBurstSpec(), wlModerationSpec(),
	} {
		sweep.Register(s)
	}
}

// workloadProbes is the standard workload column set: aggregate packet
// rate and payload bandwidth plus the completion-latency percentiles.
func workloadProbes() []sweep.Probe {
	return []sweep.Probe{
		{Label: "pps", Metric: sweep.MetricPPS},
		{Label: "gbps", Metric: sweep.MetricGbps},
		{Label: "p50_ns", Metric: sweep.MetricP50},
		{Label: "p99_ns", Metric: sweep.MetricP99},
		{Label: "p99.9_ns", Metric: sweep.MetricP999},
	}
}

// wlIMIXSpec scales RX/TX queue pairs under saturating IMIX traffic
// for the kernel-driver and DPDK-style designs: the multi-queue
// generalization of Figure 1's question.
func wlIMIXSpec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "wl-imix",
		Title:       "Multi-queue IMIX saturation, kernel vs DPDK driver (NFP6000-HSW)",
		Description: "Queue scaling under saturating IMIX traffic: packet rate and latency percentiles",
		XAxis:       "queues",
		XLabel:      "Queue pairs",
		YLabel:      "Packet rate (pps) / Latency (ns)",
		Axes: []sweep.Axis{
			sweep.StrAxis("nic", "kernel", "dpdk"),
			sweep.IntAxis("queues", 1, 2, 4, 8),
		},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "workload", "sizes": "imix",
			"arrival": "saturate", "inflight": "16", "flows": "1M",
			"buffer": "4M", "nojitter": "true", "seed": "37",
		},
		Probes:   workloadProbes(),
		SeedMode: sweep.SeedFixed,
	}
}

// wlBurstSpec contrasts smooth and bursty arrivals at the same offered
// load: Poisson bursts queue in software where constant-rate traffic
// does not, and the p99/p99.9 columns show it.
func wlBurstSpec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "wl-burst",
		Title:       "Arrival-process latency tails at 4Mpps offered IMIX load (NFP6000-HSW)",
		Description: "Smooth vs Poisson-burst arrivals at equal offered load: queueing shows in p99/p99.9",
		XAxis:       "arrival",
		XLabel:      "Arrival process",
		YLabel:      "Latency (ns)",
		Axes: []sweep.Axis{
			sweep.StrAxis("arrival", "rate:4M", "poisson:4M", "poisson:4M:burst=64"),
			sweep.IntAxis("queues", 1, 4),
		},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "workload", "sizes": "imix",
			"inflight": "8", "flows": "1M", "buffer": "4M",
			"nojitter": "true", "seed": "41",
		},
		Probes:   workloadProbes(),
		SeedMode: sweep.SeedFixed,
	}
}

// wlModerationSpec sweeps interrupt moderation and doorbell batching
// on the simple NIC design, quantifying §3's batching argument with
// measured 64B packet rates instead of closed-form wire accounting.
func wlModerationSpec() *sweep.Spec {
	return &sweep.Spec{
		Name:        "wl-moderation",
		Title:       "Doorbell batching and interrupt moderation, 64B packets (NFP6000-HSW)",
		Description: "Simple-NIC design with swept doorbell batch and interrupt moderation, measured 64B rates",
		XAxis:       "doorbell",
		XLabel:      "Doorbell batch (packets)",
		YLabel:      "Packet rate (pps)",
		Axes: []sweep.Axis{
			sweep.StrAxis("intrmod", "1", "40", "poll"),
			sweep.IntAxis("doorbell", 1, 8, 40),
		},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "workload", "nic": "simple",
			"sizes": "64", "arrival": "saturate", "descbatch": "40",
			"wbbatch": "8", "inflight": "32", "queues": "2",
			"buffer": "4M", "nojitter": "true", "seed": "43",
		},
		Probes:   workloadProbes(),
		SeedMode: sweep.SeedFixed,
	}
}
