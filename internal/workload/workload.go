// Package workload is the multi-queue NIC traffic engine: it drives
// the discrete-event PCIe simulator with realistic scenarios instead
// of the single-queue, fixed-size, perfectly batched steady state of
// the original throughput harness.
//
// A workload couples four axes the paper's §2/§5 results hinge on:
//
//   - Queues: multiple RX/TX queue pairs sharing one PCIe link, with
//     RSS-style flow-to-queue spreading over a large simulated flow
//     population.
//   - Sizes: per-packet frame sizes drawn from a distribution (fixed,
//     IMIX, uniform, custom histogram).
//   - Arrival: closed-loop saturation, constant rate, or Poisson
//     bursts; open-loop packets queue in software when their queue's
//     DMA window is full, which is where latency tails come from.
//   - Moderation: per-queue doorbell batching, descriptor batch sizes
//     and interrupt moderation rewriting the design's transaction mix.
//
// Each packet pair expands into the per-packet PCIe transaction list
// of a model.NIC design (payload DMAs plus amortized descriptor
// fetches, write-backs, doorbells and interrupts) exactly as
// nicsim.Throughput did; that function is now the single-queue,
// fixed-size, saturating special case of this engine. Results report
// per-queue and aggregate packet rate plus p50/p99/p99.9
// completion-latency percentiles.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"pciebench/internal/fault"
	"pciebench/internal/model"
	"pciebench/internal/rc"
	"pciebench/internal/runner"
	"pciebench/internal/sim"
	"pciebench/internal/stats"
)

// Path is the PCIe attachment a workload drives. Both *rc.RootComplex
// (the degenerate single-device form) and *rc.Port (one endpoint of a
// multi-device topology) implement it, so the same traffic engine runs
// against a lone adapter or against N endpoints contending for a
// shared switch uplink.
type Path interface {
	DMARead(at sim.Time, dma uint64, sz int) (rc.ReadResult, error)
	DMAWrite(at sim.Time, dma uint64, sz int) (rc.WriteResult, error)
	MMIOWrite(at sim.Time, sz int) sim.Time
	MMIORead(at sim.Time, sz int, devLatency sim.Time) sim.Time
}

// Moderation tunes a design's ring mechanisms per queue. Zero values
// keep the design's own amortization; the knobs rewrite interactions
// by their model.Role, so they apply to any design that labels its
// transactions.
type Moderation struct {
	// DoorbellBatch amortizes RoleDoorbell MMIO writes over this many
	// packets (0 keeps the design's value).
	DoorbellBatch int
	// DescBatch rebatches RoleDescFetch descriptor reads: the fetch
	// happens once per DescBatch packets and its size scales with the
	// batch (0 keeps the design's value).
	DescBatch int
	// WriteBackBatch rebatches RoleWriteBack descriptor writes the same
	// way (0 keeps the design's value).
	WriteBackBatch int
	// IntrEvery moderates RoleInterrupt and RoleHeadRead interactions
	// to once per this many packets; 0 keeps the design's value and a
	// negative value strips them entirely (poll-mode driver).
	IntrEvery int
}

// IsZero reports whether no knob is set.
func (m Moderation) IsZero() bool { return m == Moderation{} }

// Apply returns a copy of design with the moderation knobs applied.
func (m Moderation) Apply(design model.NIC) model.NIC {
	if m.IsZero() {
		return design
	}
	out := design
	rewrite := func(list []model.Interaction) []model.Interaction {
		res := make([]model.Interaction, 0, len(list))
		for _, ia := range list {
			perPacket := float64(ia.Bytes) / ia.PerPackets
			rebatch := func(n int) {
				ia.PerPackets = float64(n)
				ia.Bytes = int(perPacket*float64(n) + 0.5)
				if ia.Bytes < 1 {
					ia.Bytes = 1
				}
			}
			switch ia.Role {
			case model.RoleDoorbell:
				if m.DoorbellBatch > 0 {
					ia.PerPackets = float64(m.DoorbellBatch)
				}
			case model.RoleDescFetch:
				if m.DescBatch > 0 {
					rebatch(m.DescBatch)
				}
			case model.RoleWriteBack:
				if m.WriteBackBatch > 0 {
					rebatch(m.WriteBackBatch)
				}
			case model.RoleInterrupt, model.RoleHeadRead:
				if m.IntrEvery < 0 {
					continue // poll mode: the driver never touches the device
				}
				if m.IntrEvery > 0 {
					ia.PerPackets = float64(m.IntrEvery)
				}
			}
			res = append(res, ia)
		}
		return res
	}
	out.TX = rewrite(design.TX)
	out.RX = rewrite(design.RX)
	return out
}

// DesignByName returns the named built-in NIC/driver design:
// "simple", "kernel" or "dpdk".
func DesignByName(name string) (model.NIC, error) {
	switch name {
	case "", "kernel":
		return model.ModernNICKernel(), nil
	case "simple":
		return model.SimpleNIC(), nil
	case "dpdk":
		return model.ModernNICDPDK(), nil
	}
	return model.NIC{}, fmt.Errorf("workload: unknown NIC design %q (want simple, kernel or dpdk)", name)
}

// Defaults applied by Run for zero Config fields.
const (
	DefaultFlows       = 1 << 20
	DefaultWindow      = 32
	DefaultQueueStride = 64 << 10
	defaultFrame       = 1500
	// mmioReadLatency is the device-side register read response time,
	// matching the original throughput harness.
	mmioReadLatency = 40 * sim.Nanosecond
)

// Config shapes one traffic run.
type Config struct {
	// Queues is the RX/TX queue-pair count (default 1).
	Queues int
	// Flows is the simulated flow population. Open-loop packets belong
	// to a uniformly drawn flow whose hash spreads it RSS-style across
	// the queues (default 1M flows).
	Flows int
	// Window is the per-queue in-flight packet-pair limit (default 32).
	Window int
	// Design is the per-packet transaction mix (default
	// model.ModernNICKernel).
	Design model.NIC
	// Moderation rewrites Design's ring mechanisms on every queue.
	Moderation Moderation
	// PerQueue optionally overrides Moderation queue by queue; when
	// non-nil its length must equal Queues.
	PerQueue []Moderation
	// Sizes draws per-packet frame sizes (default fixed 1500B).
	Sizes SizeDist
	// Arrival generates packet arrivals (default Saturate).
	Arrival Arrival
	// Seed drives the workload's own randomness — flow choice, size
	// draws, arrival gaps — decoupled from the kernel rng so the
	// host-side jitter stream is untouched (0 uses 1).
	Seed int64
	// QueueStride is the byte distance between queue buffer regions
	// (default 64KB).
	QueueStride int
	// BufferBytes, when > 0, bounds the DMA footprint: Run fails
	// loudly if the queues' regions do not fit.
	BufferBytes int
}

// WithDefaults returns the config with zero fields resolved to the
// documented defaults — what Run executes. Callers that size or warm
// the DMA region (see Footprint) resolve the config first so they and
// the engine agree on the queue count and stride.
func (c Config) WithDefaults() Config {
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.Flows <= 0 {
		c.Flows = DefaultFlows
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Design.Name == "" && c.Design.TX == nil && c.Design.RX == nil {
		c.Design = model.ModernNICKernel()
	}
	if c.Sizes == nil {
		c.Sizes = FixedSize(defaultFrame)
	}
	if c.Arrival == nil {
		c.Arrival = Saturate()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueStride <= 0 {
		c.QueueStride = DefaultQueueStride
	}
	return c
}

// Footprint returns the DMA byte span the resolved config touches —
// queue count times stride — which callers warm as the rings' hot
// region and validate against the host buffer.
func (c Config) Footprint() int {
	c = c.WithDefaults()
	return c.Queues * c.QueueStride
}

// Validate checks the resolved config.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.PerQueue != nil && len(c.PerQueue) != c.Queues {
		return fmt.Errorf("workload: %d per-queue moderations for %d queues", len(c.PerQueue), c.Queues)
	}
	if err := c.Design.Validate(); err != nil {
		return err
	}
	if c.Sizes.Max() > c.QueueStride {
		return fmt.Errorf("workload: max frame %dB exceeds queue stride %dB", c.Sizes.Max(), c.QueueStride)
	}
	if c.BufferBytes > 0 {
		need := c.Queues * c.QueueStride
		if need > c.BufferBytes {
			return fmt.Errorf("workload: %d queues x %dB stride = %dB exceeds the %dB host buffer",
				c.Queues, c.QueueStride, need, c.BufferBytes)
		}
	}
	return nil
}

// QueueStats is one queue's share of a run.
type QueueStats struct {
	// Queue is the queue-pair index.
	Queue int `json:"queue"`
	// Pairs is the number of packet pairs the queue completed.
	Pairs int `json:"pairs"`
	// PPS is the queue's full-duplex packet-pair rate.
	PPS float64 `json:"pps"`
	// Gbps is the queue's per-direction payload throughput.
	Gbps float64 `json:"gbps"`
	// Latency summarizes the queue's completion latency in ns
	// (arrival to last transaction of the pair).
	Latency stats.Summary `json:"latency_ns"`
}

// Result is the outcome of a traffic run.
type Result struct {
	// Pairs is the total completed packet-pair count.
	Pairs int `json:"pairs"`
	// Elapsed is the simulated time from start to the last completion.
	Elapsed sim.Time `json:"elapsed_ps"`
	// PPS is the aggregate full-duplex packet-pair rate.
	PPS float64 `json:"pps"`
	// GbpsPerDirection is the aggregate per-direction payload
	// throughput (the Figure 1 metric generalized to mixed sizes).
	GbpsPerDirection float64 `json:"gbps"`
	// OfferedPPS echoes the open-loop offered load (0 when saturating).
	OfferedPPS float64 `json:"offered_pps,omitempty"`
	// Latency summarizes completion latency across all queues in ns;
	// Median/P99/P999 are the p50/p99/p99.9 the reports quote.
	Latency stats.Summary `json:"latency_ns"`
	// Queues holds the per-queue breakdown.
	Queues []QueueStats `json:"queues"`
}

// txn is one PCIe transaction of a packet pair.
type txn struct {
	kind  int
	bytes int
	every int // amortization: issue when pktIndex%every == 0
}

// queueState is the engine's per-queue bookkeeping.
type queueState struct {
	addr     uint64 // base DMA address of the queue's buffer region
	mix      []txn  // interaction mix beyond the payload transfers
	count    int    // packets issued (drives amortization)
	inFlight int
	backlog  []pending // open-loop software queue, FIFO from bhead
	bhead    int       // index of the oldest backlog entry
	pairs    int       // completed
	bytes    int64     // completed payload bytes
	lat      []float64 // completion latencies in ns (pooled)

	latPtr     *[]float64 // pool boxes, round-tripped back on Put
	backlogPtr *[]pending
}

// pushBacklog appends an open-loop packet, compacting the consumed
// prefix first so the (pooled) backing array is reused instead of
// growing without bound.
func (qs *queueState) pushBacklog(p pending) {
	if qs.bhead > 0 && qs.bhead*2 >= len(qs.backlog) {
		n := copy(qs.backlog, qs.backlog[qs.bhead:])
		qs.backlog = qs.backlog[:n]
		qs.bhead = 0
	}
	qs.backlog = append(qs.backlog, p)
}

// popBacklog removes and returns the oldest queued packet.
func (qs *queueState) popBacklog() pending {
	p := qs.backlog[qs.bhead]
	qs.bhead++
	if qs.bhead == len(qs.backlog) {
		qs.backlog = qs.backlog[:0]
		qs.bhead = 0
	}
	return p
}

// backlogLen returns the number of queued packets.
func (qs *queueState) backlogLen() int { return len(qs.backlog) - qs.bhead }

// pending is an arrived-but-not-issued open-loop packet.
type pending struct {
	size    int
	arrival sim.Time
}

// Buffer pools shared across runs: completion-latency sample buffers
// and open-loop backlogs are returned after each Run, so repeated runs
// (sweep grids, benchmarks) stop reallocating them.
var (
	latBufPool  = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}
	backlogPool = sync.Pool{New: func() any { s := make([]pending, 0, 64); return &s }}
)

// getLatBuf borrows an empty latency buffer; putLatBuf returns it with
// its (possibly grown) storage. The *[]float64 box from Get round-trips
// back to Put so the pool itself allocates nothing per cycle.
func getLatBuf() *[]float64 {
	p := latBufPool.Get().(*[]float64)
	*p = (*p)[:0]
	return p
}

func putLatBuf(p *[]float64, s []float64) {
	*p = s[:0]
	latBufPool.Put(p)
}

// compileMix flattens a design's TX+RX interactions into the engine's
// transaction list with integer amortization, preserving the order the
// original throughput harness used.
func compileMix(design model.NIC) []txn {
	var mix []txn
	for _, set := range [][]model.Interaction{design.TX, design.RX} {
		for _, ia := range set {
			every := int(ia.PerPackets)
			if every < 1 {
				every = 1
			}
			mix = append(mix, txn{kind: ia.Kind, bytes: ia.Bytes, every: every})
		}
	}
	return mix
}

// runState is the engine state of one Run. Its per-packet control flow
// runs entirely through the kernel's typed events: completion and
// arrival bookkeeping are methods invoked via pointer-shaped handlers
// with the per-event data packed into the two event arguments, so the
// steady-state loop schedules nothing that allocates.
//
// A linked state (one endpoint of a coupled group, see RunMultiCoupled)
// runs the same control flow on a kernel of its own, but issueOne
// stages pairs instead of driving the shared fabric: the group's
// merger replays them on the hub kernel at each window barrier and
// sends the completion events back. ctx carries the merge protocol's
// causal ordering — the virtual sequence number of the latest replayed
// event this state observed.
type runState struct {
	k       *sim.Kernel
	complex Path
	cfg     Config
	rng     *rand.Rand
	queues  []queueState
	pairs   int
	issued  int
	done    int
	arrived int
	endAt   sim.Time
	err     error
	lat     []float64  // aggregate completion latencies (pooled)
	latPtr  *[]float64 // pool box, round-tripped back on Put
	closed  bool

	// Coupled-group fields; zero on serial and singleton-island runs.
	linked   bool
	dom      int          // this endpoint's ParallelKernel domain
	ctx      int64        // vseq of the latest causally preceding event
	stage    []stagedPair // pairs staged during the current window
	freeDone []*linkedDone
}

// stagedPair is one packet pair a linked endpoint issued during a
// window, recorded for hub replay at the barrier.
type stagedPair struct {
	q       int
	size    int
	mixIdx  int      // the pair's per-queue amortization index
	arrival sim.Time // open-loop arrival (latency baseline)
	at      sim.Time // endpoint-kernel time the pair was issued
	ctx     int64    // vseq of the handler that issued it
}

// linkedDone carries a replayed pair's completion from the hub back to
// its endpoint kernel: pairDoneEvent plus the replay's virtual
// sequence number, which becomes the state's ctx so pairs issued by
// the refill are ordered after this completion at the next barrier.
// Instances recycle through runState.freeDone — the free list is
// touched only by the endpoint's goroutine during windows and by the
// single-threaded merger at barriers, never concurrently.
type linkedDone struct {
	s    *runState
	vseq int64
}

// Handle restores the causal context, recycles the carrier and runs
// the ordinary completion bookkeeping.
func (e *linkedDone) Handle(k *sim.Kernel, a, b int64) {
	s := e.s
	s.ctx = e.vseq
	s.freeDone = append(s.freeDone, e)
	pairDoneEvent{s}.Handle(k, a, b)
}

// pairDoneEvent fires when the last transaction of a packet pair
// completes; a packs the queue index and frame size, b the arrival
// time.
type pairDoneEvent struct{ s *runState }

// Handle records the completed pair and refills its queue.
func (e pairDoneEvent) Handle(k *sim.Kernel, a, b int64) {
	s := e.s
	q, size := int(a>>32), int(a&0xFFFFFFFF)
	qs := &s.queues[q]
	qs.inFlight--
	qs.pairs++
	qs.bytes += int64(size)
	sample := (k.Now() - sim.Time(b)).Nanoseconds()
	qs.lat = append(qs.lat, sample)
	s.lat = append(s.lat, sample)
	s.done++
	if s.done == s.pairs {
		s.endAt = k.Now()
	}
	s.pump(q)
}

// startEvent kicks the run off at the kernel's current time.
type startEvent struct{ s *runState }

// Handle primes every queue (closed loop) or draws the first arrival
// gap (open loop).
func (e startEvent) Handle(*sim.Kernel, int64, int64) {
	s := e.s
	if s.closed {
		for q := range s.queues {
			s.pump(q)
		}
		return
	}
	s.scheduleArrival()
}

// arrivalEvent fires one open-loop arrival batch; a is the batch size,
// b the issuing handler's causal context (linked runs only).
type arrivalEvent struct{ s *runState }

// Handle spreads the batch over the queues by flow hash and draws the
// next arrival. On a linked state the event's recorded context is
// restored first, so the pairs it stages are ordered deterministically
// at the barrier regardless of worker count.
func (e arrivalEvent) Handle(k *sim.Kernel, a, b int64) {
	s := e.s
	if s.linked {
		s.ctx = b
	}
	for n := int64(0); n < a && s.arrived < s.pairs; n++ {
		s.arrived++
		flow := s.rng.Intn(s.cfg.Flows)
		q := queueOf(uint64(flow), s.cfg.Queues)
		size := s.cfg.Sizes.Sample(s.rng)
		qs := &s.queues[q]
		if qs.inFlight < s.cfg.Window {
			s.issueOne(q, size, k.Now())
		} else {
			qs.pushBacklog(pending{size: size, arrival: k.Now()})
		}
	}
	s.scheduleArrival()
}

// scheduleArrival draws the next open-loop gap and batch and schedules
// the batch event.
func (s *runState) scheduleArrival() {
	if s.arrived >= s.pairs || s.err != nil {
		return
	}
	gap, batch := s.cfg.Arrival.NextGap(s.rng)
	s.k.AfterEvent(gap, arrivalEvent{s}, int64(batch), s.ctx)
}

// pump refills queue q: closed-loop runs draw fresh frames up to the
// window; open-loop runs drain the software backlog.
func (s *runState) pump(q int) {
	qs := &s.queues[q]
	if s.closed {
		for qs.inFlight < s.cfg.Window && s.issued < s.pairs && s.err == nil {
			s.issueOne(q, s.cfg.Sizes.Sample(s.rng), s.k.Now())
		}
		return
	}
	for qs.inFlight < s.cfg.Window && qs.backlogLen() > 0 && s.err == nil {
		p := qs.popBacklog()
		s.issueOne(q, p.size, p.arrival)
	}
}

// issueTxnAt runs one PCIe transaction of a pair at time at and
// returns the updated pair-completion horizon. Serial runs pass the
// kernel's current time; hub replay passes the pair's staged issue
// time.
func (s *runState) issueTxnAt(qs *queueState, kind, bytes int, at, pairEnd sim.Time) sim.Time {
	if s.err != nil {
		return pairEnd
	}
	switch kind {
	case model.DMARead:
		res, err := s.complex.DMARead(at, qs.addr, bytes)
		if err != nil {
			s.err = err
			return pairEnd
		}
		if res.Complete > pairEnd {
			pairEnd = res.Complete
		}
	case model.DMAWrite:
		res, err := s.complex.DMAWrite(at, qs.addr, bytes)
		if err != nil {
			s.err = err
			return pairEnd
		}
		if res.LinkDone > pairEnd {
			pairEnd = res.LinkDone
		}
	case model.MMIOWrite:
		if t := s.complex.MMIOWrite(at, bytes); t > pairEnd {
			pairEnd = t
		}
	case model.MMIORead:
		if t := s.complex.MMIORead(at, bytes, mmioReadLatency); t > pairEnd {
			pairEnd = t
		}
	}
	return pairEnd
}

// issueOne expands one packet pair into its transaction list at the
// current simulated time and schedules the completion bookkeeping. On
// a linked state the pair is staged instead — bookkeeping (window
// occupancy, amortization index) advances now, the fabric transactions
// run at the barrier in replay order.
func (s *runState) issueOne(q, size int, arrival sim.Time) {
	qs := &s.queues[q]
	i := qs.count
	qs.count++
	qs.inFlight++
	s.issued++
	if s.linked {
		s.stage = append(s.stage, stagedPair{
			q: q, size: size, mixIdx: i, arrival: arrival, at: s.k.Now(), ctx: s.ctx,
		})
		return
	}
	// Payload first — TX is a DMA read, RX a DMA write — then the
	// design's amortized interactions.
	var pairEnd sim.Time
	pairEnd = s.issueTxnAt(qs, model.DMARead, size, s.k.Now(), pairEnd)
	pairEnd = s.issueTxnAt(qs, model.DMAWrite, size, s.k.Now(), pairEnd)
	for _, tx := range qs.mix {
		if i%tx.every == 0 {
			pairEnd = s.issueTxnAt(qs, tx.kind, tx.bytes, s.k.Now(), pairEnd)
		}
	}
	if s.err != nil {
		return
	}
	s.k.AtEvent(pairEnd, pairDoneEvent{s}, int64(q)<<32|int64(size), int64(arrival))
}

// replayPair drives one staged pair's transactions into the shared
// fabric at its recorded issue time — the same expansion issueOne
// performs inline on a serial run — and returns the pair-completion
// horizon. The caller (the group merger) runs on the hub kernel at a
// window barrier.
func (s *runState) replayPair(sp stagedPair) sim.Time {
	qs := &s.queues[sp.q]
	var pairEnd sim.Time
	pairEnd = s.issueTxnAt(qs, model.DMARead, sp.size, sp.at, pairEnd)
	pairEnd = s.issueTxnAt(qs, model.DMAWrite, sp.size, sp.at, pairEnd)
	for _, tx := range qs.mix {
		if sp.mixIdx%tx.every == 0 {
			pairEnd = s.issueTxnAt(qs, tx.kind, tx.bytes, sp.at, pairEnd)
		}
	}
	return pairEnd
}

// newRunState builds one engine state over path with the given
// workload randomness seed. cfg must already be resolved and valid.
func newRunState(k *sim.Kernel, path Path, bufDMA uint64, cfg Config, pairs int, seed int64) *runState {
	s := &runState{
		k:       k,
		complex: path,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		queues:  make([]queueState, cfg.Queues),
		pairs:   pairs,
		latPtr:  getLatBuf(),
		closed:  cfg.Arrival.Saturating(),
	}
	s.lat = *s.latPtr
	for q := range s.queues {
		mod := cfg.Moderation
		if cfg.PerQueue != nil {
			mod = cfg.PerQueue[q]
		}
		lp := getLatBuf()
		s.queues[q] = queueState{
			addr:   bufDMA + uint64(q)*uint64(cfg.QueueStride),
			mix:    compileMix(mod.Apply(cfg.Design)),
			lat:    *lp,
			latPtr: lp,
		}
		if !s.closed {
			bp := backlogPool.Get().(*[]pending)
			s.queues[q].backlog = (*bp)[:0]
			s.queues[q].backlogPtr = bp
		}
	}
	return s
}

// release returns the state's pooled buffers.
func (s *runState) release() {
	putLatBuf(s.latPtr, s.lat)
	for q := range s.queues {
		qs := &s.queues[q]
		if qs.latPtr != nil {
			putLatBuf(qs.latPtr, qs.lat)
		}
		if qs.backlogPtr != nil {
			*qs.backlogPtr = qs.backlog[:0]
			backlogPool.Put(qs.backlogPtr)
		}
	}
}

// finished validates that the run completed all its pairs.
func (s *runState) finished() error {
	if s.err != nil {
		return s.err
	}
	if s.endAt == 0 || s.done != s.pairs {
		return fmt.Errorf("workload: run did not complete (%d/%d pairs)", s.done, s.pairs)
	}
	return nil
}

// collect assembles the state's Result for a run that started at
// start. Rates use the state's own completion horizon.
func (s *runState) collect(start sim.Time, scratch *stats.Scratch) *Result {
	elapsed := s.endAt - start
	secs := elapsed.Seconds()
	res := &Result{
		Pairs:      s.pairs,
		Elapsed:    elapsed,
		PPS:        float64(s.pairs) / secs,
		OfferedPPS: s.cfg.Arrival.OfferedPPS(),
	}
	var totalBytes int64
	for q := range s.queues {
		qs := &s.queues[q]
		totalBytes += qs.bytes
		st := QueueStats{
			Queue: q,
			Pairs: qs.pairs,
			PPS:   float64(qs.pairs) / secs,
			Gbps:  float64(qs.bytes) * 8 / secs / 1e9,
		}
		if len(qs.lat) > 0 {
			st.Latency, _ = scratch.Summarize(qs.lat)
		}
		res.Queues = append(res.Queues, st)
	}
	res.GbpsPerDirection = float64(totalBytes) * 8 / secs / 1e9
	res.Latency, _ = scratch.Summarize(s.lat)
	return res
}

// Run drives complex with cfg's traffic until pairs packet pairs have
// completed, with each queue's buffer region starting at bufDMA +
// queue*QueueStride, and returns the per-queue and aggregate rates and
// latency percentiles. The simulation starts at the kernel's current
// time, so a fresh instance and a shared one measure the same way.
func Run(k *sim.Kernel, complex *rc.RootComplex, bufDMA uint64, cfg Config, pairs int) (*Result, error) {
	if pairs <= 0 {
		return nil, fmt.Errorf("workload: pairs %d, want > 0", pairs)
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	s := newRunState(k, complex, bufDMA, cfg, pairs, cfg.Seed)
	defer s.release()

	start := k.Now()
	k.AfterEvent(0, startEvent{s}, 0, 0)
	k.Run()
	if err := s.finished(); err != nil {
		return nil, err
	}
	var scratch stats.Scratch
	return s.collect(start, &scratch), nil
}

// EndpointResult is one endpoint's share of a multi-endpoint run.
type EndpointResult struct {
	// Endpoint indexes the path the traffic ran on.
	Endpoint int `json:"endpoint"`
	// Faults is the endpoint's AER-style fault accounting; omitted
	// when fault injection is disabled (see internal/fault).
	Faults *fault.Counters `json:"faults,omitempty"`
	Result
}

// MultiResult is the outcome of a multi-endpoint traffic run: the
// aggregate over the whole fabric plus the per-endpoint breakdown.
type MultiResult struct {
	// Pairs is the total completed packet-pair count across endpoints.
	Pairs int `json:"pairs"`
	// Elapsed spans start to the last endpoint's final completion.
	Elapsed sim.Time `json:"elapsed_ps"`
	// PPS and GbpsPerDirection aggregate all endpoints over Elapsed.
	PPS              float64 `json:"pps"`
	GbpsPerDirection float64 `json:"gbps"`
	// Latency summarizes completion latency across every endpoint.
	Latency stats.Summary `json:"latency_ns"`
	// Faults aggregates every endpoint's fault accounting; omitted
	// when fault injection is disabled.
	Faults *fault.Counters `json:"faults,omitempty"`
	// Endpoints holds the per-endpoint breakdown.
	Endpoints []EndpointResult `json:"endpoints"`
}

// RunMulti drives the same workload on every path concurrently — one
// independent engine state per endpoint, all sharing the kernel, so
// their traffic contends for whatever the topology shares (a switch
// uplink, the root-complex pipeline, the LLC). bases[i] is endpoint
// i's buffer base address; each endpoint's workload randomness is
// decorrelated from cfg.Seed by its index. Every endpoint completes
// pairsEach packet pairs.
func RunMulti(k *sim.Kernel, paths []Path, bases []uint64, cfg Config, pairsEach int) (*MultiResult, error) {
	kernels := make([]*sim.Kernel, len(paths))
	for i := range kernels {
		kernels[i] = k
	}
	if len(paths) == 0 {
		kernels = []*sim.Kernel{k} // let RunMultiKernels report "no paths"
	}
	return RunMultiKernels(kernels, paths, bases, cfg, pairsEach, 1)
}

// RunMultiKernels is RunMulti for a partitioned fabric: kernels[i] is
// the event kernel endpoint i's simulation island runs on. The kernels
// are deduplicated (in first-appearance order) into domains; a single
// domain runs exactly like RunMulti, several run concurrently on up to
// workers goroutines via sim.NewParallel. Islands exchange no events,
// so each free-runs to completion in one window. State construction,
// start-event scheduling and result collection all happen in global
// endpoint order, which keeps results byte-identical to the serial
// single-kernel run at every worker count.
func RunMultiKernels(kernels []*sim.Kernel, paths []Path, bases []uint64, cfg Config, pairsEach, workers int) (*MultiResult, error) {
	return runMulti(kernels, nil, paths, bases, cfg, pairsEach, workers)
}

// Coupled describes one coupled island of a linked fabric build: its
// members' control loops run on their own kernels (kernels[i] for each
// i in Endpoints), while the island's shared fabric state lives on Hub,
// which must not appear in the endpoint kernel slice. Lookahead is the
// island's windowed-channel latency: a lower bound on how long after
// issue any pair can complete, so completions sent at the barrier
// always clear the channel's timing floor.
type Coupled struct {
	Hub       *sim.Kernel
	Lookahead sim.Time
	Endpoints []int
}

// RunMultiCoupled is RunMultiKernels for fabrics where some islands
// hold several endpoints coupled by shared state (a switch, a socket, a
// buffer node, declared peering). Each coupled group's pairs are staged
// on the members' kernels and replayed through the group's hub at
// window barriers in serial issue order, with completions delivered
// over windowed channels — results stay byte-identical across worker
// counts, and for closed-loop workloads identical to the serial build.
func RunMultiCoupled(kernels []*sim.Kernel, groups []Coupled, paths []Path, bases []uint64, cfg Config, pairsEach, workers int) (*MultiResult, error) {
	return runMulti(kernels, groups, paths, bases, cfg, pairsEach, workers)
}

func runMulti(kernels []*sim.Kernel, groups []Coupled, paths []Path, bases []uint64, cfg Config, pairsEach, workers int) (*MultiResult, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("workload: no kernels")
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("workload: no paths")
	}
	if len(kernels) != len(paths) {
		return nil, fmt.Errorf("workload: %d kernels but %d paths", len(kernels), len(paths))
	}
	if len(paths) != len(bases) {
		return nil, fmt.Errorf("workload: %d paths but %d buffer bases", len(paths), len(bases))
	}
	if pairsEach <= 0 {
		return nil, fmt.Errorf("workload: pairs %d, want > 0", pairsEach)
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	var domains []*sim.Kernel
	for _, k := range kernels {
		seen := false
		for _, d := range domains {
			if d == k {
				seen = true
				break
			}
		}
		if !seen {
			domains = append(domains, k)
		}
	}
	domOf := func(k *sim.Kernel) int {
		for d, dk := range domains {
			if dk == k {
				return d
			}
		}
		return -1
	}
	// Hub kernels become extra domains after the endpoint domains, one
	// per coupled group, in group order.
	epDomains := len(domains)
	for gi, g := range groups {
		if len(g.Endpoints) == 0 {
			return nil, fmt.Errorf("workload: coupled group %d has no endpoints", gi)
		}
		if g.Hub == nil || domOf(g.Hub) >= 0 {
			return nil, fmt.Errorf("workload: coupled group %d hub must be a dedicated kernel", gi)
		}
		domains = append(domains, g.Hub)
	}

	states := make([]*runState, len(paths))
	starts := make([]sim.Time, len(paths))
	for i := range paths {
		states[i] = newRunState(kernels[i], paths[i], bases[i], cfg, pairsEach, runner.Seed(cfg.Seed, i))
		defer states[i].release()
	}
	for _, g := range groups {
		for j, i := range g.Endpoints {
			if i < 0 || i >= len(states) {
				return nil, fmt.Errorf("workload: coupled group references endpoint %d of %d", i, len(states))
			}
			s := states[i]
			s.linked = true
			s.dom = domOf(kernels[i])
			// Start events are the first N replay-order contexts, in
			// member order; issued pairs take vseq numbers from N up.
			s.ctx = int64(j)
		}
	}
	for i, s := range states {
		starts[i] = kernels[i].Now()
		kernels[i].AfterEvent(0, startEvent{s}, 0, 0)
	}
	if len(domains) == 1 && len(groups) == 0 {
		domains[0].Run()
	} else {
		p := sim.NewParallel(domains)
		for gi, g := range groups {
			hubDom := epDomains + gi
			members := make([]*runState, len(g.Endpoints))
			for j, i := range g.Endpoints {
				members[j] = states[i]
				p.Connect(hubDom, states[i].dom, g.Lookahead)
			}
			p.AddMerger(&coupledGroup{
				hub:    g.Hub,
				hubDom: hubDom,
				states: members,
				vseq:   int64(len(g.Endpoints)),
			})
		}
		p.Run(workers)
	}

	res := &MultiResult{}
	var scratch stats.Scratch
	var allLat []float64
	var totalBytes int64
	for i, s := range states {
		if err := s.finished(); err != nil {
			return nil, fmt.Errorf("workload: endpoint %d: %w", i, err)
		}
		if d := s.endAt - starts[i]; d > res.Elapsed {
			res.Elapsed = d
		}
		res.Pairs += s.pairs
		allLat = append(allLat, s.lat...)
		for q := range s.queues {
			totalBytes += s.queues[q].bytes
		}
		res.Endpoints = append(res.Endpoints, EndpointResult{Endpoint: i, Result: *s.collect(starts[i], &scratch)})
	}
	secs := res.Elapsed.Seconds()
	res.PPS = float64(res.Pairs) / secs
	res.GbpsPerDirection = float64(totalBytes) * 8 / secs / 1e9
	res.Latency, _ = scratch.Summarize(allLat)
	return res, nil
}

// pairRef points at one staged pair during a barrier merge: states[...]
// owns the stage slice, idx indexes into it.
type pairRef struct {
	s   *runState
	idx int
}

// coupledGroup replays one coupled island's staged pairs into the
// shared fabric at every window barrier. The members' workload control
// loops run on their own kernels; all fabric state binds to the hub
// kernel, which only this merger drives — single-threaded, inside the
// barrier — so replay order is a deterministic schedule.
//
// Ordering: staged pairs sort by (issue time, issuing context, stage
// index). The context is the virtual sequence number of the event that
// issued the pair, and vseq numbers are assigned in replay order (start
// events take 0..N-1 in member order), so the sort reproduces exactly
// the handler order a serial single-kernel run would execute — ties at
// one timestamp resolve by the serial schedule's own FCFS causality,
// not by member index. See the package design note in the sim package
// for the argument.
type coupledGroup struct {
	hub    *sim.Kernel
	hubDom int
	states []*runState // group members, in island-endpoint order
	vseq   int64       // next virtual sequence number
	refs   []pairRef   // scratch, reused across barriers
}

// Merge implements sim.Merger: sort the window's staged pairs into
// serial order, replay each through the hub at its recorded issue time,
// and send the completion back over the windowed channel.
func (g *coupledGroup) Merge(p *sim.ParallelKernel) {
	refs := g.refs[:0]
	for _, s := range g.states {
		for i := range s.stage {
			refs = append(refs, pairRef{s, i})
		}
	}
	if len(refs) == 0 {
		g.refs = refs
		return
	}
	// (at, ctx, idx) is a strict total order: a context belongs to one
	// member, so cross-member refs never tie past ctx, and idx orders
	// pairs staged by one handler activation.
	sort.Slice(refs, func(a, b int) bool {
		pa := refs[a].s.stage[refs[a].idx]
		pb := refs[b].s.stage[refs[b].idx]
		if pa.at != pb.at {
			return pa.at < pb.at
		}
		if pa.ctx != pb.ctx {
			return pa.ctx < pb.ctx
		}
		return refs[a].idx < refs[b].idx
	})
	for _, r := range refs {
		s := r.s
		sp := s.stage[r.idx]
		// Windows only grow the hub clock: every pair staged in window
		// n has an issue time below that window's horizon, and pairs
		// staged later land at or beyond it.
		g.hub.RunUntil(sp.at)
		pairEnd := s.replayPair(sp)
		vseq := g.vseq
		g.vseq++
		if s.err != nil {
			// Serial issueOne returns without scheduling completion on
			// error; the member's loop winds down when it sees err.
			continue
		}
		var ld *linkedDone
		if n := len(s.freeDone); n > 0 {
			ld = s.freeDone[n-1]
			s.freeDone = s.freeDone[:n-1]
		} else {
			ld = &linkedDone{}
		}
		ld.s = s
		ld.vseq = vseq
		// The send must happen now, before the hub clock advances to
		// the next pair: pairEnd clears the link's lookahead from
		// sp.at, not necessarily from later issue times.
		p.Send(g.hubDom, s.dom, pairEnd, ld, int64(sp.q)<<32|int64(sp.size), int64(sp.arrival))
	}
	for _, s := range g.states {
		s.stage = s.stage[:0]
	}
	g.refs = refs[:0]
}

// queueOf spreads a flow over the queues RSS-style with a splitmix64
// hash, so flow-to-queue assignment is stable across runs and roughly
// uniform over any flow population.
func queueOf(flow uint64, queues int) int {
	z := flow + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(queues))
}
