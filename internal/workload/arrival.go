package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pciebench/internal/sim"
)

// Arrival generates packet arrivals. Saturating processes run the
// engine closed-loop (every queue keeps its in-flight window full);
// open-loop processes emit timed arrival batches and packets queue in
// software when their target queue's window is full — which is where
// completion-latency tails come from.
type Arrival interface {
	// Saturating reports closed-loop mode.
	Saturating() bool
	// NextGap returns the gap before the next arrival batch and the
	// number of packets arriving together. Never called when Saturating.
	NextGap(rng *rand.Rand) (gap sim.Time, batch int)
	// OfferedPPS returns the offered load in packets/s (0 when
	// saturating).
	OfferedPPS() float64
	String() string
}

// saturate is the closed-loop arrival process.
type saturate struct{}

// Saturate returns the closed-loop arrival process: the engine issues
// a new packet the moment a window slot frees, like the paper's
// bandwidth benchmarks.
func Saturate() Arrival { return saturate{} }

func (saturate) Saturating() bool                   { return true }
func (saturate) NextGap(*rand.Rand) (sim.Time, int) { return 0, 1 }
func (saturate) OfferedPPS() float64                { return 0 }
func (saturate) String() string                     { return "saturate" }

// timedArrival is an open-loop process: packets arrive in fixed-size
// bursts with deterministic or exponential gaps, at a configured mean
// rate.
type timedArrival struct {
	pps     float64
	burst   int
	meanGap float64 // picoseconds between bursts
	poisson bool
}

func newTimed(pps float64, burst int, poisson bool) (Arrival, error) {
	if pps <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v pps, want > 0", pps)
	}
	if burst < 1 {
		burst = 1
	}
	return &timedArrival{
		pps:     pps,
		burst:   burst,
		meanGap: float64(burst) / pps * 1e12,
		poisson: poisson,
	}, nil
}

// FixedRate returns a constant-rate arrival process offering pps
// packets/s in bursts of burst back-to-back packets (burst <= 1 means
// one packet per arrival).
func FixedRate(pps float64, burst int) (Arrival, error) { return newTimed(pps, burst, false) }

// Poisson returns a Poisson arrival process offering pps packets/s on
// average: burst-sized batches separated by exponentially distributed
// gaps, the classic bursty-traffic model.
func Poisson(pps float64, burst int) (Arrival, error) { return newTimed(pps, burst, true) }

func (a *timedArrival) Saturating() bool    { return false }
func (a *timedArrival) OfferedPPS() float64 { return a.pps }

func (a *timedArrival) NextGap(rng *rand.Rand) (sim.Time, int) {
	gap := a.meanGap
	if a.poisson {
		gap = rng.ExpFloat64() * a.meanGap
	}
	return sim.Time(gap), a.burst
}

func (a *timedArrival) String() string {
	kind := "rate"
	if a.poisson {
		kind = "poisson"
	}
	s := fmt.Sprintf("%s:%s", kind, formatRate(a.pps))
	if a.burst > 1 {
		s += fmt.Sprintf(":burst=%d", a.burst)
	}
	return s
}

// ParseRate parses a packets-per-second rate with an optional decimal
// K/M/G suffix ("14.88M" -> 14.88e6).
func ParseRate(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("workload: bad rate %q", s)
	}
	return v * mult, nil
}

func formatRate(pps float64) string {
	switch {
	case pps >= 1e9:
		return strconv.FormatFloat(pps/1e9, 'g', -1, 64) + "G"
	case pps >= 1e6:
		return strconv.FormatFloat(pps/1e6, 'g', -1, 64) + "M"
	case pps >= 1e3:
		return strconv.FormatFloat(pps/1e3, 'g', -1, 64) + "K"
	}
	return strconv.FormatFloat(pps, 'g', -1, 64)
}

// ParseArrival parses the textual arrival forms used by sweep specs
// and CLIs:
//
//	"saturate"                  closed loop (the default)
//	"rate:14.88M"               constant rate in packets/s
//	"poisson:10M"               Poisson arrivals
//	"poisson:10M:burst=32"      Poisson bursts of 32 packets
func ParseArrival(s string) (Arrival, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "saturate" {
		return Saturate(), nil
	}
	parts := strings.Split(s, ":")
	kind := parts[0]
	if kind != "rate" && kind != "poisson" {
		return nil, fmt.Errorf("workload: unknown arrival %q (want saturate, rate:<pps> or poisson:<pps>[:burst=<n>])", s)
	}
	if len(parts) < 2 {
		return nil, fmt.Errorf("workload: arrival %q needs a rate", s)
	}
	pps, err := ParseRate(parts[1])
	if err != nil {
		return nil, err
	}
	burst := 1
	for _, opt := range parts[2:] {
		name, val, ok := strings.Cut(opt, "=")
		if !ok || name != "burst" {
			return nil, fmt.Errorf("workload: unknown arrival option %q", opt)
		}
		burst, err = strconv.Atoi(val)
		if err != nil || burst < 1 {
			return nil, fmt.Errorf("workload: bad burst %q", val)
		}
	}
	if kind == "poisson" {
		return Poisson(pps, burst)
	}
	return FixedRate(pps, burst)
}
