package workload

import (
	"math"
	"reflect"
	"testing"

	"pciebench/internal/hostif"
	"pciebench/internal/mem"
	"pciebench/internal/model"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

// buildStack assembles the same Gen3 x8 Haswell-like stack the nicsim
// tests use.
func buildStack(t *testing.T) (*sim.Kernel, *rc.RootComplex, *hostif.Buffer) {
	t.Helper()
	k := sim.New(3)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	host := hostif.New(ms, nil)
	complex, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, host)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := host.Alloc(8<<20, 0, hostif.Chunked4M, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.WarmHost(0, 1<<20)
	return k, complex, buf
}

func mustRun(t *testing.T, cfg Config, pairs int) *Result {
	t.Helper()
	k, complex, buf := buildStack(t)
	res, err := Run(k, complex, buf.DMAAddr(0), cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunErrors(t *testing.T) {
	k, complex, buf := buildStack(t)
	if _, err := Run(k, complex, buf.DMAAddr(0), Config{}, 0); err == nil {
		t.Error("pairs 0 accepted")
	}
	if _, err := Run(k, complex, buf.DMAAddr(0), Config{PerQueue: make([]Moderation, 3), Queues: 2}, 10); err == nil {
		t.Error("per-queue length mismatch accepted")
	}
	if _, err := Run(k, complex, buf.DMAAddr(0), Config{Queues: 8, BufferBytes: 64 << 10}, 10); err == nil {
		t.Error("overflowing buffer accepted")
	}
	if _, err := Run(k, complex, buf.DMAAddr(0), Config{Sizes: FixedSize(128 << 10)}, 10); err == nil {
		t.Error("frame larger than queue stride accepted")
	}
	bad := model.NIC{Name: "bad", TX: []model.Interaction{{Name: "x", Kind: model.DMARead, Bytes: 16}}}
	if _, err := Run(k, complex, buf.DMAAddr(0), Config{Design: bad}, 10); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestSingleQueueMatchesAnalyticalModel(t *testing.T) {
	// The single-queue saturating fixed-size case is the old
	// nicsim.Throughput; it must still land within 15% of the
	// closed-form model at sizes where serialization dominates.
	link := pcie.DefaultGen3x8()
	design := model.ModernNICKernel()
	for _, sz := range []int{512, 1500} {
		res := mustRun(t, Config{
			Design: design, Sizes: FixedSize(sz), Window: 64,
		}, 3000)
		want := design.Bandwidth(link, sz) / 1e9
		rel := (res.GbpsPerDirection - want) / want
		if rel > 0.15 || rel < -0.15 {
			t.Errorf("%dB: simulated %.2f vs model %.2f Gb/s (%.1f%%)",
				sz, res.GbpsPerDirection, want, rel*100)
		}
	}
}

func TestMultiQueueAccounting(t *testing.T) {
	const pairs = 2000
	res := mustRun(t, Config{
		Queues: 4, Sizes: IMIX(), Window: 16, Seed: 11,
	}, pairs)
	if res.Pairs != pairs {
		t.Fatalf("Pairs = %d", res.Pairs)
	}
	var sumPairs int
	var sumPPS float64
	for _, q := range res.Queues {
		sumPairs += q.Pairs
		sumPPS += q.PPS
		if q.Pairs == 0 {
			t.Errorf("queue %d starved in closed loop", q.Queue)
		}
	}
	if sumPairs != pairs {
		t.Errorf("per-queue pairs sum %d != %d", sumPairs, pairs)
	}
	if math.Abs(sumPPS-res.PPS)/res.PPS > 1e-9 {
		t.Errorf("per-queue PPS sum %.0f != aggregate %.0f", sumPPS, res.PPS)
	}
	if res.Latency.N != pairs {
		t.Errorf("latency samples %d != %d", res.Latency.N, pairs)
	}
	if !(res.Latency.Median <= res.Latency.P99 && res.Latency.P99 <= res.Latency.P999) {
		t.Errorf("percentiles not monotone: %v", res.Latency)
	}
}

func TestMultiQueueSharesOneLink(t *testing.T) {
	// The link is the bottleneck under saturation: four queues cannot
	// beat one queue by more than scheduling slack, and must not lose
	// much either.
	one := mustRun(t, Config{Queues: 1, Sizes: FixedSize(512), Window: 64}, 3000)
	four := mustRun(t, Config{Queues: 4, Sizes: FixedSize(512), Window: 16}, 3000)
	rel := (four.PPS - one.PPS) / one.PPS
	if rel > 0.10 || rel < -0.10 {
		t.Errorf("4-queue PPS %.0f vs 1-queue %.0f (%.1f%%), want link-bound parity",
			four.PPS, one.PPS, rel*100)
	}
}

func TestOpenLoopUnderloadTracksOfferedRate(t *testing.T) {
	// At 20% of capacity the completion rate equals the offered rate
	// and queues never build.
	arr, err := FixedRate(1e6, 1) // 1 Mpps of 512B vs ~9 Mpps capacity
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Queues: 2, Sizes: FixedSize(512), Arrival: arr, Window: 32, Seed: 5,
	}, 2000)
	if res.OfferedPPS != 1e6 {
		t.Errorf("OfferedPPS = %v", res.OfferedPPS)
	}
	rel := (res.PPS - 1e6) / 1e6
	if math.Abs(rel) > 0.05 {
		t.Errorf("PPS %.0f, want ~1M (%.1f%%)", res.PPS, rel*100)
	}
	// Unloaded: the tail stays near the median.
	if res.Latency.P99 > 3*res.Latency.Median {
		t.Errorf("unloaded tail blew up: p50 %.0f p99 %.0f", res.Latency.Median, res.Latency.P99)
	}
}

func TestOverloadBuildsLatencyTail(t *testing.T) {
	// Offering far more than the link can carry fills the windows and
	// the software queues: completion latency grows far beyond the
	// unloaded round trip while throughput caps at link capacity.
	arr, err := FixedRate(50e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	over := mustRun(t, Config{
		Queues: 2, Sizes: FixedSize(512), Arrival: arr, Window: 16, Seed: 5,
	}, 3000)
	sat := mustRun(t, Config{
		Queues: 2, Sizes: FixedSize(512), Window: 16,
	}, 3000)
	if over.PPS > sat.PPS*1.1 {
		t.Errorf("overload PPS %.0f exceeds saturation %.0f", over.PPS, sat.PPS)
	}
	if over.Latency.P999 < 4*sat.Latency.Median {
		t.Errorf("overload p99.9 %.0fns did not build a queueing tail (unloaded median %.0fns)",
			over.Latency.P999, sat.Latency.Median)
	}
}

func TestPoissonBurstsWidenTheTail(t *testing.T) {
	// At the same mean rate, bursty arrivals queue where smooth ones
	// do not: the burst run's p99.9 must exceed the smooth run's.
	smoothArr, err := FixedRate(4e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	burstArr, err := Poisson(4e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Queues: 2, Sizes: FixedSize(512), Window: 8, Seed: 9}
	smoothCfg, burstCfg := base, base
	smoothCfg.Arrival, burstCfg.Arrival = smoothArr, burstArr
	smooth := mustRun(t, smoothCfg, 4000)
	burst := mustRun(t, burstCfg, 4000)
	if burst.Latency.P999 <= smooth.Latency.P999 {
		t.Errorf("burst p99.9 %.0fns <= smooth p99.9 %.0fns",
			burst.Latency.P999, smooth.Latency.P999)
	}
}

func TestRSSSpreadsFlowsAcrossQueues(t *testing.T) {
	// Open-loop packets pick a flow from a large population; its hash
	// must spread work over every queue without gross imbalance.
	arr, err := FixedRate(2e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	const pairs = 4000
	res := mustRun(t, Config{
		Queues: 4, Flows: 1 << 20, Sizes: FixedSize(256), Arrival: arr, Seed: 21,
	}, pairs)
	for _, q := range res.Queues {
		frac := float64(q.Pairs) / pairs
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("queue %d got %.1f%% of packets, want ~25%%", q.Queue, frac*100)
		}
	}
}

func TestQueueOfUniform(t *testing.T) {
	counts := make([]int, 8)
	const flows = 1 << 16
	for f := 0; f < flows; f++ {
		counts[queueOf(uint64(f), 8)]++
	}
	for q, c := range counts {
		frac := float64(c) / flows
		if frac < 0.10 || frac > 0.15 {
			t.Errorf("queue %d gets %.3f of flows, want ~0.125", q, frac)
		}
	}
}

func TestModerationPollModeMatchesDPDKDesign(t *testing.T) {
	// Stripping interrupts and head reads from the kernel design must
	// reproduce the DPDK design's transaction mix exactly.
	polled := Moderation{IntrEvery: -1}.Apply(model.ModernNICKernel())
	dpdk := model.ModernNICDPDK()
	if len(polled.TX) != len(dpdk.TX) || len(polled.RX) != len(dpdk.RX) {
		t.Fatalf("poll mode kept %d/%d interactions, dpdk has %d/%d",
			len(polled.TX), len(polled.RX), len(dpdk.TX), len(dpdk.RX))
	}
	for i := range polled.TX {
		if polled.TX[i] != dpdk.TX[i] {
			t.Errorf("TX[%d] = %+v, want %+v", i, polled.TX[i], dpdk.TX[i])
		}
	}
}

func TestModerationRebatchesDescriptors(t *testing.T) {
	m := Moderation{DescBatch: 8, WriteBackBatch: 4, DoorbellBatch: 16, IntrEvery: 100}
	out := m.Apply(model.SimpleNIC())
	seen := map[model.Role]model.Interaction{}
	for _, ia := range append(out.TX, out.RX...) {
		seen[ia.Role] = ia
	}
	if ia := seen[model.RoleDescFetch]; ia.PerPackets != 8 || ia.Bytes != 16*8 {
		t.Errorf("desc fetch = %+v", ia)
	}
	if ia := seen[model.RoleWriteBack]; ia.PerPackets != 4 || ia.Bytes != 16*4 {
		t.Errorf("write-back = %+v", ia)
	}
	if ia := seen[model.RoleDoorbell]; ia.PerPackets != 16 {
		t.Errorf("doorbell = %+v", ia)
	}
	if ia := seen[model.RoleInterrupt]; ia.PerPackets != 100 {
		t.Errorf("interrupt = %+v", ia)
	}
	// Zero moderation is the identity.
	id := Moderation{}.Apply(model.SimpleNIC())
	if !reflect.DeepEqual(id, model.SimpleNIC()) {
		t.Error("zero moderation rewrote the design")
	}
}

func TestModerationLiftsSimpleNICThroughput(t *testing.T) {
	// Batching the simple NIC's per-packet descriptors and doorbells
	// must raise small-packet throughput, the paper's §3 argument.
	base := mustRun(t, Config{
		Design: model.SimpleNIC(), Sizes: FixedSize(64), Window: 64,
	}, 2000)
	batched := mustRun(t, Config{
		Design: model.SimpleNIC(), Sizes: FixedSize(64), Window: 64,
		Moderation: Moderation{DescBatch: 40, WriteBackBatch: 8, DoorbellBatch: 40, IntrEvery: 40},
	}, 2000)
	if batched.PPS <= base.PPS*1.2 {
		t.Errorf("batched %.0f pps vs per-packet %.0f pps, want > 20%% gain",
			batched.PPS, base.PPS)
	}
}

func TestPerQueueModerationApplies(t *testing.T) {
	// One poll-mode queue and one interrupt-heavy queue: the poll-mode
	// queue must complete more pairs under equal open-loop load.
	arr, err := FixedRate(40e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{
		Queues: 2, Flows: 1 << 20, Sizes: FixedSize(64), Arrival: arr,
		Design: model.SimpleNIC(), Window: 8, Seed: 13,
		PerQueue: []Moderation{
			{IntrEvery: -1, DescBatch: 40, WriteBackBatch: 8, DoorbellBatch: 40},
			{},
		},
	}, 4000)
	fast, slow := res.Queues[0], res.Queues[1]
	if fast.Latency.Median >= slow.Latency.Median {
		t.Errorf("poll-mode queue median %.0fns >= interrupt queue %.0fns",
			fast.Latency.Median, slow.Latency.Median)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Queues: 3, Sizes: IMIX(), Window: 8, Seed: 99,
	}
	a := mustRun(t, cfg, 1500)
	b := mustRun(t, cfg, 1500)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical configs produced different results")
	}
	cfg.Seed = 100
	c := mustRun(t, cfg, 1500)
	if reflect.DeepEqual(a.Latency, c.Latency) {
		t.Error("different seeds produced identical latency distributions")
	}
}

func TestSharedKernelMeasuresElapsedNotAbsolute(t *testing.T) {
	// Run twice on one kernel: the second run starts at a later
	// simulated time and must still report its own rate, not a rate
	// diluted by the first run's elapsed time.
	k, complex, buf := buildStack(t)
	cfg := Config{Sizes: FixedSize(512), Window: 32}
	first, err := Run(k, complex, buf.DMAAddr(0), cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(k, complex, buf.DMAAddr(0), cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rel := (second.PPS - first.PPS) / first.PPS
	if math.Abs(rel) > 0.10 {
		t.Errorf("second run PPS %.0f vs first %.0f (%.1f%%)", second.PPS, first.PPS, rel*100)
	}
}

func TestDesignByName(t *testing.T) {
	for name, want := range map[string]string{
		"":       model.ModernNICKernel().Name,
		"kernel": model.ModernNICKernel().Name,
		"simple": model.SimpleNIC().Name,
		"dpdk":   model.ModernNICDPDK().Name,
	} {
		d, err := DesignByName(name)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if d.Name != want {
			t.Errorf("%q -> %q, want %q", name, d.Name, want)
		}
	}
	if _, err := DesignByName("exotic"); err == nil {
		t.Error("unknown design accepted")
	}
}
