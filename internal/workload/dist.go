package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// SizeDist draws per-packet frame sizes. Implementations are
// deterministic functions of the supplied rng, so a workload replays
// bit-for-bit from its seed.
type SizeDist interface {
	// Sample returns the next frame size in bytes. Degenerate
	// distributions must not consume rng state, so fixed-size runs stay
	// bit-identical to experiments that never sample.
	Sample(rng *rand.Rand) int
	// Mean returns the expected frame size, for offered-load math.
	Mean() float64
	// Max returns the largest size the distribution can produce.
	Max() int
	String() string
}

// Frame-size bounds accepted by every distribution: one byte up to a
// jumbo frame.
const (
	minFrame = 1
	maxFrame = 9216
)

func checkFrame(sz int) error {
	if sz < minFrame || sz > maxFrame {
		return fmt.Errorf("workload: frame size %d out of [%d,%d]", sz, minFrame, maxFrame)
	}
	return nil
}

// fixedDist emits one size forever.
type fixedDist struct{ n int }

// FixedSize returns the degenerate distribution: every packet is n
// bytes. Its Sample never touches the rng.
func FixedSize(n int) SizeDist { return fixedDist{n} }

func (d fixedDist) Sample(*rand.Rand) int { return d.n }
func (d fixedDist) Mean() float64         { return float64(d.n) }
func (d fixedDist) Max() int              { return d.n }
func (d fixedDist) String() string        { return strconv.Itoa(d.n) }

// SizePoint is one (size, weight) bin of a histogram distribution.
type SizePoint struct {
	Size   int
	Weight int
}

// histDist samples sizes proportionally to integer weights.
type histDist struct {
	points []SizePoint
	cum    []int // inclusive prefix sums of weights
	total  int
	mean   float64
	max    int
	label  string
}

// HistogramDist builds a weighted-histogram distribution from points.
// Weights are relative integer frequencies (e.g. the 7:4:1 of IMIX).
func HistogramDist(points []SizePoint, label string) (SizeDist, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: histogram needs at least one size")
	}
	d := &histDist{points: append([]SizePoint(nil), points...), label: label}
	var weighted float64
	for _, p := range d.points {
		if err := checkFrame(p.Size); err != nil {
			return nil, err
		}
		if p.Weight <= 0 {
			return nil, fmt.Errorf("workload: histogram size %d has weight %d, want > 0", p.Size, p.Weight)
		}
		d.total += p.Weight
		d.cum = append(d.cum, d.total)
		weighted += float64(p.Size) * float64(p.Weight)
		if p.Size > d.max {
			d.max = p.Size
		}
	}
	d.mean = weighted / float64(d.total)
	return d, nil
}

func (d *histDist) Sample(rng *rand.Rand) int {
	v := rng.Intn(d.total)
	for i, c := range d.cum {
		if v < c {
			return d.points[i].Size
		}
	}
	return d.points[len(d.points)-1].Size
}

func (d *histDist) Mean() float64 { return d.mean }
func (d *histDist) Max() int      { return d.max }
func (d *histDist) String() string {
	if d.label != "" {
		return d.label
	}
	parts := make([]string, len(d.points))
	for i, p := range d.points {
		parts[i] = fmt.Sprintf("%d=%d", p.Size, p.Weight)
	}
	return "hist:" + strings.Join(parts, ",")
}

// IMIX returns the classic "simple IMIX" Internet mix: 64, 594 and
// 1518 byte frames in 7:4:1 proportion (~353B average), the standard
// stand-in for production packet-size diversity.
func IMIX() SizeDist {
	d, err := HistogramDist([]SizePoint{{64, 7}, {594, 4}, {1518, 1}}, "imix")
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return d
}

// uniformDist draws uniformly from [lo, hi].
type uniformDist struct{ lo, hi int }

// Uniform returns the distribution drawing uniformly from [lo, hi].
func Uniform(lo, hi int) (SizeDist, error) {
	if err := checkFrame(lo); err != nil {
		return nil, err
	}
	if err := checkFrame(hi); err != nil {
		return nil, err
	}
	if lo > hi {
		return nil, fmt.Errorf("workload: uniform range %d-%d inverted", lo, hi)
	}
	return uniformDist{lo, hi}, nil
}

func (d uniformDist) Sample(rng *rand.Rand) int {
	if d.lo == d.hi {
		return d.lo
	}
	return d.lo + rng.Intn(d.hi-d.lo+1)
}
func (d uniformDist) Mean() float64  { return float64(d.lo+d.hi) / 2 }
func (d uniformDist) Max() int       { return d.hi }
func (d uniformDist) String() string { return fmt.Sprintf("uniform:%d-%d", d.lo, d.hi) }

// ParseSizeDist parses the textual distribution forms used by sweep
// specs and CLIs:
//
//	"1500"                a fixed size
//	"imix"                the 7:4:1 simple IMIX
//	"uniform:64-1518"     uniform over an inclusive range
//	"hist:64=7,594=4,1518=1"  a custom weighted histogram
func ParseSizeDist(s string) (SizeDist, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch {
	case s == "":
		return nil, fmt.Errorf("workload: empty size distribution")
	case s == "imix":
		return IMIX(), nil
	case strings.HasPrefix(s, "uniform:"):
		body := strings.TrimPrefix(s, "uniform:")
		lo, hi, ok := strings.Cut(body, "-")
		if !ok {
			return nil, fmt.Errorf("workload: bad uniform range %q (want lo-hi)", body)
		}
		l, err1 := strconv.Atoi(strings.TrimSpace(lo))
		h, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("workload: bad uniform range %q", body)
		}
		return Uniform(l, h)
	case strings.HasPrefix(s, "hist:"):
		var points []SizePoint
		for _, part := range strings.Split(strings.TrimPrefix(s, "hist:"), ",") {
			szStr, wStr, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("workload: bad histogram bin %q (want size=weight)", part)
			}
			sz, err1 := strconv.Atoi(strings.TrimSpace(szStr))
			w, err2 := strconv.Atoi(strings.TrimSpace(wStr))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("workload: bad histogram bin %q", part)
			}
			points = append(points, SizePoint{Size: sz, Weight: w})
		}
		return HistogramDist(points, "")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, fmt.Errorf("workload: unknown size distribution %q (want a size, imix, uniform:lo-hi or hist:size=weight,...)", s)
	}
	if err := checkFrame(n); err != nil {
		return nil, err
	}
	return FixedSize(n), nil
}
