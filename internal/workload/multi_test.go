package workload_test

import (
	"testing"

	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// multiFabric builds an n-endpoint fabric behind one default switch.
func multiFabric(t *testing.T, n int) *topo.Fabric {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	link := topo.Shape{Endpoints: n}
	sw, err := topo.ParseSwitch("gen3x8")
	if err != nil {
		t.Fatal(err)
	}
	link.Switch = sw
	fab, err := sys.Fabric(link, sysconf.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// TestRunMultiAggregates checks the multi-endpoint bookkeeping: every
// endpoint completes its pairs, the aggregate counts add up, and the
// per-endpoint breakdown carries populated latency summaries.
func TestRunMultiAggregates(t *testing.T) {
	const endpoints, pairs = 3, 300
	fab := multiFabric(t, endpoints)
	cfg := workload.Config{Seed: 7, BufferBytes: fab.Endpoints[0].Buffer.Size}
	paths := make([]workload.Path, endpoints)
	bases := make([]uint64, endpoints)
	for i, ep := range fab.Endpoints {
		ep.Buffer.WarmHost(0, cfg.Footprint())
		paths[i] = ep.Port
		bases[i] = ep.Buffer.DMAAddr(0)
	}
	res, err := workload.RunMulti(fab.Kernel, paths, bases, cfg, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != endpoints*pairs {
		t.Errorf("aggregate pairs = %d, want %d", res.Pairs, endpoints*pairs)
	}
	if len(res.Endpoints) != endpoints {
		t.Fatalf("endpoint results = %d, want %d", len(res.Endpoints), endpoints)
	}
	var sumPPS float64
	for i, ep := range res.Endpoints {
		if ep.Endpoint != i {
			t.Errorf("endpoint %d carries index %d", i, ep.Endpoint)
		}
		if ep.Pairs != pairs {
			t.Errorf("endpoint %d completed %d pairs, want %d", i, ep.Pairs, pairs)
		}
		if ep.Latency.N == 0 || ep.Latency.P99 <= 0 {
			t.Errorf("endpoint %d has an empty latency summary", i)
		}
		sumPPS += ep.PPS
	}
	// Per-endpoint rates use each endpoint's own horizon, the
	// aggregate uses the last one's — so the sum can only exceed it.
	if res.PPS > sumPPS {
		t.Errorf("aggregate PPS %.0f above the endpoint sum %.0f", res.PPS, sumPPS)
	}
	if res.Latency.N != endpoints*pairs {
		t.Errorf("aggregate latency over %d samples, want %d", res.Latency.N, endpoints*pairs)
	}
}

// TestRunMultiDeterministic: byte-identical results on a rebuilt
// fabric, and decorrelated per-endpoint randomness (endpoints do not
// march in lockstep).
func TestRunMultiDeterministic(t *testing.T) {
	run := func() *workload.MultiResult {
		fab := multiFabric(t, 2)
		cfg := workload.Config{Seed: 7, Sizes: mustDist(t, "imix"), BufferBytes: fab.Endpoints[0].Buffer.Size}
		paths := []workload.Path{fab.Endpoints[0].Port, fab.Endpoints[1].Port}
		bases := []uint64{fab.Endpoints[0].Buffer.DMAAddr(0), fab.Endpoints[1].Buffer.DMAAddr(0)}
		for _, ep := range fab.Endpoints {
			ep.Buffer.WarmHost(0, cfg.Footprint())
		}
		res, err := workload.RunMulti(fab.Kernel, paths, bases, cfg, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.PPS != b.PPS || a.Latency != b.Latency {
		t.Errorf("multi-endpoint run not deterministic: %+v vs %+v", a, b)
	}
	if a.Endpoints[0].Elapsed == a.Endpoints[1].Elapsed && a.Endpoints[0].Latency == a.Endpoints[1].Latency {
		t.Error("endpoints look seed-correlated: identical elapsed and latency summaries")
	}
}

// TestRunMultiValidation covers the argument errors.
func TestRunMultiValidation(t *testing.T) {
	fab := multiFabric(t, 2)
	paths := []workload.Path{fab.Endpoints[0].Port}
	if _, err := workload.RunMulti(fab.Kernel, nil, nil, workload.Config{}, 10); err == nil {
		t.Error("no paths accepted")
	}
	if _, err := workload.RunMulti(fab.Kernel, paths, nil, workload.Config{}, 10); err == nil {
		t.Error("mismatched bases accepted")
	}
	if _, err := workload.RunMulti(fab.Kernel, paths, []uint64{0}, workload.Config{}, 0); err == nil {
		t.Error("zero pairs accepted")
	}
}

func mustDist(t *testing.T, s string) workload.SizeDist {
	t.Helper()
	d, err := workload.ParseSizeDist(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
