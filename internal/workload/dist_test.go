package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseSizeDistForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
		mean float64
	}{
		{"64", "64", 64},
		{"1500", "1500", 1500},
		{"imix", "imix", (64*7 + 594*4 + 1518*1) / 12.0},
		{"uniform:64-1518", "uniform:64-1518", (64 + 1518) / 2.0},
		{"hist:64=1,1500=1", "hist:64=1,1500=1", 782},
		{"IMIX", "imix", (64*7 + 594*4 + 1518*1) / 12.0},
	}
	for _, c := range cases {
		d, err := ParseSizeDist(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if d.String() != c.want {
			t.Errorf("%q: String() = %q, want %q", c.in, d.String(), c.want)
		}
		if math.Abs(d.Mean()-c.mean) > 1e-9 {
			t.Errorf("%q: Mean() = %v, want %v", c.in, d.Mean(), c.mean)
		}
	}
}

func TestParseSizeDistErrors(t *testing.T) {
	for _, in := range []string{
		"", "bogus", "0", "-5", "100000", "uniform:1518-64", "uniform:64",
		"uniform:a-b", "hist:", "hist:64", "hist:64=0", "hist:64=x", "hist:0=1",
	} {
		if _, err := ParseSizeDist(in); err == nil {
			t.Errorf("%q accepted, want error", in)
		}
	}
}

func TestFixedSizeConsumesNoRandomness(t *testing.T) {
	// Fixed-size workloads must replay bit-identically to code paths
	// that never sample, so the degenerate distribution must not touch
	// the rng.
	rng := rand.New(rand.NewSource(7))
	want := rand.New(rand.NewSource(7)).Int63()
	d := FixedSize(256)
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 256 {
			t.Fatalf("Sample = %d", got)
		}
	}
	if got := rng.Int63(); got != want {
		t.Error("FixedSize.Sample consumed rng state")
	}
}

func TestHistogramSamplingMatchesWeights(t *testing.T) {
	d := IMIX()
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	// 7:4:1 over 12 parts, each within 2 percentage points.
	for sz, wantFrac := range map[int]float64{64: 7.0 / 12, 594: 4.0 / 12, 1518: 1.0 / 12} {
		got := float64(counts[sz]) / n
		if math.Abs(got-wantFrac) > 0.02 {
			t.Errorf("size %d frequency %.3f, want ~%.3f", sz, got, wantFrac)
		}
	}
	if d.Max() != 1518 {
		t.Errorf("Max = %d", d.Max())
	}
}

func TestUniformBounds(t *testing.T) {
	d, err := Uniform(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seenLo, seenHi := false, false
	for i := 0; i < 5000; i++ {
		v := d.Sample(rng)
		if v < 64 || v > 128 {
			t.Fatalf("sample %d out of range", v)
		}
		seenLo = seenLo || v == 64
		seenHi = seenHi || v == 128
	}
	if !seenLo || !seenHi {
		t.Error("uniform never hit its bounds")
	}
	one, err := Uniform(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if one.Sample(rng) != 100 {
		t.Error("degenerate uniform")
	}
}
