package workload

import (
	"math"
	"math/rand"
	"testing"

	"pciebench/internal/sim"
)

func TestParseArrivalForms(t *testing.T) {
	cases := []struct {
		in         string
		saturating bool
		pps        float64
		str        string
	}{
		{"", true, 0, "saturate"},
		{"saturate", true, 0, "saturate"},
		{"rate:1M", false, 1e6, "rate:1M"},
		{"rate:14.88M", false, 14.88e6, "rate:14.88M"},
		{"poisson:500K", false, 5e5, "poisson:500K"},
		{"poisson:2M:burst=32", false, 2e6, "poisson:2M:burst=32"},
		{"rate:750", false, 750, "rate:750"},
	}
	for _, c := range cases {
		a, err := ParseArrival(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if a.Saturating() != c.saturating {
			t.Errorf("%q: Saturating = %v", c.in, a.Saturating())
		}
		if a.OfferedPPS() != c.pps {
			t.Errorf("%q: OfferedPPS = %v, want %v", c.in, a.OfferedPPS(), c.pps)
		}
		if a.String() != c.str {
			t.Errorf("%q: String = %q, want %q", c.in, a.String(), c.str)
		}
	}
}

func TestParseArrivalErrors(t *testing.T) {
	for _, in := range []string{
		"burst", "rate", "rate:", "rate:-1", "rate:x", "poisson",
		"poisson:1M:burst=0", "poisson:1M:burst=x", "poisson:1M:frob=2", "drizzle:1M",
	} {
		if _, err := ParseArrival(in); err == nil {
			t.Errorf("%q accepted, want error", in)
		}
	}
}

func TestFixedRateGapIsDeterministic(t *testing.T) {
	a, err := FixedRate(1e6, 1) // 1 Mpps -> 1us gaps
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		gap, batch := a.NextGap(rng)
		if gap != sim.Microsecond || batch != 1 {
			t.Fatalf("gap %v batch %d, want 1us/1", gap, batch)
		}
	}
}

func TestBurstScalesGap(t *testing.T) {
	a, err := FixedRate(1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	gap, batch := a.NextGap(rand.New(rand.NewSource(1)))
	if batch != 8 {
		t.Fatalf("batch %d", batch)
	}
	// 8 packets per burst at 1 Mpps keeps the mean rate: 8us gaps.
	if gap != 8*sim.Microsecond {
		t.Errorf("gap %v, want 8us", gap)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	a, err := Poisson(1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		gap, _ := a.NextGap(rng)
		sum += float64(gap)
	}
	mean := sum / n
	want := float64(sim.Microsecond)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean gap %v ps, want ~%v ps", mean, want)
	}
}

func TestParseRate(t *testing.T) {
	for in, want := range map[string]float64{
		"1000": 1000, "1K": 1e3, "2.5M": 2.5e6, "0.1G": 1e8, "14.88m": 14.88e6,
	} {
		got, err := ParseRate(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("%q = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", "x", "-1M", "0"} {
		if _, err := ParseRate(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}
