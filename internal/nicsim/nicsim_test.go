package nicsim

import (
	"testing"

	"pciebench/internal/hostif"
	"pciebench/internal/mem"
	"pciebench/internal/model"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

func buildStack(t *testing.T) (*sim.Kernel, *rc.RootComplex, *hostif.Buffer) {
	t.Helper()
	k := sim.New(3)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	host := hostif.New(ms, nil)
	complex, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, host)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := host.Alloc(8<<20, 0, hostif.Chunked4M, 0)
	if err != nil {
		t.Fatal(err)
	}
	// RX rings live in warm, frequently polled memory.
	buf.WarmHost(0, 64<<10)
	return k, complex, buf
}

func TestLoopbackParamErrors(t *testing.T) {
	_, complex, buf := buildStack(t)
	if _, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), 0, 10); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), 64, 0); err == nil {
		t.Error("count 0 accepted")
	}
}

func TestLoopbackFig2SmallFrames(t *testing.T) {
	// Fig 2: ~1000ns total around 128B with PCIe contributing ~90%.
	_, complex, buf := buildStack(t)
	samples, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	med, frac := MedianLoopback(samples)
	if med < 800*sim.Nanosecond || med > 1200*sim.Nanosecond {
		t.Errorf("128B loopback median = %v, want ~1000ns", med)
	}
	if frac < 0.82 || frac > 0.95 {
		t.Errorf("128B PCIe fraction = %.3f, want ~0.90", frac)
	}
}

func TestLoopbackFig2LargeFrames(t *testing.T) {
	// Fig 2: ~2400ns at 1500B with the PCIe share falling to ~77%.
	_, complex, buf := buildStack(t)
	samples, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), 1500, 32)
	if err != nil {
		t.Fatal(err)
	}
	med, frac := MedianLoopback(samples)
	if med < 2100*sim.Nanosecond || med > 3000*sim.Nanosecond {
		t.Errorf("1500B loopback median = %v, want ~2400ns", med)
	}
	if frac < 0.72 || frac > 0.85 {
		t.Errorf("1500B PCIe fraction = %.3f, want ~0.77", frac)
	}
}

func TestLoopbackPCIeFractionFalls(t *testing.T) {
	// The PCIe share decreases with frame size (Fig 2's right edge).
	_, complex, buf := buildStack(t)
	fr := func(sz int) float64 {
		samples, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), sz, 16)
		if err != nil {
			t.Fatal(err)
		}
		_, f := MedianLoopback(samples)
		return f
	}
	small, large := fr(64), fr(1500)
	if large >= small {
		t.Errorf("PCIe fraction did not fall: %.3f -> %.3f", small, large)
	}
}

func TestLoopbackLatencyRisesWithSize(t *testing.T) {
	_, complex, buf := buildStack(t)
	var prev sim.Time
	for _, sz := range []int{64, 256, 512, 1024, 1500} {
		samples, err := Loopback(complex, DefaultLoopback(), buf.DMAAddr(0), sz, 8)
		if err != nil {
			t.Fatal(err)
		}
		med, _ := MedianLoopback(samples)
		if med <= prev {
			t.Errorf("latency not rising at %dB: %v <= %v", sz, med, prev)
		}
		prev = med
	}
}

func TestMedianLoopbackEmpty(t *testing.T) {
	tot, frac := MedianLoopback(nil)
	if tot != 0 || frac != 0 {
		t.Error("empty samples")
	}
}

func TestThroughputMatchesAnalyticalModel(t *testing.T) {
	// The event-driven run of each Fig 1 design should land within 15%
	// of the closed-form model at large packet sizes (where link
	// serialization dominates and latency effects vanish).
	link := pcie.DefaultGen3x8()
	for _, design := range []model.NIC{model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()} {
		for _, sz := range []int{512, 1024, 1500} {
			k, complex, buf := buildStack(t)
			res, err := Throughput(k, complex, design, buf.DMAAddr(0), sz, 3000, 64)
			if err != nil {
				t.Fatalf("%s/%d: %v", design.Name, sz, err)
			}
			want := design.Bandwidth(link, sz) / 1e9
			rel := (res.GbpsPerDirection - want) / want
			if rel > 0.15 || rel < -0.15 {
				t.Errorf("%s %dB: simulated %.2f vs model %.2f Gb/s (%.1f%%)",
					design.Name, sz, res.GbpsPerDirection, want, rel*100)
			}
		}
	}
}

func TestThroughputOrderingMatchesFigure1(t *testing.T) {
	// Simulated designs must preserve the Figure 1 ordering at every
	// size: DPDK >= kernel >= simple.
	for _, sz := range []int{64, 256, 1024} {
		run := func(design model.NIC) float64 {
			k, complex, buf := buildStack(t)
			res, err := Throughput(k, complex, design, buf.DMAAddr(0), sz, 2000, 64)
			if err != nil {
				t.Fatal(err)
			}
			return res.GbpsPerDirection
		}
		simple := run(model.SimpleNIC())
		kernel := run(model.ModernNICKernel())
		dpdk := run(model.ModernNICDPDK())
		if !(dpdk >= kernel*0.98 && kernel >= simple) {
			t.Errorf("%dB ordering: dpdk %.2f kernel %.2f simple %.2f", sz, dpdk, kernel, simple)
		}
	}
}

func TestThroughputErrors(t *testing.T) {
	k, complex, buf := buildStack(t)
	if _, err := Throughput(k, complex, model.SimpleNIC(), buf.DMAAddr(0), 0, 10, 8); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Throughput(k, complex, model.SimpleNIC(), buf.DMAAddr(0), 64, 0, 8); err == nil {
		t.Error("pairs 0 accepted")
	}
}

func TestLoopbackSampleFraction(t *testing.T) {
	s := LoopbackSample{Total: 1000, PCIe: 900, NonPCIe: 100}
	if f := s.PCIeFraction(); f != 0.9 {
		t.Errorf("fraction = %v", f)
	}
	if (LoopbackSample{}).PCIeFraction() != 0 {
		t.Error("zero sample fraction")
	}
}
