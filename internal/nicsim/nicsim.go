// Package nicsim runs NIC-level workloads over the simulated PCIe
// subsystem.
//
// Two workloads mirror the paper:
//
//   - Loopback reproduces the §2 ExaNIC experiment behind Figure 2: a
//     kernel-bypass application writes a frame to the NIC with PIO, the
//     NIC loops it through its MAC back to an RX DMA into the host ring,
//     and the application polls the ring. The run decomposes the total
//     latency into its PCIe and non-PCIe parts exactly as the modified
//     ExaNIC firmware did.
//
//   - Throughput drives the root complex with the per-packet transaction
//     mix of a model.NIC design (descriptor fetches, write-backs,
//     doorbells, interrupts, with their batching amortization) and
//     measures the achieved full-duplex packet rate. It cross-validates
//     the closed-form model of Figure 1 against the discrete-event
//     simulator.
package nicsim

import (
	"fmt"

	"pciebench/internal/model"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
	"pciebench/internal/workload"
)

// LoopbackConfig shapes the ExaNIC-style loopback experiment.
type LoopbackConfig struct {
	// PIOChunk is the write-combining buffer size: the CPU's frame
	// write reaches the device as PIOChunk-byte MWr TLPs.
	PIOChunk int
	// PIOInterval is the rate at which the core's write-combining
	// buffers drain to the uncore; one 64B WC flush leaves roughly
	// every ~55-65 ns, which dominates large-frame TX and is itself
	// part of the PCIe contribution.
	PIOInterval sim.Time
	// PIOFixed is the core-to-uncore posting latency of the first
	// write-combining flush (PCIe-side).
	PIOFixed sim.Time
	// MACFixed is the fixed non-PCIe NIC path: MAC, PHY and loopback
	// plumbing in the device.
	MACFixed sim.Time
	// MACPerByte is the per-byte non-PCIe cost (cut-through wire
	// serialization and partial buffering at 10G).
	MACPerByte sim.Time
	// DescBytes is the RX descriptor written back with each frame.
	DescBytes int
	// PollGranularity is how often the polling CPU re-checks the ring.
	PollGranularity sim.Time
}

// DefaultLoopback returns the calibration used for Figure 2.
func DefaultLoopback() LoopbackConfig {
	return LoopbackConfig{
		PIOChunk:        64,
		PIOInterval:     55 * sim.Nanosecond,
		PIOFixed:        220 * sim.Nanosecond,
		MACFixed:        80 * sim.Nanosecond,
		MACPerByte:      sim.Time(330), // 0.33 ns/B: cut-through 10G loopback
		DescBytes:       16,
		PollGranularity: 10 * sim.Nanosecond,
	}
}

// LoopbackSample decomposes one frame's round trip.
type LoopbackSample struct {
	Total   sim.Time
	PCIe    sim.Time // PIO TX + RX DMA + host visibility
	NonPCIe sim.Time // MAC/PHY/loopback
}

// PCIeFraction returns the PCIe share of the total.
func (s LoopbackSample) PCIeFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.PCIe) / float64(s.Total)
}

// Loopback measures the round-trip latency of count frames of size sz
// through a loopback NIC attached to complex, with the RX ring in the
// buffer starting at ringDMA. It returns per-frame samples.
func Loopback(complex *rc.RootComplex, cfg LoopbackConfig, ringDMA uint64, sz, count int) ([]LoopbackSample, error) {
	if sz <= 0 || count <= 0 {
		return nil, fmt.Errorf("nicsim: bad loopback params sz=%d count=%d", sz, count)
	}
	if cfg.PIOChunk <= 0 {
		cfg.PIOChunk = 64
	}
	samples := make([]LoopbackSample, 0, count)
	at := sim.Time(0)
	for i := 0; i < count; i++ {
		start := at

		// TX: the CPU writes the frame through write-combining PIO.
		// Each chunk leaves the core PIOInterval apart and crosses the
		// link as an MWr TLP; the frame is complete at the device when
		// the last chunk lands.
		var txDone sim.Time
		issued := start + cfg.PIOFixed
		for off := 0; off < sz; off += cfg.PIOChunk {
			n := cfg.PIOChunk
			if sz-off < n {
				n = sz - off
			}
			arrive := complex.MMIOWrite(issued, n)
			if arrive > txDone {
				txDone = arrive
			}
			issued += cfg.PIOInterval
		}
		pioTime := txDone - start

		// NIC: MAC/PHY out, loopback, MAC/PHY in (non-PCIe).
		macTime := cfg.MACFixed + sim.Time(int64(cfg.MACPerByte)*int64(sz))
		rxReady := txDone + macTime

		// RX: the NIC DMA-writes the frame and its descriptor; the
		// polling application sees the frame once the descriptor write
		// is globally visible, plus poll granularity.
		frame, err := complex.DMAWrite(rxReady, ringDMA, sz)
		if err != nil {
			return nil, err
		}
		desc, err := complex.DMAWrite(frame.LinkDone, ringDMA+uint64(sz), cfg.DescBytes)
		if err != nil {
			return nil, err
		}
		visible := desc.MemDone
		if frame.MemDone > visible {
			visible = frame.MemDone
		}
		end := visible + cfg.PollGranularity

		s := LoopbackSample{
			Total:   end - start,
			NonPCIe: macTime,
			PCIe:    (end - start) - macTime - pioTimeNonPCIe(pioTime),
		}
		samples = append(samples, s)
		// Space frames out so runs are independent.
		at = end + 1*sim.Microsecond
	}
	return samples, nil
}

// pioTimeNonPCIe returns the part of the PIO phase not attributable to
// PCIe. The write-combining drain and link crossing are both PCIe-side
// costs, so nothing is subtracted; the function exists to make the
// decomposition explicit (and greppable) next to the paper's firmware
// hook.
func pioTimeNonPCIe(sim.Time) sim.Time { return 0 }

// MedianLoopback returns the median total latency and PCIe fraction
// over the samples.
func MedianLoopback(samples []LoopbackSample) (total sim.Time, pcieFraction float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	totals := extractTotals(samples)
	// Insertion sort: sample counts are small.
	for i := 1; i < len(totals); i++ {
		for j := i; j > 0 && totals[j] < totals[j-1]; j-- {
			totals[j], totals[j-1] = totals[j-1], totals[j]
		}
	}
	med := totals[len(totals)/2]
	// Use the fraction of the sample closest to the median total.
	best := samples[0]
	for _, s := range samples {
		if abs64(int64(s.Total-med)) < abs64(int64(best.Total-med)) {
			best = s
		}
	}
	return med, best.PCIeFraction()
}

func extractTotals(samples []LoopbackSample) []sim.Time {
	out := make([]sim.Time, len(samples))
	for i, s := range samples {
		out[i] = s.Total
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// ThroughputResult is the outcome of a NIC transaction-mix run.
type ThroughputResult struct {
	// GbpsPerDirection is the payload throughput per direction (the
	// Figure 1 metric).
	GbpsPerDirection float64
	// PairsPerSec is the full-duplex packet rate.
	PairsPerSec float64
}

// Throughput drives complex with the transaction mix of design for
// the given packet size and packet-pair count, with up to window
// concurrent read DMAs in flight, and measures the achieved rate. The
// result should track design.Bandwidth (the closed-form Figure 1 curve)
// closely; the report tests assert that.
//
// Throughput is the single-queue, fixed-size, saturating special case
// of the internal/workload traffic engine; multi-queue, mixed-size and
// open-loop scenarios run there.
func Throughput(k *sim.Kernel, complex *rc.RootComplex, design model.NIC, bufDMA uint64, pktSz, pairs, window int) (ThroughputResult, error) {
	if pktSz <= 0 || pairs <= 0 {
		return ThroughputResult{}, fmt.Errorf("nicsim: bad params pkt=%d pairs=%d", pktSz, pairs)
	}
	res, err := workload.Run(k, complex, bufDMA, workload.Config{
		Queues:  1,
		Window:  window,
		Design:  design,
		Sizes:   workload.FixedSize(pktSz),
		Arrival: workload.Saturate(),
	}, pairs)
	if err != nil {
		return ThroughputResult{}, err
	}
	return ThroughputResult{
		GbpsPerDirection: res.GbpsPerDirection,
		PairsPerSec:      res.PPS,
	}, nil
}
