// Package runner schedules independent experiment units across a
// bounded worker pool.
//
// The paper's evaluation is a large grid of independent points —
// figures 1-9 and the tables sweep transfer size, window size, cache
// state, DDIO, IOMMU and NUMA settings — and every point builds its own
// simulator instance, so the grid parallelizes trivially. The runner
// exploits that while keeping results reproducible: units are executed
// in any order across workers, but results are collected by submission
// index, so the assembled output is byte-identical regardless of the
// worker count. Deterministic per-unit seeds (Seed) decouple a unit's
// randomness from scheduling order.
//
// A panicking unit does not take the pool down: the panic is captured
// as a *PanicError in that unit's Result. Cancellation via the context
// stops unstarted units promptly; already-running units finish their
// current work.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Unit is one independent piece of work: typically a single experiment
// point that builds its own simulator instance and measures it.
type Unit struct {
	// Name labels the unit in errors and progress reporting.
	Name string
	// Run performs the work. It must not share mutable state with other
	// units; each unit builds or clones what it needs.
	Run func(ctx context.Context) (any, error)
}

// Result is the outcome of one unit, tagged with its submission index.
type Result struct {
	Index int
	Name  string
	Value any
	Err   error
}

// PanicError wraps a panic recovered inside a worker so one bad unit
// cannot take down the whole run.
type PanicError struct {
	Unit  string
	Value any
	Stack []byte
}

// Error formats the captured panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: unit %q panicked: %v", e.Unit, e.Value)
}

// Options tunes a Run call.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS. The pool never
	// exceeds the unit count.
	Workers int
	// Progress, when non-nil, receives (done, total) after every unit
	// finishes. Calls are serialized and done is strictly increasing, so
	// the callback needs no locking of its own.
	Progress func(done, total int)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes units on the pool and returns one Result per unit, in
// submission order. Unit-level failures are reported per Result; the
// returned error is non-nil only when ctx was cancelled, in which case
// unstarted units carry the context error in their Result.
func Run(ctx context.Context, units []Unit, opt Options) ([]Result, error) {
	results := make([]Result, len(units))
	if len(units) == 0 {
		return results, ctx.Err()
	}

	idx := make(chan int, len(units))
	for i := range units {
		idx <- i
	}
	close(idx)

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	total := len(units)
	finish := func() {
		if opt.Progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		opt.Progress(done, total)
	}

	for w := opt.workers(len(units)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				u := units[i]
				if err := ctx.Err(); err != nil {
					// Skipped by cancellation: recorded, but not
					// reported as progress — the unit never ran.
					results[i] = Result{Index: i, Name: u.Name, Err: err}
					continue
				}
				v, err := runUnit(ctx, u)
				results[i] = Result{Index: i, Name: u.Name, Value: v, Err: err}
				finish()
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// runUnit executes one unit, converting a panic into a *PanicError.
func runUnit(ctx context.Context, u Unit) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Unit: u.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return u.Run(ctx)
}

// Map runs fn over items on the pool and returns the outputs in item
// order. It fails fast: the first unit error or panic cancels the
// remaining unstarted units. Among the errors recorded by units that
// actually executed, the one most likely to explain the failure is
// returned: the lowest-index error unrelated to context.Canceled,
// else the lowest-index error that wraps it, else the bare sentinel —
// so a genuine failure is never shadowed by units that merely echoed
// the induced cancellation. On success the output slice is identical
// for every worker count.
func Map[T, R any](ctx context.Context, items []T, opt Options, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// errs[i] is written only by the unit that executed item i; units
	// skipped by the fail-fast cancellation never touch it.
	errs := make([]error, len(items))
	units := make([]Unit, len(items))
	for i := range items {
		i, item := i, items[i]
		name := fmt.Sprintf("unit-%d", i)
		units[i] = Unit{
			Name: name,
			Run: func(ctx context.Context) (_ any, err error) {
				defer func() {
					if r := recover(); r != nil {
						err = &PanicError{Unit: name, Value: r, Stack: debug.Stack()}
					}
					if err != nil {
						errs[i] = err
						cancel()
					}
				}()
				v, err := fn(ctx, i, item)
				if err != nil {
					return nil, err
				}
				out[i] = v
				return nil, nil
			},
		}
	}
	if _, err := Run(mctx, units, opt); err != nil && ctx.Err() != nil {
		return out, ctx.Err()
	}
	// Return the error that explains the failure, not its echo: a unit
	// that merely respected the induced cancellation records the bare
	// context.Canceled sentinel, which must not shadow the genuine
	// failure that triggered it at a higher index.
	var firstAny, firstWrapped error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = err
		}
		if !errors.Is(err, context.Canceled) {
			return out, err
		}
		if firstWrapped == nil && err != context.Canceled {
			firstWrapped = err
		}
	}
	if firstWrapped != nil {
		return out, firstWrapped
	}
	return out, firstAny
}

// Seed derives a deterministic, well-mixed per-unit seed from a base
// seed and the unit's submission index (a splitmix64 round). Sequential
// base seeds or indices yield decorrelated streams, and the result is
// never zero, so it can feed APIs where zero selects a default.
func Seed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return int64(z)
}
