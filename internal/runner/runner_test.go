package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		units := make([]Unit, 20)
		for i := range units {
			i := i
			units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func(context.Context) (any, error) {
				return i * i, nil
			}}
		}
		results, err := Run(context.Background(), units, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(units) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Name != fmt.Sprintf("u%d", i) || r.Value != i*i || r.Err != nil {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	// Each unit derives its value from a per-unit seed only, never from
	// execution order; every worker count must assemble the same slice.
	run := func(workers int) []int64 {
		out, err := Map(context.Background(), items, Options{Workers: workers},
			func(_ context.Context, i int, item int) (int64, error) {
				return Seed(42, i) ^ int64(item), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	units := []Unit{
		{Name: "ok1", Run: func(context.Context) (any, error) { return 1, nil }},
		{Name: "boom", Run: func(context.Context) (any, error) { panic("kaput") }},
		{Name: "ok2", Run: func(context.Context) (any, error) { return 2, nil }},
	}
	results, err := Run(context.Background(), units, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy units affected by a sibling panic")
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if pe.Unit != "boom" || pe.Value != "kaput" || len(pe.Stack) == 0 {
		t.Errorf("panic error = %+v", pe)
	}
}

func TestRunCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	units := make([]Unit, 50)
	var executed atomic.Int32
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func(context.Context) (any, error) {
			if i == 3 {
				cancel() // a unit pulls the plug mid-run
			}
			executed.Add(1)
			return i, nil
		}}
	}
	var progressed int
	results, err := Run(ctx, units, Options{Workers: 1,
		Progress: func(done, total int) { progressed = done }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n < 4 || n >= 50 {
		t.Errorf("executed %d units, want a partial run", n)
	}
	// Units skipped by the cancellation must not be reported as done.
	if int32(progressed) != executed.Load() {
		t.Errorf("progress reported %d done, but only %d executed", progressed, executed.Load())
	}
	var cancelled int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no unit carries the cancellation error")
	}
}

func TestMapFailFast(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 32)
	var executed atomic.Int32
	_, err := Map(context.Background(), items, Options{Workers: 2},
		func(_ context.Context, i int, _ int) (int, error) {
			executed.Add(1)
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the unit error", err)
	}
}

func TestMapFailFastOnPanic(t *testing.T) {
	items := make([]int, 40)
	var executed atomic.Int32
	_, err := Map(context.Background(), items, Options{Workers: 1},
		func(_ context.Context, i int, _ int) (int, error) {
			executed.Add(1)
			if i == 2 {
				panic("kaput")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaput" {
		t.Fatalf("err = %v, want the PanicError", err)
	}
	// The panic cancels the remaining units; with one worker nothing
	// after the panicking unit runs.
	if n := executed.Load(); n != 3 {
		t.Errorf("executed %d units after the panic, want 3", n)
	}
}

func TestMapSurfacesErrorWrappingCanceled(t *testing.T) {
	// A unit whose genuine failure wraps context.Canceled must not be
	// mistaken for the induced fail-fast cancellation.
	items := make([]int, 8)
	wrapped := fmt.Errorf("backend gave up: %w", context.Canceled)
	_, err := Map(context.Background(), items, Options{Workers: 2},
		func(_ context.Context, i int, _ int) (int, error) {
			if i == 4 {
				return 0, wrapped
			}
			return i, nil
		})
	if !errors.Is(err, wrapped) && err != wrapped {
		t.Fatalf("err = %v, want the wrapped unit error", err)
	}
}

func TestMapPrefersRealErrorOverInducedCancel(t *testing.T) {
	// Unit 0 respects the context and reports the induced cancellation;
	// unit 1 is the genuine failure that triggered it. Map must return
	// the real error even though the echo sits at a lower index.
	boom := errors.New("boom")
	_, err := Map(context.Background(), []int{0, 1}, Options{Workers: 2},
		func(ctx context.Context, i int, _ int) (int, error) {
			if i == 0 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real error", err)
	}
}

func TestRunProgressAggregation(t *testing.T) {
	units := make([]Unit, 30)
	for i := range units {
		units[i] = Unit{Run: func(context.Context) (any, error) { return nil, nil }}
	}
	var calls int
	last := 0
	_, err := Run(context.Background(), units, Options{
		Workers: 4,
		Progress: func(done, total int) {
			calls++
			if total != len(units) {
				t.Errorf("total = %d, want %d", total, len(units))
			}
			if done != last+1 {
				t.Errorf("done = %d after %d, not monotonic", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(units) {
		t.Errorf("progress calls = %d, want %d", calls, len(units))
	}
}

func TestSeed(t *testing.T) {
	if Seed(1, 0) == Seed(1, 1) || Seed(1, 0) == Seed(2, 0) {
		t.Error("seeds collide across index/base")
	}
	if Seed(7, 3) != Seed(7, 3) {
		t.Error("seed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := Seed(1, i)
		if s == 0 {
			t.Fatal("zero seed")
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	results, err := Run(context.Background(), nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v %v", results, err)
	}
	// Workers <= 0 falls back to GOMAXPROCS and still completes.
	out, err := Map(context.Background(), []int{1, 2, 3}, Options{Workers: -1},
		func(_ context.Context, _ int, v int) (int, error) { return v * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 || out[2] != 30 {
		t.Errorf("out = %v", out)
	}
}
