// Package serve is pcie-bench as a service: a long-running HTTP/JSON
// server that accepts sweep Spec documents on a versioned API, dedups
// cells against a content-addressed result cache, shards execution of
// the misses over the worker pool, and streams results incrementally.
//
// Sweeps are pure functions of (spec, seed, build version), which is
// what makes the serving shape work: resubmitting a spec with one axis
// value changed recomputes only the changed cells, and an identical
// resubmission executes nothing at all. Interactive what-if
// exploration — drag the MPS slider, re-run one changed axis — becomes
// incremental work.
//
// The v1 API:
//
//	POST   /v1/sweeps                submit a Spec document (or
//	                                 {"run": name, "overrides": [...]}
//	                                 for a registered sweep); query
//	                                 params: quality=quick|full,
//	                                 workers=N, simworkers=N (parallel
//	                                 simulation budget per fabric cell;
//	                                 results are byte-identical at every
//	                                 value, so it is not part of the
//	                                 cache key), set=key=v1,v2
//	                                 (repeatable axis/base overrides),
//	                                 and ber= / cto= / retrain=
//	                                 (validated fault-injection sugar
//	                                 for the matching set= override).
//	                                 Returns 202 with the job id.
//	GET    /v1/sweeps/{id}           job status and cache accounting.
//	GET    /v1/sweeps/{id}/results   the emitted grid; ?format= selects
//	                                 any registered emitter (default
//	                                 tsv); ?stream=1 switches to
//	                                 incremental NDJSON rows in
//	                                 enumeration order with a trailer
//	                                 object carrying the accounting.
//	DELETE /v1/sweeps/{id}           cancel a queued or running job.
//	GET    /v1/registry              registered sweeps and their axes.
//	GET    /v1/cache                 cache entries and aggregate
//	                                 hit/executed counters.
//	GET    /healthz                  liveness.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pciebench/internal/cache"
	"pciebench/internal/sweep"
)

// Config assembles a Server.
type Config struct {
	// Workers caps the per-job worker pool; requests may ask for fewer
	// via ?workers=N but never more. 0 means GOMAXPROCS.
	Workers int
	// MaxJobs bounds concurrently executing jobs; later submissions
	// queue. 0 means 2.
	MaxJobs int
	// Quality is the default quality level (requests may override).
	Quality sweep.Quality
	// Cache, when non-nil, dedups cells across jobs and restarts.
	Cache cache.Store
	// Build partitions the cache by code version (see buildinfo).
	Build string
	// MaxBody bounds the request body of POST /v1/sweeps; oversized
	// submissions get 413. 0 means 4 MiB.
	MaxBody int64
	// JobTimeout, when positive, is the wall-clock deadline for each
	// job: a sweep still running after this long is cancelled and
	// reported with status "timeout".
	JobTimeout time.Duration
	// Logf, when non-nil, receives one line per request and job
	// transition.
	Logf func(format string, args ...any)
}

// Server implements the HTTP API. Create with New; it is an
// http.Handler. Close cancels running jobs and waits for them.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job ids in submission order
	nextID int
	totals sweep.Stats
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, maxJobs),
		jobs:   map[string]*job{},
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	return s
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.logf("%s %s", r.Method, r.URL.Path)
	s.mux.ServeHTTP(w, r)
}

// Close cancels every job and waits for their goroutines — the
// graceful-shutdown half that http.Server.Shutdown does not cover.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// apiError is the JSON error envelope of every non-2xx response.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON emits a 2xx JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// submission is the envelope form of POST /v1/sweeps for registered
// sweeps; a bare Spec document is the other accepted shape.
type submission struct {
	Run       string   `json:"run"`
	Overrides []string `json:"overrides"`
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Cells   int    `json:"cells"`
	Status  string `json:"status"`
	Results string `json:"results"`
}

// handleSubmit accepts a Spec document (the versioned wire format) or
// a {"run": name} envelope, applies overrides, and launches the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := s.cfg.MaxBody
	if maxBody <= 0 {
		maxBody = 4 << 20
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		if errors.As(err, new(*http.MaxBytesError)) {
			apiError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxBody)
			return
		}
		apiError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		apiError(w, http.StatusBadRequest, "body is not a JSON object: %v", err)
		return
	}

	var spec *sweep.Spec
	var overrides []string
	if _, isEnvelope := probe["run"]; isEnvelope {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var sub submission
		if err := dec.Decode(&sub); err != nil {
			apiError(w, http.StatusBadRequest, "decode submission: %v (valid keys: run overrides)", err)
			return
		}
		spec, err = sweep.ByName(sub.Run)
		if err != nil {
			apiError(w, http.StatusNotFound, "%v", err)
			return
		}
		overrides = sub.Overrides
	} else {
		spec, err = sweep.Decode(bytes.NewReader(body))
		if err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	q := r.URL.Query()
	overrides = append(overrides, q["set"]...)
	// ?ber=, ?cto= and ?retrain= are sugar for set=<key>=...: fault
	// injection is a first-class what-if axis, so each knob gets a
	// dedicated query parameter with the same validation surface.
	if ber := q.Get("ber"); ber != "" {
		if _, err := sweep.ParseBER(ber); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		overrides = append(overrides, "ber="+ber)
	}
	if cto := q.Get("cto"); cto != "" {
		if _, err := sweep.ParseDuration(cto); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		overrides = append(overrides, "cto="+cto)
	}
	if retrain := q.Get("retrain"); retrain != "" {
		if _, err := sweep.ParseDuration(retrain); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		overrides = append(overrides, "retrain="+retrain)
	}
	if err := spec.ApplyOverrides(overrides); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}

	quality := s.cfg.Quality
	switch q.Get("quality") {
	case "":
	case "quick":
		quality = sweep.Quick
	case "full":
		quality = sweep.Full
	default:
		apiError(w, http.StatusBadRequest, "quality must be quick or full, not %q", q.Get("quality"))
		return
	}
	workers := s.cfg.Workers
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 1 {
			apiError(w, http.StatusBadRequest, "workers must be a positive integer, not %q", ws)
			return
		}
		// Per-job concurrency limit: a request may shrink its pool but
		// never exceed the server's cap.
		if s.cfg.Workers <= 0 || n < s.cfg.Workers {
			workers = n
		}
	}
	// simworkers selects the conservative-parallel simulation budget for
	// each multi-endpoint workload fabric cell. Results are byte-identical
	// at every value, so it never enters the cache key — serial and
	// parallel submissions share cache entries.
	simWorkers := 1
	if sw := q.Get("simworkers"); sw != "" {
		n, err := strconv.Atoi(sw)
		if err != nil {
			apiError(w, http.StatusBadRequest,
				"simworkers must be an integer in %s, not %q", sweep.SimWorkersRange(), sw)
			return
		}
		if err := sweep.ValidateSimWorkers(n); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		simWorkers = n
	}

	j := s.launch(spec, workers, simWorkers, quality)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:      j.id,
		Name:    spec.Name,
		Cells:   spec.Count(),
		Status:  "/v1/sweeps/" + j.id,
		Results: "/v1/sweeps/" + j.id + "/results",
	})
}

// launch registers a job and starts its goroutine, bounded by the
// concurrent-jobs semaphore.
func (s *Server) launch(spec *sweep.Spec, workers, simWorkers int, quality sweep.Quality) *job {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		// The deadline clock starts at submission, not dispatch: a job
		// stuck behind the semaphore burns its budget queueing, which is
		// the behaviour a caller with a wall-clock SLO wants.
		ctx, cancel = context.WithTimeout(s.ctx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.ctx)
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("sw-%d", s.nextID)
	j := newJob(id, spec, workers, simWorkers, quality, cancel)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			j.finish(nil, sweep.Stats{}, ctx.Err())
			return
		}
		j.update(func() { j.state = StateRunning })
		engine := &sweep.Engine{
			Workers:    j.workers,
			SimWorkers: j.simWorkers,
			Quality:    j.quality,
			Cache:      s.cfg.Cache,
			Build:      s.cfg.Build,
			OnCell:     j.appendRow,
		}
		res, stats, err := engine.Run(ctx, spec)
		j.finish(res, stats, err)
		s.mu.Lock()
		s.totals.Cells += stats.Cells
		s.totals.Hits += stats.Hits
		s.totals.Executed += stats.Executed
		s.mu.Unlock()
		state, _, _, _, _ := j.snapshot()
		s.logf("job %s (%s): %s — %d cells, %d cache hits, %d executed",
			id, spec.Name, state, stats.Cells, stats.Hits, stats.Executed)
	}()
	return j
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// statusResponse is the job-status document.
type statusResponse struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	State     string  `json:"state"`
	Cells     int     `json:"cells"`
	Done      int     `json:"done"`
	CacheHits int     `json:"cache_hits"`
	Executed  int     `json:"executed"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) status(j *job) statusResponse {
	state, rows, stats, err, _ := j.snapshot()
	resp := statusResponse{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     state,
		Cells:     j.spec.Count(),
		Done:      rows,
		CacheHits: stats.Hits,
		Executed:  stats.Executed,
	}
	j.mu.Lock()
	if terminal(state) {
		resp.ElapsedMS = float64(j.elapsed) / float64(time.Millisecond)
	} else {
		resp.ElapsedMS = float64(time.Since(j.created)) / float64(time.Millisecond)
	}
	j.mu.Unlock()
	if err != nil && state == StateError {
		resp.Error = err.Error()
	}
	return resp
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleList reports every submitted job, oldest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]statusResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.status(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "state": "cancelling"})
}

// handleResults emits a finished grid through a registered emitter, or
// — with ?stream=1 — streams NDJSON rows incrementally as cells
// complete, in enumeration order, ending with a trailer object that
// carries the final state and cache accounting.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.streamResults(w, r, j)
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "tsv"
	}
	emit, err := sweep.EmitterFor(format)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	state, err := j.await(r.Context())
	if err != nil {
		return // client went away; nothing sensible to write
	}
	switch state {
	case StateCancelled:
		apiError(w, http.StatusConflict, "sweep %s was cancelled", j.id)
		return
	case StateTimeout:
		apiError(w, http.StatusGatewayTimeout, "sweep %s exceeded the job deadline", j.id)
		return
	case StateError:
		_, _, _, jerr, _ := j.snapshot()
		apiError(w, http.StatusInternalServerError, "sweep %s failed: %v", j.id, jerr)
		return
	}
	switch format {
	case "json", "ndjson":
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if err := emit(w, res); err != nil {
		s.logf("job %s: emit %s: %v", j.id, format, err)
	}
}

// streamTrailer is the final NDJSON line of a streamed result.
type streamTrailer struct {
	Done      bool   `json:"done"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	CacheHits int    `json:"cache_hits"`
	Executed  int    `json:"executed"`
	Error     string `json:"error,omitempty"`
}

func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		state, rows, stats, jerr, notify := j.snapshot()
		for sent < rows {
			if err := enc.Encode(j.row(sent)); err != nil {
				return
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			trailer := streamTrailer{
				Done:      true,
				State:     state,
				Cells:     stats.Cells,
				CacheHits: stats.Hits,
				Executed:  stats.Executed,
			}
			if jerr != nil && state == StateError {
				trailer.Error = jerr.Error()
			}
			enc.Encode(trailer)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		}
	}
}

// registryEntry describes one registered sweep.
type registryEntry struct {
	Name        string       `json:"name"`
	Title       string       `json:"title,omitempty"`
	Description string       `json:"description,omitempty"`
	Cells       int          `json:"cells"`
	Axes        []sweep.Axis `json:"axes"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	specs := sweep.Specs()
	out := make([]registryEntry, 0, len(specs))
	for _, sp := range specs {
		out = append(out, registryEntry{
			Name:        sp.Name,
			Title:       sp.Title,
			Description: sp.Description,
			Cells:       sp.Count(),
			Axes:        sp.Axes,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// cacheResponse reports the store size and the aggregate accounting
// across every job this server ran.
type cacheResponse struct {
	Enabled   bool   `json:"enabled"`
	Build     string `json:"build,omitempty"`
	Entries   int    `json:"entries"`
	Cells     int    `json:"cells"`
	CacheHits int    `json:"cache_hits"`
	Executed  int    `json:"executed"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	totals := s.totals
	s.mu.Unlock()
	resp := cacheResponse{
		Enabled:   s.cfg.Cache != nil,
		Build:     s.cfg.Build,
		Cells:     totals.Cells,
		CacheHits: totals.Hits,
		Executed:  totals.Executed,
	}
	if s.cfg.Cache != nil {
		resp.Entries = s.cfg.Cache.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}
