package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"pciebench/internal/sweep"
)

// Job states. A job moves queued -> running -> one of the four
// terminal states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateError     = "error"
	StateCancelled = "cancelled"
	StateTimeout   = "timeout"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	switch state {
	case StateDone, StateError, StateCancelled, StateTimeout:
		return true
	}
	return false
}

// job is one submitted sweep: the spec, its execution state, and the
// incrementally growing result rows. Readers (status and streaming
// handlers) snapshot under mu and wait on notify, which is closed and
// replaced on every update — a broadcast that, unlike sync.Cond,
// composes with context cancellation in a select.
type job struct {
	id         string
	spec       *sweep.Spec
	labels     []string
	workers    int
	simWorkers int
	quality    sweep.Quality
	created    time.Time
	cancel     context.CancelFunc

	mu      sync.Mutex
	notify  chan struct{}
	state   string
	rows    []sweep.Row
	result  *sweep.Result
	stats   sweep.Stats
	err     error
	elapsed time.Duration
}

func newJob(id string, spec *sweep.Spec, workers, simWorkers int, q sweep.Quality, cancel context.CancelFunc) *job {
	return &job{
		id:         id,
		spec:       spec,
		labels:     spec.ProbeLabels(),
		workers:    workers,
		simWorkers: simWorkers,
		quality:    q,
		created:    time.Now(),
		cancel:     cancel,
		notify:     make(chan struct{}),
		state:      StateQueued,
	}
}

// update mutates the job under the lock and wakes every waiter.
func (j *job) update(fn func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn()
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendRow records one streamed cell result; the engine delivers them
// in enumeration order.
func (j *job) appendRow(c sweep.CellResult) {
	row := sweep.RowOf(j.spec, j.labels, c)
	j.update(func() { j.rows = append(j.rows, row) })
}

// finish records the run outcome and enters a terminal state.
func (j *job) finish(res *sweep.Result, stats sweep.Stats, err error) {
	j.update(func() {
		j.result = res
		j.stats = stats
		j.err = err
		j.elapsed = time.Since(j.created)
		switch {
		case err == nil:
			j.state = StateDone
		case errors.Is(err, context.DeadlineExceeded):
			// The per-job wall-clock deadline fired (Config.JobTimeout):
			// distinct from a client cancel so callers can tell "you asked
			// me to stop" from "I gave up".
			j.state = StateTimeout
		case errors.Is(err, context.Canceled):
			j.state = StateCancelled
		default:
			j.state = StateError
		}
	})
}

// snapshot returns a consistent view for the status and stream
// handlers: the current state, how many rows exist, the run outcome
// and the channel that signals the next change.
func (j *job) snapshot() (state string, rows int, stats sweep.Stats, err error, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, len(j.rows), j.stats, j.err, j.notify
}

// row returns the i'th result row; the caller must know i < rows from
// a snapshot (rows only grow).
func (j *job) row(i int) sweep.Row {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows[i]
}

// await blocks until the job reaches a terminal state or ctx fires,
// returning the final state.
func (j *job) await(ctx context.Context) (string, error) {
	for {
		state, _, _, _, notify := j.snapshot()
		if terminal(state) {
			return state, nil
		}
		select {
		case <-ctx.Done():
			return state, ctx.Err()
		case <-notify:
		}
	}
}
