package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pciebench/internal/cache"
	"pciebench/internal/sweep"
)

// testSpec is a small, fast 4-cell grid in the versioned wire format.
const testSpec = `{
  "version": 1,
  "name": "serve-test",
  "axes": [
    {"name": "transfer", "values": ["64", "128"]},
    {"name": "cache", "values": ["warm", "cold"]}
  ],
  "base": {"bench": "lat_rd", "n": "2K", "window": "8K"}
}`

// slowSpec is a 32-cell grid at ~300ms per cell, for cancellation
// tests (executed with workers=1 it runs ~10s, far longer than the
// time the test needs to observe one row and cancel).
const slowSpec = `{
  "name": "serve-slow",
  "axes": [{"name": "seed", "values": [
    "1","2","3","4","5","6","7","8","9","10","11","12","13","14","15","16",
    "17","18","19","20","21","22","23","24","25","26","27","28","29","30","31","32"
  ]}],
  "base": {"bench": "lat_rd", "transfer": "64", "n": "1M", "window": "8K"}
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body, query string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func status(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state)
// and returns the final status.
func waitState(t *testing.T, ts *httptest.Server, id, want string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := status(t, ts, id)
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return statusResponse{}
}

func fetch(t *testing.T, ts *httptest.Server, path string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d %s (want %d)", path, resp.StatusCode, raw, wantCode)
	}
	return raw
}

// cliTSV runs the same spec through the Engine the CLIs use and emits
// TSV — the reference the service output must match byte for byte.
func cliTSV(t *testing.T, specJSON string, workers int) string {
	t.Helper()
	spec, err := sweep.Decode(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e := &sweep.Engine{Workers: workers}
	res, _, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	emit, err := sweep.EmitterFor("tsv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSubmitPollFetch is the basic round trip: submit, poll to done,
// fetch TSV — and the served bytes must equal the CLI path's bytes at
// several worker counts.
func TestSubmitPollFetch(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: cache.NewMemory(), Build: "test"})
	sub := submit(t, ts, testSpec, "")
	if sub.Cells != 4 || sub.Name != "serve-test" {
		t.Fatalf("submit response %+v", sub)
	}
	st := waitState(t, ts, sub.ID, StateDone)
	if st.Done != 4 || st.Executed != 4 || st.CacheHits != 0 {
		t.Fatalf("done status %+v", st)
	}

	served := string(fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results?format=tsv", http.StatusOK))
	for _, workers := range []int{1, 3, 8} {
		if want := cliTSV(t, testSpec, workers); served != want {
			t.Errorf("served TSV != CLI TSV at workers=%d:\n%s\n--- vs ---\n%s", workers, served, want)
		}
	}

	// Default format is TSV; other registered emitters work; unknown
	// formats 400 with the shared registry error.
	if def := string(fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results", http.StatusOK)); def != served {
		t.Error("default format is not tsv")
	}
	fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results?format=json", http.StatusOK)
	fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results?format=table", http.StatusOK)
	bad := fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results?format=yaml", http.StatusBadRequest)
	if !bytes.Contains(bad, []byte("unknown format")) {
		t.Errorf("bad-format error: %s", bad)
	}

	// A parallel-simulation submission serves the same bytes — and,
	// because simworkers is not part of the cache key, entirely from the
	// cache the serial run populated.
	par := submit(t, ts, testSpec, "?simworkers=4")
	pst := waitState(t, ts, par.ID, StateDone)
	if pst.CacheHits != 4 || pst.Executed != 0 {
		t.Fatalf("simworkers=4 resubmission did not hit the shared cache: %+v", pst)
	}
	if got := string(fetch(t, ts, "/v1/sweeps/"+par.ID+"/results?format=tsv", http.StatusOK)); got != served {
		t.Error("simworkers=4 served different bytes than the serial job")
	}
}

// TestStreamNDJSON reads the incremental stream: every cell row in
// enumeration order, then a trailer with the accounting.
func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: cache.NewMemory(), Build: "test"})
	sub := submit(t, ts, testSpec, "")

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "/results?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var rows []sweep.Row
	var trailer streamTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done":true`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var row sweep.Row
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad stream line %s: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("streamed %d rows, want 4", len(rows))
	}
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("stream out of order: row %d carries index %d", i, row.Index)
		}
	}
	if !trailer.Done || trailer.State != StateDone || trailer.Cells != 4 || trailer.Executed != 4 {
		t.Fatalf("trailer %+v", trailer)
	}

	// The streamed rows equal the batch ndjson emitter's output.
	batch := fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results?format=ndjson", http.StatusOK)
	var streamed bytes.Buffer
	enc := json.NewEncoder(&streamed)
	for _, row := range rows {
		enc.Encode(row)
	}
	if streamed.String() != string(batch) {
		t.Errorf("streamed rows != ndjson emitter:\n%s\n--- vs ---\n%s", streamed.String(), batch)
	}
}

// TestCacheAccounting pins the serving cache contract: an identical
// resubmission executes zero cells, and a one-axis-value change
// recomputes only the changed cells.
func TestCacheAccounting(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: cache.NewMemory(), Build: "test"})

	first := submit(t, ts, testSpec, "")
	waitState(t, ts, first.ID, StateDone)

	second := submit(t, ts, testSpec, "")
	st := waitState(t, ts, second.ID, StateDone)
	if st.Executed != 0 || st.CacheHits != 4 {
		t.Fatalf("identical resubmit: executed=%d hits=%d, want 0/4", st.Executed, st.CacheHits)
	}
	if tsv1, tsv2 := fetch(t, ts, "/v1/sweeps/"+first.ID+"/results", http.StatusOK),
		fetch(t, ts, "/v1/sweeps/"+second.ID+"/results", http.StatusOK); !bytes.Equal(tsv1, tsv2) {
		t.Error("cached resubmission served different bytes")
	}

	// One axis value changed: cold -> devwarm recomputes exactly the
	// two devwarm cells.
	changed := strings.Replace(testSpec, `"warm", "cold"`, `"warm", "devwarm"`, 1)
	third := submit(t, ts, changed, "")
	st = waitState(t, ts, third.ID, StateDone)
	if st.Executed != 2 || st.CacheHits != 2 {
		t.Fatalf("one-axis change: executed=%d hits=%d, want 2/2", st.Executed, st.CacheHits)
	}

	// Aggregate accounting surfaces on /v1/cache.
	var cs cacheResponse
	if err := json.Unmarshal(fetch(t, ts, "/v1/cache", http.StatusOK), &cs); err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || cs.Entries != 6 || cs.Executed != 6 || cs.CacheHits != 6 {
		t.Fatalf("cache stats %+v, want enabled, 6 entries, 6 executed, 6 hits", cs)
	}
}

// TestOverridesAndRegisteredSweeps drives the envelope submission form
// and ?set= query overrides.
func TestOverridesAndRegisteredSweeps(t *testing.T) {
	sweep.Register(&sweep.Spec{
		Name: "serve-test-reg",
		Axes: []sweep.Axis{sweep.StrAxis("transfer", "64")},
		Base: map[string]string{"bench": "lat_rd", "n": "1K", "window": "8K"},
	})
	_, ts := newTestServer(t, Config{})

	// Envelope + overrides: widen the axis to two values.
	sub := submit(t, ts, `{"run": "serve-test-reg", "overrides": ["transfer=64,128"]}`, "")
	if sub.Cells != 2 {
		t.Fatalf("override ignored: %+v", sub)
	}
	waitState(t, ts, sub.ID, StateDone)

	// Query ?set= overrides compose the same way.
	sub = submit(t, ts, testSpec, "?set=transfer%3D64%2C128%2C256%2C512")
	if sub.Cells != 8 {
		t.Fatalf("?set= override ignored: %+v", sub)
	}

	// The registry lists the registered sweep with its axes.
	var entries []registryEntry
	if err := json.Unmarshal(fetch(t, ts, "/v1/registry", http.StatusOK), &entries); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.Name == "serve-test-reg" && len(e.Axes) == 1 && e.Cells == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("registry lacks serve-test-reg: %+v", entries)
	}
}

// TestCancelMidJob cancels a long sweep after its first streamed row
// and verifies the job lands in the cancelled state with partial
// progress.
func TestCancelMidJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	sub := submit(t, ts, slowSpec, "")

	// Wait for the first streamed row so cancellation is mid-job.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "/results?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("stream ended before first row")
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	st := waitState(t, ts, sub.ID, StateCancelled)
	if st.Done >= st.Cells {
		t.Fatalf("cancelled job completed all %d cells", st.Cells)
	}
	// Fetching results of a cancelled job reports the conflict.
	fetch(t, ts, "/v1/sweeps/"+sub.ID+"/results", http.StatusConflict)
}

// TestServerCloseCancelsJobs: Close (the graceful-shutdown half) must
// cancel running jobs and return.
func TestServerCloseCancelsJobs(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sub := submit(t, ts, slowSpec, "")
	waitState(t, ts, sub.ID, StateRunning)

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	if st := status(t, ts, sub.ID); st.State != StateCancelled {
		t.Fatalf("job state after Close: %q", st.State)
	}
}

// TestErrorResponses covers the 4xx surface.
func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body, query string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/sweeps"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, body := post("not json", ""); code != http.StatusBadRequest {
		t.Errorf("bad body: %d %s", code, body)
	}
	if code, body := post(`{"name": "x", "axes": [{"name": "bogus", "values": ["1"]}]}`, ""); code != http.StatusBadRequest || !strings.Contains(body, "unknown parameter") {
		t.Errorf("bad axis: %d %s", code, body)
	}
	if code, body := post(`{"nmae": "typo"}`, ""); code != http.StatusBadRequest || !strings.Contains(body, "valid keys") {
		t.Errorf("unknown field: %d %s", code, body)
	}
	if code, body := post(strings.Replace(testSpec, `"version": 1`, `"version": 9`, 1), ""); code != http.StatusBadRequest || !strings.Contains(body, "version 9") {
		t.Errorf("future version: %d %s", code, body)
	}
	if code, body := post(`{"run": "no-such-sweep"}`, ""); code != http.StatusNotFound {
		t.Errorf("unknown registered sweep: %d %s", code, body)
	}
	if code, body := post(testSpec, "?quality=extreme"); code != http.StatusBadRequest {
		t.Errorf("bad quality: %d %s", code, body)
	}
	if code, body := post(testSpec, "?workers=-1"); code != http.StatusBadRequest {
		t.Errorf("bad workers: %d %s", code, body)
	}
	// Out-of-range or non-numeric simworkers is rejected with the valid
	// range in the message.
	for _, bad := range []string{"0", "-3", "65", "many"} {
		if code, body := post(testSpec, "?simworkers="+bad); code != http.StatusBadRequest || !strings.Contains(body, "[1, 64]") {
			t.Errorf("simworkers=%s: %d %s (want 400 naming [1, 64])", bad, code, body)
		}
	}

	fetch(t, ts, "/v1/sweeps/sw-999", http.StatusNotFound)
	fetch(t, ts, "/v1/sweeps/sw-999/results", http.StatusNotFound)
	if body := fetch(t, ts, "/healthz", http.StatusOK); !bytes.Contains(body, []byte("ok")) {
		t.Errorf("healthz: %s", body)
	}
}

// TestJobList exercises GET /v1/sweeps.
func TestJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		sub := submit(t, ts, testSpec, "")
		waitState(t, ts, sub.ID, StateDone)
	}
	var jobs []statusResponse
	if err := json.Unmarshal(fetch(t, ts, "/v1/sweeps", http.StatusOK), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != fmt.Sprintf("sw-%d", i+1) {
			t.Fatalf("job order %+v", jobs)
		}
	}
}

// TestMaxBodyLimit: an oversized submission gets a clear 413, and the
// configured limit does not reject bodies under it.
func TestMaxBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 1024})

	big := `{"run": "pad", "overrides": ["` + strings.Repeat("x", 2048) + `"]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s (want 413)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "1024") {
		t.Errorf("413 body %s does not name the limit", raw)
	}

	sub := submit(t, ts, testSpec, "")
	waitState(t, ts, sub.ID, StateDone)
}

// TestJobTimeout: a job that overruns the configured wall-clock
// deadline is cancelled, reported with the dedicated "timeout" state
// (distinct from a client cancel), and its results answer 504.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 100 * time.Millisecond})

	sub := submit(t, ts, slowSpec, "")
	st := waitState(t, ts, sub.ID, StateTimeout)
	if st.State != StateTimeout {
		t.Fatalf("state %q, want %q", st.State, StateTimeout)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("results of timed-out job: %d, want 504", resp.StatusCode)
	}

	// A job that fits the deadline is untouched by it.
	ok := submit(t, ts, testSpec, "")
	waitState(t, ts, ok.ID, StateDone)
}

// TestBerQueryParameter: ?ber= is validated sugar for set=ber=..., the
// fault-injection what-if axis of the serving surface.
func TestBerQueryParameter(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	sub := submit(t, ts, testSpec, "?ber=1e-6")
	waitState(t, ts, sub.ID, StateDone)

	resp, err := http.Post(ts.URL+"/v1/sweeps?ber=2", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ber=2: %d %s (want 400)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "bit error rate") {
		t.Errorf("400 body %s does not explain the bad BER", raw)
	}
}

// TestFaultQueryParameters: ?cto= and ?retrain= mirror ?ber= — each is
// validated sugar for the matching set= override, with the same 400
// surface on a malformed value.
func TestFaultQueryParameters(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, q := range []string{"?cto=50us", "?retrain=1ms", "?ber=1e-6&cto=50us&retrain=1ms"} {
		sub := submit(t, ts, testSpec, q)
		waitState(t, ts, sub.ID, StateDone)
	}

	for _, bad := range []string{"?cto=fast", "?retrain=-3"} {
		resp, err := http.Post(ts.URL+"/v1/sweeps"+bad, "application/json", strings.NewReader(testSpec))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s (want 400)", bad, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "duration") {
			t.Errorf("%s: 400 body %s does not explain the bad duration", bad, raw)
		}
	}
}
