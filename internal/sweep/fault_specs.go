package sweep

// The fault-injection sweeps: degraded-link studies the error-free
// source paper never ran (see internal/fault). Registered here so the
// CLIs, the service and CI all share one definition; the JSON mirror
// in examples/sweeps/ber-goodput.json drives the same grid through
// the wire format.
func init() {
	Register(&Spec{
		Name:  "ber-goodput",
		Title: "Goodput and tail latency vs link bit error rate",
		Description: "4 NICs behind one Gen3 x8 switch with per-port BER-driven " +
			"LCRC corruption: goodput degrades monotonically and p99.9 inflates " +
			"as replays (and, past the REPLAY_NUM rollover, retrains) consume " +
			"link time; per-endpoint AER-style counters quantify the damage",
		XAxis:    "ber",
		XLabel:   "bit error rate",
		YLabel:   "pps / Gb/s / p99.9 (ns)",
		Axes:     []Axis{StrAxis("ber", "0", "1e-9", "1e-8", "1e-7", "1e-6", "1e-5")},
		SeedMode: SeedFixed,
		Seed:     17,
		Base: map[string]string{
			"bench":     BenchWorkload,
			"system":    "NFP6000-BDW",
			"endpoints": "4",
			"switch":    "gen3x8",
			"nojitter":  "true",
			"queues":    "1",
			"sizes":     "1500",
		},
		Probes: []Probe{
			{Label: "pps", Metric: MetricPPS},
			{Label: "gbps", Metric: MetricGbps},
			{Label: "p99.9_ns", Metric: MetricP999},
			{Label: "replays", Metric: MetricReplays},
			{Label: "retrains", Metric: MetricRetrains},
			{Label: "timeouts", Metric: MetricTimeouts},
			{Label: "ep0_replays", Metric: "replays0"},
		},
	})
}
