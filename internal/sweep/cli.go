package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
)

// The helpers below are the shared CLI surface of cmd/pcie-repro and
// cmd/pcie-bench: list registered sweeps, load a JSON spec, and run a
// grid with overrides applied and the result emitted. Keeping them
// here means the two commands cannot drift apart.

// ListSpecs prints the registered sweeps: name, cell count, axis
// shapes and description.
func ListSpecs(w io.Writer) {
	for _, s := range Specs() {
		axes := make([]string, 0, len(s.Axes))
		for _, a := range s.Axes {
			axes = append(axes, fmt.Sprintf("%s(%d)", a.Name, len(a.Values)))
		}
		fmt.Fprintf(w, "%-12s %4d cells  %-32s %s\n",
			s.Name, s.Count(), strings.Join(axes, " x "), s.Description)
	}
}

// LoadSpecFile reads and validates a JSON sweep spec.
func LoadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// RunAndEmit applies CLI overrides to the spec, executes the grid and
// emits it to stdout in the requested format. When the caller leaves
// opt.Progress nil and passes a non-nil stderr, grids above 64 cells
// get a progress meter there.
func RunAndEmit(ctx context.Context, spec *Spec, overrides []string, format string, opt RunOptions, stdout, stderr io.Writer) error {
	emit, err := EmitterFor(format)
	if err != nil {
		return err
	}
	if err := spec.ApplyOverrides(overrides); err != nil {
		return err
	}
	if opt.Progress == nil && stderr != nil && spec.Count() > 64 {
		opt.Progress = func(done, total int) {
			if done%32 == 0 || done == total {
				fmt.Fprintf(stderr, "\r%d/%d", done, total)
			}
		}
		defer fmt.Fprintln(stderr)
	}
	res, err := spec.Run(ctx, opt)
	if err != nil {
		return err
	}
	return emit(stdout, res)
}
