package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"pciebench/internal/buildinfo"
	"pciebench/internal/cache"
)

// The helpers below are the shared CLI surface of cmd/pcie-repro and
// cmd/pcie-bench: list registered sweeps, load a JSON spec, and run a
// grid through the Engine with overrides applied and the result
// emitted. Keeping the dispatch here means the commands cannot drift
// apart — they parse flags, fill a CLI and call Execute.

// CLI is the shared sweep dispatch of the commands: exactly one of
// List, RunName or SpecPath selects the action.
type CLI struct {
	// List prints the registered sweeps and exits.
	List bool
	// RunName runs a registered sweep by name.
	RunName string
	// SpecPath runs a custom sweep from a JSON spec file.
	SpecPath string
	// Overrides are trailing "name=v1,v2,..." axis/base overrides.
	Overrides []string
	// Format selects the emitter (see Formats).
	Format string
	// Workers is the per-run worker pool size (0 = GOMAXPROCS).
	Workers int
	// SimWorkers is the conservative-parallel simulation budget applied
	// to each multi-endpoint workload fabric cell (<= 1 = serial).
	// Results are byte-identical at every value.
	SimWorkers int
	// Quality scales transaction counts (Quick or Full).
	Quality Quality
	// CacheDir, when non-empty, dedups cells against an on-disk
	// content-addressed result cache rooted there; identical cells are
	// served without executing and a short hit/miss line goes to
	// stderr.
	CacheDir string
}

// Active reports whether any sweep-dispatch action was requested.
func (c *CLI) Active() bool {
	return c.List || c.RunName != "" || c.SpecPath != ""
}

// Execute performs the selected action, writing results to stdout and
// progress/accounting to stderr (either may be nil to discard).
func (c *CLI) Execute(ctx context.Context, stdout, stderr io.Writer) error {
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}
	if c.List {
		ListSpecs(stdout)
		return nil
	}
	var spec *Spec
	var err error
	if c.RunName != "" {
		spec, err = ByName(c.RunName)
	} else {
		spec, err = LoadSpecFile(c.SpecPath)
	}
	if err != nil {
		return err
	}

	emit, err := EmitterFor(c.Format)
	if err != nil {
		return err
	}
	if err := spec.ApplyOverrides(c.Overrides); err != nil {
		return err
	}

	if err := ValidateSimWorkers(max(1, c.SimWorkers)); err != nil {
		return err
	}
	engine := &Engine{Workers: c.Workers, SimWorkers: c.SimWorkers, Quality: c.Quality}
	if c.CacheDir != "" {
		store, err := cache.NewDisk(c.CacheDir)
		if err != nil {
			return fmt.Errorf("sweep: open cache: %w", err)
		}
		engine.Cache = store
		engine.Build = buildinfo.Version()
	}
	// Grids above 64 cells get a progress meter on stderr.
	if spec.Count() > 64 {
		total := spec.Count()
		engine.Progress = func(done, _ int) {
			if done%32 == 0 || done == total {
				fmt.Fprintf(stderr, "\r%d/%d", done, total)
			}
		}
		defer fmt.Fprintln(stderr)
	}
	res, stats, err := engine.Run(ctx, spec)
	if err != nil {
		return err
	}
	if engine.Cache != nil {
		fmt.Fprintf(stderr, "cache: %d/%d cells hit, %d executed\n",
			stats.Hits, stats.Cells, stats.Executed)
	}
	return emit(stdout, res)
}

// ListSpecs prints the registered sweeps: name, cell count, axis
// shapes and description.
func ListSpecs(w io.Writer) {
	for _, s := range Specs() {
		axes := make([]string, 0, len(s.Axes))
		for _, a := range s.Axes {
			axes = append(axes, fmt.Sprintf("%s(%d)", a.Name, len(a.Values)))
		}
		fmt.Fprintf(w, "%-12s %4d cells  %-32s %s\n",
			s.Name, s.Count(), strings.Join(axes, " x "), s.Description)
	}
}

// LoadSpecFile reads and validates a JSON sweep spec.
func LoadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
