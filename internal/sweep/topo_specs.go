package sweep

// The topology sweeps: the scenarios the paper's single-adapter setup
// cannot express, run on the composable internal/topo fabric. They are
// registered here (rather than in internal/report) because they extend
// the methodology beyond the paper's figures.
func init() {
	Register(&Spec{
		Name:  "topo-contend",
		Title: "Shared-uplink contention",
		Description: "N NICs behind one PCIe switch share a Gen3 x8 uplink: " +
			"aggregate rate saturates while per-NIC p99 latency inflates and " +
			"bandwidth partitions near-equally as N grows 1..8",
		XAxis:  "endpoints",
		XLabel: "NICs behind the switch",
		YLabel: "pps / latency (ns)",
		Axes:   []Axis{IntAxis("endpoints", 1, 2, 4, 8)},
		Base: map[string]string{
			"bench":  BenchWorkload,
			"system": "NFP6000-HSW",
			"switch": "gen3x8",
			"queues": "1",
			"sizes":  "1500",
		},
		Probes: []Probe{
			{Label: "pps", Metric: MetricPPS},
			{Label: "p99_ns", Metric: MetricP99},
			{Label: "epps_min", Metric: MetricEPPSMin},
			{Label: "epps_max", Metric: MetricEPPSMax},
		},
	})
	Register(&Spec{
		Name:  "topo-p2p",
		Title: "Peer-to-peer DMA vs host-DRAM bounce",
		Description: "device-to-device transfers between two endpoints under one " +
			"switch: the direct switch-routed peer path against the bounce " +
			"through host DRAM (write up, read back down)",
		XAxis:  "transfer",
		XLabel: "transfer size (B)",
		YLabel: "latency (ns) / Gb/s",
		Axes: []Axis{
			StrAxis("transfer", "64", "256", "1K", "4K"),
			StrAxis("p2p", "direct", "bounce"),
		},
		Base: map[string]string{
			"bench":  BenchP2P,
			"system": "NFP6000-HSW",
		},
		Probes: []Probe{
			{Label: "lat_ns", Metric: MetricMedian},
			{Label: "gbps", Metric: MetricGbps},
		},
	})
}
