package sweep

import (
	"bytes"
	"context"
	"testing"

	"pciebench/internal/sim"
)

// runBerGoodput runs the registered ber-goodput sweep, scaled down for
// test time, at the given simulation worker budget, returning the TSV.
func runBerGoodput(t *testing.T, simWorkers int, overrides ...string) (*Result, string) {
	t.Helper()
	spec, err := ByName("ber-goodput")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.ApplyOverrides(append([]string{"n=150"}, overrides...)); err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background(), RunOptions{Workers: 2, SimWorkers: simWorkers})
	if err != nil {
		t.Fatal(err)
	}
	emit, err := EmitterFor("tsv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// TestBerGoodputWorkerIdentity pins the sweep-level determinism
// acceptance criterion: identical specs with ber>0 produce
// byte-identical TSVs at simulation worker counts 1, 2, 4 and 7.
func TestBerGoodputWorkerIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep skipped in -short")
	}
	_, ref := runBerGoodput(t, 1, "ber=1e-6,1e-5")
	for _, w := range []int{2, 4, 7} {
		if _, got := runBerGoodput(t, w, "ber=1e-6,1e-5"); got != ref {
			t.Errorf("simworkers=%d TSV diverged from serial", w)
		}
	}
}

// TestBerGoodputShape is the acceptance property of the registered
// sweep itself: goodput degrades monotonically (non-strictly — low BER
// decades round to zero corrupted TLPs) as BER grows, replays rise,
// and the per-endpoint counter column stays consistent with the
// aggregate.
func TestBerGoodputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep skipped in -short")
	}
	res, _ := runBerGoodput(t, 2)
	spec := res.Spec
	labels := spec.ProbeLabels()
	col := func(name string) int {
		for i, l := range labels {
			if l == name {
				return i
			}
		}
		t.Fatalf("probe %q missing from %v", name, labels)
		return -1
	}
	gbps, replays, ep0 := col("gbps"), col("replays"), col("ep0_replays")
	lastGbps := -1.0
	lastReplays := -1.0
	for _, c := range res.Cells {
		g, r := c.Values[gbps], c.Values[replays]
		if lastGbps >= 0 && g > lastGbps {
			t.Errorf("ber=%s: goodput %.3f above previous %.3f (not monotone)",
				c.Cell.Coord[0], g, lastGbps)
		}
		if r < lastReplays {
			t.Errorf("ber=%s: replays %v below previous %v", c.Cell.Coord[0], r, lastReplays)
		}
		if c.Values[ep0] > r {
			t.Errorf("ber=%s: endpoint 0 replays %v exceed aggregate %v",
				c.Cell.Coord[0], c.Values[ep0], r)
		}
		lastGbps, lastReplays = g, r
	}
	last := res.Cells[len(res.Cells)-1]
	if last.Values[replays] == 0 {
		t.Error("no replays at BER 1e-5; fault injection inert")
	}
	if first := res.Cells[0]; first.Values[replays] != 0 {
		t.Errorf("ber=0 cell recorded %v replays", first.Values[replays])
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]int64{
		"500ps": 500,
		"3ns":   3000,
		"1.5us": 1500000,
		"2ms":   int64(2 * 1e9),
		"1s":    int64(1e12),
		"250":   250000, // bare numbers are nanoseconds
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || int64(got) != want {
			t.Errorf("ParseDuration(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "fast", "-3us", "1h"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParseBER(t *testing.T) {
	if b, err := ParseBER(" 1e-6 "); err != nil || b != 1e-6 {
		t.Errorf("ParseBER(1e-6) = %v, %v", b, err)
	}
	for _, bad := range []string{"", "x", "-1e-9", "1", "1.5"} {
		if _, err := ParseBER(bad); err == nil {
			t.Errorf("ParseBER(%q) accepted", bad)
		}
	}
}

// TestFaultKeysResolve: the ber=/cto=/retrain= keys build a fault
// config only when a knob is non-zero — ber=0 cells must resolve to
// the exact fault-free instance so they share cache entries — and bad
// values error.
func TestFaultKeysResolve(t *testing.T) {
	base := map[string]string{"bench": BenchLatRd, "transfer": "64"}
	kv := func(extra map[string]string) map[string]string {
		m := map[string]string{}
		for k, v := range base {
			m[k] = v
		}
		for k, v := range extra {
			m[k] = v
		}
		return m
	}
	cfg, err := resolveConfig(kv(map[string]string{"ber": "0", "cto": "0", "retrain": "0"}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Opt.Faults != nil {
		t.Errorf("all-zero fault keys allocated a config: %+v", *cfg.Opt.Faults)
	}
	cfg, err = resolveConfig(kv(map[string]string{"ber": "1e-7", "cto": "10us", "retrain": "50ms"}))
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Opt.Faults
	if f == nil || f.BER != 1e-7 || f.CTO != 10*sim.Microsecond || f.RetrainMTBF != 50*sim.Millisecond {
		t.Errorf("fault keys not threaded: %+v", f)
	}
	for _, bad := range []map[string]string{
		{"ber": "2"}, {"ber": "nope"}, {"cto": "-1us"}, {"retrain": "often"},
	} {
		if _, err := resolveConfig(kv(bad)); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}
