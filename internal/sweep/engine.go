package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"pciebench/internal/cache"
	"pciebench/internal/runner"
)

// Engine is the single execution entry point every run path shares —
// the CLIs (pcie-repro, pcie-bench -run/-spec) and the serving layer
// (internal/serve) all drive sweeps through it. A run is
// expand -> dedup-against-cache -> execute -> emit:
//
//   - the grid expands to cells in deterministic enumeration order;
//   - each cell's canonical job document is hashed into a content
//     address and looked up in the Store (cells are pure functions of
//     spec + seed + build version, so a hit is exact);
//   - only the misses execute, sharded over the internal/runner pool;
//   - results are delivered in enumeration order — to the OnCell
//     stream as soon as each cell's predecessors are done, and as the
//     assembled Result — so output bytes are identical at any worker
//     count, with or without a cache.
type Engine struct {
	// Workers is the runner pool size for cache misses; <= 0 selects
	// GOMAXPROCS. Results are byte-identical for every value.
	Workers int
	// SimWorkers is the conservative-parallel simulation budget for
	// multi-endpoint workload fabric cells; <= 1 simulates serially.
	// Results are byte-identical for every value, which is why — unlike
	// Quality — SimWorkers is deliberately NOT part of the cache key: a
	// cell computed at any worker count serves requests at every other.
	SimWorkers int
	// Quality resolves transaction counts left at zero; it is part of
	// the cache key (quick and full results never alias).
	Quality Quality
	// Cache, when non-nil, dedups cells against previously executed
	// results. The cache is best-effort: a failed read is a miss and a
	// failed write only loses the entry.
	Cache cache.Store
	// Build partitions the cache by code version: results computed by
	// a different build never serve a request from this one.
	Build string
	// Progress, when non-nil, receives (done, total) as cells become
	// available (cache hits count immediately); calls are serialized.
	Progress func(done, total int)
	// OnCell, when non-nil, receives every cell result in enumeration
	// order as soon as it and all its predecessors are available —
	// the incremental stream behind the serving layer's NDJSON
	// endpoint. Calls are serialized.
	OnCell func(CellResult)
}

// Stats counts how a run's cells were satisfied.
type Stats struct {
	// Cells is the expanded grid size.
	Cells int `json:"cells"`
	// Hits is how many cells were served from the cache.
	Hits int `json:"cache_hits"`
	// Executed is how many cells actually ran (cache misses, or every
	// cell when no cache is configured).
	Executed int `json:"executed"`
}

// cellJob is the canonical document a cell's content address is
// computed from: every input that can change the cell's measurement.
// encoding/json marshals maps with sorted keys, so the encoding is
// canonical. Probe labels are excluded — they rename emitted columns
// but never change values.
type cellJob struct {
	Build    string            `json:"build,omitempty"`
	Quality  string            `json:"quality"`
	Shared   bool              `json:"shared_instance,omitempty"`
	Seed     int64             `json:"seed"`
	KV       map[string]string `json:"kv"`
	Probes   []probeJob        `json:"probes"`
	Contrast *Contrast         `json:"contrast,omitempty"`
}

type probeJob struct {
	Set    map[string]string `json:"set,omitempty"`
	Metric string            `json:"metric,omitempty"`
}

// cellKey computes a cell's content address. The seed entering the key
// is the fully resolved per-cell seed (cellSeed), so under per-cell
// seeding two cells with identical parameters at different grid
// positions key differently — as they must, since their results
// differ — while under fixed seeding identical cells dedup across
// positions and even across specs.
func (e *Engine) cellKey(s *Spec, c Cell) (string, error) {
	base := s.Seed
	if v, ok := c.KV["seed"]; ok {
		n, err := ParseSize(v)
		if err != nil {
			return "", err
		}
		base = int64(n)
	}
	seed := base
	if s.SeedMode != SeedFixed {
		if base == 0 {
			base = 1
		}
		seed = runner.Seed(base, c.Index)
	}
	job := cellJob{
		Build:    e.Build,
		Quality:  e.Quality.String(),
		Shared:   s.SharedInstance,
		Seed:     seed,
		KV:       c.KV,
		Contrast: s.Contrast,
	}
	for _, p := range s.probes() {
		job.Probes = append(job.Probes, probeJob{Set: p.Set, Metric: p.Metric})
	}
	blob, err := json.Marshal(job)
	if err != nil {
		return "", err
	}
	return cache.Key(blob), nil
}

// cachedCell is the stored form of a cell result. The Cell itself
// (index, coordinates) is never cached — it belongs to the requesting
// spec and is re-attached on a hit, which is what lets one cached cell
// serve many grid positions. Float values survive the JSON round trip
// exactly (encoding/json emits the shortest representation that parses
// back to the same float64), so emitted bytes are identical whether a
// cell was computed or recalled.
type cachedCell struct {
	Meas   []Measurement `json:"meas"`
	Values []float64     `json:"values"`
}

// Run expands the spec, satisfies what it can from the cache, executes
// the misses on the worker pool and returns the assembled result plus
// the hit/miss accounting.
func (e *Engine) Run(ctx context.Context, s *Spec) (*Result, Stats, error) {
	if err := s.Validate(); err != nil {
		return nil, Stats{}, err
	}
	cells := s.Cells()
	stats := Stats{Cells: len(cells)}
	results := make([]CellResult, len(cells))
	ready := make([]bool, len(cells))

	// st serializes OnCell/Progress delivery and enforces enumeration
	// order: a finished cell is published only once all its
	// predecessors are.
	st := &streamState{engine: e, results: results, ready: ready, total: len(cells)}

	type miss struct {
		cell Cell
		key  string
	}
	var misses []miss
	for _, c := range cells {
		if e.Cache != nil {
			key, err := e.cellKey(s, c)
			if err != nil {
				return nil, stats, fmt.Errorf("sweep: %s cell %d: cache key: %w", s.Name, c.Index, err)
			}
			if blob, ok := e.Cache.Get(key); ok {
				var cc cachedCell
				if err := json.Unmarshal(blob, &cc); err == nil {
					results[c.Index] = CellResult{Cell: c, Meas: cc.Meas, Values: cc.Values}
					ready[c.Index] = true
					stats.Hits++
					continue
				} else if q, ok := e.Cache.(interface{ Quarantine(key, reason string) }); ok {
					// Stores that can (the disk cache) move the corrupt
					// blob aside, so it is recomputed once — not re-read
					// and re-rejected on every future run.
					q.Quarantine(key, err.Error())
				}
				// A corrupt entry is just a miss; recompute below.
			}
			misses = append(misses, miss{cell: c, key: key})
			continue
		}
		misses = append(misses, miss{cell: c})
	}
	stats.Executed = len(misses)
	st.flush() // publish the leading run of cache hits immediately

	_, err := runner.Map(ctx, misses, runner.Options{Workers: e.Workers},
		func(_ context.Context, _ int, m miss) (struct{}, error) {
			res, err := s.runCell(m.cell, e.Quality, e.SimWorkers)
			if err != nil {
				return struct{}{}, err
			}
			if e.Cache != nil {
				if blob, err := json.Marshal(cachedCell{Meas: res.Meas, Values: res.Values}); err == nil {
					e.Cache.Put(m.key, blob)
				}
			}
			st.publish(m.cell.Index, res)
			return struct{}{}, nil
		})
	if err != nil {
		return nil, stats, err
	}
	return &Result{Spec: s, Cells: results}, stats, nil
}

// streamState delivers cell results to OnCell/Progress in enumeration
// order regardless of completion order.
type streamState struct {
	mu      sync.Mutex
	engine  *Engine
	results []CellResult
	ready   []bool
	next    int // first index not yet delivered
	total   int
}

// publish records an executed cell and flushes the newly contiguous
// prefix.
func (st *streamState) publish(index int, res CellResult) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.results[index] = res
	st.ready[index] = true
	st.flushLocked()
}

func (st *streamState) flush() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.flushLocked()
}

func (st *streamState) flushLocked() {
	for st.next < st.total && st.ready[st.next] {
		if st.engine.OnCell != nil {
			st.engine.OnCell(st.results[st.next])
		}
		st.next++
		if st.engine.Progress != nil {
			st.engine.Progress(st.next, st.total)
		}
	}
}

// Run validates the spec, expands the grid and executes every cell on
// the worker pool — the historical uncached entry point, now a thin
// wrapper over the Engine. Cells are independent units, so results are
// collected in enumeration order and identical at any worker count.
func (s *Spec) Run(ctx context.Context, opt RunOptions) (*Result, error) {
	e := &Engine{Workers: opt.Workers, SimWorkers: opt.SimWorkers, Quality: opt.Quality, Progress: opt.Progress}
	res, _, err := e.Run(ctx, s)
	return res, err
}
