package sweep

import (
	"fmt"
	"sort"
	"sync"
)

// The registry holds named sweeps — the paper's figures and tables
// (registered by internal/report) plus anything else a package wants
// to expose on the CLI. Lookup returns clones, so callers may apply
// axis overrides freely.
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register adds a spec to the registry; it panics on an invalid spec
// or a duplicate name (both are programming errors in the registering
// package).
func Register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("sweep: duplicate spec %q", s.Name))
	}
	registry[s.Name] = s.Clone()
}

// Specs returns clones of every registered spec, sorted by name.
func Specs() []*Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns a clone of the named spec.
func ByName(name string) (*Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("sweep: unknown sweep %q (registered: %v)", name, names)
	}
	return s.Clone(), nil
}
