package sweep

// Quality scales experiment sizes: Quick keeps test runs fast, Full
// approaches the paper's sample counts (the paper journals 2M latency
// samples and 8M bandwidth DMAs per point; Full uses enough to
// stabilize medians and the tails that matter). The scaling is defined
// once here; every sweep cell whose transaction count is left at zero
// resolves it from the quality level and the benchmark kind.
type Quality int

// Quality levels.
const (
	Quick Quality = iota
	Full
)

// String names the level.
func (q Quality) String() string {
	if q == Full {
		return "full"
	}
	return "quick"
}

// LatN returns latency samples per point.
func (q Quality) LatN() int {
	if q == Full {
		return 20000
	}
	return 400
}

// BwN returns bandwidth transactions per point.
func (q Quality) BwN() int {
	if q == Full {
		return 60000
	}
	return 4000
}

// CDFN returns samples for distribution experiments (Figure 6 needs a
// resolved 99.9th percentile).
func (q Quality) CDFN() int {
	if q == Full {
		return 200000
	}
	return 20000
}

// LoopN returns round trips for the loopback NIC measurement (Fig 2).
func (q Quality) LoopN() int {
	if q == Full {
		return 200
	}
	return 16
}

// WorkloadN returns packet pairs per traffic-engine run: enough for a
// resolved p99.9 at Full, seconds-fast grids at Quick.
func (q Quality) WorkloadN() int {
	if q == Full {
		return 100000
	}
	return 2000
}

// Transactions resolves the measured-transaction count for a benchmark
// kind and probe metric: explicit n values win; otherwise distribution
// probes use CDFN, latency benchmarks LatN, bandwidth benchmarks BwN
// and the loopback measurement LoopN.
func (q Quality) Transactions(benchKind, metric string) int {
	if metric == MetricCDF {
		return q.CDFN()
	}
	switch benchKind {
	case BenchLoopback:
		return q.LoopN()
	case BenchWorkload:
		return q.WorkloadN()
	case BenchLatRd, BenchLatWrRd, BenchP2P:
		return q.LatN()
	default:
		return q.BwN()
	}
}
