package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestTopoContendGolden pins the shared-uplink contention sweep: the
// JSON spec round-trips, runs byte-identically at workers 1/4/7 in
// every format, and matches the checked-in golden TSV.
func TestTopoContendGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("topology golden skipped in -short")
	}
	goldenRoundTrip(t, "topo-contend.json", "topo-contend.golden.tsv", []int{1, 4, 7})
}

// TestTopoP2PGolden pins the peer-to-peer sweep the same way.
func TestTopoP2PGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("topology golden skipped in -short")
	}
	goldenRoundTrip(t, "topo-p2p.json", "topo-p2p.golden.tsv", []int{1, 4, 7})
}

// TestTopoContendShape is the acceptance property behind the golden:
// running the *registered* topo-contend sweep, per-NIC p99 latency
// degrades strictly monotonically as endpoints behind one uplink grow
// 1→8, while bandwidth partitions near-equally (min/max endpoint rate
// ≥ 0.9) in every multi-endpoint cell.
func TestTopoContendShape(t *testing.T) {
	if testing.Short() {
		t.Skip("topology sweep skipped in -short")
	}
	spec, err := ByName("topo-contend")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.ApplyOverrides([]string{"n=250"}); err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background(), RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := spec.ProbeLabels()
	col := func(name string) int {
		for i, l := range labels {
			if l == name {
				return i
			}
		}
		t.Fatalf("probe %q missing from %v", name, labels)
		return -1
	}
	p99, emin, emax := col("p99_ns"), col("epps_min"), col("epps_max")
	var lastP99 float64
	for _, c := range res.Cells {
		v99 := c.Values[p99]
		if v99 <= lastP99 {
			t.Errorf("endpoints=%s: p99 %.0fns not above previous %.0fns", c.Cell.Coord[0], v99, lastP99)
		}
		lastP99 = v99
		lo, hi := c.Values[emin], c.Values[emax]
		if lo <= 0 || hi <= 0 {
			t.Fatalf("endpoints=%s: non-positive endpoint rates %v/%v", c.Cell.Coord[0], lo, hi)
		}
		if lo/hi < 0.9 {
			t.Errorf("endpoints=%s: bandwidth partitioning %.0f/%.0f pps below 0.9", c.Cell.Coord[0], lo, hi)
		}
	}
}

// TestUnknownKeyErrorsNameValidKeys is the satellite error-message
// contract: an unknown key in a cell whose benchmark kind is known
// lists exactly that kind's valid keys; without a kind the error lists
// the groups.
func TestUnknownKeyErrorsNameValidKeys(t *testing.T) {
	_, err := resolveConfig(map[string]string{"bench": BenchWorkload, "bogus": "1"})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	msg := err.Error()
	for _, want := range []string{`for bench "workload"`, "queues", "endpoints", "arrival"} {
		if !strings.Contains(msg, want) {
			t.Errorf("workload unknown-key error missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "offset") {
		t.Errorf("workload unknown-key error lists micro-bench key \"offset\":\n%s", msg)
	}

	_, err = resolveConfig(map[string]string{"bench": BenchLatRd, "bogus": "1"})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	msg = err.Error()
	for _, want := range []string{`for bench "lat_rd"`, "offset", "window"} {
		if !strings.Contains(msg, want) {
			t.Errorf("lat_rd unknown-key error missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "queues") {
		t.Errorf("lat_rd unknown-key error lists workload key \"queues\":\n%s", msg)
	}

	_, err = resolveConfig(map[string]string{"bogus": "1"})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	if msg = err.Error(); !strings.Contains(msg, "topology:") || !strings.Contains(msg, "workload:") {
		t.Errorf("ungrouped unknown-key error missing groups:\n%s", msg)
	}
}

// TestTopologyKeyRules: topology keys are rejected on micro-benchmark
// cells, p2p defaults are applied, and shared_instance refuses fabric
// cells.
func TestTopologyKeyRules(t *testing.T) {
	if _, err := resolveConfig(map[string]string{"bench": BenchBwRd, "endpoints": "4"}); err == nil {
		t.Error("endpoints on bw_rd accepted")
	}
	if _, err := resolveConfig(map[string]string{"bench": BenchLatRd, "p2p": "direct"}); err == nil {
		t.Error("p2p key on lat_rd accepted")
	}
	cfg, err := resolveConfig(map[string]string{"bench": BenchP2P})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shape.Endpoints != 2 || cfg.Shape.Switch == nil || cfg.P2P != "direct" {
		t.Errorf("p2p defaults not applied: %+v p2p=%q", cfg.Shape, cfg.P2P)
	}
	cfg, err = resolveConfig(map[string]string{"bench": BenchP2P, "switch": "none"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shape.Switch != nil {
		t.Error("switch=none overridden by the p2p default")
	}

	s := &Spec{
		Name:           "shared-topo",
		Axes:           []Axis{StrAxis("endpoints", "2")},
		Base:           map[string]string{"bench": BenchWorkload, "switch": "on"},
		SharedInstance: true,
	}
	if err := s.Validate(); err == nil {
		t.Error("shared_instance over a fabric cell accepted")
	}
}
