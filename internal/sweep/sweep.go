// Package sweep is the declarative parameter-sweep engine behind every
// figure and table of the reproduction.
//
// The paper's contribution is a methodology: pcie-bench sweeps transfer
// size x window x offset x cache state x NUMA node x IOMMU state across
// host/NIC combinations. A Spec captures one such sweep as data — named
// axes over sysconf.Options and bench.Params (system, benchmark kind,
// link generation/lanes/MPS/MRRS, cache state, NUMA node, IOMMU,
// transfer/window/offset, ...) — which the engine expands into a grid
// of cells, executes on the internal/runner worker pool with
// deterministic seeds, and renders through pluggable emitters (aligned
// table, gnuplot TSV, JSON, CSV).
//
// Specs are plain JSON-serializable values: the registered paper
// figures are Specs (see internal/report), and entirely new grids —
// Gen4/Gen5 links, hypothetical NIC what-ifs, custom cache/NUMA
// matrices — run from a JSON file or axis-override strings without any
// Go code.
//
// The Spec JSON format is a versioned, strict wire contract shared by
// the CLIs and the HTTP serving layer (internal/serve): documents
// carry a "version" field (SpecVersion; legacy version-less documents
// read as version 1), unknown fields are rejected with errors naming
// the valid keys, and every run path — pcie-repro, pcie-bench
// -run/-spec, pcie-served — executes through the same Engine, which
// dedups cells against a content-addressed result cache
// (internal/cache) keyed by canonical cell spec + seed + build
// version.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"pciebench/internal/bench"
	"pciebench/internal/fault"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// Benchmark kinds a cell can run. The five pcie-bench names follow
// paper §4; loopback is the ExaNIC-style round trip of §2 (Figure 2);
// workload is the multi-queue traffic engine (internal/workload).
const (
	BenchLatRd    = "lat_rd"
	BenchLatWrRd  = "lat_wrrd"
	BenchBwRd     = "bw_rd"
	BenchBwWr     = "bw_wr"
	BenchBwRdWr   = "bw_rdwr"
	BenchLoopback = "loopback"
	BenchWorkload = "workload"
	// BenchP2P measures device-to-device transfers between two
	// endpoints of a topology: the direct peer path vs the bounce
	// through host DRAM (internal/topo.RunP2P).
	BenchP2P = "p2p"
)

// Probe metrics. Workload cells additionally accept "qpps<i>", the
// packet rate of queue i, and multi-endpoint cells "epps<i>", the
// packet rate of endpoint i.
const (
	MetricMedian = "median" // median latency in ns
	MetricGbps   = "gbps"   // per-direction payload bandwidth
	MetricFrac   = "frac"   // PCIe fraction of the loopback round trip
	MetricCDF    = "cdf"    // full latency distribution (median in Values)
	MetricPPS    = "pps"    // aggregate packet-pair rate (workload)
	MetricP50    = "p50"    // completion-latency p50 in ns (workload)
	MetricP99    = "p99"    // completion-latency p99 in ns (workload)
	MetricP999   = "p999"   // completion-latency p99.9 in ns (workload)
	// MetricEPPSMin/Max are the slowest and fastest endpoint packet
	// rates of a multi-endpoint workload cell — their ratio is the
	// bandwidth-partitioning fairness of a shared uplink.
	MetricEPPSMin = "eppsmin"
	MetricEPPSMax = "eppsmax"
	// MetricReplays/Timeouts/Retrains are the fault-injection event
	// counts summed over endpoints (see internal/fault); the indexed
	// forms "replays<i>"/"timeouts<i>"/"retrains<i>" name endpoint
	// i's count.
	MetricReplays  = "replays"
	MetricTimeouts = "timeouts"
	MetricRetrains = "retrains"
)

// queuePPSIndex parses the dynamic "qpps<i>" metric naming queue i's
// packet rate.
func queuePPSIndex(metric string) (int, bool) {
	return indexedMetric(metric, "qpps")
}

// endpointPPSIndex parses the dynamic "epps<i>" metric naming endpoint
// i's packet rate.
func endpointPPSIndex(metric string) (int, bool) {
	return indexedMetric(metric, "epps")
}

func indexedMetric(metric, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(metric, prefix)
	if !ok || rest == "" {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// faultMetricIndex parses the dynamic per-endpoint fault metrics
// ("replays<i>", "timeouts<i>", "retrains<i>"), returning the base
// metric name and the endpoint index.
func faultMetricIndex(metric string) (base string, ep int, ok bool) {
	for _, b := range []string{MetricReplays, MetricTimeouts, MetricRetrains} {
		if i, match := indexedMetric(metric, b); match {
			return b, i, true
		}
	}
	return "", 0, false
}

// validMetric reports whether a probe metric name is known.
func validMetric(m string) bool {
	switch m {
	case "", MetricMedian, MetricGbps, MetricFrac, MetricCDF,
		MetricPPS, MetricP50, MetricP99, MetricP999,
		MetricEPPSMin, MetricEPPSMax,
		MetricReplays, MetricTimeouts, MetricRetrains:
		return true
	}
	if _, ok := queuePPSIndex(m); ok {
		return true
	}
	if _, ok := endpointPPSIndex(m); ok {
		return true
	}
	_, _, ok := faultMetricIndex(m)
	return ok
}

// Seed modes.
const (
	// SeedPerCell derives a decorrelated seed per cell from the base
	// seed and the cell index (the default): every cell is an
	// independent experiment, reproducible at any worker count.
	SeedPerCell = "per-cell"
	// SeedFixed builds every cell from the same base seed, like the
	// paper figures which rebuild one calibrated instance per point.
	SeedFixed = "fixed"
)

// Axis is one named dimension of a sweep grid. Values are strings so
// axes round-trip through JSON and CLI overrides; they are parsed
// according to the axis name (sizes accept K/M/G suffixes, booleans
// accept true/false/on/off/1/0).
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// IntAxis builds an axis over integer values.
func IntAxis(name string, values ...int) Axis {
	a := Axis{Name: name}
	for _, v := range values {
		a.Values = append(a.Values, strconv.Itoa(v))
	}
	return a
}

// StrAxis builds an axis over string values.
func StrAxis(name string, values ...string) Axis {
	return Axis{Name: name, Values: values}
}

// Probe is one measurement taken per cell: parameter overrides applied
// on top of the cell's assignment, and the metric to extract. A spec
// with no probes measures the cell itself once.
type Probe struct {
	// Label names the probe's column in emitted grids; defaults to
	// "<bench>:<metric>".
	Label string `json:"label,omitempty"`
	// Set overrides cell parameters for this probe (same keys as axes).
	Set map[string]string `json:"set,omitempty"`
	// Metric selects the extracted value: median, gbps, frac or cdf.
	// Defaults by benchmark kind (latency -> median, bandwidth -> gbps,
	// loopback -> median).
	Metric string `json:"metric,omitempty"`
}

// Contrast turns a sweep into a differential experiment: every probe
// runs once as configured (baseline) and once with Set applied
// (perturbed), and the cell value is the reduction of the two — the
// shape of the paper's NUMA (Fig 8) and IOMMU (Fig 9) experiments.
type Contrast struct {
	// Label names the perturbation in emitted grids.
	Label string `json:"label,omitempty"`
	// Set is the perturbed configuration delta (e.g. {"node": "1"} or
	// {"iommu": "true"}).
	Set map[string]string `json:"set"`
	// Reduce combines baseline and perturbed values: "pct_delta"
	// (default, 100*(perturbed-base)/base) or "delta" (perturbed-base).
	Reduce string `json:"reduce,omitempty"`
}

// SpecVersion is the current Spec wire-format version. The JSON
// contract is versioned and strict: documents carry a "version" field
// (legacy version-less documents are accepted as version 1), unknown
// fields are rejected with an error naming the valid keys, and a
// document written by a newer format version fails loudly instead of
// being half-understood. Bump this only when the wire format changes
// incompatibly.
const SpecVersion = 1

// Spec is one declarative sweep: a named grid of cells with the
// measurements to take in each.
type Spec struct {
	// Version is the wire-format version of the document (see
	// SpecVersion); 0 means a legacy version-less document and is
	// equivalent to 1.
	Version     int    `json:"version,omitempty"`
	Name        string `json:"name"`
	Title       string `json:"title,omitempty"`
	Description string `json:"description,omitempty"`

	// XAxis names the axis emitters treat as the x coordinate;
	// XLabel/YLabel annotate rendered output.
	XAxis  string `json:"x_axis,omitempty"`
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`

	// Axes span the grid; cells enumerate in cross-product order with
	// the first axis outermost.
	Axes []Axis `json:"axes"`
	// Base holds cell parameters common to the whole grid (same keys
	// as axes); axis values override base, probe sets override both.
	Base map[string]string `json:"base,omitempty"`
	// Probes are the per-cell measurements (default: one probe of the
	// cell itself).
	Probes []Probe `json:"probes,omitempty"`
	// SharedInstance runs all probes of a cell against one simulator
	// instance built from the cell's parameters, in probe order — the
	// paper's per-point runs that measure several benchmarks on one
	// freshly booted system (Fig 7). Probe sets may then only change
	// bench.Params-level keys, not system options.
	SharedInstance bool `json:"shared_instance,omitempty"`
	// Contrast, when set, makes every value differential; incompatible
	// with SharedInstance.
	Contrast *Contrast `json:"contrast,omitempty"`

	// SeedMode is SeedPerCell (default) or SeedFixed; Seed is the base
	// seed (a "seed" key in Base or an axis overrides it; 0 means 1).
	SeedMode string `json:"seed_mode,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// Cell is one fully resolved grid point.
type Cell struct {
	// Index is the cell's position in cross-product enumeration order;
	// per-cell seeds and result slots derive from it.
	Index int
	// Coord holds the cell's axis values, aligned with Spec.Axes.
	Coord []string
	// KV is the merged parameter assignment (base plus axis values).
	KV map[string]string
}

// Get returns the cell's value for a parameter (axis or base key).
func (c Cell) Get(key string) string { return c.KV[key] }

// Int returns the cell's value parsed as a size (K/M/G suffixes
// allowed); 0 when absent or unparsable (expansion validates values,
// so figure-assembly callers need no error path).
func (c Cell) Int(key string) int {
	v, err := ParseSize(c.KV[key])
	if err != nil {
		return 0
	}
	return v
}

// Config is a cell's resolved execution configuration.
type Config struct {
	System string
	Bench  string
	Params bench.Params
	Opt    sysconf.Options
	// Workload configures the traffic engine when Bench is
	// BenchWorkload; other benchmarks ignore it.
	Workload workload.Config
	// Shape selects the PCIe topology (endpoint count, shared switch
	// uplink, socket placement); the zero value is the paper's
	// single-adapter form.
	Shape topo.Shape
	// P2P selects the transfer path of a BenchP2P cell ("direct" or
	// "bounce").
	P2P string
}

// usesFabric reports whether the cell needs a multi-endpoint fabric
// rather than the degenerate single-endpoint instance.
func (c *Config) usesFabric() bool {
	return c.Bench == BenchP2P || !c.Shape.Degenerate()
}

// ParseSize parses an integer with an optional K/M/G binary suffix
// ("8K" -> 8192).
func ParseSize(s string) (int, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("sweep: bad size %q", s)
	}
	return v * mult, nil
}

// ParseDuration parses a simulated duration: a decimal number with an
// optional ps/ns/us/ms/s suffix (a bare number means nanoseconds).
// Used by the fault keys (cto=, retrain=) and the CLI fault flags.
func ParseDuration(s string) (sim.Time, error) {
	t := strings.TrimSpace(s)
	unit := sim.Nanosecond
	switch {
	case strings.HasSuffix(t, "ps"):
		unit, t = sim.Picosecond, strings.TrimSuffix(t, "ps")
	case strings.HasSuffix(t, "ns"):
		unit, t = sim.Nanosecond, strings.TrimSuffix(t, "ns")
	case strings.HasSuffix(t, "us"):
		unit, t = sim.Microsecond, strings.TrimSuffix(t, "us")
	case strings.HasSuffix(t, "ms"):
		unit, t = sim.Millisecond, strings.TrimSuffix(t, "ms")
	case strings.HasSuffix(t, "s"):
		unit, t = sim.Second, strings.TrimSuffix(t, "s")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("sweep: bad duration %q", s)
	}
	return sim.Time(v * float64(unit)), nil
}

// ParseBER parses a link bit error rate: a float in [0, 1). Used by
// the ber= fault key and the CLI fault flags.
func ParseBER(s string) (float64, error) {
	b, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || b < 0 || b >= 1 {
		return 0, fmt.Errorf("sweep: bit error rate %q outside [0, 1)", s)
	}
	return b, nil
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "true", "on", "1", "yes":
		return true, nil
	case "false", "off", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("sweep: bad boolean %q", s)
}

// The known parameter keys, grouped by the layer they configure. The
// groups drive the unknown-key error messages: a cell whose benchmark
// kind is known lists only the keys that kind accepts.
var (
	// systemKeys configure the simulator instance (sysconf.Options and
	// the link) and apply to every benchmark kind.
	systemKeys = []string{
		"bench", "ber", "buffer", "cto", "gen", "iommu", "iommuscope",
		"lanes", "mps", "mrrs", "n", "node", "nojitter", "retrain",
		"seed", "sp", "system", "warmup",
	}
	// microKeys are the pcie-bench micro-benchmark parameters
	// (bench.Params) of the latency/bandwidth/loopback kinds.
	microKeys = []string{
		"cache", "direct", "offset", "pattern", "transfer", "window",
	}
	// workloadKeys configure the multi-queue traffic engine.
	workloadKeys = []string{
		"arrival", "descbatch", "doorbell", "flows", "inflight",
		"intrmod", "nic", "queues", "sizes", "transfer", "wbbatch",
	}
	// topoKeys select the PCIe topology; valid for the workload and
	// p2p kinds.
	topoKeys = []string{"buffers", "endpoints", "socket", "switch"}
	// p2pKeys apply only to the p2p kind.
	p2pKeys = []string{"p2p", "transfer"}
)

// mergeKeys dedups and sorts the union of key groups.
func mergeKeys(groups ...[]string) []string {
	seen := map[string]bool{}
	var all []string
	for _, group := range groups {
		for _, k := range group {
			if !seen[k] {
				seen[k] = true
				all = append(all, k)
			}
		}
	}
	sort.Strings(all)
	return all
}

// knownKeys lists every parameter a cell assignment may set, for
// override validation.
var knownKeys = mergeKeys(systemKeys, microKeys, workloadKeys, topoKeys, p2pKeys)

func isKnownKey(k string) bool {
	for _, known := range knownKeys {
		if k == known {
			return true
		}
	}
	return false
}

// keysFor lists the keys valid for one benchmark kind, sorted.
func keysFor(benchKind string) []string {
	switch benchKind {
	case BenchWorkload:
		return mergeKeys(systemKeys, workloadKeys, topoKeys)
	case BenchP2P:
		return mergeKeys(systemKeys, topoKeys, p2pKeys)
	case BenchLatRd, BenchLatWrRd, BenchBwRd, BenchBwWr, BenchBwRdWr, BenchLoopback:
		return mergeKeys(systemKeys, microKeys)
	default:
		return knownKeys
	}
}

// unknownKeyErr builds the unknown-parameter error: when the cell's
// benchmark kind is known, it lists exactly the keys that kind
// accepts; otherwise it lists every group.
func unknownKeyErr(benchKind string) error {
	if benchKind != "" {
		return fmt.Errorf("unknown parameter for bench %q (valid: %s)",
			benchKind, strings.Join(keysFor(benchKind), " "))
	}
	return fmt.Errorf("unknown parameter (system/link: %s | micro-bench: %s | workload: %s | topology: %s | p2p: %s)",
		strings.Join(systemKeys, " "), strings.Join(microKeys, " "),
		strings.Join(workloadKeys, " "), strings.Join(topoKeys, " "),
		strings.Join(p2pKeys, " "))
}

// optLevelKeys are the parameters that change how a simulator instance
// is built (sysconf.Options and the link), as opposed to the
// bench.Params of a run. Probe sets under SharedInstance may not touch
// them: the shared instance is built once from the cell assignment.
var optLevelKeys = map[string]bool{
	"system": true, "seed": true, "buffer": true, "node": true,
	"iommu": true, "iommuscope": true, "sp": true, "nojitter": true,
	"gen": true, "lanes": true, "mps": true, "mrrs": true,
	"endpoints": true, "switch": true, "socket": true, "p2p": true,
	"buffers": true,
	"ber":     true, "cto": true, "retrain": true,
}

// resolveConfig turns a merged key/value assignment into an executable
// configuration. Link-level keys (gen, lanes, mps, mrrs) modify a copy
// of the paper's default Gen3 x8 link; when none is present the
// instance keeps its built-in default.
func resolveConfig(kv map[string]string) (Config, error) {
	cfg := Config{System: "NFP6000-HSW", Bench: BenchLatRd}
	var link *pcie.LinkConfig
	ensureLink := func() *pcie.LinkConfig {
		if link == nil {
			l := pcie.DefaultGen3x8()
			link = &l
		}
		return link
	}
	// Faults stay nil unless a fault key arms a non-zero knob, so
	// ber=0 cells build the exact fault-free instance.
	var faults *fault.Config
	ensureFaults := func() *fault.Config {
		if faults == nil {
			faults = &fault.Config{}
		}
		return faults
	}

	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := kv[k]
		var err error
		switch k {
		case "system":
			cfg.System = v
		case "bench":
			switch strings.ToLower(v) {
			case BenchLatRd, BenchLatWrRd, BenchBwRd, BenchBwWr, BenchBwRdWr, BenchLoopback, BenchWorkload, BenchP2P:
				cfg.Bench = strings.ToLower(v)
			default:
				err = fmt.Errorf("unknown benchmark %q", v)
			}
		case "window":
			cfg.Params.WindowSize, err = ParseSize(v)
		case "transfer":
			cfg.Params.TransferSize, err = ParseSize(v)
		case "offset":
			cfg.Params.Offset, err = ParseSize(v)
		case "n":
			cfg.Params.Transactions, err = ParseSize(v)
		case "warmup":
			cfg.Params.Warmup, err = ParseSize(v)
		case "pattern":
			switch strings.ToLower(v) {
			case "rand":
				cfg.Params.Pattern = bench.Random
			case "seq":
				cfg.Params.Pattern = bench.Sequential
			default:
				err = fmt.Errorf("unknown pattern %q", v)
			}
		case "cache":
			switch strings.ToLower(v) {
			case "cold":
				cfg.Params.Cache = bench.Cold
			case "warm":
				cfg.Params.Cache = bench.HostWarm
			case "devwarm":
				cfg.Params.Cache = bench.DeviceWarm
			default:
				err = fmt.Errorf("unknown cache state %q", v)
			}
		case "direct":
			cfg.Params.Direct, err = parseBool(v)
		case "node":
			cfg.Opt.BufferNode, err = ParseSize(v)
		case "iommu":
			cfg.Opt.IOMMU, err = parseBool(v)
		case "iommuscope":
			cfg.Opt.IOMMUScope, err = topo.ParseIOMMUScope(v)
		case "sp":
			cfg.Opt.SuperPages, err = parseBool(v)
		case "nojitter":
			cfg.Opt.NoJitter, err = parseBool(v)
		case "ber":
			var b float64
			if b, err = ParseBER(v); err == nil && b > 0 {
				ensureFaults().BER = b
			}
		case "cto":
			var d sim.Time
			if d, err = ParseDuration(v); err == nil && d > 0 {
				ensureFaults().CTO = d
			}
		case "retrain":
			var d sim.Time
			if d, err = ParseDuration(v); err == nil && d > 0 {
				ensureFaults().RetrainMTBF = d
			}
		case "buffer":
			cfg.Opt.BufferSize, err = ParseSize(v)
		case "seed":
			var n int
			n, err = ParseSize(v)
			cfg.Opt.Seed = int64(n)
		case "gen":
			var n int
			if n, err = ParseSize(v); err == nil {
				ensureLink().Gen = pcie.Generation(n)
			}
		case "lanes":
			var n int
			if n, err = ParseSize(v); err == nil {
				ensureLink().Lanes = n
			}
		case "mps":
			var n int
			if n, err = ParseSize(v); err == nil {
				ensureLink().MPS = n
			}
		case "mrrs":
			var n int
			if n, err = ParseSize(v); err == nil {
				ensureLink().MRRS = n
			}
		case "queues":
			cfg.Workload.Queues, err = ParseSize(v)
		case "flows":
			cfg.Workload.Flows, err = ParseSize(v)
		case "inflight":
			cfg.Workload.Window, err = ParseSize(v)
		case "sizes":
			cfg.Workload.Sizes, err = workload.ParseSizeDist(v)
		case "arrival":
			cfg.Workload.Arrival, err = workload.ParseArrival(v)
		case "nic":
			cfg.Workload.Design, err = workload.DesignByName(strings.ToLower(v))
		case "doorbell":
			cfg.Workload.Moderation.DoorbellBatch, err = ParseSize(v)
		case "descbatch":
			cfg.Workload.Moderation.DescBatch, err = ParseSize(v)
		case "wbbatch":
			cfg.Workload.Moderation.WriteBackBatch, err = ParseSize(v)
		case "intrmod":
			// "poll" strips interrupts and register reads entirely.
			if strings.ToLower(v) == "poll" {
				cfg.Workload.Moderation.IntrEvery = -1
			} else {
				cfg.Workload.Moderation.IntrEvery, err = ParseSize(v)
			}
		case "endpoints":
			var n int
			if n, err = ParseSize(v); err == nil {
				if n < 1 {
					err = fmt.Errorf("endpoint count %d", n)
				} else {
					cfg.Shape.Endpoints = n
				}
			}
		case "switch":
			cfg.Shape.Switch, err = topo.ParseSwitch(v)
		case "socket":
			cfg.Shape.Placement = strings.ToLower(strings.TrimSpace(v))
		case "buffers":
			switch strings.ToLower(strings.TrimSpace(v)) {
			case "", "shared", "default":
				cfg.Shape.LocalBuffers = false
			case "local":
				cfg.Shape.LocalBuffers = true
			default:
				err = fmt.Errorf("buffer placement %q (want shared or local)", v)
			}
		case "p2p":
			switch strings.ToLower(v) {
			case topo.P2PDirect, topo.P2PBounce:
				cfg.P2P = strings.ToLower(v)
			default:
				err = fmt.Errorf("p2p mode %q (want %s or %s)", v, topo.P2PDirect, topo.P2PBounce)
			}
		default:
			err = unknownKeyErr(strings.ToLower(kv["bench"]))
		}
		if err != nil {
			return Config{}, fmt.Errorf("sweep: %s=%q: %w", k, v, err)
		}
	}
	if link != nil {
		if err := link.Validate(); err != nil {
			return Config{}, fmt.Errorf("sweep: link: %w", err)
		}
		cfg.Opt.Link = link
	}
	cfg.Opt.Faults = faults
	sys, err := sysconf.ByName(cfg.System)
	if err != nil {
		return Config{}, err
	}
	// Topology defaults and cross-key rules. BenchP2P needs two
	// endpoints and defaults to a shared switch and the direct path;
	// topology keys on the single-flow micro-benchmarks would silently
	// measure endpoint 0 only, so they are rejected there.
	if cfg.Bench == BenchP2P {
		if cfg.Shape.Endpoints == 0 {
			cfg.Shape.Endpoints = 2
		}
		if cfg.Shape.Endpoints < 2 {
			return Config{}, fmt.Errorf("sweep: bench p2p needs endpoints >= 2, got %d", cfg.Shape.Endpoints)
		}
		// Default to a shared switch, except under split placement
		// (which requires direct attachment to both sockets).
		if _, hasSwitch := kv["switch"]; !hasSwitch && cfg.Shape.Placement != "split" {
			l := pcie.DefaultGen3x8()
			cfg.Shape.Switch = &l
		}
		if cfg.P2P == "" {
			cfg.P2P = topo.P2PDirect
		}
	} else {
		if cfg.P2P != "" {
			return Config{}, fmt.Errorf("sweep: p2p=%q only applies to bench=p2p (valid p2p keys: %s)", cfg.P2P, strings.Join(keysFor(BenchP2P), " "))
		}
		if !cfg.Shape.Degenerate() && cfg.Bench != BenchWorkload {
			return Config{}, fmt.Errorf("sweep: topology keys (buffers/endpoints/switch/socket) apply to bench=workload or bench=p2p, not %q", cfg.Bench)
		}
	}
	if err := cfg.Shape.Validate(sys.Nodes); err != nil {
		return Config{}, err
	}
	if cfg.Bench == BenchWorkload {
		// A "transfer" key doubles as the fixed frame size when no
		// distribution is declared.
		if cfg.Workload.Sizes == nil && cfg.Params.TransferSize > 0 {
			cfg.Workload.Sizes = workload.FixedSize(cfg.Params.TransferSize)
		}
		// Fail at validation time if the queue regions overflow the
		// host buffer.
		cfg.Workload.BufferBytes = cfg.Opt.BufferSize
		if cfg.Workload.BufferBytes == 0 {
			cfg.Workload.BufferBytes = sysconf.DefaultBufferSize
		}
		if err := cfg.Workload.Validate(); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// Count returns how many cells the grid expands to.
func (s *Spec) Count() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// Cells expands the grid into its deterministic enumeration order: the
// cross product of the axes with the first axis outermost.
func (s *Spec) Cells() []Cell {
	cells := make([]Cell, 0, s.Count())
	coord := make([]string, len(s.Axes))
	var expand func(depth int)
	expand = func(depth int) {
		if depth == len(s.Axes) {
			kv := make(map[string]string, len(s.Base)+len(coord))
			for k, v := range s.Base {
				kv[k] = v
			}
			for i, a := range s.Axes {
				kv[a.Name] = coord[i]
			}
			cells = append(cells, Cell{
				Index: len(cells),
				Coord: append([]string(nil), coord...),
				KV:    kv,
			})
			return
		}
		for _, v := range s.Axes[depth].Values {
			coord[depth] = v
			expand(depth + 1)
		}
	}
	expand(0)
	return cells
}

// probes returns the effective probe list (one default probe when none
// is declared).
func (s *Spec) probes() []Probe {
	if len(s.Probes) > 0 {
		return s.Probes
	}
	return []Probe{{}}
}

// metricFor resolves a probe's metric for a benchmark kind.
func metricFor(p Probe, benchKind string) string {
	if p.Metric != "" {
		return p.Metric
	}
	switch benchKind {
	case BenchBwRd, BenchBwWr, BenchBwRdWr:
		return MetricGbps
	case BenchWorkload:
		return MetricPPS
	default:
		return MetricMedian
	}
}

// ProbeLabels returns one unique column label per probe.
func (s *Spec) ProbeLabels() []string {
	probes := s.probes()
	labels := make([]string, len(probes))
	seen := map[string]int{}
	for i, p := range probes {
		label := p.Label
		if label == "" {
			kv := s.mergedKV(nil, p.Set)
			switch kind, ok := kv["bench"]; {
			case ok:
				label = kind + ":" + metricFor(p, kind)
			case s.axis("bench") != nil:
				// The benchmark varies per cell; no single kind names
				// the column.
				label = "value"
			default:
				label = BenchLatRd + ":" + metricFor(p, BenchLatRd)
			}
		}
		if n := seen[label]; n > 0 {
			labels[i] = fmt.Sprintf("%s#%d", label, n+1)
		} else {
			labels[i] = label
		}
		seen[label]++
	}
	return labels
}

// mergedKV layers base, an optional cell assignment and an optional
// probe/contrast set (later wins).
func (s *Spec) mergedKV(cell map[string]string, set map[string]string) map[string]string {
	kv := make(map[string]string, len(s.Base)+len(cell)+len(set))
	for k, v := range s.Base {
		kv[k] = v
	}
	for k, v := range cell {
		kv[k] = v
	}
	for k, v := range set {
		kv[k] = v
	}
	return kv
}

// Validate checks the whole grid: axis shape, key names, every cell's
// (and probe's, and contrast's) resolved configuration, metrics and
// reduction. A valid spec cannot fail cell resolution at run time.
func (s *Spec) Validate() error {
	if s.Version != 0 && s.Version != SpecVersion {
		return fmt.Errorf("sweep: spec %q: unsupported wire format version %d (this build speaks version %d; legacy version-less specs are read as version 1)",
			s.Name, s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("sweep: spec needs a name")
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: spec %q has no axes", s.Name)
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if a.Name == "" || len(a.Values) == 0 {
			return fmt.Errorf("sweep: spec %q: axis %q needs a name and values", s.Name, a.Name)
		}
		if !isKnownKey(a.Name) {
			return fmt.Errorf("sweep: spec %q: axis %q: unknown parameter (known: %s)",
				s.Name, a.Name, strings.Join(knownKeys, " "))
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep: spec %q: duplicate axis %q", s.Name, a.Name)
		}
		seen[a.Name] = true
	}
	for k := range s.Base {
		if !isKnownKey(k) {
			return fmt.Errorf("sweep: spec %q: base key %q: unknown parameter (known: %s)",
				s.Name, k, strings.Join(knownKeys, " "))
		}
	}
	switch s.SeedMode {
	case "", SeedPerCell, SeedFixed:
	default:
		return fmt.Errorf("sweep: spec %q: seed_mode must be %q or %q", s.Name, SeedPerCell, SeedFixed)
	}
	if s.Contrast != nil {
		if s.SharedInstance {
			return fmt.Errorf("sweep: spec %q: contrast and shared_instance are incompatible", s.Name)
		}
		if len(s.Contrast.Set) == 0 {
			return fmt.Errorf("sweep: spec %q: contrast needs a non-empty set", s.Name)
		}
		if _, ok := s.Contrast.Set["bench"]; ok {
			// A contrast perturbs the system under a fixed measurement;
			// comparing different benchmarks' metrics is meaningless —
			// use separate probes instead.
			return fmt.Errorf("sweep: spec %q: contrast may not change \"bench\"", s.Name)
		}
		switch s.Contrast.Reduce {
		case "", "pct_delta", "delta":
		default:
			return fmt.Errorf("sweep: spec %q: unknown reduce %q", s.Name, s.Contrast.Reduce)
		}
	}
	for _, p := range s.probes() {
		if !validMetric(p.Metric) {
			return fmt.Errorf("sweep: spec %q: unknown metric %q", s.Name, p.Metric)
		}
		if s.SharedInstance {
			for k := range p.Set {
				if optLevelKeys[k] {
					return fmt.Errorf("sweep: spec %q: probe set key %q rebuilds the instance; shared_instance probes may only change benchmark parameters", s.Name, k)
				}
			}
		}
	}
	for _, c := range s.Cells() {
		for pi, p := range s.probes() {
			kv := s.mergedKV(c.KV, p.Set)
			cfg, err := resolveConfig(kv)
			if err != nil {
				return fmt.Errorf("sweep: spec %q cell %d probe %d: %w", s.Name, c.Index, pi, err)
			}
			if s.SharedInstance && cfg.usesFabric() {
				return fmt.Errorf("sweep: spec %q cell %d: shared_instance cells cannot use multi-endpoint topologies", s.Name, c.Index)
			}
			if s.Contrast != nil {
				if _, err := resolveConfig(s.mergedKV(kv, s.Contrast.Set)); err != nil {
					return fmt.Errorf("sweep: spec %q cell %d probe %d contrast: %w", s.Name, c.Index, pi, err)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy, so overrides never mutate registered
// specs.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Axes = make([]Axis, len(s.Axes))
	for i, a := range s.Axes {
		c.Axes[i] = Axis{Name: a.Name, Values: append([]string(nil), a.Values...)}
	}
	c.Base = cloneMap(s.Base)
	c.Probes = make([]Probe, len(s.Probes))
	for i, p := range s.Probes {
		c.Probes[i] = Probe{Label: p.Label, Set: cloneMap(p.Set), Metric: p.Metric}
	}
	if s.Contrast != nil {
		cc := *s.Contrast
		cc.Set = cloneMap(s.Contrast.Set)
		c.Contrast = &cc
	}
	return &c
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ApplyOverrides adjusts the spec from CLI "name=v1,v2,..." arguments:
// an existing axis has its values replaced; a multi-value override on a
// non-axis key adds a new (innermost) axis; a single value sets a base
// parameter. Applied in argument order on the receiver.
func (s *Spec) ApplyOverrides(args []string) error {
	for _, arg := range args {
		name, vals, ok := strings.Cut(arg, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || strings.TrimSpace(vals) == "" {
			return fmt.Errorf("sweep: bad override %q (want name=v1,v2,...)", arg)
		}
		if !isKnownKey(name) {
			return fmt.Errorf("sweep: override %q: unknown parameter (known: %s)",
				name, strings.Join(knownKeys, " "))
		}
		values := strings.Split(vals, ",")
		for i := range values {
			values[i] = strings.TrimSpace(values[i])
		}
		if ax := s.axis(name); ax != nil {
			ax.Values = values
			continue
		}
		if len(values) > 1 {
			s.Axes = append(s.Axes, Axis{Name: name, Values: values})
			continue
		}
		if s.Base == nil {
			s.Base = map[string]string{}
		}
		s.Base[name] = values[0]
	}
	return nil
}

func (s *Spec) axis(name string) *Axis {
	for i := range s.Axes {
		if s.Axes[i].Name == name {
			return &s.Axes[i]
		}
	}
	return nil
}

// specJSONKeys lists the valid top-level keys of the Spec wire format,
// derived from the struct tags so the error message can never drift
// from the type.
func specJSONKeys() []string {
	t := reflect.TypeOf(Spec{})
	keys := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if tag != "" && tag != "-" {
			keys = append(keys, tag)
		}
	}
	return keys
}

// Decode reads a Spec from the versioned JSON wire format, rejecting
// unknown fields so typos in hand-written spec files fail loudly —
// with an error naming the valid keys, the same shape as the engine's
// unknown-parameter errors. Legacy version-less documents decode as
// version 1; documents from a newer format version are rejected by
// Validate.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		if field, ok := unknownFieldName(err); ok {
			return nil, fmt.Errorf("sweep: decode spec: unknown field %s (valid keys: %s)",
				field, strings.Join(specJSONKeys(), " "))
		}
		return nil, fmt.Errorf("sweep: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// unknownFieldName extracts the offending field from an
// encoding/json DisallowUnknownFields error. The error is unexported
// and untyped upstream, so the text is the only handle; if its shape
// ever changes we fall back to the raw error, never misreport.
func unknownFieldName(err error) (string, bool) {
	const marker = "unknown field "
	msg := err.Error()
	i := strings.LastIndex(msg, marker)
	if i < 0 {
		return "", false
	}
	return msg[i+len(marker):], true
}
