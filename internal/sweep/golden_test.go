package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRoundTrip is the spec round-trip contract: JSON-decode ->
// expand -> run -> emit produces identical cells and stable ordering
// at every given worker count, and the emitted TSV matches the
// checked-in golden file. Regenerate with `go test ./internal/sweep
// -run Golden -update`.
func goldenRoundTrip(t *testing.T, specFile, goldenFile string, workers []int) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", specFile))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// The spec survives a marshal/decode cycle with an identical grid.
	reencoded, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Decode(bytes.NewReader(reencoded))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Cells(), spec2.Cells()) {
		t.Fatal("cells differ after JSON round trip")
	}

	// Execution and every emitter are byte-stable at any worker count.
	outputs := map[string]string{}
	for _, w := range workers {
		res, err := spec.Run(context.Background(), RunOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Cells {
			if c.Cell.Index != i {
				t.Fatalf("workers=%d: cell %d carries index %d", w, i, c.Cell.Index)
			}
		}
		for _, format := range Formats() {
			emit, err := EmitterFor(format)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := emit(&buf, res); err != nil {
				t.Fatal(err)
			}
			if prev, seen := outputs[format]; seen && prev != buf.String() {
				t.Errorf("workers=%d: %s output differs from workers=%d:\n%s\n--- vs ---\n%s",
					w, format, workers[0], buf.String(), prev)
			}
			outputs[format] = buf.String()
		}
	}

	golden := filepath.Join("testdata", goldenFile)
	if *update {
		if err := os.WriteFile(golden, []byte(outputs["tsv"]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if outputs["tsv"] != string(want) {
		t.Errorf("TSV output diverged from %s:\n%s\n--- want ---\n%s",
			golden, outputs["tsv"], want)
	}
}

func TestSpecGoldenRoundTrip(t *testing.T) {
	goldenRoundTrip(t, "tiny.json", "tiny.golden.tsv", []int{1, 4, 7})
}

// TestWorkloadGoldenRoundTrip pins the multi-queue traffic engine end
// to end: a queues x arrival grid with per-queue packet-rate and
// latency-percentile columns must emit byte-identically at workers
// 1, 4 and 7 and match the checked-in golden TSV.
func TestWorkloadGoldenRoundTrip(t *testing.T) {
	goldenRoundTrip(t, "workload.json", "workload.golden.tsv", []int{1, 4, 7})
}

// TestWorkloadParallelismByteIdentity drives the same workload sweep
// at every pool size from 1 to 16 (beyond the 6-cell grid, so
// oversubscription is covered too): the emitted bytes must be
// identical for every worker count, the invariant the parallel runner
// guarantees. Exhaustive beats sampled here — the grid is cheap and a
// failure pins the exact worker count.
func TestWorkloadParallelismByteIdentity(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "workload.json"))
	if err != nil {
		t.Fatal(err)
	}
	runTSV := func(workers int) string {
		spec, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		res, err := spec.Run(context.Background(), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		emit, err := EmitterFor("tsv")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := emit(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := runTSV(1)
	for w := 2; w <= 16; w++ {
		if got := runTSV(w); got != base {
			t.Errorf("workers=%d output differs from workers=1:\n%s\n--- vs ---\n%s", w, got, base)
		}
	}
}
