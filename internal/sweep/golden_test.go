package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSpecGoldenRoundTrip is the spec round-trip contract: JSON-decode
// -> expand -> run -> emit produces identical cells and stable
// ordering at every worker count, and the emitted TSV matches the
// checked-in golden file. Regenerate with `go test ./internal/sweep
// -run Golden -update`.
func TestSpecGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// The spec survives a marshal/decode cycle with an identical grid.
	reencoded, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Decode(bytes.NewReader(reencoded))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Cells(), spec2.Cells()) {
		t.Fatal("cells differ after JSON round trip")
	}

	// Execution and every emitter are byte-stable at any worker count.
	outputs := map[string]string{}
	for _, workers := range []int{1, 4, 7} {
		res, err := spec.Run(context.Background(), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Cells {
			if c.Cell.Index != i {
				t.Fatalf("workers=%d: cell %d carries index %d", workers, i, c.Cell.Index)
			}
		}
		for _, format := range Formats() {
			emit, err := EmitterFor(format)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := emit(&buf, res); err != nil {
				t.Fatal(err)
			}
			if prev, seen := outputs[format]; seen && prev != buf.String() {
				t.Errorf("workers=%d: %s output differs from workers=1:\n%s\n--- vs ---\n%s",
					workers, format, buf.String(), prev)
			}
			outputs[format] = buf.String()
		}
	}

	golden := filepath.Join("testdata", "tiny.golden.tsv")
	if *update {
		if err := os.WriteFile(golden, []byte(outputs["tsv"]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if outputs["tsv"] != string(want) {
		t.Errorf("TSV output diverged from %s:\n%s\n--- want ---\n%s",
			golden, outputs["tsv"], want)
	}
}
