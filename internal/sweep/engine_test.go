package sweep

import (
	"bytes"
	"context"
	"testing"

	"pciebench/internal/cache"
)

// engineSpec is a small two-axis grid for cache-accounting tests:
// 2 transfers x 2 cache states = 4 fast latency cells.
func engineSpec() *Spec {
	return &Spec{
		Name: "engine-test",
		Axes: []Axis{
			StrAxis("transfer", "64", "128"),
			StrAxis("cache", "warm", "cold"),
		},
		Base: map[string]string{"bench": "lat_rd", "n": "2K", "window": "8K"},
	}
}

func engineTSV(t *testing.T, res *Result) string {
	t.Helper()
	emit, err := EmitterFor("tsv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestEngineIdenticalResubmit pins the headline cache property: the
// second run of an identical spec executes zero cells and still emits
// byte-identical output.
func TestEngineIdenticalResubmit(t *testing.T) {
	store := cache.NewMemory()
	e := &Engine{Workers: 3, Cache: store, Build: "test"}

	res1, stats1, err := e.Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Cells != 4 || stats1.Executed != 4 || stats1.Hits != 0 {
		t.Fatalf("cold run stats = %+v, want 4 cells all executed", stats1)
	}
	if store.Len() != 4 {
		t.Fatalf("store holds %d entries, want 4", store.Len())
	}

	res2, stats2, err := e.Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.Hits != 4 {
		t.Fatalf("warm run stats = %+v, want 0 executed / 4 hits", stats2)
	}
	if got, want := engineTSV(t, res2), engineTSV(t, res1); got != want {
		t.Errorf("cached TSV diverged from computed TSV:\n%s\n--- vs ---\n%s", got, want)
	}
}

// TestEngineOneAxisChange pins the incremental property: changing one
// value of one axis recomputes only the cells that mention it.
func TestEngineOneAxisChange(t *testing.T) {
	store := cache.NewMemory()
	e := &Engine{Cache: store, Build: "test"}
	if _, _, err := e.Run(context.Background(), engineSpec()); err != nil {
		t.Fatal(err)
	}

	// Replace one value of the inner axis: cold -> devwarm. The two
	// warm cells keep their grid positions (and therefore their
	// per-cell seeds), so only the two devwarm cells are new work.
	changed := engineSpec()
	changed.Axes[1] = StrAxis("cache", "warm", "devwarm")
	_, stats, err := e.Run(context.Background(), changed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 2 || stats.Hits != 2 {
		t.Fatalf("one-axis change stats = %+v, want 2 executed / 2 hits", stats)
	}

	// Extending the outer axis appends cells; every existing cell
	// keeps its position and hits.
	extended := engineSpec()
	extended.Axes[0] = StrAxis("transfer", "64", "128", "256")
	_, stats, err = e.Run(context.Background(), extended)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 2 || stats.Hits != 4 {
		t.Fatalf("extended-axis stats = %+v, want 2 executed / 4 hits", stats)
	}
}

// TestEngineCachedByteIdentity compares an uncached run against a
// fully cached one across worker counts: the emitted bytes must be
// identical — the guarantee that lets the service answer from cache.
func TestEngineCachedByteIdentity(t *testing.T) {
	uncached := &Engine{Workers: 1}
	base, _, err := uncached.Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := engineTSV(t, base)

	store := cache.NewMemory()
	for _, workers := range []int{1, 4, 7} {
		e := &Engine{Workers: workers, Cache: store, Build: "test"}
		res, _, err := e.Run(context.Background(), engineSpec())
		if err != nil {
			t.Fatal(err)
		}
		if got := engineTSV(t, res); got != want {
			t.Errorf("workers=%d (store len %d): TSV diverged:\n%s\n--- want ---\n%s",
				workers, store.Len(), got, want)
		}
	}
}

// TestEngineBuildAndQualityPartitionCache: results from another build
// or another quality level must never be served.
func TestEngineBuildAndQualityPartitionCache(t *testing.T) {
	store := cache.NewMemory()
	run := func(build string, q Quality) Stats {
		t.Helper()
		e := &Engine{Cache: store, Build: build, Quality: q}
		_, stats, err := e.Run(context.Background(), engineSpec())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	if s := run("build-a", Quick); s.Executed != 4 {
		t.Fatalf("first run: %+v", s)
	}
	if s := run("build-b", Quick); s.Executed != 4 || s.Hits != 0 {
		t.Fatalf("other build must miss: %+v", s)
	}
	if s := run("build-a", Full); s.Executed != 4 || s.Hits != 0 {
		t.Fatalf("other quality must miss: %+v", s)
	}
	if s := run("build-a", Quick); s.Hits != 4 {
		t.Fatalf("original build+quality must still hit: %+v", s)
	}
}

// TestEngineOnCellOrder verifies the streaming hook sees every cell in
// enumeration order even under a parallel pool and a half-warm cache.
func TestEngineOnCellOrder(t *testing.T) {
	store := cache.NewMemory()
	warm := &Engine{Cache: store, Build: "test"}
	if _, _, err := warm.Run(context.Background(), engineSpec()); err != nil {
		t.Fatal(err)
	}

	extended := engineSpec()
	extended.Axes[0] = StrAxis("transfer", "64", "128", "256", "512")
	var seen []int
	e := &Engine{
		Workers: 5,
		Cache:   store,
		Build:   "test",
		OnCell:  func(c CellResult) { seen = append(seen, c.Cell.Index) },
	}
	res, _, err := e.Run(context.Background(), extended)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Cells) {
		t.Fatalf("OnCell saw %d cells, want %d", len(seen), len(res.Cells))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("OnCell order %v not enumeration order", seen)
		}
	}
}

// TestEngineSeedModesKeying: under fixed seeding a cell's address
// ignores its grid position, under per-cell seeding it must not.
func TestEngineSeedModesKeying(t *testing.T) {
	s := engineSpec()
	e := &Engine{Build: "test"}
	perCell0, err := e.cellKey(s, s.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	perCell1, err := e.cellKey(s, s.Cells()[1])
	if err != nil {
		t.Fatal(err)
	}
	if perCell0 == perCell1 {
		t.Fatal("distinct cells share a cache key")
	}

	// Same cell, same spec -> same key (determinism).
	again, err := e.cellKey(s, s.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	if again != perCell0 {
		t.Fatal("cell key not deterministic")
	}

	// Fixed seeding: the key depends on parameters only, so the same
	// assignment at a different position would dedup. Simulate by
	// rebuilding the cell with a shifted index.
	fixed := engineSpec()
	fixed.SeedMode = SeedFixed
	c := fixed.Cells()[0]
	k1, err := e.cellKey(fixed, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Index = 7
	k2, err := e.cellKey(fixed, c)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("fixed-seed key depends on grid position")
	}
}

// TestEngineCorruptCacheEntry: a torn or stale blob must fall back to
// recomputation, never to a decode error or a wrong result.
func TestEngineCorruptCacheEntry(t *testing.T) {
	store := cache.NewMemory()
	e := &Engine{Cache: store, Build: "test"}
	s := engineSpec()
	key, err := e.cellKey(s, s.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	store.Put(key, []byte("not json"))

	res, stats, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 4 {
		t.Fatalf("corrupt entry should recompute: %+v", stats)
	}
	uncached, _, err := (&Engine{}).Run(context.Background(), engineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if engineTSV(t, res) != engineTSV(t, uncached) {
		t.Error("corrupt-entry run diverged from uncached run")
	}
}

// TestEngineQuarantinesCorruptEntry: with a store that supports
// quarantine (the disk cache), a corrupt blob is moved aside during
// the run, so the recomputed result lands in its slot and the next run
// is a clean cache hit rather than a repeat decode failure.
func TestEngineQuarantinesCorruptEntry(t *testing.T) {
	store, err := cache.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Cache: store, Build: "test"}
	s := engineSpec()
	key, err := e.cellKey(s, s.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	store.Put(key, []byte("not json"))

	if _, stats, err := e.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	} else if stats.Executed != 4 {
		t.Fatalf("corrupt entry should recompute: %+v", stats)
	}
	blob, ok := store.Get(key)
	if !ok {
		t.Fatal("recomputed cell not stored after quarantine")
	}
	if string(blob) == "not json" {
		t.Fatal("corrupt blob still live in the store")
	}
	if _, stats, err := e.Run(context.Background(), engineSpec()); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 4 {
		t.Fatalf("second run should hit all cells: %+v", stats)
	}
}
