package sweep

import (
	"fmt"
	"slices"

	"pciebench/internal/bench"
	"pciebench/internal/fault"
	"pciebench/internal/nicsim"
	"pciebench/internal/runner"
	"pciebench/internal/stats"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// Measurement is everything one probe observed; probes extract their
// headline value from it, figure assembly can read the rest (e.g. the
// loopback PCIe fraction, a full CDF, or the workload per-queue
// rates).
type Measurement struct {
	Median  float64
	Gbps    float64
	Frac    float64
	Summary stats.Summary
	CDF     *stats.CDF
	// PPS and QueuePPS are the workload engine's aggregate and
	// per-queue packet-pair rates.
	PPS      float64
	QueuePPS []float64
	// EndpointPPS holds the per-endpoint packet-pair rates of a
	// multi-endpoint workload cell (one entry on the degenerate form).
	EndpointPPS []float64
	// Faults holds each endpoint's fault accounting after the run;
	// nil when fault injection is disabled. On a shared instance the
	// counters are cumulative since the instance was built.
	Faults []fault.Counters
}

// Value extracts a metric from the measurement.
func (m Measurement) Value(metric string) float64 {
	switch metric {
	case MetricGbps:
		return m.Gbps
	case MetricFrac:
		return m.Frac
	case MetricPPS:
		return m.PPS
	case MetricP50:
		return m.Summary.Median
	case MetricP99:
		return m.Summary.P99
	case MetricP999:
		return m.Summary.P999
	}
	switch metric {
	case MetricEPPSMin:
		return minFloat(m.EndpointPPS)
	case MetricEPPSMax:
		return maxFloat(m.EndpointPPS)
	}
	if i, ok := queuePPSIndex(metric); ok {
		if i < len(m.QueuePPS) {
			return m.QueuePPS[i]
		}
		return 0
	}
	if i, ok := endpointPPSIndex(metric); ok {
		if i < len(m.EndpointPPS) {
			return m.EndpointPPS[i]
		}
		return 0
	}
	switch metric {
	case MetricReplays, MetricTimeouts, MetricRetrains:
		var n float64
		for i := range m.Faults {
			n += faultCount(m.Faults[i], metric)
		}
		return n
	}
	if base, i, ok := faultMetricIndex(metric); ok {
		if i < len(m.Faults) {
			return faultCount(m.Faults[i], base)
		}
		return 0
	}
	return m.Median
}

// faultCount extracts one counter from a block by base metric name.
func faultCount(c fault.Counters, base string) float64 {
	switch base {
	case MetricReplays:
		return float64(c.Replays)
	case MetricTimeouts:
		return float64(c.Timeouts)
	case MetricRetrains:
		return float64(c.Retrains)
	}
	return 0
}

func minFloat(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return slices.Min(vals)
}

func maxFloat(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return slices.Max(vals)
}

// CellResult is the outcome of one grid cell.
type CellResult struct {
	Cell Cell
	// Meas holds one measurement per probe (under Contrast, the
	// perturbed run's).
	Meas []Measurement
	// Values holds the probe values (under Contrast, the reduction of
	// baseline and perturbed).
	Values []float64
}

// Result is an executed sweep.
type Result struct {
	Spec  *Spec
	Cells []CellResult
}

// RunOptions tunes a Spec.Run call.
type RunOptions struct {
	// Workers is the runner pool size; <= 0 selects GOMAXPROCS. The
	// result is byte-identical for every value.
	Workers int
	// SimWorkers is the per-cell conservative-parallel simulation
	// budget for multi-endpoint workload fabrics; <= 1 (the default)
	// simulates serially. Like Workers, results are byte-identical for
	// every value.
	SimWorkers int
	// Quality resolves transaction counts left at zero.
	Quality Quality
	// Progress, when non-nil, receives (done, total) as cells become
	// available in enumeration order; calls are serialized.
	Progress func(done, total int)
}

// MaxSimWorkers bounds the per-simulation parallelism the run surfaces
// (CLI flags, the service's ?simworkers=) accept; islands are capped
// by the 64-endpoint shape limit, so more workers than that can never
// help.
const MaxSimWorkers = 64

// SimWorkersRange renders the accepted simworkers interval. Every
// surface that names the bound — CLI flag help, the service's 400
// response, validation errors — formats it through this one string, so
// they can never drift apart.
func SimWorkersRange() string {
	return fmt.Sprintf("[1, %d]", MaxSimWorkers)
}

// ValidateSimWorkers checks a user-supplied simulation worker count.
func ValidateSimWorkers(n int) error {
	if n < 1 || n > MaxSimWorkers {
		return fmt.Errorf("sweep: simworkers %d outside the valid range %s", n, SimWorkersRange())
	}
	return nil
}

// cellSeed resolves the seed a cell builds its instances from.
func (s *Spec) cellSeed(cfg *Config, index int) {
	base := cfg.Opt.Seed
	if base == 0 {
		base = s.Seed
	}
	if s.SeedMode == SeedFixed {
		cfg.Opt.Seed = base
		return
	}
	if base == 0 {
		base = 1
	}
	cfg.Opt.Seed = runner.Seed(base, index)
}

// runCell measures every probe of one cell.
func (s *Spec) runCell(c Cell, q Quality, simWorkers int) (CellResult, error) {
	res := CellResult{Cell: c}
	var shared *sysconf.Instance
	if s.SharedInstance {
		cfg, err := resolveConfig(c.KV)
		if err != nil {
			return res, err
		}
		s.cellSeed(&cfg, c.Index)
		shared, err = buildInstance(cfg)
		if err != nil {
			return res, err
		}
	}
	// Probes that apply no overrides and need no CDF observe the very
	// same run, so the first measurement is reused for the rest — a
	// workload cell emitting pps, p50, p99 and p99.9 columns runs the
	// traffic once, not four times. Probes with a Set (or a CDF) keep
	// their own runs, preserving the paper figures' semantics.
	var memo, memoPert *Measurement
	for pi, p := range s.probes() {
		kv := s.mergedKV(c.KV, p.Set)
		cfg, err := resolveConfig(kv)
		if err != nil {
			return res, err
		}
		s.cellSeed(&cfg, c.Index)
		metric := metricFor(p, cfg.Bench)
		if cfg.Params.Transactions == 0 {
			cfg.Params.Transactions = q.Transactions(cfg.Bench, metric)
		}
		wantCDF := metric == MetricCDF
		memoable := len(p.Set) == 0 && !wantCDF

		var m Measurement
		if memoable && memo != nil {
			m = *memo
		} else {
			m, err = measure(cfg, shared, wantCDF, simWorkers)
			if err != nil {
				return res, fmt.Errorf("sweep: %s cell %d probe %d: %w", s.Name, c.Index, pi, err)
			}
			if memoable {
				mm := m
				memo = &mm
			}
		}
		value := m.Value(metric)
		if s.Contrast != nil {
			var pm Measurement
			if memoable && memoPert != nil {
				pm = *memoPert
			} else {
				pcfg, err := resolveConfig(s.mergedKV(kv, s.Contrast.Set))
				if err != nil {
					return res, err
				}
				s.cellSeed(&pcfg, c.Index)
				if pcfg.Params.Transactions == 0 {
					pcfg.Params.Transactions = q.Transactions(pcfg.Bench, metric)
				}
				pm, err = measure(pcfg, nil, wantCDF, simWorkers)
				if err != nil {
					return res, fmt.Errorf("sweep: %s cell %d probe %d contrast: %w", s.Name, c.Index, pi, err)
				}
				if memoable {
					pmm := pm
					memoPert = &pmm
				}
			}
			base, pert := value, pm.Value(metric)
			if s.Contrast.Reduce == "delta" {
				value = pert - base
			} else {
				value = 100 * (pert - base) / base
			}
			m = pm
		}
		res.Meas = append(res.Meas, m)
		res.Values = append(res.Values, value)
	}
	return res, nil
}

// buildInstance assembles the configured system.
func buildInstance(cfg Config) (*sysconf.Instance, error) {
	sys, err := sysconf.ByName(cfg.System)
	if err != nil {
		return nil, err
	}
	return sys.Build(cfg.Opt)
}

// measure runs one benchmark. A non-nil shared instance is reused
// (probe order is then the simulation order); otherwise the probe
// builds its own fresh instance, like the paper's per-point runs.
func measure(cfg Config, shared *sysconf.Instance, wantCDF bool, simWorkers int) (Measurement, error) {
	if shared == nil && cfg.usesFabric() {
		return measureFabric(cfg, simWorkers)
	}
	inst := shared
	if inst == nil {
		var err error
		inst, err = buildInstance(cfg)
		if err != nil {
			return Measurement{}, err
		}
	}
	m, err := measureInstance(inst, cfg, wantCDF)
	if err != nil {
		return Measurement{}, err
	}
	m.Faults = faultSnapshot(inst.Fabric)
	return m, nil
}

// measureInstance runs the single-endpoint benchmark kinds against an
// assembled instance.
func measureInstance(inst *sysconf.Instance, cfg Config, wantCDF bool) (Measurement, error) {
	if cfg.Bench == BenchLoopback {
		return measureLoopback(inst, cfg)
	}
	if cfg.Bench == BenchWorkload {
		return measureWorkload(inst, cfg)
	}

	tgt := inst.Target()
	switch cfg.Bench {
	case BenchLatRd, BenchLatWrRd:
		run := bench.LatRd
		if cfg.Bench == BenchLatWrRd {
			run = bench.LatWrRd
		}
		out, err := run(tgt, cfg.Params)
		if err != nil {
			return Measurement{}, err
		}
		m := Measurement{Median: out.Summary.Median, Summary: out.Summary}
		if wantCDF {
			cdf, err := out.CDF()
			if err != nil {
				return Measurement{}, err
			}
			m.CDF = cdf
		}
		return m, nil
	default:
		run := bench.BwRd
		switch cfg.Bench {
		case BenchBwWr:
			run = bench.BwWr
		case BenchBwRdWr:
			run = bench.BwRdWr
		}
		out, err := run(tgt, cfg.Params)
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{Gbps: out.Gbps}, nil
	}
}

// measureWorkload runs the multi-queue traffic engine against the
// instance: per-queue buffer regions are host-warmed like polled rings,
// the cell's seed drives the workload randomness, and the measurement
// carries aggregate and per-queue packet rates plus the
// completion-latency percentiles.
func measureWorkload(inst *sysconf.Instance, cfg Config) (Measurement, error) {
	wl := cfg.Workload
	wl.Seed = cfg.Opt.Seed
	inst.Buffer.WarmHost(0, wl.Footprint())
	res, err := workload.Run(inst.Kernel, inst.RC, inst.Buffer.DMAAddr(0), wl, cfg.Params.Transactions)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Median:      res.Latency.Median,
		Gbps:        res.GbpsPerDirection,
		PPS:         res.PPS,
		Summary:     res.Latency,
		EndpointPPS: []float64{res.PPS},
	}
	for _, q := range res.Queues {
		m.QueuePPS = append(m.QueuePPS, q.PPS)
	}
	return m, nil
}

// measureFabric runs the cell on a multi-endpoint fabric: the p2p
// transfer benchmark, or the traffic engine on every endpoint at once.
// simWorkers > 1 asks the workload path for a conservative-parallel
// fabric (results stay byte-identical; see internal/topo); the p2p
// benchmark couples its endpoints and always builds serially.
func measureFabric(cfg Config, simWorkers int) (Measurement, error) {
	sys, err := sysconf.ByName(cfg.System)
	if err != nil {
		return Measurement{}, err
	}
	if cfg.Bench != BenchP2P && simWorkers > 1 {
		cfg.Opt.SimWorkers = simWorkers
	}
	fab, err := sys.Fabric(cfg.Shape, cfg.Opt)
	if err != nil {
		return Measurement{}, err
	}
	if cfg.Bench == BenchP2P {
		res, err := topo.RunP2P(fab, cfg.P2P, cfg.Params.TransferSize, cfg.Params.Transactions)
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{
			Median:  res.Latency.Median,
			Gbps:    res.Gbps,
			Summary: res.Latency,
			Faults:  faultSnapshot(fab),
		}, nil
	}
	wl := cfg.Workload
	wl.Seed = cfg.Opt.Seed
	res, err := topo.RunWorkload(fab, wl, cfg.Params.Transactions)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Median:  res.Latency.Median,
		Gbps:    res.GbpsPerDirection,
		PPS:     res.PPS,
		Summary: res.Latency,
	}
	for _, ep := range res.Endpoints {
		m.EndpointPPS = append(m.EndpointPPS, ep.PPS)
	}
	// Per-queue rates of endpoint 0 keep the qpps<i> metrics
	// meaningful on one-endpoint fabrics.
	for _, q := range res.Endpoints[0].Queues {
		m.QueuePPS = append(m.QueuePPS, q.PPS)
	}
	m.Faults = faultSnapshot(fab)
	return m, nil
}

// faultSnapshot copies the fabric's per-endpoint fault counters; nil
// when fault injection is disabled, so fault-free measurements (and
// their cached JSON encodings) are unchanged.
func faultSnapshot(fab *topo.Fabric) []fault.Counters {
	if fab == nil || !fab.Spec.Faults.Enabled() {
		return nil
	}
	out := make([]fault.Counters, len(fab.Endpoints))
	for i, ep := range fab.Endpoints {
		if ep.Faults != nil {
			out[i] = *ep.Faults
		}
	}
	return out
}

// measureLoopback replays the paper's Figure 2 setup: an ExaNIC-style
// loopback with the RX ring hot in a polling application.
func measureLoopback(inst *sysconf.Instance, cfg Config) (Measurement, error) {
	inst.Buffer.WarmHost(0, 64<<10)
	samples, err := nicsim.Loopback(inst.RC, nicsim.DefaultLoopback(),
		inst.Buffer.DMAAddr(0), cfg.Params.TransferSize, cfg.Params.Transactions)
	if err != nil {
		return Measurement{}, err
	}
	med, frac := nicsim.MedianLoopback(samples)
	return Measurement{Median: med.Nanoseconds(), Frac: frac}, nil
}
