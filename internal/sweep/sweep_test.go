package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pciebench/internal/bench"
	"pciebench/internal/pcie"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"64", 64, true},
		{"8K", 8 << 10, true},
		{"16m", 16 << 20, true},
		{"1G", 1 << 30, true},
		{" 2K ", 2 << 10, true},
		{"", 0, false},
		{"x", 0, false},
		{"4KB", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestResolveConfig(t *testing.T) {
	cfg, err := resolveConfig(map[string]string{
		"system": "NFP6000-BDW", "bench": "bw_rdwr",
		"window": "16M", "transfer": "256", "offset": "4",
		"pattern": "seq", "cache": "devwarm", "n": "123",
		"direct": "true", "node": "1", "iommu": "on", "sp": "off",
		"nojitter": "1", "buffer": "32M", "seed": "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System != "NFP6000-BDW" || cfg.Bench != BenchBwRdWr {
		t.Errorf("system/bench = %q/%q", cfg.System, cfg.Bench)
	}
	p := cfg.Params
	if p.WindowSize != 16<<20 || p.TransferSize != 256 || p.Offset != 4 ||
		p.Pattern != bench.Sequential || p.Cache != bench.DeviceWarm ||
		p.Transactions != 123 || !p.Direct {
		t.Errorf("params = %+v", p)
	}
	o := cfg.Opt
	if o.BufferNode != 1 || !o.IOMMU || o.SuperPages || !o.NoJitter ||
		o.BufferSize != 32<<20 || o.Seed != 7 {
		t.Errorf("options = %+v", o)
	}
	if o.Link != nil {
		t.Error("link set without link keys")
	}
}

func TestResolveConfigLink(t *testing.T) {
	cfg, err := resolveConfig(map[string]string{"gen": "5", "lanes": "16", "mps": "512"})
	if err != nil {
		t.Fatal(err)
	}
	l := cfg.Opt.Link
	if l == nil || l.Gen != pcie.Gen5 || l.Lanes != 16 || l.MPS != 512 {
		t.Fatalf("link = %+v", l)
	}
	// Unset link fields keep the paper's Gen3 x8 defaults.
	if l.MRRS != 512 || l.RCB != 64 {
		t.Errorf("link defaults lost: %+v", l)
	}
}

func TestResolveConfigErrors(t *testing.T) {
	for _, kv := range []map[string]string{
		{"nope": "1"},
		{"bench": "bw_up"},
		{"pattern": "zigzag"},
		{"cache": "lukewarm"},
		{"window": "huge"},
		{"direct": "maybe"},
		{"system": "PDP-11"},
		{"gen": "9"},
		{"lanes": "3"},
	} {
		if _, err := resolveConfig(kv); err == nil {
			t.Errorf("resolveConfig(%v) accepted", kv)
		}
	}
}

func testSpec() *Spec {
	return &Spec{
		Name: "t",
		Axes: []Axis{
			StrAxis("cache", "cold", "warm"),
			IntAxis("transfer", 8, 64),
		},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "lat_rd",
			"window": "4K", "buffer": "64K", "nojitter": "true", "n": "40",
		},
	}
}

func TestCellsEnumeration(t *testing.T) {
	s := testSpec()
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	cells := s.Cells()
	wantCoords := [][]string{
		{"cold", "8"}, {"cold", "64"}, {"warm", "8"}, {"warm", "64"},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d index %d", i, c.Index)
		}
		for j, v := range wantCoords[i] {
			if c.Coord[j] != v {
				t.Errorf("cell %d coord = %v, want %v", i, c.Coord, wantCoords[i])
			}
		}
		if c.Get("system") != "NFP6000-HSW" || c.Get("cache") != wantCoords[i][0] {
			t.Errorf("cell %d kv merge broken: %v", i, c.KV)
		}
		if c.Int("window") != 4<<10 {
			t.Errorf("cell %d Int(window) = %d", i, c.Int("window"))
		}
	}
}

func TestApplyOverrides(t *testing.T) {
	s := testSpec()
	// Replace an axis, add a new axis, set a base value.
	if err := s.ApplyOverrides([]string{"transfer=16,32", "mps=128,256", "system=NFP6000-SNB"}); err != nil {
		t.Fatal(err)
	}
	if got := s.axis("transfer").Values; len(got) != 2 || got[0] != "16" {
		t.Errorf("transfer override: %v", got)
	}
	if ax := s.axis("mps"); ax == nil || len(ax.Values) != 2 {
		t.Error("mps axis not added")
	}
	if s.Base["system"] != "NFP6000-SNB" {
		t.Errorf("base override: %v", s.Base)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{"", "=1", "transfer=", "bogus=1", "transfer"} {
		if err := testSpec().ApplyOverrides([]string{bad}); err == nil {
			t.Errorf("override %q accepted", bad)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Axes = nil },
		func(s *Spec) { s.Axes = append(s.Axes, StrAxis("cache", "warm")) },
		func(s *Spec) { s.Axes = append(s.Axes, StrAxis("frobnicate", "1")) },
		func(s *Spec) { s.Axes[0].Values = nil },
		func(s *Spec) { s.Base["bogus"] = "1" },
		func(s *Spec) { s.Base["cache"] = "lukewarm"; s.Axes = s.Axes[1:] },
		func(s *Spec) { s.SeedMode = "random" },
		func(s *Spec) { s.Probes = []Probe{{Metric: "p42"}} },
		func(s *Spec) { s.Probes = []Probe{{Metric: "qpps"}} },
		func(s *Spec) { s.Probes = []Probe{{Metric: "qpps-1"}} },
		func(s *Spec) { s.Probes = []Probe{{Metric: "qppsx"}} },
		func(s *Spec) { s.Probes = []Probe{{Set: map[string]string{"bench": "nope"}}} },
		func(s *Spec) { s.Contrast = &Contrast{} },
		func(s *Spec) { s.Contrast = &Contrast{Set: map[string]string{"node": "1"}, Reduce: "max"} },
		func(s *Spec) {
			s.Contrast = &Contrast{Set: map[string]string{"node": "1"}}
			s.SharedInstance = true
		},
		// A contrast may not swap the benchmark out from under the metric.
		func(s *Spec) { s.Contrast = &Contrast{Set: map[string]string{"bench": "bw_rd"}} },
		// Shared-instance probes may not change how the instance builds.
		func(s *Spec) {
			s.SharedInstance = true
			s.Probes = []Probe{{Set: map[string]string{"node": "1"}}}
		},
		func(s *Spec) {
			s.SharedInstance = true
			s.Probes = []Probe{{Set: map[string]string{"iommu": "true"}}}
		},
	}
	for i, mutate := range cases {
		s := testSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSpec()
	s.Probes = []Probe{{Label: "p", Set: map[string]string{"bench": "lat_rd"}}}
	s.Contrast = &Contrast{Set: map[string]string{"node": "1"}}
	c := s.Clone()
	c.Axes[0].Values[0] = "devwarm"
	c.Base["system"] = "NFP6000-IB"
	c.Probes[0].Set["bench"] = "bw_rd"
	c.Contrast.Set["node"] = "0"
	if s.Axes[0].Values[0] != "cold" || s.Base["system"] != "NFP6000-HSW" ||
		s.Probes[0].Set["bench"] != "lat_rd" || s.Contrast.Set["node"] != "1" {
		t.Error("clone shares state with the original")
	}
}

func TestRegistry(t *testing.T) {
	s := testSpec()
	s.Name = "registry-test"
	Register(s)
	got, err := ByName("registry-test")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the lookup result must not affect the registry.
	got.Base["system"] = "NFP6000-IB"
	again, _ := ByName("registry-test")
	if again.Base["system"] != "NFP6000-HSW" {
		t.Error("registry returned a shared spec")
	}
	found := false
	for _, r := range Specs() {
		if r.Name == "registry-test" {
			found = true
		}
	}
	if !found {
		t.Error("Specs() missing registered spec")
	}
	if _, err := ByName("no-such-sweep"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestQualityTransactions(t *testing.T) {
	cases := []struct {
		q      Quality
		bench  string
		metric string
		want   int
	}{
		{Quick, BenchLatRd, MetricMedian, 400},
		{Quick, BenchBwRd, MetricGbps, 4000},
		{Quick, BenchLatRd, MetricCDF, 20000},
		{Quick, BenchLoopback, MetricMedian, 16},
		{Full, BenchLatWrRd, MetricMedian, 20000},
		{Full, BenchBwRdWr, MetricGbps, 60000},
		{Full, BenchLatRd, MetricCDF, 200000},
		{Full, BenchLoopback, MetricFrac, 200},
	}
	for _, c := range cases {
		if got := c.q.Transactions(c.bench, c.metric); got != c.want {
			t.Errorf("%v.Transactions(%s, %s) = %d, want %d", c.q, c.bench, c.metric, got, c.want)
		}
	}
}

func TestProbeLabels(t *testing.T) {
	s := testSpec()
	if got := s.ProbeLabels(); len(got) != 1 || got[0] != "lat_rd:median" {
		t.Errorf("default label = %v", got)
	}
	s.Probes = []Probe{
		{Label: "a"},
		{Set: map[string]string{"bench": "bw_rd"}},
		{Set: map[string]string{"bench": "bw_rd"}},
	}
	got := s.ProbeLabels()
	if got[0] != "a" || got[1] != "bw_rd:gbps" || got[2] != "bw_rd:gbps#2" {
		t.Errorf("labels = %v", got)
	}
}

func TestEmitters(t *testing.T) {
	if _, err := EmitterFor("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
	res, err := testSpec().Run(context.Background(), RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range Formats() {
		emit, err := EmitterFor(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := emit(&buf, res); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		out := buf.String()
		for _, want := range []string{"cache", "transfer", "warm", "64"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", format, want, out)
			}
		}
	}
}

// TestContrastRun checks the differential path: an IOMMU perturbation
// beyond the IO-TLB reach must report a large negative pct_delta.
func TestContrastRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measured contrast sweep; run without -short")
	}
	s := &Spec{
		Name: "contrast-test",
		Axes: []Axis{IntAxis("transfer", 64)},
		Base: map[string]string{
			"system": "NFP6000-BDW", "bench": "bw_rd", "cache": "warm",
			"window": "16M", "nojitter": "true", "n": "2000",
		},
		Contrast: &Contrast{Set: map[string]string{"iommu": "true"}},
		SeedMode: SeedFixed,
	}
	res, err := s.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Values[0]; v > -40 {
		t.Errorf("IOMMU pct_delta = %.1f, want strongly negative", v)
	}
}

// TestSharedInstanceOrder checks that probes of a shared-instance cell
// observe one simulator in probe order: the second cold-read probe runs
// after the first has pulled the window toward the cache, so its median
// must not exceed the first probe's.
func TestSharedInstanceRun(t *testing.T) {
	s := &Spec{
		Name: "shared-test",
		Axes: []Axis{StrAxis("cache", "warm")},
		Base: map[string]string{
			"system": "NFP6000-HSW", "bench": "lat_rd", "window": "4K",
			"transfer": "8", "buffer": "64K", "nojitter": "true", "n": "60",
		},
		SharedInstance: true,
		Probes: []Probe{
			{Label: "first"},
			{Label: "second"},
		},
	}
	res, err := s.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if len(c.Values) != 2 || c.Values[0] <= 0 || c.Values[1] <= 0 {
		t.Fatalf("values = %v", c.Values)
	}
}
