package sweep

import (
	"strings"
	"testing"

	"pciebench/internal/topo"
)

// TestIOMMUScaleGolden pins the IOMMU-scope sweep: the JSON spec
// round-trips, runs byte-identically at workers 1/4/7 in every format,
// and matches the checked-in golden TSV. The grid crosses endpoint
// count with translation-unit scope, so both the hub-bound global unit
// and the per-socket DRHD path are exercised through the full sweep
// engine.
func TestIOMMUScaleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("topology golden skipped in -short")
	}
	goldenRoundTrip(t, "iommu-scale.json", "iommu-scale.golden.tsv", []int{1, 4, 7})
}

// TestIOMMUScopeKey pins the iommuscope parameter: values canonicalize
// through topo.ParseIOMMUScope, bad values name the valid ones, and the
// key counts as instance-level (shared_instance probe sets may not vary
// it).
func TestIOMMUScopeKey(t *testing.T) {
	cfg, err := resolveConfig(map[string]string{"iommu": "true", "iommuscope": "per-socket"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Opt.IOMMUScope != topo.IOMMUScopePerSocket {
		t.Errorf("iommuscope resolved to %q, want %q", cfg.Opt.IOMMUScope, topo.IOMMUScopePerSocket)
	}
	cfg, err = resolveConfig(map[string]string{"iommu": "true", "iommuscope": "global"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Opt.IOMMUScope != topo.IOMMUScopeGlobal {
		t.Errorf("iommuscope resolved to %q, want %q", cfg.Opt.IOMMUScope, topo.IOMMUScopeGlobal)
	}
	if _, err := resolveConfig(map[string]string{"iommuscope": "per-core"}); err == nil ||
		!strings.Contains(err.Error(), "per-socket") {
		t.Errorf("bad iommuscope error %v, want one naming the valid scopes", err)
	}
	if !optLevelKeys["iommuscope"] {
		t.Error("iommuscope missing from optLevelKeys; shared_instance could vary it")
	}
}
