package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const versionedSpec = `{
  "version": 1,
  "name": "v1-doc",
  "axes": [{"name": "transfer", "values": ["64"]}],
  "base": {"bench": "lat_rd", "window": "8K"}
}`

// TestDecodeVersioned: a version-1 document decodes and round-trips
// with its version intact.
func TestDecodeVersioned(t *testing.T) {
	s, err := Decode(strings.NewReader(versionedSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != 1 {
		t.Fatalf("Version = %d, want 1", s.Version)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"version":1`)) {
		t.Fatalf("re-encoded spec lost its version: %s", blob)
	}
	if _, err := Decode(bytes.NewReader(blob)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestDecodeLegacyVersionless: documents written before the format was
// versioned keep decoding (as version 1).
func TestDecodeLegacyVersionless(t *testing.T) {
	legacy := `{"name": "legacy", "axes": [{"name": "transfer", "values": ["64"]}], "base": {"bench": "lat_rd", "window": "8K"}}`
	s, err := Decode(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != 0 {
		t.Fatalf("legacy doc carries version %d", s.Version)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeFutureVersionRejected: a document from a newer format
// version fails loudly instead of being half-understood.
func TestDecodeFutureVersionRejected(t *testing.T) {
	future := strings.Replace(versionedSpec, `"version": 1`, `"version": 2`, 1)
	_, err := Decode(strings.NewReader(future))
	if err == nil {
		t.Fatal("version-2 document decoded without error")
	}
	for _, want := range []string{"version 2", "version 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestDecodeUnknownFieldNamesValidKeys: the strict decoder's error
// must name the offending field and the full set of valid keys.
func TestDecodeUnknownFieldNamesValidKeys(t *testing.T) {
	bad := strings.Replace(versionedSpec, `"name"`, `"nmae"`, 1)
	_, err := Decode(strings.NewReader(bad))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	msg := err.Error()
	for _, want := range []string{"nmae", "version", "name", "axes", "base", "probes", "seed_mode", "shared_instance", "contrast", "x_axis"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestSpecJSONKeysComplete guards the reflective key list against
// field renames losing their tag.
func TestSpecJSONKeysComplete(t *testing.T) {
	keys := strings.Join(specJSONKeys(), " ")
	for _, want := range []string{"version", "name", "title", "description",
		"x_axis", "x_label", "y_label", "axes", "base", "probes",
		"shared_instance", "contrast", "seed_mode", "seed"} {
		if !strings.Contains(keys, want) {
			t.Errorf("specJSONKeys() = %q, missing %q", keys, want)
		}
	}
}
