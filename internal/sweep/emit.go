package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Emitter renders an executed sweep to a writer.
type Emitter func(w io.Writer, r *Result) error

// emitters is the table-driven format registry: the single source of
// truth behind the CLIs' -format flag and the server's ?format= query,
// so both share one lookup and one error message.
var emitters = map[string]Emitter{
	"table":  emitTable,
	"tsv":    emitTSV,
	"json":   emitJSON,
	"csv":    emitCSV,
	"ndjson": emitNDJSON,
}

// Emitters returns a copy of the format registry (name -> emitter).
func Emitters() map[string]Emitter {
	out := make(map[string]Emitter, len(emitters))
	for name, e := range emitters {
		out[name] = e
	}
	return out
}

// Formats returns the supported emitter format names, sorted.
func Formats() []string {
	out := make([]string, 0, len(emitters))
	for name := range emitters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EmitterFor returns the named emitter.
func EmitterFor(format string) (Emitter, error) {
	e, ok := emitters[format]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown format %q (have %s)",
			format, strings.Join(Formats(), " "))
	}
	return e, nil
}

// grid flattens a result into a header row plus one row per cell:
// axis columns then one value column per probe.
func grid(r *Result) (header []string, rows [][]string) {
	for _, a := range r.Spec.Axes {
		header = append(header, a.Name)
	}
	header = append(header, r.Spec.ProbeLabels()...)
	for _, c := range r.Cells {
		row := append([]string(nil), c.Cell.Coord...)
		for _, v := range c.Values {
			row = append(row, formatValue(v))
		}
		rows = append(rows, row)
	}
	return header, rows
}

// formatValue renders a probe value with enough precision to compare
// runs without drowning the table in digits.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// emitTable renders an aligned-text grid with the spec title.
func emitTable(w io.Writer, r *Result) error {
	header, rows := grid(r)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if r.Spec.Title != "" {
		fmt.Fprintf(w, "%s\n", r.Spec.Title)
	} else {
		fmt.Fprintf(w, "%s\n", r.Spec.Name)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(header)
	for i, width := range widths {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, strings.Repeat("-", width))
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		writeRow(row)
	}
	return nil
}

// emitTSV renders a gnuplot-friendly tab-separated grid with a
// commented header.
func emitTSV(w io.Writer, r *Result) error {
	header, rows := grid(r)
	fmt.Fprintf(w, "# %s", r.Spec.Name)
	if r.Spec.Title != "" {
		fmt.Fprintf(w, ": %s", r.Spec.Title)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	return nil
}

// emitCSV renders the grid as RFC 4180 CSV.
func emitCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	header, rows := grid(r)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Row is the machine-readable wire form of one executed cell, shared
// by the json and ndjson emitters and the serving layer's incremental
// result stream.
type Row struct {
	Index  int                `json:"index"`
	Coord  map[string]string  `json:"coord"`
	Values map[string]float64 `json:"values"`
}

// RowOf builds the wire row of one cell result. labels must be
// spec.ProbeLabels() (passed in so streaming callers compute them
// once, not per cell).
func RowOf(s *Spec, labels []string, c CellResult) Row {
	coord := make(map[string]string, len(s.Axes))
	for i, a := range s.Axes {
		coord[a.Name] = c.Cell.Coord[i]
	}
	values := make(map[string]float64, len(c.Values))
	for i, v := range c.Values {
		if i < len(labels) {
			values[labels[i]] = v
		}
	}
	return Row{Index: c.Cell.Index, Coord: coord, Values: values}
}

// emitJSON renders the full result (spec echo plus per-cell values)
// as indented JSON.
func emitJSON(w io.Writer, r *Result) error {
	labels := r.Spec.ProbeLabels()
	cells := make([]Row, 0, len(r.Cells))
	for _, c := range r.Cells {
		cells = append(cells, RowOf(r.Spec, labels, c))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spec  *Spec `json:"spec"`
		Cells []Row `json:"cells"`
	}{r.Spec, cells})
}

// emitNDJSON renders one compact JSON row per cell — the batch twin of
// the serving layer's ?stream=1 output, so a streamed result and a
// fetched one compare line for line.
func emitNDJSON(w io.Writer, r *Result) error {
	labels := r.Spec.ProbeLabels()
	enc := json.NewEncoder(w)
	for _, c := range r.Cells {
		if err := enc.Encode(RowOf(r.Spec, labels, c)); err != nil {
			return err
		}
	}
	return nil
}
