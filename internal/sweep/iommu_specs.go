package sweep

// The IOMMU-scaling sweep: how translation-unit scope changes workload
// throughput and tail latency as endpoint count grows. A global-scope
// unit puts one IO-TLB and one walker pool on every DMA path, so misses
// from all endpoints contend; per-socket DRHD-style units split that
// state along the socket boundary. Registered here (rather than in
// internal/report) because the paper's single-adapter setup cannot
// express multi-unit translation.
func init() {
	Register(&Spec{
		Name:  "iommu-scale",
		Title: "IOMMU scope vs endpoint count",
		Description: "N NICs with DMA translated through the IOMMU, split across " +
			"both sockets with local buffers: one global translation unit against " +
			"per-socket units as N grows 1..8",
		XAxis:  "endpoints",
		XLabel: "endpoints",
		YLabel: "pps / latency (ns)",
		Axes: []Axis{
			IntAxis("endpoints", 1, 2, 4, 8),
			StrAxis("iommuscope", "global", "per-socket"),
		},
		Base: map[string]string{
			"bench":   BenchWorkload,
			"system":  "NFP6000-BDW",
			"iommu":   "true",
			"socket":  "split",
			"buffers": "local",
			"queues":  "1",
			"sizes":   "1500",
		},
		Probes: []Probe{
			{Label: "pps", Metric: MetricPPS},
			{Label: "p99_ns", Metric: MetricP99},
			{Label: "epps_min", Metric: MetricEPPSMin},
			{Label: "epps_max", Metric: MetricEPPSMax},
		},
	})
}
