package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// station is a test model: a node that, on each event, records its
// (domain, time) trace, mutates local state, and forwards a message to
// the next domain in a ring after the link latency.
type station struct {
	pk      *ParallelKernel
	id      int
	next    int
	latency Time
	hops    int // remaining forwards
	trace   []Time
	sum     int64
}

func (s *station) Handle(k *Kernel, a, b int64) {
	s.trace = append(s.trace, k.Now())
	s.sum = s.sum*31 + a + b
	if s.hops <= 0 {
		return
	}
	s.hops--
	// Forward through the ring; the payload mixes local state so any
	// ordering difference cascades into every downstream sum.
	at := k.Now() + s.latency
	s.pk.Send(s.id, s.next, at, s.pk.stations()[s.next], s.sum, a+1)
}

// stations is stashed on the ParallelKernel via a helper map for test
// convenience.
var stationsByPK = map[*ParallelKernel][]*station{}

func (p *ParallelKernel) stations() []*station { return stationsByPK[p] }

// buildRing wires n domains in a ring with the given per-hop latency
// and seeds each station with an initial local event burst.
func buildRing(n, hops int, latency Time, seed int64) (*ParallelKernel, []*station) {
	kernels := make([]*Kernel, n)
	for i := range kernels {
		kernels[i] = New(seed + int64(i))
	}
	pk := NewParallel(kernels)
	sts := make([]*station, n)
	for i := range sts {
		sts[i] = &station{pk: pk, id: i, next: (i + 1) % n, latency: latency, hops: hops}
		pk.Connect(i, (i+1)%n, latency)
	}
	stationsByPK[pk] = sts
	rng := rand.New(rand.NewSource(seed))
	for i, st := range sts {
		// A few local events per domain, at colliding coarse times, so
		// FIFO tie-breaks matter.
		for e := 0; e < 3; e++ {
			kernels[i].AtEvent(Time(rng.Intn(5))*Nanosecond, st, int64(e), int64(i))
		}
	}
	return pk, sts
}

// ringResult captures everything observable about a ring run.
type ringResult struct {
	End    Time
	Traces [][]Time
	Sums   []int64
	Exec   []uint64
}

func runRing(n, hops, workers int, latency Time, seed int64) ringResult {
	pk, sts := buildRing(n, hops, latency, seed)
	defer delete(stationsByPK, pk)
	end := pk.Run(workers)
	res := ringResult{End: end}
	for _, st := range sts {
		res.Traces = append(res.Traces, st.trace)
		res.Sums = append(res.Sums, st.sum)
	}
	for i := 0; i < pk.Domains(); i++ {
		res.Exec = append(res.Exec, pk.Domain(i).Kernel.Executed)
	}
	return res
}

// TestParallelRingDeterministic pins the communicating-ring model to
// identical results at every worker count, including the single-thread
// reference schedule.
func TestParallelRingDeterministic(t *testing.T) {
	ref := runRing(5, 40, 1, 120*Nanosecond, 7)
	if len(ref.Traces[0]) == 0 {
		t.Fatal("reference run executed nothing")
	}
	for _, workers := range []int{2, 4, 7} {
		got := runRing(5, 40, workers, 120*Nanosecond, 7)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from the serial window schedule:\nref %+v\ngot %+v", workers, ref, got)
		}
	}
}

// TestParallelNoLinksFreeRuns checks the island fast path: with no
// links, lookahead is unbounded and every domain runs to completion in
// one window, at any worker count.
func TestParallelNoLinksFreeRuns(t *testing.T) {
	build := func() (*ParallelKernel, []*int) {
		kernels := []*Kernel{New(1), New(2), New(3)}
		counts := []*int{new(int), new(int), new(int)}
		for i, k := range kernels {
			c := counts[i]
			for e := 0; e < 10; e++ {
				k.At(Time(e)*Microsecond, func() { *c++ })
			}
		}
		return NewParallel(kernels), counts
	}
	for _, workers := range []int{1, 2, 7} {
		pk, counts := build()
		if pk.Lookahead() != maxTime {
			t.Fatalf("lookahead with no links = %v, want max", pk.Lookahead())
		}
		end := pk.Run(workers)
		if end != 9*Microsecond {
			t.Fatalf("workers=%d: end %v, want 9us", workers, end)
		}
		for i, c := range counts {
			if *c != 10 {
				t.Fatalf("workers=%d: domain %d ran %d/10 events", workers, i, *c)
			}
		}
	}
}

// TestParallelWindowRespectsLookahead checks that an event above the
// first window horizon is not executed before a message that should
// precede it arrives.
func TestParallelWindowRespectsLookahead(t *testing.T) {
	kernels := []*Kernel{New(1), New(1)}
	pk := NewParallel(kernels)
	lat := 10 * Nanosecond
	pk.Connect(0, 1, lat)

	var order []string
	// Domain 1 has a local event at 12ns; domain 0 sends a message at
	// 0ns arriving at 10ns. Horizon of window 1 is 0+10=10ns, so the
	// 12ns event must wait for the barrier and run after delivery.
	kernels[0].At(0, func() {
		order = append(order, "send")
		pk.Send(0, 1, lat, funcHandler(func() { order = append(order, "arrive@10") }), 0, 0)
	})
	kernels[1].At(12*Nanosecond, func() { order = append(order, "local@12") })
	pk.Run(1)

	want := []string{"send", "arrive@10", "local@12"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestParallelSendValidation pins the guard rails: undeclared links,
// latency violations and bad link declarations all panic with a clear
// message.
func TestParallelSendValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	kernels := []*Kernel{New(1), New(1)}
	pk := NewParallel(kernels)
	pk.Connect(0, 1, 5*Nanosecond)
	mustPanic("undeclared link", func() { pk.Send(1, 0, Microsecond, funcHandler(func() {}), 0, 0) })
	mustPanic("latency violation", func() { pk.Send(0, 1, Nanosecond, funcHandler(func() {}), 0, 0) })
	mustPanic("self link", func() { pk.Connect(0, 0, Nanosecond) })
	mustPanic("zero latency", func() { pk.Connect(1, 0, 0) })
	mustPanic("duplicate link", func() { pk.Connect(0, 1, Nanosecond) })
	mustPanic("out of range", func() { pk.Connect(0, 9, Nanosecond) })
	mustPanic("empty", func() { NewParallel(nil) })
}

// TestParallelRaceStress drives many domains with dense cross-domain
// traffic at high worker counts; under -race it exercises the staging
// buffers, the window barrier and the coordinator for unsynchronized
// access. Results must still match the serial schedule.
func TestParallelRaceStress(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		seed := int64(9000 + trial)
		ref := runRing(11, 200, 1, 40*Nanosecond, seed)
		got := runRing(11, 200, 8, 40*Nanosecond, seed)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: 8-worker run diverged from serial", trial)
		}
	}
}

// TestParallelManyIslandsRace free-runs many unlinked domains, each
// with its own servers and heap churn, on many workers — the island
// fast path the fabric partitioner uses.
func TestParallelManyIslandsRace(t *testing.T) {
	const domains = 16
	kernels := make([]*Kernel, domains)
	finals := make([]Time, domains)
	for i := range kernels {
		k := New(int64(i + 1))
		kernels[i] = k
		srv := NewServer(k)
		var step func()
		n := 0
		step = func() {
			n++
			done := srv.Schedule(Time(50+n%7) * Nanosecond)
			if n < 500 {
				k.At(done, step)
			}
		}
		k.At(0, step)
	}
	pk := NewParallel(kernels)
	pk.Run(8)
	for i, k := range kernels {
		finals[i] = k.Now()
		if k.Pending() != 0 || k.Executed != 500 {
			t.Fatalf("domain %d: pending %d executed %d", i, k.Pending(), k.Executed)
		}
	}
	// Same model on one worker must land on the same clocks.
	kernels2 := make([]*Kernel, domains)
	for i := range kernels2 {
		k := New(int64(i + 1))
		kernels2[i] = k
		srv := NewServer(k)
		var step func()
		n := 0
		step = func() {
			n++
			done := srv.Schedule(Time(50+n%7) * Nanosecond)
			if n < 500 {
				k.At(done, step)
			}
		}
		k.At(0, step)
	}
	NewParallel(kernels2).Run(1)
	for i := range kernels2 {
		if kernels2[i].Now() != finals[i] {
			t.Fatalf("domain %d: parallel %v vs serial %v", i, finals[i], kernels2[i].Now())
		}
	}
}
