package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// Property: whatever order events are inserted in, execution visits
// them in nondecreasing time order, FIFO among equal timestamps, and
// the kernel clock never moves backwards.
func TestPropertyOrderingUnderRandomInsertion(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := New(1)

		type rec struct {
			at  Time
			seq int // insertion order
		}
		const n = 500
		var executed []rec
		for i := 0; i < n; i++ {
			// Coarse timestamps force plenty of ties.
			at := Time(rng.Intn(50)) * Nanosecond
			i := i
			k.At(at, func() {
				executed = append(executed, rec{at: k.Now(), seq: i})
			})
		}
		k.Run()

		if len(executed) != n {
			t.Fatalf("trial %d: executed %d/%d events", trial, len(executed), n)
		}
		var last rec
		for idx, r := range executed {
			if idx > 0 {
				if r.at < last.at {
					t.Fatalf("trial %d: time moved backwards: %v after %v", trial, r.at, last.at)
				}
				if r.at == last.at && r.seq < last.seq {
					t.Fatalf("trial %d: FIFO violated at %v: insertion %d ran after %d",
						trial, r.at, last.seq, r.seq)
				}
			}
			last = r
		}
		if k.Executed != n {
			t.Errorf("trial %d: Executed = %d, want %d", trial, k.Executed, n)
		}
	}
}

// Property: events that schedule further events at random future
// offsets keep time monotone and eventually drain the queue.
func TestPropertyMonotoneUnderRuntimeInsertion(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		k := New(1)
		var (
			prev     Time
			ran      int
			spawnBud = 2000
		)
		var spawn func()
		spawn = func() {
			now := k.Now()
			if now < prev {
				t.Fatalf("trial %d: clock went backwards: %v < %v", trial, now, prev)
			}
			prev = now
			ran++
			for c := rng.Intn(3); c > 0 && spawnBud > 0; c-- {
				spawnBud--
				k.After(Time(rng.Intn(1000)), spawn)
			}
		}
		for i := 0; i < 10; i++ {
			k.At(Time(rng.Intn(100)), spawn)
		}
		end := k.Run()
		if k.Pending() != 0 {
			t.Errorf("trial %d: %d events left after Run", trial, k.Pending())
		}
		if end != prev {
			t.Errorf("trial %d: Run returned %v, last event at %v", trial, end, prev)
		}
		if ran < 10 {
			t.Errorf("trial %d: only %d events ran", trial, ran)
		}
	}
}

// Property: two kernels fed the same randomized schedule execute
// identical event sequences — the determinism the byte-identical
// sweep outputs rest on.
func TestPropertyReplayIdentical(t *testing.T) {
	replay := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := New(seed)
		var log []Time
		var spawn func()
		budget := 500
		spawn = func() {
			log = append(log, k.Now())
			if budget > 0 {
				budget--
				k.After(Time(rng.Intn(100))*Nanosecond, spawn)
			}
		}
		for i := 0; i < 5; i++ {
			k.At(Time(rng.Intn(20))*Nanosecond, spawn)
		}
		k.Run()
		return log
	}
	a, b := replay(7), replay(7)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// randNet is a randomized communicating-domain model for the parallel
// kernel: a random directed link topology with random latencies, random
// initial event bursts, and handlers that forward state-mixing messages
// over random outgoing links. Every observable (per-domain event trace,
// state sums, executed counts, final clocks) is returned for comparison.
type randNet struct {
	pk    *ParallelKernel
	nodes []*randNode
}

type randNode struct {
	net   *randNet
	id    int
	out   []int // destination domain ids with declared links
	lat   []Time
	rng   *rand.Rand
	hops  int
	trace []Time
	sum   int64
}

func (n *randNode) Handle(k *Kernel, a, b int64) {
	n.trace = append(n.trace, k.Now())
	n.sum = n.sum*131 + a*7 + b
	if n.hops <= 0 || len(n.out) == 0 {
		return
	}
	n.hops--
	// The choice of link draws from the node's own deterministic rng,
	// in event-execution order — identical across worker counts if and
	// only if the window schedule is.
	i := n.rng.Intn(len(n.out))
	dst := n.out[i]
	at := k.Now() + n.lat[i] + Time(n.rng.Intn(30))*Nanosecond
	n.net.pk.Send(n.id, dst, at, n.net.nodes[dst], n.sum, int64(n.id))
}

// runRandNet builds and runs one randomized model; the construction is
// a pure function of (domains, seed), so runs differ only in workers.
func runRandNet(domains, workers int, seed int64) ([][]Time, []int64, []Time) {
	rng := rand.New(rand.NewSource(seed))
	kernels := make([]*Kernel, domains)
	for i := range kernels {
		kernels[i] = New(seed*100 + int64(i))
	}
	pk := NewParallel(kernels)
	net := &randNet{pk: pk}
	for i := 0; i < domains; i++ {
		net.nodes = append(net.nodes, &randNode{
			net: net, id: i, rng: rand.New(rand.NewSource(seed*1000 + int64(i))),
			hops: 20 + rng.Intn(40),
		})
	}
	// Random sparse link topology; latencies span a wide range so the
	// lookahead window is set by the shortest one.
	for src := 0; src < domains; src++ {
		for dst := 0; dst < domains; dst++ {
			if src == dst || rng.Intn(3) != 0 {
				continue
			}
			lat := Time(10+rng.Intn(500)) * Nanosecond
			pk.Connect(src, dst, lat)
			n := net.nodes[src]
			n.out = append(n.out, dst)
			n.lat = append(n.lat, lat)
		}
	}
	for i, n := range net.nodes {
		for e := 0; e < 1+rng.Intn(4); e++ {
			kernels[i].AtEvent(Time(rng.Intn(40))*Nanosecond, n, int64(e), int64(i))
		}
	}
	pk.Run(workers)
	var traces [][]Time
	var sums []int64
	var clocks []Time
	for _, n := range net.nodes {
		traces = append(traces, n.trace)
		sums = append(sums, n.sum)
	}
	for _, k := range kernels {
		clocks = append(clocks, k.Now())
	}
	return traces, sums, clocks
}

// Property: randomized multi-domain topologies, seeds and lookahead
// windows produce byte-identical traces under the parallel kernel at
// P = 1, 2, 4 and 7 workers.
func TestPropertyParallelWorkerCountInvariance(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := int64(4000 + trial)
		domains := 2 + trial%6
		refTraces, refSums, refClocks := runRandNet(domains, 1, seed)
		total := 0
		for _, tr := range refTraces {
			total += len(tr)
		}
		if total == 0 {
			t.Fatalf("trial %d: model executed nothing", trial)
		}
		for _, workers := range []int{2, 4, 7} {
			traces, sums, clocks := runRandNet(domains, workers, seed)
			if !reflect.DeepEqual(refTraces, traces) ||
				!reflect.DeepEqual(refSums, sums) ||
				!reflect.DeepEqual(refClocks, clocks) {
				t.Fatalf("trial %d: workers=%d diverged from the serial window schedule", trial, workers)
			}
		}
	}
}
