package sim

import (
	"math/rand"
	"testing"
)

// Property: whatever order events are inserted in, execution visits
// them in nondecreasing time order, FIFO among equal timestamps, and
// the kernel clock never moves backwards.
func TestPropertyOrderingUnderRandomInsertion(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := New(1)

		type rec struct {
			at  Time
			seq int // insertion order
		}
		const n = 500
		var executed []rec
		for i := 0; i < n; i++ {
			// Coarse timestamps force plenty of ties.
			at := Time(rng.Intn(50)) * Nanosecond
			i := i
			k.At(at, func() {
				executed = append(executed, rec{at: k.Now(), seq: i})
			})
		}
		k.Run()

		if len(executed) != n {
			t.Fatalf("trial %d: executed %d/%d events", trial, len(executed), n)
		}
		var last rec
		for idx, r := range executed {
			if idx > 0 {
				if r.at < last.at {
					t.Fatalf("trial %d: time moved backwards: %v after %v", trial, r.at, last.at)
				}
				if r.at == last.at && r.seq < last.seq {
					t.Fatalf("trial %d: FIFO violated at %v: insertion %d ran after %d",
						trial, r.at, last.seq, r.seq)
				}
			}
			last = r
		}
		if k.Executed != n {
			t.Errorf("trial %d: Executed = %d, want %d", trial, k.Executed, n)
		}
	}
}

// Property: events that schedule further events at random future
// offsets keep time monotone and eventually drain the queue.
func TestPropertyMonotoneUnderRuntimeInsertion(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		k := New(1)
		var (
			prev     Time
			ran      int
			spawnBud = 2000
		)
		var spawn func()
		spawn = func() {
			now := k.Now()
			if now < prev {
				t.Fatalf("trial %d: clock went backwards: %v < %v", trial, now, prev)
			}
			prev = now
			ran++
			for c := rng.Intn(3); c > 0 && spawnBud > 0; c-- {
				spawnBud--
				k.After(Time(rng.Intn(1000)), spawn)
			}
		}
		for i := 0; i < 10; i++ {
			k.At(Time(rng.Intn(100)), spawn)
		}
		end := k.Run()
		if k.Pending() != 0 {
			t.Errorf("trial %d: %d events left after Run", trial, k.Pending())
		}
		if end != prev {
			t.Errorf("trial %d: Run returned %v, last event at %v", trial, end, prev)
		}
		if ran < 10 {
			t.Errorf("trial %d: only %d events ran", trial, ran)
		}
	}
}

// Property: two kernels fed the same randomized schedule execute
// identical event sequences — the determinism the byte-identical
// sweep outputs rest on.
func TestPropertyReplayIdentical(t *testing.T) {
	replay := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := New(seed)
		var log []Time
		var spawn func()
		budget := 500
		spawn = func() {
			log = append(log, k.Now())
			if budget > 0 {
				budget--
				k.After(Time(rng.Intn(100))*Nanosecond, spawn)
			}
		}
		for i := 0; i < 5; i++ {
			k.At(Time(rng.Intn(20))*Nanosecond, spawn)
		}
		k.Run()
		return log
	}
	a, b := replay(7), replay(7)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}
