package sim

import (
	"fmt"
	"math"
	"sync"
)

// maxTime is the largest representable simulated time, used as the
// window horizon when no cross-domain link bounds execution.
const maxTime = Time(math.MaxInt64)

// Domain is one partition of a parallel simulation: an independent
// Kernel (own heap, clock, sequence counter and random source) plus its
// index in the ParallelKernel that coordinates it.
type Domain struct {
	ID     int
	Kernel *Kernel
}

// pmsg is one staged cross-domain event.
type pmsg struct {
	at   Time
	a, b int64
	h    Handler
}

// plink is a directed (src,dst) channel between two domains. Messages
// staged on it during a window are delivered into dst's kernel at the
// window barrier, in staging order — so delivery order is a pure
// function of the simulation, never of goroutine scheduling.
type plink struct {
	src, dst int
	latency  Time
	buf      []pmsg
}

// ParallelKernel runs several Kernels as one conservative
// parallel-discrete-event simulation. Domains execute concurrently in
// time windows: the coordinator computes the global lower bound (the
// minimum next-event time across domains), and every domain safely
// executes all events strictly below bound+lookahead, where lookahead
// is the minimum latency of any cross-domain link — no message sent
// during the window can arrive below that horizon. At the window
// barrier, staged messages are drained link by link in creation order
// and delivered into the destination kernels, so sequence numbers —
// and therefore (time,seq) tie-breaks — are identical at any worker
// count.
//
// Domains with no links at all (the island-partitioned fabric case)
// free-run to completion in a single window.
//
// A ParallelKernel is not safe for concurrent use by multiple
// callers; Send may only be called from a handler executing on the
// sending domain's kernel during Run.
type ParallelKernel struct {
	domains   []*Kernel
	links     []plink
	linkIdx   map[[2]int]int
	lookahead Time // min link latency; maxTime when no links
}

// NewParallel builds a coordinator over the given kernels; kernels[i]
// becomes domain i. The kernels must not be shared between domains.
func NewParallel(kernels []*Kernel) *ParallelKernel {
	if len(kernels) == 0 {
		panic("sim: NewParallel needs at least one domain")
	}
	return &ParallelKernel{
		domains:   kernels,
		linkIdx:   make(map[[2]int]int),
		lookahead: maxTime,
	}
}

// Domains returns the number of domains.
func (p *ParallelKernel) Domains() int { return len(p.domains) }

// Domain returns domain i.
func (p *ParallelKernel) Domain(i int) Domain { return Domain{ID: i, Kernel: p.domains[i]} }

// Lookahead returns the conservative window width: the minimum latency
// over all links, or the maximum time when no links exist.
func (p *ParallelKernel) Lookahead() Time { return p.lookahead }

// Connect declares a directed communication channel from domain src to
// domain dst with the given minimum propagation latency (>= 1 ps; the
// link/switch wire and forwarding delays of a PCIe fabric). Every
// cross-domain event must flow through a declared link via Send.
// Declaring a link shrinks the lookahead to the smallest latency.
func (p *ParallelKernel) Connect(src, dst int, latency Time) {
	if src < 0 || src >= len(p.domains) || dst < 0 || dst >= len(p.domains) {
		panic(fmt.Sprintf("sim: link %d->%d outside %d domains", src, dst, len(p.domains)))
	}
	if src == dst {
		panic("sim: a domain needs no link to itself")
	}
	if latency < Picosecond {
		panic(fmt.Sprintf("sim: link %d->%d latency %v must be >= 1ps", src, dst, latency))
	}
	key := [2]int{src, dst}
	if _, dup := p.linkIdx[key]; dup {
		panic(fmt.Sprintf("sim: link %d->%d already declared", src, dst))
	}
	p.linkIdx[key] = len(p.links)
	p.links = append(p.links, plink{src: src, dst: dst, latency: latency})
	if latency < p.lookahead {
		p.lookahead = latency
	}
}

// Send stages h.Handle(dstKernel, a, b) at absolute time at in domain
// dst, from a handler currently executing on domain src. The
// destination sees it after the current window's barrier. at must
// respect the link's declared latency (at >= src.Now()+latency);
// violating it would break the conservative horizon and panics.
func (p *ParallelKernel) Send(src, dst int, at Time, h Handler, a, b int64) {
	idx, ok := p.linkIdx[[2]int{src, dst}]
	if !ok {
		panic(fmt.Sprintf("sim: send on undeclared link %d->%d", src, dst))
	}
	l := &p.links[idx]
	if min := p.domains[src].now + l.latency; at < min {
		panic(fmt.Sprintf("sim: send on link %d->%d at %v violates latency %v (now %v)",
			src, dst, at, l.latency, p.domains[src].now))
	}
	l.buf = append(l.buf, pmsg{at: at, a: a, b: b, h: h})
}

// minNext returns the global lower bound on the next event time across
// all domains, or false when every queue is empty.
func (p *ParallelKernel) minNext() (Time, bool) {
	bound := maxTime
	any := false
	for _, k := range p.domains {
		if t, ok := k.NextEventTime(); ok {
			any = true
			if t < bound {
				bound = t
			}
		}
	}
	return bound, any
}

// drain delivers every staged message into its destination kernel, link
// by link in creation order and in staging order within a link. The
// coordinator calls it single-threaded at the window barrier, so
// destination sequence numbers are deterministic. Reports whether any
// message was delivered.
func (p *ParallelKernel) drain() bool {
	delivered := false
	for i := range p.links {
		l := &p.links[i]
		if len(l.buf) == 0 {
			continue
		}
		dst := p.domains[l.dst]
		for _, m := range l.buf {
			dst.AtEvent(m.at, m.h, m.a, m.b)
		}
		l.buf = l.buf[:0]
		delivered = true
	}
	return delivered
}

// runWindow executes every domain up to (but excluding) horizon, on up
// to workers goroutines. A horizon of maxTime runs each domain to
// completion (the no-links fast path).
func (p *ParallelKernel) runWindow(horizon Time, workers int) {
	run := func(k *Kernel) {
		if horizon == maxTime {
			k.Run()
		} else {
			k.RunBefore(horizon)
		}
	}
	if workers <= 1 || len(p.domains) == 1 {
		for _, k := range p.domains {
			run(k)
		}
		return
	}
	if workers > len(p.domains) {
		workers = len(p.domains)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Static round-robin assignment: which goroutine runs a
			// domain never affects results, only wall-clock balance.
			for i := w; i < len(p.domains); i += workers {
				run(p.domains[i])
			}
		}(w)
	}
	wg.Wait()
}

// Run executes the parallel simulation to completion on up to workers
// goroutines (<= 1 runs the window loop single-threaded, which is the
// reference schedule — results are byte-identical for every worker
// count). It returns the latest domain clock.
func (p *ParallelKernel) Run(workers int) Time {
	for {
		bound, ok := p.minNext()
		if !ok {
			break
		}
		horizon := maxTime
		if p.lookahead < maxTime-bound {
			horizon = bound + p.lookahead
		}
		p.runWindow(horizon, workers)
		p.drain()
	}
	end := Time(0)
	for _, k := range p.domains {
		if k.now > end {
			end = k.now
		}
	}
	return end
}
