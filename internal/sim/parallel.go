// Conservative parallel simulation — design note.
//
// A ParallelKernel advances its domains in windows: compute the global
// next-event lower bound, let every domain run all events strictly
// below bound+lookahead, then hold a barrier where cross-domain
// messages staged on declared links are delivered in link-creation
// order. Lookahead is the minimum declared link latency, so no message
// staged during a window can land inside it — the windows are safe by
// construction, and because staging and draining are pure functions of
// simulation state, results are byte-identical at every worker count.
// A single worker runs the identical window loop single-threaded; the
// serial schedule is the reference the parallel one is defined against,
// which is why goldens are always pinned from serial runs.
//
// Coupled fabrics (the barrier-replay merge protocol). Endpoints that
// share fabric state cannot free-run, but they can stage: each member
// runs its workload control loop on its own domain and records the
// packet pairs it would have issued, while all shared fabric state
// binds to a hub domain whose heap stays empty (the root-complex model
// is virtual-clock, not event-driven). At each barrier a Merger sorts
// the staged pairs by (issue time, issuing context, stage index) —
// the context is the virtual sequence number of the causally preceding
// event, so the sort reproduces the serial kernel's (time, seq) FCFS
// order exactly — replays them into the hub at their recorded times,
// and Sends each completion back over the member's link. The link's
// latency is a static lower bound on pair completion (wire, header
// serialization and pipeline latencies), so replayed completions
// always clear the conservative horizon.
//
// Randomness. Workload streams are per-endpoint (seeded by endpoint
// index) and live on the member domains, so they drain identically in
// any schedule. Root-complex jitter is per-socket state: island 0
// keeps its kernel's stream — preserving every golden pinned before
// islands existed, so the "re-pin" that accompanied this design was a
// documented no-op — while each further island draws from a stream
// derived from the spec seed and island id (topo.islandSeed). Serial
// builds install the same assignment, keeping jittery fabrics
// byte-identical serial-vs-parallel. On a coupled island the hub's
// jitter draws happen in replay order, which equals serial issue
// order, so they too match the serial build draw for draw.

package sim

import (
	"fmt"
	"math"
	"sync"
)

// maxTime is the largest representable simulated time, used as the
// window horizon when no cross-domain link bounds execution.
const maxTime = Time(math.MaxInt64)

// Domain is one partition of a parallel simulation: an independent
// Kernel (own heap, clock, sequence counter and random source) plus its
// index in the ParallelKernel that coordinates it.
type Domain struct {
	ID     int
	Kernel *Kernel
}

// pmsg is one staged cross-domain event.
type pmsg struct {
	at   Time
	a, b int64
	h    Handler
}

// plink is a directed (src,dst) channel between two domains. Messages
// staged on it during a window are delivered into dst's kernel at the
// window barrier, in staging order — so delivery order is a pure
// function of the simulation, never of goroutine scheduling.
type plink struct {
	src, dst int
	latency  Time
	buf      []pmsg
}

// Merger is a deterministic barrier hook: at every window barrier the
// coordinator invokes each registered merger, single-threaded and in
// registration order, before draining the staged cross-domain
// messages. A merger typically collects work its domains staged during
// the window, orders it by simulation time (re-establishing the serial
// schedule), replays it against shared state bound to a dedicated
// domain, and Sends the outcomes back over declared links — the
// coupled-fabric merge protocol internal/workload builds on.
type Merger interface {
	Merge(p *ParallelKernel)
}

// ParallelKernel runs several Kernels as one conservative
// parallel-discrete-event simulation. Domains execute concurrently in
// time windows: the coordinator computes the global lower bound (the
// minimum next-event time across domains), and every domain safely
// executes all events strictly below bound+lookahead, where lookahead
// is the minimum latency of any cross-domain link — no message sent
// during the window can arrive below that horizon. At the window
// barrier, mergers run first (single-threaded, in registration order),
// then staged messages are drained link by link in creation order and
// delivered into the destination kernels, so sequence numbers — and
// therefore (time,seq) tie-breaks — are identical at any worker
// count.
//
// Domains with no links at all (the island-partitioned fabric case)
// free-run to completion in a single window.
//
// A ParallelKernel is not safe for concurrent use by multiple
// callers; Send may only be called from a handler executing on the
// sending domain's kernel during Run, or from a Merger at the barrier.
type ParallelKernel struct {
	domains   []*Kernel
	links     []plink
	linkIdx   map[[2]int]int
	lookahead Time // min link latency; maxTime when no links
	mergers   []Merger
}

// NewParallel builds a coordinator over the given kernels; kernels[i]
// becomes domain i. The kernels must not be shared between domains.
func NewParallel(kernels []*Kernel) *ParallelKernel {
	if len(kernels) == 0 {
		panic("sim: NewParallel needs at least one domain")
	}
	return &ParallelKernel{
		domains:   kernels,
		linkIdx:   make(map[[2]int]int),
		lookahead: maxTime,
	}
}

// Domains returns the number of domains.
func (p *ParallelKernel) Domains() int { return len(p.domains) }

// Domain returns domain i.
func (p *ParallelKernel) Domain(i int) Domain { return Domain{ID: i, Kernel: p.domains[i]} }

// Lookahead returns the conservative window width: the minimum latency
// over all links, or the maximum time when no links exist.
func (p *ParallelKernel) Lookahead() Time { return p.lookahead }

// Connect declares a directed communication channel from domain src to
// domain dst with the given minimum propagation latency (>= 1 ps; the
// link/switch wire and forwarding delays of a PCIe fabric). Every
// cross-domain event must flow through a declared link via Send.
// Declaring a link shrinks the lookahead to the smallest latency.
func (p *ParallelKernel) Connect(src, dst int, latency Time) {
	if src < 0 || src >= len(p.domains) || dst < 0 || dst >= len(p.domains) {
		panic(fmt.Sprintf("sim: link %d->%d outside %d domains", src, dst, len(p.domains)))
	}
	if src == dst {
		panic("sim: a domain needs no link to itself")
	}
	if latency < Picosecond {
		panic(fmt.Sprintf("sim: link %d->%d latency %v must be >= 1ps", src, dst, latency))
	}
	key := [2]int{src, dst}
	if _, dup := p.linkIdx[key]; dup {
		panic(fmt.Sprintf("sim: link %d->%d already declared", src, dst))
	}
	p.linkIdx[key] = len(p.links)
	p.links = append(p.links, plink{src: src, dst: dst, latency: latency})
	if latency < p.lookahead {
		p.lookahead = latency
	}
}

// Send stages h.Handle(dstKernel, a, b) at absolute time at in domain
// dst, from a handler currently executing on domain src. The
// destination sees it after the current window's barrier. at must
// respect the link's declared latency (at >= src.Now()+latency);
// violating it would break the conservative horizon and panics.
func (p *ParallelKernel) Send(src, dst int, at Time, h Handler, a, b int64) {
	idx, ok := p.linkIdx[[2]int{src, dst}]
	if !ok {
		panic(fmt.Sprintf("sim: send on undeclared link %d->%d", src, dst))
	}
	l := &p.links[idx]
	if min := p.domains[src].now + l.latency; at < min {
		panic(fmt.Sprintf("sim: send on link %d->%d at %v violates latency %v (now %v)",
			src, dst, at, l.latency, p.domains[src].now))
	}
	l.buf = append(l.buf, pmsg{at: at, a: a, b: b, h: h})
}

// AddMerger registers a barrier hook. Mergers run single-threaded at
// every window barrier, in registration order, before staged messages
// are drained — so everything a merger Sends is delivered in the same
// barrier. Registration order is part of the deterministic schedule;
// callers must register mergers in a fixed order (topo registers one
// per coupled island, ascending).
func (p *ParallelKernel) AddMerger(m Merger) {
	p.mergers = append(p.mergers, m)
}

// minNext returns the global lower bound on the next event time across
// all domains, or false when every queue is empty.
func (p *ParallelKernel) minNext() (Time, bool) {
	bound := maxTime
	any := false
	for _, k := range p.domains {
		if t, ok := k.NextEventTime(); ok {
			any = true
			if t < bound {
				bound = t
			}
		}
	}
	return bound, any
}

// drain delivers every staged message into its destination kernel, link
// by link in creation order and in staging order within a link. The
// coordinator calls it single-threaded at the window barrier, so
// destination sequence numbers are deterministic. Reports whether any
// message was delivered.
func (p *ParallelKernel) drain() bool {
	delivered := false
	for i := range p.links {
		l := &p.links[i]
		if len(l.buf) == 0 {
			continue
		}
		dst := p.domains[l.dst]
		for _, m := range l.buf {
			dst.AtEvent(m.at, m.h, m.a, m.b)
		}
		l.buf = l.buf[:0]
		delivered = true
	}
	return delivered
}

// mergeAndDrain runs the barrier: mergers first (they may stage more
// messages), then the drain. Reports whether any message was delivered.
func (p *ParallelKernel) mergeAndDrain() bool {
	for _, m := range p.mergers {
		m.Merge(p)
	}
	return p.drain()
}

// runWindow executes every domain up to (but excluding) horizon, on up
// to workers goroutines. A horizon of maxTime runs each domain to
// completion (the no-links fast path).
func (p *ParallelKernel) runWindow(horizon Time, workers int) {
	run := func(k *Kernel) {
		if horizon == maxTime {
			k.Run()
		} else {
			k.RunBefore(horizon)
		}
	}
	if workers <= 1 || len(p.domains) == 1 {
		for _, k := range p.domains {
			run(k)
		}
		return
	}
	if workers > len(p.domains) {
		workers = len(p.domains)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Static round-robin assignment: which goroutine runs a
			// domain never affects results, only wall-clock balance.
			for i := w; i < len(p.domains); i += workers {
				run(p.domains[i])
			}
		}(w)
	}
	wg.Wait()
}

// Run executes the parallel simulation to completion on up to workers
// goroutines (<= 1 runs the window loop single-threaded, which is the
// reference schedule — results are byte-identical for every worker
// count). It returns the latest domain clock.
func (p *ParallelKernel) Run(workers int) Time {
	for {
		bound, ok := p.minNext()
		if !ok {
			// Every heap is empty, but a merger may still hold staged
			// work (coupled-fabric replay); only stop once a barrier
			// delivers nothing.
			if !p.mergeAndDrain() {
				break
			}
			continue
		}
		horizon := maxTime
		if p.lookahead < maxTime-bound {
			horizon = bound + p.lookahead
		}
		p.runWindow(horizon, workers)
		p.mergeAndDrain()
	}
	end := Time(0)
	for _, k := range p.domains {
		if k.now > end {
			end = k.now
		}
	}
	return end
}
