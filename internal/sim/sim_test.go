package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ps",
		1500:            "1.5ns",
		2 * Microsecond: "2.00us",
		3 * Millisecond: "3.00ms",
		2 * Second:      "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromNS(1.5) != 1500 {
		t.Errorf("FromNS(1.5) = %d", FromNS(1.5))
	}
	if (1500 * Picosecond).Nanoseconds() != 1.5 {
		t.Error("Nanoseconds conversion")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion")
	}
}

func TestKernelOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.At(300, func() { order = append(order, 3) })
	k.At(100, func() { order = append(order, 1) })
	k.At(200, func() { order = append(order, 2) })
	end := k.Run()
	if end != 300 {
		t.Errorf("end time %v, want 300ps", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelCascade(t *testing.T) {
	k := New(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			k.After(10, step)
		}
	}
	k.After(0, step)
	end := k.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if end != 990 {
		t.Errorf("end = %v, want 990ps", end)
	}
	if k.Executed != 100 {
		t.Errorf("Executed = %d", k.Executed)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	k := New(1)
	k.At(100, func() { k.At(50, func() {}) })
	k.Run()
}

func TestAfterClampsNegative(t *testing.T) {
	k := New(1)
	ran := false
	k.After(-5, func() { ran = true })
	k.Run()
	if !ran {
		t.Error("negative After did not run")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var ran []Time
	for _, at := range []Time{100, 200, 300, 400} {
		at := at
		k.At(at, func() { ran = append(ran, at) })
	}
	k.RunUntil(250)
	if len(ran) != 2 {
		t.Errorf("ran %v, want 2 events", ran)
	}
	if k.Now() != 250 {
		t.Errorf("now = %v, want 250", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("pending = %d, want 2", k.Pending())
	}
	k.Run()
	if len(ran) != 4 {
		t.Errorf("after Run: ran %v", ran)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var samples []int64
		var tick func()
		tick = func() {
			samples = append(samples, int64(k.Now()), k.Rand().Int63n(1000))
			if len(samples) < 100 {
				k.After(Time(k.Rand().Int63n(500)+1), tick)
			}
		}
		k.After(1, tick)
		k.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestServerSerializes(t *testing.T) {
	k := New(1)
	s := NewServer(k)
	// Three back-to-back requests at t=0 serialize.
	c1 := s.Schedule(100)
	c2 := s.Schedule(100)
	c3 := s.Schedule(100)
	if c1 != 100 || c2 != 200 || c3 != 300 {
		t.Errorf("completions %v %v %v, want 100 200 300", c1, c2, c3)
	}
	if s.NextFree() != 300 {
		t.Errorf("NextFree = %v", s.NextFree())
	}
}

func TestServerIdleGap(t *testing.T) {
	k := New(1)
	s := NewServer(k)
	s.Schedule(100)
	// Advance time past the busy period; the next request starts at now.
	k.At(500, func() {
		if c := s.Schedule(50); c != 550 {
			t.Errorf("completion %v, want 550", c)
		}
	})
	k.Run()
}

func TestServerScheduleAt(t *testing.T) {
	k := New(1)
	s := NewServer(k)
	if c := s.ScheduleAt(1000, 100); c != 1100 {
		t.Errorf("ScheduleAt(1000,100) = %v", c)
	}
	// Earlier request still queues after (virtual clock moved forward).
	if c := s.ScheduleAt(0, 100); c != 1200 {
		t.Errorf("second ScheduleAt = %v, want 1200", c)
	}
}

func TestServerUtilization(t *testing.T) {
	k := New(1)
	s := NewServer(k)
	s.Schedule(500)
	k.At(1000, func() {})
	k.Run()
	if u := s.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestMultiServerParallelism(t *testing.T) {
	k := New(1)
	m := NewMultiServer(k, 2)
	c1 := m.Schedule(100)
	c2 := m.Schedule(100)
	c3 := m.Schedule(100)
	if c1 != 100 || c2 != 100 {
		t.Errorf("first two should run in parallel: %v %v", c1, c2)
	}
	if c3 != 200 {
		t.Errorf("third should queue: %v", c3)
	}
	if m.Slots() != 2 {
		t.Errorf("Slots = %d", m.Slots())
	}
}

func TestMultiServerClampsSlots(t *testing.T) {
	k := New(1)
	if m := NewMultiServer(k, 0); m.Slots() != 1 {
		t.Error("0 slots not clamped to 1")
	}
}

// Property: a MultiServer with m slots completes n equal jobs in
// ceil(n/m) * d when all are submitted at t=0.
func TestMultiServerThroughput(t *testing.T) {
	f := func(nn, mm uint8) bool {
		n := int(nn%50) + 1
		m := int(mm%8) + 1
		k := New(1)
		srv := NewMultiServer(k, m)
		var last Time
		for i := 0; i < n; i++ {
			if c := srv.Schedule(100); c > last {
				last = c
			}
		}
		batches := (n + m - 1) / m
		return last == Time(batches*100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Server completions are monotonically non-decreasing in
// submission order regardless of service times.
func TestServerMonotoneCompletions(t *testing.T) {
	f := func(ds []uint16) bool {
		k := New(1)
		s := NewServer(k)
		var prev Time = -1
		for _, d := range ds {
			c := s.Schedule(Time(d % 1000))
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
