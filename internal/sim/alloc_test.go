package sim

import "testing"

// selfScheduler reschedules itself n times through the typed-event API.
type selfScheduler struct{ n int }

func (s *selfScheduler) Handle(k *Kernel, a, b int64) {
	if s.n > 0 {
		s.n--
		k.AfterEvent(Nanosecond, s, a, b)
	}
}

// TestTypedEventLoopZeroAlloc asserts the kernel's steady-state event
// loop — schedule, heap sift, dispatch — performs zero heap
// allocations once the queue storage has grown.
func TestTypedEventLoopZeroAlloc(t *testing.T) {
	k := New(1)
	// Pre-grow the heap storage beyond anything the loop will hold.
	h := &selfScheduler{}
	for i := 0; i < 64; i++ {
		k.AtEvent(Time(i), h, 0, 0)
	}
	k.Run()

	const events = 1000
	allocs := testing.AllocsPerRun(10, func() {
		s := &selfScheduler{n: events}
		k.AfterEvent(0, s, 0, 0)
		k.Run()
	})
	// One allocation per run for the selfScheduler itself; the events
	// must contribute nothing.
	if allocs > 1 {
		t.Fatalf("event loop allocated %.1f times per %d events, want <= 1 (the handler)", allocs, events)
	}
}

// TestMultiServerEarliestSlot is the regression test for the
// ScheduleAt min-scan: with staggered busy slots, work must land on the
// earliest-free slot, including slots later in the array than slot 0.
func TestMultiServerEarliestSlot(t *testing.T) {
	k := New(1)
	s := NewMultiServer(k, 3)

	// Occupy the slots with decreasing horizons: slot 0 busiest, slot 2
	// freest. (Schedule fills the current earliest slot each call.)
	if got := s.ScheduleAt(0, 300); got != 300 {
		t.Fatalf("first reservation done at %v, want 300", got)
	}
	if got := s.ScheduleAt(0, 200); got != 200 {
		t.Fatalf("second reservation done at %v, want 200", got)
	}
	if got := s.ScheduleAt(0, 100); got != 100 {
		t.Fatalf("third reservation done at %v, want 100", got)
	}

	// All slots busy; the earliest-free is the one that frees at 100 —
	// a non-zero slot index. A scan that sticks to slot 0 would return
	// 300+50.
	if got := s.ScheduleAt(0, 50); got != 150 {
		t.Fatalf("fourth reservation done at %v, want 150 (queued behind the earliest-free slot)", got)
	}
	// And again: now the horizons are {300, 200, 150}; next lands at 150.
	if got := s.ScheduleAt(0, 25); got != 175 {
		t.Fatalf("fifth reservation done at %v, want 175", got)
	}

	// A request that starts later than every slot's horizon begins at
	// its own start time.
	if got := s.ScheduleAt(1000, 10); got != 1010 {
		t.Fatalf("late reservation done at %v, want 1010", got)
	}
}
