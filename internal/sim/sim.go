// Package sim provides the discrete-event simulation kernel underlying
// pciebench's performance tier.
//
// The kernel keeps virtual time in integer picoseconds, runs callbacks
// from a binary-heap event queue, and offers the virtual-clock resource
// abstractions (Server, MultiServer) with which link directions, pipeline
// slots, DRAM channels and IOMMU page walkers are modeled. All randomness
// flows from a single seeded source so simulations are reproducible
// bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in picoseconds.
type Time int64

// Convenient durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.1fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	}
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// FromNS converts a float64 nanosecond value to Time.
func FromNS(ns float64) Time { return Time(ns * float64(Nanosecond)) }

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; a simulation is a single logical thread of control.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// Executed counts events run, a cheap progress/debug metric.
	Executed uint64
}

// New returns a kernel whose random source is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
	k.seq++
}

// After schedules fn to run d picoseconds from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty and returns the final
// time.
func (k *Kernel) Run() Time {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.Executed++
		e.fn()
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.Executed++
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Server is a single-server FIFO resource using virtual-clock
// bookkeeping: callers ask for an amount of service time and receive the
// completion timestamp; requests queue implicitly by pushing the
// next-free horizon forward. This models any fully serialized resource —
// one direction of a PCIe link, a DMA engine's issue stage, a memory
// channel.
type Server struct {
	k    *Kernel
	free Time
	busy Time // cumulative service time, for utilization accounting
}

// NewServer returns a server bound to kernel k.
func NewServer(k *Kernel) *Server { return &Server{k: k} }

// Schedule reserves d of service time and returns the completion time.
// Service begins at max(now, next-free).
func (s *Server) Schedule(d Time) Time {
	start := s.k.now
	if s.free > start {
		start = s.free
	}
	s.free = start + d
	s.busy += d
	return s.free
}

// ScheduleAt reserves d of service starting no earlier than t.
func (s *Server) ScheduleAt(t Time, d Time) Time {
	start := t
	if s.k.now > start {
		start = s.k.now
	}
	if s.free > start {
		start = s.free
	}
	s.free = start + d
	s.busy += d
	return s.free
}

// NextFree returns the time at which the server falls idle.
func (s *Server) NextFree() Time { return s.free }

// Utilization returns busy time divided by elapsed time (0 if no time
// has passed).
func (s *Server) Utilization() float64 {
	if s.k.now == 0 {
		return 0
	}
	return float64(s.busy) / float64(s.k.now)
}

// MultiServer is an m-server FIFO resource: up to m requests are in
// service concurrently, further requests wait for the earliest free
// slot. It models resources with internal parallelism — IOMMU page
// walkers, root-complex pipeline slots, DRAM banks.
type MultiServer struct {
	k     *Kernel
	slots []Time
	busy  Time
}

// NewMultiServer returns an m-slot server (m >= 1).
func NewMultiServer(k *Kernel, m int) *MultiServer {
	if m < 1 {
		m = 1
	}
	return &MultiServer{k: k, slots: make([]Time, m)}
}

// Schedule reserves d of service on the earliest available slot,
// returning the completion time.
func (s *MultiServer) Schedule(d Time) Time {
	return s.ScheduleAt(s.k.now, d)
}

// ScheduleAt reserves d of service starting no earlier than t.
func (s *MultiServer) ScheduleAt(t Time, d Time) Time {
	// Find the earliest-free slot.
	best := 0
	for i, f := range s.slots {
		if f < s.slots[best] {
			best = i
		}
		_ = f
	}
	start := t
	if s.k.now > start {
		start = s.k.now
	}
	if s.slots[best] > start {
		start = s.slots[best]
	}
	s.slots[best] = start + d
	s.busy += d
	return s.slots[best]
}

// Slots returns the number of parallel servers.
func (s *MultiServer) Slots() int { return len(s.slots) }

// Utilization returns aggregate busy time over elapsed time times slots.
func (s *MultiServer) Utilization() float64 {
	if s.k.now == 0 {
		return 0
	}
	return float64(s.busy) / (float64(s.k.now) * float64(len(s.slots)))
}
