// Package sim provides the discrete-event simulation kernel underlying
// pciebench's performance tier.
//
// The kernel keeps virtual time in integer picoseconds, runs events from
// a monomorphic 4-ary heap, and offers the virtual-clock resource
// abstractions (Server, MultiServer) with which link directions, pipeline
// slots, DRAM channels and IOMMU page walkers are modeled. All randomness
// flows from a single seeded source so simulations are reproducible
// bit-for-bit.
//
// # Typed events
//
// The event queue is allocation-free in steady state. An event is a plain
// struct carrying its timestamp, a FIFO sequence number, a Handler
// interface value and two opaque int64 arguments; hot paths implement
// Handler on a pointer (or another pointer-shaped type) and pass their
// per-event state through the integer arguments, so scheduling never
// heap-allocates. The closure-based At/After API remains for control
// paths and tests: a func value is itself pointer-shaped, so wrapping it
// costs only whatever the closure captures. The queue is a hand-rolled
// 4-ary heap ordered by (time, sequence); because that key is a strict
// total order, the pop order — and therefore every simulation result —
// is identical to the previous container/heap implementation, just
// without the per-push interface boxing and with a shallower, more
// cache-friendly sift path.
//
// # Parallel domains
//
// ParallelKernel coordinates several Kernels as one conservative
// parallel simulation (parallel.go). Each domain keeps the (time,seq)
// FIFO semantics of its own heap; the coordinator advances all domains
// in time windows of width lookahead — the minimum propagation latency
// of any declared cross-domain link — so a domain can execute every
// event strictly below the window horizon before any message from a
// peer could arrive. Cross-domain events flow through per-(src,dst)
// ordered channels staged during the window and delivered at the
// barrier in a fixed link order, which makes destination sequence
// numbers — and therefore all tie-breaks and results — a pure function
// of the simulation, byte-identical at any worker count. Domains with
// no links (independent islands of a partitioned PCIe fabric) free-run
// to completion in a single window with zero coordination overhead.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is simulated time in picoseconds.
type Time int64

// Convenient durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.1fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	}
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// FromNS converts a float64 nanosecond value to Time.
func FromNS(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Handler is the typed-event callback: the kernel invokes Handle at the
// event's timestamp with the two int64 arguments given at scheduling
// time. Implementations on pointer receivers (or other pointer-shaped
// types, such as single-pointer structs or named func types) can be
// scheduled without heap allocation.
type Handler interface {
	Handle(k *Kernel, a, b int64)
}

// funcHandler adapts a plain closure to Handler. Named func types are
// pointer-shaped, so the interface conversion does not allocate.
type funcHandler func()

// Handle implements Handler by calling the wrapped closure.
func (f funcHandler) Handle(*Kernel, int64, int64) { f() }

// event is one scheduled typed event.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	a, b int64
	h    Handler
}

// before orders events by (time, sequence) — a strict total order, since
// every event gets a unique sequence number.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; a simulation is a single logical thread of control.
type Kernel struct {
	now    Time
	events []event // 4-ary min-heap ordered by (at, seq)
	seq    uint64
	rng    *rand.Rand

	// Executed counts events run, a cheap progress/debug metric.
	Executed uint64
}

// New returns a kernel whose random source is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t Time, fn func()) {
	k.AtEvent(t, funcHandler(fn), 0, 0)
}

// After schedules fn to run d picoseconds from now.
func (k *Kernel) After(d Time, fn func()) {
	k.AfterEvent(d, funcHandler(fn), 0, 0)
}

// AtEvent schedules h.Handle(k, a, b) at absolute time t without
// allocating (provided h is pointer-shaped). Scheduling in the past is a
// programming error and panics.
func (k *Kernel) AtEvent(t Time, h Handler, a, b int64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	k.push(event{at: t, seq: k.seq, a: a, b: b, h: h})
	k.seq++
}

// AfterEvent schedules h.Handle(k, a, b) d picoseconds from now.
func (k *Kernel) AfterEvent(d Time, h Handler, a, b int64) {
	if d < 0 {
		d = 0
	}
	k.AtEvent(k.now+d, h, a, b)
}

// push inserts e into the 4-ary heap, sifting up with a hole instead of
// pairwise swaps.
func (k *Kernel) push(e event) {
	q := append(k.events, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	k.events = q
}

// pop removes and returns the earliest event. The caller guarantees the
// heap is non-empty.
func (k *Kernel) pop() event {
	q := k.events
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the Handler reference for the GC
	q = q[:n]
	if n > 0 {
		// Sift the former tail down from the root, moving the hole.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].before(&q[m]) {
					m = j
				}
			}
			if !q[m].before(&last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	k.events = q
	return top
}

// Run executes events until the queue is empty and returns the final
// time.
func (k *Kernel) Run() Time {
	for len(k.events) > 0 {
		e := k.pop()
		k.now = e.at
		k.Executed++
		e.h.Handle(k, e.a, e.b)
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := k.pop()
		k.now = e.at
		k.Executed++
		e.h.Handle(k, e.a, e.b)
	}
	if k.now < t {
		k.now = t
	}
}

// RunBefore executes events with timestamps strictly below t and leaves
// the clock at the last executed event. Events at or beyond t remain
// queued. This is the conservative-window primitive of ParallelKernel:
// a domain may safely run everything below the window horizon, because
// no cross-domain message can arrive earlier.
func (k *Kernel) RunBefore(t Time) {
	for len(k.events) > 0 && k.events[0].at < t {
		e := k.pop()
		k.now = e.at
		k.Executed++
		e.h.Handle(k, e.a, e.b)
	}
}

// NextEventTime returns the timestamp of the earliest queued event, or
// false when the queue is empty.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Server is a single-server FIFO resource using virtual-clock
// bookkeeping: callers ask for an amount of service time and receive the
// completion timestamp; requests queue implicitly by pushing the
// next-free horizon forward. This models any fully serialized resource —
// one direction of a PCIe link, a DMA engine's issue stage, a memory
// channel.
type Server struct {
	k    *Kernel
	free Time
	busy Time // cumulative service time, for utilization accounting
}

// NewServer returns a server bound to kernel k.
func NewServer(k *Kernel) *Server { return &Server{k: k} }

// Schedule reserves d of service time and returns the completion time.
// Service begins at max(now, next-free).
func (s *Server) Schedule(d Time) Time {
	start := s.k.now
	if s.free > start {
		start = s.free
	}
	s.free = start + d
	s.busy += d
	return s.free
}

// ScheduleAt reserves d of service starting no earlier than t.
func (s *Server) ScheduleAt(t Time, d Time) Time {
	start := t
	if s.k.now > start {
		start = s.k.now
	}
	if s.free > start {
		start = s.free
	}
	s.free = start + d
	s.busy += d
	return s.free
}

// NextFree returns the time at which the server falls idle.
func (s *Server) NextFree() Time { return s.free }

// Utilization returns busy time divided by elapsed time (0 if no time
// has passed).
func (s *Server) Utilization() float64 {
	if s.k.now == 0 {
		return 0
	}
	return float64(s.busy) / float64(s.k.now)
}

// MultiServer is an m-server FIFO resource: up to m requests are in
// service concurrently, further requests wait for the earliest free
// slot. It models resources with internal parallelism — IOMMU page
// walkers, root-complex pipeline slots, DRAM banks.
type MultiServer struct {
	k     *Kernel
	slots []Time
	busy  Time
}

// NewMultiServer returns an m-slot server (m >= 1).
func NewMultiServer(k *Kernel, m int) *MultiServer {
	if m < 1 {
		m = 1
	}
	return &MultiServer{k: k, slots: make([]Time, m)}
}

// Schedule reserves d of service on the earliest available slot,
// returning the completion time.
func (s *MultiServer) Schedule(d Time) Time {
	return s.ScheduleAt(s.k.now, d)
}

// ScheduleAt reserves d of service starting no earlier than t.
func (s *MultiServer) ScheduleAt(t Time, d Time) Time {
	// Direct min-scan for the earliest-free slot.
	best := 0
	bestFree := s.slots[0]
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i] < bestFree {
			best, bestFree = i, s.slots[i]
		}
	}
	start := t
	if s.k.now > start {
		start = s.k.now
	}
	if bestFree > start {
		start = bestFree
	}
	s.slots[best] = start + d
	s.busy += d
	return s.slots[best]
}

// Slots returns the number of parallel servers.
func (s *MultiServer) Slots() int { return len(s.slots) }

// Utilization returns aggregate busy time over elapsed time times slots.
func (s *MultiServer) Utilization() float64 {
	if s.k.now == 0 {
		return 0
	}
	return float64(s.busy) / (float64(s.k.now) * float64(len(s.slots)))
}
