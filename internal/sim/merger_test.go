package sim

import (
	"reflect"
	"testing"
)

// TestParallelHorizonOverflowGuard pins the window-arithmetic edge: a
// bound close to the time horizon plus a huge lookahead must saturate
// at maxTime instead of wrapping negative (which would stall the run
// loop forever on an empty window).
func TestParallelHorizonOverflowGuard(t *testing.T) {
	kernels := []*Kernel{New(1), New(1)}
	pk := NewParallel(kernels)
	pk.Connect(0, 1, maxTime/2)

	var ran [2]int // per-domain: windows run concurrently
	kernels[0].At(maxTime-Nanosecond, func() { ran[0]++ })
	kernels[1].At(maxTime-2*Nanosecond, func() { ran[1]++ })
	end := pk.Run(2)
	if ran[0] != 1 || ran[1] != 1 {
		t.Fatalf("ran %v events near maxTime, want one each", ran)
	}
	if end != maxTime-Nanosecond {
		t.Fatalf("end %v, want %v", end, maxTime-Nanosecond)
	}
}

// countMerger stages one message per barrier until its budget runs out,
// recording each activation in a shared log.
type countMerger struct {
	name    string
	log     *[]string
	src     int
	dst     int
	lat     Time
	budget  int
	deliver *[]Time // receiver-side arrival times
}

func (m *countMerger) Merge(p *ParallelKernel) {
	*m.log = append(*m.log, m.name)
	if m.budget <= 0 {
		return
	}
	m.budget--
	at := p.Domain(m.src).Kernel.Now() + m.lat
	p.Send(m.src, m.dst, at, funcHandler(func() {
		*m.deliver = append(*m.deliver, p.Domain(m.dst).Kernel.Now())
	}), 0, 0)
}

// TestParallelMergers pins the barrier hook contract: mergers run at
// every window barrier in registration order, may stage sends even
// when every heap is empty, and the run only stops once a barrier
// delivers nothing new.
func TestParallelMergers(t *testing.T) {
	kernels := []*Kernel{New(1), New(1)}
	pk := NewParallel(kernels)
	lat := 10 * Nanosecond
	pk.Connect(0, 1, lat)

	var log []string
	var arrivals []Time
	m1 := &countMerger{name: "a", log: &log, src: 0, dst: 1, lat: lat, budget: 3, deliver: &arrivals}
	m2 := &countMerger{name: "b", log: &log, src: 0, dst: 1, lat: lat, budget: 0, deliver: &arrivals}
	pk.AddMerger(m1)
	pk.AddMerger(m2)

	// No initial events anywhere: all progress comes from barriers.
	pk.Run(2)

	if len(arrivals) != 3 {
		t.Fatalf("delivered %d staged messages, want 3", len(arrivals))
	}
	for _, at := range arrivals {
		if at < lat {
			t.Fatalf("arrival %v beat the link latency %v", at, lat)
		}
	}
	// Every barrier ran both mergers, in registration order; the final
	// barrier (which delivered nothing) still ran them once.
	if len(log) < 8 || len(log)%2 != 0 {
		t.Fatalf("merger activations %v", log)
	}
	for i := 0; i < len(log); i += 2 {
		if !reflect.DeepEqual(log[i:i+2], []string{"a", "b"}) {
			t.Fatalf("barrier %d ran mergers as %v, want [a b]", i/2, log[i:i+2])
		}
	}
}
