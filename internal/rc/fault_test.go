package rc

import (
	"testing"

	"pciebench/internal/fault"
	"pciebench/internal/sim"
)

// faultyRC builds a root complex whose port 0 has the given fault
// model installed with streams seeded from seed.
func faultyRC(t *testing.T, seed int64, cfg fault.Config) (*RootComplex, *fault.Counters) {
	t.Helper()
	_, r, _ := newRC(t)
	ctr := &fault.Counters{}
	r.Port(0).InstallFaults(cfg.WithDefaults(),
		fault.NewStream(seed, 0, fault.ClassLink),
		fault.NewStream(seed, 0, fault.ClassRetrain), ctr)
	return r, ctr
}

// TestLinkFaultReplays: at a BER high enough to corrupt a visible
// fraction of TLPs, reads replay (consuming link time, so completions
// arrive later than on a clean link), counters record every replay as
// correctable, and the whole sequence is a pure function of the seed.
func TestLinkFaultReplays(t *testing.T) {
	run := func(seed int64) ([]sim.Time, fault.Counters) {
		r, ctr := faultyRC(t, seed, fault.Config{BER: 1e-5})
		var done []sim.Time
		at := sim.Time(0)
		for i := 0; i < 200; i++ {
			res, err := r.DMARead(at, 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			done = append(done, res.Complete)
			at = res.Complete
		}
		return done, *ctr
	}
	done1, ctr1 := run(3)
	done2, ctr2 := run(3)
	if ctr1 != ctr2 {
		t.Fatalf("same seed, different counters: %+v vs %+v", ctr1, ctr2)
	}
	for i := range done1 {
		if done1[i] != done2[i] {
			t.Fatalf("same seed, read %d diverged: %d vs %d", i, done1[i], done2[i])
		}
	}
	if ctr1.Replays == 0 {
		t.Fatal("no replays at BER 1e-5 over 200 4KiB reads")
	}
	if ctr1.Correctable != ctr1.Replays {
		t.Errorf("replays %d not all counted correctable (%d)", ctr1.Replays, ctr1.Correctable)
	}

	// Clean link finishes the same read sequence strictly earlier.
	_, clean, _ := newRC(t)
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		res, err := clean.DMARead(at, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		at = res.Complete
	}
	if faulty := done1[len(done1)-1]; faulty <= at {
		t.Errorf("faulty link finished at %d, clean at %d; replays cost nothing", faulty, at)
	}
}

// TestLinkFaultRetrain: with a short MTBF the port periodically drops
// into Recovery (counted non-fatal) and runs degraded for a while
// after; reads issued across a retrain epoch complete later than on a
// healthy link.
func TestLinkFaultRetrain(t *testing.T) {
	r, ctr := faultyRC(t, 11, fault.Config{RetrainMTBF: 20 * sim.Microsecond})
	_, clean, _ := newRC(t)
	var at, cleanAt sim.Time
	for i := 0; i < 300; i++ {
		res, err := r.DMARead(at, 0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		at = res.Complete
		cres, err := clean.DMARead(cleanAt, 0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		cleanAt = cres.Complete
	}
	if ctr.Retrains == 0 {
		t.Fatalf("no retrains over %v of simulated traffic (MTBF 20us)", at)
	}
	if ctr.NonFatal != ctr.Retrains {
		t.Errorf("retrains %d not all counted non-fatal (%d)", ctr.Retrains, ctr.NonFatal)
	}
	if ctr.Replays != 0 {
		t.Errorf("replays %d with BER 0", ctr.Replays)
	}
	if at <= cleanAt {
		t.Errorf("retraining link finished at %d, clean at %d; dwell cost nothing", at, cleanAt)
	}
}

// TestFaultCountersAccessor: the port surfaces its counter block only
// once a fault model is installed.
func TestFaultCountersAccessor(t *testing.T) {
	_, r, _ := newRC(t)
	if r.Port(0).FaultCounters() != nil {
		t.Error("counters on a fault-free port")
	}
	ctr := &fault.Counters{}
	r.Port(0).InstallFaults(fault.Config{BER: 1e-9}.WithDefaults(),
		fault.NewStream(1, 0, fault.ClassLink),
		fault.NewStream(1, 0, fault.ClassRetrain), ctr)
	if r.Port(0).FaultCounters() != ctr {
		t.Error("installed counter block not returned")
	}
}
