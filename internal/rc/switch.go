package rc

import (
	"fmt"

	"pciebench/internal/dll"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/stats"
)

// SwitchConfig shapes a PCIe switch: N downstream ports funneled into
// one shared upstream link toward a socket's root port.
type SwitchConfig struct {
	// Uplink is the shared upstream link's configuration.
	Uplink pcie.LinkConfig
	// WireDelay is the uplink's propagation plus SerDes delay per
	// direction.
	WireDelay sim.Time
	// ForwardLatency is the per-TLP cut-through forwarding latency
	// (header decode plus crossbar transit; ~100-150ns on commodity
	// switches).
	ForwardLatency sim.Time
	// DrainLatency is how long after a TLP's arrival at the far side
	// its receiver buffer frees, returning flow-control credits.
	DrainLatency sim.Time
	// UpCredits bounds the up direction (toward the root port) per
	// dll pool; DownCredits bounds the down direction. A zero pool is
	// infinite.
	UpCredits   CreditLimits
	DownCredits CreditLimits
}

// CreditLimits carries the advertised dll credit pools of one link
// direction. A zero-valued pool means infinite (no flow-control stall),
// which is also what the PCIe spec mandates for endpoint completion
// buffers.
type CreditLimits struct {
	P   dll.Credits
	NP  dll.Credits
	Cpl dll.Credits
}

// pool returns the limit for one dll pool.
func (c CreditLimits) pool(ct dll.CreditType) dll.Credits {
	switch ct {
	case dll.Posted:
		return c.P
	case dll.NonPosted:
		return c.NP
	}
	return c.Cpl
}

// Validate checks that every finite pool can hold at least one
// maximum-sized TLP, so a single transfer can never stall forever.
func (c CreditLimits) Validate(mps int) error {
	for _, ct := range []dll.CreditType{dll.Posted, dll.NonPosted, dll.Completion} {
		lim := c.pool(ct)
		if lim == (dll.Credits{}) {
			continue
		}
		if lim.Hdr != dll.Infinite && lim.Hdr < 1 {
			return fmt.Errorf("rc: %v pool needs at least one header credit", ct)
		}
		if lim.Data != dll.Infinite && lim.Data < dll.DataCreditsFor(mps) {
			return fmt.Errorf("rc: %v pool's %d data credits cannot hold one %dB TLP", ct, lim.Data, mps)
		}
	}
	return nil
}

// Link directions through a switch.
const (
	dirUp = iota // toward the root port
	dirDown
	numDirs
)

// HopStats accumulates one downstream port's view of the shared uplink
// in one direction.
type HopStats struct {
	// TLPs and Bytes count traffic forwarded for the port.
	TLPs  uint64
	Bytes uint64
	// Wait accumulates arbitration plus flow-control delay: how long
	// TLPs sat eligible before the shared link served them. MaxWait is
	// the worst single TLP.
	Wait    sim.Time
	MaxWait sim.Time

	samples []float64 // per-TLP waits in ns, when sampling is enabled
}

// record adds one TLP's accounting.
func (h *HopStats) record(wire int, wait sim.Time, sampling bool) {
	h.TLPs++
	h.Bytes += uint64(wire)
	h.Wait += wait
	if wait > h.MaxWait {
		h.MaxWait = wait
	}
	if sampling {
		h.samples = append(h.samples, wait.Nanoseconds())
	}
}

// SwitchPortStats is one downstream port's uplink accounting.
type SwitchPortStats struct {
	Up   HopStats
	Down HopStats
	// P2PTLPs and P2PBytes count peer-to-peer traffic the switch
	// forwarded directly between its downstream ports, never touching
	// the uplink.
	P2PTLPs  uint64
	P2PBytes uint64
}

// fcRelease is one outstanding credit consumption awaiting its drain.
type fcRelease struct {
	at      sim.Time
	payload int
}

// fcWindow is one (direction, pool) flow-control window over the shared
// uplink, built from the internal/dll transmitter and receiver ledgers:
// forwarding a TLP consumes credits (dll.TxCredits.Consume) and records
// receiver occupancy (dll.RxCredits.Received); when the far side drains
// the TLP, the freed credits return via the cumulative UpdateFC
// advertisement exactly as on a real link. A TLP that finds the window
// exhausted stalls until enough earlier TLPs have drained — the
// deterministic virtual-clock form of flow-control backpressure.
type fcWindow struct {
	tx       *dll.TxCredits // nil = infinite pool, no accounting
	rx       *dll.RxCredits
	pool     dll.CreditType
	capacity dll.Credits
	pending  []fcRelease
	phead    int
}

// newFCWindow builds the window; a zero limit disables accounting.
func newFCWindow(pool dll.CreditType, limit dll.Credits) fcWindow {
	f := fcWindow{pool: pool, capacity: limit}
	if limit == (dll.Credits{}) {
		return f
	}
	inf := dll.Credits{Hdr: dll.Infinite, Data: dll.Infinite}
	lims := [3]dll.Credits{inf, inf, inf}
	lims[pool] = limit
	f.tx = dll.NewTxCredits(lims[0], lims[1], lims[2])
	f.rx = dll.NewRxCredits(lims[0], lims[1], lims[2])
	return f
}

// drainOne releases the oldest outstanding TLP's credits.
func (f *fcWindow) drainOne() {
	rel := f.pending[f.phead]
	f.phead++
	if f.phead == len(f.pending) {
		f.pending = f.pending[:0]
		f.phead = 0
	}
	// Errors are impossible by construction: every pending entry was
	// Received exactly once.
	_ = f.rx.Drained(f.pool, rel.payload)
	f.tx.Update(f.pool, f.rx.UpdateFC(f.pool))
}

// ready gates one TLP of payload bytes wanting to transmit at time t:
// it returns the (possibly later) time at which credits allow it, with
// the credits consumed.
func (f *fcWindow) ready(t sim.Time, payload int) sim.Time {
	if f.tx == nil {
		return t
	}
	for f.phead < len(f.pending) && f.pending[f.phead].at <= t {
		f.drainOne()
	}
	for !f.tx.CanSend(f.pool, payload) && f.phead < len(f.pending) {
		if rel := f.pending[f.phead].at; rel > t {
			t = rel
		}
		f.drainOne()
	}
	// Validate guarantees a lone TLP always fits, so CanSend holds now.
	_ = f.tx.Consume(f.pool, payload)
	f.rx.Received(f.pool, payload)
	return t
}

// note records the TLP's future drain. Drain times on one serialized
// direction are almost always monotone; the insertion keeps the FIFO
// sorted for the rare unreserved-return exceptions.
func (f *fcWindow) note(at sim.Time, payload int) {
	if f.tx == nil {
		return
	}
	f.pending = append(f.pending, fcRelease{at: at, payload: payload})
	for i := len(f.pending) - 1; i > f.phead && f.pending[i].at < f.pending[i-1].at; i-- {
		f.pending[i], f.pending[i-1] = f.pending[i-1], f.pending[i]
	}
}

// idle reports whether every consumed credit has been released once the
// clock passes every pending drain: receiver occupancy back to zero and
// the transmitter window reopened to the full advertised capacity.
// Anything else means credits leaked (or were double-released, which
// dll.RxCredits.Drained would have rejected).
func (f *fcWindow) idle() bool {
	if f.tx == nil {
		return true
	}
	for f.phead < len(f.pending) {
		f.drainOne()
	}
	if (f.rx.Pending(f.pool) != dll.Credits{}) {
		return false
	}
	return f.tx.Available(f.pool) == f.capacity
}

// Switch is a PCIe switch: downstream ports share one upstream link
// with per-TLP arbitration and dll flow-control credit windows.
//
// Arbitration is first-come-first-served per TLP in simulation-event
// order. Endpoints issue TLPs from closed control loops (bounded
// in-flight DMAs, refilled on completion events), so under sustained
// saturation the grant sequence degenerates to a deterministic
// round-robin rotation across the backlogged ports — the fairness the
// property tests pin. Forwarding is cut-through: a TLP's uplink
// serialization overlaps its downstream serialization, so an idle
// switch whose uplink matches the endpoint link adds only
// ForwardLatency (and a zero-latency same-speed switch is timing
// transparent, which the byte-identity tests assert).
type Switch struct {
	r     *RootComplex
	sock  *Socket
	index int
	cfg   SwitchConfig

	up   *sim.Server // shared uplink, toward the root port
	down *sim.Server // shared uplink, toward the endpoints

	fc [numDirs][3]fcWindow

	btLUT []sim.Time

	sampling bool
	pstats   []SwitchPortStats
}

// AddSwitch attaches a switch's uplink to the given socket.
func (r *RootComplex) AddSwitch(cfg SwitchConfig, sock *Socket) (*Switch, error) {
	if err := cfg.Uplink.Validate(); err != nil {
		return nil, err
	}
	if cfg.WireDelay < 0 || cfg.ForwardLatency < 0 || cfg.DrainLatency < 0 {
		return nil, fmt.Errorf("rc: switch delays must be >= 0")
	}
	if err := cfg.UpCredits.Validate(cfg.Uplink.MPS); err != nil {
		return nil, err
	}
	if err := cfg.DownCredits.Validate(cfg.Uplink.MPS); err != nil {
		return nil, err
	}
	if sock == nil {
		return nil, fmt.Errorf("rc: switch needs a socket")
	}
	sw := &Switch{
		r:     r,
		sock:  sock,
		index: len(r.switches),
		cfg:   cfg,
		up:    sim.NewServer(r.k),
		down:  sim.NewServer(r.k),
		btLUT: make([]sim.Time, cfg.Uplink.MPS+64+64),
	}
	for _, ct := range []dll.CreditType{dll.Posted, dll.NonPosted, dll.Completion} {
		sw.fc[dirUp][ct] = newFCWindow(ct, cfg.UpCredits.pool(ct))
		sw.fc[dirDown][ct] = newFCWindow(ct, cfg.DownCredits.pool(ct))
	}
	r.switches = append(r.switches, sw)
	return sw, nil
}

// addDownstream allocates one downstream port slot.
func (sw *Switch) addDownstream() int {
	sw.pstats = append(sw.pstats, SwitchPortStats{})
	return len(sw.pstats) - 1
}

// Config returns the switch configuration.
func (sw *Switch) Config() SwitchConfig { return sw.cfg }

// Socket returns the socket the uplink attaches to.
func (sw *Switch) Socket() *Socket { return sw.sock }

// Downstreams returns the number of attached downstream ports.
func (sw *Switch) Downstreams() int { return len(sw.pstats) }

// PortStats returns downstream port slot i's uplink accounting.
func (sw *Switch) PortStats(i int) *SwitchPortStats { return &sw.pstats[i] }

// EnableWaitSampling records every TLP's arbitration wait so callers
// can summarize per-hop latency percentiles. Off by default: sampling
// allocates.
func (sw *Switch) EnableWaitSampling() { sw.sampling = true }

// WaitSummary summarizes the recorded arbitration waits (in ns) of one
// direction across all downstream ports; ok is false when sampling was
// off or no TLPs crossed.
func (sw *Switch) WaitSummary(up bool) (stats.Summary, bool) {
	var all []float64
	for i := range sw.pstats {
		h := &sw.pstats[i].Up
		if !up {
			h = &sw.pstats[i].Down
		}
		all = append(all, h.samples...)
	}
	if len(all) == 0 {
		return stats.Summary{}, false
	}
	s, err := stats.Summarize(all)
	return s, err == nil
}

// UpUtilization returns the shared uplink's device->host utilization.
func (sw *Switch) UpUtilization() float64 { return sw.up.Utilization() }

// DownUtilization returns the shared uplink's host->device utilization.
func (sw *Switch) DownUtilization() float64 { return sw.down.Utilization() }

// FCIdle reports whether every flow-control pool has all credits
// returned after all pending drains elapse — the no-leak invariant the
// property tests check after arbitrary TLP sequences.
func (sw *Switch) FCIdle() bool {
	for d := 0; d < numDirs; d++ {
		for ct := 0; ct < 3; ct++ {
			if !sw.fc[d][ct].idle() {
				return false
			}
		}
	}
	return true
}

// bytesTime returns the serialization time of n wire bytes on the
// uplink, memoized like Port.bytesTime.
func (sw *Switch) bytesTime(n int) sim.Time {
	if n < len(sw.btLUT) {
		if v := sw.btLUT[n]; v != 0 {
			return v
		}
		v := sim.Time(sw.cfg.Uplink.BytesTime(n))
		sw.btLUT[n] = v
		return v
	}
	return sim.Time(sw.cfg.Uplink.BytesTime(n))
}

// forwardUp carries one TLP from downstream slot pi across the shared
// uplink toward the root port. ready is when the TLP's header is
// eligible at the switch egress (downstream arrival plus
// ForwardLatency); prevSer is its serialization time on the ingress
// link, which cut-through forwarding overlaps with the uplink's own
// serialization. Returns when the TLP finishes serializing on the
// uplink; its arrival at the root port is that plus the uplink
// WireDelay.
func (sw *Switch) forwardUp(pi int, ready, prevSer sim.Time, wire, payload int, pool dll.CreditType) sim.Time {
	d := sw.bytesTime(wire)
	overlap := d
	if prevSer < overlap {
		overlap = prevSer
	}
	eligible := ready - overlap
	s := sw.fc[dirUp][pool].ready(eligible, payload)
	done := sw.up.ScheduleAt(s, d)
	wait := done - d - eligible
	if wait < 0 {
		wait = 0
	}
	sw.pstats[pi].Up.record(wire, wait, sw.sampling)
	sw.fc[dirUp][pool].note(done+sw.cfg.WireDelay+sw.cfg.DrainLatency, payload)
	return done
}

// forwardDown carries one TLP from the root port across the shared
// uplink toward downstream slot pi, starting no earlier than at.
// Returns when the TLP finishes serializing on the uplink; the caller
// continues it onto the endpoint link (cut-through) and schedules the
// credit drain at delivery.
func (sw *Switch) forwardDown(pi int, at sim.Time, wire, payload int, pool dll.CreditType) sim.Time {
	d := sw.bytesTime(wire)
	s := sw.fc[dirDown][pool].ready(at, payload)
	done := sw.down.ScheduleAt(s, d)
	wait := done - d - at
	if wait < 0 {
		wait = 0
	}
	sw.pstats[pi].Down.record(wire, wait, sw.sampling)
	return done
}

// noteDrain schedules a credit release on one direction's pool.
func (sw *Switch) noteDrain(dir int, pool dll.CreditType, at sim.Time, payload int) {
	sw.fc[dir][pool].note(at, payload)
}
