package rc

import (
	"fmt"
	"math/rand"
	"sort"

	"pciebench/internal/sim"
)

// QuantilePoint anchors a point of an inverse CDF: at cumulative
// probability P the extra delay is Delay.
type QuantilePoint struct {
	P     float64
	Delay sim.Time
}

// QuantileJitter draws extra per-TLP delays from a piecewise-linear
// inverse CDF. It is the explicit, tunable stand-in for root-complex
// behaviour the paper observes but cannot attribute: §6.2 documents the
// Xeon E3's heavy latency tail (median more than double the E5's, a
// 99.9th percentile an order of magnitude above the median, and
// outliers to 5.8 ms) and suspects hidden power-saving states. The
// anchors for the E3 model are fitted to exactly those reported
// percentiles; see sysconf.XeonE3Jitter.
type QuantileJitter struct {
	points []QuantilePoint
}

// NewQuantileJitter builds a jitter model from anchor points. Points
// must be supplied with strictly increasing P in [0,1]; the first point
// is treated as the distribution's minimum and the last as its maximum.
func NewQuantileJitter(points []QuantilePoint) (*QuantileJitter, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("rc: need at least 2 quantile points")
	}
	for i, p := range points {
		if p.P < 0 || p.P > 1 {
			return nil, fmt.Errorf("rc: quantile P %v out of [0,1]", p.P)
		}
		if p.Delay < 0 {
			return nil, fmt.Errorf("rc: negative delay at P=%v", p.P)
		}
		if i > 0 && p.P <= points[i-1].P {
			return nil, fmt.Errorf("rc: quantile points must have increasing P")
		}
	}
	cp := make([]QuantilePoint, len(points))
	copy(cp, points)
	return &QuantileJitter{points: cp}, nil
}

// Sample draws one delay.
func (q *QuantileJitter) Sample(rng *rand.Rand) sim.Time {
	u := rng.Float64()
	pts := q.points
	if u <= pts[0].P {
		return pts[0].Delay
	}
	if u >= pts[len(pts)-1].P {
		return pts[len(pts)-1].Delay
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].P >= u })
	lo, hi := pts[i-1], pts[i]
	frac := (u - lo.P) / (hi.P - lo.P)
	return lo.Delay + sim.Time(frac*float64(hi.Delay-lo.Delay))
}

// ConstantJitter adds a fixed delay to every TLP; useful in tests.
type ConstantJitter sim.Time

// Sample returns the constant.
func (c ConstantJitter) Sample(*rand.Rand) sim.Time { return sim.Time(c) }
