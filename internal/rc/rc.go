// Package rc models the PCIe host interface as a multi-port router: the
// root complex connecting the processor/memory subsystem to a PCIe
// fabric of sockets, switches and endpoint ports (paper footnote 1,
// generalized beyond the paper's single-adapter setups).
//
// The root complex is where the paper's host-side effects meet: inbound
// TLPs are serialized on the device→host link direction, processed by a
// pipeline with bounded parallelism (which caps the transaction rate),
// translated by the IOMMU when one is present, serviced by the memory
// system (LLC/DDIO/DRAM/NUMA), and — for reads — answered with
// completions split at the Read Completion Boundary and bounded by MPS,
// serialized on the host→device direction.
//
// # Topology
//
// A RootComplex owns one or more Sockets (each a root-complex pipeline
// in front of its NUMA node's memory controller), Switches (a shared,
// arbitrated uplink with DLL flow-control credit pools), and Ports
// (endpoint attachment points, each with its own link). A Port attaches
// either directly to a socket's root port or below a switch; DMA issued
// on a Port routes by address — host memory by default, or a peer
// port's BAR window for device-to-device transfers. NewRouter builds an
// empty router; New builds the degenerate one-socket one-port form used
// by the paper's Table-1 systems and keeps the original single-device
// API on the RootComplex itself (delegating to port 0), so existing
// callers and results are unchanged.
//
// All timing uses the virtual-clock resources from internal/sim, so a
// transaction's full timeline is computed in one pass; the event kernel
// only sequences the *control* decisions (a DMA engine issuing its next
// descriptor) in the device layer above.
//
// # Partitioned fabrics
//
// The conservative-parallel topology layer (internal/topo) builds one
// RootComplex per independent endpoint island, each bound to its own
// event kernel; the islands share only the read-only address layout
// and per-node memory state no two islands both touch. The handoff
// points between domains are therefore explicit: every foreign BAR
// window is mirrored into each router (MirrorBAR) so peer-to-peer DMA
// that would cross domains is detected at the routing boundary and
// rejected rather than silently mistimed.
package rc

import (
	"fmt"
	"math/rand"

	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/trace"
)

// Jitter injects per-TLP processing-time variation, modeling effects the
// paper observed but could not attribute (the Xeon E3's heavy latency
// tail, suspected power management). A nil Jitter means deterministic
// processing.
type Jitter interface {
	Sample(rng *rand.Rand) sim.Time
}

// AddressMap resolves a physical address to its home NUMA node. A nil
// map homes everything on node 0.
type AddressMap interface {
	HomeOf(pa uint64) int
}

// Config shapes the degenerate (one-socket, one-port) root complex
// built by New: the link of port 0 plus the calibration of socket 0.
type Config struct {
	// Link is the negotiated PCIe link.
	Link pcie.LinkConfig
	// PipeLatency is the per-TLP processing time inside the root
	// complex (ingress, ordering checks, coherence lookup issue).
	PipeLatency sim.Time
	// PipeSlots bounds concurrently processed TLPs; the transaction
	// rate cap is PipeSlots/PipeLatency (the paper's §4.2 notes the
	// root complex must handle a transaction every 5 ns at 64 B line
	// rate).
	PipeSlots int
	// WireDelay is the propagation plus SerDes delay per direction.
	WireDelay sim.Time
	// Jitter optionally perturbs per-TLP processing (nil = none).
	Jitter Jitter
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.PipeLatency <= 0 {
		return fmt.Errorf("rc: PipeLatency must be positive")
	}
	if c.PipeSlots < 1 {
		return fmt.Errorf("rc: PipeSlots must be >= 1")
	}
	if c.WireDelay < 0 {
		return fmt.Errorf("rc: WireDelay must be >= 0")
	}
	return nil
}

// LinkStats counts the TLPs and wire bytes crossing one endpoint link,
// per direction, plus the DMA operations that generated them.
type LinkStats struct {
	UpTLPs    uint64
	UpBytes   uint64
	DownTLPs  uint64
	DownBytes uint64
	ReadOps   uint64
	WriteOps  uint64
}

// SocketConfig calibrates one socket's root-complex pipeline.
type SocketConfig struct {
	// Node is the NUMA node whose memory controller this socket hosts.
	Node int
	// PipeLatency and PipeSlots shape the socket's TLP pipeline as in
	// Config.
	PipeLatency sim.Time
	PipeSlots   int
	// Jitter optionally perturbs per-TLP processing (nil = none).
	Jitter Jitter
	// RNG is the random stream Jitter samples draw from. Nil selects
	// the kernel's stream (the historical behavior); partitioned
	// fabrics install a dedicated per-island stream here so islands
	// consume no shared randomness.
	RNG *rand.Rand
	// IOMMU is this socket's translation unit, modeling VT-d's
	// per-socket DRHD units. Nil falls back to the router-wide unit
	// (or to no translation when that is nil too), so the historical
	// single-unit and IOMMU-off configurations are unchanged.
	IOMMU *iommu.IOMMU
}

// Socket is one CPU socket's root-complex pipeline: ports and switch
// uplinks attach to it, and DMA it ingests targets its node's memory
// controller locally or crosses the inter-socket interconnect.
type Socket struct {
	node        int
	pipe        *sim.MultiServer
	pipeLatency sim.Time
	jitter      Jitter
	rng         *rand.Rand
	mmu         *iommu.IOMMU // per-socket translation unit (nil = router-wide)
}

// Node returns the NUMA node this socket's memory controller owns.
func (s *Socket) Node() int { return s.node }

// IOMMU returns this socket's translation unit, or nil when the socket
// translates through the router-wide unit (or not at all).
func (s *Socket) IOMMU() *iommu.IOMMU { return s.mmu }

// InterconnectConfig models the socket-to-socket interconnect (QPI/UPI)
// a DMA crosses when its ingress socket is not the target's home.
// mem.Config.RemoteLatency already charges the per-access remote
// penalty the paper measured (§6.4); this adds explicit bandwidth
// contention on the shared bus for multi-socket topologies.
type InterconnectConfig struct {
	// Latency is the extra one-way latency per crossing, on top of the
	// memory system's RemoteLatency calibration (often 0).
	Latency sim.Time
	// PSPerByte is the serialization cost of the payload on the bus in
	// picoseconds per byte (0 = latency only).
	PSPerByte int64
	// Shared serializes crossings on one bus resource, so concurrent
	// remote DMA streams queue behind each other.
	Shared bool
}

// barRange maps a bus-address window to the peer port owning it.
type barRange struct {
	lo, hi uint64
	port   *Port
}

// RootComplex is the multi-port router: sockets, switches, endpoint
// ports and the address map that routes DMA between them. The zero
// value is not usable; build one with New or NewRouter.
//
// The embedded LinkStats and the DMA/MMIO methods are the original
// single-device API, aliased to port 0 so the degenerate topology is a
// strict drop-in for the previous implementation.
type RootComplex struct {
	k    *sim.Kernel
	cfg  Config
	ms   *mem.System
	mmu  *iommu.IOMMU // nil when disabled
	amap AddressMap

	sockets  []*Socket
	switches []*Switch
	ports    []*Port
	ranges   []barRange

	xcfg *InterconnectConfig
	xbus *sim.Server // non-nil when xcfg.Shared

	// Statistics of port 0 (the degenerate single-device form).
	LinkStats
}

// NewRouter builds an empty multi-port router: add sockets, switches
// and ports with the builder methods. ms is required; mmu and amap may
// be nil.
func NewRouter(k *sim.Kernel, ms *mem.System, mmu *iommu.IOMMU, amap AddressMap) *RootComplex {
	return &RootComplex{k: k, ms: ms, mmu: mmu, amap: amap}
}

// New builds the degenerate one-socket, one-port root complex the
// paper's systems use. ms is required; mmu and amap may be nil.
func New(k *sim.Kernel, cfg Config, ms *mem.System, mmu *iommu.IOMMU, amap AddressMap) (*RootComplex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := NewRouter(k, ms, mmu, amap)
	sock, err := r.AddSocket(SocketConfig{
		Node: 0, PipeLatency: cfg.PipeLatency, PipeSlots: cfg.PipeSlots, Jitter: cfg.Jitter,
	})
	if err != nil {
		return nil, err
	}
	if _, err := r.AddPort(PortConfig{Link: cfg.Link, WireDelay: cfg.WireDelay}, sock, nil); err != nil {
		return nil, err
	}
	return r, nil
}

// AddSocket adds a socket (root-complex pipeline) to the router,
// enforcing the same calibration rules Config.Validate applied to the
// degenerate constructor.
func (r *RootComplex) AddSocket(cfg SocketConfig) (*Socket, error) {
	if cfg.Node < 0 {
		return nil, fmt.Errorf("rc: socket node %d", cfg.Node)
	}
	if cfg.PipeLatency <= 0 {
		return nil, fmt.Errorf("rc: PipeLatency must be positive")
	}
	if cfg.PipeSlots < 1 {
		return nil, fmt.Errorf("rc: PipeSlots must be >= 1")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = r.k.Rand()
	}
	s := &Socket{
		node:        cfg.Node,
		pipe:        sim.NewMultiServer(r.k, cfg.PipeSlots),
		pipeLatency: cfg.PipeLatency,
		jitter:      cfg.Jitter,
		rng:         rng,
		mmu:         cfg.IOMMU,
	}
	r.sockets = append(r.sockets, s)
	return s, nil
}

// SetInterconnect configures the inter-socket interconnect. Without it,
// cross-socket DMA pays only the memory system's RemoteLatency.
func (r *RootComplex) SetInterconnect(cfg InterconnectConfig) {
	r.xcfg = &cfg
	if cfg.Shared {
		r.xbus = sim.NewServer(r.k)
	} else {
		r.xbus = nil
	}
}

// crossSock charges the interconnect for n payload bytes crossing
// between sock and the home node at time t, returning the time the
// transfer lands on the far side. Same-socket traffic and routers
// without an interconnect pass through unchanged.
func (r *RootComplex) crossSock(t sim.Time, sock *Socket, home, n int) sim.Time {
	if r.xcfg == nil || home == sock.node {
		return t
	}
	d := r.xcfg.Latency + sim.Time(r.xcfg.PSPerByte*int64(n))
	if r.xbus != nil {
		return r.xbus.ScheduleAt(t, d)
	}
	return t + d
}

// Sockets returns the router's sockets.
func (r *RootComplex) Sockets() []*Socket { return r.sockets }

// Switches returns the router's switches.
func (r *RootComplex) Switches() []*Switch { return r.switches }

// Ports returns the router's endpoint ports.
func (r *RootComplex) Ports() []*Port { return r.ports }

// Port returns endpoint port i.
func (r *RootComplex) Port(i int) *Port { return r.ports[i] }

// peerOf returns the port owning the BAR window containing addr, or nil
// when addr targets host memory. The common case (no BAR windows
// registered) is a single length check.
func (r *RootComplex) peerOf(addr uint64) *Port {
	for i := range r.ranges {
		if rg := &r.ranges[i]; addr >= rg.lo && addr < rg.hi {
			return rg.port
		}
	}
	return nil
}

// Config returns the degenerate single-device view of the router:
// port 0's link and wire delay plus its socket's pipeline calibration.
// For a router built by New this is exactly the Config passed in.
func (r *RootComplex) Config() Config { return r.cfg }

// Link returns port 0's link configuration.
func (r *RootComplex) Link() pcie.LinkConfig { return r.ports[0].Link() }

// SetTracer installs a TLP tracer on port 0; every request, write and
// completion crossing that link is then emitted as a wire-exact record
// at its serialization-complete time. A nil tracer (the default) costs
// nothing.
func (r *RootComplex) SetTracer(t trace.Tracer) { r.ports[0].SetTracer(t) }

// home resolves a physical address to its NUMA node.
func (r *RootComplex) home(pa uint64) int {
	if r.amap == nil {
		return 0
	}
	return r.amap.HomeOf(pa)
}

// translate resolves a DMA address ingested by sock at the given time,
// returning the physical address and the time the request may proceed.
// The socket's own translation unit (VT-d per-socket DRHD scope) wins;
// otherwise the router-wide unit applies; with neither, addresses pass
// through untranslated.
func (r *RootComplex) translate(at sim.Time, sock *Socket, dma uint64) (uint64, sim.Time, error) {
	mmu := r.mmu
	if sock != nil && sock.mmu != nil {
		mmu = sock.mmu
	}
	if mmu == nil {
		return dma, at, nil
	}
	res, err := mmu.Translate(at, dma)
	if err != nil {
		return 0, 0, err
	}
	return res.PA, res.Ready, nil
}

// DMARead runs a device-initiated read on port 0 (see Port.DMARead).
func (r *RootComplex) DMARead(at sim.Time, dma uint64, sz int) (ReadResult, error) {
	return r.ports[0].DMAReadOrdered(at, dma, sz, 0)
}

// DMAReadOrdered runs an ordered device-initiated read on port 0 (see
// Port.DMAReadOrdered).
func (r *RootComplex) DMAReadOrdered(at sim.Time, dma uint64, sz int, orderAfter sim.Time) (ReadResult, error) {
	return r.ports[0].DMAReadOrdered(at, dma, sz, orderAfter)
}

// DMAWrite runs a device-initiated posted write on port 0 (see
// Port.DMAWrite).
func (r *RootComplex) DMAWrite(at sim.Time, dma uint64, sz int) (WriteResult, error) {
	return r.ports[0].DMAWrite(at, dma, sz)
}

// MMIOWrite models the host CPU posting a doorbell write to port 0's
// device (see Port.MMIOWrite).
func (r *RootComplex) MMIOWrite(at sim.Time, sz int) sim.Time {
	return r.ports[0].MMIOWrite(at, sz)
}

// MMIORead models the host CPU reading a register of port 0's device
// (see Port.MMIORead).
func (r *RootComplex) MMIORead(at sim.Time, sz int, devLatency sim.Time) sim.Time {
	return r.ports[0].MMIORead(at, sz, devLatency)
}

// UpUtilization returns port 0's device->host link utilization so far.
func (r *RootComplex) UpUtilization() float64 { return r.ports[0].UpUtilization() }

// DownUtilization returns port 0's host->device link utilization so far.
func (r *RootComplex) DownUtilization() float64 { return r.ports[0].DownUtilization() }
