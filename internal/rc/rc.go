// Package rc models the PCIe root complex: the component connecting the
// processor/memory subsystem to the PCIe fabric (paper footnote 1).
//
// The root complex is where the paper's host-side effects meet: inbound
// TLPs are serialized on the device→host link direction, processed by a
// pipeline with bounded parallelism (which caps the transaction rate),
// translated by the IOMMU when one is present, serviced by the memory
// system (LLC/DDIO/DRAM/NUMA), and — for reads — answered with
// completions split at the Read Completion Boundary and bounded by MPS,
// serialized on the host→device direction.
//
// All timing uses the virtual-clock resources from internal/sim, so a
// transaction's full timeline is computed in one pass; the event kernel
// only sequences the *control* decisions (a DMA engine issuing its next
// descriptor) in the device layer above.
package rc

import (
	"fmt"
	"math/rand"

	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/tlp"
	"pciebench/internal/trace"
)

// Jitter injects per-TLP processing-time variation, modeling effects the
// paper observed but could not attribute (the Xeon E3's heavy latency
// tail, suspected power management). A nil Jitter means deterministic
// processing.
type Jitter interface {
	Sample(rng *rand.Rand) sim.Time
}

// AddressMap resolves a physical address to its home NUMA node. A nil
// map homes everything on node 0.
type AddressMap interface {
	HomeOf(pa uint64) int
}

// Config shapes the root complex.
type Config struct {
	// Link is the negotiated PCIe link.
	Link pcie.LinkConfig
	// PipeLatency is the per-TLP processing time inside the root
	// complex (ingress, ordering checks, coherence lookup issue).
	PipeLatency sim.Time
	// PipeSlots bounds concurrently processed TLPs; the transaction
	// rate cap is PipeSlots/PipeLatency (the paper's §4.2 notes the
	// root complex must handle a transaction every 5 ns at 64 B line
	// rate).
	PipeSlots int
	// WireDelay is the propagation plus SerDes delay per direction.
	WireDelay sim.Time
	// Jitter optionally perturbs per-TLP processing (nil = none).
	Jitter Jitter
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.PipeLatency <= 0 {
		return fmt.Errorf("rc: PipeLatency must be positive")
	}
	if c.PipeSlots < 1 {
		return fmt.Errorf("rc: PipeSlots must be >= 1")
	}
	if c.WireDelay < 0 {
		return fmt.Errorf("rc: WireDelay must be >= 0")
	}
	return nil
}

// RootComplex is the simulated root complex plus the two directions of
// the PCIe link connecting it to the device under test.
type RootComplex struct {
	k    *sim.Kernel
	cfg  Config
	ms   *mem.System
	mmu  *iommu.IOMMU // nil when disabled
	amap AddressMap

	up   *sim.Server // device -> host (requests, write data)
	down *sim.Server // host -> device (completions, MMIO requests)
	pipe *sim.MultiServer

	// Per-link constants hoisted out of the DMA hot path at New time:
	// header byte counts, the serialization time of the fixed-size read
	// request TLP, and a lazily filled lookup table of BytesTime values
	// for every wire size up to MPS plus headers. The table entries are
	// produced by the same LinkConfig.BytesTime arithmetic, so cached
	// and uncached timings are bit-identical.
	reqHdr  int
	cplHdr  int
	wrHdr   int
	reqTime sim.Time
	btLUT   []sim.Time

	tracer  trace.Tracer
	scratch []byte // tracer encode buffer, reused across TLPs
	payload []byte // tracer zero-payload buffer, reused across TLPs

	// Statistics.
	UpTLPs    uint64
	UpBytes   uint64
	DownTLPs  uint64
	DownBytes uint64
	ReadOps   uint64
	WriteOps  uint64
}

// New builds a root complex. ms is required; mmu and amap may be nil.
func New(k *sim.Kernel, cfg Config, ms *mem.System, mmu *iommu.IOMMU, amap AddressMap) (*RootComplex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	link := cfg.Link
	r := &RootComplex{
		k:      k,
		cfg:    cfg,
		ms:     ms,
		mmu:    mmu,
		amap:   amap,
		up:     sim.NewServer(k),
		down:   sim.NewServer(k),
		pipe:   sim.NewMultiServer(k, cfg.PipeSlots),
		reqHdr: pcie.MRdHeaderBytes(link.Addr64, link.ECRC),
		cplHdr: pcie.CplDHeaderBytes(link.ECRC),
		wrHdr:  pcie.MWrHeaderBytes(link.Addr64, link.ECRC),
	}
	r.reqTime = sim.Time(link.BytesTime(r.reqHdr))
	// Completions and writes top out at MPS payload plus their header;
	// the slack covers MMIO writes of small registers. Larger one-off
	// wires (rare) fall back to the direct computation.
	r.btLUT = make([]sim.Time, link.MPS+r.wrHdr+64)
	return r, nil
}

// bytesTime returns the serialization time of n wire bytes, memoizing
// the per-size result. Entry 0 doubles as the "unfilled" sentinel: any
// positive byte count serializes in at least one picosecond on every
// supported link, so a cached zero never collides with a real value.
func (r *RootComplex) bytesTime(n int) sim.Time {
	if n < len(r.btLUT) {
		if v := r.btLUT[n]; v != 0 {
			return v
		}
		v := sim.Time(r.cfg.Link.BytesTime(n))
		r.btLUT[n] = v
		return v
	}
	return sim.Time(r.cfg.Link.BytesTime(n))
}

// SetTracer installs a TLP tracer; every request, write and completion
// crossing the link is then emitted as a wire-exact record at its
// serialization-complete time. A nil tracer (the default) costs
// nothing.
func (r *RootComplex) SetTracer(t trace.Tracer) { r.tracer = t }

// zeroPayload returns an all-zero n-byte payload from the root complex's
// reusable buffer. The simulator tracks timing, not data, so traced TLPs
// always carry zero payloads; the buffer is never written after
// allocation, which keeps pooled and freshly allocated records
// byte-identical (asserted by TestTracedTLPsByteIdentical).
func (r *RootComplex) zeroPayload(n int) []byte {
	if cap(r.payload) < n {
		r.payload = make([]byte, n)
	}
	return r.payload[:n]
}

// traceMemReq emits a traced memory request TLP.
func (r *RootComplex) traceMemReq(at sim.Time, write bool, addr uint64, n int) {
	if r.tracer == nil {
		return
	}
	lenDW, fbe, lbe, err := tlp.BERange(addr, n)
	if err != nil {
		return
	}
	var perr error
	if write {
		w := tlp.MemWrite{Addr: addr &^ 0x3, FirstBE: fbe, LastBE: lbe, Addr64: true, Data: r.zeroPayload(n)}
		r.scratch, perr = w.AppendTo(r.scratch[:0])
	} else {
		rd := tlp.MemRead{Addr: addr &^ 0x3, FirstBE: fbe, LastBE: lbe, LengthDW: lenDW, Addr64: true}
		r.scratch, perr = rd.AppendTo(r.scratch[:0])
	}
	if perr == nil {
		r.tracer.Trace(at, trace.DeviceToHost, r.scratch)
	}
}

// traceCpl emits a traced completion TLP.
func (r *RootComplex) traceCpl(at sim.Time, addr uint64, n, remaining int) {
	if r.tracer == nil {
		return
	}
	c := tlp.Completion{
		Status: tlp.CplSuccess, ByteCount: remaining,
		LowerAddr: uint8(addr & 0x7F), Data: r.zeroPayload(n),
	}
	var perr error
	r.scratch, perr = c.AppendTo(r.scratch[:0])
	if perr == nil {
		r.tracer.Trace(at, trace.HostToDevice, r.scratch)
	}
}

// Config returns the configuration.
func (r *RootComplex) Config() Config { return r.cfg }

// Link returns the link configuration.
func (r *RootComplex) Link() pcie.LinkConfig { return r.cfg.Link }

func (r *RootComplex) home(pa uint64) int {
	if r.amap == nil {
		return 0
	}
	return r.amap.HomeOf(pa)
}

func (r *RootComplex) jitter() sim.Time {
	if r.cfg.Jitter == nil {
		return 0
	}
	return r.cfg.Jitter.Sample(r.k.Rand())
}

// translate resolves a DMA address at the given time, returning the
// physical address and the time the request may proceed.
func (r *RootComplex) translate(at sim.Time, dma uint64) (uint64, sim.Time, error) {
	if r.mmu == nil {
		return dma, at, nil
	}
	res, err := r.mmu.Translate(at, dma)
	if err != nil {
		return 0, 0, err
	}
	return res.PA, res.Ready, nil
}

// boundedChunks calls fn(offset, n) for consecutive chunks of
// [addr, addr+sz) that do not cross bound-aligned address boundaries.
// This is the same arithmetic as tlp.SplitRead/SplitWrite; the
// equivalence is asserted by tests. DMARead/DMAWrite inline the same
// loop rather than take a callback so their steady state stays free of
// closure allocations; the tests pin the two forms to each other.
func boundedChunks(addr uint64, sz, bound int, fn func(off, n int)) {
	pos := addr
	remaining := sz
	off := 0
	for remaining > 0 {
		n := remaining
		if boundary := (pos/uint64(bound) + 1) * uint64(bound); pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		fn(off, n)
		pos += uint64(n)
		remaining -= n
		off += n
	}
}

// cplChunks calls fn(offset, n) for the completion payloads of a read of
// [addr, addr+sz): a short first chunk up to the RCB boundary when addr
// is unaligned, then MPS-sized chunks (same arithmetic as
// tlp.SplitCompletion).
func cplChunks(addr uint64, sz, mps, rcb int, fn func(off, n int)) {
	pos := addr
	remaining := sz
	off := 0
	for remaining > 0 {
		var n int
		if mis := int(pos % uint64(rcb)); mis != 0 {
			n = rcb - mis
		} else {
			n = mps
		}
		if n > remaining {
			n = remaining
		}
		fn(off, n)
		pos += uint64(n)
		remaining -= n
		off += n
	}
}

// ReadResult is the timeline of a DMA read.
type ReadResult struct {
	// FirstData is when the first completion arrives at the device.
	FirstData sim.Time
	// Complete is when the last completion arrives at the device.
	Complete sim.Time
}

// DMARead runs a device-initiated read of sz bytes at DMA address dma,
// with the first request TLP entering the device's link interface at
// time at. It returns the completion timeline.
func (r *RootComplex) DMARead(at sim.Time, dma uint64, sz int) (ReadResult, error) {
	return r.DMAReadOrdered(at, dma, sz, 0)
}

// DMAReadOrdered is DMARead with an ordering barrier: the memory access
// will not start before orderAfter. PCIe ordering makes a read push
// ahead any earlier posted write to the same address; the benchmark
// layer passes the write's memory-completion time here to implement
// LAT_WRRD.
func (r *RootComplex) DMAReadOrdered(at sim.Time, dma uint64, sz int, orderAfter sim.Time) (ReadResult, error) {
	if sz <= 0 {
		return ReadResult{}, fmt.Errorf("rc: read size %d", sz)
	}
	cfg := &r.cfg
	mrrs := uint64(cfg.Link.MRRS)
	mps := cfg.Link.MPS
	rcb := uint64(cfg.Link.RCB)

	res := ReadResult{}
	r.ReadOps++
	// MRRS-bounded request chunks (boundedChunks, in loop form).
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mrrs + 1) * mrrs; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		// Request serializes on the device->host direction.
		txDone := r.up.ScheduleAt(at, r.reqTime)
		r.UpTLPs++
		r.UpBytes += uint64(r.reqHdr)
		r.traceMemReq(txDone, false, pos, n)
		arrive := txDone + cfg.WireDelay
		// Root-complex processing.
		procDone := r.pipe.ScheduleAt(arrive, cfg.PipeLatency+r.jitter())
		// Address translation.
		pa, ready, terr := r.translate(procDone, pos)
		if terr != nil {
			return ReadResult{}, terr
		}
		if ready < orderAfter {
			ready = orderAfter
		}
		// Memory access: worst-line latency (line fetches in parallel).
		memLat := r.ms.Access(false, r.home(pa), pa, n)
		dataAt := ready + memLat
		// Completions serialize on the host->device direction: a short
		// first chunk up to the RCB boundary, then MPS-sized chunks
		// (cplChunks, in loop form).
		cpos := pa
		crem := n
		for crem > 0 {
			c := mps
			if mis := int(cpos % rcb); mis != 0 {
				c = int(rcb) - mis
			}
			if c > crem {
				c = crem
			}
			wire := r.cplHdr + c
			done := r.down.ScheduleAt(dataAt, r.bytesTime(wire))
			r.DownTLPs++
			r.DownBytes += uint64(wire)
			r.traceCpl(done, cpos, c, crem)
			arriveDev := done + cfg.WireDelay
			if res.FirstData == 0 || arriveDev < res.FirstData {
				res.FirstData = arriveDev
			}
			if arriveDev > res.Complete {
				res.Complete = arriveDev
			}
			cpos += uint64(c)
			crem -= c
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}

// WriteResult is the timeline of a posted DMA write.
type WriteResult struct {
	// LinkDone is when the device finishes injecting the write TLPs —
	// the point at which the device-side DMA engine considers the
	// (posted) write complete.
	LinkDone sim.Time
	// MemDone is when the data is globally visible in the memory
	// system; later reads to the same address order after this.
	MemDone sim.Time
}

// DMAWrite runs a device-initiated posted write of sz bytes at DMA
// address dma starting at time at.
func (r *RootComplex) DMAWrite(at sim.Time, dma uint64, sz int) (WriteResult, error) {
	if sz <= 0 {
		return WriteResult{}, fmt.Errorf("rc: write size %d", sz)
	}
	cfg := &r.cfg
	mps := uint64(cfg.Link.MPS)

	res := WriteResult{}
	r.WriteOps++
	// MPS-bounded write chunks (boundedChunks, in loop form).
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mps + 1) * mps; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		wire := r.wrHdr + n
		txDone := r.up.ScheduleAt(at, r.bytesTime(wire))
		r.UpTLPs++
		r.UpBytes += uint64(wire)
		r.traceMemReq(txDone, true, pos, n)
		if txDone > res.LinkDone {
			res.LinkDone = txDone
		}
		arrive := txDone + cfg.WireDelay
		procDone := r.pipe.ScheduleAt(arrive, cfg.PipeLatency+r.jitter())
		pa, ready, terr := r.translate(procDone, pos)
		if terr != nil {
			return WriteResult{}, terr
		}
		memLat := r.ms.Access(true, r.home(pa), pa, n)
		if done := ready + memLat; done > res.MemDone {
			res.MemDone = done
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}

// MMIOWrite models the host CPU posting a write of sz bytes to a device
// register (doorbell): it serializes on the host->device direction and
// returns the arrival time at the device. The CPU does not wait.
func (r *RootComplex) MMIOWrite(at sim.Time, sz int) sim.Time {
	wire := r.wrHdr + sz
	done := r.down.ScheduleAt(at, r.bytesTime(wire))
	r.DownTLPs++
	r.DownBytes += uint64(wire)
	return done + r.cfg.WireDelay
}

// MMIORead models the host CPU reading a device register: a non-posted
// read crosses to the device, which answers after devLatency; the
// completion crosses back. Returns when the CPU has the value. These
// uncached reads are the expensive driver operations modern drivers
// avoid (paper §2: DPDK polls host memory instead).
//
// The returning completion's serialization is charged as latency but
// does not reserve the device→host link server: it completes far in the
// future relative to submission, and the virtual-clock servers are FIFO
// in call order, so reserving ahead of time would incorrectly stall
// DMA traffic submitted afterwards. The few bytes involved make its
// bandwidth contribution negligible (it is still counted in UpBytes).
func (r *RootComplex) MMIORead(at sim.Time, sz int, devLatency sim.Time) sim.Time {
	reqArrive := r.down.ScheduleAt(at, r.reqTime) + r.cfg.WireDelay
	r.DownTLPs++
	r.DownBytes += uint64(r.reqHdr)
	cplWire := r.cplHdr + sz
	cplDone := reqArrive + devLatency + r.bytesTime(cplWire)
	r.UpTLPs++
	r.UpBytes += uint64(cplWire)
	return cplDone + r.cfg.WireDelay
}

// UpUtilization returns the device->host link utilization so far.
func (r *RootComplex) UpUtilization() float64 { return r.up.Utilization() }

// DownUtilization returns the host->device link utilization so far.
func (r *RootComplex) DownUtilization() float64 { return r.down.Utilization() }
