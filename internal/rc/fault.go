package rc

import (
	"pciebench/internal/dll"
	"pciebench/internal/fault"
	"pciebench/internal/sim"
)

// linkFault is a port's installed fault model: BER-driven LCRC
// corruption with NAK/replay, and link retrain events with a degraded
// window. A nil linkFault (the default) leaves the port on the exact
// pre-fault code path with zero stream draws.
//
// Faults perturb the endpoint link hop only: per-hop LCRC means a
// switch never forwards a corrupted TLP, so upstream hops are assumed
// clean. The peer-to-peer shortcut paths and the unreserved MMIO-read
// return path are deliberately not perturbed.
type linkFault struct {
	cfg     fault.Config
	link    *fault.Stream // corruption draws (ClassLink)
	retrain *fault.Stream // retrain inter-arrivals (ClassRetrain)
	ctr     *fault.Counters

	// probLUT memoizes the per-TLP corruption probability by wire
	// size, mirroring the port's bytesTime LUT (entry 0 is the
	// unfilled sentinel: any positive wire size has p > 0 when
	// BER > 0).
	probLUT []float64

	// nakRTT is the fixed replay turnaround: the NAK DLLP's own
	// serialization plus a wire round trip.
	nakRTT sim.Time

	// Retrain state machine, advanced lazily in call order.
	started       bool
	nextRetrain   sim.Time
	degradedUntil sim.Time
}

// InstallFaults arms the port's fault model. links and retrains must
// be the port's dedicated (endpoint, class) streams; ctr is the
// endpoint's shared counter block.
func (p *Port) InstallFaults(cfg fault.Config, link, retrain *fault.Stream, ctr *fault.Counters) {
	f := &linkFault{cfg: cfg, link: link, retrain: retrain, ctr: ctr}
	if cfg.BER > 0 {
		f.probLUT = make([]float64, len(p.btLUT))
	}
	f.nakRTT = 2*p.cfg.WireDelay + p.bytesTime(dll.WireBytes)
	p.flt = f
}

// FaultCounters returns the port's counter block, or nil when no
// fault model is installed.
func (p *Port) FaultCounters() *fault.Counters {
	if p.flt == nil {
		return nil
	}
	return p.flt.ctr
}

// corruptProb returns the per-TLP corruption probability for a wire
// size, memoized like bytesTime.
func (f *linkFault) corruptProb(wire int) float64 {
	if wire < len(f.probLUT) {
		if v := f.probLUT[wire]; v != 0 {
			return v
		}
		v := fault.TLPCorruptProb(f.cfg.BER, wire)
		f.probLUT[wire] = v
		return v
	}
	return fault.TLPCorruptProb(f.cfg.BER, wire)
}

// adjust runs one TLP injection through the fault state machine:
// pending retrain epochs push the start time into/past Recovery, a
// degraded window stretches serialization, and corruption draws burn
// wasted attempts on srv (so later TLPs re-arbitrate behind them)
// before the caller schedules the successful one. State advances in
// fabric-call order — identical at every simworkers count — so the
// draw sequence, and with it every timing, is deterministic.
func (f *linkFault) adjust(p *Port, srv *sim.Server, at sim.Time, wire int, dur sim.Time) (sim.Time, sim.Time) {
	if f.cfg.RetrainMTBF > 0 {
		if !f.started {
			f.started = true
			f.nextRetrain = at + f.retrain.Exp(f.cfg.RetrainMTBF)
		}
		for at >= f.nextRetrain {
			recovered := f.nextRetrain + f.cfg.RetrainDwell
			f.ctr.Retrains++
			f.ctr.NonFatal++
			if at < recovered {
				at = recovered
			}
			f.degradedUntil = recovered + f.cfg.DegradeTime
			f.nextRetrain = recovered + f.retrain.Exp(f.cfg.RetrainMTBF)
		}
	}
	if at < f.degradedUntil && f.cfg.DegradeFactor > 1 {
		dur *= sim.Time(f.cfg.DegradeFactor)
	}
	if f.cfg.BER > 0 {
		pr := f.corruptProb(wire)
		for n := 0; f.link.Float64() < pr; n++ {
			// The corrupted attempt still occupies the link; the
			// replay starts after the receiver's NAK round trip.
			done := srv.ScheduleAt(at, dur)
			f.ctr.Replays++
			f.ctr.Correctable++
			at = done + f.nakRTT
			if n+1 >= fault.ReplayLimit {
				// REPLAY_NUM rollover: the link drops to Recovery
				// and retrains before the final attempt.
				f.ctr.Retrains++
				f.ctr.NonFatal++
				at += f.cfg.RetrainDwell
				f.degradedUntil = at + f.cfg.DegradeTime
				break
			}
		}
	}
	return at, dur
}
