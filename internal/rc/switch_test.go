package rc

import (
	"math/rand"
	"testing"

	"pciebench/internal/dll"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
)

// transparentSwitch is a switch that must not change timing: zero
// forwarding latency, zero wire delay, the same link as the endpoint,
// infinite credits. Cut-through forwarding then makes the extra hop
// invisible when uncontended.
func transparentSwitch() SwitchConfig {
	return SwitchConfig{Uplink: pcie.DefaultGen3x8()}
}

// newSwitchedRC builds a router with n ports below one switch, using
// the same calibration as newRC's degenerate router.
func newSwitchedRC(t *testing.T, n int, swCfg SwitchConfig) (*sim.Kernel, *RootComplex) {
	t.Helper()
	k := sim.New(7)
	ms := testMemSystem(t)
	r := NewRouter(k, ms, nil, nil)
	cfg := testConfig()
	sock, err := r.AddSocket(SocketConfig{Node: 0, PipeLatency: cfg.PipeLatency, PipeSlots: cfg.PipeSlots})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r.AddSwitch(swCfg, sock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.AddPort(PortConfig{Link: cfg.Link, WireDelay: cfg.WireDelay}, nil, sw); err != nil {
			t.Fatal(err)
		}
	}
	return k, r
}

// opMix drives a deterministic mixed sequence of operations against a
// port and returns every timestamp the port handed back.
func opMix(t *testing.T, k *sim.Kernel, p *Port) []sim.Time {
	t.Helper()
	var out []sim.Time
	rng := rand.New(rand.NewSource(42))
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		sz := 1 + rng.Intn(4096)
		addr := uint64(rng.Intn(1 << 20))
		switch i % 4 {
		case 0:
			res, err := p.DMARead(at, addr, sz)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.FirstData, res.Complete)
			at = res.Complete
		case 1:
			res, err := p.DMAWrite(at, addr, sz)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.LinkDone, res.MemDone)
			at = res.MemDone
		case 2:
			done := p.MMIOWrite(at, 8)
			out = append(out, done)
			at = done
		default:
			done := p.MMIORead(at, 4, 40*sim.Nanosecond)
			out = append(out, done)
			at = done
		}
		k.RunUntil(at)
	}
	return out
}

// TestTransparentSwitchByteIdentical pins the cut-through arithmetic:
// one endpoint below a zero-latency, same-speed, uncredited switch
// produces exactly the timestamps of a directly attached endpoint, for
// a long mixed read/write/MMIO sequence.
func TestTransparentSwitchByteIdentical(t *testing.T) {
	kd, direct, _ := newRC(t)
	ks, switched := newSwitchedRC(t, 1, transparentSwitch())

	want := opMix(t, kd, direct.Port(0))
	got := opMix(t, ks, switched.Port(0))
	if len(want) != len(got) {
		t.Fatalf("result counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("timestamp %d differs: direct %v vs switched %v", i, want[i], got[i])
		}
	}
}

// TestSwitchAddsForwardingLatency checks the opposite: a real switch
// (non-zero forwarding latency) strictly delays an uncontended read.
func TestSwitchAddsForwardingLatency(t *testing.T) {
	kd, direct, _ := newRC(t)
	cfg := transparentSwitch()
	cfg.ForwardLatency = 150 * sim.Nanosecond
	ks, switched := newSwitchedRC(t, 1, cfg)
	_ = kd
	_ = ks

	d, err := direct.Port(0).DMARead(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := switched.Port(0).DMARead(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The request crosses the switch once and the completion once.
	want := d.Complete + 2*cfg.ForwardLatency
	if s.Complete != want {
		t.Errorf("switched read completes at %v, want %v (direct %v + 2x forward)", s.Complete, want, d.Complete)
	}
}

// closedLoopWriter saturates one port with back-to-back 256B writes
// through the event kernel: each completion submits the next write, so
// ports interleave in event order like real closed-loop DMA engines.
type closedLoopWriter struct {
	p    *Port
	left int
	t    *testing.T
}

func (w *closedLoopWriter) Handle(k *sim.Kernel, _, _ int64) {
	if w.left == 0 {
		return
	}
	w.left--
	res, err := w.p.DMAWrite(k.Now(), 0, 256)
	if err != nil {
		w.t.Error(err)
		return
	}
	k.AtEvent(res.LinkDone, w, 0, 0)
}

// TestSwitchRoundRobinFairnessUnderSaturation pins the arbitration
// property: N identical closed-loop endpoints saturating one shared
// uplink each get an equal share of it — per-port forwarded bytes
// within 1% of each other — and every port's arbitration wait grows
// with the backlog.
func TestSwitchRoundRobinFairnessUnderSaturation(t *testing.T) {
	const ports = 4
	cfg := DefaultSwitchTestConfig()
	k, r := newSwitchedRC(t, ports, cfg)
	sw := r.Switches()[0]

	for i := 0; i < ports; i++ {
		k.AfterEvent(0, &closedLoopWriter{p: r.Port(i), left: 2000, t: t}, 0, 0)
	}
	k.Run()

	var min, max uint64
	for i := 0; i < ports; i++ {
		b := sw.PortStats(i).Up.Bytes
		if i == 0 || b < min {
			min = b
		}
		if b > max {
			max = b
		}
		if sw.PortStats(i).Up.Wait == 0 {
			t.Errorf("port %d saturated a shared uplink with zero arbitration wait", i)
		}
	}
	if min == 0 || float64(min)/float64(max) < 0.99 {
		t.Errorf("unfair partitioning: min %d bytes vs max %d bytes", min, max)
	}
	if !sw.FCIdle() {
		t.Error("flow-control credits leaked")
	}
}

// DefaultSwitchTestConfig is a realistic contended-switch config used
// by the fairness and credit tests: finite credit pools, real
// forwarding latency.
func DefaultSwitchTestConfig() SwitchConfig {
	return SwitchConfig{
		Uplink:         pcie.DefaultGen3x8(),
		WireDelay:      25 * sim.Nanosecond,
		ForwardLatency: 150 * sim.Nanosecond,
		DrainLatency:   50 * sim.Nanosecond,
		UpCredits: CreditLimits{
			P:  dll.Credits{Hdr: 64, Data: 1024},
			NP: dll.Credits{Hdr: 64, Data: dll.Infinite},
		},
		DownCredits: CreditLimits{
			P:  dll.Credits{Hdr: 32, Data: 512},
			NP: dll.Credits{Hdr: 32, Data: dll.Infinite},
		},
	}
}

// TestSwitchCreditNoLeakRandomized is the flow-control property test:
// after an arbitrary randomized TLP sequence (reads, writes, MMIO in
// both directions, varied sizes, several ports) every credit consumed
// from every pool comes back once the pending drains elapse.
func TestSwitchCreditNoLeakRandomized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := DefaultSwitchTestConfig()
		// Tighten the pools so stalls actually occur.
		cfg.UpCredits.P = dll.Credits{Hdr: 4, Data: 64}
		cfg.UpCredits.NP = dll.Credits{Hdr: 4, Data: dll.Infinite}
		cfg.DownCredits.Cpl = dll.Credits{Hdr: 8, Data: 128}
		k, r := newSwitchedRC(t, 3, cfg)
		sw := r.Switches()[0]
		rng := rand.New(rand.NewSource(seed))
		at := sim.Time(0)
		for i := 0; i < 300; i++ {
			p := r.Port(rng.Intn(3))
			sz := 1 + rng.Intn(2048)
			var err error
			switch rng.Intn(4) {
			case 0:
				_, err = p.DMARead(at, uint64(rng.Intn(1<<18)), sz)
			case 1:
				_, err = p.DMAWrite(at, uint64(rng.Intn(1<<18)), sz)
			case 2:
				p.MMIOWrite(at, 8)
			default:
				p.MMIORead(at, 4, 40*sim.Nanosecond)
			}
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				at += sim.Time(rng.Intn(10000)) * sim.Nanosecond
				k.RunUntil(at)
			}
		}
		k.Run()
		if !sw.FCIdle() {
			t.Fatalf("seed %d: flow-control credits leaked", seed)
		}
	}
}

// TestSwitchCreditBackpressure checks finite pools stall a burst that
// infinite pools let through: the same back-to-back write burst
// finishes strictly later with a tiny posted window.
func TestSwitchCreditBackpressure(t *testing.T) {
	burst := func(cfg SwitchConfig) sim.Time {
		_, r := newSwitchedRC(t, 1, cfg)
		p := r.Port(0)
		var last sim.Time
		for i := 0; i < 64; i++ {
			res, err := p.DMAWrite(0, uint64(i*256), 256)
			if err != nil {
				t.Fatal(err)
			}
			if res.MemDone > last {
				last = res.MemDone
			}
		}
		return last
	}
	open := burst(transparentSwitch())
	tight := transparentSwitch()
	tight.DrainLatency = 500 * sim.Nanosecond
	tight.UpCredits.P = dll.Credits{Hdr: 2, Data: 32}
	stalled := burst(tight)
	if stalled <= open {
		t.Errorf("tiny posted window did not backpressure: %v vs %v", stalled, open)
	}
}

// TestPeerDMARouting checks address-ranged peer-to-peer routing: a
// write into a peer's BAR window lands at the peer (MemDone reflects
// its device latency), takes the switch shortcut when both share one,
// and never touches host memory counters.
func TestPeerDMARouting(t *testing.T) {
	cfg := transparentSwitch()
	cfg.ForwardLatency = 100 * sim.Nanosecond
	_, r := newSwitchedRC(t, 2, cfg)
	a, b := r.Port(0), r.Port(1)
	bar := BARConfig{Base: 1 << 40, Size: 1 << 20, ReadLatency: 300 * sim.Nanosecond, WriteLatency: 80 * sim.Nanosecond}
	if err := b.SetBAR(bar); err != nil {
		t.Fatal(err)
	}

	w, err := a.DMAWrite(0, bar.Base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if w.MemDone <= w.LinkDone {
		t.Error("peer write delivered before link injection finished")
	}
	if got := r.Switches()[0].PortStats(0).P2PTLPs; got != 1 {
		t.Errorf("P2PTLPs = %d, want 1 (switch shortcut)", got)
	}
	if r.Switches()[0].PortStats(0).Up.TLPs != 0 {
		t.Error("peer write under one switch crossed the uplink")
	}

	rd, err := a.DMARead(0, bar.Base+4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Complete <= rd.FirstData-1 && rd.FirstData == 0 {
		t.Error("peer read returned no data timeline")
	}
	if b.Stats().UpTLPs == 0 {
		t.Error("peer read returned completions without the peer injecting them")
	}

	// Reads/writes outside the BAR window still go to host memory.
	if _, err := a.DMAWrite(0, 0, 64); err != nil {
		t.Fatal(err)
	}
}

// TestSelfBARWriteTargetsHost: a port DMAing into its own BAR range is
// routed to host memory (the address check excludes self), not looped
// back into itself.
func TestSelfBARWriteTargetsHost(t *testing.T) {
	_, r := newSwitchedRC(t, 2, transparentSwitch())
	a := r.Port(0)
	if err := a.SetBAR(BARConfig{Base: 1 << 40, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.DMAWrite(0, 1<<40, 64); err != nil {
		t.Fatal(err)
	}
	if got := r.Switches()[0].PortStats(0).P2PTLPs; got != 0 {
		t.Errorf("self-targeted write took the peer path (%d TLPs)", got)
	}
}

// TestBAROverlapRejected: overlapping BAR windows are a configuration
// error.
func TestBAROverlapRejected(t *testing.T) {
	_, r := newSwitchedRC(t, 2, transparentSwitch())
	if err := r.Port(0).SetBAR(BARConfig{Base: 1 << 40, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := r.Port(1).SetBAR(BARConfig{Base: 1<<40 + 4096, Size: 1 << 20}); err == nil {
		t.Error("overlapping BAR accepted")
	}
}

// TestCrossSocketInterconnect: with a second socket and an explicit
// interconnect, a port on socket 1 accessing node-0 memory pays the
// crossing; the same access from socket 0 does not.
func TestCrossSocketInterconnect(t *testing.T) {
	k := sim.New(7)
	ms := testMemSystem(t)
	r := NewRouter(k, ms, nil, nil)
	cfg := testConfig()
	s0, err := r.AddSocket(SocketConfig{Node: 0, PipeLatency: cfg.PipeLatency, PipeSlots: cfg.PipeSlots})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := r.AddSocket(SocketConfig{Node: 1, PipeLatency: cfg.PipeLatency, PipeSlots: cfg.PipeSlots})
	if err != nil {
		t.Fatal(err)
	}
	r.SetInterconnect(InterconnectConfig{Latency: 200 * sim.Nanosecond, PSPerByte: 62, Shared: true})
	p0, err := r.AddPort(PortConfig{Link: cfg.Link, WireDelay: cfg.WireDelay}, s0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.AddPort(PortConfig{Link: cfg.Link, WireDelay: cfg.WireDelay}, s1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Address 0 homes on node 0 (nil AddressMap).
	local, err := p0.DMARead(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := p1.DMARead(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The remote path pays the interconnect twice (request + data) plus
	// the memory system's RemoteLatency relative to socket 1.
	if remote.Complete <= local.Complete+2*200*sim.Nanosecond {
		t.Errorf("cross-socket read %v not sufficiently later than local %v", remote.Complete, local.Complete)
	}
}

// TestRouterAccessors exercises the introspection surface a topology
// debugger leans on.
func TestRouterAccessors(t *testing.T) {
	cfg := DefaultSwitchTestConfig()
	k, r := newSwitchedRC(t, 2, cfg)
	sw := r.Switches()[0]
	sw.EnableWaitSampling()

	if len(r.Sockets()) != 1 || r.Sockets()[0].Node() != 0 {
		t.Errorf("sockets = %v", r.Sockets())
	}
	if len(r.Ports()) != 2 || r.Port(1).Index() != 1 {
		t.Errorf("ports misindexed")
	}
	if r.Port(0).Socket() != r.Sockets()[0] || r.Port(0).Switch() != sw {
		t.Error("port attachment accessors wrong")
	}
	if sw.Socket() != r.Sockets()[0] || sw.Downstreams() != 2 {
		t.Errorf("switch accessors wrong: %v downstreams", sw.Downstreams())
	}
	if got := sw.Config().ForwardLatency; got != cfg.ForwardLatency {
		t.Errorf("switch config round-trip: %v", got)
	}
	if got := r.Port(0).Link(); got != testConfig().Link {
		t.Errorf("port link round-trip: %v", got)
	}
	if _, ok := sw.WaitSummary(true); ok {
		t.Error("wait summary before any traffic")
	}

	for i := 0; i < 2; i++ {
		k.AfterEvent(0, &closedLoopWriter{p: r.Port(i), left: 50, t: t}, 0, 0)
	}
	k.Run()
	if s, ok := sw.WaitSummary(true); !ok || s.N == 0 {
		t.Error("wait summary empty after saturating traffic")
	}
	if _, ok := sw.WaitSummary(false); ok {
		t.Error("down-direction summary without down traffic")
	}
	if sw.UpUtilization() <= 0 || r.Port(0).UpUtilization() <= 0 {
		t.Error("uplink/port utilization not accounted")
	}
	if sw.DownUtilization() != 0 {
		t.Error("down utilization without down traffic")
	}
	if r.Port(0).Stats().WriteOps == 0 {
		t.Error("port stats not accounted")
	}
}

// TestBuilderValidation covers the router builder error paths.
func TestBuilderValidation(t *testing.T) {
	k := sim.New(1)
	ms := testMemSystem(t)
	r := NewRouter(k, ms, nil, nil)
	if _, err := r.AddPort(PortConfig{Link: pcie.DefaultGen3x8()}, nil, nil); err == nil {
		t.Error("socketless direct port accepted")
	}
	if _, err := r.AddSocket(SocketConfig{PipeLatency: -sim.Nanosecond, PipeSlots: 1}); err == nil {
		t.Error("negative pipe latency accepted")
	}
	if _, err := r.AddSocket(SocketConfig{PipeLatency: sim.Nanosecond, PipeSlots: 0}); err == nil {
		t.Error("zero pipe slots accepted")
	}
	sock, err := r.AddSocket(SocketConfig{PipeLatency: sim.Nanosecond, PipeSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := PortConfig{Link: pcie.DefaultGen3x8(), WireDelay: -1}
	if _, err := r.AddPort(bad, sock, nil); err == nil {
		t.Error("negative wire delay accepted")
	}
	if _, err := r.AddSwitch(SwitchConfig{Uplink: pcie.DefaultGen3x8(), ForwardLatency: -1}, sock); err == nil {
		t.Error("negative forward latency accepted")
	}
	if _, err := r.AddSwitch(SwitchConfig{Uplink: pcie.DefaultGen3x8()}, nil); err == nil {
		t.Error("socketless switch accepted")
	}
	tiny := SwitchConfig{Uplink: pcie.DefaultGen3x8()}
	tiny.UpCredits.P = dll.Credits{Hdr: 1, Data: 2} // cannot hold one MPS TLP
	if _, err := r.AddSwitch(tiny, sock); err == nil {
		t.Error("undersized posted pool accepted")
	}
	sw, err := r.AddSwitch(SwitchConfig{Uplink: pcie.DefaultGen3x8()}, sock)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AddPort(PortConfig{Link: pcie.DefaultGen3x8()}, nil, sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetBAR(BARConfig{Base: 1 << 40, Size: 0}); err == nil {
		t.Error("zero-size BAR accepted")
	}
	if p.BAR() != nil {
		t.Error("failed SetBAR left a window behind")
	}
}
