package rc

import (
	"fmt"

	"pciebench/internal/dll"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/tlp"
	"pciebench/internal/trace"
)

// PortConfig shapes one endpoint attachment point.
type PortConfig struct {
	// Link is the endpoint's negotiated link: to its socket's root port
	// when directly attached, or to its switch's downstream port.
	Link pcie.LinkConfig
	// WireDelay is the propagation plus SerDes delay per direction on
	// this link.
	WireDelay sim.Time
}

// Validate reports configuration errors.
func (c PortConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.WireDelay < 0 {
		return fmt.Errorf("rc: WireDelay must be >= 0")
	}
	return nil
}

// BARConfig describes a port's device-memory window for peer-to-peer
// DMA: other ports' transfers targeting [Base, Base+Size) route to this
// device instead of host memory.
type BARConfig struct {
	// Base and Size delimit the bus-address window.
	Base uint64
	Size int
	// ReadLatency and WriteLatency are the device-internal access times
	// once a TLP arrives (reads must fetch from device memory before
	// completions flow; writes land in a device buffer).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// PSPerByte is the device-internal transfer cost in picoseconds per
	// byte (the NFP's CTM staging path, for example).
	PSPerByte int64
}

// Port is one endpoint attachment point in the PCIe fabric: the
// endpoint's own link (both directions), its position in the topology
// (direct on a socket, or below a switch), and the DMA/MMIO timing
// paths the device layer drives.
type Port struct {
	r      *RootComplex
	sock   *Socket
	sw     *Switch // nil when directly attached
	swSlot int     // this port's downstream slot on sw
	index  int
	cfg    PortConfig

	up   *sim.Server // device -> host (requests, write data)
	down *sim.Server // host -> device (completions, MMIO requests)

	// Per-link constants hoisted out of the DMA hot path at build time:
	// header byte counts, the serialization time of the fixed-size read
	// request TLP, and a lazily filled lookup table of BytesTime values
	// for every wire size up to MPS plus headers. The table entries are
	// produced by the same LinkConfig.BytesTime arithmetic, so cached
	// and uncached timings are bit-identical.
	reqHdr  int
	cplHdr  int
	wrHdr   int
	reqTime sim.Time
	btLUT   []sim.Time

	bar *BARConfig // non-nil once SetBAR registered a p2p window

	tracer  trace.Tracer
	scratch []byte // tracer encode buffer, reused across TLPs
	payload []byte // tracer zero-payload buffer, reused across TLPs

	stats *LinkStats

	// flt, when non-nil, injects link faults (BER corruption/replay,
	// retrain/degrade) into sendUp/sendDown; nil keeps the exact
	// fault-free code path.
	flt *linkFault
}

// AddPort attaches an endpoint port: below sw when sw is non-nil (sock
// is then taken from the switch), or directly on sock.
func (r *RootComplex) AddPort(cfg PortConfig, sock *Socket, sw *Switch) (*Port, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sw != nil {
		sock = sw.sock
	}
	if sock == nil {
		return nil, fmt.Errorf("rc: port needs a socket or a switch")
	}
	link := cfg.Link
	p := &Port{
		r:      r,
		sock:   sock,
		sw:     sw,
		index:  len(r.ports),
		cfg:    cfg,
		up:     sim.NewServer(r.k),
		down:   sim.NewServer(r.k),
		reqHdr: pcie.MRdHeaderBytes(link.Addr64, link.ECRC),
		cplHdr: pcie.CplDHeaderBytes(link.ECRC),
		wrHdr:  pcie.MWrHeaderBytes(link.Addr64, link.ECRC),
		stats:  &LinkStats{},
	}
	p.reqTime = sim.Time(link.BytesTime(p.reqHdr))
	// Completions and writes top out at MPS payload plus their header;
	// the slack covers MMIO writes of small registers. Larger one-off
	// wires (rare) fall back to the direct computation.
	p.btLUT = make([]sim.Time, link.MPS+p.wrHdr+64)
	if p.index == 0 {
		// Port 0 shares the RootComplex's embedded stats block and
		// defines its degenerate-view Config, so the original
		// single-device API keeps working on any topology.
		p.stats = &r.LinkStats
		r.cfg = Config{
			Link:        cfg.Link,
			PipeLatency: sock.pipeLatency,
			PipeSlots:   sock.pipe.Slots(),
			WireDelay:   cfg.WireDelay,
			Jitter:      sock.jitter,
		}
	}
	if sw != nil {
		p.swSlot = sw.addDownstream()
	}
	r.ports = append(r.ports, p)
	return p, nil
}

// SetBAR registers the port's device-memory window for peer-to-peer
// DMA routing.
func (p *Port) SetBAR(cfg BARConfig) error {
	if p.bar != nil {
		return fmt.Errorf("rc: port %d already has a BAR window", p.index)
	}
	if cfg.Size <= 0 {
		return fmt.Errorf("rc: BAR size must be positive")
	}
	hi := cfg.Base + uint64(cfg.Size)
	for i := range p.r.ranges {
		rg := &p.r.ranges[i]
		if cfg.Base < rg.hi && rg.lo < hi {
			return fmt.Errorf("rc: BAR [%#x,%#x) overlaps port %d's window", cfg.Base, hi, rg.port.index)
		}
	}
	p.bar = &cfg
	p.r.ranges = append(p.r.ranges, barRange{lo: cfg.Base, hi: hi, port: p})
	return nil
}

// BAR returns the port's registered peer-to-peer window, or nil.
func (p *Port) BAR() *BARConfig { return p.bar }

// MirrorBAR registers another router's port (with a BAR window already
// set) in this router's address ranges. Partitioned fabrics — where
// each simulation domain owns its own router — mirror every foreign
// window so a DMA that targets a peer in another domain is detected at
// the routing boundary (and rejected, see crossDomainErr) instead of
// being silently treated as host memory.
func (r *RootComplex) MirrorBAR(p *Port) error {
	if p.bar == nil {
		return fmt.Errorf("rc: port %d has no BAR window to mirror", p.index)
	}
	if p.r == r {
		return fmt.Errorf("rc: port %d already belongs to this router", p.index)
	}
	hi := p.bar.Base + uint64(p.bar.Size)
	for i := range r.ranges {
		rg := &r.ranges[i]
		if p.bar.Base < rg.hi && rg.lo < hi {
			return fmt.Errorf("rc: mirrored BAR [%#x,%#x) overlaps port %d's window", p.bar.Base, hi, rg.port.index)
		}
	}
	r.ranges = append(r.ranges, barRange{lo: p.bar.Base, hi: hi, port: p})
	return nil
}

// crossDomainErr reports a peer-to-peer DMA that would cross simulation
// domains. The conservative-parallel fabric partitions endpoints into
// independent event-kernel islands exactly because their traffic never
// meets; a transfer into another island's BAR would break that
// invariant, so it must run on a serial (simworkers=1) build instead.
func crossDomainErr(p, tp *Port) error {
	return fmt.Errorf("rc: peer DMA from port %d to port %d crosses simulation domains; peer-to-peer transfers need a serial build (simworkers=1)", p.index, tp.index)
}

// Index returns the port's position in the router's port list.
func (p *Port) Index() int { return p.index }

// Socket returns the socket the port's traffic ingresses at.
func (p *Port) Socket() *Socket { return p.sock }

// Switch returns the switch the port sits below, or nil.
func (p *Port) Switch() *Switch { return p.sw }

// Link returns the port's link configuration.
func (p *Port) Link() pcie.LinkConfig { return p.cfg.Link }

// Stats returns the port's link counters.
func (p *Port) Stats() *LinkStats { return p.stats }

// SetTracer installs a TLP tracer on this port's link.
func (p *Port) SetTracer(t trace.Tracer) { p.tracer = t }

// UpUtilization returns the device->host link utilization so far.
func (p *Port) UpUtilization() float64 { return p.up.Utilization() }

// DownUtilization returns the host->device link utilization so far.
func (p *Port) DownUtilization() float64 { return p.down.Utilization() }

// bytesTime returns the serialization time of n wire bytes on the
// port's link, memoizing the per-size result. Entry 0 doubles as the
// "unfilled" sentinel: any positive byte count serializes in at least
// one picosecond on every supported link, so a cached zero never
// collides with a real value.
func (p *Port) bytesTime(n int) sim.Time {
	if n < len(p.btLUT) {
		if v := p.btLUT[n]; v != 0 {
			return v
		}
		v := sim.Time(p.cfg.Link.BytesTime(n))
		p.btLUT[n] = v
		return v
	}
	return sim.Time(p.cfg.Link.BytesTime(n))
}

// zeroPayload returns an all-zero n-byte payload from the port's
// reusable buffer. The simulator tracks timing, not data, so traced TLPs
// always carry zero payloads; the buffer is never written after
// allocation, which keeps pooled and freshly allocated records
// byte-identical (asserted by TestTracedTLPsByteIdentical).
func (p *Port) zeroPayload(n int) []byte {
	if cap(p.payload) < n {
		p.payload = make([]byte, n)
	}
	return p.payload[:n]
}

// traceMemReq emits a traced memory request TLP.
func (p *Port) traceMemReq(at sim.Time, write bool, addr uint64, n int) {
	if p.tracer == nil {
		return
	}
	lenDW, fbe, lbe, err := tlp.BERange(addr, n)
	if err != nil {
		return
	}
	var perr error
	if write {
		w := tlp.MemWrite{Addr: addr &^ 0x3, FirstBE: fbe, LastBE: lbe, Addr64: true, Data: p.zeroPayload(n)}
		p.scratch, perr = w.AppendTo(p.scratch[:0])
	} else {
		rd := tlp.MemRead{Addr: addr &^ 0x3, FirstBE: fbe, LastBE: lbe, LengthDW: lenDW, Addr64: true}
		p.scratch, perr = rd.AppendTo(p.scratch[:0])
	}
	if perr == nil {
		p.tracer.Trace(at, trace.DeviceToHost, p.scratch)
	}
}

// traceCpl emits a traced completion TLP.
func (p *Port) traceCpl(at sim.Time, addr uint64, n, remaining int) {
	if p.tracer == nil {
		return
	}
	c := tlp.Completion{
		Status: tlp.CplSuccess, ByteCount: remaining,
		LowerAddr: uint8(addr & 0x7F), Data: p.zeroPayload(n),
	}
	var perr error
	p.scratch, perr = c.AppendTo(p.scratch[:0])
	if perr == nil {
		p.tracer.Trace(at, trace.HostToDevice, p.scratch)
	}
}

// jitter draws the socket's per-TLP processing perturbation.
func (p *Port) jitter() sim.Time {
	if p.sock.jitter == nil {
		return 0
	}
	return p.sock.jitter.Sample(p.sock.rng)
}

// sendUp serializes one device->host TLP of wire bytes (taking dur on
// the endpoint link) and returns the injection-complete time on the
// endpoint link plus the TLP's arrival time at the socket's root port.
// A directly attached port's arrival is one serialization and one wire
// delay; below a switch, the TLP additionally crosses the arbitrated
// shared uplink with cut-through forwarding and credit accounting.
func (p *Port) sendUp(at, dur sim.Time, wire, payload int, pool dll.CreditType) (txDone, arrive sim.Time) {
	if p.flt != nil {
		at, dur = p.flt.adjust(p, p.up, at, wire, dur)
	}
	txDone = p.up.ScheduleAt(at, dur)
	if p.sw == nil {
		return txDone, txDone + p.cfg.WireDelay
	}
	upDone := p.sw.forwardUp(p.swSlot, txDone+p.cfg.WireDelay+p.sw.cfg.ForwardLatency, dur, wire, payload, pool)
	return txDone, upDone + p.sw.cfg.WireDelay
}

// sendDown serializes one host->device TLP of wire bytes toward the
// port's endpoint, starting no earlier than at, and returns its arrival
// at the device. Below a switch the TLP first crosses the shared
// uplink's down direction (arbitrated, credited), then cuts through to
// the endpoint link.
func (p *Port) sendDown(at sim.Time, wire, payload int, pool dll.CreditType) sim.Time {
	dur := p.bytesTime(wire)
	if p.flt != nil {
		at, dur = p.flt.adjust(p, p.down, at, wire, dur)
	}
	if p.sw == nil {
		done := p.down.ScheduleAt(at, dur)
		return done + p.cfg.WireDelay
	}
	upDone := p.sw.forwardDown(p.swSlot, at, wire, payload, pool)
	overlap := dur
	if ud := p.sw.bytesTime(wire); ud < overlap {
		overlap = ud
	}
	done := p.down.ScheduleAt(upDone+p.sw.cfg.WireDelay+p.sw.cfg.ForwardLatency-overlap, dur)
	arrive := done + p.cfg.WireDelay
	p.sw.noteDrain(dirDown, pool, arrive+p.sw.cfg.DrainLatency, payload)
	return arrive
}

// boundedChunks calls fn(offset, n) for consecutive chunks of
// [addr, addr+sz) that do not cross bound-aligned address boundaries.
// This is the same arithmetic as tlp.SplitRead/SplitWrite; the
// equivalence is asserted by tests. DMARead/DMAWrite inline the same
// loop rather than take a callback so their steady state stays free of
// closure allocations; the tests pin the two forms to each other.
func boundedChunks(addr uint64, sz, bound int, fn func(off, n int)) {
	pos := addr
	remaining := sz
	off := 0
	for remaining > 0 {
		n := remaining
		if boundary := (pos/uint64(bound) + 1) * uint64(bound); pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		fn(off, n)
		pos += uint64(n)
		remaining -= n
		off += n
	}
}

// cplChunks calls fn(offset, n) for the completion payloads of a read of
// [addr, addr+sz): a short first chunk up to the RCB boundary when addr
// is unaligned, then MPS-sized chunks (same arithmetic as
// tlp.SplitCompletion).
func cplChunks(addr uint64, sz, mps, rcb int, fn func(off, n int)) {
	pos := addr
	remaining := sz
	off := 0
	for remaining > 0 {
		var n int
		if mis := int(pos % uint64(rcb)); mis != 0 {
			n = rcb - mis
		} else {
			n = mps
		}
		if n > remaining {
			n = remaining
		}
		fn(off, n)
		pos += uint64(n)
		remaining -= n
		off += n
	}
}

// ReadResult is the timeline of a DMA read.
type ReadResult struct {
	// FirstData is when the first completion arrives at the device.
	FirstData sim.Time
	// Complete is when the last completion arrives at the device.
	Complete sim.Time
}

// DMARead runs a device-initiated read of sz bytes at DMA address dma,
// with the first request TLP entering the device's link interface at
// time at. It returns the completion timeline.
func (p *Port) DMARead(at sim.Time, dma uint64, sz int) (ReadResult, error) {
	return p.DMAReadOrdered(at, dma, sz, 0)
}

// DMAReadOrdered is DMARead with an ordering barrier: the memory access
// will not start before orderAfter. PCIe ordering makes a read push
// ahead any earlier posted write to the same address; the benchmark
// layer passes the write's memory-completion time here to implement
// LAT_WRRD.
//
// The target resolves by address: host memory by default, or a peer
// port's BAR window for a device-to-device read.
func (p *Port) DMAReadOrdered(at sim.Time, dma uint64, sz int, orderAfter sim.Time) (ReadResult, error) {
	if sz <= 0 {
		return ReadResult{}, fmt.Errorf("rc: read size %d", sz)
	}
	if tp := p.r.peerOf(dma); tp != nil && tp != p {
		return p.peerRead(at, tp, dma, sz, orderAfter)
	}
	cfg := &p.cfg
	mrrs := uint64(cfg.Link.MRRS)
	mps := cfg.Link.MPS
	rcb := uint64(cfg.Link.RCB)

	res := ReadResult{}
	p.stats.ReadOps++
	// MRRS-bounded request chunks (boundedChunks, in loop form).
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mrrs + 1) * mrrs; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		// Request serializes on the device->host direction.
		txDone, arrive := p.sendUp(at, p.reqTime, p.reqHdr, 0, dll.NonPosted)
		p.stats.UpTLPs++
		p.stats.UpBytes += uint64(p.reqHdr)
		p.traceMemReq(txDone, false, pos, n)
		// Root-complex processing.
		procDone := p.sock.pipe.ScheduleAt(arrive, p.sock.pipeLatency+p.jitter())
		// Address translation.
		pa, ready, terr := p.r.translate(procDone, p.sock, pos)
		if terr != nil {
			return ReadResult{}, terr
		}
		if ready < orderAfter {
			ready = orderAfter
		}
		// Memory access relative to this port's socket: worst-line
		// latency (line fetches in parallel), plus the inter-socket
		// interconnect each way when the home is remote.
		home := p.r.home(pa)
		ready = p.r.crossSock(ready, p.sock, home, 0)
		memLat := p.r.ms.AccessFrom(false, p.sock.node, home, pa, n)
		dataAt := p.r.crossSock(ready+memLat, p.sock, home, n)
		// Completions serialize on the host->device direction: a short
		// first chunk up to the RCB boundary, then MPS-sized chunks
		// (cplChunks, in loop form).
		cpos := pa
		crem := n
		for crem > 0 {
			c := mps
			if mis := int(cpos % rcb); mis != 0 {
				c = int(rcb) - mis
			}
			if c > crem {
				c = crem
			}
			wire := p.cplHdr + c
			arriveDev := p.sendDown(dataAt, wire, c, dll.Completion)
			p.stats.DownTLPs++
			p.stats.DownBytes += uint64(wire)
			p.traceCpl(arriveDev-p.cfg.WireDelay, cpos, c, crem)
			if res.FirstData == 0 || arriveDev < res.FirstData {
				res.FirstData = arriveDev
			}
			if arriveDev > res.Complete {
				res.Complete = arriveDev
			}
			cpos += uint64(c)
			crem -= c
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}

// WriteResult is the timeline of a posted DMA write.
type WriteResult struct {
	// LinkDone is when the device finishes injecting the write TLPs —
	// the point at which the device-side DMA engine considers the
	// (posted) write complete.
	LinkDone sim.Time
	// MemDone is when the data is globally visible in the memory
	// system (or, for a peer-to-peer write, in the peer's device
	// memory); later reads to the same address order after this.
	MemDone sim.Time
}

// DMAWrite runs a device-initiated posted write of sz bytes at DMA
// address dma starting at time at. The target resolves by address: host
// memory by default, or a peer port's BAR window for a device-to-device
// write.
func (p *Port) DMAWrite(at sim.Time, dma uint64, sz int) (WriteResult, error) {
	if sz <= 0 {
		return WriteResult{}, fmt.Errorf("rc: write size %d", sz)
	}
	if tp := p.r.peerOf(dma); tp != nil && tp != p {
		return p.peerWrite(at, tp, dma, sz)
	}
	cfg := &p.cfg
	mps := uint64(cfg.Link.MPS)

	res := WriteResult{}
	p.stats.WriteOps++
	// MPS-bounded write chunks (boundedChunks, in loop form).
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mps + 1) * mps; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		wire := p.wrHdr + n
		txDone, arrive := p.sendUp(at, p.bytesTime(wire), wire, n, dll.Posted)
		p.stats.UpTLPs++
		p.stats.UpBytes += uint64(wire)
		p.traceMemReq(txDone, true, pos, n)
		if txDone > res.LinkDone {
			res.LinkDone = txDone
		}
		procDone := p.sock.pipe.ScheduleAt(arrive, p.sock.pipeLatency+p.jitter())
		pa, ready, terr := p.r.translate(procDone, p.sock, pos)
		if terr != nil {
			return WriteResult{}, terr
		}
		home := p.r.home(pa)
		ready = p.r.crossSock(ready, p.sock, home, n)
		memLat := p.r.ms.AccessFrom(true, p.sock.node, home, pa, n)
		if done := ready + memLat; done > res.MemDone {
			res.MemDone = done
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}

// MMIOWrite models the host CPU posting a write of sz bytes to the
// port's device register (doorbell): it serializes on the host->device
// direction and returns the arrival time at the device. The CPU does
// not wait.
func (p *Port) MMIOWrite(at sim.Time, sz int) sim.Time {
	wire := p.wrHdr + sz
	arrive := p.sendDown(at, wire, sz, dll.Posted)
	p.stats.DownTLPs++
	p.stats.DownBytes += uint64(wire)
	return arrive
}

// MMIORead models the host CPU reading a device register: a non-posted
// read crosses to the device, which answers after devLatency; the
// completion crosses back. Returns when the CPU has the value. These
// uncached reads are the expensive driver operations modern drivers
// avoid (paper §2: DPDK polls host memory instead).
//
// The returning completion's serialization is charged as latency but
// does not reserve the device→host link server: it completes far in the
// future relative to submission, and the virtual-clock servers are FIFO
// in call order, so reserving ahead of time would incorrectly stall
// DMA traffic submitted afterwards. The few bytes involved make its
// bandwidth contribution negligible (it is still counted in UpBytes).
// Below a switch, the return additionally pays the slower of the two
// hops' serialization plus the forwarding latency, unreserved for the
// same reason.
func (p *Port) MMIORead(at sim.Time, sz int, devLatency sim.Time) sim.Time {
	reqArrive := p.sendDown(at, p.reqHdr, 0, dll.NonPosted)
	p.stats.DownTLPs++
	p.stats.DownBytes += uint64(p.reqHdr)
	cplWire := p.cplHdr + sz
	ser := p.bytesTime(cplWire)
	extra := p.cfg.WireDelay
	if p.sw != nil {
		if us := p.sw.bytesTime(cplWire); us > ser {
			ser = us
		}
		extra += p.sw.cfg.ForwardLatency + p.sw.cfg.WireDelay
	}
	cplDone := reqArrive + devLatency + ser
	p.stats.UpTLPs++
	p.stats.UpBytes += uint64(cplWire)
	return cplDone + extra
}

// routePeer carries one TLP (already injected on p's link, finishing
// serialization at txDone) to peer port tp and returns its arrival at
// tp's device. Peers below the same switch cut through it directly;
// any other pair routes up through p's path, through p's socket
// pipeline, and down tp's path — the no-ACS root-complex forwarding
// path real multi-port hosts take.
func (p *Port) routePeer(txDone sim.Time, tp *Port, wire, payload int, pool dll.CreditType) sim.Time {
	tp.stats.DownTLPs++
	tp.stats.DownBytes += uint64(wire)
	if p.sw != nil && tp.sw == p.sw {
		sw := p.sw
		dur := tp.bytesTime(wire)
		overlap := dur
		if pd := p.bytesTime(wire); pd < overlap {
			overlap = pd
		}
		done := tp.down.ScheduleAt(txDone+p.cfg.WireDelay+sw.cfg.ForwardLatency-overlap, dur)
		ps := &sw.pstats[p.swSlot]
		ps.P2PTLPs++
		ps.P2PBytes += uint64(wire)
		return done + tp.cfg.WireDelay
	}
	var arrive sim.Time
	if p.sw == nil {
		arrive = txDone + p.cfg.WireDelay
	} else {
		upDone := p.sw.forwardUp(p.swSlot, txDone+p.cfg.WireDelay+p.sw.cfg.ForwardLatency, p.bytesTime(wire), wire, payload, pool)
		arrive = upDone + p.sw.cfg.WireDelay
	}
	procDone := p.sock.pipe.ScheduleAt(arrive, p.sock.pipeLatency+p.jitter())
	// A peer on another socket is reached across the inter-socket
	// interconnect, exactly like remote host memory.
	procDone = p.r.crossSock(procDone, p.sock, tp.sock.node, payload)
	return tp.sendDown(procDone, wire, payload, pool)
}

// peerWrite is a posted device-to-device write into tp's BAR window.
// Chunk boundaries derive from the actual bus address, exactly like
// the host-memory path (and tlp.SplitWrite).
func (p *Port) peerWrite(at sim.Time, tp *Port, dma uint64, sz int) (WriteResult, error) {
	if tp.r != p.r {
		return WriteResult{}, crossDomainErr(p, tp)
	}
	bar := tp.bar
	mps := uint64(p.cfg.Link.MPS)
	res := WriteResult{}
	p.stats.WriteOps++
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mps + 1) * mps; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		wire := p.wrHdr + n
		txDone := p.up.ScheduleAt(at, p.bytesTime(wire))
		p.stats.UpTLPs++
		p.stats.UpBytes += uint64(wire)
		if txDone > res.LinkDone {
			res.LinkDone = txDone
		}
		arrive := p.routePeer(txDone, tp, wire, n, dll.Posted)
		devDone := arrive + bar.WriteLatency + sim.Time(bar.PSPerByte*int64(n))
		if devDone > res.MemDone {
			res.MemDone = devDone
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}

// peerRead is a device-to-device read from tp's BAR window: requests
// route to the peer, the peer fetches from its device memory, and its
// completions route back. Chunk boundaries derive from the actual bus
// address, exactly like the host-memory path (and tlp.SplitRead /
// tlp.SplitCompletion).
func (p *Port) peerRead(at sim.Time, tp *Port, dma uint64, sz int, orderAfter sim.Time) (ReadResult, error) {
	if tp.r != p.r {
		return ReadResult{}, crossDomainErr(p, tp)
	}
	bar := tp.bar
	mrrs := uint64(p.cfg.Link.MRRS)
	mps := p.cfg.Link.MPS
	rcb := uint64(p.cfg.Link.RCB)
	res := ReadResult{}
	p.stats.ReadOps++
	pos := dma
	remaining := sz
	for remaining > 0 {
		n := remaining
		if boundary := (pos/mrrs + 1) * mrrs; pos+uint64(n) > boundary {
			n = int(boundary - pos)
		}
		txDone := p.up.ScheduleAt(at, p.reqTime)
		p.stats.UpTLPs++
		p.stats.UpBytes += uint64(p.reqHdr)
		reqArrive := p.routePeer(txDone, tp, p.reqHdr, 0, dll.NonPosted)
		ready := reqArrive + bar.ReadLatency + sim.Time(bar.PSPerByte*int64(n))
		if ready < orderAfter {
			ready = orderAfter
		}
		// The peer's completions chunk at the requester's MPS/RCB and
		// route back through the fabric.
		cpos := pos
		crem := n
		for crem > 0 {
			c := mps
			if mis := int(cpos % rcb); mis != 0 {
				c = int(rcb) - mis
			}
			if c > crem {
				c = crem
			}
			wire := tp.cplHdr + c
			cplTx := tp.up.ScheduleAt(ready, tp.bytesTime(wire))
			tp.stats.UpTLPs++
			tp.stats.UpBytes += uint64(wire)
			arriveDev := tp.routePeer(cplTx, p, wire, c, dll.Completion)
			if res.FirstData == 0 || arriveDev < res.FirstData {
				res.FirstData = arriveDev
			}
			if arriveDev > res.Complete {
				res.Complete = arriveDev
			}
			cpos += uint64(c)
			crem -= c
		}
		pos += uint64(n)
		remaining -= n
	}
	return res, nil
}
