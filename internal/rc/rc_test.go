package rc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/tlp"
	"pciebench/internal/trace"
)

func testMemSystem(t *testing.T) *mem.System {
	t.Helper()
	ms, err := mem.NewSystem(mem.Config{
		Nodes:         2,
		Cache:         mem.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineSize: 64, DDIOWays: 2},
		LLCLatency:    50 * sim.Nanosecond,
		DRAMLatency:   120 * sim.Nanosecond,
		RemoteLatency: 100 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func testConfig() Config {
	return Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}
}

func newRC(t *testing.T) (*sim.Kernel, *RootComplex, *mem.System) {
	t.Helper()
	k := sim.New(7)
	ms := testMemSystem(t)
	r, err := New(k, testConfig(), ms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k, r, ms
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PipeLatency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pipe latency accepted")
	}
	bad = good
	bad.PipeSlots = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero slots accepted")
	}
	bad = good
	bad.WireDelay = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wire delay accepted")
	}
	bad = good
	bad.Link.Lanes = 3
	if err := bad.Validate(); err == nil {
		t.Error("bad link accepted")
	}
}

func TestSingleReadTimeline(t *testing.T) {
	_, r, _ := newRC(t)
	cfg := testConfig()
	link := cfg.Link
	res, err := r.DMARead(0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Cold cache: MRd serialization + wire + pipe + DRAM + CplD
	// serialization + wire.
	want := sim.Time(link.BytesTime(24)) + cfg.WireDelay + cfg.PipeLatency +
		120*sim.Nanosecond + sim.Time(link.BytesTime(20+64)) + cfg.WireDelay
	if res.Complete != want {
		t.Errorf("complete = %v, want %v", res.Complete, want)
	}
	if res.FirstData != res.Complete {
		t.Errorf("single completion: first %v != complete %v", res.FirstData, res.Complete)
	}
}

func TestWarmReadFaster(t *testing.T) {
	_, r, ms := newRC(t)
	cold, _ := r.DMARead(0, 0, 64)
	ms.WarmHost(0, 0, 64)
	warm, _ := r.DMARead(cold.Complete, 0, 64)
	coldLat := cold.Complete - 0
	warmLat := warm.Complete - cold.Complete
	if coldLat-warmLat != 70*sim.Nanosecond {
		t.Errorf("warm benefit = %v, want 70ns", coldLat-warmLat)
	}
}

func TestMultiChunkReadAccounting(t *testing.T) {
	_, r, _ := newRC(t)
	// 1024B read: 2 MRd (MRRS 512), 4 CplD (MPS 256).
	if _, err := r.DMARead(0, 0, 1024); err != nil {
		t.Fatal(err)
	}
	if r.UpTLPs != 2 || r.UpBytes != 48 {
		t.Errorf("up: %d TLPs %dB, want 2/48", r.UpTLPs, r.UpBytes)
	}
	if r.DownTLPs != 4 || r.DownBytes != 4*20+1024 {
		t.Errorf("down: %d TLPs %dB, want 4/%d", r.DownTLPs, r.DownBytes, 4*20+1024)
	}
	if r.ReadOps != 1 {
		t.Errorf("ReadOps = %d", r.ReadOps)
	}
}

func TestWriteAccountingAndTimeline(t *testing.T) {
	_, r, _ := newRC(t)
	res, err := r.DMAWrite(0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	// 512B write: 2 MWr TLPs of 24+256 each.
	if r.UpTLPs != 2 || r.UpBytes != 2*(24+256) {
		t.Errorf("up: %d TLPs %dB", r.UpTLPs, r.UpBytes)
	}
	if res.LinkDone <= 0 || res.MemDone <= res.LinkDone {
		t.Errorf("timeline: link %v mem %v", res.LinkDone, res.MemDone)
	}
	if r.WriteOps != 1 {
		t.Errorf("WriteOps = %d", r.WriteOps)
	}
}

func TestOrderedReadWaits(t *testing.T) {
	_, r, _ := newRC(t)
	barrier := 10 * sim.Microsecond
	res, err := r.DMAReadOrdered(0, 0, 64, barrier)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete < barrier {
		t.Errorf("ordered read completed at %v, before barrier %v", res.Complete, barrier)
	}
	// Without the barrier it is much faster.
	res2, _ := r.DMARead(res.Complete, 0, 64)
	if lat := res2.Complete - res.Complete; lat > 2*sim.Microsecond {
		t.Errorf("unordered read latency %v", lat)
	}
}

func TestReadErrors(t *testing.T) {
	_, r, _ := newRC(t)
	if _, err := r.DMARead(0, 0, 0); err == nil {
		t.Error("size 0 read accepted")
	}
	if _, err := r.DMAWrite(0, 0, -1); err == nil {
		t.Error("negative write accepted")
	}
}

func TestIOMMUFaultPropagates(t *testing.T) {
	k := sim.New(7)
	ms := testMemSystem(t)
	mmu := iommu.New(k, iommu.DefaultConfig())
	r, err := New(k, testConfig(), ms, mmu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DMARead(0, 0xdead000, 64); err == nil {
		t.Error("unmapped read did not fault")
	}
	if _, err := r.DMAWrite(0, 0xdead000, 64); err == nil {
		t.Error("unmapped write did not fault")
	}
}

func TestIOMMUMissAddsWalkLatency(t *testing.T) {
	k := sim.New(7)
	ms := testMemSystem(t)
	mmu := iommu.New(k, iommu.DefaultConfig())
	if err := mmu.Map(0x100000, 0x100000, 1<<20, iommu.Page4K); err != nil {
		t.Fatal(err)
	}
	r, _ := New(k, testConfig(), ms, mmu, nil)
	miss, err := r.DMARead(0, 0x100000, 64)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := r.DMARead(miss.Complete, 0x100000, 64)
	if err != nil {
		t.Fatal(err)
	}
	missLat := miss.Complete
	hitLat := hit.Complete - miss.Complete
	if delta := missLat - hitLat; delta != 330*sim.Nanosecond {
		t.Errorf("IO-TLB miss penalty = %v, want 330ns", delta)
	}
}

func TestJitterApplied(t *testing.T) {
	k := sim.New(7)
	ms := testMemSystem(t)
	cfg := testConfig()
	cfg.Jitter = ConstantJitter(500 * sim.Nanosecond)
	r, _ := New(k, cfg, ms, nil, nil)
	res, _ := r.DMARead(0, 0, 64)

	k2 := sim.New(7)
	ms2 := testMemSystem(t)
	r2, _ := New(k2, testConfig(), ms2, nil, nil)
	res2, _ := r2.DMARead(0, 0, 64)

	if res.Complete-res2.Complete != 500*sim.Nanosecond {
		t.Errorf("jitter delta = %v, want 500ns", res.Complete-res2.Complete)
	}
}

func TestMMIOTimings(t *testing.T) {
	_, r, _ := newRC(t)
	cfg := testConfig()
	// A 4B doorbell write arrives after serialization + wire delay.
	at := r.MMIOWrite(0, 4)
	want := sim.Time(cfg.Link.BytesTime(24+4)) + cfg.WireDelay
	if at != want {
		t.Errorf("MMIOWrite arrival = %v, want %v", at, want)
	}
	// A register read takes a full round trip plus device latency.
	devLat := 40 * sim.Nanosecond
	done := r.MMIORead(at, 4, devLat)
	if done < at+2*cfg.WireDelay+devLat {
		t.Errorf("MMIORead done = %v, too fast", done)
	}
}

func TestPipeCapsTransactionRate(t *testing.T) {
	_, r, _ := newRC(t)
	cfg := testConfig()
	// Saturate with small writes; the pipe allows PipeSlots per
	// PipeLatency, i.e. one TLP per PipeLatency/PipeSlots on average,
	// but the 64B write's link serialization (~12ns) is the binding
	// constraint here. Use 8B writes instead (wire 32B ~ 4.4ns < 100/24
	// = 4.17ns pipe interval — close; use 1000 writes and check span).
	n := 1000
	var last WriteResult
	for i := 0; i < n; i++ {
		res, err := r.DMAWrite(0, uint64(i*64), 8)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	// Rate cap = min(link, pipe). Pipe interval = 100ns/24 = 4.17ns;
	// link serialization of a 32B TLP = ~4.42ns -> link binds.
	minSpan := sim.Time(int64(n) * cfg.Link.BytesTime(32))
	if last.MemDone < minSpan {
		t.Errorf("1000 writes done at %v, faster than link cap %v", last.MemDone, minSpan)
	}
}

// Property: rc's chunk arithmetic matches the protocol-tier splitters.
func TestChunkingMatchesTLPPackage(t *testing.T) {
	f := func(a uint32, s uint16, sel uint8) bool {
		addr := uint64(a%(1<<20)) &^ 0x3
		sz := (int(s%4096) + 4) &^ 0x3
		mrrs := 256 << (sel % 3) // 256..1024
		mps := 128 << (sel % 3)  // 128..512

		// Read requests.
		var got []int
		boundedChunks(addr, sz, mrrs, func(_, n int) { got = append(got, n) })
		reqs, err := tlp.SplitRead(0, addr, sz, mrrs, true)
		if err != nil || len(reqs) != len(got) {
			return false
		}
		for i, r := range reqs {
			if r.LengthDW*4 != got[i] {
				return false
			}
		}

		// Completions for a single aligned request of <= MRRS bytes.
		csz := sz
		if csz > mrrs {
			csz = mrrs
		}
		var cgot []int
		cplChunks(addr, csz, mps, 64, func(_, n int) { cgot = append(cgot, n) })
		lenDW, fbe, lbe, err := tlp.BERange(addr, csz)
		if err != nil {
			return false
		}
		req := &tlp.MemRead{Addr: addr, LengthDW: lenDW, FirstBE: fbe, LastBE: lbe}
		cpls, err := tlp.SplitCompletion(req, 0, nil, mps, 64)
		if err != nil || len(cpls) != len(cgot) {
			return false
		}
		for i, c := range cpls {
			if len(c.Data) != cgot[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileJitter(t *testing.T) {
	if _, err := NewQuantileJitter(nil); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := NewQuantileJitter([]QuantilePoint{{0.5, 0}, {0.2, 10}}); err == nil {
		t.Error("non-increasing P accepted")
	}
	if _, err := NewQuantileJitter([]QuantilePoint{{-0.1, 0}, {1, 10}}); err == nil {
		t.Error("P<0 accepted")
	}
	if _, err := NewQuantileJitter([]QuantilePoint{{0, 0}, {1, -5}}); err == nil {
		t.Error("negative delay accepted")
	}

	j, err := NewQuantileJitter([]QuantilePoint{
		{0.0, 0},
		{0.5, 0},
		{0.9, 1000 * sim.Nanosecond},
		{1.0, 10000 * sim.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := 100000
	zero, mid, high := 0, 0, 0
	for i := 0; i < n; i++ {
		d := j.Sample(rng)
		switch {
		case d == 0:
			zero++
		case d <= 1000*sim.Nanosecond:
			mid++
		default:
			high++
		}
	}
	if f := float64(zero) / float64(n); f < 0.45 || f > 0.55 {
		t.Errorf("P(0) = %.3f, want ~0.5", f)
	}
	if f := float64(high) / float64(n); f < 0.07 || f > 0.13 {
		t.Errorf("P(>1us) = %.3f, want ~0.1", f)
	}
}

// TestTracedTLPsByteIdentical runs a traced transaction mix and checks
// every captured TLP record byte-for-byte against a reference encoding
// built with freshly allocated buffers — the construction the tracer
// used before the scratch and payload buffers were pooled. It guards
// the buffer reuse in traceMemReq/traceCpl: any cross-TLP contamination
// of the shared scratch or payload storage shows up as a diff here.
func TestTracedTLPsByteIdentical(t *testing.T) {
	run := func(tr trace.Tracer) *RootComplex {
		k := sim.New(7)
		ms := testMemSystem(t)
		r, err := New(k, testConfig(), ms, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.SetTracer(tr)
		// A mix that exercises every traced path and TLP shape: reads
		// and writes, MRRS/MPS-split transfers, RCB-misaligned sizes and
		// unaligned addresses (partial byte enables).
		at := sim.Time(0)
		for i, op := range []struct {
			write bool
			dma   uint64
			sz    int
		}{
			{false, 0x1000, 64},
			{true, 0x1040, 64},
			{false, 0x2000, 1500}, // MRRS split, multiple completions
			{true, 0x3000, 1500},  // MPS split
			{false, 0x4007, 9},    // unaligned, partial BEs
			{true, 0x5003, 121},   // unaligned write
			{false, 0x60c0, 300},  // RCB-misaligned completion chain
		} {
			if op.write {
				if _, err := r.DMAWrite(at, op.dma, op.sz); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			} else {
				if _, err := r.DMARead(at, op.dma, op.sz); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			at += 2 * sim.Microsecond
		}
		return r
	}

	var buf trace.Buffer
	run(&buf)
	if len(buf.Records) == 0 {
		t.Fatal("no TLPs traced")
	}

	// Reference pass: re-encode every record's TLP from its decoded
	// form with a fresh buffer per TLP and require identical bytes.
	for i, rec := range buf.Records {
		p, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d undecodable: %v", i, err)
		}
		var fresh []byte
		var payload []byte
		switch v := p.(type) {
		case *tlp.MemRead:
			fresh, err = v.AppendTo(nil)
		case *tlp.MemWrite:
			fresh, err = v.AppendTo(nil)
			payload = v.Data
		case *tlp.Completion:
			fresh, err = v.AppendTo(nil)
			payload = v.Data
		default:
			t.Fatalf("record %d: unexpected TLP %T", i, p)
		}
		if err != nil {
			t.Fatalf("record %d re-encode: %v", i, err)
		}
		if !bytes.Equal(rec.TLP, fresh) {
			t.Fatalf("record %d: traced bytes differ from fresh encoding\n traced: %x\n  fresh: %x", i, rec.TLP, fresh)
		}
		// Traced payloads are always zero-filled; a stray write into
		// the pooled payload buffer would surface here.
		for j, bb := range payload {
			if bb != 0 {
				t.Fatalf("record %d: payload byte %d is %#x, want 0 (pooled buffer contaminated)", i, j, bb)
			}
		}
	}

	// Determinism across runs: a second traced run must produce the
	// exact same journal (timestamps, directions and bytes).
	var buf2 trace.Buffer
	run(&buf2)
	if len(buf.Records) != len(buf2.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(buf.Records), len(buf2.Records))
	}
	for i := range buf.Records {
		a, b := buf.Records[i], buf2.Records[i]
		if a.At != b.At || a.Dir != b.Dir || !bytes.Equal(a.TLP, b.TLP) {
			t.Fatalf("record %d differs between runs: %v/%v %x vs %v/%v %x",
				i, a.At, a.Dir, a.TLP, b.At, b.Dir, b.TLP)
		}
	}
}
