// Package hostif is the "kernel driver" substrate of pciebench: the
// host-side code that allocates DMA-able memory, hands bus addresses to
// the device, programs the IOMMU, and exposes the cache-warming controls
// the benchmarks rely on (paper §5.3).
//
// Two allocation strategies mirror the paper's two drivers:
//
//   - Chunked4M: the NFP driver allocates the host buffer in 4 MB
//     physically contiguous chunks, the largest allocation most Linux
//     kernels grant; chunks are not contiguous with one another.
//   - Huge2M / Huge1G: the NetFPGA driver allocates from hugetlbfs,
//     giving large physically contiguous regions.
//
// When an IOMMU is attached, the buffer is mapped into a contiguous DMA
// (IOVA) range, with a configurable page granularity: superpage mappings
// follow the allocation's natural size, while the paper's `sp_off`
// experiments force 4 KB pages.
package hostif

import (
	"errors"
	"fmt"

	"pciebench/internal/iommu"
	"pciebench/internal/mem"
)

// AllocMode selects the buffer allocation strategy.
type AllocMode int

// Allocation strategies.
const (
	Chunked4M AllocMode = iota // 4MB physically contiguous chunks (NFP driver)
	Huge2M                     // hugetlbfs 2MB pages (NetFPGA driver option)
	Huge1G                     // hugetlbfs 1GB pages (NetFPGA driver default)
)

// String names the mode.
func (m AllocMode) String() string {
	switch m {
	case Chunked4M:
		return "chunked-4M"
	case Huge2M:
		return "huge-2M"
	case Huge1G:
		return "huge-1G"
	}
	return fmt.Sprintf("AllocMode(%d)", int(m))
}

// chunkSize returns the physical contiguity granule of the mode.
func (m AllocMode) chunkSize() int {
	switch m {
	case Huge2M:
		return 2 << 20
	case Huge1G:
		return 1 << 30
	default:
		return 4 << 20
	}
}

// naturalPage returns the largest IOMMU page usable with the mode.
func (m AllocMode) naturalPage() int {
	switch m {
	case Huge2M:
		return iommu.Page2M
	case Huge1G:
		return iommu.Page1G
	default:
		// 4MB chunks are 4KB-page-backed kernel memory; without
		// hugetlbfs the IOMMU maps them with 4KB (or at best 2MB)
		// entries. Use 2MB when superpages are requested.
		return iommu.Page2M
	}
}

// Allocation errors.
var (
	ErrBadSize = errors.New("hostif: size must be positive")
	ErrBadNode = errors.New("hostif: no such NUMA node")
)

const nodePABase = uint64(16) << 30 // 16GB of PA space per node

// Host owns the physical address map and performs DMA buffer setup. It
// plays the role of the paper's kernel drivers and the portions of the
// control programs that pick NUMA nodes and warm caches.
type Host struct {
	ms       *mem.System
	mmu      *iommu.IOMMU   // default translation unit; nil when disabled
	units    []*iommu.IOMMU // every attached unit (Thrash invalidates all)
	nextPA   []uint64
	nextIOVA uint64 // shared across units: DMA layout is scope-independent
}

// New builds a Host over a memory system, optionally with an IOMMU in
// the DMA path.
func New(ms *mem.System, mmu *iommu.IOMMU) *Host {
	nodes := ms.Config().Nodes
	h := &Host{ms: ms, mmu: mmu, nextPA: make([]uint64, nodes), nextIOVA: 1 << 40}
	if mmu != nil {
		h.units = append(h.units, mmu)
	}
	for n := range h.nextPA {
		h.nextPA[n] = uint64(n+1) * nodePABase
	}
	return h
}

// MemSystem returns the attached memory system.
func (h *Host) MemSystem() *mem.System { return h.ms }

// IOMMU returns the default attached IOMMU, or nil.
func (h *Host) IOMMU() *iommu.IOMMU { return h.mmu }

// AttachIOMMU registers an additional translation unit (a per-socket
// DRHD) so Thrash invalidates its IO-TLB along with every other unit.
// Buffers map into a specific unit via AllocIn.
func (h *Host) AttachIOMMU(u *iommu.IOMMU) {
	if u != nil {
		h.units = append(h.units, u)
	}
}

// HomeOf returns the NUMA node owning physical address pa.
func (h *Host) HomeOf(pa uint64) int {
	n := int(pa/nodePABase) - 1
	if n < 0 || n >= h.ms.Config().Nodes {
		return 0
	}
	return n
}

// chunk is one physically contiguous piece of a buffer.
type chunk struct {
	dma  uint64 // address the device uses (IOVA with IOMMU, PA without)
	pa   uint64
	size int
}

// Buffer is a host DMA buffer as seen by both sides: the device
// addresses it through DMAAddr, the host warms or thrashes it.
type Buffer struct {
	Size   int
	Node   int
	Mode   AllocMode
	host   *Host
	mmu    *iommu.IOMMU // unit the buffer is mapped into (nil = untranslated)
	chunks []chunk
}

// Alloc allocates a DMA buffer of size bytes on the given NUMA node,
// mapped through the host's default IOMMU when one is attached.
// mapPage selects the IOMMU mapping granularity: 0 uses the mode's
// natural page size; iommu.Page4K forces 4 KB entries (the paper's
// sp_off); it is ignored when no IOMMU is attached.
func (h *Host) Alloc(size int, node int, mode AllocMode, mapPage int) (*Buffer, error) {
	return h.AllocIn(h.mmu, size, node, mode, mapPage)
}

// AllocIn is Alloc with an explicit translation unit: per-socket-scoped
// fabrics map each buffer into the unit of the socket whose root ports
// will ingest its DMA. A nil unit allocates untranslated. All units
// draw IOVAs from one shared allocator, so the device-visible address
// layout does not depend on the IOMMU scope.
func (h *Host) AllocIn(unit *iommu.IOMMU, size int, node int, mode AllocMode, mapPage int) (*Buffer, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	if node < 0 || node >= len(h.nextPA) {
		return nil, ErrBadNode
	}
	if mapPage == 0 {
		mapPage = mode.naturalPage()
	}
	cs := mode.chunkSize()
	b := &Buffer{Size: size, Node: node, Mode: mode, host: h, mmu: unit}

	remaining := size
	for remaining > 0 {
		n := remaining
		if n > cs {
			n = cs
		}
		// Physical allocation: chunk-aligned, with a guard gap after
		// each chunk so consecutive chunks are not physically
		// contiguous (as with real page allocators).
		pa := alignUp(h.nextPA[node], uint64(cs))
		h.nextPA[node] = pa + uint64(cs) + uint64(cs) // gap of one chunk

		var dma uint64
		if unit != nil {
			// Map into the contiguous IOVA range.
			iova := alignUp(h.nextIOVA, uint64(mapPage))
			mapped := alignUpInt(n, mapPage)
			if err := unit.Map(iova, pa, mapped, mapPage); err != nil {
				return nil, fmt.Errorf("hostif: iommu map: %w", err)
			}
			h.nextIOVA = iova + uint64(mapped)
			dma = iova
		} else {
			dma = pa
		}
		b.chunks = append(b.chunks, chunk{dma: dma, pa: pa, size: n})
		remaining -= n
	}
	return b, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) / a * a }

func alignUpInt(v, a int) int { return (v + a - 1) / a * a }

// Free releases the buffer's IOMMU mappings (physical memory is a
// simulation abstraction and needs no release).
func (b *Buffer) Free() error {
	if b.mmu == nil {
		return nil
	}
	for _, c := range b.chunks {
		if err := b.mmu.Unmap(c.dma); err != nil {
			return err
		}
	}
	b.chunks = nil
	return nil
}

// DMAAddr returns the device-visible address of byte offset off.
func (b *Buffer) DMAAddr(off int) uint64 {
	for _, c := range b.chunks {
		if off < c.size {
			return c.dma + uint64(off)
		}
		off -= c.size
	}
	panic(fmt.Sprintf("hostif: offset %d beyond buffer of %d bytes", off, b.Size))
}

// PhysAddr returns the physical address of byte offset off.
func (b *Buffer) PhysAddr(off int) uint64 {
	for _, c := range b.chunks {
		if off < c.size {
			return c.pa + uint64(off)
		}
		off -= c.size
	}
	panic(fmt.Sprintf("hostif: offset %d beyond buffer of %d bytes", off, b.Size))
}

// Chunks returns the number of physically contiguous pieces.
func (b *Buffer) Chunks() int { return len(b.chunks) }

// WarmHost writes [off, off+size) from the CPU on the buffer's node,
// pulling it into that node's LLC (paper §4 "host warm").
func (b *Buffer) WarmHost(off, size int) {
	b.forRange(off, size, func(pa uint64, n int) {
		b.host.ms.WarmHost(b.Node, pa, n)
	})
}

// WarmDevice loads [off, off+size) through the DDIO device-write path
// (paper §4 "device warm").
func (b *Buffer) WarmDevice(off, size int) {
	b.forRange(off, size, func(pa uint64, n int) {
		b.host.ms.WarmDevice(b.Node, pa, n)
	})
}

// forRange applies fn to the physically contiguous pieces of
// [off, off+size).
func (b *Buffer) forRange(off, size int, fn func(pa uint64, n int)) {
	for _, c := range b.chunks {
		if size <= 0 {
			return
		}
		if off >= c.size {
			off -= c.size
			continue
		}
		n := c.size - off
		if n > size {
			n = size
		}
		fn(c.pa+uint64(off), n)
		size -= n
		off = 0
	}
}

// Thrash resets all LLCs to a cold state, as the control programs do
// before each benchmark.
func (h *Host) Thrash() {
	h.ms.Thrash()
	for _, u := range h.units {
		u.InvalidateAll()
	}
}
