package hostif

import (
	"testing"

	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/sim"
)

func testMem(t *testing.T) *mem.System {
	t.Helper()
	ms, err := mem.NewSystem(mem.Config{
		Nodes:         2,
		Cache:         mem.CacheConfig{SizeBytes: 64 << 10, Ways: 8, LineSize: 64, DDIOWays: 2},
		LLCLatency:    50 * sim.Nanosecond,
		DRAMLatency:   120 * sim.Nanosecond,
		RemoteLatency: 100 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestAllocModes(t *testing.T) {
	cases := []struct {
		mode       AllocMode
		size       int
		wantChunks int
	}{
		{Chunked4M, 1 << 20, 1},
		{Chunked4M, 10 << 20, 3}, // 4+4+2
		{Huge2M, 5 << 20, 3},     // 2+2+1
		{Huge1G, 64 << 20, 1},
	}
	for _, tc := range cases {
		h := New(testMem(t), nil)
		b, err := h.Alloc(tc.size, 0, tc.mode, 0)
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if b.Chunks() != tc.wantChunks {
			t.Errorf("%v size %d: chunks = %d, want %d", tc.mode, tc.size, b.Chunks(), tc.wantChunks)
		}
	}
}

func TestAllocErrors(t *testing.T) {
	h := New(testMem(t), nil)
	if _, err := h.Alloc(0, 0, Chunked4M, 0); err != ErrBadSize {
		t.Errorf("size 0: %v", err)
	}
	if _, err := h.Alloc(4096, 5, Chunked4M, 0); err != ErrBadNode {
		t.Errorf("bad node: %v", err)
	}
}

func TestChunksNotPhysicallyContiguous(t *testing.T) {
	h := New(testMem(t), nil)
	b, err := h.Alloc(12<<20, 0, Chunked4M, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Chunks() != 3 {
		t.Fatalf("chunks = %d", b.Chunks())
	}
	end0 := b.PhysAddr(0) + uint64(4<<20)
	start1 := b.PhysAddr(4 << 20)
	if start1 == end0 {
		t.Error("chunks are physically contiguous; the allocator should leave gaps")
	}
}

func TestDMAAddrWithoutIOMMUIsPA(t *testing.T) {
	h := New(testMem(t), nil)
	b, _ := h.Alloc(8<<20, 0, Chunked4M, 0)
	for _, off := range []int{0, 4096, 4 << 20, 8<<20 - 1} {
		if b.DMAAddr(off) != b.PhysAddr(off) {
			t.Errorf("off %d: dma %#x != pa %#x", off, b.DMAAddr(off), b.PhysAddr(off))
		}
	}
}

func TestDMAAddrWithIOMMUIsContiguous(t *testing.T) {
	k := sim.New(1)
	mmu := iommu.New(k, iommu.DefaultConfig())
	h := New(testMem(t), mmu)
	b, err := h.Alloc(12<<20, 0, Chunked4M, iommu.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	base := b.DMAAddr(0)
	// IOVA space is contiguous across chunk boundaries as long as chunk
	// sizes are page multiples.
	for _, off := range []int{0, 4096, 4 << 20, 4<<20 + 512, 11 << 20} {
		if got := b.DMAAddr(off); got != base+uint64(off) {
			t.Errorf("off %d: dma %#x, want %#x", off, got, base+uint64(off))
		}
	}
	// Translations resolve to the right physical addresses.
	r, err := mmu.Translate(0, b.DMAAddr(5<<20))
	if err != nil {
		t.Fatal(err)
	}
	if r.PA != b.PhysAddr(5<<20) {
		t.Errorf("translate(5MB) = %#x, want %#x", r.PA, b.PhysAddr(5<<20))
	}
}

func TestSuperpageVsForced4K(t *testing.T) {
	// With natural (superpage) mapping a 4MB buffer needs 2 IO-TLB
	// entries (2MB pages); with sp_off it needs 1024.
	k := sim.New(1)
	mmuSP := iommu.New(k, iommu.Config{TLBEntries: 2048, WalkLatency: 330 * sim.Nanosecond, Walkers: 2})
	hSP := New(testMem(t), mmuSP)
	bSP, err := hSP.Alloc(4<<20, 0, Chunked4M, 0) // natural: 2MB pages
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < 4<<20; off += 4096 {
		if _, err := mmuSP.Translate(0, bSP.DMAAddr(off)); err != nil {
			t.Fatal(err)
		}
	}
	if mmuSP.Misses != 2 {
		t.Errorf("superpage misses = %d, want 2", mmuSP.Misses)
	}

	mmu4K := iommu.New(k, iommu.Config{TLBEntries: 2048, WalkLatency: 330 * sim.Nanosecond, Walkers: 2})
	h4K := New(testMem(t), mmu4K)
	b4K, err := h4K.Alloc(4<<20, 0, Chunked4M, iommu.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < 4<<20; off += 4096 {
		if _, err := mmu4K.Translate(0, b4K.DMAAddr(off)); err != nil {
			t.Fatal(err)
		}
	}
	if mmu4K.Misses != 1024 {
		t.Errorf("sp_off misses = %d, want 1024", mmu4K.Misses)
	}
}

func TestHomeOf(t *testing.T) {
	h := New(testMem(t), nil)
	b0, _ := h.Alloc(1<<20, 0, Chunked4M, 0)
	b1, _ := h.Alloc(1<<20, 1, Chunked4M, 0)
	if got := h.HomeOf(b0.PhysAddr(0)); got != 0 {
		t.Errorf("node0 buffer homed at %d", got)
	}
	if got := h.HomeOf(b1.PhysAddr(0)); got != 1 {
		t.Errorf("node1 buffer homed at %d", got)
	}
	if got := h.HomeOf(0); got != 0 {
		t.Errorf("out-of-range PA homed at %d, want 0", got)
	}
}

func TestWarmingPaths(t *testing.T) {
	ms := testMem(t)
	h := New(ms, nil)
	b, _ := h.Alloc(8<<10, 0, Chunked4M, 0)

	b.WarmHost(0, 8<<10)
	if got := ms.Access(false, 0, b.PhysAddr(0), 64); got != 50*sim.Nanosecond {
		t.Errorf("after host warm: %v, want LLC", got)
	}

	h.Thrash()
	if got := ms.Access(false, 0, b.PhysAddr(0), 64); got != 120*sim.Nanosecond {
		t.Errorf("after thrash: %v, want DRAM", got)
	}

	b.WarmDevice(0, 8<<10)
	if got := ms.Access(false, 0, b.PhysAddr(4096), 64); got != 50*sim.Nanosecond {
		t.Errorf("after device warm: %v, want LLC", got)
	}
}

func TestWarmSpansChunks(t *testing.T) {
	ms := testMem(t)
	h := New(ms, nil)
	b, _ := h.Alloc(8<<20, 0, Chunked4M, 0) // two 4MB chunks
	// Warm a range straddling the chunk boundary.
	start := 4<<20 - 128
	b.WarmHost(start, 256)
	if got := ms.Access(false, 0, b.PhysAddr(4<<20-64), 64); got != 50*sim.Nanosecond {
		t.Error("pre-boundary line not warm")
	}
	if got := ms.Access(false, 0, b.PhysAddr(4<<20+64), 64); got != 50*sim.Nanosecond {
		t.Error("post-boundary line not warm")
	}
}

func TestBufferFree(t *testing.T) {
	k := sim.New(1)
	mmu := iommu.New(k, iommu.DefaultConfig())
	h := New(testMem(t), mmu)
	b, err := h.Alloc(8<<20, 0, Chunked4M, iommu.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	dma := b.DMAAddr(0)
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := mmu.Translate(0, dma); err == nil {
		t.Error("translate succeeded after Free")
	}
	// Freeing an IOMMU-less buffer is a no-op.
	h2 := New(testMem(t), nil)
	b2, _ := h2.Alloc(4096, 0, Chunked4M, 0)
	if err := b2.Free(); err != nil {
		t.Error(err)
	}
}

func TestDMAAddrPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	h := New(testMem(t), nil)
	b, _ := h.Alloc(4096, 0, Chunked4M, 0)
	b.DMAAddr(4096)
}

func TestAllocModeStrings(t *testing.T) {
	for m, want := range map[AllocMode]string{
		Chunked4M: "chunked-4M", Huge2M: "huge-2M", Huge1G: "huge-1G",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d: %q != %q", int(m), got, want)
		}
	}
}
