package nfp

import (
	"testing"

	"pciebench/internal/device"
	"pciebench/internal/device/netfpga"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

func hostRC(t *testing.T, k *sim.Kernel) (*rc.RootComplex, *mem.System) {
	t.Helper()
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r, ms
}

// readLatency measures one warm read of size sz on engine build.
func readLatency(t *testing.T, build func(*sim.Kernel, device.Path) (*device.Engine, error), sz int, direct bool) sim.Time {
	t.Helper()
	k := sim.New(3)
	r, ms := hostRC(t, k)
	e, err := build(k, r)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's baseline (§6.1) warms the 8KB host buffer first.
	ms.WarmHost(0, 0, 8<<10)
	var lat sim.Time
	e.Submit(device.Op{DMA: 0, Size: sz, Direct: direct, OnDone: func(c device.Completion) {
		lat = c.Done - c.Submitted
	}})
	k.Run()
	return lat
}

func TestNFPFixedOffsetOverNetFPGA(t *testing.T) {
	// Paper Fig 5: the NFP's DMA-engine path has a fixed ~100ns offset
	// over NetFPGA for small transfers.
	nfpLat := readLatency(t, New, 64, false)
	netLat := readLatency(t, netfpga.New, 64, false)
	delta := nfpLat - netLat
	if delta < 80*sim.Nanosecond || delta > 140*sim.Nanosecond {
		t.Errorf("NFP-NetFPGA small-read offset = %v, want ~100ns", delta)
	}
}

func TestNFPGapWidensWithSize(t *testing.T) {
	// Paper §6.1: "the gap increasing for larger transfers" due to the
	// CTM staging transfer.
	small := readLatency(t, New, 64, false) - readLatency(t, netfpga.New, 64, false)
	large := readLatency(t, New, 2048, false) - readLatency(t, netfpga.New, 2048, false)
	if large <= small {
		t.Errorf("gap at 2048B (%v) not wider than at 64B (%v)", large, small)
	}
	// The widening is roughly the 2048B staging cost (~200ns).
	widen := large - small
	if widen < 150*sim.Nanosecond || widen > 280*sim.Nanosecond {
		t.Errorf("gap widening = %v, want ~200ns", widen)
	}
}

func TestNFPDirectMatchesNetFPGA(t *testing.T) {
	// Paper §6.1: "When using the NFP's direct PCIe command interface
	// ... the NFP-6000 achieves the same latency as the NetFPGA".
	nfpDirect := readLatency(t, New, 64, true)
	netLat := readLatency(t, netfpga.New, 64, false)
	delta := nfpDirect - netLat
	if delta < -30*sim.Nanosecond || delta > 30*sim.Nanosecond {
		t.Errorf("NFP direct vs NetFPGA delta = %v, want ~0", delta)
	}
}

func TestAbsoluteLatencyCalibration(t *testing.T) {
	// Paper Fig 6 (Xeon E5 Haswell): 64B DMA reads have a median of
	// ~547ns on the NFP.
	lat := readLatency(t, New, 64, false)
	if lat < 480*sim.Nanosecond || lat > 620*sim.Nanosecond {
		t.Errorf("NFP 64B warm read = %v, want ~547ns", lat)
	}
	// NetFPGA (and NFP direct) sit around 430-480ns.
	lat = readLatency(t, netfpga.New, 64, false)
	if lat < 380*sim.Nanosecond || lat > 520*sim.Nanosecond {
		t.Errorf("NetFPGA 64B warm read = %v, want ~450ns", lat)
	}
}

func TestFig5SizeScaling(t *testing.T) {
	// Paper Fig 5 endpoints: at 2048B, NFP LAT_RD ~1500ns and NetFPGA
	// ~1250ns.
	nfp := readLatency(t, New, 2048, false)
	if nfp < 1300*sim.Nanosecond || nfp > 1700*sim.Nanosecond {
		t.Errorf("NFP 2048B read = %v, want ~1500ns", nfp)
	}
	net := readLatency(t, netfpga.New, 2048, false)
	if net < 1050*sim.Nanosecond || net > 1450*sim.Nanosecond {
		t.Errorf("NetFPGA 2048B read = %v, want ~1250ns", net)
	}
}

func TestTimestampResolutions(t *testing.T) {
	if Config().TimestampResolution != 19200 {
		t.Errorf("NFP resolution = %v, want 19.2ns", Config().TimestampResolution)
	}
	if netfpga.Config().TimestampResolution != 4*sim.Nanosecond {
		t.Errorf("NetFPGA resolution = %v, want 4ns", netfpga.Config().TimestampResolution)
	}
}

func TestConfigsValid(t *testing.T) {
	if err := Config().Validate(); err != nil {
		t.Errorf("NFP config: %v", err)
	}
	if err := netfpga.Config().Validate(); err != nil {
		t.Errorf("NetFPGA config: %v", err)
	}
}
