// Package nfp parameterizes the pciebench DMA-engine model as a
// Netronome NFP-6000 programmable NIC (paper §5.1).
//
// The NFP runs benchmark firmware on 1.2 GHz Flow Processing Cores. A
// DMA goes through: descriptor preparation and enqueue by an FPC thread,
// the shared bulk DMA engine, and — because the engine targets the
// PCIe-adjacent Cluster Target Memory (CTM) — an additional internal
// transfer between CTM and the memory the FPCs compute on. The paper
// measures a fixed ~100 ns offset over NetFPGA from the enqueue path
// plus a size-dependent gap from the staging transfer.
//
// For transfers up to 128 B the NFP also exposes a direct PCIe command
// interface that bypasses the descriptor queue and staging entirely;
// with it the NFP matches NetFPGA latency, which the paper uses as
// evidence that the bulk of the latency lives in the host.
package nfp

import (
	"pciebench/internal/device"
	"pciebench/internal/sim"
)

// Timing constants for the NFP-6000 model.
const (
	// Clock is one 1.2 GHz FPC cycle (833 ps).
	Clock = 833 * sim.Picosecond
	// TimestampResolution is the 16-cycle timestamp counter tick the
	// paper reports as 19.2 ns.
	TimestampResolution = sim.Time(19200)
	// CTMAccess is a Cluster Target Memory access (50-100 cycles per
	// §5.1); the midpoint is used for descriptor enqueue costing.
	CTMAccess = 62 * sim.Nanosecond
)

// Config returns the engine parameterization for the NFP-6000.
//
// Calibration notes (all anchored to paper numbers):
//   - IssueLatency+enqueue reproduce the ~100 ns fixed offset over
//     NetFPGA for small DMA-engine transfers (Fig 5).
//   - StagingPSPerByte=100 (an ~80 Gb/s internal path) reproduces the
//     widening CTM gap at larger transfers (Fig 5).
//   - MaxInFlight=32 with a 12 ns descriptor service interval makes
//     small-read bandwidth latency-bound (in-flight x latency), landing
//     BW_RD at 64 B near the measured ~30 Gb/s warm and ~26 Gb/s cold
//     (Figs 4a, 7b) while leaving large transfers link-limited.
func Config() device.Config {
	return device.Config{
		Name:                "NFP6000",
		IssueLatency:        CTMAccess + 24*sim.Nanosecond, // descriptor build + enqueue
		IssueInterval:       12 * sim.Nanosecond,
		MaxInFlight:         32,
		StagingPSPerByte:    100,
		StagingFixed:        8 * sim.Nanosecond,
		RxPSPerByte:         250,
		CompletionOverhead:  12 * sim.Nanosecond,
		TimestampResolution: TimestampResolution,
		SupportsDirect:      true,
		DirectIssueLatency:  10 * sim.Nanosecond,
		DirectMaxSize:       128,
	}
}

// New builds an NFP-6000 engine on the given fabric attachment.
func New(k *sim.Kernel, path device.Path) (*device.Engine, error) {
	return device.New(k, path, Config())
}
