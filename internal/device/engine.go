// Package device provides the device-side half of pcie-bench: a DMA
// engine model with descriptor issue, bounded in-flight transactions,
// device-internal staging costs and quantized timestamping. The NFP and
// NetFPGA models (subpackages nfp and netfpga) are parameterizations of
// this engine matching the architectures described in paper §5.1/§5.2.
//
// An engine binds to a Path — any attachment point into the PCIe
// fabric. The degenerate single-device systems pass the *rc.RootComplex
// itself; multi-endpoint topologies bind each engine to its own
// *rc.Port, possibly below a shared switch.
package device

import (
	"fmt"

	"pciebench/internal/fault"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

// Path is the engine's view of its attachment into the PCIe fabric.
// Both *rc.RootComplex (port 0 of the degenerate topology) and *rc.Port
// implement it.
type Path interface {
	DMAReadOrdered(at sim.Time, dma uint64, sz int, orderAfter sim.Time) (rc.ReadResult, error)
	DMAWrite(at sim.Time, dma uint64, sz int) (rc.WriteResult, error)
}

// Config parameterizes a DMA engine.
type Config struct {
	// Name identifies the device model in reports.
	Name string
	// IssueLatency is the per-operation cost before the DMA engine
	// sees the descriptor: address computation, descriptor build,
	// enqueue (NFP: ~a CTM round trip; NetFPGA: one clock cycle).
	IssueLatency sim.Time
	// IssueInterval is the engine's descriptor service time; its
	// inverse is the peak DMA issue rate.
	IssueInterval sim.Time
	// MaxInFlight bounds concurrently outstanding DMAs (tag space /
	// descriptor queue depth). Ops beyond it queue inside the device.
	MaxInFlight int
	// StagingPSPerByte models the NFP's additional internal transfer
	// between the PCIe-adjacent SRAM (CTM) and processing memory, in
	// picoseconds per byte (0 = direct placement, as on NetFPGA).
	StagingPSPerByte int64
	// StagingFixed is the fixed part of the staging cost.
	StagingFixed sim.Time
	// RxPSPerByte is the store-and-forward accumulation latency of
	// read-completion data into device memory before the engine
	// signals completion, in picoseconds per byte. It adds latency but
	// is pipelined across DMAs, so it does not cap throughput.
	RxPSPerByte int64
	// CompletionOverhead is the device-side signalling cost after the
	// last data arrives (interrupt/event delivery to the issuing
	// thread).
	CompletionOverhead sim.Time
	// TimestampResolution quantizes measured durations the way the
	// device's cycle counter does (19.2 ns on the NFP, 4 ns on
	// NetFPGA).
	TimestampResolution sim.Time

	// SupportsDirect enables a low-latency "PCIe command interface"
	// path for small transfers (NFP §5.1): no descriptor queue, no
	// staging.
	SupportsDirect bool
	// DirectIssueLatency is the issue cost on the direct path.
	DirectIssueLatency sim.Time
	// DirectMaxSize is the largest transfer the direct path accepts.
	DirectMaxSize int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IssueInterval < 0 || c.IssueLatency < 0 {
		return fmt.Errorf("device: negative issue cost")
	}
	if c.MaxInFlight < 1 {
		return fmt.Errorf("device: MaxInFlight must be >= 1")
	}
	return nil
}

// Completion reports the timeline of one finished operation.
type Completion struct {
	// Submitted is when the op entered the device.
	Submitted sim.Time
	// Issued is when the first TLP hit the link.
	Issued sim.Time
	// Done is the device-visible completion: for reads, data staged
	// and the issuing thread signalled; for (posted) writes, the
	// engine's injection of the last TLP.
	Done sim.Time
	// MemVisible is, for writes, when the data is globally visible in
	// host memory (used for ordering in LAT_WRRD); zero for reads.
	MemVisible sim.Time
	// Err reports a failed DMA (an IOMMU fault).
	Err error
}

// Latency returns Done-Submitted quantized to the device's timestamp
// resolution.
func (c Completion) Latency(resolution sim.Time) sim.Time {
	d := c.Done - c.Submitted
	if resolution > 1 {
		d = d / resolution * resolution
	}
	return d
}

// Op is one DMA operation submitted to the engine.
type Op struct {
	Write      bool
	DMA        uint64   // device-visible (bus) address
	Size       int      // bytes
	OrderAfter sim.Time // reads: memory access ordered after this time
	Direct     bool     // use the direct command interface if available
	OnDone     func(Completion)
}

// Engine is a device DMA engine bound to a root complex.
type Engine struct {
	k   *sim.Kernel
	rc  Path
	cfg Config

	issue    *sim.Server // descriptor issue stage
	inFlight int
	queue    []Op // waiting ops, FIFO from qhead; storage reused
	qhead    int

	// Completion records in flight between finish() and the kernel
	// event that delivers them. Slots are recycled through a freelist so
	// the steady state allocates nothing per operation.
	pending  []pendingDone
	freeList []int32

	// Completion-timeout model (zero cto = disabled, the exact
	// pre-fault path). A read whose completion would land more than
	// cto after issue times out and re-issues with exponential
	// backoff, aborting after ctoRetries attempts.
	cto        sim.Time
	ctoRetries int
	ctoBackoff sim.Time
	ctr        *fault.Counters

	// Statistics.
	Ops       uint64
	Bytes     uint64
	MaxQueued int
}

// pendingDone parks a completion and its callback until the kernel
// reaches the completion time.
type pendingDone struct {
	c      Completion
	onDone func(Completion)
}

// finishEvent delivers one pending completion; it is pointer-shaped, so
// scheduling it through the typed-event kernel does not allocate.
type finishEvent struct{ e *Engine }

// Handle frees the in-flight slot, starts a queued op, and runs the
// caller's OnDone — the same order the closure-based path used.
func (f finishEvent) Handle(_ *sim.Kernel, idx, _ int64) {
	e := f.e
	rec := e.pending[idx]
	e.pending[idx] = pendingDone{}
	e.freeList = append(e.freeList, int32(idx))
	e.inFlight--
	if e.qhead < len(e.queue) {
		next := e.queue[e.qhead]
		e.queue[e.qhead] = Op{}
		e.qhead++
		if e.qhead == len(e.queue) {
			e.queue = e.queue[:0]
			e.qhead = 0
		}
		e.start(next)
	}
	if rec.onDone != nil {
		rec.onDone(rec.c)
	}
}

// New builds an engine on the given fabric attachment.
func New(k *sim.Kernel, path Path, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{k: k, rc: path, cfg: cfg, issue: sim.NewServer(k)}, nil
}

// SetFaults installs the completion-timeout model (cfg.CTO and
// friends, already defaulted via WithDefaults) and the endpoint's
// shared AER-style counter block.
func (e *Engine) SetFaults(cfg fault.Config, ctr *fault.Counters) {
	e.cto = cfg.CTO
	e.ctoRetries = cfg.CTORetries
	e.ctoBackoff = cfg.CTOBackoff
	e.ctr = ctr
}

// FaultCounters returns the engine's counter block, or nil when no
// fault model is installed.
func (e *Engine) FaultCounters() *fault.Counters { return e.ctr }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Path returns the engine's fabric attachment.
func (e *Engine) Path() Path { return e.rc }

// Kernel returns the simulation kernel.
func (e *Engine) Kernel() *sim.Kernel { return e.k }

// InFlight returns the number of outstanding DMAs.
func (e *Engine) InFlight() int { return e.inFlight }

// Quantize rounds a duration down to the device's timestamp resolution.
func (e *Engine) Quantize(d sim.Time) sim.Time {
	if e.cfg.TimestampResolution > 1 {
		return d / e.cfg.TimestampResolution * e.cfg.TimestampResolution
	}
	return d
}

// Submit enqueues an operation. If the engine has a free in-flight slot
// the operation starts immediately (in virtual time); otherwise it waits
// for a completion. OnDone fires as a simulation event at the op's
// completion time.
func (e *Engine) Submit(op Op) {
	if e.inFlight >= e.cfg.MaxInFlight {
		// Compact the dead prefix of popped ops before it dominates the
		// slice, so the queue reuses its storage instead of growing (and
		// reallocating) for the lifetime of the run.
		if e.qhead > 0 && e.qhead*2 >= len(e.queue) {
			n := copy(e.queue, e.queue[e.qhead:])
			clear(e.queue[n:])
			e.queue = e.queue[:n]
			e.qhead = 0
		}
		e.queue = append(e.queue, op)
		if n := len(e.queue) - e.qhead; n > e.MaxQueued {
			e.MaxQueued = n
		}
		return
	}
	e.start(op)
}

// SubmitNow starts an operation immediately and returns its computed
// completion synchronously (the timeline is fully determined at
// submission in the virtual-clock design; OnDone still fires as an
// event). It reports ok=false without starting anything when no
// in-flight slot is free. Benchmarks use it where a subsequent operation
// must reference this one's timeline — e.g. LAT_WRRD's read ordering
// behind the write's memory visibility.
func (e *Engine) SubmitNow(op Op) (Completion, bool) {
	if e.inFlight >= e.cfg.MaxInFlight {
		return Completion{}, false
	}
	return e.start(op), true
}

func (e *Engine) start(op Op) Completion {
	e.inFlight++
	e.Ops++
	e.Bytes += uint64(op.Size)

	now := e.k.Now()
	c := Completion{Submitted: now}

	direct := op.Direct && e.cfg.SupportsDirect && op.Size <= e.cfg.DirectMaxSize
	var issued sim.Time
	if direct {
		issued = now + e.cfg.DirectIssueLatency
	} else {
		// Descriptor build, then the engine's issue stage.
		issued = e.issue.ScheduleAt(now+e.cfg.IssueLatency, e.cfg.IssueInterval)
	}

	staging := e.cfg.StagingFixed + sim.Time(e.cfg.StagingPSPerByte*int64(op.Size))
	if direct {
		staging = 0
	}

	if op.Write {
		// The engine must pull the payload from device memory into
		// the PCIe-adjacent buffer before injecting it.
		res, err := e.rc.DMAWrite(issued+staging, op.DMA, op.Size)
		if err != nil {
			c.Err = err
			c.Done = issued
			e.finish(c, op)
			return c
		}
		c.Issued = issued + staging
		c.Done = res.LinkDone
		c.MemVisible = res.MemDone
		e.finish(c, op)
		return c
	}

	res, err := e.rc.DMAReadOrdered(issued, op.DMA, op.Size, op.OrderAfter)
	if err != nil {
		c.Err = err
		c.Done = issued
		e.finish(c, op)
		return c
	}
	if e.cto > 0 {
		// Completion timeout: a read whose last completion lands more
		// than cto after issue is abandoned (its late completions are
		// dropped — the link time is already spent) and re-issued
		// after a capped exponential backoff.
		backoff := e.ctoBackoff
		for retries := 0; res.Complete-issued > e.cto; retries++ {
			e.ctr.Timeouts++
			if retries >= e.ctoRetries {
				e.ctr.Fatal++
				c.Err = fmt.Errorf("device: %s: DMA read of %d bytes aborted after %d completion timeouts", e.cfg.Name, op.Size, retries+1)
				c.Done = issued + e.cto
				e.finish(c, op)
				return c
			}
			e.ctr.NonFatal++
			issued += e.cto + backoff
			if backoff < e.ctoBackoff<<fault.DefaultCTOBackoffCapShift {
				backoff *= 2
			}
			res, err = e.rc.DMAReadOrdered(issued, op.DMA, op.Size, op.OrderAfter)
			if err != nil {
				c.Err = err
				c.Done = issued
				e.finish(c, op)
				return c
			}
		}
	}
	c.Issued = issued
	rx := sim.Time(e.cfg.RxPSPerByte * int64(op.Size))
	c.Done = res.Complete + rx + staging + e.cfg.CompletionOverhead
	e.finish(c, op)
	return c
}

// finish schedules the completion event: the in-flight slot frees, a
// queued op starts, and the caller's OnDone runs. The completion parks
// in a recycled pending slot and the event itself is typed, so nothing
// here allocates in steady state.
func (e *Engine) finish(c Completion, op Op) {
	at := c.Done
	if at < e.k.Now() {
		at = e.k.Now()
	}
	var idx int32
	if n := len(e.freeList); n > 0 {
		idx = e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
	} else {
		idx = int32(len(e.pending))
		e.pending = append(e.pending, pendingDone{})
	}
	e.pending[idx] = pendingDone{c: c, onDone: op.OnDone}
	e.k.AtEvent(at, finishEvent{e}, int64(idx), 0)
}
