package device

import (
	"testing"

	"pciebench/internal/fault"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

func testRC(t *testing.T, k *sim.Kernel) *rc.RootComplex {
	t.Helper()
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testConfig() Config {
	return Config{
		Name:                "test",
		IssueLatency:        10 * sim.Nanosecond,
		IssueInterval:       5 * sim.Nanosecond,
		MaxInFlight:         2,
		RxPSPerByte:         0,
		CompletionOverhead:  5 * sim.Nanosecond,
		TimestampResolution: 4 * sim.Nanosecond,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.MaxInFlight = 0
	if err := bad.Validate(); err == nil {
		t.Error("MaxInFlight 0 accepted")
	}
	bad = good
	bad.IssueLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative issue latency accepted")
	}
}

func TestReadCompletes(t *testing.T) {
	k := sim.New(1)
	e, err := New(k, testRC(t, k), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got Completion
	e.Submit(Op{DMA: 0, Size: 64, OnDone: func(c Completion) { got = c }})
	k.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Done <= got.Issued || got.Issued <= got.Submitted {
		t.Errorf("timeline: %+v", got)
	}
	if e.Ops != 1 || e.Bytes != 64 {
		t.Errorf("stats: ops=%d bytes=%d", e.Ops, e.Bytes)
	}
}

func TestWriteCompletesAtInjection(t *testing.T) {
	k := sim.New(1)
	e, _ := New(k, testRC(t, k), testConfig())
	var got Completion
	e.Submit(Op{Write: true, DMA: 0, Size: 256, OnDone: func(c Completion) { got = c }})
	k.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	// Posted write: device-visible completion strictly before memory
	// visibility.
	if got.Done >= got.MemVisible {
		t.Errorf("posted write: Done %v >= MemVisible %v", got.Done, got.MemVisible)
	}
}

func TestInFlightLimitAndQueue(t *testing.T) {
	k := sim.New(1)
	e, _ := New(k, testRC(t, k), testConfig()) // MaxInFlight=2
	completions := 0
	for i := 0; i < 5; i++ {
		e.Submit(Op{DMA: uint64(i * 64), Size: 64, OnDone: func(Completion) { completions++ }})
	}
	if e.InFlight() != 2 {
		t.Errorf("in flight = %d, want 2", e.InFlight())
	}
	if e.MaxQueued != 3 {
		t.Errorf("queued = %d, want 3", e.MaxQueued)
	}
	k.Run()
	if completions != 5 {
		t.Errorf("completions = %d", completions)
	}
	if e.InFlight() != 0 {
		t.Errorf("in flight after run = %d", e.InFlight())
	}
}

func TestPipelinedFasterThanSerial(t *testing.T) {
	// 8 reads with 4 in flight finish much sooner than with 1.
	run := func(inflight int) sim.Time {
		k := sim.New(1)
		cfg := testConfig()
		cfg.MaxInFlight = inflight
		e, _ := New(k, testRC(t, k), cfg)
		var last sim.Time
		for i := 0; i < 8; i++ {
			e.Submit(Op{DMA: uint64(i * 4096), Size: 64, OnDone: func(c Completion) { last = c.Done }})
		}
		k.Run()
		return last
	}
	serial, pipelined := run(1), run(4)
	if pipelined >= serial {
		t.Errorf("pipelined %v not faster than serial %v", pipelined, serial)
	}
	if float64(serial)/float64(pipelined) < 2 {
		t.Errorf("speedup only %.2fx", float64(serial)/float64(pipelined))
	}
}

func TestDirectPathFaster(t *testing.T) {
	cfg := testConfig()
	cfg.SupportsDirect = true
	cfg.DirectIssueLatency = 2 * sim.Nanosecond
	cfg.DirectMaxSize = 128
	cfg.IssueLatency = 100 * sim.Nanosecond
	cfg.StagingPSPerByte = 100

	run := func(direct bool, size int) sim.Time {
		k := sim.New(1)
		e, _ := New(k, testRC(t, k), cfg)
		var lat sim.Time
		e.Submit(Op{DMA: 0, Size: size, Direct: direct, OnDone: func(c Completion) {
			lat = c.Done - c.Submitted
		}})
		k.Run()
		return lat
	}
	if d, q := run(true, 64), run(false, 64); d >= q {
		t.Errorf("direct %v not faster than queued %v", d, q)
	}
	// Over the size limit the direct flag silently uses the DMA path.
	if d, q := run(true, 512), run(false, 512); d != q {
		t.Errorf("oversize direct %v != queued %v", d, q)
	}
}

func TestLatencyQuantization(t *testing.T) {
	c := Completion{Submitted: 0, Done: 1234567} // 1234.567ns
	if got := c.Latency(19200); got != 1228800 { // 64 ticks of 19.2ns
		t.Errorf("NFP quantization: %d, want 1228800", got)
	}
	if got := c.Latency(1); got != 1234567 {
		t.Errorf("no quantization: %d", got)
	}
	if got := c.Latency(0); got != 1234567 {
		t.Errorf("zero resolution: %d", got)
	}
}

func TestQuantizeHelper(t *testing.T) {
	k := sim.New(1)
	e, _ := New(k, testRC(t, k), testConfig()) // 4ns resolution
	if got := e.Quantize(10500); got != 8000 {
		t.Errorf("Quantize(10.5ns) = %v, want 8ns", got)
	}
}

func TestOrderAfterRespected(t *testing.T) {
	k := sim.New(1)
	e, _ := New(k, testRC(t, k), testConfig())
	barrier := 50 * sim.Microsecond
	var done sim.Time
	e.Submit(Op{DMA: 0, Size: 64, OrderAfter: barrier, OnDone: func(c Completion) { done = c.Done }})
	k.Run()
	if done < barrier {
		t.Errorf("done %v before barrier %v", done, barrier)
	}
}

func TestStagingAddsSizeDependentLatency(t *testing.T) {
	base := testConfig()
	withStaging := base
	withStaging.StagingPSPerByte = 100
	run := func(cfg Config, size int) sim.Time {
		k := sim.New(1)
		e, _ := New(k, testRC(t, k), cfg)
		var lat sim.Time
		e.Submit(Op{DMA: 0, Size: size, OnDone: func(c Completion) { lat = c.Done - c.Submitted }})
		k.Run()
		return lat
	}
	d64 := run(withStaging, 64) - run(base, 64)
	d2048 := run(withStaging, 2048) - run(base, 2048)
	if d64 != 6400 {
		t.Errorf("64B staging delta = %v, want 6.4ns", d64)
	}
	if d2048 != 204800 {
		t.Errorf("2048B staging delta = %v, want 204.8ns", d2048)
	}
}

// TestCompletionTimeoutRetry covers the fault-injected completion
// timeout paths: a generous CTO never fires; a CTO below the read's
// round trip retries with exponential backoff and aborts after the
// configured retry budget with a fatal AER-style count.
func TestCompletionTimeoutRetry(t *testing.T) {
	run := func(cto sim.Time, retries int) (Completion, *fault.Counters) {
		k := sim.New(1)
		e, err := New(k, testRC(t, k), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		ctr := &fault.Counters{}
		e.SetFaults(fault.Config{CTO: cto, CTORetries: retries, CTOBackoff: cto}.WithDefaults(), ctr)
		var got Completion
		e.Submit(Op{DMA: 0, Size: 64, OnDone: func(c Completion) { got = c }})
		k.Run()
		return got, ctr
	}

	// A 1ms CTO never fires on a sub-microsecond read.
	ok, ctr := run(sim.Millisecond, 2)
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	if !ctr.Zero() {
		t.Errorf("generous CTO recorded events: %+v", *ctr)
	}

	// A 10ns CTO times out every attempt: retries+1 timeouts, then a
	// fatal abort with a surfaced error.
	bad, ctr := run(10*sim.Nanosecond, 2)
	if bad.Err == nil {
		t.Fatal("no error after exhausting completion-timeout retries")
	}
	if ctr.Timeouts != 3 || ctr.Fatal != 1 || ctr.NonFatal != 2 {
		t.Errorf("counters: %+v", *ctr)
	}
}
