// Package netfpga parameterizes the pciebench DMA-engine model as a
// NetFPGA-SUME board (paper §5.2).
//
// The NetFPGA implementation drives the DMA engine directly from a
// finite state machine in the FPGA fabric: there is no descriptor FIFO,
// a new memory request can be generated every 250 MHz clock cycle, and
// no staging transfer exists — received data lands where the design
// reads it. Its free-running counter gives 4 ns timestamps. These
// properties make the NetFPGA numbers the closest observable proxy for
// the host's own contribution, which is how the paper uses them.
package netfpga

import (
	"pciebench/internal/device"
	"pciebench/internal/sim"
)

// Timing constants for the NetFPGA-SUME model.
const (
	// Clock is one 250 MHz PCIe-core cycle.
	Clock = 4 * sim.Nanosecond
	// TimestampResolution is the free-running counter tick (§5.2).
	TimestampResolution = Clock
)

// Config returns the engine parameterization for NetFPGA-SUME.
//
// Calibration notes: one cycle of address generation, one request per
// cycle issue rate, 30 in-flight requests (the DMA engine described in
// the paper's reference [61] sizes its completion buffering for ~28-32
// outstanding reads), and a ~0.25 ns/B store-and-forward accumulation of
// completion data into FPGA memory, which reproduces the slope of Fig 5.
func Config() device.Config {
	return device.Config{
		Name:                "NetFPGA",
		IssueLatency:        Clock,
		IssueInterval:       Clock,
		MaxInFlight:         30,
		StagingPSPerByte:    0,
		StagingFixed:        0,
		RxPSPerByte:         250,
		CompletionOverhead:  Clock,
		TimestampResolution: TimestampResolution,
		SupportsDirect:      false,
	}
}

// New builds a NetFPGA-SUME engine on the given fabric attachment.
func New(k *sim.Kernel, path device.Path) (*device.Engine, error) {
	return device.New(k, path, Config())
}
