package netfpga

import (
	"testing"

	"pciebench/internal/device"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

func TestConfigMatchesPaper(t *testing.T) {
	cfg := Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// §5.2: 250MHz core, 4ns timestamps, a request per clock cycle, no
	// descriptor FIFO, no staging transfer.
	if Clock != 4*sim.Nanosecond {
		t.Errorf("Clock = %v", Clock)
	}
	if cfg.TimestampResolution != 4*sim.Nanosecond {
		t.Errorf("resolution = %v", cfg.TimestampResolution)
	}
	if cfg.IssueInterval != Clock {
		t.Errorf("issue interval = %v, want one cycle", cfg.IssueInterval)
	}
	if cfg.StagingPSPerByte != 0 || cfg.StagingFixed != 0 {
		t.Error("NetFPGA should have no staging transfer")
	}
	if cfg.SupportsDirect {
		t.Error("NetFPGA has no separate direct command interface")
	}
}

func TestNewRunsAgainstHost(t *testing.T) {
	k := sim.New(2)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	complex, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(k, complex)
	if err != nil {
		t.Fatal(err)
	}
	var done []device.Completion
	for i := 0; i < 4; i++ {
		eng.Submit(device.Op{DMA: uint64(i) * 4096, Size: 64, OnDone: func(c device.Completion) {
			done = append(done, c)
		}})
	}
	k.Run()
	if len(done) != 4 {
		t.Fatalf("completions = %d", len(done))
	}
	// All latencies quantize to the 4ns counter.
	for _, c := range done {
		if lat := c.Latency(Clock); lat%(4*sim.Nanosecond) != 0 {
			t.Errorf("latency %v not on the 4ns grid", lat)
		}
	}
	// Requests issue one cycle apart: with 30 in-flight slots all four
	// pipeline, so completion spread is far below serial latency.
	spread := done[3].Done - done[0].Done
	if spread > 40*sim.Nanosecond {
		t.Errorf("completion spread %v: requests did not pipeline", spread)
	}
}
