package mem

import (
	"fmt"

	"pciebench/internal/sim"
)

// Config describes the host memory system of a (possibly multi-socket)
// server.
type Config struct {
	// Nodes is the number of NUMA nodes (1 or 2 in the paper's testbed).
	Nodes int
	// Cache configures each node's LLC.
	Cache CacheConfig
	// LLCLatency is the latency of a device access serviced by the LLC.
	LLCLatency sim.Time
	// DRAMLatency is the latency of a device access serviced by DRAM.
	// The paper's §6.3 measurements put DRAM ~70 ns above the LLC.
	DRAMLatency sim.Time
	// RemoteLatency is the extra interconnect (QPI/UPI) latency added
	// to accesses homed on the other socket (~100 ns, §6.4).
	RemoteLatency sim.Time
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > 8 {
		return fmt.Errorf("mem: nodes must be 1..8, got %d", c.Nodes)
	}
	if c.Cache.SizeBytes <= 0 {
		return fmt.Errorf("mem: cache size must be positive")
	}
	if c.DRAMLatency < c.LLCLatency {
		return fmt.Errorf("mem: DRAM latency %v below LLC latency %v", c.DRAMLatency, c.LLCLatency)
	}
	return nil
}

// System is the memory system: one LLC per node plus DRAM and the
// socket interconnect. The PCIe device is attached (via its root
// complex) to node 0; DDIO write allocations land in node 0's LLC when
// the buffer is local, or the remote node's LLC otherwise (the remote
// socket's home agent owns the line).
type System struct {
	cfg   Config
	nodes []*Cache
	line  uint64 // resolved line size (cfg value, 64 when unset)
}

// NewSystem builds the memory system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, NewCache(cfg.Cache))
	}
	s.line = uint64(cfg.Cache.LineSize)
	if s.line == 0 {
		s.line = 64
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Node returns the LLC of one node (for warming, inspection, tests).
func (s *System) Node(i int) *Cache { return s.nodes[i] }

// Access is the interface the root complex uses: a device-initiated
// read or write of size bytes at addr, homed on NUMA node home. The
// device is attached to node 0. The returned latency covers the memory
// subsystem only (cache/DRAM plus interconnect); link serialization and
// root-complex processing are accounted by the caller.
//
// Multi-line transfers touch every covered line for cache-state
// purposes; their latency is the worst line latency, since the root
// complex issues the line fetches in parallel and the paper's
// size-dependent costs are serialization, which the caller models.
func (s *System) Access(write bool, home int, addr uint64, size int) sim.Time {
	return s.AccessFrom(write, 0, home, addr, size)
}

// AccessFrom generalizes Access to a device attached to NUMA node from:
// the remote-interconnect penalty applies when the target's home node
// differs from the device's, not just when it differs from node 0. The
// multi-socket topology layer routes each port's traffic through its
// own socket with this; Access remains the node-0 special case.
func (s *System) AccessFrom(write bool, from, home int, addr uint64, size int) sim.Time {
	if home < 0 || home >= len(s.nodes) {
		home = 0
	}
	llc := s.nodes[home]
	line := s.line
	first := addr / line * line

	// Fast path for the dominant case — a transfer of at most one line
	// (the paper's 64 B working size) that does not straddle a line
	// boundary: exactly one cache access, no per-line loop. The
	// latencies are the same max the general loop would compute, since
	// DRAMLatency >= LLCLatency is enforced by Validate.
	if uint64(size) <= line && addr+uint64(size) <= first+line {
		var lat sim.Time
		if write {
			r := llc.DeviceWrite(first, addr == first && uint64(size) == line)
			if r.Fetched {
				lat = s.cfg.DRAMLatency
			} else {
				lat = s.cfg.LLCLatency
			}
		} else {
			if llc.DeviceRead(first).Hit {
				lat = s.cfg.LLCLatency
			} else {
				lat = s.cfg.DRAMLatency
			}
		}
		if home != from {
			lat += s.cfg.RemoteLatency
		}
		return lat
	}

	worst := s.cfg.LLCLatency
	for a := first; a < addr+uint64(size); a += line {
		var lat sim.Time
		if write {
			// A write covers the whole line when it spans
			// [a, a+line) entirely.
			fullLine := addr <= a && addr+uint64(size) >= a+line
			r := llc.DeviceWrite(a, fullLine)
			if r.Fetched {
				lat = s.cfg.DRAMLatency
			} else {
				lat = s.cfg.LLCLatency
			}
		} else {
			r := llc.DeviceRead(a)
			if r.Hit {
				lat = s.cfg.LLCLatency
			} else {
				lat = s.cfg.DRAMLatency
			}
		}
		if lat > worst {
			worst = lat
		}
	}
	if home != from {
		worst += s.cfg.RemoteLatency
	}
	return worst
}

// WarmHost writes the byte range [addr, addr+size) from the CPU on the
// given node, bringing it into that node's LLC (dirty), as the paper's
// "host warm" control does.
func (s *System) WarmHost(node int, addr uint64, size int) {
	if node < 0 || node >= len(s.nodes) {
		node = 0
	}
	llc := s.nodes[node]
	line := s.line
	first := addr / line * line
	for a := first; a < addr+uint64(size); a += line {
		llc.HostTouch(a, true)
	}
}

// WarmDevice issues device writes over the range, loading it through the
// DDIO allocation path ("device warm").
func (s *System) WarmDevice(node int, addr uint64, size int) {
	if node < 0 || node >= len(s.nodes) {
		node = 0
	}
	llc := s.nodes[node]
	line := s.line
	first := addr / line * line
	for a := first; a < addr+uint64(size); a += line {
		llc.DeviceWrite(a, true)
	}
}

// Thrash resets every node's LLC to a cold state.
func (s *System) Thrash() {
	for _, n := range s.nodes {
		n.Thrash()
	}
}
