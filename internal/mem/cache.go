// Package mem models the end-host memory system a PCIe root complex
// talks to: per-node last-level caches with a DDIO-style restricted
// allocation region for device writes, DRAM behind them, and a NUMA
// interconnect between sockets.
//
// The model captures exactly the mechanisms the paper's §6.3 and §6.4
// experiments exercise:
//
//   - DMA reads are serviced from the LLC when the line is resident
//     (~70 ns cheaper than DRAM) and do not allocate on a miss.
//   - DMA writes allocate into a bounded number of lines per set (Intel
//     documents ~10% of the LLC for DDIO); a partial-line write to a
//     non-resident line forces a read-modify-write fetch from DRAM,
//     which is the latency penalty the paper observes once the access
//     window outgrows the DDIO region.
//   - Accesses whose home is the remote socket pay the interconnect
//     latency.
package mem

// LineState is the state of one cache line.
type LineState uint8

// Cache line states.
const (
	Invalid LineState = iota
	Clean
	Dirty
)

type way struct {
	tag   uint64
	state LineState
	ddio  bool   // allocated by a device write (counts against the DDIO quota)
	use   uint64 // global LRU clock value of last touch
}

type cacheSet struct {
	ways []way
}

// CacheConfig shapes a set-associative LLC.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line
	DDIOWays  int // max lines per set allocatable by device writes
}

// Cache is a set-associative last-level cache with true-LRU replacement
// and a per-set DDIO allocation quota. It tracks only metadata (tags and
// states), not data.
type Cache struct {
	cfg   CacheConfig
	sets  []cacheSet
	clock uint64

	// Statistics.
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// NewCache builds a cache; SizeBytes must be a multiple of Ways*LineSize.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineSize <= 0 {
		cfg.LineSize = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 16
	}
	if cfg.DDIOWays <= 0 || cfg.DDIOWays > cfg.Ways {
		cfg.DDIOWays = cfg.Ways
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineSize)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{cfg: cfg, sets: make([]cacheSet, nsets)}
	for i := range c.sets {
		c.sets[i].ways = make([]way, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// setFor maps a byte address to its set.
func (c *Cache) setFor(addr uint64) *cacheSet {
	line := addr / uint64(c.cfg.LineSize)
	return &c.sets[line%uint64(len(c.sets))]
}

func (c *Cache) tagFor(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineSize)
}

// Contains reports whether the line holding addr is resident, without
// disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	s := c.setFor(addr)
	tag := c.tagFor(addr)
	for i := range s.ways {
		if s.ways[i].state != Invalid && s.ways[i].tag == tag {
			return true
		}
	}
	return false
}

// lookup returns the way index of the line, or -1.
func (s *cacheSet) lookup(tag uint64) int {
	for i := range s.ways {
		if s.ways[i].state != Invalid && s.ways[i].tag == tag {
			return i
		}
	}
	return -1
}

// AccessResult describes one line-granular cache access.
type AccessResult struct {
	Hit          bool
	Fetched      bool // line was (or had to be) fetched from memory
	EvictedDirty bool // allocation displaced a dirty line (write-back)
}

// DeviceRead performs a DMA-read lookup of the line holding addr. Per
// DDIO semantics reads are serviced from the cache on a hit but do not
// allocate on a miss.
func (c *Cache) DeviceRead(addr uint64) AccessResult {
	c.clock++
	s := c.setFor(addr)
	tag := c.tagFor(addr)
	if i := s.lookup(tag); i >= 0 {
		s.ways[i].use = c.clock
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	return AccessResult{Fetched: true}
}

// DeviceWrite performs a DMA-write access to the line holding addr.
// fullLine indicates the write covers the entire cache line. On a miss
// the line is allocated within the DDIO quota; a partial-line miss
// additionally fetches the line from memory (read-modify-write), which
// is the DDIO latency penalty the paper measures.
func (c *Cache) DeviceWrite(addr uint64, fullLine bool) AccessResult {
	c.clock++
	s := c.setFor(addr)
	tag := c.tagFor(addr)
	if i := s.lookup(tag); i >= 0 {
		s.ways[i].use = c.clock
		s.ways[i].state = Dirty
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	res := AccessResult{Fetched: !fullLine}
	v := c.victimDDIO(s)
	if s.ways[v].state == Dirty {
		c.Writebacks++
		res.EvictedDirty = true
	}
	if s.ways[v].state != Invalid {
		c.Evictions++
	}
	s.ways[v] = way{tag: tag, state: Dirty, ddio: true, use: c.clock}
	return res
}

// HostTouch simulates the CPU reading (write=false) or writing
// (write=true) the line holding addr, allocating anywhere in the set.
// Used by the cache-warming control interface (paper §4: "host warm").
func (c *Cache) HostTouch(addr uint64, write bool) AccessResult {
	c.clock++
	s := c.setFor(addr)
	tag := c.tagFor(addr)
	if i := s.lookup(tag); i >= 0 {
		s.ways[i].use = c.clock
		if write {
			s.ways[i].state = Dirty
		}
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	res := AccessResult{Fetched: true}
	v := c.victimAny(s)
	if s.ways[v].state == Dirty {
		c.Writebacks++
		res.EvictedDirty = true
	}
	if s.ways[v].state != Invalid {
		c.Evictions++
	}
	st := Clean
	if write {
		st = Dirty
	}
	s.ways[v] = way{tag: tag, state: st, ddio: false, use: c.clock}
	return res
}

// victimAny picks an invalid way or the global LRU way.
func (c *Cache) victimAny(s *cacheSet) int {
	best := -1
	for i := range s.ways {
		if s.ways[i].state == Invalid {
			return i
		}
		if best < 0 || s.ways[i].use < s.ways[best].use {
			best = i
		}
	}
	return best
}

// victimDDIO picks a victim for a device-write allocation. The DDIO
// quota is a hard cap: once the set holds DDIOWays device-allocated
// lines, a new device write must recycle the LRU one of those — even if
// invalid ways exist — because the hardware dedicates specific ways to
// IO allocation. Below the quota, an invalid way is preferred, then the
// set-global LRU way.
func (c *Cache) victimDDIO(s *cacheSet) int {
	ddioCount := 0
	bestAll, bestDDIO, firstInvalid := -1, -1, -1
	for i := range s.ways {
		if s.ways[i].state == Invalid {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if bestAll < 0 || s.ways[i].use < s.ways[bestAll].use {
			bestAll = i
		}
		if s.ways[i].ddio {
			ddioCount++
			if bestDDIO < 0 || s.ways[i].use < s.ways[bestDDIO].use {
				bestDDIO = i
			}
		}
	}
	if ddioCount >= c.cfg.DDIOWays {
		return bestDDIO
	}
	if firstInvalid >= 0 {
		return firstInvalid
	}
	return bestAll
}

// Thrash resets the cache to a cold state, as the paper's control
// programs do before every benchmark run.
func (c *Cache) Thrash() {
	for i := range c.sets {
		for j := range c.sets[i].ways {
			c.sets[i].ways[j] = way{}
		}
	}
}

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions, c.Writebacks = 0, 0, 0, 0
}

// Occupancy returns the number of resident (non-invalid) lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.sets[i].ways[j].state != Invalid {
				n++
			}
		}
	}
	return n
}

// DDIOOccupancy returns the number of resident device-allocated lines.
func (c *Cache) DDIOOccupancy() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.sets[i].ways[j].state != Invalid && c.sets[i].ways[j].ddio {
				n++
			}
		}
	}
	return n
}
