// Package mem models the end-host memory system a PCIe root complex
// talks to: per-node last-level caches with a DDIO-style restricted
// allocation region for device writes, DRAM behind them, and a NUMA
// interconnect between sockets.
//
// The model captures exactly the mechanisms the paper's §6.3 and §6.4
// experiments exercise:
//
//   - DMA reads are serviced from the LLC when the line is resident
//     (~70 ns cheaper than DRAM) and do not allocate on a miss.
//   - DMA writes allocate into a bounded number of lines per set (Intel
//     documents ~10% of the LLC for DDIO); a partial-line write to a
//     non-resident line forces a read-modify-write fetch from DRAM,
//     which is the latency penalty the paper observes once the access
//     window outgrows the DDIO region.
//   - Accesses whose home is the remote socket pay the interconnect
//     latency.
package mem

// LineState is the state of one cache line.
type LineState uint8

// Cache line states.
const (
	Invalid LineState = iota
	Clean
	Dirty
)

type way struct {
	tag   uint64
	use   uint64 // global LRU clock value of last touch
	epoch uint64 // Thrash generation that allocated the line
	state LineState
	ddio  bool // allocated by a device write (counts against the DDIO quota)
}

type cacheSet struct {
	ways []way
}

// CacheConfig shapes a set-associative LLC.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineSize  int // bytes per line
	DDIOWays  int // max lines per set allocatable by device writes
}

// Cache is a set-associative last-level cache with true-LRU replacement
// and a per-set DDIO allocation quota. It tracks only metadata (tags and
// states), not data.
type Cache struct {
	cfg   CacheConfig
	sets  []cacheSet
	clock uint64
	// epoch implements O(1) Thrash: a line is valid only when its epoch
	// matches the cache's, so bumping the cache epoch invalidates every
	// line without rewriting the (multi-megabyte) way metadata. The
	// benchmark harness thrashes before every run, so this dominates
	// setup cost for short runs and sweep grids.
	epoch uint64

	// Address-decomposition constants hoisted out of the access path:
	// when LineSize is a power of two (the practical case) lineShift
	// replaces the division, and nsets caches the set-count divisor.
	lineShift int // -1 when LineSize is not a power of two
	nsets     uint64

	// Statistics.
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// NewCache builds a cache; SizeBytes must be a multiple of Ways*LineSize.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineSize <= 0 {
		cfg.LineSize = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 16
	}
	if cfg.DDIOWays <= 0 || cfg.DDIOWays > cfg.Ways {
		cfg.DDIOWays = cfg.Ways
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineSize)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{cfg: cfg, sets: make([]cacheSet, nsets), nsets: uint64(nsets)}
	c.lineShift = -1
	if ls := uint64(cfg.LineSize); ls&(ls-1) == 0 {
		for s := 0; uint64(1)<<s <= ls; s++ {
			if uint64(1)<<s == ls {
				c.lineShift = s
				break
			}
		}
	}
	// One backing array for every set's ways: building a large LLC is
	// two allocations instead of one per set, which dominates the cost
	// of assembling a system instance (sweeps build one per grid cell).
	backing := make([]way, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i].ways = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// locate decomposes addr into its set and tag in one step. The tag is
// the line number (identical to tagFor); the set is the line number
// modulo the set count (identical to setFor).
func (c *Cache) locate(addr uint64) (*cacheSet, uint64) {
	var line uint64
	if c.lineShift >= 0 {
		line = addr >> c.lineShift
	} else {
		line = addr / uint64(c.cfg.LineSize)
	}
	return &c.sets[line%c.nsets], line
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// stateOf returns the effective state of a way: lines allocated before
// the last Thrash are Invalid regardless of their stored state.
func (c *Cache) stateOf(w *way) LineState {
	if w.epoch != c.epoch {
		return Invalid
	}
	return w.state
}

// Contains reports whether the line holding addr is resident, without
// disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	s, tag := c.locate(addr)
	return c.lookup(s, tag) >= 0
}

// lookup returns the way index of the line in s, or -1.
func (c *Cache) lookup(s *cacheSet, tag uint64) int {
	for i := range s.ways {
		w := &s.ways[i]
		if w.state != Invalid && w.epoch == c.epoch && w.tag == tag {
			return i
		}
	}
	return -1
}

// AccessResult describes one line-granular cache access.
type AccessResult struct {
	Hit          bool
	Fetched      bool // line was (or had to be) fetched from memory
	EvictedDirty bool // allocation displaced a dirty line (write-back)
}

// DeviceRead performs a DMA-read lookup of the line holding addr. Per
// DDIO semantics reads are serviced from the cache on a hit but do not
// allocate on a miss.
func (c *Cache) DeviceRead(addr uint64) AccessResult {
	c.clock++
	s, tag := c.locate(addr)
	if i := c.lookup(s, tag); i >= 0 {
		s.ways[i].use = c.clock
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	return AccessResult{Fetched: true}
}

// DeviceWrite performs a DMA-write access to the line holding addr.
// fullLine indicates the write covers the entire cache line. On a miss
// the line is allocated within the DDIO quota; a partial-line miss
// additionally fetches the line from memory (read-modify-write), which
// is the DDIO latency penalty the paper measures.
func (c *Cache) DeviceWrite(addr uint64, fullLine bool) AccessResult {
	c.clock++
	s, tag := c.locate(addr)
	if i := c.lookup(s, tag); i >= 0 {
		s.ways[i].use = c.clock
		s.ways[i].state = Dirty
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	res := AccessResult{Fetched: !fullLine}
	v := c.victimDDIO(s)
	if st := c.stateOf(&s.ways[v]); st == Dirty {
		c.Writebacks++
		res.EvictedDirty = true
		c.Evictions++
	} else if st != Invalid {
		c.Evictions++
	}
	s.ways[v] = way{tag: tag, state: Dirty, ddio: true, use: c.clock, epoch: c.epoch}
	return res
}

// HostTouch simulates the CPU reading (write=false) or writing
// (write=true) the line holding addr, allocating anywhere in the set.
// Used by the cache-warming control interface (paper §4: "host warm").
func (c *Cache) HostTouch(addr uint64, write bool) AccessResult {
	c.clock++
	s, tag := c.locate(addr)
	if i := c.lookup(s, tag); i >= 0 {
		s.ways[i].use = c.clock
		if write {
			s.ways[i].state = Dirty
		}
		c.Hits++
		return AccessResult{Hit: true}
	}
	c.Misses++
	res := AccessResult{Fetched: true}
	v := c.victimAny(s)
	if vst := c.stateOf(&s.ways[v]); vst == Dirty {
		c.Writebacks++
		res.EvictedDirty = true
		c.Evictions++
	} else if vst != Invalid {
		c.Evictions++
	}
	st := Clean
	if write {
		st = Dirty
	}
	s.ways[v] = way{tag: tag, state: st, ddio: false, use: c.clock, epoch: c.epoch}
	return res
}

// victimAny picks an invalid way or the global LRU way.
func (c *Cache) victimAny(s *cacheSet) int {
	best := -1
	for i := range s.ways {
		if c.stateOf(&s.ways[i]) == Invalid {
			return i
		}
		if best < 0 || s.ways[i].use < s.ways[best].use {
			best = i
		}
	}
	return best
}

// victimDDIO picks a victim for a device-write allocation. The DDIO
// quota is a hard cap: once the set holds DDIOWays device-allocated
// lines, a new device write must recycle the LRU one of those — even if
// invalid ways exist — because the hardware dedicates specific ways to
// IO allocation. Below the quota, an invalid way is preferred, then the
// set-global LRU way.
func (c *Cache) victimDDIO(s *cacheSet) int {
	ddioCount := 0
	bestAll, bestDDIO, firstInvalid := -1, -1, -1
	for i := range s.ways {
		if c.stateOf(&s.ways[i]) == Invalid {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if bestAll < 0 || s.ways[i].use < s.ways[bestAll].use {
			bestAll = i
		}
		if s.ways[i].ddio {
			ddioCount++
			if bestDDIO < 0 || s.ways[i].use < s.ways[bestDDIO].use {
				bestDDIO = i
			}
		}
	}
	if ddioCount >= c.cfg.DDIOWays {
		return bestDDIO
	}
	if firstInvalid >= 0 {
		return firstInvalid
	}
	return bestAll
}

// Thrash resets the cache to a cold state, as the paper's control
// programs do before every benchmark run. It is O(1): bumping the
// cache epoch invalidates every line lazily instead of rewriting the
// way metadata of the entire LLC.
func (c *Cache) Thrash() {
	c.epoch++
}

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions, c.Writebacks = 0, 0, 0, 0
}

// Occupancy returns the number of resident (non-invalid) lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.stateOf(&c.sets[i].ways[j]) != Invalid {
				n++
			}
		}
	}
	return n
}

// DDIOOccupancy returns the number of resident device-allocated lines.
func (c *Cache) DDIOOccupancy() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.stateOf(&c.sets[i].ways[j]) != Invalid && c.sets[i].ways[j].ddio {
				n++
			}
		}
	}
	return n
}
