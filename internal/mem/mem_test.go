package mem

import (
	"testing"
	"testing/quick"

	"pciebench/internal/sim"
)

func smallCache() *Cache {
	// 4 sets x 4 ways x 64B lines = 1KB, DDIO quota 1 way.
	return NewCache(CacheConfig{SizeBytes: 1024, Ways: 4, LineSize: 64, DDIOWays: 1})
}

func TestCacheGeometry(t *testing.T) {
	c := smallCache()
	if c.Sets() != 4 {
		t.Errorf("sets = %d, want 4", c.Sets())
	}
	cfg := NewCache(CacheConfig{SizeBytes: 15 * 1024 * 1024, Ways: 20, LineSize: 64, DDIOWays: 2})
	if cfg.Sets() != 12288 {
		t.Errorf("15MB/20-way sets = %d, want 12288", cfg.Sets())
	}
}

func TestCacheDefaults(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024})
	if c.Config().LineSize != 64 || c.Config().Ways != 16 {
		t.Errorf("defaults not applied: %+v", c.Config())
	}
	if c.Config().DDIOWays != 16 {
		t.Errorf("DDIOWays default = %d, want Ways", c.Config().DDIOWays)
	}
}

func TestDeviceReadDoesNotAllocate(t *testing.T) {
	c := smallCache()
	r := c.DeviceRead(0)
	if r.Hit || !r.Fetched {
		t.Errorf("cold read: %+v", r)
	}
	// DDIO: read misses do not allocate.
	if c.Contains(0) {
		t.Error("read miss allocated a line")
	}
	r = c.DeviceRead(0)
	if r.Hit {
		t.Error("second read hit despite no allocation")
	}
}

func TestDeviceWriteAllocatesAndReadHits(t *testing.T) {
	c := smallCache()
	w := c.DeviceWrite(0, true)
	if w.Hit || w.Fetched {
		t.Errorf("full-line cold write: %+v (should allocate without fetch)", w)
	}
	if !c.Contains(0) {
		t.Error("write did not allocate")
	}
	r := c.DeviceRead(0)
	if !r.Hit {
		t.Error("read after write missed")
	}
}

func TestPartialLineWriteMissFetches(t *testing.T) {
	c := smallCache()
	// 8B write to a non-resident line: read-modify-write fetch.
	w := c.DeviceWrite(0, false)
	if !w.Fetched {
		t.Error("partial-line miss did not fetch")
	}
	// Same write once resident: no fetch.
	w = c.DeviceWrite(0, false)
	if !w.Hit || w.Fetched {
		t.Errorf("resident partial write: %+v", w)
	}
}

func TestDDIOQuotaIsHardCap(t *testing.T) {
	c := smallCache() // 4 sets, 4 ways, quota 1 per set
	// Two device lines mapping to set 0 (line addresses 4 sets apart):
	// the second must recycle the first even though invalid ways exist,
	// because the quota dedicates one way to IO allocation.
	a0, a1 := uint64(0), uint64(4*64)
	c.DeviceWrite(a0, true)
	c.DeviceWrite(a1, true)
	if c.Contains(a0) {
		t.Error("first device line survived beyond the DDIO quota")
	}
	if !c.Contains(a1) {
		t.Error("second device line not resident")
	}
	if got := c.DDIOOccupancy(); got != 1 {
		t.Errorf("DDIO occupancy = %d, want 1", got)
	}
}

func TestDDIOQuotaProtectsHostLines(t *testing.T) {
	// 1 set cache: 256B, 4 ways, quota 1.
	c := NewCache(CacheConfig{SizeBytes: 256, Ways: 4, LineSize: 64, DDIOWays: 1})
	hosts := []uint64{0, 64, 128} // three host lines
	for _, a := range hosts {
		c.HostTouch(a, false)
	}
	// Device writes a stream of new lines; they may only use the one
	// remaining way (invalid first, then DDIO-LRU).
	for i := 4; i < 20; i++ {
		c.DeviceWrite(uint64(i*64), true)
	}
	for _, a := range hosts {
		if !c.Contains(a) {
			t.Errorf("host line %#x evicted by device writes", a)
		}
	}
	if got := c.DDIOOccupancy(); got != 1 {
		t.Errorf("DDIO occupancy = %d, want 1 (quota)", got)
	}
}

func TestHostTouchEvictsLRU(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 256, Ways: 4, LineSize: 64, DDIOWays: 4})
	for i := 0; i < 4; i++ {
		c.HostTouch(uint64(i*64), false)
	}
	// Touch line 0 to make line 1 the LRU.
	c.HostTouch(0, false)
	c.HostTouch(4*64, false) // evicts LRU = line 1
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(64) {
		t.Error("LRU line survived")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 256, Ways: 4, LineSize: 64, DDIOWays: 4})
	for i := 0; i < 4; i++ {
		c.HostTouch(uint64(i*64), true) // dirty lines
	}
	c.HostTouch(4*64, false)
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks)
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions)
	}
}

func TestThrashAndStats(t *testing.T) {
	c := smallCache()
	c.DeviceWrite(0, true)
	c.DeviceRead(0)
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.Thrash()
	if c.Occupancy() != 0 {
		t.Errorf("occupancy after thrash = %d", c.Occupancy())
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 || c.Writebacks != 0 {
		t.Error("stats not reset")
	}
	if r := c.DeviceRead(0); r.Hit {
		t.Error("hit after thrash")
	}
}

// Property: occupancy never exceeds capacity and DDIO occupancy never
// exceeds the per-set quota times sets, under random access streams.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(CacheConfig{SizeBytes: 2048, Ways: 4, LineSize: 64, DDIOWays: 2})
		for _, op := range ops {
			addr := uint64(op%512) * 64
			switch op % 3 {
			case 0:
				c.DeviceRead(addr)
			case 1:
				c.DeviceWrite(addr, op&0x8 == 0)
			case 2:
				c.HostTouch(addr, op&0x4 == 0)
			}
		}
		capacity := 2048 / 64
		if c.Occupancy() > capacity {
			return false
		}
		if c.DDIOOccupancy() > 2*c.Sets() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sysConfig() Config {
	return Config{
		Nodes:         2,
		Cache:         CacheConfig{SizeBytes: 4096, Ways: 4, LineSize: 64, DDIOWays: 1},
		LLCLatency:    50 * sim.Nanosecond,
		DRAMLatency:   120 * sim.Nanosecond,
		RemoteLatency: 100 * sim.Nanosecond,
	}
}

func TestSystemValidate(t *testing.T) {
	good := sysConfig()
	if _, err := NewSystem(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Nodes = 0
	if _, err := NewSystem(bad); err == nil {
		t.Error("0 nodes accepted")
	}
	bad = good
	bad.Cache.SizeBytes = 0
	if _, err := NewSystem(bad); err == nil {
		t.Error("0 cache accepted")
	}
	bad = good
	bad.DRAMLatency = 10 * sim.Nanosecond
	if _, err := NewSystem(bad); err == nil {
		t.Error("DRAM < LLC accepted")
	}
}

func TestSystemWarmHitColdMiss(t *testing.T) {
	s, err := NewSystem(sysConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := s.Access(false, 0, 0, 64)
	if cold != s.Config().DRAMLatency {
		t.Errorf("cold read latency %v, want DRAM %v", cold, s.Config().DRAMLatency)
	}
	s.WarmHost(0, 0, 64)
	warm := s.Access(false, 0, 0, 64)
	if warm != s.Config().LLCLatency {
		t.Errorf("warm read latency %v, want LLC %v", warm, s.Config().LLCLatency)
	}
	// The ~70ns warm benefit the paper reports.
	if delta := cold - warm; delta != 70*sim.Nanosecond {
		t.Errorf("warm benefit %v, want 70ns", delta)
	}
}

func TestSystemRemotePenalty(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	s.WarmHost(1, 0, 64)
	local := s.Access(false, 0, 0, 64)  // node 0 cold
	remote := s.Access(false, 1, 0, 64) // node 1 warm but remote
	if remote != s.Config().LLCLatency+s.Config().RemoteLatency {
		t.Errorf("remote warm = %v", remote)
	}
	_ = local
	// Remote DRAM access is the worst case.
	worst := s.Access(false, 1, 1<<20, 64)
	if worst != s.Config().DRAMLatency+s.Config().RemoteLatency {
		t.Errorf("remote cold = %v", worst)
	}
}

func TestSystemMultiLineWorstCase(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	// Warm only the first line of a 256B range: latency is the worst
	// (DRAM) line.
	s.WarmHost(0, 0, 64)
	got := s.Access(false, 0, 0, 256)
	if got != s.Config().DRAMLatency {
		t.Errorf("partially warm 256B read = %v, want DRAM", got)
	}
	// Fully warm: LLC.
	s.WarmHost(0, 0, 256)
	if got := s.Access(false, 0, 0, 256); got != s.Config().LLCLatency {
		t.Errorf("fully warm 256B read = %v, want LLC", got)
	}
}

func TestSystemPartialWriteRMW(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	// 8B cold write: read-modify-write fetch at DRAM latency.
	if got := s.Access(true, 0, 0, 8); got != s.Config().DRAMLatency {
		t.Errorf("8B cold write = %v, want DRAM (RMW)", got)
	}
	// 64B aligned cold write: full-line allocation, no fetch.
	if got := s.Access(true, 0, 128, 64); got != s.Config().LLCLatency {
		t.Errorf("64B cold write = %v, want LLC", got)
	}
	// 8B write to the now-resident line: fast.
	if got := s.Access(true, 0, 0, 8); got != s.Config().LLCLatency {
		t.Errorf("8B resident write = %v, want LLC", got)
	}
}

func TestSystemDeviceWarm(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	s.WarmDevice(0, 0, 256)
	if got := s.Access(false, 0, 0, 64); got != s.Config().LLCLatency {
		t.Errorf("read after device warm = %v, want LLC", got)
	}
	if s.Node(0).DDIOOccupancy() == 0 {
		t.Error("device warm did not allocate DDIO lines")
	}
}

func TestSystemThrash(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	s.WarmHost(0, 0, 1024)
	s.Thrash()
	if got := s.Access(false, 0, 0, 64); got != s.Config().DRAMLatency {
		t.Errorf("read after thrash = %v, want DRAM", got)
	}
}

func TestSystemHomeClamped(t *testing.T) {
	s, _ := NewSystem(sysConfig())
	// Out-of-range home falls back to node 0 rather than panicking.
	if got := s.Access(false, 99, 0, 64); got != s.Config().DRAMLatency {
		t.Errorf("clamped home access = %v", got)
	}
}

// The Fig 7a mechanism end-to-end at cache level: a window that fits the
// DDIO region keeps partial-line write latency low; a window larger than
// the DDIO region forces RMW fetches.
func TestDDIOWindowMechanism(t *testing.T) {
	cfg := sysConfig()
	cfg.Cache = CacheConfig{SizeBytes: 64 * 1024, Ways: 8, LineSize: 64, DDIOWays: 1}
	s, _ := NewSystem(cfg)
	ddioCapacity := (64 * 1024 / 8) * 1 // sets * quota * lineSize bytes... in lines

	// Small window: 32 lines, well within the 128-line DDIO capacity.
	small := uint64(32 * 64)
	s.Thrash()
	fetches := 0
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < small; a += 64 {
			if r := s.Node(0).DeviceWrite(a, false); r.Fetched {
				fetches++
			}
		}
	}
	if fetches != 32 { // only the first pass misses
		t.Errorf("small window fetches = %d, want 32 (first pass only)", fetches)
	}

	// Large window: 4x the DDIO capacity; steady-state writes keep
	// missing.
	large := uint64(4 * ddioCapacity * 64 / 64 * 64)
	s.Thrash()
	s.Node(0).ResetStats()
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < large; a += 64 {
			s.Node(0).DeviceWrite(a, false)
		}
	}
	missRate := float64(s.Node(0).Misses) / float64(s.Node(0).Misses+s.Node(0).Hits)
	if missRate < 0.9 {
		t.Errorf("large window miss rate = %.2f, want >= 0.9", missRate)
	}
}
