// Package fault is the seeded, deterministic fault-injection subsystem.
//
// # Design note
//
// The simulator models an error-free fabric by default; this package
// adds the three degraded paths real deployments run constantly, as
// pure timing/accounting perturbations on the existing virtual-clock
// pipeline:
//
//   - Link errors (BER). Each TLP crossing an endpoint link draws
//     against a per-TLP corruption probability 1-(1-BER)^(8*wire).
//     A corrupted TLP still serializes (the wire time is spent), the
//     receiver NAKs it, and the transmitter replays after a NAK
//     round trip — so later TLPs queue behind the wasted attempts on
//     the same sim.Server, which is what makes re-arbitration
//     credit- and bandwidth-correct. After ReplayLimit consecutive
//     failures the link retrains inline (the PCIe REPLAY_NUM
//     rollover path).
//   - Completion timeouts (CTO). device.Engine bounds how long a
//     non-posted read may stay outstanding; a late completion is
//     abandoned and the read re-issued with capped exponential
//     backoff, aborting with an error after CTORetries attempts.
//     Posted writes are exempt, as on real hardware.
//   - Retrain events. Links drop into Recovery at exponentially
//     distributed intervals (mean RetrainMTBF), dwell for
//     RetrainDwell, then resume at degraded serialization
//     (DegradeFactor x) for DegradeTime before recovering full
//     width/speed.
//
// Every fault decision draws from a dedicated splitmix64 Stream keyed
// by (endpoint, fault class) — never from the kernel RNG or the
// per-island jitter streams — and draws happen in fabric-call order,
// which the coupled-replay machinery keeps identical at every
// simworkers count. That is the whole determinism argument: same
// seed, same call order, same draws, byte-identical results at any
// parallelism. A nil/zero Config installs nothing at all, so
// fault-free runs execute exactly the pre-fault code path.
//
// Outcomes surface as per-endpoint AER-style Counters
// (correctable/non-fatal/fatal plus replay/timeout/retrain event
// counts) attached to workload results and sweep measurements.
//
// Known simplifications: corruption is modeled on the endpoint link
// hop only (per-hop LCRC means a switch would not forward a bad TLP;
// upstream hops are assumed clean), peer-to-peer shortcut paths and
// the unreserved MMIO-read return path are not perturbed, and retrain
// epochs advance in call order, so a slightly out-of-order timestamp
// lands in the epoch of its call position.
package fault

import (
	"fmt"
	"math"

	"pciebench/internal/sim"
)

// Class names an independent fault stream. Streams for different
// classes on the same endpoint never share state, so adding draws to
// one class cannot shift another.
type Class int

const (
	// ClassLink drives LCRC corruption (replay) decisions.
	ClassLink Class = iota
	// ClassRetrain drives link down/retrain inter-arrival times.
	ClassRetrain
	// ClassTimeout is reserved for randomized completion-timeout
	// models; the current CTO model is deterministic.
	ClassTimeout
)

// ReplayLimit is how many consecutive corrupted transmissions of one
// TLP force an inline retrain — the REPLAY_NUM rollover rule.
const ReplayLimit = 4

// Defaults applied by WithDefaults when the corresponding knob is
// enabled but unconfigured.
const (
	// DefaultRetrainDwell is the time a link spends in Recovery.
	DefaultRetrainDwell = 10 * sim.Microsecond
	// DefaultDegradeTime is how long a retrained link stays at
	// degraded serialization before recovering full width/speed.
	DefaultDegradeTime = 100 * sim.Microsecond
	// DefaultDegradeFactor multiplies serialization time while
	// degraded (2 = half width).
	DefaultDegradeFactor = 2
	// DefaultCTORetries bounds re-issues after a completion timeout.
	DefaultCTORetries = 3
	// DefaultCTOBackoffCapShift caps exponential backoff at
	// initial << shift.
	DefaultCTOBackoffCapShift = 3
)

// Config selects which faults to inject. The zero value (and a nil
// pointer) means fault-free: nothing is installed and the simulation
// takes exactly the pre-fault code path.
type Config struct {
	// BER is the per-bit error rate on endpoint links; 0 disables
	// corruption. Must be in [0, 1).
	BER float64 `json:"ber,omitempty"`
	// CTO is the completion timeout for non-posted reads issued by
	// device engines; 0 disables.
	CTO sim.Time `json:"cto,omitempty"`
	// CTORetries bounds re-issues after a timeout before the op
	// aborts; 0 selects DefaultCTORetries.
	CTORetries int `json:"cto_retries,omitempty"`
	// CTOBackoff is the first retry's extra delay, doubling per
	// retry up to a cap; 0 selects CTO itself.
	CTOBackoff sim.Time `json:"cto_backoff,omitempty"`
	// RetrainMTBF is the mean time between link retrain events;
	// 0 disables retraining.
	RetrainMTBF sim.Time `json:"retrain_mtbf,omitempty"`
	// RetrainDwell is the Recovery dwell per retrain; 0 selects
	// DefaultRetrainDwell.
	RetrainDwell sim.Time `json:"retrain_dwell,omitempty"`
	// DegradeFactor multiplies link serialization time after a
	// retrain; 0 selects DefaultDegradeFactor, 1 disables
	// degradation.
	DegradeFactor int `json:"degrade_factor,omitempty"`
	// DegradeTime is how long the degraded window lasts; 0 selects
	// DefaultDegradeTime.
	DegradeTime sim.Time `json:"degrade_time,omitempty"`
}

// Enabled reports whether any fault class is active. Safe on nil.
func (c *Config) Enabled() bool {
	return c != nil && (c.BER > 0 || c.CTO > 0 || c.RetrainMTBF > 0)
}

// Validate rejects configurations outside the model's domain. Safe on
// nil.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.BER < 0 || c.BER >= 1 || math.IsNaN(c.BER) {
		return fmt.Errorf("fault: bit error rate %g outside [0, 1)", c.BER)
	}
	if c.CTO < 0 || c.CTOBackoff < 0 || c.CTORetries < 0 {
		return fmt.Errorf("fault: negative completion-timeout parameter")
	}
	if c.RetrainMTBF < 0 || c.RetrainDwell < 0 || c.DegradeTime < 0 || c.DegradeFactor < 0 {
		return fmt.Errorf("fault: negative retrain parameter")
	}
	return nil
}

// WithDefaults returns a copy with unset knobs resolved for every
// enabled fault class.
func (c Config) WithDefaults() Config {
	if c.CTO > 0 {
		if c.CTORetries == 0 {
			c.CTORetries = DefaultCTORetries
		}
		if c.CTOBackoff == 0 {
			c.CTOBackoff = c.CTO
		}
	}
	if c.RetrainMTBF > 0 || c.BER > 0 {
		if c.RetrainDwell == 0 {
			c.RetrainDwell = DefaultRetrainDwell
		}
		if c.DegradeFactor == 0 {
			c.DegradeFactor = DefaultDegradeFactor
		}
		if c.DegradeTime == 0 {
			c.DegradeTime = DefaultDegradeTime
		}
	}
	return c
}

// Counters is one endpoint's AER-style accounting block. The port and
// engine of an endpoint share one block; it is only ever mutated from
// that endpoint's (single-threaded) simulation context.
type Counters struct {
	// Correctable counts errors recovered transparently (replayed
	// TLPs).
	Correctable uint64 `json:"correctable"`
	// NonFatal counts errors that degraded service but were retried
	// (retrains, completion timeouts that later succeeded).
	NonFatal uint64 `json:"non_fatal"`
	// Fatal counts errors surfaced to the caller (aborted reads).
	Fatal uint64 `json:"fatal"`
	// Replays counts TLP retransmissions after LCRC corruption.
	Replays uint64 `json:"replays"`
	// Timeouts counts completion-timeout expirations.
	Timeouts uint64 `json:"timeouts"`
	// Retrains counts link down/retrain events, including
	// REPLAY_NUM rollovers.
	Retrains uint64 `json:"retrains"`
}

// Zero reports whether no fault was recorded.
func (c *Counters) Zero() bool {
	return c.Correctable == 0 && c.NonFatal == 0 && c.Fatal == 0 &&
		c.Replays == 0 && c.Timeouts == 0 && c.Retrains == 0
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Correctable += o.Correctable
	c.NonFatal += o.NonFatal
	c.Fatal += o.Fatal
	c.Replays += o.Replays
	c.Timeouts += o.Timeouts
	c.Retrains += o.Retrains
}

// streamGamma is the splitmix64 increment for fault streams. It is
// deliberately distinct from the kernel RNG's seeding and from the
// island-jitter derivation constant (0xD1B54A32D192ED03), so fault
// draws can never alias either sequence.
const streamGamma = 0xA0761D6478BD642F

// Stream is an independent splitmix64 sequence keyed by
// (seed, endpoint, class). Draws are consumed in fabric-call order,
// which the parallel-simulation machinery keeps identical at every
// worker count.
type Stream struct {
	state uint64
}

// NewStream derives the stream for one (endpoint, fault class) pair
// from the fabric seed. Different endpoints and different classes get
// provably distinct initial states (the mix is a bijection of a
// distinct input).
func NewStream(seed int64, endpoint int, class Class) *Stream {
	s := uint64(seed)
	s ^= (uint64(endpoint) + 1) * 0x9E3779B97F4A7C15
	s ^= (uint64(class) + 1) * 0x8BB84B93962EACC9
	return &Stream{state: mix64(s)}
}

// mix64 is the splitmix64 output permutation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// next advances the stream one step.
func (s *Stream) next() uint64 {
	s.state += streamGamma
	return mix64(s.state)
}

// Float64 returns the next draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Exp returns the next exponentially distributed interval with the
// given mean, floored at one picosecond so event times always
// advance.
func (s *Stream) Exp(mean sim.Time) sim.Time {
	u := s.Float64()
	d := sim.Time(-float64(mean) * math.Log1p(-u))
	if d < 1 {
		d = 1
	}
	return d
}

// TLPCorruptProb converts a bit error rate into the probability that
// a TLP of the given wire size arrives with a bad LCRC:
// 1-(1-BER)^(8*wireBytes).
func TLPCorruptProb(ber float64, wireBytes int) float64 {
	if ber <= 0 || wireBytes <= 0 {
		return 0
	}
	return 1 - math.Pow(1-ber, float64(8*wireBytes))
}
