package fault

import (
	"math"
	"testing"

	"pciebench/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config: %v", err)
	}
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	good := &Config{BER: 1e-9, CTO: sim.Microsecond, RetrainMTBF: sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Error("configured faults report disabled")
	}
	for _, bad := range []*Config{
		{BER: -1e-9},
		{BER: 1},
		{BER: 1.5},
		{CTO: -1},
		{RetrainMTBF: -1},
		{CTO: sim.Microsecond, CTORetries: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v accepted", *bad)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	got := (&Config{CTO: sim.Microsecond, RetrainMTBF: sim.Millisecond}).WithDefaults()
	if got.CTORetries != DefaultCTORetries || got.CTOBackoff != got.CTO {
		t.Errorf("CTO defaults not applied: %+v", got)
	}
	if got.RetrainDwell != DefaultRetrainDwell || got.DegradeFactor != DefaultDegradeFactor ||
		got.DegradeTime != DefaultDegradeTime {
		t.Errorf("retrain defaults not applied: %+v", got)
	}
	// Explicit values survive.
	kept := (&Config{CTO: sim.Microsecond, CTORetries: 9, CTOBackoff: 5}).WithDefaults()
	if kept.CTORetries != 9 || kept.CTOBackoff != 5 {
		t.Errorf("explicit CTO knobs overwritten: %+v", kept)
	}
}

// Fault streams are pure functions of (seed, endpoint, class):
// replaying a stream yields the same draws, and any coordinate change
// decorrelates it — the property the cross-worker determinism of the
// whole subsystem rests on.
func TestStreamDeterminismAndIndependence(t *testing.T) {
	draw := func(s *Stream) [8]float64 {
		var d [8]float64
		for i := range d {
			d[i] = s.Float64()
		}
		return d
	}
	base := draw(NewStream(42, 0, ClassLink))
	if base != draw(NewStream(42, 0, ClassLink)) {
		t.Error("identical streams diverged")
	}
	for _, alt := range []*Stream{
		NewStream(43, 0, ClassLink),
		NewStream(42, 1, ClassLink),
		NewStream(42, 0, ClassRetrain),
		NewStream(42, 0, ClassTimeout),
	} {
		if base == draw(alt) {
			t.Error("distinct streams correlated")
		}
	}
	for i, u := range base {
		if u < 0 || u >= 1 {
			t.Errorf("draw %d = %v outside [0, 1)", i, u)
		}
	}
}

func TestStreamExp(t *testing.T) {
	s := NewStream(7, 0, ClassRetrain)
	mean := 100 * sim.Microsecond
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := s.Exp(mean)
		if d < sim.Picosecond {
			t.Fatalf("draw %d below 1ps: %d", i, d)
		}
		sum += float64(d)
	}
	if got := sum / n / float64(mean); math.Abs(got-1) > 0.05 {
		t.Errorf("empirical mean %.3f of configured mean", got)
	}
}

func TestTLPCorruptProb(t *testing.T) {
	if p := TLPCorruptProb(0, 1500); p != 0 {
		t.Errorf("zero BER: %v", p)
	}
	small, large := TLPCorruptProb(1e-9, 64), TLPCorruptProb(1e-9, 1500)
	if !(0 < small && small < large && large < 1) {
		t.Errorf("not monotone in size: %v vs %v", small, large)
	}
	// For tiny BER the exact 1-(1-b)^n is ~ n*8*b.
	if approx := 1500 * 8 * 1e-9; math.Abs(large-approx)/approx > 1e-3 {
		t.Errorf("p = %v, want ~%v", large, approx)
	}
}

func TestCountersAddZero(t *testing.T) {
	a := Counters{Correctable: 1, NonFatal: 2, Fatal: 3, Replays: 4, Timeouts: 5, Retrains: 6}
	b := a
	a.Add(b)
	if a.Replays != 8 || a.Fatal != 6 {
		t.Errorf("Add: %+v", a)
	}
	if a.Zero() {
		t.Error("non-zero counters report zero")
	}
	var z Counters
	if !z.Zero() {
		t.Error("zero counters report non-zero")
	}
}
