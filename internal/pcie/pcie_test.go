package pcie

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerationRates(t *testing.T) {
	cases := []struct {
		gen  Generation
		gtps float64
		lane float64 // usable Gb/s per lane
	}{
		{Gen1, 2.5, 2.0},
		{Gen2, 5.0, 4.0},
		{Gen3, 8.0, 7.8769},
		{Gen4, 16.0, 15.7538},
		{Gen5, 32.0, 31.5077},
	}
	for _, c := range cases {
		if got := c.gen.GTps(); got != c.gtps {
			t.Errorf("%v GTps = %v, want %v", c.gen, got, c.gtps)
		}
		got := c.gen.LaneBitsPerSecond() / 1e9
		if math.Abs(got-c.lane) > 0.001 {
			t.Errorf("%v lane rate = %.4f Gb/s, want %.4f", c.gen, got, c.lane)
		}
	}
}

func TestGen3x8RawBandwidthMatchesPaper(t *testing.T) {
	c := DefaultGen3x8()
	// Paper §3: 8 x 7.87 Gb/s = 62.96 Gb/s at the physical layer.
	got := c.RawBandwidth() / 1e9
	if math.Abs(got-63.0154) > 0.01 {
		t.Errorf("raw bandwidth = %.4f Gb/s, want ~63.02 (paper rounds to 62.96)", got)
	}
	// Paper §3: ~57.88 Gb/s at the TLP layer.
	tlp := c.TLPBandwidth() / 1e9
	if tlp < 57.5 || tlp > 58.2 {
		t.Errorf("TLP bandwidth = %.4f Gb/s, want ~57.88", tlp)
	}
}

func TestHeaderSizesMatchPaperAccounting(t *testing.T) {
	// §3: MWr_Hdr is 24B (2B framing, 6B DLL, 4B TLP hdr, 12B MWr hdr).
	if got := MWrHeaderBytes(true, false); got != 24 {
		t.Errorf("MWrHeaderBytes(64bit) = %d, want 24", got)
	}
	if got := MRdHeaderBytes(true, false); got != 24 {
		t.Errorf("MRdHeaderBytes(64bit) = %d, want 24", got)
	}
	// §3: CplD header is 20B.
	if got := CplDHeaderBytes(false); got != 20 {
		t.Errorf("CplDHeaderBytes = %d, want 20", got)
	}
	// 32-bit addressing saves one DW.
	if got := MWrHeaderBytes(false, false); got != 20 {
		t.Errorf("MWrHeaderBytes(32bit) = %d, want 20", got)
	}
	// ECRC adds 4B.
	if got := MWrHeaderBytes(true, true); got != 28 {
		t.Errorf("MWrHeaderBytes(64bit,ecrc) = %d, want 28", got)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultGen3x8()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LinkConfig)
		want error
	}{
		{"gen0", func(c *LinkConfig) { c.Gen = 0 }, ErrBadGeneration},
		{"gen9", func(c *LinkConfig) { c.Gen = 9 }, ErrBadGeneration},
		{"lanes3", func(c *LinkConfig) { c.Lanes = 3 }, ErrBadLanes},
		{"lanes0", func(c *LinkConfig) { c.Lanes = 0 }, ErrBadLanes},
		{"mps100", func(c *LinkConfig) { c.MPS = 100 }, ErrBadMPS},
		{"mps64", func(c *LinkConfig) { c.MPS = 64 }, ErrBadMPS},
		{"mps8192", func(c *LinkConfig) { c.MPS = 8192 }, ErrBadMPS},
		{"mrrs100", func(c *LinkConfig) { c.MRRS = 100 }, ErrBadMRRS},
		{"rcb32", func(c *LinkConfig) { c.RCB = 32 }, ErrBadRCB},
		{"rcb256", func(c *LinkConfig) { c.RCB = 256 }, ErrBadRCB},
		{"ovhneg", func(c *LinkConfig) { c.DLLOverhead = -0.1 }, ErrBadOverhead},
		{"ovhbig", func(c *LinkConfig) { c.DLLOverhead = 0.5 }, ErrBadOverhead},
	}
	for _, tc := range cases {
		c := good
		tc.mut(&c)
		if err := c.Validate(); err != tc.want {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestTLPCounts(t *testing.T) {
	c := DefaultGen3x8() // MPS 256, MRRS 512
	cases := []struct {
		sz             int
		mwr, mrd, cpld int
	}{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{64, 1, 1, 1},
		{256, 1, 1, 1},
		{257, 2, 1, 2},
		{512, 2, 1, 2},
		{513, 3, 2, 3},
		{1024, 4, 2, 4},
		{1500, 6, 3, 6},
		{2048, 8, 4, 8},
	}
	for _, tc := range cases {
		if got := c.MWrTLPs(tc.sz); got != tc.mwr {
			t.Errorf("MWrTLPs(%d) = %d, want %d", tc.sz, got, tc.mwr)
		}
		if got := c.MRdTLPs(tc.sz); got != tc.mrd {
			t.Errorf("MRdTLPs(%d) = %d, want %d", tc.sz, got, tc.mrd)
		}
		if got := c.CplDTLPs(tc.sz); got != tc.cpld {
			t.Errorf("CplDTLPs(%d) = %d, want %d", tc.sz, got, tc.cpld)
		}
	}
}

func TestWireByteEquations(t *testing.T) {
	c := DefaultGen3x8()
	// Equation 1: a 512B write = 2 TLPs x 24B header + 512B payload.
	if got := c.WriteBytes(512); got != 2*24+512 {
		t.Errorf("WriteBytes(512) = %d, want %d", got, 2*24+512)
	}
	// Equation 2: a 1024B read issues 2 MRd requests (MRRS=512).
	if got := c.ReadRequestBytes(1024); got != 2*24 {
		t.Errorf("ReadRequestBytes(1024) = %d, want 48", got)
	}
	// Equation 3: completions in MPS=256 chunks.
	if got := c.ReadCompletionBytes(1024); got != 4*20+1024 {
		t.Errorf("ReadCompletionBytes(1024) = %d, want %d", got, 4*20+1024)
	}
}

func TestWriteBytesMonotone(t *testing.T) {
	c := DefaultGen3x8()
	f := func(a, b uint16) bool {
		x, y := int(a%4096), int(b%4096)
		if x > y {
			x, y = y, x
		}
		return c.WriteBytes(x) <= c.WriteBytes(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadBytesAlwaysExceedPayload(t *testing.T) {
	c := DefaultGen3x8()
	f := func(a uint16) bool {
		sz := int(a%8192) + 1
		return c.ReadCompletionBytes(sz) > sz && c.ReadRequestBytes(sz) >= 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesTime(t *testing.T) {
	c := DefaultGen3x8()
	if got := c.BytesTime(0); got != 0 {
		t.Errorf("BytesTime(0) = %d, want 0", got)
	}
	// 57.88 Gb/s -> one 64B TLP payload ~ 8.85ns.
	got := c.BytesTime(64)
	if got < 8500 || got > 9200 {
		t.Errorf("BytesTime(64) = %dps, want ~8850ps", got)
	}
	// Doubling bytes should roughly double time.
	t1, t2 := c.BytesTime(1000), c.BytesTime(2000)
	if t2 < 2*t1-2 || t2 > 2*t1+2 {
		t.Errorf("BytesTime not linear: %d vs %d", t1, t2)
	}
}

func TestString(t *testing.T) {
	c := DefaultGen3x8()
	want := "Gen3 x8 MPS=256 MRRS=512 RCB=64"
	if got := c.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := Generation(7).String(); got != "Gen?(7)" {
		t.Errorf("bad gen String() = %q", got)
	}
}
