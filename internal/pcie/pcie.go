// Package pcie defines PCI Express link configuration and the byte-level
// accounting constants used throughout pciebench.
//
// The package is the single source of truth for physical-layer rates,
// encoding overheads and protocol header sizes. Both the analytical model
// (internal/model) and the discrete-event simulator (internal/rc,
// internal/device) derive their wire-size arithmetic from here, so the two
// tiers can never disagree about how many bytes a transaction costs.
//
// Sizes follow the accounting used in §3 of the paper: a Memory Write TLP
// on a 64-bit system costs 24 B of header+framing overhead (2 B physical
// framing, 6 B data-link layer, 4 B TLP common header, 12 B request
// header), a Completion-with-Data costs 20 B, and a Memory Read request
// costs 24 B on the opposite direction of the link.
package pcie

import (
	"errors"
	"fmt"
)

// Generation enumerates PCI Express specification generations. Each
// generation fixes the per-lane signalling rate and line encoding.
type Generation int

// Supported link generations.
const (
	Gen1 Generation = 1 + iota
	Gen2
	Gen3
	Gen4
	Gen5
)

// String returns the conventional "GenN" spelling.
func (g Generation) String() string {
	if g < Gen1 || g > Gen5 {
		return fmt.Sprintf("Gen?(%d)", int(g))
	}
	return fmt.Sprintf("Gen%d", int(g))
}

// GTps returns the per-lane raw signalling rate in gigatransfers per
// second (equivalently, Gb/s before encoding overhead).
func (g Generation) GTps() float64 {
	switch g {
	case Gen1:
		return 2.5
	case Gen2:
		return 5.0
	case Gen3:
		return 8.0
	case Gen4:
		return 16.0
	case Gen5:
		return 32.0
	}
	return 0
}

// EncodingNum and EncodingDen describe the line coding as a payload/line
// ratio: Gen1/2 use 8b/10b, Gen3+ use 128b/130b.
func (g Generation) encoding() (num, den int) {
	switch g {
	case Gen1, Gen2:
		return 8, 10
	default:
		return 128, 130
	}
}

// LaneBitsPerSecond returns the usable (post-encoding) bit rate of a
// single lane.
func (g Generation) LaneBitsPerSecond() float64 {
	num, den := g.encoding()
	return g.GTps() * 1e9 * float64(num) / float64(den)
}

// Protocol header size accounting (bytes). See package comment.
const (
	// FramingBytes is the physical-layer framing per TLP (STP/END
	// tokens; the paper's model uses 2 B for all generations).
	FramingBytes = 2
	// DLLBytes is the data-link layer overhead per TLP: 2 B sequence
	// number plus 4 B LCRC.
	DLLBytes = 6
	// TLPCommonHeader is the first DW of every TLP header (fmt/type,
	// TC, attributes, length).
	TLPCommonHeader = 4
	// MemReqHeader64 is the remainder of a 4DW memory request header
	// (requester ID, tag, byte enables, 64-bit address).
	MemReqHeader64 = 12
	// MemReqHeader32 is the remainder of a 3DW memory request header.
	MemReqHeader32 = 8
	// CplHeader is the remainder of a completion header (completer ID,
	// status, byte count, requester ID, tag, lower address).
	CplHeader = 8
	// ECRCBytes is the optional end-to-end CRC digest.
	ECRCBytes = 4

	// CacheLineSize is the host cache line size assumed throughout.
	CacheLineSize = 64
)

// MWrHeaderBytes returns the total per-TLP overhead of a Memory Write:
// framing + DLL + TLP header for the given addressing width, plus the
// optional ECRC.
func MWrHeaderBytes(addr64, ecrc bool) int {
	n := FramingBytes + DLLBytes + TLPCommonHeader + MemReqHeader32
	if addr64 {
		n = FramingBytes + DLLBytes + TLPCommonHeader + MemReqHeader64
	}
	if ecrc {
		n += ECRCBytes
	}
	return n
}

// MRdHeaderBytes returns the total per-TLP overhead of a Memory Read
// request. Identical to a write header: the request carries no payload.
func MRdHeaderBytes(addr64, ecrc bool) int {
	return MWrHeaderBytes(addr64, ecrc)
}

// CplDHeaderBytes returns the total per-TLP overhead of a Completion with
// Data.
func CplDHeaderBytes(ecrc bool) int {
	n := FramingBytes + DLLBytes + TLPCommonHeader + CplHeader
	if ecrc {
		n += ECRCBytes
	}
	return n
}

// LinkConfig describes a negotiated PCIe link and the parameters that
// govern TLP sizing. The zero value is not valid; use Validate or
// DefaultGen3x8.
type LinkConfig struct {
	// Gen is the negotiated generation (signalling rate + encoding).
	Gen Generation
	// Lanes is the negotiated width (x1..x32).
	Lanes int
	// MPS is the Maximum Payload Size in bytes (128..4096, power of 2).
	MPS int
	// MRRS is the Maximum Read Request Size in bytes (128..4096).
	MRRS int
	// RCB is the Read Completion Boundary (64 or 128 bytes).
	RCB int
	// Addr64 selects 4DW (64-bit) memory request headers.
	Addr64 bool
	// ECRC enables the optional end-to-end CRC digest on every TLP.
	ECRC bool
	// DLLOverhead is the fraction of the physical-layer bandwidth
	// consumed by data-link layer traffic (flow control updates,
	// Ack/Nak DLLPs and the skip ordered sets). The paper derives
	// ~8-10% from the specification's recommended timers; 0.08 gives
	// the paper's 57.88 Gb/s TLP-layer figure for Gen3 x8.
	DLLOverhead float64
}

// DefaultGen3x8 returns the configuration used by the paper for all
// measurements: Gen 3, 8 lanes, MPS 256, MRRS 512, RCB 64, 64-bit
// addressing, no ECRC.
func DefaultGen3x8() LinkConfig {
	return LinkConfig{
		Gen:         Gen3,
		Lanes:       8,
		MPS:         256,
		MRRS:        512,
		RCB:         64,
		Addr64:      true,
		ECRC:        false,
		DLLOverhead: 0.08,
	}
}

// Errors returned by Validate.
var (
	ErrBadGeneration = errors.New("pcie: generation must be Gen1..Gen5")
	ErrBadLanes      = errors.New("pcie: lanes must be 1,2,4,8,16 or 32")
	ErrBadMPS        = errors.New("pcie: MPS must be a power of two in 128..4096")
	ErrBadMRRS       = errors.New("pcie: MRRS must be a power of two in 128..4096")
	ErrBadRCB        = errors.New("pcie: RCB must be 64 or 128")
	ErrBadOverhead   = errors.New("pcie: DLLOverhead must be in [0,0.5)")
)

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate reports whether the configuration is a legal PCIe link setup.
func (c LinkConfig) Validate() error {
	if c.Gen < Gen1 || c.Gen > Gen5 {
		return ErrBadGeneration
	}
	switch c.Lanes {
	case 1, 2, 4, 8, 16, 32:
	default:
		return ErrBadLanes
	}
	if !isPow2(c.MPS) || c.MPS < 128 || c.MPS > 4096 {
		return ErrBadMPS
	}
	if !isPow2(c.MRRS) || c.MRRS < 128 || c.MRRS > 4096 {
		return ErrBadMRRS
	}
	if c.RCB != 64 && c.RCB != 128 {
		return ErrBadRCB
	}
	if c.DLLOverhead < 0 || c.DLLOverhead >= 0.5 {
		return ErrBadOverhead
	}
	return nil
}

// String renders the configuration like "Gen3 x8 MPS=256 MRRS=512".
func (c LinkConfig) String() string {
	return fmt.Sprintf("%s x%d MPS=%d MRRS=%d RCB=%d", c.Gen, c.Lanes, c.MPS, c.MRRS, c.RCB)
}

// RawBandwidth returns the physical-layer bandwidth of the link in bits
// per second after line encoding: lanes x per-lane rate. For Gen3 x8 this
// is the paper's 62.96 Gb/s.
func (c LinkConfig) RawBandwidth() float64 {
	return float64(c.Lanes) * c.Gen.LaneBitsPerSecond()
}

// TLPBandwidth returns the bandwidth available to the transaction layer
// after subtracting the estimated data-link layer overhead. For the
// default Gen3 x8 configuration this is the paper's ~57.88 Gb/s.
func (c LinkConfig) TLPBandwidth() float64 {
	return c.RawBandwidth() * (1 - c.DLLOverhead)
}

// MWrTLPs returns how many Memory Write TLPs a DMA write of sz bytes
// generates (one per MPS chunk).
func (c LinkConfig) MWrTLPs(sz int) int {
	if sz <= 0 {
		return 0
	}
	return (sz + c.MPS - 1) / c.MPS
}

// MRdTLPs returns how many Memory Read request TLPs a DMA read of sz
// bytes generates (one per MRRS chunk).
func (c LinkConfig) MRdTLPs(sz int) int {
	if sz <= 0 {
		return 0
	}
	return (sz + c.MRRS - 1) / c.MRRS
}

// CplDTLPs returns how many Completion-with-Data TLPs carry the sz bytes
// of read data back (one per MPS chunk; RCB alignment can add more — see
// tlp.SplitCompletion for exact accounting).
func (c LinkConfig) CplDTLPs(sz int) int {
	if sz <= 0 {
		return 0
	}
	return (sz + c.MPS - 1) / c.MPS
}

// WriteBytes returns the bytes placed on the device→host direction by a
// DMA write of sz bytes: per-TLP overhead plus payload (Equation 1).
func (c LinkConfig) WriteBytes(sz int) int {
	return c.MWrTLPs(sz)*MWrHeaderBytes(c.Addr64, c.ECRC) + sz
}

// ReadRequestBytes returns the bytes placed on the device→host direction
// by the MRd TLPs of a DMA read of sz bytes (Equation 2).
func (c LinkConfig) ReadRequestBytes(sz int) int {
	return c.MRdTLPs(sz) * MRdHeaderBytes(c.Addr64, c.ECRC)
}

// ReadCompletionBytes returns the bytes placed on the host→device
// direction by the completions of a DMA read of sz bytes (Equation 3).
func (c LinkConfig) ReadCompletionBytes(sz int) int {
	return c.CplDTLPs(sz)*CplDHeaderBytes(c.ECRC) + sz
}

// BytesTime converts a byte count on this link into the serialization
// time in picoseconds at the TLP-layer bandwidth.
func (c LinkConfig) BytesTime(n int) int64 {
	if n <= 0 {
		return 0
	}
	bits := float64(n) * 8
	sec := bits / c.TLPBandwidth()
	return int64(sec * 1e12)
}
