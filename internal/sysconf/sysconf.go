// Package sysconf defines the six evaluation systems of the paper's
// Table 1 and assembles runnable benchmark targets from them.
//
// Each System couples a host-side calibration (memory latencies, root
// complex pipeline, link parameters, latency-jitter model) with the
// network adapter installed in it (NFP-6000 or NetFPGA-SUME). The
// numeric calibrations are anchored to measurements the paper itself
// reports; see the per-field comments and DESIGN.md for the mapping.
package sysconf

import (
	"fmt"

	"pciebench/internal/bench"
	"pciebench/internal/device"
	"pciebench/internal/device/netfpga"
	"pciebench/internal/device/nfp"
	"pciebench/internal/fault"
	"pciebench/internal/hostif"
	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
	"pciebench/internal/topo"
)

// Adapter identifies the plugged-in benchmark device.
type Adapter int

// Adapters used in the paper.
const (
	NFP6000 Adapter = iota
	NetFPGASUME
)

// String names the adapter as in Table 1.
func (a Adapter) String() string {
	if a == NetFPGASUME {
		return "NetFPGA-SUME"
	}
	return "NFP6000 1.2GHz"
}

// System is one row of Table 1 plus its simulator calibration.
type System struct {
	Name    string
	CPU     string
	NUMA    string // "2-way" or "no"
	Arch    string
	Memory  string
	OS      string
	Adapter Adapter

	// Calibration.
	Nodes       int
	LLCBytes    int
	LLCWays     int
	DDIOWays    int
	LLCLatency  sim.Time
	DRAMLatency sim.Time
	RemoteLat   sim.Time
	PipeLatency sim.Time
	PipeSlots   int
	WireDelay   sim.Time
	Jitter      rc.Jitter
}

// XeonE5Jitter is the narrow per-TLP latency variation of the Xeon E5
// root complexes: Fig 6 reports, for 64B reads on NFP6000-HSW, a
// 520 ns minimum, 547 ns median, 99.9% of samples within an 80 ns band
// and a 947 ns maximum over 2M transactions. The anchors are the deltas
// over the minimum.
func XeonE5Jitter() rc.Jitter {
	j, err := rc.NewQuantileJitter([]rc.QuantilePoint{
		{P: 0.0, Delay: 0},
		{P: 0.2, Delay: 0},
		{P: 0.5, Delay: 27 * sim.Nanosecond},
		{P: 0.95, Delay: 55 * sim.Nanosecond},
		{P: 0.999, Delay: 80 * sim.Nanosecond},
		{P: 0.9999, Delay: 100 * sim.Nanosecond},
		{P: 1.0, Delay: 427 * sim.Nanosecond},
	})
	if err != nil {
		panic(err)
	}
	return j
}

// XeonE3Jitter is the heavy-tailed model for the Xeon E3-1226v3 root
// complex (Fig 6 / §6.2): minimum 493 ns but median 1213 ns, sharp
// growth from the ~63rd percentile (p90 ≈ 2x median), p99 = 5707 ns,
// p99.9 = 11987 ns, and rare excursions beyond 1 ms up to 5.8 ms. The
// paper suspects hidden power-saving states; this is the explicit
// synthetic stand-in, anchored to those reported percentiles as deltas
// over the minimum.
func XeonE3Jitter() rc.Jitter {
	j, err := rc.NewQuantileJitter([]rc.QuantilePoint{
		{P: 0.0, Delay: 0},
		{P: 0.35, Delay: 0},
		{P: 0.5, Delay: 720 * sim.Nanosecond},
		{P: 0.63, Delay: 980 * sim.Nanosecond},
		{P: 0.90, Delay: 1933 * sim.Nanosecond},
		{P: 0.99, Delay: 5214 * sim.Nanosecond},
		{P: 0.999, Delay: 11494 * sim.Nanosecond},
		{P: 0.9999, Delay: 1 * sim.Millisecond},
		{P: 1.0, Delay: sim.Time(5.3 * float64(sim.Millisecond))},
	})
	if err != nil {
		panic(err)
	}
	return j
}

// Systems returns Table 1: the six measured configurations.
//
// The common Xeon E5 host calibration anchors to: NFP bulk-DMA 64B warm
// read median 547 ns on Haswell (Fig 6), NetFPGA ~450 ns (Fig 5),
// warm-vs-cold delta 70 ns (Fig 7), remote-node penalty ~100 ns
// (Fig 8), and a root-complex pipeline able to sustain a transaction
// every ~4 ns (§4.2). Per-system WireDelay trims reproduce the small
// baseline differences the paper reports between generations (e.g. 64B
// reads at ~430 ns on Broadwell in §6.5 vs ~450 ns on Haswell).
func Systems() []System {
	e5 := func(name, cpu, numaStr, arch, memory, os string, nodes int, llcMB int, adapter Adapter, wire sim.Time) System {
		return System{
			Name: name, CPU: cpu, NUMA: numaStr, Arch: arch, Memory: memory, OS: os,
			Adapter: adapter, Nodes: nodes,
			LLCBytes: llcMB << 20, LLCWays: 20, DDIOWays: 2,
			LLCLatency: 50 * sim.Nanosecond, DRAMLatency: 120 * sim.Nanosecond,
			RemoteLat:   100 * sim.Nanosecond,
			PipeLatency: 100 * sim.Nanosecond, PipeSlots: 24, WireDelay: wire,
			Jitter: XeonE5Jitter(),
		}
	}
	e3 := e5("NFP6000-HSW-E3", "Intel Xeon E3-1226v3 3.3GHz", "no", "Haswell",
		"16GB", "Ubuntu 4.4.0-31", 1, 15, NFP6000, 93*sim.Nanosecond)
	// The E3's minimum is 27ns below the E5's (493 vs 520) with a
	// radically different tail.
	e3.Jitter = XeonE3Jitter()
	return []System{
		e5("NFP6000-BDW", "Intel Xeon E5-2630v4 2.2GHz", "2-way", "Broadwell",
			"128GB", "Ubuntu 3.19.0-69", 2, 25, NFP6000, 112*sim.Nanosecond),
		e5("NetFPGA-HSW", "Intel Xeon E5-2637v3 3.5GHz", "no", "Haswell",
			"64GB", "Ubuntu 3.19.0-43", 1, 15, NetFPGASUME, 120*sim.Nanosecond),
		e5("NFP6000-HSW", "Intel Xeon E5-2637v3 3.5GHz", "no", "Haswell",
			"64GB", "Ubuntu 3.19.0-43", 1, 15, NFP6000, 120*sim.Nanosecond),
		e3,
		e5("NFP6000-IB", "Intel Xeon E5-2620v2 2.1GHz", "2-way", "Ivy Bridge",
			"32GB", "Ubuntu 3.19.0-30", 2, 15, NFP6000, 130*sim.Nanosecond),
		e5("NFP6000-SNB", "Intel Xeon E5-2630 2.3GHz", "no", "Sandy Bridge",
			"16GB", "Ubuntu 3.19.0-30", 1, 15, NFP6000, 126*sim.Nanosecond),
	}
}

// ByName returns the named system.
func ByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("sysconf: unknown system %q", name)
}

// DefaultBufferSize is the host DMA buffer size Build allocates when
// Options.BufferSize is zero: 64MB plus a page of slack for the
// offset experiments. Exported so layers validating DMA footprints
// (the sweep engine's workload cells) check against the real bound.
const DefaultBufferSize = 64<<20 + 4096

// Options configures the assembly of a benchmark instance.
type Options struct {
	// Seed drives all simulation randomness (0 uses 1).
	Seed int64
	// IOMMU interposes the IOMMU in the DMA path (§6.5); off by
	// default like the paper's baseline runs.
	IOMMU bool
	// IOMMUConfig overrides the default IOMMU calibration (64 entries,
	// 330ns walks, 6 walkers) when non-nil.
	IOMMUConfig *iommu.Config
	// IOMMUScope selects how many translation units serve the fabric
	// when IOMMU is set: "global" (or empty, the default) models one
	// unit on every DMA path; "per-socket" gives each socket its own
	// DRHD-style unit, so endpoints on different sockets stop sharing
	// IO-TLB and walker state. Ignored when IOMMU is false.
	IOMMUScope string
	// SuperPages maps the buffer with the allocation's natural page
	// size; false forces 4KB entries (the paper's sp_off).
	SuperPages bool
	// BufferSize is the host DMA buffer size (default 64MB +4KB of
	// slack for offset experiments).
	BufferSize int
	// BufferNode selects the NUMA node for the buffer (§6.4).
	BufferNode int
	// AllocMode overrides the driver's allocation strategy (default:
	// NFP chunked 4MB, NetFPGA hugetlbfs 1GB, per §5.3).
	AllocMode *hostif.AllocMode
	// NoJitter disables the per-system latency jitter model (useful
	// for deterministic calibration tests).
	NoJitter bool
	// Link overrides the PCIe link configuration (default Gen3 x8,
	// the paper's setup). Used by the Gen4 projection experiments the
	// paper's §6 anticipates.
	Link *pcie.LinkConfig
	// SimWorkers asks for a conservative-parallel fabric on up to this
	// many worker goroutines (<= 1 builds serially). Results are
	// byte-identical at every value; parallelism only materializes when
	// the topology splits into independent endpoint islands.
	SimWorkers int
	// Faults arms deterministic fault injection (BER corruption and
	// replay, completion timeouts, link retrains — see internal/fault)
	// on every endpoint; nil or all-zero keeps the exact fault-free
	// code path.
	Faults *fault.Config
}

// Instance is an assembled system ready to run benchmarks. It is the
// single-endpoint view of a Fabric: Engine and Buffer belong to the
// first endpoint.
type Instance struct {
	System System
	Kernel *sim.Kernel
	Mem    *mem.System
	IOMMU  *iommu.IOMMU // nil when disabled
	Host   *hostif.Host
	RC     *rc.RootComplex
	Engine *device.Engine
	Buffer *hostif.Buffer
	// Fabric is the full topology the instance was assembled from.
	Fabric *topo.Fabric
}

// Target returns the bench.Target view of the instance.
func (i *Instance) Target() *bench.Target {
	return &bench.Target{Host: i.Host, Engine: i.Engine, Buffer: i.Buffer}
}

// memConfig is the system's memory calibration.
func (s System) memConfig() mem.Config {
	return mem.Config{
		Nodes: s.Nodes,
		Cache: mem.CacheConfig{
			SizeBytes: s.LLCBytes,
			Ways:      s.LLCWays,
			LineSize:  pcie.CacheLineSize,
			DDIOWays:  s.DDIOWays,
		},
		LLCLatency:    s.LLCLatency,
		DRAMLatency:   s.DRAMLatency,
		RemoteLatency: s.RemoteLat,
	}
}

// deviceConfig returns the engine parameterization and buffer
// allocation strategy of the system's adapter.
func (s System) deviceConfig() (device.Config, hostif.AllocMode) {
	if s.Adapter == NetFPGASUME {
		return netfpga.Config(), hostif.Huge1G
	}
	return nfp.Config(), hostif.Chunked4M
}

// DeviceBAR is the default device-memory window endpoints expose for
// peer-to-peer DMA in multi-endpoint topologies: a 16MB window with
// NFP-CTM-class access latencies and an ~80 Gb/s internal path.
func DeviceBAR() topo.BARSpec {
	return topo.BARSpec{
		Size:         16 << 20,
		ReadLatency:  350 * sim.Nanosecond,
		WriteLatency: 100 * sim.Nanosecond,
		PSPerByte:    100,
	}
}

// QPIPSPerByte approximates a ~16 GB/s inter-socket interconnect for
// the explicit bandwidth-contention model of split-socket topologies
// (the latency penalty stays in mem.Config.RemoteLatency, calibrated
// from §6.4).
const QPIPSPerByte = 62

// TopoSpec expands a topology shape against this system's calibration
// into a full topo.Spec: the degenerate shape reproduces the paper's
// single-adapter assembly exactly, larger shapes add switches, extra
// endpoints, BAR windows and multi-socket placement.
func (s System) TopoSpec(shape topo.Shape, opt Options) (topo.Spec, error) {
	if err := shape.Validate(s.Nodes); err != nil {
		return topo.Spec{}, fmt.Errorf("sysconf: %s: %w", s.Name, err)
	}
	spec := topo.Spec{
		Seed:       opt.Seed,
		Mem:        s.memConfig(),
		SimWorkers: opt.SimWorkers,
		Faults:     opt.Faults,
	}
	if opt.IOMMU {
		cfg := iommu.DefaultConfig()
		if opt.IOMMUConfig != nil {
			cfg = *opt.IOMMUConfig
		}
		spec.IOMMU = &cfg
		scope, err := topo.ParseIOMMUScope(opt.IOMMUScope)
		if err != nil {
			return topo.Spec{}, fmt.Errorf("sysconf: %s: %w", s.Name, err)
		}
		spec.IOMMUScope = scope
	}

	jitter := s.Jitter
	if opt.NoJitter {
		jitter = nil
	}
	sockets := 1
	if !shape.Degenerate() {
		// Non-degenerate topologies materialize every socket, so
		// placement and split layouts can route across them.
		sockets = s.Nodes
	}
	for i := 0; i < sockets; i++ {
		spec.Sockets = append(spec.Sockets, topo.SocketSpec{
			Node: i, PipeLatency: s.PipeLatency, PipeSlots: s.PipeSlots, Jitter: jitter,
		})
	}
	if sockets > 1 {
		spec.Interconnect = &rc.InterconnectConfig{PSPerByte: QPIPSPerByte, Shared: true}
	}

	link := pcie.DefaultGen3x8()
	if opt.Link != nil {
		link = *opt.Link
	}
	swIndex := topo.DirectAttach
	if shape.Switch != nil {
		spec.Switches = append(spec.Switches, topo.DefaultSwitch(*shape.Switch, shape.SocketOf(0, sockets)))
		swIndex = 0
	}

	devCfg, mode := s.deviceConfig()
	if opt.AllocMode != nil {
		mode = *opt.AllocMode
	}
	size := opt.BufferSize
	if size == 0 {
		size = DefaultBufferSize
	}
	mapPage := iommu.Page4K
	if opt.SuperPages {
		mapPage = 0 // natural page size
	}
	count := shape.Count()
	for i := 0; i < count; i++ {
		adapter := "nfp"
		if s.Adapter == NetFPGASUME {
			adapter = "netfpga"
		}
		bufNode := opt.BufferNode
		if shape.LocalBuffers {
			// Sockets are materialized with Node == index, so the
			// endpoint's attach socket names its home node directly. A
			// switched endpoint ingresses at the switch's socket, which
			// SocketOf already resolves.
			bufNode = shape.SocketOf(i, sockets)
			if swIndex != topo.DirectAttach {
				bufNode = spec.Switches[swIndex].Socket
			}
		}
		ep := topo.EndpointSpec{
			Name:        fmt.Sprintf("%s-ep%d", adapter, i),
			Device:      devCfg,
			Link:        link,
			WireDelay:   s.WireDelay,
			Switch:      swIndex,
			Socket:      shape.SocketOf(i, sockets),
			BufferBytes: size,
			BufferNode:  bufNode,
			AllocMode:   mode,
			MapPage:     mapPage,
		}
		if count >= 2 {
			bar := DeviceBAR()
			ep.BAR = &bar
		}
		spec.Endpoints = append(spec.Endpoints, ep)
	}
	return spec, nil
}

// Fabric assembles the system as a topology of the given shape.
func (s System) Fabric(shape topo.Shape, opt Options) (*topo.Fabric, error) {
	spec, err := s.TopoSpec(shape, opt)
	if err != nil {
		return nil, err
	}
	f, err := topo.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("sysconf: %s: %w", s.Name, err)
	}
	return f, nil
}

// Build assembles a runnable instance of the system — the degenerate
// one-endpoint topology, byte-identical to the original single-device
// assembly.
func (s System) Build(opt Options) (*Instance, error) {
	f, err := s.Fabric(topo.Shape{}, opt)
	if err != nil {
		return nil, err
	}
	ep := f.Endpoints[0]
	mmu := f.IOMMU
	if mmu == nil {
		// A per-socket-scoped degenerate build has exactly one unit;
		// surface it so callers see the IOMMU regardless of scope.
		if units := f.IOMMUUnits(); len(units) == 1 {
			mmu = units[0]
		}
	}
	return &Instance{
		System: s,
		Kernel: f.Kernel,
		Mem:    f.Mem,
		IOMMU:  mmu,
		Host:   f.Host,
		RC:     f.RC,
		Engine: ep.Engine,
		Buffer: ep.Buffer,
		Fabric: f,
	}, nil
}
