package sysconf

import (
	"testing"

	"pciebench/internal/bench"
	"pciebench/internal/hostif"
	"pciebench/internal/iommu"
	"pciebench/internal/sim"
)

func TestTable1Inventory(t *testing.T) {
	systems := Systems()
	if len(systems) != 6 {
		t.Fatalf("got %d systems, want 6 (Table 1)", len(systems))
	}
	wantNames := []string{
		"NFP6000-BDW", "NetFPGA-HSW", "NFP6000-HSW",
		"NFP6000-HSW-E3", "NFP6000-IB", "NFP6000-SNB",
	}
	for i, want := range wantNames {
		if systems[i].Name != want {
			t.Errorf("system %d = %q, want %q", i, systems[i].Name, want)
		}
	}
	// Table 1 note: all systems have 15MB LLC except BDW's 25MB.
	for _, s := range systems {
		want := 15 << 20
		if s.Name == "NFP6000-BDW" {
			want = 25 << 20
		}
		if s.LLCBytes != want {
			t.Errorf("%s LLC = %d, want %d", s.Name, s.LLCBytes, want)
		}
	}
	// NUMA: BDW and IB are 2-way.
	for _, s := range systems {
		wantNodes := 1
		if s.Name == "NFP6000-BDW" || s.Name == "NFP6000-IB" {
			wantNodes = 2
		}
		if s.Nodes != wantNodes {
			t.Errorf("%s nodes = %d, want %d", s.Name, s.Nodes, wantNodes)
		}
	}
	// Only NetFPGA-HSW carries the NetFPGA.
	for _, s := range systems {
		wantAdapter := NFP6000
		if s.Name == "NetFPGA-HSW" {
			wantAdapter = NetFPGASUME
		}
		if s.Adapter != wantAdapter {
			t.Errorf("%s adapter = %v", s.Name, s.Adapter)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("NFP6000-SNB")
	if err != nil || s.Arch != "Sandy Bridge" {
		t.Errorf("ByName: %v %v", s.Arch, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestBuildDefaults(t *testing.T) {
	s, _ := ByName("NFP6000-HSW")
	inst, err := s.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.IOMMU != nil {
		t.Error("IOMMU enabled by default")
	}
	if inst.Buffer.Size != 64<<20+4096 {
		t.Errorf("default buffer = %d", inst.Buffer.Size)
	}
	if inst.Buffer.Mode != hostif.Chunked4M {
		t.Errorf("NFP buffer mode = %v, want chunked", inst.Buffer.Mode)
	}
	if inst.Engine.Config().Name != "NFP6000" {
		t.Errorf("engine = %s", inst.Engine.Config().Name)
	}

	net, _ := ByName("NetFPGA-HSW")
	ninst, err := net.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ninst.Buffer.Mode != hostif.Huge1G {
		t.Errorf("NetFPGA buffer mode = %v, want huge-1G", ninst.Buffer.Mode)
	}
	if ninst.Engine.Config().Name != "NetFPGA" {
		t.Errorf("engine = %s", ninst.Engine.Config().Name)
	}
}

func TestBuildWithIOMMU(t *testing.T) {
	s, _ := ByName("NFP6000-BDW")
	inst, err := s.Build(Options{IOMMU: true, BufferSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if inst.IOMMU == nil {
		t.Fatal("IOMMU missing")
	}
	if got := inst.IOMMU.Config().TLBEntries; got != 64 {
		t.Errorf("IO-TLB entries = %d, want 64 (paper §6.5)", got)
	}
	// sp_off default: 4KB mappings -> one translation per 4KB page.
	if _, err := inst.IOMMU.Translate(0, inst.Buffer.DMAAddr(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.IOMMU.Translate(0, inst.Buffer.DMAAddr(iommu.Page4K)); err != nil {
		t.Fatal(err)
	}
	if inst.IOMMU.Misses != 2 {
		t.Errorf("misses = %d, want 2 (4KB pages)", inst.IOMMU.Misses)
	}

	// With superpages one entry covers far more.
	inst2, err := s.Build(Options{IOMMU: true, SuperPages: true, BufferSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	inst2.IOMMU.Translate(0, inst2.Buffer.DMAAddr(0))
	inst2.IOMMU.Translate(0, inst2.Buffer.DMAAddr(iommu.Page4K))
	if inst2.IOMMU.Misses != 1 {
		t.Errorf("superpage misses = %d, want 1", inst2.IOMMU.Misses)
	}
}

// TestBuildIOMMUScope: the scope option validates up front, a
// per-socket degenerate build still surfaces its single unit on the
// Instance, and the unit serves translations exactly like the global
// one — scope changes unit topology, not addressing.
func TestBuildIOMMUScope(t *testing.T) {
	s, _ := ByName("NFP6000-BDW")
	if _, err := s.Build(Options{IOMMU: true, IOMMUScope: "per-core", BufferSize: 8 << 20}); err == nil {
		t.Fatal("bad IOMMU scope accepted")
	}
	inst, err := s.Build(Options{IOMMU: true, IOMMUScope: "per-socket", BufferSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if inst.IOMMU == nil {
		t.Fatal("per-socket degenerate build did not surface its translation unit")
	}
	if _, err := inst.IOMMU.Translate(0, inst.Buffer.DMAAddr(0)); err != nil {
		t.Fatal(err)
	}
	ref, err := s.Build(Options{IOMMU: true, BufferSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := inst.Buffer.DMAAddr(0), ref.Buffer.DMAAddr(0); got != want {
		t.Errorf("per-socket DMA address %#x differs from global %#x; layout must be scope-independent", got, want)
	}
}

func TestBuildRemoteBuffer(t *testing.T) {
	s, _ := ByName("NFP6000-BDW")
	inst, err := s.Build(Options{BufferNode: 1, BufferSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Host.HomeOf(inst.Buffer.PhysAddr(0)) != 1 {
		t.Error("buffer not on node 1")
	}
	// Remote node on a single-socket system fails.
	hsw, _ := ByName("NFP6000-HSW")
	if _, err := hsw.Build(Options{BufferNode: 1, BufferSize: 1 << 20}); err == nil {
		t.Error("node 1 on single-socket system accepted")
	}
}

func TestTargetRunsBenchmark(t *testing.T) {
	s, _ := ByName("NFP6000-HSW")
	inst, err := s.Build(Options{BufferSize: 1 << 20, NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.LatRd(inst.Target(), bench.Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: bench.HostWarm, Transactions: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Median < 480 || res.Summary.Median > 620 {
		t.Errorf("HSW 64B warm median = %.1f, want ~547", res.Summary.Median)
	}
}

func TestE5VsE3Tail(t *testing.T) {
	// Fig 6: the E5's distribution is tight; the E3's median more than
	// doubles it and p99 explodes.
	run := func(name string) *bench.LatencyResult {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := s.Build(Options{BufferSize: 1 << 20, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: 64, Cache: bench.HostWarm, Transactions: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	e5 := run("NFP6000-HSW")
	e3 := run("NFP6000-HSW-E3")
	if e3.Summary.Median < 1.8*e5.Summary.Median {
		t.Errorf("E3 median %.0f not >> E5 median %.0f", e3.Summary.Median, e5.Summary.Median)
	}
	if e3.Summary.P99 < 4000 {
		t.Errorf("E3 p99 = %.0fns, want ~5700", e3.Summary.P99)
	}
	// E5 99.9% of samples within a narrow band above the minimum.
	if band := e5.Summary.P999 - e5.Summary.Min; band > 120 {
		t.Errorf("E5 p99.9-min = %.0fns, want <= ~100", band)
	}
	// E3 minimum is actually below the E5's (Fig 6).
	if e3.Summary.Min >= e5.Summary.Min {
		t.Errorf("E3 min %.0f not below E5 min %.0f", e3.Summary.Min, e5.Summary.Min)
	}
}

func TestAdapterString(t *testing.T) {
	if NFP6000.String() != "NFP6000 1.2GHz" || NetFPGASUME.String() != "NetFPGA-SUME" {
		t.Error("adapter strings")
	}
}

func TestJitterDeterminism(t *testing.T) {
	run := func() float64 {
		s, _ := ByName("NFP6000-HSW-E3")
		inst, err := s.Build(Options{BufferSize: 1 << 20, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: 64, Cache: bench.HostWarm, Transactions: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Mean
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different means: %v vs %v", a, b)
	}
}

func TestWireDelayOrderingAcrossSystems(t *testing.T) {
	// §6.5 implies the BDW host is the fastest baseline (~430ns for
	// 64B reads); SNB/IB are the slowest E5s.
	lat := func(name string) sim.Time {
		s, _ := ByName(name)
		inst, err := s.Build(Options{BufferSize: 1 << 20, NoJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: 64, Cache: bench.HostWarm,
			Transactions: 50, Direct: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.FromNS(res.Summary.Median)
	}
	bdw, hsw, ib := lat("NFP6000-BDW"), lat("NFP6000-HSW"), lat("NFP6000-IB")
	if !(bdw < hsw && hsw < ib) {
		t.Errorf("ordering: BDW %v HSW %v IB %v", bdw, hsw, ib)
	}
	// §6.5: ~430ns on BDW via the direct interface.
	if bdw < 400*sim.Nanosecond || bdw > 470*sim.Nanosecond {
		t.Errorf("BDW direct 64B = %v, want ~430ns", bdw)
	}
}
