// Package dll implements the PCI Express Data Link Layer.
//
// The DLL sits between the transaction layer (internal/tlp) and the
// physical layer (internal/phy). It provides the three services the spec
// assigns to it and which the paper's §3 model folds into the ~8-10%
// bandwidth overhead figure:
//
//   - TLP integrity: every TLP is framed with a 12-bit sequence number
//     and a 32-bit LCRC; receivers acknowledge (Ack) or reject (Nak)
//     frames, and transmitters keep a replay buffer.
//   - Flow control: credit accounting per type (Posted, Non-Posted,
//     Completion) in header and data credit units, advertised and
//     restored through UpdateFC DLLPs.
//   - DLLP transport: the 8-byte Data Link Layer Packets that carry the
//     above, protected by a 16-bit CRC.
//
// The implementation is protocol-faithful at packet granularity and is
// exercised by the protocol tests; the performance tier uses its credit
// arithmetic and overhead accounting rather than running a full link
// state machine per simulated transaction.
package dll

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DLLPType identifies a Data Link Layer Packet.
type DLLPType uint8

// DLLP type encodings (PCIe spec §3.4).
const (
	DLLPAck         DLLPType = 0x00
	DLLPNak         DLLPType = 0x10
	DLLPUpdateFCP   DLLPType = 0x80 // posted
	DLLPUpdateFCNP  DLLPType = 0x90 // non-posted
	DLLPUpdateFCCpl DLLPType = 0xA0 // completion
	DLLPInitFCP     DLLPType = 0x40
	DLLPInitFCNP    DLLPType = 0x50
	DLLPInitFCCpl   DLLPType = 0x60
)

// String returns the spec mnemonic.
func (t DLLPType) String() string {
	switch t {
	case DLLPAck:
		return "Ack"
	case DLLPNak:
		return "Nak"
	case DLLPUpdateFCP:
		return "UpdateFC-P"
	case DLLPUpdateFCNP:
		return "UpdateFC-NP"
	case DLLPUpdateFCCpl:
		return "UpdateFC-Cpl"
	case DLLPInitFCP:
		return "InitFC-P"
	case DLLPInitFCNP:
		return "InitFC-NP"
	case DLLPInitFCCpl:
		return "InitFC-Cpl"
	}
	return fmt.Sprintf("DLLP(%#x)", uint8(t))
}

// DLLP is a Data Link Layer Packet. Ack/Nak carry a sequence number;
// InitFC/UpdateFC carry header and data credit counts.
type DLLP struct {
	Type   DLLPType
	Seq    uint16 // Ack/Nak: last good (Ack) / last good before error (Nak)
	HdrFC  uint16 // credit types: 8-bit header credit field
	DataFC uint16 // credit types: 12-bit data credit field
}

// WireBytes is the size of every DLLP on the wire: 2 B framing + 4 B
// payload + 2 B CRC-16.
const WireBytes = 8

// DLLP encode/decode errors.
var (
	ErrDLLPShort = errors.New("dll: DLLP buffer too short")
	ErrDLLPCRC   = errors.New("dll: DLLP CRC mismatch")
)

// AppendTo serializes the DLLP (without physical framing), appending 6
// bytes to dst: type, 3 payload bytes, CRC-16.
func (d *DLLP) AppendTo(dst []byte) []byte {
	var payload [4]byte
	payload[0] = uint8(d.Type)
	switch d.Type {
	case DLLPAck, DLLPNak:
		binary.BigEndian.PutUint16(payload[2:], d.Seq&0xFFF)
	default:
		// Credit DLLPs: HdrFC[7:0] in byte1[5:0]+byte2[7:6],
		// DataFC[11:0] in byte2[3:0]+byte3. We use a simplified
		// packing with the same field widths.
		payload[1] = uint8(d.HdrFC) // 8-bit header credits
		binary.BigEndian.PutUint16(payload[2:], d.DataFC&0xFFF)
	}
	dst = append(dst, payload[:]...)
	crc := CRC16(payload[:])
	return binary.BigEndian.AppendUint16(dst, crc)
}

// DecodeDLLP parses a 6-byte DLLP, verifying its CRC.
func DecodeDLLP(b []byte) (DLLP, error) {
	if len(b) < 6 {
		return DLLP{}, ErrDLLPShort
	}
	want := binary.BigEndian.Uint16(b[4:6])
	if CRC16(b[:4]) != want {
		return DLLP{}, ErrDLLPCRC
	}
	d := DLLP{Type: DLLPType(b[0])}
	switch d.Type {
	case DLLPAck, DLLPNak:
		d.Seq = binary.BigEndian.Uint16(b[2:4]) & 0xFFF
	default:
		d.HdrFC = uint16(b[1])
		d.DataFC = binary.BigEndian.Uint16(b[2:4]) & 0xFFF
	}
	return d, nil
}

// CRC16 computes the PCIe DLLP CRC (polynomial 0x100B, initial value
// 0xFFFF, output complemented), bit-serial implementation.
func CRC16(data []byte) uint16 {
	const poly = 0x100B
	crc := uint16(0xFFFF)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bit := (b >> uint(i)) & 1
			fb := (crc>>15)&1 ^ uint16(bit)
			crc <<= 1
			if fb != 0 {
				crc ^= poly
			}
		}
	}
	return ^crc
}

// CRC32 computes the LCRC protecting each TLP. PCIe uses the IEEE 802.3
// generator polynomial 0x04C11DB7 with init 0xFFFFFFFF and complemented
// output; this is a non-reflected bit-serial implementation.
func CRC32(data []byte) uint32 {
	const poly = 0x04C11DB7
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc ^= uint32(b) << 24
		for i := 0; i < 8; i++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
	}
	return ^crc
}

// SeqDistance returns the forward distance from sequence a to b in the
// 12-bit circular sequence space.
func SeqDistance(a, b uint16) int {
	return int((b - a) & 0xFFF)
}

// SeqLessEq reports whether a <= b in the modular ordering given that
// their true distance is less than half the sequence space.
func SeqLessEq(a, b uint16) bool {
	return SeqDistance(a, b) < 2048
}
