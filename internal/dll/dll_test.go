package dll

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC16DetectsCorruption(t *testing.T) {
	data := []byte{0x00, 0x12, 0x34, 0x56}
	crc := CRC16(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			corrupt := make([]byte, len(data))
			copy(corrupt, data)
			corrupt[i] ^= 1 << uint(bit)
			if CRC16(corrupt) == crc {
				t.Errorf("single-bit flip at byte %d bit %d undetected", i, bit)
			}
		}
	}
}

func TestCRC32DetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64)
	rng.Read(data)
	crc := CRC32(data)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(data))
		bit := rng.Intn(8)
		data[i] ^= 1 << uint(bit)
		if CRC32(data) == crc {
			t.Errorf("bit flip at %d.%d undetected", i, bit)
		}
		data[i] ^= 1 << uint(bit)
	}
	if CRC32(data) != crc {
		t.Error("CRC32 not deterministic")
	}
}

func TestDLLPRoundTrip(t *testing.T) {
	cases := []DLLP{
		{Type: DLLPAck, Seq: 0},
		{Type: DLLPAck, Seq: 0xFFF},
		{Type: DLLPNak, Seq: 1234},
		{Type: DLLPUpdateFCP, HdrFC: 0xFF, DataFC: 0xFFF},
		{Type: DLLPUpdateFCNP, HdrFC: 8, DataFC: 0},
		{Type: DLLPUpdateFCCpl, HdrFC: 0, DataFC: 512},
		{Type: DLLPInitFCP, HdrFC: 64, DataFC: 1024},
	}
	for _, in := range cases {
		buf := in.AppendTo(nil)
		if len(buf) != 6 {
			t.Errorf("%v: encoded %d bytes, want 6", in.Type, len(buf))
		}
		out, err := DecodeDLLP(buf)
		if err != nil {
			t.Fatalf("%v: %v", in.Type, err)
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestDLLPDecodeErrors(t *testing.T) {
	if _, err := DecodeDLLP([]byte{1, 2, 3}); err != ErrDLLPShort {
		t.Errorf("short: %v", err)
	}
	d := DLLP{Type: DLLPAck, Seq: 7}
	buf := d.AppendTo(nil)
	buf[2] ^= 0x40
	if _, err := DecodeDLLP(buf); err != ErrDLLPCRC {
		t.Errorf("corrupt: %v, want ErrDLLPCRC", err)
	}
}

func TestDLLPTypeStrings(t *testing.T) {
	for typ, want := range map[DLLPType]string{
		DLLPAck: "Ack", DLLPNak: "Nak",
		DLLPUpdateFCP: "UpdateFC-P", DLLPUpdateFCNP: "UpdateFC-NP",
		DLLPUpdateFCCpl: "UpdateFC-Cpl", DLLPInitFCP: "InitFC-P",
		DLLPInitFCNP: "InitFC-NP", DLLPInitFCCpl: "InitFC-Cpl",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%#x: %q, want %q", uint8(typ), got, want)
		}
	}
}

func TestSeqArithmetic(t *testing.T) {
	if SeqDistance(0, 5) != 5 {
		t.Error("forward distance")
	}
	if SeqDistance(0xFFE, 2) != 4 {
		t.Error("wraparound distance")
	}
	if !SeqLessEq(10, 10) || !SeqLessEq(10, 11) || SeqLessEq(11, 10) {
		t.Error("ordering")
	}
	if !SeqLessEq(0xFFF, 0) {
		t.Error("wraparound ordering")
	}
}

func TestDataCreditsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 16: 1, 17: 2, 64: 4, 256: 16, 4096: 256}
	for bytes, want := range cases {
		if got := DataCreditsFor(bytes); got != want {
			t.Errorf("DataCreditsFor(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestTxCreditsExhaustionAndUpdate(t *testing.T) {
	tx := NewTxCredits(
		Credits{Hdr: 2, Data: 8},               // posted: 2 TLPs, 128B
		Credits{Hdr: 1, Data: 1},               // non-posted
		Credits{Hdr: Infinite, Data: Infinite}, // completions uncapped
	)
	if err := tx.Consume(Posted, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx.Consume(Posted, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx.Consume(Posted, 64); err != ErrNoCredit {
		t.Errorf("third posted TLP: %v, want ErrNoCredit", err)
	}
	// Data credits can run out before header credits.
	tx2 := NewTxCredits(Credits{Hdr: 10, Data: 4}, Credits{}, Credits{})
	if err := tx2.Consume(Posted, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Consume(Posted, 64); err != ErrNoCredit {
		t.Errorf("data-credit exhaustion: %v, want ErrNoCredit", err)
	}
	// An UpdateFC raises the cumulative limit and unblocks.
	tx2.Update(Posted, Credits{Hdr: 10, Data: 8})
	if err := tx2.Consume(Posted, 64); err != nil {
		t.Errorf("after update: %v", err)
	}
	// Stale updates are ignored.
	tx2.Update(Posted, Credits{Hdr: 1, Data: 1})
	if got := tx2.Available(Posted); got.Hdr != 8 {
		t.Errorf("stale update changed limit: %+v", got)
	}
	// Infinite pools always send.
	for i := 0; i < 1000; i++ {
		if err := tx.Consume(Completion, 4096); err != nil {
			t.Fatalf("infinite pool blocked at %d: %v", i, err)
		}
	}
}

func TestRxCreditsLedger(t *testing.T) {
	rx := NewRxCredits(Credits{Hdr: 4, Data: 16}, Credits{Hdr: 2, Data: 2}, Credits{Hdr: 2, Data: 8})
	init := rx.InitFC(Posted)
	if init.Hdr != 4 || init.Data != 16 {
		t.Errorf("InitFC = %+v", init)
	}
	rx.Received(Posted, 64)
	rx.Received(Posted, 64)
	if p := rx.Pending(Posted); p.Hdr != 2 || p.Data != 8 {
		t.Errorf("pending = %+v", p)
	}
	if err := rx.Drained(Posted, 64); err != nil {
		t.Fatal(err)
	}
	// UpdateFC advertises capacity + processed.
	u := rx.UpdateFC(Posted)
	if u.Hdr != 5 || u.Data != 20 {
		t.Errorf("UpdateFC = %+v, want {5 20}", u)
	}
	// Draining more than was received is an error.
	if err := rx.Drained(Posted, 4096); err != ErrFCOverflow {
		t.Errorf("over-drain: %v, want ErrFCOverflow", err)
	}
}

// Property: under random consume/update sequences, available credits
// never go negative and Consume never succeeds without coverage.
func TestCreditsNeverNegative(t *testing.T) {
	f := func(ops []uint16) bool {
		tx := NewTxCredits(Credits{Hdr: 4, Data: 16}, Credits{Hdr: 4, Data: 16}, Credits{Hdr: 4, Data: 16})
		granted := Credits{Hdr: 4, Data: 16}
		for _, op := range ops {
			ct := CreditType(op % 3)
			if op&0x8000 != 0 {
				granted.Hdr += int(op % 3)
				granted.Data += int(op % 5)
				tx.Update(ct, granted)
			} else {
				payload := int(op % 300)
				_ = tx.Consume(ct, payload)
			}
			for c := Posted; c <= Completion; c++ {
				a := tx.Available(c)
				if a.Hdr < 0 || a.Data < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func newLinkPair() (*Transmitter, *Receiver) {
	rxLedger := NewRxCredits(
		Credits{Hdr: 32, Data: 256},
		Credits{Hdr: 32, Data: 32},
		Credits{Hdr: Infinite, Data: Infinite},
	)
	txView := NewTxCredits(rxLedger.InitFC(Posted), rxLedger.InitFC(NonPosted), rxLedger.InitFC(Completion))
	return NewTransmitter(txView, 128), NewReceiver(rxLedger)
}

func TestLinkInOrderDelivery(t *testing.T) {
	tx, rx := newLinkPair()
	for i := 0; i < 10; i++ {
		tlp := []byte{byte(i), 1, 2, 3}
		frame, err := tx.Send(tlp, Posted, 0)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, resp, err := rx.Receive(frame, Posted, 0)
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if resp.Type != DLLPAck || resp.Seq != uint16(i) {
			t.Errorf("frame %d: resp %+v", i, resp)
		}
		if got[0] != byte(i) {
			t.Errorf("frame %d: payload %v", i, got)
		}
		tx.HandleAck(resp.Seq)
	}
	if tx.Outstanding() != 0 {
		t.Errorf("outstanding = %d after acks", tx.Outstanding())
	}
}

func TestLinkCorruptionNakReplay(t *testing.T) {
	tx, rx := newLinkPair()
	f0, _ := tx.Send([]byte{0xAA, 0, 0, 0}, Posted, 0)
	f1, _ := tx.Send([]byte{0xBB, 0, 0, 0}, Posted, 0)

	// Deliver frame 0 fine.
	_, resp, err := rx.Receive(f0, Posted, 0)
	if err != nil || resp.Type != DLLPAck {
		t.Fatalf("frame 0: %v %+v", err, resp)
	}
	tx.HandleAck(resp.Seq)

	// Corrupt frame 1 in flight.
	bad := make([]byte, len(f1))
	copy(bad, f1)
	bad[3] ^= 0xFF
	_, resp, err = rx.Receive(bad, Posted, 0)
	if err != ErrLCRC || resp.Type != DLLPNak {
		t.Fatalf("corrupt frame: err=%v resp=%+v", err, resp)
	}

	// Nak triggers replay of frame 1.
	replays := tx.HandleNak(resp.Seq)
	if len(replays) != 1 {
		t.Fatalf("replay count = %d, want 1", len(replays))
	}
	got, resp, err := rx.Receive(replays[0], Posted, 0)
	if err != nil || resp.Type != DLLPAck {
		t.Fatalf("replayed frame: %v %+v", err, resp)
	}
	if got[0] != 0xBB {
		t.Errorf("replayed payload %v", got)
	}
	if tx.Replays != 1 {
		t.Errorf("Replays = %d, want 1", tx.Replays)
	}
}

func TestLinkOutOfOrderNak(t *testing.T) {
	tx, rx := newLinkPair()
	_, _ = tx.Send([]byte{1, 0, 0, 0}, Posted, 0)
	f1, _ := tx.Send([]byte{2, 0, 0, 0}, Posted, 0)
	// Frame 0 lost; frame 1 arrives first -> Nak for "last good" 0xFFF.
	_, resp, err := rx.Receive(f1, Posted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != DLLPNak {
		t.Fatalf("resp = %+v, want Nak", resp)
	}
	// Replay both frames in order.
	replays := tx.HandleNak(resp.Seq)
	if len(replays) != 2 {
		t.Fatalf("replay count = %d, want 2", len(replays))
	}
	for i, f := range replays {
		_, resp, err = rx.Receive(f, Posted, 0)
		if err != nil || resp.Type != DLLPAck {
			t.Fatalf("replay %d: %v %+v", i, err, resp)
		}
	}
	tx.HandleAck(resp.Seq)
	if tx.Outstanding() != 0 {
		t.Errorf("outstanding = %d", tx.Outstanding())
	}
}

func TestLinkDuplicateDiscarded(t *testing.T) {
	tx, rx := newLinkPair()
	f0, _ := tx.Send([]byte{1, 2, 3, 4}, Posted, 0)
	if _, _, err := rx.Receive(f0, Posted, 0); err != nil {
		t.Fatal(err)
	}
	tlp, resp, err := rx.Receive(f0, Posted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tlp != nil {
		t.Error("duplicate delivered TLP bytes")
	}
	if resp.Type != DLLPAck || resp.Seq != 0 {
		t.Errorf("duplicate resp = %+v", resp)
	}
	if rx.Dups != 1 {
		t.Errorf("Dups = %d", rx.Dups)
	}
}

func TestLinkBlocksWithoutCredits(t *testing.T) {
	rxLedger := NewRxCredits(Credits{Hdr: 1, Data: 4}, Credits{}, Credits{})
	tx := NewTransmitter(NewTxCredits(rxLedger.InitFC(Posted), Credits{}, Credits{}), 8)
	rx := NewReceiver(rxLedger)

	f0, err := tx.Send(make([]byte, 68), Posted, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Send(make([]byte, 68), Posted, 64); err != ErrNoCredit {
		t.Fatalf("second send: %v, want ErrNoCredit", err)
	}
	// Receiver drains the TLP and returns credits via UpdateFC.
	_, resp, err := rx.Receive(f0, Posted, 64)
	if err != nil {
		t.Fatal(err)
	}
	tx.HandleAck(resp.Seq)
	if err := rxLedger.Drained(Posted, 64); err != nil {
		t.Fatal(err)
	}
	tx.fc.Update(Posted, rxLedger.UpdateFC(Posted))
	if _, err := tx.Send(make([]byte, 68), Posted, 64); err != nil {
		t.Errorf("after credit return: %v", err)
	}
}

func TestReplayBufferFull(t *testing.T) {
	tx, _ := newLinkPair()
	var err error
	for i := 0; i < 4; i++ {
		_, err = tx.Send([]byte{0, 0, 0, 0}, Posted, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	tx.maxRep = 4
	if _, err = tx.Send([]byte{0, 0, 0, 0}, Posted, 0); err != ErrReplayFull {
		t.Errorf("full replay buffer: %v, want ErrReplayFull", err)
	}
}

// Property: a lossy link with Nak-based replay still delivers every TLP
// exactly once and in order.
func TestLossyLinkEventualInOrderDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tx, rx := newLinkPair()
		const n = 50
		var delivered []byte
		pendingFrames := make([][]byte, 0, n)
		sent := 0
		for len(delivered) < n {
			// Send as long as credits allow.
			for sent < n {
				f, err := tx.Send([]byte{byte(sent), 0, 0, 0}, Posted, 0)
				if err != nil {
					break
				}
				pendingFrames = append(pendingFrames, f)
				sent++
			}
			if len(pendingFrames) == 0 {
				// Everything in flight was lost: the replay timer
				// fires and retransmits the outstanding frames.
				pendingFrames = tx.ReplayTimeout()
				if len(pendingFrames) == 0 {
					t.Fatal("deadlock: nothing in flight and nothing to replay")
				}
			}
			f := pendingFrames[0]
			pendingFrames = pendingFrames[1:]
			// 20% loss, 10% corruption.
			r := rng.Float64()
			if r < 0.2 {
				continue // dropped
			}
			if r < 0.3 {
				g := make([]byte, len(f))
				copy(g, f)
				g[rng.Intn(len(g))] ^= 0xFF
				f = g
			}
			tlpBytes, resp, _ := rx.Receive(f, Posted, 0)
			if tlpBytes != nil {
				delivered = append(delivered, tlpBytes[0])
				if err := rx.fc.Drained(Posted, 0); err != nil {
					t.Fatal(err)
				}
				tx.fc.Update(Posted, rx.fc.UpdateFC(Posted))
			}
			switch resp.Type {
			case DLLPAck:
				tx.HandleAck(resp.Seq)
			case DLLPNak:
				pendingFrames = append(tx.HandleNak(resp.Seq), pendingFrames...)
			}
		}
		for i, b := range delivered {
			if b != byte(i) {
				t.Fatalf("trial %d: delivered[%d] = %d", trial, i, b)
			}
		}
	}
}
