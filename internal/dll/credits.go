package dll

import (
	"errors"
	"fmt"
)

// CreditType distinguishes the three flow-control pools of a virtual
// channel.
type CreditType int

// Flow-control pools.
const (
	Posted     CreditType = iota // memory writes, messages
	NonPosted                    // memory reads, config/IO requests
	Completion                   // completions
	numCreditTypes
)

// String names the pool.
func (c CreditType) String() string {
	switch c {
	case Posted:
		return "P"
	case NonPosted:
		return "NP"
	case Completion:
		return "Cpl"
	}
	return fmt.Sprintf("CreditType(%d)", int(c))
}

// DataCreditBytes is the size of one data credit: 4 DW.
const DataCreditBytes = 16

// Infinite marks a pool as having infinite credits (the spec permits
// this for completions on endpoints).
const Infinite = -1

// Credits is a (header, data) credit pair.
type Credits struct {
	Hdr  int // one header credit per TLP
	Data int // one data credit per 16 payload bytes
}

// DataCreditsFor returns the data credits a payload of n bytes consumes.
func DataCreditsFor(n int) int {
	return (n + DataCreditBytes - 1) / DataCreditBytes
}

// Flow-control errors.
var (
	ErrNoCredit   = errors.New("dll: insufficient flow-control credits")
	ErrFCOverflow = errors.New("dll: credit release exceeds consumption")
)

// TxCredits is the transmitter-side view of the receiver's buffer space:
// CREDITS_LIMIT advertised via InitFC/UpdateFC minus CREDITS_CONSUMED.
type TxCredits struct {
	limit    [numCreditTypes]Credits // cumulative advertised credits
	consumed [numCreditTypes]Credits // cumulative consumed credits
}

// NewTxCredits initializes the transmitter view from the receiver's
// InitFC advertisement.
func NewTxCredits(p, np, cpl Credits) *TxCredits {
	t := &TxCredits{}
	t.limit[Posted] = p
	t.limit[NonPosted] = np
	t.limit[Completion] = cpl
	return t
}

// available returns remaining credits for one pool (header, data).
func (t *TxCredits) available(ct CreditType) Credits {
	lim, con := t.limit[ct], t.consumed[ct]
	a := Credits{Hdr: Infinite, Data: Infinite}
	if lim.Hdr != Infinite {
		a.Hdr = lim.Hdr - con.Hdr
	}
	if lim.Data != Infinite {
		a.Data = lim.Data - con.Data
	}
	return a
}

// CanSend reports whether a TLP of the given type with payloadBytes of
// data can be transmitted under the current credit state.
func (t *TxCredits) CanSend(ct CreditType, payloadBytes int) bool {
	a := t.available(ct)
	if a.Hdr != Infinite && a.Hdr < 1 {
		return false
	}
	need := DataCreditsFor(payloadBytes)
	if a.Data != Infinite && a.Data < need {
		return false
	}
	return true
}

// Consume debits the credits for one TLP. It returns ErrNoCredit without
// side effects if insufficient credits remain.
func (t *TxCredits) Consume(ct CreditType, payloadBytes int) error {
	if !t.CanSend(ct, payloadBytes) {
		return ErrNoCredit
	}
	t.consumed[ct].Hdr++
	t.consumed[ct].Data += DataCreditsFor(payloadBytes)
	return nil
}

// Update processes an UpdateFC advertisement raising the cumulative
// limit for one pool. Updates are cumulative counters; a stale (lower)
// update is ignored, mirroring the spec's modulo comparison.
func (t *TxCredits) Update(ct CreditType, limit Credits) {
	if t.limit[ct].Hdr != Infinite && limit.Hdr > t.limit[ct].Hdr {
		t.limit[ct].Hdr = limit.Hdr
	}
	if t.limit[ct].Data != Infinite && limit.Data > t.limit[ct].Data {
		t.limit[ct].Data = limit.Data
	}
}

// Available returns the remaining (header, data) credits for a pool,
// with Infinite fields when the pool is uncapped.
func (t *TxCredits) Available(ct CreditType) Credits { return t.available(ct) }

// RxCredits is the receiver-side ledger: buffer capacity allocated per
// pool, credits granted to the peer, and credits freed as the
// transaction layer drains received TLPs.
type RxCredits struct {
	capacity  [numCreditTypes]Credits // total buffer, in credits
	granted   [numCreditTypes]Credits // cumulative advertised
	processed [numCreditTypes]Credits // cumulative freed
	pending   [numCreditTypes]Credits // received but not yet drained
}

// NewRxCredits sets up a receiver with the given buffer capacities and
// returns it; the initial grant equals the full capacity (InitFC).
func NewRxCredits(p, np, cpl Credits) *RxCredits {
	r := &RxCredits{}
	r.capacity[Posted] = p
	r.capacity[NonPosted] = np
	r.capacity[Completion] = cpl
	r.granted[Posted] = p
	r.granted[NonPosted] = np
	r.granted[Completion] = cpl
	return r
}

// InitFC returns the initial advertisement for one pool.
func (r *RxCredits) InitFC(ct CreditType) Credits { return r.granted[ct] }

// Received records buffer occupancy for an arriving TLP.
func (r *RxCredits) Received(ct CreditType, payloadBytes int) {
	r.pending[ct].Hdr++
	r.pending[ct].Data += DataCreditsFor(payloadBytes)
}

// Drained records that the transaction layer consumed a previously
// received TLP, freeing its buffer space. The freed credits become
// available for a future UpdateFC.
func (r *RxCredits) Drained(ct CreditType, payloadBytes int) error {
	if r.pending[ct].Hdr < 1 || r.pending[ct].Data < DataCreditsFor(payloadBytes) {
		return ErrFCOverflow
	}
	r.pending[ct].Hdr--
	r.pending[ct].Data -= DataCreditsFor(payloadBytes)
	r.processed[ct].Hdr++
	r.processed[ct].Data += DataCreditsFor(payloadBytes)
	return nil
}

// UpdateFC produces the cumulative credit limit to advertise for a pool:
// capacity plus everything processed so far. The DLLP should be sent
// whenever this value exceeds the last advertisement.
func (r *RxCredits) UpdateFC(ct CreditType) Credits {
	cap, proc := r.capacity[ct], r.processed[ct]
	u := Credits{Hdr: Infinite, Data: Infinite}
	if cap.Hdr != Infinite {
		u.Hdr = cap.Hdr + proc.Hdr
	}
	if cap.Data != Infinite {
		u.Data = cap.Data + proc.Data
	}
	r.granted[ct] = u
	return u
}

// Pending returns the occupancy of one pool (useful for tests and for
// modeling receiver-buffer backpressure).
func (r *RxCredits) Pending(ct CreditType) Credits { return r.pending[ct] }
