package dll

import (
	"encoding/binary"
	"errors"
)

// Frame layout: 2-byte sequence number, TLP bytes, 4-byte LCRC. The
// physical layer adds its own framing tokens (see internal/phy).
const (
	seqBytes  = 2
	lcrcBytes = 4
	// FrameOverhead is the DLL bytes added around every TLP; it matches
	// pcie.DLLBytes.
	FrameOverhead = seqBytes + lcrcBytes
)

// Link-layer errors.
var (
	ErrFrameShort = errors.New("dll: frame too short")
	ErrLCRC       = errors.New("dll: LCRC mismatch")
	ErrReplayFull = errors.New("dll: replay buffer full")
	ErrUnknownAck = errors.New("dll: ack for unknown sequence number")
)

// Transmitter implements the sending half of the data link layer: it
// assigns sequence numbers, consumes flow-control credits, frames TLPs
// with an LCRC, and retains them in a replay buffer until acknowledged.
type Transmitter struct {
	nextSeq uint16
	fc      *TxCredits
	replay  []txEntry
	maxRep  int

	// Replays counts TLP retransmissions (Nak-triggered).
	Replays int
}

type txEntry struct {
	seq     uint16
	frame   []byte
	ct      CreditType
	payload int
}

// NewTransmitter returns a transmitter using the given credit view and a
// replay buffer of maxReplay frames (0 means a generous default of 64).
func NewTransmitter(fc *TxCredits, maxReplay int) *Transmitter {
	if maxReplay <= 0 {
		maxReplay = 64
	}
	return &Transmitter{fc: fc, maxRep: maxReplay}
}

// Send frames one TLP. It consumes credits for the TLP's pool, assigns
// the next sequence number and returns the on-wire frame. The frame is
// retained for replay until acknowledged.
func (t *Transmitter) Send(tlpBytes []byte, ct CreditType, payloadBytes int) ([]byte, error) {
	if len(t.replay) >= t.maxRep {
		return nil, ErrReplayFull
	}
	if err := t.fc.Consume(ct, payloadBytes); err != nil {
		return nil, err
	}
	seq := t.nextSeq
	t.nextSeq = (t.nextSeq + 1) & 0xFFF
	frame := make([]byte, 0, seqBytes+len(tlpBytes)+lcrcBytes)
	frame = binary.BigEndian.AppendUint16(frame, seq)
	frame = append(frame, tlpBytes...)
	frame = binary.BigEndian.AppendUint32(frame, CRC32(frame))
	t.replay = append(t.replay, txEntry{seq: seq, frame: frame, ct: ct, payload: payloadBytes})
	return frame, nil
}

// HandleAck purges all frames with sequence numbers up to and including
// seq from the replay buffer, returning how many were purged.
func (t *Transmitter) HandleAck(seq uint16) int {
	n := 0
	for len(t.replay) > 0 && SeqLessEq(t.replay[0].seq, seq) {
		t.replay = t.replay[1:]
		n++
	}
	return n
}

// HandleNak acknowledges frames up to and including seq and returns the
// frames after it, in order, for retransmission.
func (t *Transmitter) HandleNak(seq uint16) [][]byte {
	t.HandleAck(seq)
	out := make([][]byte, 0, len(t.replay))
	for _, e := range t.replay {
		out = append(out, e.frame)
	}
	t.Replays += len(out)
	return out
}

// ReplayTimeout retransmits every unacknowledged frame in order,
// modeling the spec's REPLAY_TIMER expiry: when neither an Ack nor a Nak
// arrives (all frames or all DLLPs lost), the transmitter must replay on
// its own initiative or the link deadlocks.
func (t *Transmitter) ReplayTimeout() [][]byte {
	out := make([][]byte, 0, len(t.replay))
	for _, e := range t.replay {
		out = append(out, e.frame)
	}
	t.Replays += len(out)
	return out
}

// Outstanding returns the number of unacknowledged frames.
func (t *Transmitter) Outstanding() int { return len(t.replay) }

// Receiver implements the receiving half: LCRC verification, in-order
// sequence checking, Ack/Nak generation, and receive-buffer credit
// tracking.
type Receiver struct {
	nextSeq uint16
	fc      *RxCredits

	// Naks counts rejected frames (corrupt or out of order).
	Naks int
	// Dups counts discarded duplicate frames.
	Dups int
}

// NewReceiver returns a receiver using the given credit ledger.
func NewReceiver(fc *RxCredits) *Receiver {
	return &Receiver{fc: fc}
}

// Receive processes one frame. On success it returns the contained TLP
// bytes and an Ack DLLP. Corrupt or out-of-order frames produce a Nak;
// duplicates produce an Ack for the last good sequence and nil TLP
// bytes. The caller must account received TLPs to the credit ledger via
// RxCredits.Received (done here) and later RxCredits.Drained.
func (r *Receiver) Receive(frame []byte, ct CreditType, payloadBytes int) (tlp []byte, resp DLLP, err error) {
	lastGood := (r.nextSeq - 1) & 0xFFF
	if len(frame) < seqBytes+lcrcBytes {
		r.Naks++
		return nil, DLLP{Type: DLLPNak, Seq: lastGood}, ErrFrameShort
	}
	body := frame[:len(frame)-lcrcBytes]
	want := binary.BigEndian.Uint32(frame[len(frame)-lcrcBytes:])
	if CRC32(body) != want {
		r.Naks++
		return nil, DLLP{Type: DLLPNak, Seq: lastGood}, ErrLCRC
	}
	seq := binary.BigEndian.Uint16(frame[:seqBytes]) & 0xFFF
	switch {
	case seq == r.nextSeq:
		r.nextSeq = (r.nextSeq + 1) & 0xFFF
		r.fc.Received(ct, payloadBytes)
		return body[seqBytes:], DLLP{Type: DLLPAck, Seq: seq}, nil
	case SeqLessEq(seq, lastGood):
		// Duplicate of an already-received frame: re-Ack, discard.
		r.Dups++
		return nil, DLLP{Type: DLLPAck, Seq: lastGood}, nil
	default:
		// Gap: a frame went missing; Nak the last good one.
		r.Naks++
		return nil, DLLP{Type: DLLPNak, Seq: lastGood}, nil
	}
}

// NextSeq returns the next expected sequence number (for tests).
func (r *Receiver) NextSeq() uint16 { return r.nextSeq }
