package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
	"pciebench/internal/tlp"
	"pciebench/internal/trace"
)

func sampleRecords(t *testing.T) []trace.Record {
	t.Helper()
	rd := tlp.MemRead{Addr: 0x1000, LengthDW: 16, FirstBE: 0xF, LastBE: 0xF, Addr64: true, Tag: 3}
	rdBytes, err := rd.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	cpl := tlp.Completion{ByteCount: 64, Data: make([]byte, 64), Tag: 3}
	cplBytes, err := cpl.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	return []trace.Record{
		{At: 100 * sim.Nanosecond, Dir: trace.DeviceToHost, TLP: rdBytes},
		{At: 500 * sim.Nanosecond, Dir: trace.HostToDevice, TLP: cplBytes},
	}
}

func TestBufferTracer(t *testing.T) {
	var b trace.Buffer
	data := []byte{1, 2, 3, 4}
	b.Trace(10, trace.DeviceToHost, data)
	data[0] = 99 // the tracer must have copied
	if b.Records[0].TLP[0] != 1 {
		t.Error("tracer aliased the TLP slice")
	}
}

func TestBufferLimit(t *testing.T) {
	b := trace.Buffer{Limit: 2}
	for i := 0; i < 5; i++ {
		b.Trace(sim.Time(i), trace.DeviceToHost, []byte{byte(i)})
	}
	if len(b.Records) != 2 || b.Dropped != 3 {
		t.Errorf("records=%d dropped=%d", len(b.Records), b.Dropped)
	}
	if b.Records[0].TLP[0] != 3 || b.Records[1].TLP[0] != 4 {
		t.Error("kept the wrong records")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	b := trace.Buffer{Records: sampleRecords(t)}
	var buf bytes.Buffer
	n, err := b.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range got {
		if got[i].At != b.Records[i].At || got[i].Dir != b.Records[i].Dir ||
			!bytes.Equal(got[i].TLP, b.Records[i].TLP) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestReadCorrupt(t *testing.T) {
	b := trace.Buffer{Records: sampleRecords(t)}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := trace.Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated journal accepted")
	}
	if _, err := trace.Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage journal accepted")
	}
}

func TestDump(t *testing.T) {
	out := trace.Dump(sampleRecords(t))
	for _, want := range []string{"MRd", "CplD", "D->H", "H->D", "100.0ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Undecodable records are reported, not dropped.
	bad := trace.Dump([]trace.Record{{At: 1, TLP: []byte{0xFF, 0, 0, 1}}})
	if !strings.Contains(bad, "UNDECODABLE") {
		t.Errorf("bad record dump: %s", bad)
	}
}

func TestSummarize(t *testing.T) {
	s := trace.Summarize(sampleRecords(t))
	if s.Records != 2 || s.UpTLPs != 1 || s.DownTLPs != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.ByKind[tlp.KindMemRead] != 1 || s.ByKind[tlp.KindCplD] != 1 {
		t.Errorf("kinds: %+v", s.ByKind)
	}
	if s.First != 100*sim.Nanosecond || s.Last != 500*sim.Nanosecond {
		t.Errorf("span: %v..%v", s.First, s.Last)
	}
}

// End-to-end: trace a DMA read through the root complex and verify the
// captured TLPs decode into the expected request/completion sequence
// with correct splitting.
func TestRootComplexTracing(t *testing.T) {
	k := sim.New(1)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	complex, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	complex.SetTracer(&buf)

	// A 1024B read: 2 MRd (MRRS 512) + 4 CplD (MPS 256).
	if _, err := complex.DMARead(0, 0x2000, 1024); err != nil {
		t.Fatal(err)
	}
	// A 300B write: 2 MWr (crosses one MPS boundary from 0x2F80).
	if _, err := complex.DMAWrite(0, 0x2F80, 300); err != nil {
		t.Fatal(err)
	}

	s := trace.Summarize(buf.Records)
	if s.ByKind[tlp.KindMemRead] != 2 {
		t.Errorf("MRd = %d, want 2", s.ByKind[tlp.KindMemRead])
	}
	if s.ByKind[tlp.KindCplD] != 4 {
		t.Errorf("CplD = %d, want 4", s.ByKind[tlp.KindCplD])
	}
	if s.ByKind[tlp.KindMemWrite] != 2 {
		t.Errorf("MWr = %d, want 2", s.ByKind[tlp.KindMemWrite])
	}
	// Every record decodes; completion payloads sum to the read size.
	total := 0
	for _, r := range buf.Records {
		p, err := r.Decode()
		if err != nil {
			t.Fatalf("undecodable record: %v", err)
		}
		if c, ok := p.(*tlp.Completion); ok {
			total += len(c.Data)
		}
	}
	if total != 1024 {
		t.Errorf("completion payload total = %d, want 1024", total)
	}
	// Timestamps are non-decreasing per direction.
	var lastUp, lastDown sim.Time
	for _, r := range buf.Records {
		if r.Dir == trace.DeviceToHost {
			if r.At < lastUp {
				t.Error("up timestamps decreased")
			}
			lastUp = r.At
		} else {
			if r.At < lastDown {
				t.Error("down timestamps decreased")
			}
			lastDown = r.At
		}
	}
}
