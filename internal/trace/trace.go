// Package trace captures the TLP-level activity of a simulated link as
// a compact binary journal, with a decoder and a human-readable dumper.
//
// This is the analogue of the raw result files the paper's control
// programs write (§5.4), upgraded to full wire fidelity: each record
// carries the simulated timestamp, the link direction, and the exact
// TLP bytes as encoded by internal/tlp, so a trace can be re-parsed
// with the protocol decoder, inspected, or diffed between runs. The
// root complex emits records through the Tracer interface; a nil tracer
// costs nothing.
//
// Record wire format (little endian):
//
//	[8] timestamp, picoseconds
//	[1] direction (0 = device→host, 1 = host→device)
//	[2] TLP length n
//	[n] TLP bytes
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"pciebench/internal/sim"
	"pciebench/internal/tlp"
)

// Direction of a traced TLP.
type Direction uint8

// Directions.
const (
	DeviceToHost Direction = iota // requests, write data (the "up" link)
	HostToDevice                  // completions, MMIO (the "down" link)
)

// String names the direction.
func (d Direction) String() string {
	if d == HostToDevice {
		return "H->D"
	}
	return "D->H"
}

// Record is one traced TLP.
type Record struct {
	At  sim.Time
	Dir Direction
	TLP []byte
}

// Decode parses the record's TLP bytes with the protocol decoder.
func (r Record) Decode() (tlp.Packet, error) {
	p, _, err := tlp.Decode(r.TLP)
	return p, err
}

// Tracer receives trace records. Implementations must not retain the
// TLP slice beyond the call.
type Tracer interface {
	Trace(at sim.Time, dir Direction, tlpBytes []byte)
}

// Buffer is an in-memory Tracer with optional capacity bounding.
type Buffer struct {
	// Limit bounds retained records (0 = unlimited); once reached, the
	// oldest records are dropped and Dropped counts them.
	Limit   int
	Records []Record
	Dropped int
}

// Trace implements Tracer.
func (b *Buffer) Trace(at sim.Time, dir Direction, tlpBytes []byte) {
	cp := make([]byte, len(tlpBytes))
	copy(cp, tlpBytes)
	b.Records = append(b.Records, Record{At: at, Dir: dir, TLP: cp})
	if b.Limit > 0 && len(b.Records) > b.Limit {
		drop := len(b.Records) - b.Limit
		b.Records = b.Records[drop:]
		b.Dropped += drop
	}
}

// WriteTo serializes all records in the binary journal format.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	var hdr [11]byte
	for _, r := range b.Records {
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(r.At))
		hdr[8] = uint8(r.Dir)
		if len(r.TLP) > 0xFFFF {
			return total, fmt.Errorf("trace: TLP of %d bytes exceeds record format", len(r.TLP))
		}
		binary.LittleEndian.PutUint16(hdr[9:11], uint16(len(r.TLP)))
		n, err := w.Write(hdr[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
		n, err = w.Write(r.TLP)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ErrCorrupt reports a malformed journal.
var ErrCorrupt = errors.New("trace: corrupt journal")

// Read parses a binary journal produced by WriteTo.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	var hdr [11]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rec := Record{
			At:  sim.Time(binary.LittleEndian.Uint64(hdr[0:8])),
			Dir: Direction(hdr[8]),
		}
		n := int(binary.LittleEndian.Uint16(hdr[9:11]))
		rec.TLP = make([]byte, n)
		if _, err := io.ReadFull(r, rec.TLP); err != nil {
			return out, fmt.Errorf("%w: truncated TLP: %v", ErrCorrupt, err)
		}
		out = append(out, rec)
	}
}

// Dump renders records as one line each, decoding the TLPs:
//
//	547.2ns D->H MRd addr=0x1000 len=16DW tag=3 req=00:00.0
func Dump(records []Record) string {
	var b strings.Builder
	for _, r := range records {
		fmt.Fprintf(&b, "%10s %s ", r.At, r.Dir)
		p, err := r.Decode()
		if err != nil {
			fmt.Fprintf(&b, "UNDECODABLE(%d bytes): %v\n", len(r.TLP), err)
			continue
		}
		fmt.Fprintf(&b, "%s\n", p)
	}
	return b.String()
}

// Stats summarizes a trace.
type Stats struct {
	Records   int
	UpTLPs    int
	DownTLPs  int
	UpBytes   int
	DownBytes int
	ByKind    map[tlp.Kind]int
	First     sim.Time
	Last      sim.Time
}

// Summarize computes trace statistics.
func Summarize(records []Record) Stats {
	s := Stats{ByKind: make(map[tlp.Kind]int)}
	for i, r := range records {
		s.Records++
		if i == 0 || r.At < s.First {
			s.First = r.At
		}
		if r.At > s.Last {
			s.Last = r.At
		}
		if r.Dir == DeviceToHost {
			s.UpTLPs++
			s.UpBytes += len(r.TLP)
		} else {
			s.DownTLPs++
			s.DownBytes += len(r.TLP)
		}
		if p, err := r.Decode(); err == nil {
			s.ByKind[p.Kind()]++
		} else {
			s.ByKind[tlp.KindInvalid]++
		}
	}
	return s
}
