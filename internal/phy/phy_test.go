package phy

import (
	"testing"

	"pciebench/internal/pcie"
)

func TestFramingTokenBytes(t *testing.T) {
	if got := FramingTokenBytes(pcie.Gen1); got != 2 {
		t.Errorf("Gen1 framing = %d, want 2", got)
	}
	if got := FramingTokenBytes(pcie.Gen2); got != 2 {
		t.Errorf("Gen2 framing = %d, want 2", got)
	}
	for _, g := range []pcie.Generation{pcie.Gen3, pcie.Gen4, pcie.Gen5} {
		if got := FramingTokenBytes(g); got != 4 {
			t.Errorf("%v framing = %d, want 4", g, got)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	if got := SerializationTimePS(cfg, 0); got != 0 {
		t.Errorf("0 bytes: %dps", got)
	}
	// 8 bytes on 8 lanes = 1 symbol column ~ 1.0156ns on Gen3.
	one := SerializationTimePS(cfg, 8)
	if one < 1000 || one > 1100 {
		t.Errorf("one column = %dps, want ~1016ps", one)
	}
	// 1..8 bytes all occupy one column.
	for n := 1; n <= 8; n++ {
		if got := SerializationTimePS(cfg, n); got != one {
			t.Errorf("%d bytes = %dps, want %dps (one column)", n, got, one)
		}
	}
	// 9 bytes need two columns (allow 1ps of integer rounding).
	if got := SerializationTimePS(cfg, 9); got < 2*one-2 || got > 2*one+2 {
		t.Errorf("9 bytes = %dps, want ~%dps", got, 2*one)
	}
}

func TestWiderLinkIsFaster(t *testing.T) {
	narrow := pcie.DefaultGen3x8()
	narrow.Lanes = 4
	wide := pcie.DefaultGen3x8()
	wide.Lanes = 16
	n := 1024
	if SerializationTimePS(narrow, n) <= SerializationTimePS(wide, n) {
		t.Error("x4 should be slower than x16")
	}
}

func TestNewerGenIsFaster(t *testing.T) {
	g3 := pcie.DefaultGen3x8()
	g4 := pcie.DefaultGen3x8()
	g4.Gen = pcie.Gen4
	if SerializationTimePS(g3, 512) <= SerializationTimePS(g4, 512) {
		t.Error("Gen3 should be slower than Gen4")
	}
}

func TestSkipOrderedSetOverheadSmall(t *testing.T) {
	for _, g := range []pcie.Generation{pcie.Gen1, pcie.Gen3, pcie.Gen5} {
		ov := SkipOrderedSetOverhead(g)
		if ov <= 0 || ov > 0.02 {
			t.Errorf("%v SKP overhead = %f, want (0, 0.02]", g, ov)
		}
	}
}

// The cycle-accurate serialization view and the bandwidth view
// (pcie.BytesTime) must agree to within the DLL overhead estimate for
// large transfers.
func TestViewsAgreeWithinDLLOverhead(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	n := 4096
	raw := SerializationTimePS(cfg, n)
	bw := cfg.BytesTime(n)
	// bw includes the ~8% DLL overhead, so bw ~ raw / (1-0.08).
	ratio := float64(bw) / float64(raw)
	if ratio < 1.05 || ratio > 1.12 {
		t.Errorf("bandwidth/raw time ratio = %.4f, want ~1.087", ratio)
	}
}

func TestTLPAndDLLPWireTimes(t *testing.T) {
	cfg := pcie.DefaultGen3x8()
	// A 16B header TLP: 16+6+4 = 26 bytes -> 4 columns on x8.
	got := TLPWireTimePS(cfg, 16)
	want := SerializationTimePS(cfg, 26)
	if got != want {
		t.Errorf("TLPWireTimePS(16) = %d, want %d", got, want)
	}
	if DLLPWireTimePS(cfg) != SerializationTimePS(cfg, 8) {
		t.Error("DLLP wire time mismatch")
	}
}
