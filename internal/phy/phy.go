// Package phy models the PCI Express physical layer: per-generation
// signalling rates, line encodings, lane striping and framing tokens.
//
// The functions here answer one question for the simulator: how long does
// a given TLP or DLLP occupy a link direction? Two accountings are
// provided. SerializationTime is the cycle-accurate view (symbols striped
// across lanes at the raw symbol rate, spec framing tokens per
// generation); pcie.LinkConfig.BytesTime is the bandwidth view used by
// the paper's model (effective TLP-layer bandwidth including the
// estimated DLL overhead). The performance tier uses the bandwidth view
// so the simulator and the analytical model share one notion of link
// capacity; the cycle-accurate view exists to validate that the two agree
// to within the DLL overhead estimate.
package phy

import (
	"pciebench/internal/pcie"
)

// FramingTokenBytes returns the physical-layer framing bytes per TLP for
// a generation: Gen1/2 use 1-byte STP and END symbols; Gen3 onwards use a
// 4-byte STP token with the end implied by the length field.
func FramingTokenBytes(g pcie.Generation) int {
	if g >= pcie.Gen3 {
		return 4
	}
	return 2
}

// SerializationTimePS returns the cycle-accurate wire occupancy of n
// payload bytes on the link: bytes are expanded by the line encoding,
// striped across lanes, and rounded up to a whole symbol column.
func SerializationTimePS(cfg pcie.LinkConfig, n int) int64 {
	if n <= 0 {
		return 0
	}
	// Symbols per lane: ceil(n / lanes).
	cols := (n + cfg.Lanes - 1) / cfg.Lanes
	perByte := 8.0 / cfg.Gen.LaneBitsPerSecond() * 1e12 // ps per encoded byte per lane
	return int64(float64(cols) * perByte)
}

// SkipOrderedSetOverhead returns the fraction of raw bandwidth consumed
// by SKP ordered sets, which compensate clock drift between the two link
// partners: one 16-byte (Gen3+) or 4-byte (Gen1/2) set per scheduled
// interval of 1538 symbol times.
func SkipOrderedSetOverhead(g pcie.Generation) float64 {
	const interval = 1538.0
	if g >= pcie.Gen3 {
		return 16.0 / (interval + 16.0)
	}
	return 4.0 / (interval + 4.0)
}

// TLPWireTimePS returns the wire occupancy of a TLP whose raw
// transaction-layer size is tlpBytes, including DLL framing and the
// generation's physical framing tokens, at the raw signalling rate.
func TLPWireTimePS(cfg pcie.LinkConfig, tlpBytes int) int64 {
	total := tlpBytes + 6 + FramingTokenBytes(cfg.Gen) // DLL seq+LCRC, STP/END
	return SerializationTimePS(cfg, total)
}

// DLLPWireTimePS returns the wire occupancy of one DLLP (8 bytes with
// framing).
func DLLPWireTimePS(cfg pcie.LinkConfig) int64 {
	return SerializationTimePS(cfg, 8)
}
