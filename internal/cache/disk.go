package cache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Disk is the persistent Store: one file per entry under a root
// directory, sharded by the first two hex characters of the key so no
// single directory grows unbounded. Writes go through a temp file and
// an atomic rename, so a crashed or concurrent writer can never leave
// a torn entry behind — readers see the whole blob or a miss.
//
// Entries are immutable (first write wins), which cuts both ways: a
// blob that went bad on disk — bit rot, a truncating copy, a stray
// editor — would otherwise be re-served forever. Quarantine breaks
// that loop by renaming the entry aside so the next Get misses and a
// fresh Put can land.
type Disk struct {
	root string
	// Logf, when non-nil, receives one line per quarantined entry.
	Logf func(format string, args ...any)
	// mu serializes writers of the same key; cross-process safety comes
	// from the rename, this only avoids redundant temp files in-process.
	mu sync.Mutex
}

// NewDisk opens (creating if needed) an on-disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Disk{root: dir}, nil
}

// path maps a key to its entry file.
func (c *Disk) path(key string) string {
	shard := "__"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(c.root, shard, key)
}

// Get returns the blob stored under key.
func (c *Disk) Get(key string) ([]byte, bool) {
	val, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return val, true
}

// Put stores val under key via temp-file-plus-rename; errors are
// swallowed (the entry is simply lost, and the cell recomputes next
// time).
func (c *Disk) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dst := c.path(key)
	if _, err := os.Stat(dst); err == nil {
		return // immutable entries: first write wins
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+key+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	_ = os.Rename(tmp.Name(), dst)
}

// Quarantine moves the entry stored under key out of the way —
// renaming it to <entry>.bad — so subsequent Gets miss and a later Put
// stores a fresh blob. Callers invoke it when a Get returned bytes
// that failed validation (torn JSON, wrong schema); the .bad file is
// kept for post-mortems rather than deleted.
func (c *Disk) Quarantine(key, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src := c.path(key)
	if err := os.Rename(src, src+".bad"); err != nil {
		return // already quarantined or evicted by another process
	}
	if c.Logf != nil {
		c.Logf("cache: quarantined corrupt entry %s: %s", key, reason)
	}
}

// Len walks the store and counts live entries; quarantined .bad files
// and in-flight temp files don't count.
func (c *Disk) Len() int {
	n := 0
	_ = filepath.WalkDir(c.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if !strings.HasPrefix(d.Name(), ".") && !strings.HasSuffix(d.Name(), ".bad") {
			n++
		}
		return nil
	})
	return n
}
