package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stores builds one of each implementation for table-driven contract
// tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "disk": disk}
}

func TestStoreContract(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := Key([]byte("cell-spec-1"))
			if _, ok := s.Get(key); ok {
				t.Fatal("empty store reported a hit")
			}
			if s.Len() != 0 {
				t.Fatalf("empty store Len = %d", s.Len())
			}
			s.Put(key, []byte("result-1"))
			got, ok := s.Get(key)
			if !ok || string(got) != "result-1" {
				t.Fatalf("Get = %q, %v; want result-1, true", got, ok)
			}
			// Entries are immutable: a second Put of the same key keeps
			// the first value.
			s.Put(key, []byte("clobbered"))
			if got, _ := s.Get(key); string(got) != "result-1" {
				t.Fatalf("Put overwrote an existing entry: %q", got)
			}
			s.Put(Key([]byte("cell-spec-2")), []byte("result-2"))
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
		})
	}
}

func TestStoreConcurrent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < 50; j++ {
						key := Key([]byte(fmt.Sprintf("k%d", j)))
						s.Put(key, []byte(fmt.Sprintf("v%d", j)))
						if v, ok := s.Get(key); ok && string(v) != fmt.Sprintf("v%d", j) {
							t.Errorf("torn read: %q", v)
						}
					}
				}(i)
			}
			wg.Wait()
			if s.Len() != 50 {
				t.Fatalf("Len = %d, want 50", s.Len())
			}
		})
	}
}

func TestKeyIsContentAddressed(t *testing.T) {
	a, b := Key([]byte("spec-a")), Key([]byte("spec-b"))
	if a == b {
		t.Fatal("distinct content hashed to one key")
	}
	if a != Key([]byte("spec-a")) {
		t.Fatal("key not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
}

// TestDiskPersists reopens a store on the same directory and still
// finds the entry — the property the serving cache relies on across
// restarts.
func TestDiskPersists(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("persistent"))
	s1.Put(key, []byte("survives"))

	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "survives" {
		t.Fatalf("reopened store: Get = %q, %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store Len = %d, want 1", s2.Len())
	}
}

// TestDiskSharding checks the two-hex-char fanout layout so a store
// directory never collects millions of siblings.
func TestDiskShard(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("sharded"))
	s.Put(key, []byte("x"))
	if _, err := os.Stat(filepath.Join(dir, key[:2], key)); err != nil {
		t.Fatalf("entry not at sharded path: %v", err)
	}
}

// TestDiskQuarantine pins the corrupt-entry recovery loop: a
// quarantined entry is renamed to .bad (kept for post-mortems), is not
// re-read, no longer counts toward Len, and — because first-write-wins
// keys on the live path — a fresh Put lands and is served again.
func TestDiskQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logged string
	s.Logf = func(format string, args ...any) { logged = fmt.Sprintf(format, args...) }

	key := Key([]byte("rot"))
	s.Put(key, []byte("garbage{{{"))
	s.Quarantine(key, "invalid character '{'")

	if _, ok := s.Get(key); ok {
		t.Fatal("quarantined entry still readable")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", s.Len())
	}
	bad := filepath.Join(dir, key[:2], key+".bad")
	if blob, err := os.ReadFile(bad); err != nil || string(blob) != "garbage{{{" {
		t.Fatalf("quarantined blob not preserved at %s: %v", bad, err)
	}
	if !strings.Contains(logged, key) || !strings.Contains(logged, "invalid character") {
		t.Errorf("quarantine log line %q missing key or reason", logged)
	}

	// Recovery: a recomputed result replaces the slot.
	s.Put(key, []byte("fresh"))
	if got, ok := s.Get(key); !ok || string(got) != "fresh" {
		t.Fatalf("recomputed entry not served: %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after recovery, want 1", s.Len())
	}

	// Quarantining a missing key is a no-op, not a crash.
	s.Quarantine(Key([]byte("absent")), "whatever")
}
