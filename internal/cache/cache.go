// Package cache is a content-addressed result store.
//
// Every sweep cell in this repo is a pure function of (canonical cell
// spec, seed, build version), so its result can be addressed by the
// SHA-256 of those inputs and reused forever: resubmitting a spec with
// one axis value changed recomputes only the changed cells, and an
// identical resubmission executes nothing at all. The package defines
// the Store interface the sweep engine dedups against, plus two
// implementations: an in-memory map for a single process (the serving
// default) and an on-disk layout that persists across restarts.
//
// Stores are deliberately dumb byte stores — keying policy (what goes
// into the hash) belongs to the caller; see sweep.Engine.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key derives the content address of a canonical blob: the lowercase
// hex SHA-256 of its bytes.
func Key(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed byte store. Implementations must be
// safe for concurrent use; Get and Put are best-effort (a failed read
// is a miss, a failed write loses only the cache entry), so callers
// never fail a computation over cache trouble.
type Store interface {
	// Get returns the blob stored under key, or ok=false on a miss.
	Get(key string) (val []byte, ok bool)
	// Put stores val under key. Entries are immutable: writing a key
	// that already exists is a no-op.
	Put(key string, val []byte)
	// Len returns the number of stored entries.
	Len() int
}

// Memory is the in-process Store: a mutex-guarded map. The zero value
// is not ready; use NewMemory.
type Memory struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{m: map[string][]byte{}}
}

// Get returns the blob stored under key.
func (c *Memory) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores val under key; existing entries are kept (immutability
// means both values are identical anyway).
func (c *Memory) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return
	}
	c.m[key] = append([]byte(nil), val...)
}

// Len returns the entry count.
func (c *Memory) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
