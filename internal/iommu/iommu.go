// Package iommu models an Intel VT-d style IOMMU interposed between the
// PCIe root complex and the memory system.
//
// Every inbound TLP's DMA address is translated through an IO-TLB; a
// miss occupies one of a small pool of hardware page-table walkers for
// the duration of a multi-level walk. Both parameters are the levers
// behind the paper's §6.5 findings: the windowed benchmark infers 64
// IO-TLB entries (the throughput cliff at a 256 KB window with 4 KB
// pages) and a ~330 ns walk cost, and the sharp 64 B-read bandwidth drop
// beyond the cliff is reproduced by walker-pool serialization, not by a
// hard-coded curve.
//
// Superpage support (2 MB / 1 GB) mirrors the hardware: one IO-TLB entry
// then covers the whole superpage, which is why the paper recommends
// co-locating DMA buffers in superpages. The paper's experiments disable
// it (`sp_off`) to force 4 KB granularity; that choice is made by the
// driver layer (internal/hostif) when it maps the buffer.
//
// A host may expose several units — VT-d enumerates one DRHD per
// socket — so a fabric can carry one IOMMU per socket, each with its
// own IO-TLB, walker pool and counters (see internal/topo's IOMMU
// scope). Translate sits on every DMA's critical path, so both lookup
// structures are allocation-free in steady state: mappings are kept
// sorted by IOVA and found by binary search, and the IO-TLB is a fixed
// entry arena threaded onto an intrusive LRU list with a hash index,
// replacing the former linear scans. Eviction order is bit-identical
// to the old min-use-clock sweep: the list tail is exactly the entry
// with the smallest use stamp.
package iommu

import (
	"errors"
	"fmt"

	"pciebench/internal/sim"
)

// Page sizes supported by the translation structures.
const (
	Page4K = 4 << 10
	Page2M = 2 << 20
	Page1G = 1 << 30
)

// Config shapes the IOMMU.
type Config struct {
	// TLBEntries is the IO-TLB capacity (fully associative, LRU). The
	// paper infers 64 for the Intel implementations it measures.
	TLBEntries int
	// WalkLatency is the full page-table walk cost on a TLB miss
	// (~330 ns inferred in §6.5).
	WalkLatency sim.Time
	// Walkers is the number of concurrent hardware page walkers; misses
	// beyond this serialize. This bounds translation throughput at
	// Walkers/WalkLatency.
	Walkers int
	// HitLatency is the (small) cost of a TLB hit lookup.
	HitLatency sim.Time
}

// DefaultConfig returns the calibration used for the paper's Intel
// systems.
func DefaultConfig() Config {
	return Config{
		TLBEntries:  64,
		WalkLatency: 330 * sim.Nanosecond,
		Walkers:     6,
		HitLatency:  0,
	}
}

// Translation errors.
var (
	ErrUnmapped   = errors.New("iommu: address not mapped (DMA fault)")
	ErrOverlap    = errors.New("iommu: mapping overlaps an existing one")
	ErrBadPage    = errors.New("iommu: page size must be 4K, 2M or 1G")
	ErrMisaligned = errors.New("iommu: mapping addresses must be page aligned")
)

type mapping struct {
	iova, pa uint64
	size     uint64
	pageSize uint64
}

// tlbKey identifies one IO-TLB entry: the covering page and its size.
type tlbKey struct {
	pageBase uint64 // IOVA base of the covering page
	pageSize uint64
}

// tlbEntry is one arena slot; prev/next thread the intrusive LRU list
// (head = most recently used, tail = eviction victim; -1 terminates).
type tlbEntry struct {
	key        tlbKey
	pa         uint64 // PA base of the covering page
	prev, next int32
}

// IOMMU is a single translation unit with its IO-TLB and walker pool.
type IOMMU struct {
	cfg     Config
	walkers *sim.MultiServer
	maps    []mapping // sorted by iova, non-overlapping

	// IO-TLB: fixed entry arena + hash index + intrusive LRU list.
	tlb        []tlbEntry // len = live entries, cap = TLBEntries
	index      map[tlbKey]int32
	head, tail int32

	// Statistics.
	Hits   uint64
	Misses uint64
	Faults uint64
}

// New builds an IOMMU bound to kernel k (the walker pool shares its
// virtual clock).
func New(k *sim.Kernel, cfg Config) *IOMMU {
	if cfg.TLBEntries < 1 {
		cfg.TLBEntries = 1
	}
	if cfg.Walkers < 1 {
		cfg.Walkers = 1
	}
	return &IOMMU{
		cfg:     cfg,
		walkers: sim.NewMultiServer(k, cfg.Walkers),
		tlb:     make([]tlbEntry, 0, cfg.TLBEntries),
		index:   make(map[tlbKey]int32, cfg.TLBEntries),
		head:    -1,
		tail:    -1,
	}
}

// Config returns the configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// lowerBound returns the first index whose mapping starts above iova.
func (u *IOMMU) lowerBound(iova uint64) int {
	lo, hi := 0, len(u.maps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u.maps[mid].iova <= iova {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Map installs a translation of size bytes from IOVA to PA with the
// given page granularity. All addresses must be aligned to pageSize and
// size a multiple of it; the range must not overlap existing mappings.
func (u *IOMMU) Map(iova, pa uint64, size int, pageSize int) error {
	ps := uint64(pageSize)
	if pageSize != Page4K && pageSize != Page2M && pageSize != Page1G {
		return ErrBadPage
	}
	if iova%ps != 0 || pa%ps != 0 || uint64(size)%ps != 0 {
		return ErrMisaligned
	}
	// Sorted + non-overlapping: only the neighbors can collide.
	i := u.lowerBound(iova)
	if i > 0 && iova < u.maps[i-1].iova+u.maps[i-1].size {
		return ErrOverlap
	}
	if i < len(u.maps) && u.maps[i].iova < iova+uint64(size) {
		return ErrOverlap
	}
	u.maps = append(u.maps, mapping{})
	copy(u.maps[i+1:], u.maps[i:])
	u.maps[i] = mapping{iova: iova, pa: pa, size: uint64(size), pageSize: ps}
	return nil
}

// Unmap removes the mapping starting at iova and flushes the IO-TLB (as
// the kernel's unmap path does with an invalidation).
func (u *IOMMU) Unmap(iova uint64) error {
	i := u.lowerBound(iova) - 1
	if i >= 0 && u.maps[i].iova == iova {
		u.maps = append(u.maps[:i], u.maps[i+1:]...)
		u.InvalidateAll()
		return nil
	}
	return fmt.Errorf("%w: iova %#x", ErrUnmapped, iova)
}

// lookupMapping finds the mapping covering iova by binary search.
func (u *IOMMU) lookupMapping(iova uint64) (mapping, bool) {
	i := u.lowerBound(iova) - 1
	if i < 0 {
		return mapping{}, false
	}
	if m := u.maps[i]; iova < m.iova+m.size {
		return m, true
	}
	return mapping{}, false
}

// Result describes one translation.
type Result struct {
	PA    uint64
	Ready sim.Time // when the translated request may proceed
	Hit   bool
}

// Translate resolves iova at virtual time at. On an IO-TLB hit the
// request proceeds after HitLatency. On a miss a page walker is occupied
// for WalkLatency (queueing behind other misses when every walker is
// busy) and the translation is installed in the IO-TLB, evicting the
// LRU entry.
func (u *IOMMU) Translate(at sim.Time, iova uint64) (Result, error) {
	m, ok := u.lookupMapping(iova)
	if !ok {
		u.Faults++
		return Result{}, fmt.Errorf("%w: iova %#x", ErrUnmapped, iova)
	}
	pageBase := iova / m.pageSize * m.pageSize
	pa := m.pa + (iova - m.iova)
	if i, ok := u.index[tlbKey{pageBase, m.pageSize}]; ok {
		u.touch(i)
		u.Hits++
		return Result{PA: pa, Ready: at + u.cfg.HitLatency, Hit: true}, nil
	}
	u.Misses++
	ready := u.walkers.ScheduleAt(at, u.cfg.WalkLatency)
	u.install(tlbKey{pageBase, m.pageSize}, m.pa+(pageBase-m.iova))
	return Result{PA: pa, Ready: ready, Hit: false}, nil
}

// touch moves entry i to the list head (most recently used).
func (u *IOMMU) touch(i int32) {
	if u.head == i {
		return
	}
	e := &u.tlb[i]
	u.tlb[e.prev].next = e.next
	if e.next >= 0 {
		u.tlb[e.next].prev = e.prev
	} else {
		u.tail = e.prev
	}
	e.prev = -1
	e.next = u.head
	u.tlb[u.head].prev = i
	u.head = i
}

// install inserts a TLB entry at the list head, evicting the LRU tail
// when the arena is full.
func (u *IOMMU) install(key tlbKey, pa uint64) {
	var i int32
	if len(u.tlb) < u.cfg.TLBEntries {
		i = int32(len(u.tlb))
		u.tlb = append(u.tlb, tlbEntry{})
	} else {
		i = u.tail
		e := &u.tlb[i]
		delete(u.index, e.key)
		u.tail = e.prev
		if u.tail >= 0 {
			u.tlb[u.tail].next = -1
		} else {
			u.head = -1
		}
	}
	e := &u.tlb[i]
	e.key, e.pa = key, pa
	e.prev = -1
	e.next = u.head
	if u.head >= 0 {
		u.tlb[u.head].prev = i
	}
	u.head = i
	if u.tail < 0 {
		u.tail = i
	}
	u.index[key] = i
}

// InvalidateAll flushes the IO-TLB.
func (u *IOMMU) InvalidateAll() {
	u.tlb = u.tlb[:0]
	clear(u.index)
	u.head, u.tail = -1, -1
}

// TLBOccupancy returns the number of valid IO-TLB entries.
func (u *IOMMU) TLBOccupancy() int { return len(u.tlb) }

// ResetStats zeroes the counters.
func (u *IOMMU) ResetStats() { u.Hits, u.Misses, u.Faults = 0, 0, 0 }
