// Package iommu models an Intel VT-d style IOMMU interposed between the
// PCIe root complex and the memory system.
//
// Every inbound TLP's DMA address is translated through an IO-TLB; a
// miss occupies one of a small pool of hardware page-table walkers for
// the duration of a multi-level walk. Both parameters are the levers
// behind the paper's §6.5 findings: the windowed benchmark infers 64
// IO-TLB entries (the throughput cliff at a 256 KB window with 4 KB
// pages) and a ~330 ns walk cost, and the sharp 64 B-read bandwidth drop
// beyond the cliff is reproduced by walker-pool serialization, not by a
// hard-coded curve.
//
// Superpage support (2 MB / 1 GB) mirrors the hardware: one IO-TLB entry
// then covers the whole superpage, which is why the paper recommends
// co-locating DMA buffers in superpages. The paper's experiments disable
// it (`sp_off`) to force 4 KB granularity; that choice is made by the
// driver layer (internal/hostif) when it maps the buffer.
package iommu

import (
	"errors"
	"fmt"

	"pciebench/internal/sim"
)

// Page sizes supported by the translation structures.
const (
	Page4K = 4 << 10
	Page2M = 2 << 20
	Page1G = 1 << 30
)

// Config shapes the IOMMU.
type Config struct {
	// TLBEntries is the IO-TLB capacity (fully associative, LRU). The
	// paper infers 64 for the Intel implementations it measures.
	TLBEntries int
	// WalkLatency is the full page-table walk cost on a TLB miss
	// (~330 ns inferred in §6.5).
	WalkLatency sim.Time
	// Walkers is the number of concurrent hardware page walkers; misses
	// beyond this serialize. This bounds translation throughput at
	// Walkers/WalkLatency.
	Walkers int
	// HitLatency is the (small) cost of a TLB hit lookup.
	HitLatency sim.Time
}

// DefaultConfig returns the calibration used for the paper's Intel
// systems.
func DefaultConfig() Config {
	return Config{
		TLBEntries:  64,
		WalkLatency: 330 * sim.Nanosecond,
		Walkers:     6,
		HitLatency:  0,
	}
}

// Translation errors.
var (
	ErrUnmapped   = errors.New("iommu: address not mapped (DMA fault)")
	ErrOverlap    = errors.New("iommu: mapping overlaps an existing one")
	ErrBadPage    = errors.New("iommu: page size must be 4K, 2M or 1G")
	ErrMisaligned = errors.New("iommu: mapping addresses must be page aligned")
)

type mapping struct {
	iova, pa uint64
	size     uint64
	pageSize uint64
}

type tlbEntry struct {
	pageBase uint64 // IOVA base of the covering page
	pageSize uint64
	pa       uint64 // PA base of the covering page
	use      uint64
}

// IOMMU is a single translation unit with its IO-TLB and walker pool.
type IOMMU struct {
	cfg     Config
	walkers *sim.MultiServer
	tlb     []tlbEntry
	clock   uint64
	maps    []mapping

	// Statistics.
	Hits   uint64
	Misses uint64
	Faults uint64
}

// New builds an IOMMU bound to kernel k (the walker pool shares its
// virtual clock).
func New(k *sim.Kernel, cfg Config) *IOMMU {
	if cfg.TLBEntries < 1 {
		cfg.TLBEntries = 1
	}
	if cfg.Walkers < 1 {
		cfg.Walkers = 1
	}
	return &IOMMU{
		cfg:     cfg,
		walkers: sim.NewMultiServer(k, cfg.Walkers),
	}
}

// Config returns the configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// Map installs a translation of size bytes from IOVA to PA with the
// given page granularity. All addresses must be aligned to pageSize and
// size a multiple of it; the range must not overlap existing mappings.
func (u *IOMMU) Map(iova, pa uint64, size int, pageSize int) error {
	ps := uint64(pageSize)
	if pageSize != Page4K && pageSize != Page2M && pageSize != Page1G {
		return ErrBadPage
	}
	if iova%ps != 0 || pa%ps != 0 || uint64(size)%ps != 0 {
		return ErrMisaligned
	}
	for _, m := range u.maps {
		if iova < m.iova+m.size && m.iova < iova+uint64(size) {
			return ErrOverlap
		}
	}
	u.maps = append(u.maps, mapping{iova: iova, pa: pa, size: uint64(size), pageSize: ps})
	return nil
}

// Unmap removes the mapping starting at iova and flushes the IO-TLB (as
// the kernel's unmap path does with an invalidation).
func (u *IOMMU) Unmap(iova uint64) error {
	for i, m := range u.maps {
		if m.iova == iova {
			u.maps = append(u.maps[:i], u.maps[i+1:]...)
			u.InvalidateAll()
			return nil
		}
	}
	return fmt.Errorf("%w: iova %#x", ErrUnmapped, iova)
}

// lookupMapping finds the mapping covering iova.
func (u *IOMMU) lookupMapping(iova uint64) (mapping, bool) {
	for _, m := range u.maps {
		if iova >= m.iova && iova < m.iova+m.size {
			return m, true
		}
	}
	return mapping{}, false
}

// Result describes one translation.
type Result struct {
	PA    uint64
	Ready sim.Time // when the translated request may proceed
	Hit   bool
}

// Translate resolves iova at virtual time at. On an IO-TLB hit the
// request proceeds after HitLatency. On a miss a page walker is occupied
// for WalkLatency (queueing behind other misses when every walker is
// busy) and the translation is installed in the IO-TLB, evicting the
// LRU entry.
func (u *IOMMU) Translate(at sim.Time, iova uint64) (Result, error) {
	m, ok := u.lookupMapping(iova)
	if !ok {
		u.Faults++
		return Result{}, fmt.Errorf("%w: iova %#x", ErrUnmapped, iova)
	}
	pageBase := iova / m.pageSize * m.pageSize
	pa := m.pa + (iova - m.iova)
	u.clock++
	for i := range u.tlb {
		e := &u.tlb[i]
		if e.pageSize == m.pageSize && e.pageBase == pageBase {
			e.use = u.clock
			u.Hits++
			return Result{PA: pa, Ready: at + u.cfg.HitLatency, Hit: true}, nil
		}
	}
	u.Misses++
	ready := u.walkers.ScheduleAt(at, u.cfg.WalkLatency)
	u.install(tlbEntry{
		pageBase: pageBase,
		pageSize: m.pageSize,
		pa:       m.pa + (pageBase - m.iova),
		use:      u.clock,
	})
	return Result{PA: pa, Ready: ready, Hit: false}, nil
}

// install inserts a TLB entry, evicting the LRU entry when full.
func (u *IOMMU) install(e tlbEntry) {
	if len(u.tlb) < u.cfg.TLBEntries {
		u.tlb = append(u.tlb, e)
		return
	}
	victim := 0
	for i := range u.tlb {
		if u.tlb[i].use < u.tlb[victim].use {
			victim = i
		}
	}
	u.tlb[victim] = e
}

// InvalidateAll flushes the IO-TLB.
func (u *IOMMU) InvalidateAll() { u.tlb = u.tlb[:0] }

// TLBOccupancy returns the number of valid IO-TLB entries.
func (u *IOMMU) TLBOccupancy() int { return len(u.tlb) }

// ResetStats zeroes the counters.
func (u *IOMMU) ResetStats() { u.Hits, u.Misses, u.Faults = 0, 0, 0 }
