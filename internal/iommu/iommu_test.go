package iommu

import (
	"errors"
	"testing"

	"pciebench/internal/sim"
)

func newTestIOMMU(entries, walkers int) (*sim.Kernel, *IOMMU) {
	k := sim.New(1)
	u := New(k, Config{
		TLBEntries:  entries,
		WalkLatency: 330 * sim.Nanosecond,
		Walkers:     walkers,
	})
	return k, u
}

func TestMapValidation(t *testing.T) {
	_, u := newTestIOMMU(4, 1)
	if err := u.Map(0, 0, Page4K, 1000); err != ErrBadPage {
		t.Errorf("bad page size: %v", err)
	}
	if err := u.Map(100, 0, Page4K, Page4K); err != ErrMisaligned {
		t.Errorf("misaligned iova: %v", err)
	}
	if err := u.Map(0, 100, Page4K, Page4K); err != ErrMisaligned {
		t.Errorf("misaligned pa: %v", err)
	}
	if err := u.Map(0, 0, Page4K+1, Page4K); err != ErrMisaligned {
		t.Errorf("unaligned size: %v", err)
	}
	if err := u.Map(0, 1<<20, 4*Page4K, Page4K); err != nil {
		t.Fatalf("good map: %v", err)
	}
	if err := u.Map(2*Page4K, 1<<21, 4*Page4K, Page4K); err != ErrOverlap {
		t.Errorf("overlap: %v", err)
	}
}

func TestTranslateFault(t *testing.T) {
	_, u := newTestIOMMU(4, 1)
	_, err := u.Translate(0, 0x1000)
	if !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped translate: %v", err)
	}
	if u.Faults != 1 {
		t.Errorf("Faults = %d", u.Faults)
	}
}

func TestTranslateHitMiss(t *testing.T) {
	_, u := newTestIOMMU(4, 1)
	if err := u.Map(0x10000, 0x50000, 16*Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	// First access: miss, pays a walk.
	r, err := u.Translate(0, 0x10040)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit {
		t.Error("first access hit")
	}
	if r.PA != 0x50040 {
		t.Errorf("PA = %#x, want 0x50040", r.PA)
	}
	if r.Ready != 330*sim.Nanosecond {
		t.Errorf("Ready = %v, want 330ns", r.Ready)
	}
	// Second access, same page: hit, no delay.
	r, err = u.Translate(400*sim.Nanosecond, 0x10080)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Error("same-page access missed")
	}
	if r.Ready != 400*sim.Nanosecond {
		t.Errorf("hit Ready = %v", r.Ready)
	}
	// Different page: miss again.
	r, _ = u.Translate(400*sim.Nanosecond, 0x12000)
	if r.Hit {
		t.Error("new page hit")
	}
}

func TestTLBCapacityLRU(t *testing.T) {
	_, u := newTestIOMMU(2, 8)
	if err := u.Map(0, 0x100000, 16*Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	u.Translate(0, 0)        // page 0 -> miss
	u.Translate(0, Page4K)   // page 1 -> miss
	u.Translate(0, 0)        // page 0 -> hit (refreshes LRU)
	u.Translate(0, 2*Page4K) // page 2 -> miss, evicts page 1
	if u.TLBOccupancy() != 2 {
		t.Errorf("occupancy = %d, want 2", u.TLBOccupancy())
	}
	r, _ := u.Translate(0, 0)
	if !r.Hit {
		t.Error("page 0 evicted (should have been protected by LRU refresh)")
	}
	r, _ = u.Translate(0, Page4K)
	if r.Hit {
		t.Error("page 1 survived eviction")
	}
}

func TestSuperpageCoverage(t *testing.T) {
	_, u := newTestIOMMU(2, 1)
	if err := u.Map(0, 1<<31, Page2M, Page2M); err != nil {
		t.Fatal(err)
	}
	u.Translate(0, 0) // miss loads the whole 2MB page
	hits := 0
	for off := uint64(Page4K); off < Page2M; off += 64 * Page4K {
		r, err := u.Translate(0, off)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hit {
			hits++
		}
	}
	if u.Misses != 1 {
		t.Errorf("misses = %d, want 1 (superpage covers all)", u.Misses)
	}
	if hits == 0 {
		t.Error("no hits within the superpage")
	}
}

func TestWalkerPoolSerializesMisses(t *testing.T) {
	// One walker: two concurrent misses serialize; the second is ready
	// only after 2 x 330ns.
	_, u := newTestIOMMU(64, 1)
	if err := u.Map(0, 0, 16*Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	r1, _ := u.Translate(0, 0)
	r2, _ := u.Translate(0, Page4K)
	if r1.Ready != 330*sim.Nanosecond {
		t.Errorf("first walk ready at %v", r1.Ready)
	}
	if r2.Ready != 660*sim.Nanosecond {
		t.Errorf("second walk ready at %v, want 660ns (serialized)", r2.Ready)
	}

	// Six walkers: six concurrent misses all finish together.
	_, u6 := newTestIOMMU(64, 6)
	if err := u6.Map(0, 0, 16*Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	var worst sim.Time
	for i := 0; i < 6; i++ {
		r, _ := u6.Translate(0, uint64(i)*Page4K)
		if r.Ready > worst {
			worst = r.Ready
		}
	}
	if worst != 330*sim.Nanosecond {
		t.Errorf("6 misses on 6 walkers: worst ready %v, want 330ns", worst)
	}
}

// The paper's §6.5 inference: with 64 IO-TLB entries and 4KB pages, a
// working set of <= 256KB translates with ~100% hits in steady state; a
// larger working set misses persistently.
func TestTLBReachCliff(t *testing.T) {
	_, u := newTestIOMMU(64, 6)
	window := 4 << 20 // 4MB mapped
	if err := u.Map(0, 0, window, Page4K); err != nil {
		t.Fatal(err)
	}

	measure := func(pages int) float64 {
		u.InvalidateAll()
		u.ResetStats()
		// Two sequential passes; first warms the TLB.
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < pages; p++ {
				if _, err := u.Translate(0, uint64(p)*Page4K); err != nil {
					t.Fatal(err)
				}
			}
		}
		return float64(u.Hits) / float64(u.Hits+u.Misses)
	}

	if hr := measure(64); hr < 0.49 {
		t.Errorf("64-page working set hit rate = %.2f, want ~0.5 (all second-pass hits)", hr)
	}
	if hr := measure(128); hr > 0.01 {
		t.Errorf("128-page working set hit rate = %.2f, want ~0 (sequential sweep defeats LRU)", hr)
	}
}

func TestUnmapFlushes(t *testing.T) {
	_, u := newTestIOMMU(8, 1)
	if err := u.Map(0, 0, Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	u.Translate(0, 0)
	if u.TLBOccupancy() != 1 {
		t.Fatal("entry not installed")
	}
	if err := u.Unmap(0); err != nil {
		t.Fatal(err)
	}
	if u.TLBOccupancy() != 0 {
		t.Error("unmap did not invalidate")
	}
	if _, err := u.Translate(0, 0); !errors.Is(err, ErrUnmapped) {
		t.Errorf("translate after unmap: %v", err)
	}
	if err := u.Unmap(0x9000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmap missing: %v", err)
	}
}

func TestConfigClamping(t *testing.T) {
	k := sim.New(1)
	u := New(k, Config{TLBEntries: 0, Walkers: 0})
	if u.Config().TLBEntries != 1 || u.Config().Walkers != 1 {
		t.Errorf("clamping failed: %+v", u.Config())
	}
}

// Mappings installed out of IOVA order must resolve exactly like
// in-order installs: Map keeps the table sorted for the binary search.
func TestMapOutOfOrderLookup(t *testing.T) {
	_, u := newTestIOMMU(8, 1)
	regions := []struct{ iova, pa uint64 }{
		{0x40000, 0x940000}, {0x10000, 0x910000}, {0x30000, 0x930000}, {0x20000, 0x920000},
	}
	for _, r := range regions {
		if err := u.Map(r.iova, r.pa, 4*Page4K, Page4K); err != nil {
			t.Fatalf("map %#x: %v", r.iova, err)
		}
	}
	for _, r := range regions {
		res, err := u.Translate(0, r.iova+0x1040)
		if err != nil {
			t.Fatalf("translate %#x: %v", r.iova, err)
		}
		if want := r.pa + 0x1040; res.PA != want {
			t.Errorf("PA for %#x = %#x, want %#x", r.iova, res.PA, want)
		}
	}
	// Gaps between the regions still fault.
	if _, err := u.Translate(0, 0x10000+4*Page4K); !errors.Is(err, ErrUnmapped) {
		t.Errorf("gap translate: %v", err)
	}
	// Overlaps are rejected against sorted neighbors on both sides.
	if err := u.Map(0x0f000, 0, 2*Page4K, Page4K); err != ErrOverlap {
		t.Errorf("left-overlap: %v", err)
	}
	if err := u.Map(0x33000, 0, Page4K, Page4K); err != ErrOverlap {
		t.Errorf("inside-overlap: %v", err)
	}
}

func TestUnmapMiddleKeepsNeighbors(t *testing.T) {
	_, u := newTestIOMMU(8, 1)
	for _, iova := range []uint64{0x10000, 0x20000, 0x30000} {
		if err := u.Map(iova, iova+0x900000, 4*Page4K, Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Unmap(0x20000); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(0, 0x20000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped middle still translates: %v", err)
	}
	for _, iova := range []uint64{0x10000, 0x30000} {
		if _, err := u.Translate(0, iova); err != nil {
			t.Errorf("neighbor %#x lost: %v", iova, err)
		}
	}
}

// Translate is on every DMA's critical path; both the hit path (index
// lookup + LRU touch) and the steady-state miss path (binary search,
// walker reservation, tail eviction + reinstall) must not allocate.
// BenchmarkIOMMUTranslate reports the same property; this fails CI.
func TestTranslateZeroAlloc(t *testing.T) {
	_, u := newTestIOMMU(64, 6)
	window := 16 << 20
	if err := u.Map(0, 1<<30, window, Page4K); err != nil {
		t.Fatal(err)
	}
	var iova uint64
	hits := testing.AllocsPerRun(1000, func() {
		if _, err := u.Translate(0, iova%uint64(64*Page4K)); err != nil {
			t.Fatal(err)
		}
		iova += 64
	})
	if hits != 0 {
		t.Errorf("hit path allocates %.1f/op, want 0", hits)
	}
	misses := testing.AllocsPerRun(1000, func() {
		if _, err := u.Translate(0, iova); err != nil {
			t.Fatal(err)
		}
		iova += Page4K // new page every access: all misses, all evictions
	})
	if misses != 0 {
		t.Errorf("miss path allocates %.1f/op, want 0", misses)
	}
}

func TestResetStats(t *testing.T) {
	_, u := newTestIOMMU(4, 1)
	u.Map(0, 0, Page4K, Page4K)
	u.Translate(0, 0)
	u.Translate(0, 0x100000) // fault
	u.ResetStats()
	if u.Hits != 0 || u.Misses != 0 || u.Faults != 0 {
		t.Error("stats not reset")
	}
}

// Walker throughput cap: n misses through w walkers finish no earlier
// than ceil(n/w) * walkLatency — the Fig 9 bandwidth mechanism.
func TestWalkerThroughputCap(t *testing.T) {
	_, u := newTestIOMMU(4, 6) // tiny TLB so every access misses
	if err := u.Map(0, 0, 1024*Page4K, Page4K); err != nil {
		t.Fatal(err)
	}
	const n = 60
	var worst sim.Time
	for i := 0; i < n; i++ {
		r, err := u.Translate(0, uint64(i)*Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ready > worst {
			worst = r.Ready
		}
	}
	want := sim.Time(n/6) * 330 * sim.Nanosecond
	if worst != want {
		t.Errorf("60 misses on 6 walkers finish at %v, want %v", worst, want)
	}
}
