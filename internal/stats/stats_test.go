package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 3}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSummaryString(t *testing.T) {
	s, _ := Summarize([]float64{1, 2, 3})
	out := s.String()
	for _, want := range []string{"n=3", "med=2.0", "min=1.0", "max=3.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = float64(i) // 0..100
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}, {-1, 0}, {2, 100},
	} {
		got, err := Quantile(samples, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrNoSamples {
		t.Error("empty quantile should error")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, _ := Quantile([]float64{0, 10}, 0.25)
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		k := int(n%40) + 1
		samples := make([]float64, k)
		for i := range samples {
			samples[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		lo, _ := Quantile(samples, 0)
		hi, _ := Quantile(samples, 1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(samples, q)
			if err != nil || v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 1, 2, 3, 3, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Values) != 4 {
		t.Fatalf("distinct values = %d, want 4", len(c.Values))
	}
	cases := map[float64]float64{
		0.5: 0, 1: 2.0 / 7, 1.5: 2.0 / 7, 2: 3.0 / 7, 3: 6.0 / 7, 10: 1, 99: 1,
	}
	for x, want := range cases {
		if got := c.At(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
	if v := c.InverseAt(0.5); v != 3 {
		t.Errorf("InverseAt(0.5) = %v, want 3", v)
	}
	if v := c.InverseAt(1.0); v != 10 {
		t.Errorf("InverseAt(1.0) = %v, want 10", v)
	}
	if _, err := NewCDF(nil); err != ErrNoSamples {
		t.Error("empty CDF should error")
	}
}

func TestCDFTSV(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2})
	out := c.TSV()
	if !strings.Contains(out, "1.0\t0.500000") || !strings.Contains(out, "2.0\t1.000000") {
		t.Errorf("TSV = %q", out)
	}
}

// Property: a CDF is monotone non-decreasing and ends at 1.
func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		k := int(n%50) + 1
		samples := make([]float64, k)
		for i := range samples {
			samples[i] = math.Floor(rng.Float64() * 20)
		}
		c, err := NewCDF(samples)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := range c.Values {
			if i > 0 && c.Values[i] <= c.Values[i-1] {
				return false
			}
			if c.Cum[i] < prev {
				return false
			}
			prev = c.Cum[i]
		}
		return math.Abs(c.Cum[len(c.Cum)-1]-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{-1, 0, 5, 15, 25, 95, 100, 200}, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (100 and 200)", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 5
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Samples != 8 {
		t.Errorf("Samples = %d", h.Samples)
	}
	if got := h.Mode(); got != 5 {
		t.Errorf("Mode = %v, want 5 (midpoint of bin 0)", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 1); err != ErrNoSamples {
		t.Error("empty histogram")
	}
	if _, err := NewHistogram([]float64{1}, 0, 1, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewHistogram([]float64{1}, 5, 1, 4); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "bw"
	s.Append(64, 30.5)
	s.Append(128, 44.0)
	s.Append(256, 50.1)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.YAt(128); got != 44.0 {
		t.Errorf("YAt(128) = %v", got)
	}
	if got := s.YAt(100); got != 44.0 {
		t.Errorf("YAt(100) = %v (first x >= 100 is 128)", got)
	}
	if got := s.YAt(9999); got != 50.1 {
		t.Errorf("YAt(9999) = %v, want last", got)
	}
	tsv := s.TSV()
	if !strings.HasPrefix(tsv, "# bw\n") || !strings.Contains(tsv, "64\t30.5") {
		t.Errorf("TSV = %q", tsv)
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 1000)
	var w Welford
	for i := range samples {
		samples[i] = rng.NormFloat64()*10 + 500
		w.Add(samples[i])
	}
	s, _ := Summarize(samples)
	if w.N() != s.N {
		t.Errorf("N: %d vs %d", w.N(), s.N)
	}
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Errorf("Mean: %v vs %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.StdDev()-s.StdDev) > 1e-6 {
		t.Errorf("StdDev: %v vs %v", w.StdDev(), s.StdDev)
	}
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Errorf("Min/Max: %v/%v vs %v/%v", w.Min(), w.Max(), s.Min, s.Max)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not zero")
	}
}

// Property: P95 >= Median >= Min for any sample set.
func TestSummaryOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(n uint8) bool {
		k := int(n%100) + 1
		samples := make([]float64, k)
		for i := range samples {
			samples[i] = rng.Float64() * 100
		}
		s, err := Summarize(samples)
		if err != nil {
			return false
		}
		ordered := []float64{s.Min, s.Median, s.P95, s.P99, s.P999, s.Max}
		return sort.Float64sAreSorted(ordered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
