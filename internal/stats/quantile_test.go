package stats

import (
	"math"
	"math/rand"
	"testing"
)

// Property: quantiles are order statistics — any permutation of the
// input yields bit-identical results. This is what makes the workload
// percentile columns stable across completion orderings.
func TestQuantileStabilityUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]Sample, 5000)
	for i := range samples {
		samples[i] = rng.ExpFloat64() * 1000
	}
	qs := []float64{0, 0.5, 0.95, 0.99, 0.999, 1}
	want, err := Quantiles(samples, qs...)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Sample(nil), samples...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := Quantiles(shuffled, qs...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if got[i] != want[i] {
				t.Fatalf("trial %d: q=%v changed under permutation: %v != %v",
					trial, qs[i], got[i], want[i])
			}
		}
	}
	// The input slice itself is never reordered.
	before := samples[17]
	if _, err := Quantiles(samples, 0.5); err != nil {
		t.Fatal(err)
	}
	if samples[17] != before {
		t.Error("Quantiles mutated its input")
	}
}

// Property: quantile values are nondecreasing in q and bounded by the
// sample extremes.
func TestQuantileMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(2000)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 50
		}
		qs := make([]float64, 50)
		for i := range qs {
			qs[i] = float64(i) / float64(len(qs)-1)
		}
		vals, err := Quantiles(samples, qs...)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := Quantile(samples, 0)
		hi, _ := Quantile(samples, 1)
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("trial %d: quantiles not monotone: q=%v -> %v after q=%v -> %v",
					trial, qs[i], vals[i], qs[i-1], vals[i-1])
			}
		}
		if vals[0] != lo || vals[len(vals)-1] != hi {
			t.Fatalf("trial %d: extremes %v..%v, want %v..%v", trial, vals[0], vals[len(vals)-1], lo, hi)
		}
	}
}

// Property: quantiles commute with positive affine maps: Q(a*x+b) =
// a*Q(x)+b. Catches interpolation asymmetries.
func TestQuantileAffineEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]Sample, 999)
	for i := range samples {
		samples[i] = rng.Float64() * 100
	}
	mapped := make([]Sample, len(samples))
	const a, b = 3.5, -20.0
	for i, v := range samples {
		mapped[i] = a*v + b
	}
	qs := []float64{0.1, 0.5, 0.9, 0.99, 0.999}
	base, err := Quantiles(samples, qs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Quantiles(mapped, qs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want := a*base[i] + b
		if math.Abs(got[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("q=%v: %v, want %v", qs[i], got[i], want)
		}
	}
}

// The Summary percentiles the reports quote must agree with the
// Quantiles path exactly.
func TestSummaryMatchesQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([]Sample, 20000)
	for i := range samples {
		samples[i] = rng.ExpFloat64() * 500
	}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Quantiles(samples, 0.5, 0.95, 0.99, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != vals[0] || s.P95 != vals[1] || s.P99 != vals[2] || s.P999 != vals[3] {
		t.Errorf("Summary %v disagrees with Quantiles %v", s, vals)
	}
}

func TestQuantilesErrors(t *testing.T) {
	if _, err := Quantiles(nil, 0.5); err != ErrNoSamples {
		t.Errorf("err = %v", err)
	}
	one, err := Quantiles([]Sample{42}, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range one {
		if v != 42 {
			t.Errorf("single-sample quantiles = %v", one)
		}
	}
}
