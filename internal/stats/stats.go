// Package stats computes the summary statistics, distributions and
// series the pcie-bench control programs report: average, median,
// minimum, maximum and tail percentiles of latency samples, CDFs,
// histograms, and time series (paper §5.4).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrNoSamples is returned when a computation needs at least one sample.
var ErrNoSamples = errors.New("stats: no samples")

// Sample is one latency observation in nanoseconds.
type Sample = float64

// Summary holds the descriptive statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
	P999   float64
	StdDev float64
}

// Summarize computes a Summary over samples. The input slice is not
// modified.
func Summarize(samples []Sample) (Summary, error) {
	var sc Scratch
	return sc.Summarize(samples)
}

// Scratch is a reusable sort buffer for summary and quantile
// computations. The zero value is ready to use; reusing one Scratch
// across calls (per-queue latency summaries, sweep probes) avoids the
// copy-and-sort allocation that Summarize/Quantiles otherwise pay per
// call. A Scratch is not safe for concurrent use.
type Scratch struct {
	buf []float64
}

// sorted copies samples into the scratch buffer and sorts it.
func (sc *Scratch) sorted(samples []Sample) []float64 {
	if cap(sc.buf) < len(samples) {
		sc.buf = make([]float64, len(samples))
	}
	s := sc.buf[:len(samples)]
	copy(s, samples)
	sort.Float64s(s)
	return s
}

// Summarize computes a Summary over samples using the scratch buffer.
// The input slice is not modified. Results are identical to the
// package-level Summarize.
func (sc *Scratch) Summarize(samples []Sample) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, ErrNoSamples
	}
	sorted := sc.sorted(samples)
	var sum, sumsq float64
	for _, v := range sorted {
		sum += v
		sumsq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantileSorted(sorted, 0.5),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
		P999:   quantileSorted(sorted, 0.999),
		StdDev: math.Sqrt(variance),
	}, nil
}

// Quantiles computes several quantiles of samples into dst (grown as
// needed) using the scratch buffer, with the same interpolation as the
// package-level Quantiles. The input slice is not modified.
func (sc *Scratch) Quantiles(dst []float64, samples []Sample, qs ...float64) ([]float64, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	sorted := sc.sorted(samples)
	dst = dst[:0]
	for _, q := range qs {
		dst = append(dst, quantileSorted(sorted, q))
	}
	return dst, nil
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f med=%.1f p95=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		s.N, s.Mean, s.Min, s.Median, s.P95, s.P99, s.P999, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of samples using linear
// interpolation between order statistics.
func Quantile(samples []Sample, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Quantiles returns several quantiles of samples in one pass — the
// input is copied and sorted once, then each quantile is extracted
// with the same interpolation as Quantile. It is the multi-percentile
// counterpart of Quantile for callers that need an arbitrary set;
// Summarize's fixed p50/p95/p99/p99.9 columns are built from the same
// interpolation, and the tests pin the two paths to agree exactly.
func Quantiles(samples []Sample, qs ...float64) ([]float64, error) {
	var sc Scratch
	return sc.Quantiles(make([]float64, 0, len(qs)), samples, qs...)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Values are the sorted distinct sample values.
	Values []float64
	// Cum[i] is the fraction of samples <= Values[i].
	Cum []float64
}

// NewCDF builds the empirical CDF of samples.
func NewCDF(samples []Sample) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	c := &CDF{}
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to their final (highest)
		// cumulative fraction.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		c.Values = append(c.Values, sorted[i])
		c.Cum = append(c.Cum, float64(i+1)/n)
	}
	return c, nil
}

// At returns the CDF evaluated at x: the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.Values, x)
	if i < len(c.Values) && c.Values[i] == x {
		return c.Cum[i]
	}
	if i == 0 {
		return 0
	}
	return c.Cum[i-1]
}

// InverseAt returns the smallest sample value v with CDF(v) >= p.
func (c *CDF) InverseAt(p float64) float64 {
	i := sort.SearchFloat64s(c.Cum, p)
	if i >= len(c.Values) {
		return c.Values[len(c.Values)-1]
	}
	return c.Values[i]
}

// TSV renders the CDF as two tab-separated columns (value, fraction).
func (c *CDF) TSV() string {
	var b strings.Builder
	for i := range c.Values {
		fmt.Fprintf(&b, "%.1f\t%.6f\n", c.Values[i], c.Cum[i])
	}
	return b.String()
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi  float64 // bounds of the binned range
	Width   float64
	Counts  []int
	Under   int // samples below Lo
	Over    int // samples at or above Hi
	Samples int
}

// NewHistogram builds a histogram of samples with the given number of
// equal-width bins over [lo, hi).
func NewHistogram(samples []Sample, lo, hi float64, bins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if bins < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: bad histogram shape [%v,%v)/%d", lo, hi, bins)
	}
	h := &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
	for _, v := range samples {
		h.Samples++
		switch {
		case v < lo:
			h.Under++
		case v >= hi:
			h.Over++
		default:
			idx := int((v - lo) / h.Width)
			if idx >= bins {
				idx = bins - 1
			}
			h.Counts[idx]++
		}
	}
	return h, nil
}

// Mode returns the midpoint of the fullest bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Lo + (float64(best)+0.5)*h.Width
}

// Series is an (x, y) data series, e.g. bandwidth against transfer size,
// rendered as TSV for plotting.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// TSV renders the series as tab-separated x/y rows with a header line.
func (s *Series) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%g\t%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// YAt returns the y value at the first x >= want, or the last y. Series
// X values must be ascending.
func (s *Series) YAt(want float64) float64 {
	for i, x := range s.X {
		if x >= want {
			return s.Y[i]
		}
	}
	return s.Y[len(s.Y)-1]
}

// Welford is a streaming mean/variance accumulator for cases where
// retaining every sample is wasteful (bandwidth runs with millions of
// transactions).
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
