package bench

import (
	"errors"
	"fmt"

	"pciebench/internal/device"
	"pciebench/internal/sim"
	"pciebench/internal/stats"
)

// EndpointBandwidth is one endpoint's share of a concurrent
// multi-endpoint bandwidth run.
type EndpointBandwidth struct {
	// Endpoint indexes the target the traffic ran on.
	Endpoint int
	// Gbps is the endpoint's per-direction payload throughput over its
	// own measurement span.
	Gbps float64
	// TxnPerSec is the endpoint's DMA completion rate.
	TxnPerSec float64
	// Latency summarizes the endpoint's per-DMA completion latency in
	// ns (submission to device-visible completion, quantized to the
	// device counter) — the host-interface queueing that shared-uplink
	// contention inflates.
	Latency stats.Summary
}

// MultiEndpointResult is the outcome of a concurrent multi-endpoint
// bandwidth benchmark: every endpoint saturates its engine at once, so
// their traffic contends for whatever the topology shares.
type MultiEndpointResult struct {
	Name   string
	Params Params
	// AggregateGbps sums the endpoints' per-direction throughput.
	AggregateGbps float64
	// Latency summarizes per-DMA completion latency across all
	// endpoints.
	Latency stats.Summary
	// Endpoints holds the per-endpoint breakdown.
	Endpoints []EndpointBandwidth
}

// BwRdMulti runs BW_RD on every target concurrently (one shared
// kernel) and reports aggregate plus per-endpoint results.
func BwRdMulti(ts []*Target, p Params) (*MultiEndpointResult, error) {
	return runBandwidthMulti(ts, p, bwRd)
}

// BwWrMulti is the concurrent multi-endpoint BW_WR.
func BwWrMulti(ts []*Target, p Params) (*MultiEndpointResult, error) {
	return runBandwidthMulti(ts, p, bwWr)
}

// BwRdWrMulti is the concurrent multi-endpoint BW_RDWR.
func BwRdWrMulti(ts []*Target, p Params) (*MultiEndpointResult, error) {
	return runBandwidthMulti(ts, p, bwRdWr)
}

// epRun is one endpoint's bookkeeping inside runBandwidthMulti.
type epRun struct {
	t           *Target
	gen         *addrGen
	issued      int
	completed   int
	measureFrom sim.Time
	measureTo   sim.Time
	lat         []float64
	submit      func()
}

// runBandwidthMulti drives every target's engine saturated at once.
// All targets must share one simulation kernel (one Fabric). Each
// endpoint issues warmup plus p.Transactions DMAs; its bandwidth is
// measured over its own steady-state span, and per-DMA latency samples
// feed the percentile summaries.
func runBandwidthMulti(ts []*Target, p Params, kind bwKind) (*MultiEndpointResult, error) {
	if len(ts) == 0 {
		return nil, errors.New("bench: no targets")
	}
	k := ts[0].Engine.Kernel()
	for i, t := range ts {
		if t.Engine.Kernel() != k {
			return nil, fmt.Errorf("bench: target %d is on a different kernel; multi-endpoint runs need one fabric", i)
		}
		if err := p.Validate(t.Buffer.Size); err != nil {
			return nil, err
		}
	}
	// One shared memory system: thrash once, then establish the cache
	// state per endpoint window.
	ts[0].Host.Thrash()
	for _, t := range ts {
		switch p.Cache {
		case HostWarm:
			t.Buffer.WarmHost(0, p.WindowSize)
		case DeviceWarm:
			t.Buffer.WarmDevice(0, p.WindowSize)
		}
	}

	warm := p.warmup()
	if kind != bwRd && p.Cache == Cold {
		warm = p.warmupWrites()
	}
	total := warm + p.Transactions
	name := map[bwKind]string{bwRd: "BW_RD", bwWr: "BW_WR", bwRdWr: "BW_RDWR"}[kind]

	var rerr error
	eps := make([]*epRun, len(ts))
	for i, t := range ts {
		ep := &epRun{t: t, gen: newAddrGen(t, p), lat: make([]float64, 0, p.Transactions)}
		eps[i] = ep
		onDone := func(c device.Completion) {
			if c.Err != nil && rerr == nil {
				rerr = c.Err
			}
			ep.completed++
			if ep.completed > warm && ep.completed <= total {
				ep.lat = append(ep.lat, ep.t.Engine.Quantize(c.Done-c.Submitted).Nanoseconds())
			}
			if ep.completed == warm {
				ep.measureFrom = k.Now()
			}
			if ep.completed == total {
				ep.measureTo = k.Now()
			}
			ep.submit()
		}
		ep.submit = func() {
			if ep.issued >= total || rerr != nil {
				return
			}
			i := ep.issued
			ep.issued++
			write := kind == bwWr || (kind == bwRdWr && i%2 == 1)
			ep.t.Engine.Submit(device.Op{
				Write:  write,
				DMA:    ep.gen.next(),
				Size:   p.TransferSize,
				OnDone: onDone,
			})
		}
	}
	// Prime round-robin across endpoints so no endpoint gets a head
	// start on the shared resources.
	k.After(0, func() {
		burst := 2 * ts[0].Engine.Config().MaxInFlight
		if burst > total {
			burst = total
		}
		for b := 0; b < burst; b++ {
			for _, ep := range eps {
				ep.submit()
			}
		}
	})
	k.Run()
	if rerr != nil {
		return nil, rerr
	}

	res := &MultiEndpointResult{Name: name, Params: p}
	var scratch stats.Scratch
	var all []float64
	for i, ep := range eps {
		if ep.measureTo <= ep.measureFrom {
			return nil, fmt.Errorf("bench: endpoint %d: degenerate measurement span", i)
		}
		elapsed := ep.measureTo - ep.measureFrom
		bytesMoved := float64(p.Transactions) * float64(p.TransferSize)
		if kind == bwRdWr {
			bytesMoved /= 2 // per-direction accounting (§6.1 reporting)
		}
		eb := EndpointBandwidth{
			Endpoint:  i,
			Gbps:      bytesMoved * 8 / elapsed.Seconds() / 1e9,
			TxnPerSec: float64(p.Transactions) / elapsed.Seconds(),
		}
		eb.Latency, _ = scratch.Summarize(ep.lat)
		all = append(all, ep.lat...)
		res.AggregateGbps += eb.Gbps
		res.Endpoints = append(res.Endpoints, eb)
	}
	res.Latency, _ = scratch.Summarize(all)
	return res, nil
}
