// Package bench implements the pcie-bench methodology of paper §4: a
// family of micro-benchmarks that issue individual PCIe operations from
// a (simulated) device to a host buffer while carefully controlling the
// parameters that affect performance — window size, transfer size,
// offset within a cache line, access pattern, cache state and NUMA
// locality.
//
// Benchmark names follow the paper: LAT_RD and LAT_WRRD measure
// latency; BW_RD, BW_WR and BW_RDWR measure bandwidth.
package bench

import (
	"errors"
	"fmt"

	"pciebench/internal/device"
	"pciebench/internal/hostif"
	"pciebench/internal/pcie"
	"pciebench/internal/sim"
	"pciebench/internal/stats"
)

// Pattern selects how units inside the window are visited (§4).
type Pattern int

// Access patterns.
const (
	Random Pattern = iota
	Sequential
)

// String names the pattern.
func (p Pattern) String() string {
	if p == Sequential {
		return "seq"
	}
	return "rand"
}

// CacheState selects the LLC state established before a run (§4).
type CacheState int

// Cache states.
const (
	Cold       CacheState = iota // caches thrashed
	HostWarm                     // window written by the CPU
	DeviceWarm                   // window written via DMA (DDIO path)
)

// String names the cache state.
func (c CacheState) String() string {
	switch c {
	case HostWarm:
		return "warm"
	case DeviceWarm:
		return "devwarm"
	}
	return "cold"
}

// Params configures one micro-benchmark run.
type Params struct {
	// WindowSize is the portion of the host buffer accessed repeatedly.
	WindowSize int
	// TransferSize is the bytes moved per DMA.
	TransferSize int
	// Offset shifts each access from its unit's cache-line start,
	// exposing unaligned-access penalties.
	Offset int
	// Pattern is the unit visit order.
	Pattern Pattern
	// Cache is the LLC state established before the run.
	Cache CacheState
	// Transactions is the number of measured DMAs.
	Transactions int
	// Warmup DMAs run before measurement (0 = Transactions/20, capped
	// at 2000). Warmup fills the DMA pipeline and the IO-TLB the same
	// way the paper's long runs reach steady state.
	Warmup int
	// Direct selects the device's low-latency command interface where
	// available (NFP, transfers <= 128B).
	Direct bool
	// Gap is the device-thread overhead between latency-test
	// transactions (address computation, journaling).
	Gap sim.Time
}

// UnitSize returns the footprint of one access unit: offset plus
// transfer size, rounded up to a whole number of cache lines (§4).
func (p Params) UnitSize() int {
	u := p.Offset + p.TransferSize
	return (u + pcie.CacheLineSize - 1) / pcie.CacheLineSize * pcie.CacheLineSize
}

// Units returns how many units fit in the window.
func (p Params) Units() int {
	u := p.UnitSize()
	if u == 0 {
		return 0
	}
	return p.WindowSize / u
}

// Parameter errors.
var (
	ErrWindowTooSmall = errors.New("bench: window smaller than one unit")
	ErrBufferTooSmall = errors.New("bench: window larger than the host buffer")
	ErrNoTransactions = errors.New("bench: transaction count must be positive")
	ErrBadTransfer    = errors.New("bench: transfer size must be positive")
)

// Validate checks p against a buffer of bufSize bytes.
func (p Params) Validate(bufSize int) error {
	if p.TransferSize <= 0 {
		return ErrBadTransfer
	}
	if p.Offset < 0 || p.Offset >= pcie.CacheLineSize {
		return fmt.Errorf("bench: offset %d out of [0,64)", p.Offset)
	}
	if p.Transactions <= 0 {
		return ErrNoTransactions
	}
	if p.Units() < 1 {
		return ErrWindowTooSmall
	}
	if p.WindowSize > bufSize {
		return ErrBufferTooSmall
	}
	return nil
}

func (p Params) warmup() int {
	if p.Warmup > 0 {
		return p.Warmup
	}
	w := p.Transactions / 20
	if w > 2000 {
		w = 2000
	}
	if w < 16 {
		w = 16
	}
	return w
}

// warmupWrites returns the warmup for benchmarks whose DMAs write the
// window. The paper runs millions of transactions per point, so the
// device writes themselves drive the DDIO region to steady state;
// shorter runs must replay that by touching most units before
// measuring (3x the unit count reaches ~95% coverage under random
// access), or a cold small window would measure first-touch misses the
// hardware would not see in steady state.
func (p Params) warmupWrites() int {
	if p.Warmup > 0 {
		return p.Warmup
	}
	w := 3 * p.Units()
	const maxWarm = 60000
	if w > maxWarm {
		w = maxWarm
	}
	if base := p.warmup(); w < base {
		w = base
	}
	return w
}

// String summarizes the parameters in pcie-bench's reporting style.
func (p Params) String() string {
	return fmt.Sprintf("win=%d xfer=%d off=%d %s %s n=%d",
		p.WindowSize, p.TransferSize, p.Offset, p.Pattern, p.Cache, p.Transactions)
}

// Target bundles the assembled system a benchmark runs against.
type Target struct {
	Host   *hostif.Host
	Engine *device.Engine
	Buffer *hostif.Buffer
}

// prepare validates parameters and establishes the cache state.
func (t *Target) prepare(p Params) error {
	if err := p.Validate(t.Buffer.Size); err != nil {
		return err
	}
	t.Host.Thrash()
	switch p.Cache {
	case HostWarm:
		t.Buffer.WarmHost(0, p.WindowSize)
	case DeviceWarm:
		t.Buffer.WarmDevice(0, p.WindowSize)
	}
	return nil
}

// addrGen yields the DMA address of transaction i.
type addrGen struct {
	t     *Target
	p     Params
	units int
	unit  int
}

func newAddrGen(t *Target, p Params) *addrGen {
	return &addrGen{t: t, p: p, units: p.Units()}
}

// next returns the DMA address for the next transaction.
func (g *addrGen) next() uint64 {
	var u int
	if g.p.Pattern == Sequential {
		u = g.unit
		g.unit = (g.unit + 1) % g.units
	} else {
		u = g.t.Engine.Kernel().Rand().Intn(g.units)
	}
	return g.t.Buffer.DMAAddr(u*g.p.UnitSize() + g.p.Offset)
}

// LatencyResult is the outcome of a latency benchmark.
type LatencyResult struct {
	Name    string
	Params  Params
	Samples []float64 // nanoseconds, quantized to the device counter
	Summary stats.Summary
}

// CDF returns the empirical CDF of the samples.
func (r *LatencyResult) CDF() (*stats.CDF, error) { return stats.NewCDF(r.Samples) }

// LatRd measures the latency of individual DMA reads (§4.1).
func LatRd(t *Target, p Params) (*LatencyResult, error) {
	return runLatency(t, p, "LAT_RD", false, func(addr uint64) (sim.Time, sim.Time, error) {
		c, ok := t.Engine.SubmitNow(device.Op{DMA: addr, Size: p.TransferSize, Direct: p.Direct})
		if !ok {
			return 0, 0, errors.New("bench: engine busy in latency test")
		}
		return c.Submitted, c.Done, c.Err
	})
}

// LatWrRd measures a DMA write followed by a DMA read of the same
// address; PCIe ordering makes the read wait for the write's memory
// visibility (§4.1). Write latency cannot be measured alone because
// writes are posted.
func LatWrRd(t *Target, p Params) (*LatencyResult, error) {
	return runLatency(t, p, "LAT_WRRD", true, func(addr uint64) (sim.Time, sim.Time, error) {
		w, ok := t.Engine.SubmitNow(device.Op{Write: true, DMA: addr, Size: p.TransferSize, Direct: p.Direct})
		if !ok {
			return 0, 0, errors.New("bench: engine busy in latency test")
		}
		if w.Err != nil {
			return 0, 0, w.Err
		}
		r, ok := t.Engine.SubmitNow(device.Op{
			DMA: addr, Size: p.TransferSize, Direct: p.Direct, OrderAfter: w.MemVisible,
		})
		if !ok {
			return 0, 0, errors.New("bench: engine busy in latency test")
		}
		return w.Submitted, r.Done, r.Err
	})
}

// latRun is the typed-event stepper behind runLatency: each event runs
// one transaction and schedules the next directly at completion plus
// the journaling gap, with no per-transaction closures. (The previous
// closure form scheduled an intermediate event at the completion time
// whose only job was to schedule the next step; collapsing the two
// changes no timestamps, because nothing else fires in the open
// interval between a completion and completion+gap.)
type latRun struct {
	engine *device.Engine
	gen    *addrGen
	op     func(addr uint64) (sim.Time, sim.Time, error)
	res    *LatencyResult
	gap    sim.Time
	warm   int
	total  int
	err    error
}

// Handle runs transaction a and schedules transaction a+1.
func (r *latRun) Handle(k *sim.Kernel, i, _ int64) {
	if int(i) >= r.total || r.err != nil {
		return
	}
	start, done, err := r.op(r.gen.next())
	if err != nil {
		r.err = err
		return
	}
	if int(i) >= r.warm {
		lat := r.engine.Quantize(done - start)
		r.res.Samples = append(r.res.Samples, lat.Nanoseconds())
	}
	k.AtEvent(done+r.gap, r, i+1, 0)
}

// runLatency drives dependent transactions: each starts after the
// previous completes plus the journaling gap, exactly like the paper's
// single-threaded latency firmware.
func runLatency(t *Target, p Params, name string, writes bool, op func(addr uint64) (sim.Time, sim.Time, error)) (*LatencyResult, error) {
	if err := t.prepare(p); err != nil {
		return nil, err
	}
	gap := p.Gap
	if gap == 0 {
		gap = 50 * sim.Nanosecond
	}
	k := t.Engine.Kernel()
	res := &LatencyResult{Name: name, Params: p}
	warm := p.warmup()
	if writes && p.Cache == Cold {
		warm = p.warmupWrites()
	}
	res.Samples = make([]float64, 0, p.Transactions)
	r := &latRun{
		engine: t.Engine,
		gen:    newAddrGen(t, p),
		op:     op,
		res:    res,
		gap:    gap,
		warm:   warm,
		total:  warm + p.Transactions,
	}
	k.AfterEvent(0, r, 0, 0)
	k.Run()
	if r.err != nil {
		return nil, r.err
	}
	s, err := stats.Summarize(res.Samples)
	if err != nil {
		return nil, err
	}
	res.Summary = s
	return res, nil
}

// BandwidthResult is the outcome of a bandwidth benchmark.
type BandwidthResult struct {
	Name   string
	Params Params
	// Gbps is the per-direction payload throughput in Gb/s: for BW_RD
	// and BW_WR all transactions move data one way; for BW_RDWR each
	// direction carries half the transactions.
	Gbps float64
	// TxnPerSec is the DMA completion rate.
	TxnPerSec float64
	// Elapsed is the measured span.
	Elapsed sim.Time
}

type bwKind int

const (
	bwRd bwKind = iota
	bwWr
	bwRdWr
)

// BwRd measures DMA read bandwidth (§4.2).
func BwRd(t *Target, p Params) (*BandwidthResult, error) { return runBandwidth(t, p, bwRd) }

// BwWr measures DMA write bandwidth (§4.2).
func BwWr(t *Target, p Params) (*BandwidthResult, error) { return runBandwidth(t, p, bwWr) }

// BwRdWr measures alternating read/write bandwidth, making MRd TLPs
// compete with MWr TLPs for the device→host direction (§4.2).
func BwRdWr(t *Target, p Params) (*BandwidthResult, error) { return runBandwidth(t, p, bwRdWr) }

// runBandwidth keeps the DMA engine saturated: an initial burst fills
// the in-flight window (the paper uses 96 worker threads on the NFP and
// back-to-back issue on NetFPGA); every completion submits the next
// transaction.
func runBandwidth(t *Target, p Params, kind bwKind) (*BandwidthResult, error) {
	if err := t.prepare(p); err != nil {
		return nil, err
	}
	k := t.Engine.Kernel()
	gen := newAddrGen(t, p)
	warm := p.warmup()
	if kind != bwRd && p.Cache == Cold {
		warm = p.warmupWrites()
	}
	total := warm + p.Transactions

	name := map[bwKind]string{bwRd: "BW_RD", bwWr: "BW_WR", bwRdWr: "BW_RDWR"}[kind]
	var (
		issued      int
		completed   int
		measureFrom sim.Time
		measureTo   sim.Time
		rerr        error
	)

	// submit and onDone are each created once per run and reused for
	// every transaction, so the saturation loop itself allocates
	// nothing per DMA.
	var submit func()
	onDone := func(c device.Completion) {
		if c.Err != nil && rerr == nil {
			rerr = c.Err
		}
		completed++
		if completed == warm {
			measureFrom = k.Now()
		}
		if completed == total {
			measureTo = k.Now()
		}
		submit()
	}
	submit = func() {
		if issued >= total || rerr != nil {
			return
		}
		i := issued
		issued++
		write := kind == bwWr || (kind == bwRdWr && i%2 == 1)
		t.Engine.Submit(device.Op{
			Write:  write,
			DMA:    gen.next(),
			Size:   p.TransferSize,
			OnDone: onDone,
		})
	}
	// Prime the pipeline: the engine queues what it cannot start.
	k.After(0, func() {
		burst := 2 * t.Engine.Config().MaxInFlight
		if burst > total {
			burst = total
		}
		for i := 0; i < burst; i++ {
			submit()
		}
	})
	k.Run()
	if rerr != nil {
		return nil, rerr
	}
	if measureTo <= measureFrom {
		return nil, errors.New("bench: degenerate measurement span")
	}
	elapsed := measureTo - measureFrom
	bytesMoved := float64(p.Transactions) * float64(p.TransferSize)
	if kind == bwRdWr {
		bytesMoved /= 2 // per-direction accounting (§6.1 reporting)
	}
	return &BandwidthResult{
		Name:      name,
		Params:    p,
		Gbps:      bytesMoved * 8 / elapsed.Seconds() / 1e9,
		TxnPerSec: float64(p.Transactions) / elapsed.Seconds(),
		Elapsed:   elapsed,
	}, nil
}
