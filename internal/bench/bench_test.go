package bench

import (
	"testing"

	"pciebench/internal/device"
	"pciebench/internal/device/netfpga"
	"pciebench/internal/device/nfp"
	"pciebench/internal/hostif"
	"pciebench/internal/mem"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

// newTestTarget assembles a Haswell-like host with the chosen device
// config (kept local to avoid an import cycle with sysconf; the
// integration tests in internal/report exercise the sysconf builder).
// It doubles as the TargetFactory for the parallel-suite tests.
func newTestTarget(devCfg device.Config, seed int64) (*Target, error) {
	k := sim.New(seed)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:         2,
		Cache:         mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2},
		LLCLatency:    50 * sim.Nanosecond,
		DRAMLatency:   120 * sim.Nanosecond,
		RemoteLatency: 100 * sim.Nanosecond,
	})
	if err != nil {
		return nil, err
	}
	host := hostif.New(ms, nil)
	complex, err := rc.New(k, rc.Config{
		Link:        pcie.DefaultGen3x8(),
		PipeLatency: 100 * sim.Nanosecond,
		PipeSlots:   24,
		WireDelay:   120 * sim.Nanosecond,
	}, ms, nil, host)
	if err != nil {
		return nil, err
	}
	eng, err := device.New(k, complex, devCfg)
	if err != nil {
		return nil, err
	}
	buf, err := host.Alloc(32<<20, 0, hostif.Chunked4M, 0)
	if err != nil {
		return nil, err
	}
	return &Target{Host: host, Engine: eng, Buffer: buf}, nil
}

// buildTarget is the fatal-on-error convenience wrapper for tests.
func buildTarget(t *testing.T, devCfg device.Config, seed int64) *Target {
	t.Helper()
	tgt, err := newTestTarget(devCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestParamsUnits(t *testing.T) {
	p := Params{WindowSize: 8192, TransferSize: 64}
	if p.UnitSize() != 64 || p.Units() != 128 {
		t.Errorf("unit=%d units=%d", p.UnitSize(), p.Units())
	}
	// Offset pushes the unit to two lines.
	p = Params{WindowSize: 8192, TransferSize: 64, Offset: 8}
	if p.UnitSize() != 128 || p.Units() != 64 {
		t.Errorf("offset unit=%d units=%d", p.UnitSize(), p.Units())
	}
	// 8B transfers still occupy a whole line.
	p = Params{WindowSize: 4096, TransferSize: 8}
	if p.UnitSize() != 64 {
		t.Errorf("8B unit = %d", p.UnitSize())
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{WindowSize: 8192, TransferSize: 64, Transactions: 10}
	if err := good.Validate(1 << 20); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"zero transfer", Params{WindowSize: 8192, Transactions: 1}},
		{"zero transactions", Params{WindowSize: 8192, TransferSize: 64}},
		{"window < unit", Params{WindowSize: 32, TransferSize: 64, Transactions: 1}},
		{"window > buffer", Params{WindowSize: 2 << 20, TransferSize: 64, Transactions: 1}},
		{"bad offset", Params{WindowSize: 8192, TransferSize: 64, Offset: 64, Transactions: 1}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(1 << 20); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestLatRdBasics(t *testing.T) {
	tgt := buildTarget(t, nfp.Config(), 3)
	res, err := LatRd(tgt, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 500 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// Fig 6 anchor: NFP on Haswell, 64B warm reads ~547ns median.
	if res.Summary.Median < 480 || res.Summary.Median > 620 {
		t.Errorf("median = %.1fns, want ~547", res.Summary.Median)
	}
	// Quantization: all samples are multiples of 19.2ns.
	for _, s := range res.Samples[:10] {
		ticks := s / 19.2
		if diff := ticks - float64(int(ticks+0.5)); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sample %.3f not on a 19.2ns grid", s)
		}
	}
}

func TestLatRdWarmVsCold(t *testing.T) {
	run := func(cache CacheState) float64 {
		tgt := buildTarget(t, netfpga.Config(), 5)
		res, err := LatRd(tgt, Params{
			WindowSize: 8 << 10, TransferSize: 64, Cache: cache, Transactions: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Median
	}
	warm, cold := run(HostWarm), run(Cold)
	// §6.3: warm reads are ~70ns cheaper. (4ns quantization grid.)
	if d := cold - warm; d < 60 || d > 80 {
		t.Errorf("cold-warm = %.1fns, want ~70", d)
	}
}

func TestLatWrRdOrdersAfterWrite(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 7)
	wr, err := LatWrRd(tgt, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt2 := buildTarget(t, netfpga.Config(), 7)
	rd, err := LatRd(tgt2, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Summary.Median <= rd.Summary.Median {
		t.Errorf("LAT_WRRD (%.1f) not above LAT_RD (%.1f)", wr.Summary.Median, rd.Summary.Median)
	}
}

func TestSequentialPatternCoversWindow(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 1)
	p := Params{WindowSize: 4096, TransferSize: 64, Pattern: Sequential, Transactions: 64, Warmup: 64}
	if err := tgt.prepare(p); err != nil {
		t.Fatal(err)
	}
	g := newAddrGen(tgt, p)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[g.next()] = true
	}
	if len(seen) != 64 {
		t.Errorf("sequential covered %d units, want 64", len(seen))
	}
	// Wraps around.
	first := tgt.Buffer.DMAAddr(0)
	if got := g.next(); got != first {
		t.Errorf("wrap: got %#x, want %#x", got, first)
	}
}

func TestBwRdCalibration(t *testing.T) {
	// Fig 4a anchor: NFP 64B warm read bandwidth ~30 Gb/s; NetFPGA a
	// few Gb/s higher; both well below the 40G Ethernet reference.
	tgt := buildTarget(t, nfp.Config(), 11)
	res, err := BwRd(tgt, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 24 || res.Gbps > 36 {
		t.Errorf("NFP BW_RD 64B = %.1f Gb/s, want ~30", res.Gbps)
	}

	tgt = buildTarget(t, netfpga.Config(), 11)
	res2, err := BwRd(tgt, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Gbps <= res.Gbps {
		t.Errorf("NetFPGA (%.1f) not above NFP (%.1f) at 64B", res2.Gbps, res.Gbps)
	}
}

func TestBwRdLargeTransfersLinkLimited(t *testing.T) {
	// Fig 4a: at 1024B+ both implementations approach the model's
	// effective read bandwidth (~50 Gb/s).
	tgt := buildTarget(t, netfpga.Config(), 13)
	res, err := BwRd(tgt, Params{
		WindowSize: 64 << 10, TransferSize: 1024, Cache: HostWarm, Transactions: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 45 || res.Gbps > 54 {
		t.Errorf("1024B BW_RD = %.1f Gb/s, want ~50", res.Gbps)
	}
}

func TestBwWrLinkLimited(t *testing.T) {
	// 64B writes: wire cost 88B per 64B payload -> ~42 Gb/s ceiling.
	tgt := buildTarget(t, netfpga.Config(), 17)
	res, err := BwWr(tgt, Params{
		WindowSize: 8 << 10, TransferSize: 64, Cache: HostWarm, Transactions: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 34 || res.Gbps > 43 {
		t.Errorf("BW_WR 64B = %.1f Gb/s, want ~40", res.Gbps)
	}
}

func TestBwRdWrBothDirectionsCompete(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 19)
	res, err := BwRdWr(tgt, Params{
		WindowSize: 64 << 10, TransferSize: 512, Cache: HostWarm, Transactions: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-direction throughput of alternating 512B ops: reads and
	// writes share the up direction, so per-direction payload sits
	// below the unidirectional read number but stays substantial.
	if res.Gbps < 20 || res.Gbps > 55 {
		t.Errorf("BW_RDWR 512B = %.1f Gb/s", res.Gbps)
	}
}

func TestBwWrInsensitiveToCacheState(t *testing.T) {
	// §6.3: "For DMA Writes, there is no benefit if the data is
	// resident in the cache or not."
	run := func(cache CacheState) float64 {
		tgt := buildTarget(t, netfpga.Config(), 23)
		res, err := BwWr(tgt, Params{
			WindowSize: 64 << 10, TransferSize: 64, Cache: cache, Transactions: 15000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps
	}
	warm, cold := run(HostWarm), run(Cold)
	rel := (warm - cold) / cold
	if rel > 0.05 || rel < -0.05 {
		t.Errorf("BW_WR warm %.1f vs cold %.1f: %.1f%% difference, want ~0", warm, cold, rel*100)
	}
}

func TestBwRdWarmBeatsColdAt64B(t *testing.T) {
	// §6.3 / Fig 7b: 64B reads benefit measurably from cache residency.
	run := func(cache CacheState) float64 {
		tgt := buildTarget(t, nfp.Config(), 29)
		res, err := BwRd(tgt, Params{
			WindowSize: 64 << 10, TransferSize: 64, Cache: cache, Transactions: 15000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps
	}
	warm, cold := run(HostWarm), run(Cold)
	if warm <= cold*1.05 {
		t.Errorf("warm %.1f not measurably above cold %.1f", warm, cold)
	}
}

func TestBwRd512BNoCacheBenefit(t *testing.T) {
	// §6.3: "from 512B DMA Reads onwards, there is no measurable
	// difference" — the link, not memory latency, binds.
	run := func(cache CacheState) float64 {
		tgt := buildTarget(t, nfp.Config(), 31)
		res, err := BwRd(tgt, Params{
			WindowSize: 256 << 10, TransferSize: 512, Cache: cache, Transactions: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps
	}
	warm, cold := run(HostWarm), run(Cold)
	rel := (warm - cold) / cold
	if rel > 0.03 {
		t.Errorf("512B warm %.1f vs cold %.1f: %.1f%% benefit, want ~0", warm, cold, rel*100)
	}
}

func TestLatencyErrorsPropagate(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 1)
	if _, err := LatRd(tgt, Params{WindowSize: 8192, TransferSize: 0, Transactions: 10}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := BwRd(tgt, Params{WindowSize: 8192, TransferSize: 64, Transactions: 0}); err == nil {
		t.Error("zero transactions accepted")
	}
}

func TestUnalignedOffsetCostsMore(t *testing.T) {
	// §3/§4: unaligned reads generate extra completion TLPs (RCB), so
	// bandwidth at the same transfer size drops.
	run := func(offset int) float64 {
		tgt := buildTarget(t, netfpga.Config(), 37)
		res, err := BwRd(tgt, Params{
			WindowSize: 64 << 10, TransferSize: 512, Offset: offset,
			Cache: HostWarm, Transactions: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps
	}
	aligned, unaligned := run(0), run(4)
	if unaligned >= aligned {
		t.Errorf("unaligned (%.2f) not below aligned (%.2f)", unaligned, aligned)
	}
}

func TestStringsForReporting(t *testing.T) {
	p := Params{WindowSize: 8192, TransferSize: 64, Cache: HostWarm, Transactions: 5}
	s := p.String()
	for _, want := range []string{"win=8192", "xfer=64", "warm", "rand"} {
		if !contains(s, want) {
			t.Errorf("Params.String() = %q missing %q", s, want)
		}
	}
	if Sequential.String() != "seq" || Random.String() != "rand" {
		t.Error("pattern strings")
	}
	if Cold.String() != "cold" || DeviceWarm.String() != "devwarm" {
		t.Error("cache state strings")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCDFFromResult(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 41)
	res, err := LatRd(tgt, Params{WindowSize: 8192, TransferSize: 64, Cache: HostWarm, Transactions: 100})
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := res.CDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.At(res.Summary.Max) != 1.0 {
		t.Error("CDF does not reach 1 at max")
	}
}
