package bench_test

import (
	"testing"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
)

// bench_test (external) because these tests drive bench through
// sysconf-built fabrics, and sysconf imports bench.

func multiTargets(t *testing.T, n int) []*bench.Target {
	t.Helper()
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := topo.ParseSwitch("gen3x8")
	if err != nil {
		t.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{Endpoints: n, Switch: sw}, sysconf.Options{Seed: 1, NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]*bench.Target, n)
	for i, ep := range fab.Endpoints {
		ts[i] = &bench.Target{Host: fab.Host, Engine: ep.Engine, Buffer: ep.Buffer}
	}
	return ts
}

func multiParams() bench.Params {
	return bench.Params{
		WindowSize:   8 << 10,
		TransferSize: 512,
		Transactions: 600,
		Cache:        bench.HostWarm,
	}
}

// TestBwMultiContention: four endpoints behind one uplink split the
// bandwidth one endpoint gets alone, and their per-DMA latency
// inflates — the bench-level view of shared-uplink contention.
func TestBwMultiContention(t *testing.T) {
	p := multiParams()
	solo, err := bench.BwRdMulti(multiTargets(t, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := bench.BwRdMulti(multiTargets(t, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(quad.Endpoints) != 4 {
		t.Fatalf("endpoint results = %d, want 4", len(quad.Endpoints))
	}
	soloG := solo.Endpoints[0].Gbps
	var min, max float64
	for i, ep := range quad.Endpoints {
		if i == 0 || ep.Gbps < min {
			min = ep.Gbps
		}
		if ep.Gbps > max {
			max = ep.Gbps
		}
		if ep.Latency.N == 0 {
			t.Errorf("endpoint %d has no latency samples", i)
		}
	}
	if max >= soloG {
		t.Errorf("contended endpoint reached %.2f Gb/s, above the uncontended %.2f", max, soloG)
	}
	if min/max < 0.85 {
		t.Errorf("unfair partitioning: %.2f vs %.2f Gb/s", min, max)
	}
	if quad.Latency.P99 <= solo.Latency.P99 {
		t.Errorf("contended p99 %.0fns not above uncontended %.0fns", quad.Latency.P99, solo.Latency.P99)
	}
	// One 512B-read endpoint already saturates the shared uplink, so
	// the 4-way aggregate holds that line rather than exceeding it.
	if quad.AggregateGbps < 0.9*soloG {
		t.Errorf("aggregate %.2f Gb/s collapsed below the uncontended %.2f", quad.AggregateGbps, soloG)
	}
}

// TestBwMultiKinds smoke-tests the write and mixed kinds.
func TestBwMultiKinds(t *testing.T) {
	p := multiParams()
	if _, err := bench.BwWrMulti(multiTargets(t, 2), p); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.BwRdWrMulti(multiTargets(t, 2), p); err != nil {
		t.Fatal(err)
	}
}

// TestBwMultiRejectsMixedKernels: targets from different fabrics
// cannot contend and are rejected.
func TestBwMultiRejectsMixedKernels(t *testing.T) {
	a := multiTargets(t, 1)
	b := multiTargets(t, 1)
	if _, err := bench.BwRdMulti([]*bench.Target{a[0], b[0]}, multiParams()); err == nil {
		t.Error("targets on different kernels accepted")
	}
}
