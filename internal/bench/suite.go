package bench

import (
	"context"
	"fmt"
	"strings"

	"pciebench/internal/runner"
	"pciebench/internal/stats"
)

// SuiteConfig generates the cross-product of micro-benchmark runs the
// paper's control programs execute: "A complete run takes about 4 hours
// and executes around 2500 individual tests" (§5.4). The default
// configuration spans the same axes — benchmark type, transfer size,
// window size, cache state and access pattern — with simulation-sized
// transaction counts.
type SuiteConfig struct {
	Benchmarks   []string // LAT_RD, LAT_WRRD, BW_RD, BW_WR, BW_RDWR
	Transfers    []int
	Windows      []int
	CacheStates  []CacheState
	Patterns     []Pattern
	Transactions int
}

// DefaultSuite returns the paper-shaped test matrix (~2,880 runs).
func DefaultSuite() SuiteConfig {
	return SuiteConfig{
		Benchmarks: []string{"LAT_RD", "LAT_WRRD", "BW_RD", "BW_WR", "BW_RDWR"},
		Transfers:  []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048},
		Windows: []int{
			4 << 10, 16 << 10, 64 << 10, 256 << 10,
			1 << 20, 4 << 20, 16 << 20, 64 << 20,
		},
		CacheStates:  []CacheState{Cold, HostWarm, DeviceWarm},
		Patterns:     []Pattern{Random, Sequential},
		Transactions: 300,
	}
}

// Count returns the number of runs the configuration expands to
// (before invalid-combination skips).
func (c SuiteConfig) Count() int {
	return len(c.Benchmarks) * len(c.Transfers) * len(c.Windows) *
		len(c.CacheStates) * len(c.Patterns)
}

// normalized fills configuration defaults.
func (c SuiteConfig) normalized() SuiteConfig {
	if c.Transactions <= 0 {
		c.Transactions = 300
	}
	return c
}

// Cell is one point of the suite matrix: a benchmark name with its
// fully expanded parameters. Index is the cell's position in the
// deterministic benchmark-major enumeration order; it identifies the
// cell independently of execution order, so per-cell seeds and result
// slots derive from it.
type Cell struct {
	Index  int
	Bench  string
	Params Params
}

// Cells expands the matrix into its deterministic run order
// (benchmark, transfer, window, cache state, pattern — outermost
// first).
func (c SuiteConfig) Cells() []Cell {
	c = c.normalized()
	cells := make([]Cell, 0, c.Count())
	for _, bm := range c.Benchmarks {
		for _, sz := range c.Transfers {
			for _, win := range c.Windows {
				for _, cache := range c.CacheStates {
					for _, pat := range c.Patterns {
						cells = append(cells, Cell{
							Index: len(cells),
							Bench: bm,
							Params: Params{
								WindowSize:   win,
								TransferSize: sz,
								Pattern:      pat,
								Cache:        cache,
								Transactions: c.Transactions,
								Direct:       sz <= 128 && strings.HasPrefix(bm, "LAT"),
							},
						})
					}
				}
			}
		}
	}
	return cells
}

// SuiteResult is the outcome of one run in the suite.
type SuiteResult struct {
	Bench  string
	Params Params
	// Latency benches fill Summary; bandwidth benches fill Gbps.
	Summary stats.Summary
	Gbps    float64
	Skipped bool
	Err     error
}

// RunSuite executes the matrix sequentially against one shared target,
// cell by cell in Cells order. Invalid combinations (window smaller
// than a unit, window larger than the buffer) are reported as skipped
// rather than failing the suite. progress, when non-nil, receives
// (done, total) after every run.
//
// For a multi-worker run use RunSuiteParallel, which builds an
// independent target per cell.
func RunSuite(t *Target, cfg SuiteConfig, progress func(done, total int)) ([]SuiteResult, error) {
	cells := cfg.Cells()
	results := make([]SuiteResult, len(cells))
	for i, c := range cells {
		results[i] = runOne(t, c.Bench, c.Params)
		if progress != nil {
			progress(i+1, len(cells))
		}
	}
	return results, nil
}

// TargetFactory builds an independent benchmark target for one suite
// cell. The seed drives all simulation randomness of that target; the
// factory must not hand the same simulator instance to two cells, since
// cells run concurrently.
type TargetFactory func(seed int64) (*Target, error)

// SuiteOptions tunes a RunSuiteParallel call.
type SuiteOptions struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed is the base seed from which every cell derives its own
	// deterministic seed (0 uses 1, matching sysconf.Options).
	Seed int64
	// Progress, when non-nil, receives (done, total) after every cell;
	// calls are serialized.
	Progress func(done, total int)
}

// RunSuiteParallel executes the matrix across a worker pool. Each cell
// builds its own target from factory with a seed derived from the base
// seed and the cell index, so results are byte-identical for every
// worker count. The result slice is in Cells order. Per-cell benchmark
// failures are reported in the cell's SuiteResult; a factory error or
// context cancellation aborts the run.
//
// Because every cell starts from a fresh, independently seeded
// simulator instead of inheriting the RNG state a shared target
// accumulates, individual cell values differ slightly from a RunSuite
// pass over the same matrix (including at Workers: 1) — the two
// entry points are each self-consistent, not interchangeable.
func RunSuiteParallel(ctx context.Context, factory TargetFactory, cfg SuiteConfig, opt SuiteOptions) ([]SuiteResult, error) {
	base := opt.Seed
	if base == 0 {
		base = 1
	}
	return runner.Map(ctx, cfg.Cells(),
		runner.Options{Workers: opt.Workers, Progress: opt.Progress},
		func(ctx context.Context, _ int, c Cell) (SuiteResult, error) {
			t, err := factory(runner.Seed(base, c.Index))
			if err != nil {
				return SuiteResult{}, fmt.Errorf("bench: cell %d (%s %s): target: %w", c.Index, c.Bench, c.Params, err)
			}
			return runOne(t, c.Bench, c.Params), nil
		})
}

func runOne(t *Target, bm string, p Params) SuiteResult {
	res := SuiteResult{Bench: bm, Params: p}
	if err := p.Validate(t.Buffer.Size); err != nil {
		res.Skipped = true
		res.Err = err
		return res
	}
	switch bm {
	case "LAT_RD", "LAT_WRRD":
		run := LatRd
		if bm == "LAT_WRRD" {
			run = LatWrRd
		}
		out, err := run(t, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Summary = out.Summary
	case "BW_RD", "BW_WR", "BW_RDWR":
		run := BwRd
		switch bm {
		case "BW_WR":
			run = BwWr
		case "BW_RDWR":
			run = BwRdWr
		}
		out, err := run(t, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Gbps = out.Gbps
	default:
		res.Err = fmt.Errorf("bench: unknown benchmark %q", bm)
	}
	return res
}

// RenderSuite formats suite results as a TSV report, one line per run.
func RenderSuite(results []SuiteResult) string {
	var b strings.Builder
	b.WriteString("bench\twindow\txfer\tpattern\tcache\tmedian_ns\tgbps\tstatus\n")
	for _, r := range results {
		status := "ok"
		if r.Skipped {
			status = "skipped"
		} else if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		fmt.Fprintf(&b, "%s\t%d\t%d\t%s\t%s\t%.1f\t%.2f\t%s\n",
			r.Bench, r.Params.WindowSize, r.Params.TransferSize,
			r.Params.Pattern, r.Params.Cache, r.Summary.Median, r.Gbps, status)
	}
	return b.String()
}
