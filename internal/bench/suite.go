package bench

import (
	"fmt"
	"strings"

	"pciebench/internal/stats"
)

// SuiteConfig generates the cross-product of micro-benchmark runs the
// paper's control programs execute: "A complete run takes about 4 hours
// and executes around 2500 individual tests" (§5.4). The default
// configuration spans the same axes — benchmark type, transfer size,
// window size, cache state and access pattern — with simulation-sized
// transaction counts.
type SuiteConfig struct {
	Benchmarks   []string // LAT_RD, LAT_WRRD, BW_RD, BW_WR, BW_RDWR
	Transfers    []int
	Windows      []int
	CacheStates  []CacheState
	Patterns     []Pattern
	Transactions int
}

// DefaultSuite returns the paper-shaped test matrix (~2,880 runs).
func DefaultSuite() SuiteConfig {
	return SuiteConfig{
		Benchmarks: []string{"LAT_RD", "LAT_WRRD", "BW_RD", "BW_WR", "BW_RDWR"},
		Transfers:  []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048},
		Windows: []int{
			4 << 10, 16 << 10, 64 << 10, 256 << 10,
			1 << 20, 4 << 20, 16 << 20, 64 << 20,
		},
		CacheStates:  []CacheState{Cold, HostWarm, DeviceWarm},
		Patterns:     []Pattern{Random, Sequential},
		Transactions: 300,
	}
}

// Count returns the number of runs the configuration expands to
// (before invalid-combination skips).
func (c SuiteConfig) Count() int {
	return len(c.Benchmarks) * len(c.Transfers) * len(c.Windows) *
		len(c.CacheStates) * len(c.Patterns)
}

// SuiteResult is the outcome of one run in the suite.
type SuiteResult struct {
	Bench  string
	Params Params
	// Latency benches fill Summary; bandwidth benches fill Gbps.
	Summary stats.Summary
	Gbps    float64
	Skipped bool
	Err     error
}

// RunSuite executes the matrix against one target. Invalid combinations
// (window smaller than a unit, window larger than the buffer) are
// reported as skipped rather than failing the suite. progress, when
// non-nil, receives (done, total) after every run.
func RunSuite(t *Target, cfg SuiteConfig, progress func(done, total int)) ([]SuiteResult, error) {
	if cfg.Transactions <= 0 {
		cfg.Transactions = 300
	}
	total := cfg.Count()
	results := make([]SuiteResult, 0, total)
	done := 0
	for _, bm := range cfg.Benchmarks {
		for _, sz := range cfg.Transfers {
			for _, win := range cfg.Windows {
				for _, cache := range cfg.CacheStates {
					for _, pat := range cfg.Patterns {
						p := Params{
							WindowSize:   win,
							TransferSize: sz,
							Pattern:      pat,
							Cache:        cache,
							Transactions: cfg.Transactions,
							Direct:       sz <= 128 && strings.HasPrefix(bm, "LAT"),
						}
						r := runOne(t, bm, p)
						results = append(results, r)
						done++
						if progress != nil {
							progress(done, total)
						}
					}
				}
			}
		}
	}
	return results, nil
}

func runOne(t *Target, bm string, p Params) SuiteResult {
	res := SuiteResult{Bench: bm, Params: p}
	if err := p.Validate(t.Buffer.Size); err != nil {
		res.Skipped = true
		res.Err = err
		return res
	}
	switch bm {
	case "LAT_RD", "LAT_WRRD":
		run := LatRd
		if bm == "LAT_WRRD" {
			run = LatWrRd
		}
		out, err := run(t, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Summary = out.Summary
	case "BW_RD", "BW_WR", "BW_RDWR":
		run := BwRd
		switch bm {
		case "BW_WR":
			run = BwWr
		case "BW_RDWR":
			run = BwRdWr
		}
		out, err := run(t, p)
		if err != nil {
			res.Err = err
			return res
		}
		res.Gbps = out.Gbps
	default:
		res.Err = fmt.Errorf("bench: unknown benchmark %q", bm)
	}
	return res
}

// RenderSuite formats suite results as a TSV report, one line per run.
func RenderSuite(results []SuiteResult) string {
	var b strings.Builder
	b.WriteString("bench\twindow\txfer\tpattern\tcache\tmedian_ns\tgbps\tstatus\n")
	for _, r := range results {
		status := "ok"
		if r.Skipped {
			status = "skipped"
		} else if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		fmt.Fprintf(&b, "%s\t%d\t%d\t%s\t%s\t%.1f\t%.2f\t%s\n",
			r.Bench, r.Params.WindowSize, r.Params.TransferSize,
			r.Params.Pattern, r.Params.Cache, r.Summary.Median, r.Gbps, status)
	}
	return b.String()
}
