package bench

import (
	"strings"
	"testing"

	"pciebench/internal/device/netfpga"
)

func TestDefaultSuiteShape(t *testing.T) {
	cfg := DefaultSuite()
	// The paper's control program runs ~2500 individual tests; the
	// default matrix is in that ballpark.
	if n := cfg.Count(); n < 2000 || n > 4000 {
		t.Errorf("suite size = %d, want ~2500", n)
	}
}

func TestRunSuiteSmall(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 43)
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD", "BW_RD", "BW_WR"},
		Transfers:    []int{64, 512},
		Windows:      []int{8 << 10, 1 << 20},
		CacheStates:  []CacheState{HostWarm},
		Patterns:     []Pattern{Random},
		Transactions: 200,
	}
	var calls int
	results, err := RunSuite(tgt, cfg, func(done, total int) {
		calls++
		if total != cfg.Count() {
			t.Errorf("total = %d, want %d", total, cfg.Count())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Count() {
		t.Fatalf("results = %d, want %d", len(results), cfg.Count())
	}
	if calls != cfg.Count() {
		t.Errorf("progress calls = %d", calls)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s %s: %v", r.Bench, r.Params, r.Err)
		}
		switch {
		case strings.HasPrefix(r.Bench, "LAT"):
			if r.Summary.Median <= 0 {
				t.Errorf("%s %s: no latency", r.Bench, r.Params)
			}
		default:
			if r.Gbps <= 0 {
				t.Errorf("%s %s: no bandwidth", r.Bench, r.Params)
			}
		}
	}
}

func TestRunSuiteSkipsInvalid(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 47) // 32MB buffer
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD"},
		Transfers:    []int{64},
		Windows:      []int{64 << 20}, // larger than the buffer
		CacheStates:  []CacheState{Cold},
		Patterns:     []Pattern{Random},
		Transactions: 10,
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Skipped {
		t.Errorf("oversized window not skipped: %+v", results)
	}
}

func TestRunSuiteUnknownBench(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 53)
	cfg := SuiteConfig{
		Benchmarks:  []string{"NOPE"},
		Transfers:   []int{64},
		Windows:     []int{8 << 10},
		CacheStates: []CacheState{Cold},
		Patterns:    []Pattern{Random},
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRenderSuite(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 59)
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD", "BW_RD"},
		Transfers:    []int{64},
		Windows:      []int{8 << 10},
		CacheStates:  []CacheState{HostWarm},
		Patterns:     []Pattern{Random},
		Transactions: 100,
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSuite(results)
	for _, want := range []string{"bench\twindow", "LAT_RD", "BW_RD", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
