package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pciebench/internal/device/netfpga"
)

func TestDefaultSuiteShape(t *testing.T) {
	cfg := DefaultSuite()
	// The paper's control program runs ~2500 individual tests; the
	// default matrix is in that ballpark.
	if n := cfg.Count(); n < 2000 || n > 4000 {
		t.Errorf("suite size = %d, want ~2500", n)
	}
}

func TestRunSuiteSmall(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 43)
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD", "BW_RD", "BW_WR"},
		Transfers:    []int{64, 512},
		Windows:      []int{8 << 10, 1 << 20},
		CacheStates:  []CacheState{HostWarm},
		Patterns:     []Pattern{Random},
		Transactions: 200,
	}
	var calls int
	results, err := RunSuite(tgt, cfg, func(done, total int) {
		calls++
		if total != cfg.Count() {
			t.Errorf("total = %d, want %d", total, cfg.Count())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Count() {
		t.Fatalf("results = %d, want %d", len(results), cfg.Count())
	}
	if calls != cfg.Count() {
		t.Errorf("progress calls = %d", calls)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s %s: %v", r.Bench, r.Params, r.Err)
		}
		switch {
		case strings.HasPrefix(r.Bench, "LAT"):
			if r.Summary.Median <= 0 {
				t.Errorf("%s %s: no latency", r.Bench, r.Params)
			}
		default:
			if r.Gbps <= 0 {
				t.Errorf("%s %s: no bandwidth", r.Bench, r.Params)
			}
		}
	}
}

func TestRunSuiteSkipsInvalid(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 47) // 32MB buffer
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD"},
		Transfers:    []int{64},
		Windows:      []int{64 << 20}, // larger than the buffer
		CacheStates:  []CacheState{Cold},
		Patterns:     []Pattern{Random},
		Transactions: 10,
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Skipped {
		t.Errorf("oversized window not skipped: %+v", results)
	}
}

func TestRunSuiteUnknownBench(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 53)
	cfg := SuiteConfig{
		Benchmarks:  []string{"NOPE"},
		Transfers:   []int{64},
		Windows:     []int{8 << 10},
		CacheStates: []CacheState{Cold},
		Patterns:    []Pattern{Random},
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// parallelSuiteConfig is a small matrix shared by the parallel-suite
// tests: 24 cells across both benchmark families.
func parallelSuiteConfig() SuiteConfig {
	return SuiteConfig{
		Benchmarks:   []string{"LAT_RD", "BW_RD", "BW_WR"},
		Transfers:    []int{64, 512},
		Windows:      []int{8 << 10, 1 << 20},
		CacheStates:  []CacheState{Cold, HostWarm},
		Patterns:     []Pattern{Random},
		Transactions: 100,
	}
}

func TestSuiteCellsOrderStable(t *testing.T) {
	cfg := parallelSuiteConfig()
	cells := cfg.Cells()
	if len(cells) != cfg.Count() {
		t.Fatalf("cells = %d, want %d", len(cells), cfg.Count())
	}
	// Regression: RunSuite's result order is exactly the Cells order
	// (benchmark-major enumeration), and indices are positional.
	tgt := buildTarget(t, netfpga.Config(), 61)
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if results[i].Bench != c.Bench || results[i].Params != c.Params {
			t.Fatalf("result %d = %s %s, want %s %s",
				i, results[i].Bench, results[i].Params, c.Bench, c.Params)
		}
	}
	if cells[0].Bench != "LAT_RD" || cells[len(cells)-1].Bench != "BW_WR" {
		t.Errorf("enumeration not benchmark-major: %s..%s",
			cells[0].Bench, cells[len(cells)-1].Bench)
	}
}

func TestRunSuiteParallelDeterministic(t *testing.T) {
	cfg := parallelSuiteConfig()
	factory := func(seed int64) (*Target, error) {
		return newTestTarget(netfpga.Config(), seed)
	}
	run := func(workers int) string {
		results, err := RunSuiteParallel(context.Background(), factory, cfg,
			SuiteOptions{Workers: workers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return RenderSuite(results)
	}
	want := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d output differs from workers=1:\n%s\n--- vs ---\n%s",
				workers, got, want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(want), "\n")[1:] {
		if !strings.HasSuffix(line, "ok") {
			t.Errorf("cell not ok: %s", line)
		}
	}
}

func TestRunSuiteParallelProgressAndErrors(t *testing.T) {
	cfg := parallelSuiteConfig()
	factory := func(seed int64) (*Target, error) {
		return newTestTarget(netfpga.Config(), seed)
	}
	var calls int
	last := 0
	results, err := RunSuiteParallel(context.Background(), factory, cfg, SuiteOptions{
		Workers: 4,
		Progress: func(done, total int) {
			calls++
			if total != cfg.Count() || done != last+1 {
				t.Errorf("progress (%d,%d) after %d", done, total, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != cfg.Count() || len(results) != cfg.Count() {
		t.Errorf("calls = %d, results = %d, want %d", calls, len(results), cfg.Count())
	}

	// A factory failure aborts the run with an error.
	bad := func(int64) (*Target, error) { return nil, errors.New("no hardware") }
	if _, err := RunSuiteParallel(context.Background(), bad, cfg, SuiteOptions{Workers: 2}); err == nil {
		t.Error("factory error not surfaced")
	}

	// Cancellation aborts promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuiteParallel(ctx, factory, cfg, SuiteOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v", err)
	}
}

func TestRenderSuite(t *testing.T) {
	tgt := buildTarget(t, netfpga.Config(), 59)
	cfg := SuiteConfig{
		Benchmarks:   []string{"LAT_RD", "BW_RD"},
		Transfers:    []int{64},
		Windows:      []int{8 << 10},
		CacheStates:  []CacheState{HostWarm},
		Patterns:     []Pattern{Random},
		Transactions: 100,
	}
	results, err := RunSuite(tgt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSuite(results)
	for _, want := range []string{"bench\twindow", "LAT_RD", "BW_RD", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
