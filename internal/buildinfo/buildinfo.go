// Package buildinfo resolves the running build's version string. The
// content-addressed result cache partitions on it, so results computed
// by one build never serve a request from another: simulator changes
// that alter numbers invalidate the cache automatically.
package buildinfo

import "runtime/debug"

// Version returns the best available identity of this build: the VCS
// revision baked in by the Go toolchain (suffixed "+dirty" for
// modified trees), else the module version, else "dev".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}
