package tlp

import (
	"testing"
	"testing/quick"
)

func TestBERange(t *testing.T) {
	cases := []struct {
		addr            uint64
		sz              int
		lenDW           int
		firstBE, lastBE uint8
	}{
		{0, 4, 1, 0xF, 0},     // one aligned DW
		{0, 8, 2, 0xF, 0xF},   // two aligned DWs
		{0, 1, 1, 0x1, 0},     // single byte
		{1, 1, 1, 0x2, 0},     // single byte at offset 1
		{3, 1, 1, 0x8, 0},     // single byte at offset 3
		{1, 2, 1, 0x6, 0},     // two bytes within one DW
		{2, 4, 2, 0xC, 0x3},   // straddles a DW boundary
		{0, 64, 16, 0xF, 0xF}, // a cache line
		{3, 6, 3, 0x8, 0x1},   // 3 DWs, sparse ends
	}
	for _, tc := range cases {
		lenDW, f, l, err := BERange(tc.addr, tc.sz)
		if err != nil {
			t.Fatalf("BERange(%d,%d): %v", tc.addr, tc.sz, err)
		}
		if lenDW != tc.lenDW || f != tc.firstBE || l != tc.lastBE {
			t.Errorf("BERange(%d,%d) = (%d,%#x,%#x), want (%d,%#x,%#x)",
				tc.addr, tc.sz, lenDW, f, l, tc.lenDW, tc.firstBE, tc.lastBE)
		}
	}
	if _, _, _, err := BERange(0, 0); err != ErrPayloadRange {
		t.Errorf("sz=0: %v, want ErrPayloadRange", err)
	}
	if _, _, _, err := BERange(0, MaxPayload+1); err != ErrPayloadRange {
		t.Errorf("oversize: %v, want ErrPayloadRange", err)
	}
}

// Property: the byte enables of BERange always select exactly sz bytes.
func TestBERangeSelectsExactBytes(t *testing.T) {
	f := func(a uint16, s uint16) bool {
		addr := uint64(a % 256)
		sz := int(s%2048) + 1
		lenDW, fbe, lbe, err := BERange(addr, sz)
		if err != nil {
			return false
		}
		return enabledBytes(lenDW, fbe, lbe) == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSplitReadAligned(t *testing.T) {
	reqs, err := SplitRead(0, 0x1000, 1024, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	for i, r := range reqs {
		if r.LengthDW != 128 {
			t.Errorf("req %d: LengthDW = %d, want 128", i, r.LengthDW)
		}
	}
	if reqs[1].Addr != 0x1200 {
		t.Errorf("second request addr %#x, want 0x1200", reqs[1].Addr)
	}
}

func TestSplitReadUnalignedStart(t *testing.T) {
	// Starting 64 bytes before an MRRS boundary: first request must be
	// short so later ones do not cross boundaries.
	reqs, err := SplitRead(0, 512-64, 1024, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	if got := reqs[0].LengthDW * 4; got != 64 {
		t.Errorf("first request %dB, want 64", got)
	}
	if got := reqs[1].LengthDW * 4; got != 512 {
		t.Errorf("second request %dB, want 512", got)
	}
	if got := reqs[2].LengthDW * 4; got != 448 {
		t.Errorf("third request %dB, want 448", got)
	}
}

func TestSplitReadErrors(t *testing.T) {
	if _, err := SplitRead(0, 0, 0, 512, true); err == nil {
		t.Error("sz=0 accepted")
	}
	if _, err := SplitRead(0, 0, 64, 100, true); err == nil {
		t.Error("bad MRRS accepted")
	}
}

// Property: SplitRead covers exactly [addr, addr+sz) with no overlap and
// never crosses an MRRS boundary.
func TestSplitReadCoversRange(t *testing.T) {
	f := func(a uint32, s uint16, m uint8) bool {
		addr := uint64(a % 65536)
		sz := int(s%4096) + 1
		mrrs := 128 << (m % 4) // 128..1024
		reqs, err := SplitRead(0, addr, sz, mrrs, true)
		if err != nil {
			return false
		}
		pos := addr
		total := 0
		for _, r := range reqs {
			n := enabledBytes(r.LengthDW, r.FirstBE, r.LastBE)
			start := r.Addr + uint64(firstOffset(r.FirstBE))
			if start != pos {
				return false
			}
			// No request may cross an MRRS-aligned boundary.
			if start/uint64(mrrs) != (start+uint64(n)-1)/uint64(mrrs) {
				return false
			}
			pos += uint64(n)
			total += n
		}
		return total == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSplitWrite(t *testing.T) {
	data := make([]byte, 700)
	for i := range data {
		data[i] = byte(i)
	}
	ws, err := SplitWrite(0, 0x2000, data, 700, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d writes, want 3", len(ws))
	}
	sizes := []int{256, 256, 188}
	total := 0
	for i, w := range ws {
		if len(w.Data) != sizes[i] {
			t.Errorf("write %d: %dB, want %d", i, len(w.Data), sizes[i])
		}
		for j, b := range w.Data {
			if b != byte(total+j) {
				t.Fatalf("write %d byte %d: got %d", i, j, b)
			}
		}
		total += len(w.Data)
	}
}

func TestSplitWriteErrors(t *testing.T) {
	if _, err := SplitWrite(0, 0, nil, 0, 256, true); err == nil {
		t.Error("sz=0 accepted")
	}
	if _, err := SplitWrite(0, 0, []byte{1, 2}, 3, 256, true); err == nil {
		t.Error("mismatched data length accepted")
	}
	if _, err := SplitWrite(0, 0, nil, 64, 100, true); err == nil {
		t.Error("bad MPS accepted")
	}
}

func TestSplitCompletionAligned(t *testing.T) {
	req := &MemRead{Addr: 0x1000, LengthDW: 128, FirstBE: 0xF, LastBE: 0xF} // 512B
	cpls, err := SplitCompletion(req, 0, nil, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpls) != 2 {
		t.Fatalf("got %d completions, want 2", len(cpls))
	}
	if cpls[0].ByteCount != 512 || cpls[1].ByteCount != 256 {
		t.Errorf("byte counts %d,%d want 512,256", cpls[0].ByteCount, cpls[1].ByteCount)
	}
	if cpls[0].LowerAddr != 0 || cpls[1].LowerAddr != 0 {
		t.Errorf("lower addrs %#x,%#x want 0,0", cpls[0].LowerAddr, cpls[1].LowerAddr)
	}
}

func TestSplitCompletionUnalignedFirstShort(t *testing.T) {
	// Paper §3: "the specification requires the first CplD to align the
	// remaining CplDs to an advertised Read Completion Boundary".
	req := &MemRead{Addr: 0x1010, LengthDW: 64, FirstBE: 0xF, LastBE: 0xF} // 256B at offset 16
	cpls, err := SplitCompletion(req, 0, nil, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpls) != 2 {
		t.Fatalf("got %d completions, want 2 (short first + remainder)", len(cpls))
	}
	if len(cpls[0].Data) != 48 {
		t.Errorf("first completion %dB, want 48 (to RCB boundary)", len(cpls[0].Data))
	}
	if len(cpls[1].Data) != 208 {
		t.Errorf("second completion %dB, want 208", len(cpls[1].Data))
	}
	if cpls[0].LowerAddr != 0x10 {
		t.Errorf("first LowerAddr %#x, want 0x10", cpls[0].LowerAddr)
	}
}

func TestSplitCompletionUnalignedGeneratesMoreTLPs(t *testing.T) {
	aligned := &MemRead{Addr: 0x1000, LengthDW: 256, FirstBE: 0xF, LastBE: 0xF}
	unaligned := &MemRead{Addr: 0x1010, LengthDW: 256, FirstBE: 0xF, LastBE: 0xF}
	ca, err := SplitCompletion(aligned, 0, nil, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := SplitCompletion(unaligned, 0, nil, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(cu) <= len(ca) {
		t.Errorf("unaligned read produced %d TLPs, aligned %d; want more for unaligned", len(cu), len(ca))
	}
}

func TestSplitCompletionErrors(t *testing.T) {
	req := &MemRead{Addr: 0, LengthDW: 1, FirstBE: 0xF}
	if _, err := SplitCompletion(req, 0, nil, 100, 64); err == nil {
		t.Error("bad MPS accepted")
	}
	if _, err := SplitCompletion(req, 0, nil, 256, 32); err == nil {
		t.Error("bad RCB accepted")
	}
	if _, err := SplitCompletion(req, 0, []byte{1, 2}, 256, 64); err == nil {
		t.Error("mismatched data accepted")
	}
}

// Property: completion splitting conserves bytes, respects MPS, aligns
// every non-final completion to RCB, and decrements ByteCount correctly.
func TestSplitCompletionInvariants(t *testing.T) {
	f := func(a uint16, s uint16, mpsSel, rcbSel uint8) bool {
		addr := uint64(a%4096) &^ 0x3 // DW aligned start as on the wire
		sz := (int(s%1024) + 1) &^ 0x3
		if sz == 0 {
			sz = 4
		}
		mps := 128 << (mpsSel % 3) // 128,256,512
		rcb := 64
		if rcbSel%2 == 1 {
			rcb = 128
		}
		lenDW, fbe, lbe, err := BERange(addr, sz)
		if err != nil {
			return false
		}
		req := &MemRead{Addr: addr, LengthDW: lenDW, FirstBE: fbe, LastBE: lbe}
		cpls, err := SplitCompletion(req, 0, nil, mps, rcb)
		if err != nil {
			return false
		}
		total := 0
		remaining := sz
		pos := addr
		for i, c := range cpls {
			if len(c.Data) > mps {
				return false
			}
			if c.ByteCount != remaining {
				return false
			}
			if c.LowerAddr != uint8(pos&0x7F) {
				return false
			}
			last := i == len(cpls)-1
			end := pos + uint64(len(c.Data))
			if !last && end%uint64(rcb) != 0 {
				return false
			}
			pos = end
			total += len(c.Data)
			remaining -= len(c.Data)
		}
		return total == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTagPool(t *testing.T) {
	p := NewTagPool(4)
	if p.Available() != 4 || p.InFlight() != 0 {
		t.Fatalf("fresh pool: avail=%d inflight=%d", p.Available(), p.InFlight())
	}
	seen := map[uint8]bool{}
	for i := 0; i < 4; i++ {
		tag, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[tag] {
			t.Fatalf("duplicate tag %d", tag)
		}
		seen[tag] = true
	}
	if _, err := p.Alloc(); err != ErrTagsExhausted {
		t.Errorf("exhausted pool: %v, want ErrTagsExhausted", err)
	}
	p.Free(0)
	if tag, err := p.Alloc(); err != nil || tag != 0 {
		t.Errorf("realloc: tag=%d err=%v", tag, err)
	}
}

func TestTagPoolDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	p := NewTagPool(2)
	tag, _ := p.Alloc()
	p.Free(tag)
	p.Free(tag)
}

func TestTagPoolClamps(t *testing.T) {
	if p := NewTagPool(0); p.Available() != 1 {
		t.Errorf("NewTagPool(0) size = %d, want 1", p.Available())
	}
	if p := NewTagPool(1000); p.Available() != 256 {
		t.Errorf("NewTagPool(1000) size = %d, want 256", p.Available())
	}
}
