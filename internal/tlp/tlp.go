// Package tlp implements PCI Express Transaction Layer Packets.
//
// The package provides spec-faithful binary encoding and decoding for the
// TLP types that matter for DMA traffic — Memory Read requests (MRd),
// Memory Writes (MWr) and Completions with and without data (CplD/Cpl) —
// along with the sizing arithmetic the rest of pciebench builds on: how a
// DMA read is split into requests bounded by MRRS, and how a completer
// splits read data into completions bounded by MPS and aligned to the
// Read Completion Boundary (RCB).
//
// The API follows the layered-decoding style of packet libraries such as
// gopacket: each packet type has an AppendTo serializer and a
// DecodeFromBytes parser, and the package-level Decode function dispatches
// on the Fmt/Type header fields.
package tlp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies the transaction type of a decoded TLP.
type Kind uint8

// TLP kinds understood by this package.
const (
	KindInvalid  Kind = iota
	KindMemRead       // MRd: memory read request (no payload)
	KindMemWrite      // MWr: posted memory write (with payload)
	KindCpl           // Cpl: completion without data
	KindCplD          // CplD: completion with data
)

// String returns the spec mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindMemRead:
		return "MRd"
	case KindMemWrite:
		return "MWr"
	case KindCpl:
		return "Cpl"
	case KindCplD:
		return "CplD"
	}
	return "INVALID"
}

// Fmt field values (TLP header byte 0, bits 7:5).
const (
	fmt3DWNoData uint8 = 0x0
	fmt4DWNoData uint8 = 0x1
	fmt3DWData   uint8 = 0x2
	fmt4DWData   uint8 = 0x3
)

// Type field values (TLP header byte 0, bits 4:0).
const (
	typeMem uint8 = 0x00
	typeCpl uint8 = 0x0A
)

// CplStatus is the completion status field.
type CplStatus uint8

// Completion status codes (PCIe spec §2.2.9).
const (
	CplSuccess        CplStatus = 0 // SC: successful completion
	CplUnsupported    CplStatus = 1 // UR: unsupported request
	CplConfigRetry    CplStatus = 2 // CRS: configuration request retry
	CplCompleterAbort CplStatus = 4 // CA: completer abort
)

// String returns the spec mnemonic for the status.
func (s CplStatus) String() string {
	switch s {
	case CplSuccess:
		return "SC"
	case CplUnsupported:
		return "UR"
	case CplConfigRetry:
		return "CRS"
	case CplCompleterAbort:
		return "CA"
	}
	return fmt.Sprintf("CplStatus(%d)", uint8(s))
}

// DeviceID is a 16-bit PCIe requester/completer ID
// (bus[15:8], device[7:3], function[2:0]).
type DeviceID uint16

// MakeDeviceID assembles a DeviceID from bus/device/function numbers.
func MakeDeviceID(bus, dev, fn uint8) DeviceID {
	return DeviceID(uint16(bus)<<8 | uint16(dev&0x1F)<<3 | uint16(fn&0x7))
}

// Bus returns the bus number component.
func (id DeviceID) Bus() uint8 { return uint8(id >> 8) }

// Device returns the device number component.
func (id DeviceID) Device() uint8 { return uint8(id>>3) & 0x1F }

// Function returns the function number component.
func (id DeviceID) Function() uint8 { return uint8(id) & 0x7 }

// String renders the ID in lspci-style BB:DD.F notation.
func (id DeviceID) String() string {
	return fmt.Sprintf("%02x:%02x.%d", id.Bus(), id.Device(), id.Function())
}

// Decoding errors.
var (
	ErrShort        = errors.New("tlp: buffer too short")
	ErrBadType      = errors.New("tlp: unknown fmt/type combination")
	ErrBadLength    = errors.New("tlp: length field inconsistent with payload")
	ErrPayloadRange = errors.New("tlp: payload must be 1..4096 bytes")
	ErrNotAligned   = errors.New("tlp: address bits [1:0] must be zero in the wire format")
)

// MaxPayload is the largest payload a single TLP can carry (1024 DW).
const MaxPayload = 4096

// lengthToField encodes a DW count into the 10-bit length field
// (1024 encodes as 0).
func lengthToField(dw int) uint16 {
	if dw == 1024 {
		return 0
	}
	return uint16(dw)
}

// fieldToLength decodes the 10-bit length field into a DW count.
func fieldToLength(f uint16) int {
	if f == 0 {
		return 1024
	}
	return int(f)
}

// MemRead is a memory read request TLP. It carries no payload; the
// completer returns the data in one or more completions.
type MemRead struct {
	Requester DeviceID
	Tag       uint8
	Addr      uint64 // byte address of the first requested byte
	FirstBE   uint8  // byte enables for the first DW
	LastBE    uint8  // byte enables for the last DW (0 if LengthDW==1)
	LengthDW  int    // request length in DW (1..1024)
	TC        uint8  // traffic class (0..7)
	Addr64    bool   // use the 4DW (64-bit address) header format
}

// Kind returns KindMemRead.
func (p *MemRead) Kind() Kind { return KindMemRead }

// HeaderBytes returns the TLP header size (12 or 16).
func (p *MemRead) HeaderBytes() int {
	if p.Addr64 {
		return 16
	}
	return 12
}

// WireBytes returns the raw TLP size: header only (reads carry no data).
func (p *MemRead) WireBytes() int { return p.HeaderBytes() }

// String summarises the request.
func (p *MemRead) String() string {
	return fmt.Sprintf("MRd addr=%#x len=%dDW tag=%d req=%s", p.Addr, p.LengthDW, p.Tag, p.Requester)
}

// AppendTo serializes the request, appending the wire bytes to dst.
func (p *MemRead) AppendTo(dst []byte) ([]byte, error) {
	if p.LengthDW < 1 || p.LengthDW > 1024 {
		return dst, ErrPayloadRange
	}
	if p.Addr&0x3 != 0 {
		return dst, ErrNotAligned
	}
	f := fmt3DWNoData
	if p.Addr64 {
		f = fmt4DWNoData
	}
	dst = appendCommon(dst, f, typeMem, p.TC, false, p.LengthDW)
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Requester))
	dst = append(dst, p.Tag, p.LastBE<<4|p.FirstBE&0xF)
	if p.Addr64 {
		dst = binary.BigEndian.AppendUint64(dst, p.Addr&^uint64(0x3))
	} else {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.Addr)&^uint32(0x3))
	}
	return dst, nil
}

// DecodeFromBytes parses a MemRead from b, returning the bytes consumed.
func (p *MemRead) DecodeFromBytes(b []byte) (int, error) {
	f, typ, tc, _, lenDW, err := parseCommon(b)
	if err != nil {
		return 0, err
	}
	if typ != typeMem || (f != fmt3DWNoData && f != fmt4DWNoData) {
		return 0, ErrBadType
	}
	p.Addr64 = f == fmt4DWNoData
	need := p.HeaderBytes()
	if len(b) < need {
		return 0, ErrShort
	}
	p.TC = tc
	p.LengthDW = lenDW
	p.Requester = DeviceID(binary.BigEndian.Uint16(b[4:6]))
	p.Tag = b[6]
	p.LastBE = b[7] >> 4
	p.FirstBE = b[7] & 0xF
	if p.Addr64 {
		p.Addr = binary.BigEndian.Uint64(b[8:16]) &^ uint64(0x3)
	} else {
		p.Addr = uint64(binary.BigEndian.Uint32(b[8:12]) &^ uint32(0x3))
	}
	return need, nil
}

// MemWrite is a posted memory write TLP carrying Data.
type MemWrite struct {
	Requester DeviceID
	Tag       uint8 // writes are posted; the tag is informational
	Addr      uint64
	FirstBE   uint8
	LastBE    uint8
	TC        uint8
	Addr64    bool
	Data      []byte // payload, padded to a DW multiple on the wire
}

// Kind returns KindMemWrite.
func (p *MemWrite) Kind() Kind { return KindMemWrite }

// HeaderBytes returns the TLP header size (12 or 16).
func (p *MemWrite) HeaderBytes() int {
	if p.Addr64 {
		return 16
	}
	return 12
}

// LengthDW returns the payload length in doublewords.
func (p *MemWrite) LengthDW() int { return (len(p.Data) + 3) / 4 }

// WireBytes returns the raw TLP size: header plus DW-padded payload.
func (p *MemWrite) WireBytes() int { return p.HeaderBytes() + p.LengthDW()*4 }

// String summarises the write.
func (p *MemWrite) String() string {
	return fmt.Sprintf("MWr addr=%#x len=%dB req=%s", p.Addr, len(p.Data), p.Requester)
}

// AppendTo serializes the write, appending the wire bytes to dst.
func (p *MemWrite) AppendTo(dst []byte) ([]byte, error) {
	if len(p.Data) == 0 || len(p.Data) > MaxPayload {
		return dst, ErrPayloadRange
	}
	if p.Addr&0x3 != 0 {
		return dst, ErrNotAligned
	}
	f := fmt3DWData
	if p.Addr64 {
		f = fmt4DWData
	}
	dst = appendCommon(dst, f, typeMem, p.TC, false, p.LengthDW())
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Requester))
	dst = append(dst, p.Tag, p.LastBE<<4|p.FirstBE&0xF)
	if p.Addr64 {
		dst = binary.BigEndian.AppendUint64(dst, p.Addr&^uint64(0x3))
	} else {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.Addr)&^uint32(0x3))
	}
	dst = append(dst, p.Data...)
	for i := len(p.Data); i%4 != 0; i++ {
		dst = append(dst, 0)
	}
	return dst, nil
}

// DecodeFromBytes parses a MemWrite from b, returning the bytes consumed.
// The decoded Data slice aliases b and spans the DW-padded payload.
func (p *MemWrite) DecodeFromBytes(b []byte) (int, error) {
	f, typ, tc, _, lenDW, err := parseCommon(b)
	if err != nil {
		return 0, err
	}
	if typ != typeMem || (f != fmt3DWData && f != fmt4DWData) {
		return 0, ErrBadType
	}
	p.Addr64 = f == fmt4DWData
	need := p.HeaderBytes() + lenDW*4
	if len(b) < need {
		return 0, ErrShort
	}
	p.TC = tc
	p.Requester = DeviceID(binary.BigEndian.Uint16(b[4:6]))
	p.Tag = b[6]
	p.LastBE = b[7] >> 4
	p.FirstBE = b[7] & 0xF
	hdr := p.HeaderBytes()
	if p.Addr64 {
		p.Addr = binary.BigEndian.Uint64(b[8:16]) &^ uint64(0x3)
	} else {
		p.Addr = uint64(binary.BigEndian.Uint32(b[8:12]) &^ uint32(0x3))
	}
	p.Data = b[hdr:need]
	return need, nil
}

// Completion is a Cpl or CplD TLP answering a non-posted request.
type Completion struct {
	Completer DeviceID
	Status    CplStatus
	BCM       bool // byte count modified (PCI-X bridges only)
	ByteCount int  // remaining bytes including this completion (1..4096)
	Requester DeviceID
	Tag       uint8
	LowerAddr uint8 // address bits [6:0] of the first byte in Data
	TC        uint8
	Data      []byte // nil for Cpl (no data)
}

// Kind returns KindCplD when the completion carries data, KindCpl
// otherwise.
func (p *Completion) Kind() Kind {
	if len(p.Data) > 0 {
		return KindCplD
	}
	return KindCpl
}

// HeaderBytes returns the completion header size (always 3DW).
func (p *Completion) HeaderBytes() int { return 12 }

// LengthDW returns the payload length in doublewords.
func (p *Completion) LengthDW() int { return (len(p.Data) + 3) / 4 }

// WireBytes returns the raw TLP size.
func (p *Completion) WireBytes() int { return p.HeaderBytes() + p.LengthDW()*4 }

// String summarises the completion.
func (p *Completion) String() string {
	return fmt.Sprintf("%s tag=%d bc=%d la=%#x len=%dB st=%s",
		p.Kind(), p.Tag, p.ByteCount, p.LowerAddr, len(p.Data), p.Status)
}

// AppendTo serializes the completion, appending the wire bytes to dst.
func (p *Completion) AppendTo(dst []byte) ([]byte, error) {
	if len(p.Data) > MaxPayload {
		return dst, ErrPayloadRange
	}
	if p.ByteCount < 0 || p.ByteCount > 4096 {
		return dst, ErrPayloadRange
	}
	f := fmt3DWNoData
	lenDW := 1 // Cpl without data still encodes length from the request; use 1
	if len(p.Data) > 0 {
		f = fmt3DWData
		lenDW = p.LengthDW()
	}
	dst = appendCommon(dst, f, typeCpl, p.TC, false, lenDW)
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Completer))
	bc := uint16(p.ByteCount)
	if p.ByteCount == 4096 {
		bc = 0 // 4096 encodes as 0 in the 12-bit field
	}
	b6 := uint8(p.Status)<<5 | uint8(bc>>8)&0xF
	if p.BCM {
		b6 |= 1 << 4
	}
	dst = append(dst, b6, byte(bc))
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Requester))
	dst = append(dst, p.Tag, p.LowerAddr&0x7F)
	dst = append(dst, p.Data...)
	for i := len(p.Data); i%4 != 0; i++ {
		dst = append(dst, 0)
	}
	return dst, nil
}

// DecodeFromBytes parses a completion from b, returning bytes consumed.
func (p *Completion) DecodeFromBytes(b []byte) (int, error) {
	f, typ, tc, _, lenDW, err := parseCommon(b)
	if err != nil {
		return 0, err
	}
	if typ != typeCpl || (f != fmt3DWNoData && f != fmt3DWData) {
		return 0, ErrBadType
	}
	need := 12
	withData := f == fmt3DWData
	if withData {
		need += lenDW * 4
	}
	if len(b) < need {
		return 0, ErrShort
	}
	p.TC = tc
	p.Completer = DeviceID(binary.BigEndian.Uint16(b[4:6]))
	p.Status = CplStatus(b[6] >> 5)
	p.BCM = b[6]&0x10 != 0
	bc := int(b[6]&0xF)<<8 | int(b[7])
	if bc == 0 {
		bc = 4096
	}
	p.ByteCount = bc
	p.Requester = DeviceID(binary.BigEndian.Uint16(b[8:10]))
	p.Tag = b[10]
	p.LowerAddr = b[11] & 0x7F
	if withData {
		p.Data = b[12:need]
	} else {
		p.Data = nil
	}
	return need, nil
}

// Packet is the interface satisfied by every TLP type in this package.
type Packet interface {
	Kind() Kind
	WireBytes() int
	AppendTo(dst []byte) ([]byte, error)
	String() string
}

// Compile-time interface checks.
var (
	_ Packet = (*MemRead)(nil)
	_ Packet = (*MemWrite)(nil)
	_ Packet = (*Completion)(nil)
)

// Decode parses the TLP at the start of b, dispatching on the Fmt/Type
// fields, and returns the packet and the number of bytes consumed.
func Decode(b []byte) (Packet, int, error) {
	f, typ, _, _, _, err := parseCommon(b)
	if err != nil {
		return nil, 0, err
	}
	switch {
	case typ == typeMem && (f == fmt3DWNoData || f == fmt4DWNoData):
		p := new(MemRead)
		n, err := p.DecodeFromBytes(b)
		return p, n, err
	case typ == typeMem && (f == fmt3DWData || f == fmt4DWData):
		p := new(MemWrite)
		n, err := p.DecodeFromBytes(b)
		return p, n, err
	case typ == typeCpl:
		p := new(Completion)
		n, err := p.DecodeFromBytes(b)
		return p, n, err
	}
	return nil, 0, ErrBadType
}

// appendCommon emits the first DW of a TLP header.
func appendCommon(dst []byte, f, typ, tc uint8, td bool, lenDW int) []byte {
	b0 := f<<5 | typ&0x1F
	b1 := tc << 4 & 0x70
	lf := lengthToField(lenDW)
	b2 := byte(lf >> 8 & 0x3)
	if td {
		b2 |= 0x80
	}
	return append(dst, b0, b1, b2, byte(lf))
}

// parseCommon reads the first DW of a TLP header.
func parseCommon(b []byte) (f, typ, tc uint8, td bool, lenDW int, err error) {
	if len(b) < 4 {
		return 0, 0, 0, false, 0, ErrShort
	}
	f = b[0] >> 5
	typ = b[0] & 0x1F
	tc = b[1] >> 4 & 0x7
	td = b[2]&0x80 != 0
	lenDW = fieldToLength(uint16(b[2]&0x3)<<8 | uint16(b[3]))
	return f, typ, tc, td, lenDW, nil
}
