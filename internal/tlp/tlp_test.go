package tlp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeviceID(t *testing.T) {
	id := MakeDeviceID(0x3f, 0x1c, 5)
	if id.Bus() != 0x3f || id.Device() != 0x1c || id.Function() != 5 {
		t.Errorf("DeviceID round trip failed: %v", id)
	}
	if got := id.String(); got != "3f:1c.5" {
		t.Errorf("String() = %q, want 3f:1c.5", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindMemRead: "MRd", KindMemWrite: "MWr",
		KindCpl: "Cpl", KindCplD: "CplD", KindInvalid: "INVALID",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestMemReadRoundTrip(t *testing.T) {
	for _, addr64 := range []bool{false, true} {
		in := MemRead{
			Requester: MakeDeviceID(1, 2, 3),
			Tag:       42,
			Addr:      0x1234_5678,
			FirstBE:   0xF,
			LastBE:    0x3,
			LengthDW:  16,
			TC:        2,
			Addr64:    addr64,
		}
		if addr64 {
			in.Addr = 0x8_1234_5678
		}
		buf, err := in.AppendTo(nil)
		if err != nil {
			t.Fatalf("AppendTo: %v", err)
		}
		if len(buf) != in.WireBytes() {
			t.Errorf("wire bytes %d, want %d", len(buf), in.WireBytes())
		}
		var out MemRead
		n, err := out.DecodeFromBytes(buf)
		if err != nil {
			t.Fatalf("DecodeFromBytes: %v", err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d, want %d", n, len(buf))
		}
		if out != in {
			t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	}
}

func TestMemRead1024DWLength(t *testing.T) {
	in := MemRead{LengthDW: 1024, Addr: 0x1000, FirstBE: 0xF, LastBE: 0xF}
	buf, err := in.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 DW encodes as 0 in the length field.
	if buf[2]&0x3 != 0 || buf[3] != 0 {
		t.Errorf("1024 DW should encode as 0, got %x %x", buf[2]&0x3, buf[3])
	}
	var out MemRead
	if _, err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out.LengthDW != 1024 {
		t.Errorf("decoded LengthDW = %d, want 1024", out.LengthDW)
	}
}

func TestMemReadErrors(t *testing.T) {
	if _, err := (&MemRead{LengthDW: 0, Addr: 0}).AppendTo(nil); err != ErrPayloadRange {
		t.Errorf("LengthDW=0: err = %v, want ErrPayloadRange", err)
	}
	if _, err := (&MemRead{LengthDW: 1025}).AppendTo(nil); err != ErrPayloadRange {
		t.Errorf("LengthDW=1025: err = %v, want ErrPayloadRange", err)
	}
	if _, err := (&MemRead{LengthDW: 1, Addr: 2}).AppendTo(nil); err != ErrNotAligned {
		t.Errorf("unaligned addr: err = %v, want ErrNotAligned", err)
	}
	var mr MemRead
	if _, err := mr.DecodeFromBytes([]byte{0, 0}); err != ErrShort {
		t.Errorf("short buffer: err = %v, want ErrShort", err)
	}
	// A write header is not a read.
	w := MemWrite{Addr: 0, Data: []byte{1, 2, 3, 4}}
	buf, _ := w.AppendTo(nil)
	if _, err := mr.DecodeFromBytes(buf); err != ErrBadType {
		t.Errorf("write as read: err = %v, want ErrBadType", err)
	}
}

func TestMemWriteRoundTrip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	in := MemWrite{
		Requester: MakeDeviceID(0, 3, 0),
		Addr:      0xF000,
		FirstBE:   0xF,
		LastBE:    0x1,
		Addr64:    true,
		Data:      data,
	}
	buf, err := in.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Payload is DW-padded on the wire: 9 bytes -> 12.
	if want := 16 + 12; len(buf) != want {
		t.Errorf("wire size %d, want %d", len(buf), want)
	}
	var out MemWrite
	n, err := out.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d, want %d", n, len(buf))
	}
	if out.Addr != in.Addr || out.Requester != in.Requester {
		t.Errorf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Data[:9], data) {
		t.Errorf("payload mismatch: %x", out.Data)
	}
}

func TestMemWriteErrors(t *testing.T) {
	if _, err := (&MemWrite{}).AppendTo(nil); err != ErrPayloadRange {
		t.Errorf("empty payload: %v, want ErrPayloadRange", err)
	}
	big := make([]byte, MaxPayload+1)
	if _, err := (&MemWrite{Data: big}).AppendTo(nil); err != ErrPayloadRange {
		t.Errorf("oversize payload: %v, want ErrPayloadRange", err)
	}
	if _, err := (&MemWrite{Addr: 1, Data: []byte{1}}).AppendTo(nil); err != ErrNotAligned {
		t.Errorf("unaligned: %v, want ErrNotAligned", err)
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	in := Completion{
		Completer: MakeDeviceID(0, 0, 0),
		Status:    CplSuccess,
		ByteCount: 256,
		Requester: MakeDeviceID(2, 0, 1),
		Tag:       17,
		LowerAddr: 0x40,
		Data:      bytes.Repeat([]byte{0xAB}, 64),
	}
	buf, err := in.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Completion
	n, err := out.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d, want %d", n, len(buf))
	}
	if out.ByteCount != 256 || out.Tag != 17 || out.LowerAddr != 0x40 {
		t.Errorf("field mismatch: %+v", out)
	}
	if out.Kind() != KindCplD {
		t.Errorf("Kind = %v, want CplD", out.Kind())
	}
	if !bytes.Equal(out.Data, in.Data) {
		t.Error("payload mismatch")
	}
}

func TestCompletionNoData(t *testing.T) {
	in := Completion{Status: CplUnsupported, ByteCount: 4, Tag: 3}
	buf, err := in.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 12 {
		t.Errorf("Cpl wire size %d, want 12", len(buf))
	}
	var out Completion
	if _, err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out.Kind() != KindCpl {
		t.Errorf("Kind = %v, want Cpl", out.Kind())
	}
	if out.Status != CplUnsupported {
		t.Errorf("Status = %v, want UR", out.Status)
	}
}

func TestCompletionByteCount4096(t *testing.T) {
	in := Completion{ByteCount: 4096, Data: make([]byte, 128)}
	buf, err := in.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Completion
	if _, err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out.ByteCount != 4096 {
		t.Errorf("ByteCount = %d, want 4096", out.ByteCount)
	}
}

func TestDecodeDispatch(t *testing.T) {
	r := MemRead{Addr: 0x100, LengthDW: 2, FirstBE: 0xF, LastBE: 0xF}
	w := MemWrite{Addr: 0x200, Data: make([]byte, 8), FirstBE: 0xF, LastBE: 0xF}
	c := Completion{ByteCount: 8, Data: make([]byte, 8)}

	var buf []byte
	var err error
	if buf, err = r.AppendTo(buf); err != nil {
		t.Fatal(err)
	}
	if buf, err = w.AppendTo(buf); err != nil {
		t.Fatal(err)
	}
	if buf, err = c.AppendTo(buf); err != nil {
		t.Fatal(err)
	}

	wantKinds := []Kind{KindMemRead, KindMemWrite, KindCplD}
	for i, want := range wantKinds {
		p, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Kind() != want {
			t.Errorf("packet %d: kind %v, want %v", i, p.Kind(), want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
	if _, _, err := Decode([]byte{0xFF, 0, 0, 1}); err != ErrBadType {
		t.Errorf("garbage: %v, want ErrBadType", err)
	}
	if _, _, err := Decode(nil); err != ErrShort {
		t.Errorf("nil: %v, want ErrShort", err)
	}
}

func TestStringsAreInformative(t *testing.T) {
	r := &MemRead{Addr: 0x1000, LengthDW: 4, Tag: 9}
	if s := r.String(); !strings.Contains(s, "MRd") || !strings.Contains(s, "0x1000") {
		t.Errorf("MemRead.String() = %q", s)
	}
	w := &MemWrite{Addr: 0x2000, Data: make([]byte, 64)}
	if s := w.String(); !strings.Contains(s, "MWr") {
		t.Errorf("MemWrite.String() = %q", s)
	}
	c := &Completion{ByteCount: 64, Data: make([]byte, 64)}
	if s := c.String(); !strings.Contains(s, "CplD") {
		t.Errorf("Completion.String() = %q", s)
	}
	if s := CplStatus(7).String(); !strings.Contains(s, "7") {
		t.Errorf("odd status String() = %q", s)
	}
}

// Property: MemRead encode/decode is an identity for all valid field
// combinations.
func TestMemReadRoundTripProperty(t *testing.T) {
	f := func(req uint16, tag uint8, addr uint64, lenDW uint16, tc uint8, a64 bool) bool {
		in := MemRead{
			Requester: DeviceID(req),
			Tag:       tag,
			Addr:      addr &^ 0x3,
			FirstBE:   0xF,
			LastBE:    0xF,
			LengthDW:  int(lenDW%1024) + 1,
			TC:        tc & 0x7,
			Addr64:    a64,
		}
		if !a64 {
			in.Addr &= 0xFFFF_FFFF
		}
		if in.LengthDW == 1 {
			in.LastBE = 0
		}
		buf, err := in.AppendTo(nil)
		if err != nil {
			return false
		}
		var out MemRead
		if _, err := out.DecodeFromBytes(buf); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Completion encode/decode preserves all fields and payload.
func TestCompletionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(cid, rid uint16, tag uint8, la uint8, bc uint16, ndw uint8) bool {
		n := (int(ndw%64) + 1) * 4
		data := make([]byte, n)
		rng.Read(data)
		in := Completion{
			Completer: DeviceID(cid),
			Status:    CplSuccess,
			ByteCount: int(bc%4096) + 1,
			Requester: DeviceID(rid),
			Tag:       tag,
			LowerAddr: la & 0x7F,
			Data:      data,
		}
		buf, err := in.AppendTo(nil)
		if err != nil {
			return false
		}
		var out Completion
		if _, err := out.DecodeFromBytes(buf); err != nil {
			return false
		}
		return out.Completer == in.Completer && out.Requester == in.Requester &&
			out.Tag == in.Tag && out.LowerAddr == in.LowerAddr &&
			out.ByteCount == in.ByteCount && bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
