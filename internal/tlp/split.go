package tlp

import (
	"errors"
	"fmt"
)

// BERange computes the DW length and first/last byte-enable fields for a
// request touching sz bytes starting at byte address addr. This is the
// spec's mechanism for expressing transfers that do not start or end on a
// doubleword boundary.
func BERange(addr uint64, sz int) (lengthDW int, firstBE, lastBE uint8, err error) {
	if sz <= 0 || sz > MaxPayload {
		return 0, 0, 0, ErrPayloadRange
	}
	startOff := int(addr & 0x3)
	end := addr + uint64(sz) // one past the last byte
	lengthDW = int((end+3)/4 - addr/4)
	firstBE = (0xF << uint(startOff)) & 0xF
	endOff := int(end & 0x3) // bytes valid in the last DW (0 => all 4)
	lastBE = 0xF
	if endOff != 0 {
		lastBE = 0xF >> uint(4-endOff)
	}
	if lengthDW == 1 {
		firstBE &= lastBE
		lastBE = 0 // spec: single-DW requests carry 0 in Last DW BE
	}
	return lengthDW, firstBE, lastBE, nil
}

// enabledBytes counts the data bytes selected by the BE fields of a
// request with the given DW length.
func enabledBytes(lengthDW int, firstBE, lastBE uint8) int {
	ones := func(v uint8) int {
		n := 0
		for ; v != 0; v >>= 1 {
			n += int(v & 1)
		}
		return n
	}
	if lengthDW == 1 {
		return ones(firstBE)
	}
	return ones(firstBE) + ones(lastBE) + 4*(lengthDW-2)
}

// SplitRead breaks a DMA read of sz bytes at addr into the Memory Read
// request TLPs a device must issue, each bounded by the Maximum Read
// Request Size. Per spec, requests larger than one MRRS chunk must not
// cross MRRS-aligned address boundaries, so an unaligned start produces a
// short first request.
func SplitRead(requester DeviceID, addr uint64, sz, mrrs int, addr64 bool) ([]MemRead, error) {
	if sz <= 0 {
		return nil, ErrPayloadRange
	}
	if mrrs < 128 || mrrs&(mrrs-1) != 0 {
		return nil, fmt.Errorf("tlp: bad MRRS %d", mrrs)
	}
	var out []MemRead
	pos := addr
	remaining := sz
	for remaining > 0 {
		chunk := remaining
		// Do not cross an MRRS-aligned boundary.
		if boundary := (pos/uint64(mrrs) + 1) * uint64(mrrs); pos+uint64(chunk) > boundary {
			chunk = int(boundary - pos)
		}
		lenDW, fbe, lbe, err := BERange(pos, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, MemRead{
			Requester: requester,
			Addr:      pos &^ 0x3,
			FirstBE:   fbe,
			LastBE:    lbe,
			LengthDW:  lenDW,
			Addr64:    addr64,
		})
		pos += uint64(chunk)
		remaining -= chunk
	}
	return out, nil
}

// SplitWrite breaks a DMA write of sz bytes at addr into posted Memory
// Write TLPs bounded by the Maximum Payload Size, not crossing
// MPS-aligned boundaries. The data argument may be nil, in which case the
// returned TLPs carry zero-filled payloads of the right length.
func SplitWrite(requester DeviceID, addr uint64, data []byte, sz, mps int, addr64 bool) ([]MemWrite, error) {
	if sz <= 0 {
		return nil, ErrPayloadRange
	}
	if data != nil && len(data) != sz {
		return nil, fmt.Errorf("tlp: data length %d != sz %d", len(data), sz)
	}
	if mps < 128 || mps&(mps-1) != 0 {
		return nil, fmt.Errorf("tlp: bad MPS %d", mps)
	}
	var out []MemWrite
	pos := addr
	remaining := sz
	off := 0
	for remaining > 0 {
		chunk := remaining
		if boundary := (pos/uint64(mps) + 1) * uint64(mps); pos+uint64(chunk) > boundary {
			chunk = int(boundary - pos)
		}
		_, fbe, lbe, err := BERange(pos, chunk)
		if err != nil {
			return nil, err
		}
		payload := make([]byte, chunk)
		if data != nil {
			copy(payload, data[off:off+chunk])
		}
		out = append(out, MemWrite{
			Requester: requester,
			Addr:      pos &^ 0x3,
			FirstBE:   fbe,
			LastBE:    lbe,
			Addr64:    addr64,
			Data:      payload,
		})
		pos += uint64(chunk)
		remaining -= chunk
		off += chunk
	}
	return out, nil
}

// SplitCompletion produces the Completion-with-Data TLPs a completer
// (the root complex, for DMA reads) generates in answer to a single
// Memory Read request. Splitting follows PCIe spec §2.3.1.1:
//
//   - each completion payload is at most MPS bytes;
//   - every completion except the last must end on an RCB-aligned
//     address, so an unaligned start yields a short first completion;
//   - the ByteCount field of each completion holds the bytes remaining
//     to satisfy the request including the current packet, and
//     LowerAddr holds bits [6:0] of the first byte's address.
//
// data may be nil for timing-only use; payloads are then zero-filled.
func SplitCompletion(req *MemRead, completer DeviceID, data []byte, mps, rcb int) ([]Completion, error) {
	if mps < 128 || mps&(mps-1) != 0 {
		return nil, fmt.Errorf("tlp: bad MPS %d", mps)
	}
	if rcb != 64 && rcb != 128 {
		return nil, fmt.Errorf("tlp: bad RCB %d", rcb)
	}
	sz := enabledBytes(req.LengthDW, req.FirstBE, req.LastBE)
	if sz <= 0 || sz > MaxPayload {
		return nil, ErrPayloadRange
	}
	if data != nil && len(data) != sz {
		return nil, fmt.Errorf("tlp: data length %d != request bytes %d", len(data), sz)
	}
	// First enabled byte address: header address is DW-aligned; FirstBE
	// gives the offset within the first DW.
	start := req.Addr + uint64(firstOffset(req.FirstBE))
	var out []Completion
	pos := start
	remaining := sz
	off := 0
	for remaining > 0 {
		// Typical root-complex behaviour (and what the paper's §3
		// limitation note describes): an unaligned start produces a
		// short first completion up to the next RCB boundary, after
		// which all completions start RCB-aligned and carry MPS-sized
		// payloads until the final remainder.
		var chunk int
		if misalign := int(pos % uint64(rcb)); misalign != 0 {
			chunk = rcb - misalign
		} else {
			chunk = mps
		}
		if chunk > remaining {
			chunk = remaining
		}
		payload := make([]byte, chunk)
		if data != nil {
			copy(payload, data[off:off+chunk])
		}
		out = append(out, Completion{
			Completer: completer,
			Status:    CplSuccess,
			ByteCount: remaining,
			Requester: req.Requester,
			Tag:       req.Tag,
			LowerAddr: uint8(pos & 0x7F),
			Data:      payload,
		})
		pos += uint64(chunk)
		remaining -= chunk
		off += chunk
	}
	return out, nil
}

// firstOffset returns the byte offset within the first DW selected by a
// contiguous FirstBE pattern.
func firstOffset(firstBE uint8) int {
	switch {
	case firstBE&0x1 != 0:
		return 0
	case firstBE&0x2 != 0:
		return 1
	case firstBE&0x4 != 0:
		return 2
	case firstBE&0x8 != 0:
		return 3
	}
	return 0
}

// ErrTagsExhausted is returned by TagPool.Alloc when every tag is in
// flight.
var ErrTagsExhausted = errors.New("tlp: all tags in flight")

// TagPool allocates transaction tags for non-posted requests. PCIe
// devices have a finite tag space (32 or 256 with extended tags); the
// size of the pool bounds the number of outstanding DMA reads and is one
// of the levers the paper identifies for hiding PCIe latency.
type TagPool struct {
	free []uint8
	used map[uint8]bool
}

// NewTagPool returns a pool of n tags (1..256).
func NewTagPool(n int) *TagPool {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	p := &TagPool{used: make(map[uint8]bool, n)}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, uint8(i))
	}
	return p
}

// Alloc takes a free tag.
func (p *TagPool) Alloc() (uint8, error) {
	if len(p.free) == 0 {
		return 0, ErrTagsExhausted
	}
	t := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.used[t] = true
	return t, nil
}

// Free returns a tag to the pool. Freeing a tag that is not in flight is
// a programming error and panics.
func (p *TagPool) Free(t uint8) {
	if !p.used[t] {
		panic(fmt.Sprintf("tlp: double free of tag %d", t))
	}
	delete(p.used, t)
	p.free = append(p.free, t)
}

// InFlight returns the number of allocated tags.
func (p *TagPool) InFlight() int { return len(p.used) }

// Available returns the number of free tags.
func (p *TagPool) Available() int { return len(p.free) }
