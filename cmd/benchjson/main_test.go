package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pciebench
BenchmarkFig1_NICModels-8   	      12	  95227452 ns/op	        50.63 Gb/s@1520
BenchmarkFig4a_ReadBandwidth-8	       1	  57997838 ns/op	        29.88 Gb/s	 1024 B/op	      10 allocs/op
BenchmarkFig5_LatencyVsSize   	       1	 123456789 ns/op	       547.0 ns@64B	      1501.0 ns@2048B
PASS
ok  	pciebench	2.772s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "Fig1_NICModels" || b.Iterations != 12 || b.NsPerOp != 95227452 {
		t.Errorf("first = %+v", b)
	}
	if b.Metrics["Gb/s@1520"] != 50.63 {
		t.Errorf("metric = %v", b.Metrics)
	}
	// The -P suffix strips only when numeric; plain names survive.
	if report.Benchmarks[2].Name != "Fig5_LatencyVsSize" {
		t.Errorf("third name = %q", report.Benchmarks[2].Name)
	}
	if report.Benchmarks[2].Metrics["ns@64B"] != 547 {
		t.Errorf("third metrics = %v", report.Benchmarks[2].Metrics)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(report.Benchmarks) != 3 {
		t.Errorf("round-tripped %d benchmarks", len(report.Benchmarks))
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &out); err == nil {
		t.Error("empty input accepted")
	}
}
