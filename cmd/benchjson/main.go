// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary, so CI can track the per-benchmark
// medians and bandwidths across PRs:
//
//	go test -bench=. -benchtime=1x -run '^$' . | benchjson -out BENCH_2.json
//
// Every Benchmark line is parsed into its name, iteration count,
// ns/op, and all custom b.ReportMetric values (Gb/s, ns-median, ...).
// Non-benchmark lines are ignored, so the stream can be teed to a
// human log as well.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level JSON shape.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run parses bench output from stdin and writes the JSON report to
// -out (or stdout when unset).
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse scans bench output for Benchmark result lines.
func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  value unit  value unit..."
// result line; ok is false for any other line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[unit] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
