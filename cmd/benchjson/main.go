// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary, so CI can track the per-benchmark
// medians and bandwidths across PRs:
//
//	go test -bench=. -benchtime=1x -run '^$' . | benchjson -out BENCH_2.json
//
// Every Benchmark line is parsed into its name, iteration count,
// ns/op, and all custom b.ReportMetric values (Gb/s, ns-median, ...).
// Non-benchmark lines are ignored, so the stream can be teed to a
// human log as well.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level JSON shape.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run parses bench output from stdin and writes the JSON report to
// -out (or stdout when unset). With -compare it instead prints an
// old-vs-new ns/op table against a previously committed report.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", "", "output file (default stdout)")
	compare := fs.String("compare", "", "print an old-vs-new ns/op comparison against this BENCH_*.json file instead of emitting JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if *compare != "" {
		old, err := load(*compare)
		if err != nil {
			return err
		}
		printComparison(stdout, *compare, old, report)
		if *out == "" {
			return nil
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// load reads a previously written report file.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// printComparison renders an old-vs-new ns/op table. Benchmarks present
// on only one side are listed without a delta. Single-iteration smoke
// numbers are noisy; the table tracks direction and magnitude across
// PRs, not precise speedups.
func printComparison(w io.Writer, oldName string, old, cur *Report) {
	oldNs := make(map[string]float64, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldNs[b.Name] = b.NsPerOp
	}
	fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, b := range cur.Benchmarks {
		prev, ok := oldNs[b.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "%-28s %14s %14.0f %9s\n", b.Name, "-", b.NsPerOp, "new")
		case prev == 0:
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %9s\n", b.Name, prev, b.NsPerOp, "-")
		default:
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%%\n", b.Name, prev, b.NsPerOp, 100*(b.NsPerOp-prev)/prev)
		}
		delete(oldNs, b.Name)
	}
	for _, b := range old.Benchmarks {
		if _, gone := oldNs[b.Name]; gone {
			fmt.Fprintf(w, "%-28s %14.0f %14s %9s\n", b.Name, b.NsPerOp, "-", "gone")
		}
	}
	fmt.Fprintf(w, "(old: %s)\n", oldName)
}

// parse scans bench output for Benchmark result lines.
func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  value unit  value unit..."
// result line; ok is false for any other line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		b.Metrics[unit] = v
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
