// Command pcie-model evaluates the analytical PCIe model of paper §3:
// effective link bandwidth and NIC/driver throughput curves for
// arbitrary link configurations, printed as TSV for plotting.
//
// Examples:
//
//	pcie-model                         # Figure 1 curves, Gen3 x8
//	pcie-model -gen 4 -lanes 16        # a Gen4 x16 link
//	pcie-model -nic simple -sizes 64,512,1500
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pciebench/internal/model"
	"pciebench/internal/pcie"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcie-model:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, evaluates the
// selected closed-form curves and writes the TSV to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcie-model", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen     = fs.Int("gen", 3, "PCIe generation (1..5)")
		lanes   = fs.Int("lanes", 8, "lane count (1,2,4,8,16,32)")
		mps     = fs.Int("mps", 256, "maximum payload size")
		mrrs    = fs.Int("mrrs", 512, "maximum read request size")
		nic     = fs.String("nic", "all", "curve: effective|read|write|simple|kernel|dpdk|all")
		sizes   = fs.String("sizes", "", "comma-separated transfer sizes (default 64..1520 step 16)")
		ethGbps = fs.Float64("eth", 40, "Ethernet reference line rate in Gb/s (0 = omit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	cfg := pcie.DefaultGen3x8()
	cfg.Gen = pcie.Generation(*gen)
	cfg.Lanes = *lanes
	cfg.MPS = *mps
	cfg.MRRS = *mrrs
	if err := cfg.Validate(); err != nil {
		return err
	}

	var szList []int
	if *sizes == "" {
		for sz := 64; sz <= 1520; sz += 16 {
			szList = append(szList, sz)
		}
	} else {
		for _, f := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				return fmt.Errorf("bad size %q", f)
			}
			szList = append(szList, v)
		}
	}

	type curve struct {
		name string
		fn   func(int) float64
	}
	gbps := func(v float64) float64 { return v / 1e9 }
	simple, kernel, dpdk := model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()
	all := []curve{
		{"effective", func(sz int) float64 { return gbps(model.EffectiveBidirBandwidth(cfg, sz)) }},
		{"read", func(sz int) float64 { return gbps(model.EffectiveReadBandwidth(cfg, sz)) }},
		{"write", func(sz int) float64 { return gbps(model.EffectiveWriteBandwidth(cfg, sz)) }},
		{"simple", func(sz int) float64 { return gbps(simple.Bandwidth(cfg, sz)) }},
		{"kernel", func(sz int) float64 { return gbps(kernel.Bandwidth(cfg, sz)) }},
		{"dpdk", func(sz int) float64 { return gbps(dpdk.Bandwidth(cfg, sz)) }},
	}
	var selected []curve
	if *nic == "all" {
		selected = all
	} else {
		for _, c := range all {
			if c.name == *nic {
				selected = []curve{c}
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown curve %q", *nic)
		}
	}

	fmt.Fprintf(stdout, "# link: %s  raw=%.2fGb/s tlp=%.2fGb/s\n", cfg, cfg.RawBandwidth()/1e9, cfg.TLPBandwidth()/1e9)
	fmt.Fprintf(stdout, "# size")
	for _, c := range selected {
		fmt.Fprintf(stdout, "\t%s", c.name)
	}
	if *ethGbps > 0 {
		fmt.Fprintf(stdout, "\t%geth", *ethGbps)
	}
	fmt.Fprintln(stdout)
	for _, sz := range szList {
		fmt.Fprintf(stdout, "%d", sz)
		for _, c := range selected {
			fmt.Fprintf(stdout, "\t%.3f", c.fn(sz))
		}
		if *ethGbps > 0 {
			fmt.Fprintf(stdout, "\t%.3f", model.EthernetLineRate(*ethGbps*1e9, sz)/1e9)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
