package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// runCLI invokes the command as the shell would and captures stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestHelpIsNotAnError(t *testing.T) {
	// -h must exit 0: main treats flag.ErrHelp as success.
	_, err := runCLI(t, "-h")
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestDefaultCurves(t *testing.T) {
	out, err := runCLI(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# link:") {
		t.Errorf("missing link header:\n%.200s", out)
	}
	header := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# size") {
			header = line
		}
	}
	for _, col := range []string{"effective", "read", "write", "simple", "kernel", "dpdk", "40eth"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	// Default sweep is 64..1520 step 16 -> 92 rows after 2 comment lines.
	rows := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") {
			rows++
		}
	}
	if rows != 92 {
		t.Errorf("rows = %d, want 92", rows)
	}
}

func TestSingleCurveAndSizes(t *testing.T) {
	out, err := runCLI(t, "-nic", "dpdk", "-sizes", "64,1500", "-eth", "0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# size\tdpdk\n") {
		t.Errorf("header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "1500\t") {
		t.Errorf("last row %q", last)
	}
}

func TestGen4Link(t *testing.T) {
	g3, err := runCLI(t, "-nic", "effective", "-sizes", "1024")
	if err != nil {
		t.Fatal(err)
	}
	g4, err := runCLI(t, "-nic", "effective", "-sizes", "1024", "-gen", "4", "-lanes", "16")
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g4 {
		t.Error("gen/lanes flags had no effect")
	}
	if !strings.Contains(g4, "x16") {
		t.Errorf("link header:\n%s", g4)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus-flag"},
		{"-gen", "9"},
		{"-lanes", "3"},
		{"-nic", "quantum"},
		{"-sizes", "64,zero"},
		{"-sizes", "-5"},
		{"stray-arg"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}
