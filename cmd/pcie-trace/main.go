// Command pcie-trace captures the wire-exact TLP stream of a short
// benchmark run — every request, write and completion with its
// simulated timestamp — and prints it as a decoded per-packet log plus
// a summary, optionally saving the binary journal. This is the
// debugging view the paper's authors used to validate DMA engine
// implementations (§7: "the methodology was also extensively used for
// validation during chip bring-up").
//
// Examples:
//
//	pcie-trace -transfer 1024 -n 3
//	pcie-trace -bench lat_wrrd -transfer 300 -offset 16 -out run.tlpj
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
	"pciebench/internal/trace"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcie-trace:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, runs the traced
// benchmark and writes the decoded TLP log to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcie-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system   = fs.String("system", "NFP6000-HSW", "system under test")
		benchSel = fs.String("bench", "lat_rd", "lat_rd|lat_wrrd")
		transfer = fs.Int("transfer", 512, "transfer size in bytes")
		offset   = fs.Int("offset", 0, "offset from cache line start")
		n        = fs.Int("n", 2, "transactions to capture")
		out      = fs.String("out", "", "write the binary journal to this file")
		limit    = fs.Int("limit", 10000, "max records retained")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var runBench func(*bench.Target, bench.Params) (*bench.LatencyResult, error)
	switch *benchSel {
	case "lat_rd":
		runBench = bench.LatRd
	case "lat_wrrd":
		runBench = bench.LatWrRd
	default:
		return fmt.Errorf("unknown benchmark %q (want lat_rd or lat_wrrd)", *benchSel)
	}

	sys, err := sysconf.ByName(*system)
	if err != nil {
		return err
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
	if err != nil {
		return err
	}
	buf := &trace.Buffer{Limit: *limit}
	inst.RC.SetTracer(buf)

	p := bench.Params{
		WindowSize:   64 << 10,
		TransferSize: *transfer,
		Offset:       *offset,
		Cache:        bench.HostWarm,
		Transactions: *n,
		Warmup:       1,
	}
	res, err := runBench(inst.Target(), p)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "# %s on %s: %s\n", res.Name, sys.Name, p)
	fmt.Fprintf(stdout, "# measured: %s\n#\n", res.Summary)
	fmt.Fprint(stdout, trace.Dump(buf.Records))

	s := trace.Summarize(buf.Records)
	fmt.Fprintf(stdout, "#\n# %d TLPs (%d up / %d down), %d up bytes, %d down bytes, span %v\n",
		s.Records, s.UpTLPs, s.DownTLPs, s.UpBytes, s.DownBytes, s.Last-s.First)
	for kind, count := range s.ByKind {
		fmt.Fprintf(stdout, "#   %-4s x%d\n", kind, count)
	}
	if s.ByKind != nil && buf.Dropped > 0 {
		fmt.Fprintf(stdout, "# %d records dropped (limit %d)\n", buf.Dropped, *limit)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := buf.WriteTo(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# journal written to %s\n", *out)
	}
	return nil
}
