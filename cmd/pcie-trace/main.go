// Command pcie-trace captures the wire-exact TLP stream of a short
// benchmark run — every request, write and completion with its
// simulated timestamp — and prints it as a decoded per-packet log plus
// a summary, optionally saving the binary journal. This is the
// debugging view the paper's authors used to validate DMA engine
// implementations (§7: "the methodology was also extensively used for
// validation during chip bring-up").
//
// Examples:
//
//	pcie-trace -transfer 1024 -n 3
//	pcie-trace -bench lat_wrrd -transfer 300 -offset 16 -out run.tlpj
package main

import (
	"flag"
	"fmt"
	"os"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
	"pciebench/internal/trace"
)

func main() {
	var (
		system   = flag.String("system", "NFP6000-HSW", "system under test")
		benchSel = flag.String("bench", "lat_rd", "lat_rd|lat_wrrd")
		transfer = flag.Int("transfer", 512, "transfer size in bytes")
		offset   = flag.Int("offset", 0, "offset from cache line start")
		n        = flag.Int("n", 2, "transactions to capture")
		out      = flag.String("out", "", "write the binary journal to this file")
		limit    = flag.Int("limit", 10000, "max records retained")
	)
	flag.Parse()

	sys, err := sysconf.ByName(*system)
	if err != nil {
		fatal(err)
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
	if err != nil {
		fatal(err)
	}
	buf := &trace.Buffer{Limit: *limit}
	inst.RC.SetTracer(buf)

	p := bench.Params{
		WindowSize:   64 << 10,
		TransferSize: *transfer,
		Offset:       *offset,
		Cache:        bench.HostWarm,
		Transactions: *n,
		Warmup:       1,
	}
	run := bench.LatRd
	if *benchSel == "lat_wrrd" {
		run = bench.LatWrRd
	}
	res, err := run(inst.Target(), p)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s on %s: %s\n", res.Name, sys.Name, p)
	fmt.Printf("# measured: %s\n#\n", res.Summary)
	fmt.Print(trace.Dump(buf.Records))

	s := trace.Summarize(buf.Records)
	fmt.Printf("#\n# %d TLPs (%d up / %d down), %d up bytes, %d down bytes, span %v\n",
		s.Records, s.UpTLPs, s.DownTLPs, s.UpBytes, s.DownBytes, s.Last-s.First)
	for kind, count := range s.ByKind {
		fmt.Printf("#   %-4s x%d\n", kind, count)
	}
	if s.ByKind != nil && buf.Dropped > 0 {
		fmt.Printf("# %d records dropped (limit %d)\n", buf.Dropped, *limit)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := buf.WriteTo(f); err != nil {
			fatal(err)
		}
		fmt.Printf("# journal written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcie-trace:", err)
	os.Exit(1)
}
