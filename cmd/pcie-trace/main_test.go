package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the command as the shell would and captures stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestHelpIsNotAnError(t *testing.T) {
	// -h must exit 0: main treats flag.ErrHelp as success.
	_, err := runCLI(t, "-h")
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestTraceSmoke(t *testing.T) {
	out, err := runCLI(t, "-transfer", "256", "-n", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LAT_RD", "# measured:", "MRd", "CplD", "TLPs"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%.400s", want, out)
		}
	}
}

func TestTraceWrRdShowsWrites(t *testing.T) {
	out, err := runCLI(t, "-bench", "lat_wrrd", "-transfer", "128", "-n", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MWr") {
		t.Errorf("lat_wrrd trace shows no MWr TLPs:\n%.400s", out)
	}
}

func TestTraceJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.tlpj")
	out, err := runCLI(t, "-n", "1", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "journal written") {
		t.Errorf("output:\n%s", out)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("journal file is empty")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus-flag"},
		{"-bench", "bw_rd"}, // only latency benches are traceable here
		{"-system", "PDP-11"},
		{"-transfer", "0"},
		{"stray-arg"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}
