// Command pcie-served is pcie-bench as a service: a persistent HTTP
// server that accepts sweep Spec documents on the versioned v1 API,
// dedups cells against a content-addressed result cache, shards
// execution over the worker pool, and streams incremental results.
//
// Examples:
//
//	pcie-served                                  # :8080, in-memory cache
//	pcie-served -addr :9000 -cache disk -cache-dir ./sweep-cache
//	pcie-served -workers 8 -max-jobs 4 -quality full
//
//	curl -s localhost:8080/v1/registry
//	curl -s -X POST --data-binary @examples/sweeps/topo-contend.json \
//	    'localhost:8080/v1/sweeps?set=n=200'
//	curl -s localhost:8080/v1/sweeps/sw-1
//	curl -sN 'localhost:8080/v1/sweeps/sw-1/results?stream=1'
//	curl -s 'localhost:8080/v1/sweeps/sw-1/results?format=tsv'
//
// SIGINT/SIGTERM drain in-flight requests, cancel running jobs and
// exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pciebench/internal/buildinfo"
	"pciebench/internal/cache"
	_ "pciebench/internal/report" // registers the paper-figure sweeps
	"pciebench/internal/serve"
	"pciebench/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "pcie-served:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it serves until ctx is cancelled,
// then shuts down gracefully. When ready is non-nil it receives the
// bound address once the listener is up (tests pass -addr with port 0).
func run(ctx context.Context, args []string, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("pcie-served", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "per-job worker cap (0 = GOMAXPROCS); requests may ask for fewer, never more")
		maxJobs  = fs.Int("max-jobs", 2, "concurrently executing jobs; later submissions queue")
		quality  = fs.String("quality", "quick", "default sample-count quality: quick|full (requests may override)")
		cacheSel = fs.String("cache", "mem", "result cache backend: mem|disk|off")
		cacheDir = fs.String("cache-dir", "pcie-served-cache", "on-disk cache directory (with -cache disk)")
		quiet    = fs.Bool("quiet", false, "suppress per-request and per-job log lines")

		readTO  = fs.Duration("read-timeout", 30*time.Second, "per-request read deadline (headers+body; 0 = none)")
		writeTO = fs.Duration("write-timeout", 0, "per-request write deadline (0 = none; streaming results need it off or generous)")
		jobTO   = fs.Duration("job-timeout", 0, "per-job wall-clock deadline; an overrunning sweep is cancelled and reported as \"timeout\" (0 = none)")
		maxBody = fs.Int64("max-body", 4<<20, "largest accepted request body in bytes (oversized submissions get 413)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var q sweep.Quality
	switch *quality {
	case "quick":
		q = sweep.Quick
	case "full":
		q = sweep.Full
	default:
		return fmt.Errorf("-quality must be quick or full, not %q", *quality)
	}

	// Request and job goroutines log concurrently; serialize writes so
	// any io.Writer (not just *os.File) is safe to pass in.
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(stderr, format+"\n", args...)
	}

	var store cache.Store
	switch *cacheSel {
	case "mem":
		store = cache.NewMemory()
	case "disk":
		disk, err := cache.NewDisk(*cacheDir)
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		disk.Logf = logf // quarantine events are operator-facing, never quieted
		store = disk
	case "off":
	default:
		return fmt.Errorf("-cache must be mem, disk or off, not %q", *cacheSel)
	}
	srv := serve.New(serve.Config{
		Workers:    *workers,
		MaxJobs:    *maxJobs,
		Quality:    q,
		Cache:      store,
		Build:      buildinfo.Version(),
		MaxBody:    *maxBody,
		JobTimeout: *jobTO,
		Logf: func(format string, args ...any) {
			if !*quiet {
				logf(format, args...)
			}
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("pcie-served listening on %s (workers=%d max-jobs=%d quality=%s cache=%s build=%s)",
		ln.Addr(), *workers, *maxJobs, q, *cacheSel, buildinfo.Version())
	if ready != nil {
		ready(ln.Addr().String())
	}

	// Per-request socket deadlines: a stalled or malicious client can
	// hold a connection open only this long. Write stays configurable
	// (and off by default) because ?stream=1 responses legitimately
	// outlive any fixed deadline.
	hs := &http.Server{
		Handler:           srv,
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: *readTO,
		WriteTimeout:      *writeTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: cancel running jobs first — streaming
	// responses observe the terminal state and end — then drain
	// in-flight requests with a bounded deadline.
	logf("pcie-served: shutting down")
	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
