package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServed runs the real entry point on an ephemeral port and
// returns its base URL plus a shutdown func that cancels the serving
// context (the signal path) and waits for a clean exit.
func startServed(t *testing.T, extra ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	var logs bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		errc <- run(ctx, args, &logs, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("server exited before listening: %v (logs: %s)", err, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("server did not shut down")
			return nil
		}
	}
}

// TestServedRoundTrip boots the binary's run(), submits a registered
// sweep with an override, fetches its TSV and shuts down cleanly.
func TestServedRoundTrip(t *testing.T) {
	base, shutdown := startServed(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The report package's registered sweeps must be visible: that is
	// what the blank import in main.go buys.
	resp, err = http.Get(base + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	var reg []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(reg) == 0 {
		t.Fatal("registry is empty; report sweeps not linked in")
	}

	spec := `{"version": 1, "name": "served-rt",
	  "axes": [{"name": "transfer", "values": ["64", "128"]}],
	  "base": {"bench": "lat_rd", "n": "1K", "window": "8K"}}`
	resp, err = http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID      string `json:"id"`
		Results string `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}

	// The non-stream results endpoint blocks until the job finishes.
	resp, err = http.Get(base + sub.Results + "?format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	tsv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(tsv, []byte("transfer")) {
		t.Fatalf("results: %d %s", resp.StatusCode, tsv)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServedShutdownCancelsRunningJob: a SIGTERM-style cancel while a
// long job is executing must still exit promptly and cleanly.
func TestServedShutdownCancelsRunningJob(t *testing.T) {
	base, shutdown := startServed(t, "-workers", "1", "-quiet")

	spec := `{"name": "served-slow",
	  "axes": [{"name": "seed", "values": ["1","2","3","4","5","6","7","8"]}],
	  "base": {"bench": "lat_rd", "transfer": "64", "n": "1M", "window": "8K"}}`
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	start := time.Now()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown with running job: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
}

// TestServedFlagErrors: bad flags fail fast without binding a port.
func TestServedFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-quality", "extreme"},
		{"-cache", "floppy"},
		{"stray-arg"},
	} {
		var logs bytes.Buffer
		if err := run(context.Background(), args, &logs, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
