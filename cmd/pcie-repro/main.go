// Command pcie-repro regenerates every table and figure of the paper's
// evaluation: Figures 1, 2, 4a-c, 5, 6, 7a-b, 8 and 9 plus Tables 1
// and 2. TSV series suitable for gnuplot are written to the output
// directory; tables and a paper-versus-measured summary go to stdout.
//
// Every measured experiment is a declarative sweep (internal/sweep),
// so the same grids — and entirely new ones — also run standalone:
//
//	pcie-repro                      # quick run into ./repro-out
//	pcie-repro -full -out dir       # paper-scale sample counts
//	pcie-repro -only fig9           # a single experiment
//	pcie-repro -parallel 8          # sweep worker count (default GOMAXPROCS)
//	pcie-repro -list                # registered sweeps
//	pcie-repro -run fig4 gen=4,5    # a registered sweep with axis overrides
//	pcie-repro -spec my.json -format csv  # a fully custom grid from JSON
//
// Experiment points run on the internal/runner worker pool; results are
// collected in submission order, so the generated files are
// byte-identical for every -parallel value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pciebench/internal/report"
	"pciebench/internal/sweep"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcie-repro:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, dispatches to the
// sweep CLI surface (-list/-run/-spec) or regenerates the paper
// artifacts, and writes human output to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcie-repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "repro-out", "output directory for TSV series")
		full     = fs.Bool("full", false, "paper-scale sample counts (slower)")
		only     = fs.String("only", "", "run a single experiment (fig1..fig9, table1, table2)")
		parallel = fs.Int("parallel", 0, "experiment worker count (0 = GOMAXPROCS); output is identical for any value")
		simPar   = fs.Int("sim-parallel", 1, "simulation workers "+sweep.SimWorkersRange()+" for partitionable multi-endpoint fabric cells (1 = serial; output is identical for any value)")
		list     = fs.Bool("list", false, "list registered sweeps and exit")
		runName  = fs.String("run", "", "run one registered sweep; remaining args override axes (e.g. gen=4,5 lanes=16)")
		specPath = fs.String("spec", "", "run a custom sweep from a JSON spec file; remaining args override axes")
		format   = fs.String("format", "table", "sweep output format: "+strings.Join(sweep.Formats(), "|"))
		cacheDir = fs.String("cache-dir", "", "dedup sweep cells against an on-disk result cache in this directory")
		ber      = fs.String("ber", "", "with -run/-spec: override the link bit error rate axis (e.g. 1e-6)")
		cto      = fs.String("cto", "", "with -run/-spec: override the completion-timeout axis (e.g. 10us)")
		retrain  = fs.String("retrain", "", "with -run/-spec: override the link-retrain MTBF axis (e.g. 50us)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sweep.ValidateSimWorkers(*simPar); err != nil {
		return err
	}
	faultOverrides, err := faultArgs(*ber, *cto, *retrain)
	if err != nil {
		return err
	}

	q := report.Quick
	if *full {
		q = report.Full
	}
	report.SetParallelism(*parallel)

	cli := &sweep.CLI{
		List: *list, RunName: *runName, SpecPath: *specPath,
		Overrides: append(fs.Args(), faultOverrides...), Format: *format,
		Workers: *parallel, SimWorkers: *simPar, Quality: q, CacheDir: *cacheDir,
	}
	if cli.Active() {
		return cli.Execute(context.Background(), stdout, stderr)
	}
	if len(cli.Overrides) > 0 {
		return fmt.Errorf("unexpected arguments %v (axis overrides need -run or -spec)", cli.Overrides)
	}
	return reproduce(*out, *only, q, stdout)
}

// faultArgs turns the -ber/-cto/-retrain convenience flags into sweep
// axis overrides, validating values eagerly so a typo fails before any
// experiment runs.
func faultArgs(ber, cto, retrain string) ([]string, error) {
	var overrides []string
	if ber != "" {
		if _, err := sweep.ParseBER(ber); err != nil {
			return nil, fmt.Errorf("-ber: %w", err)
		}
		overrides = append(overrides, "ber="+ber)
	}
	for _, f := range []struct{ name, val string }{{"cto", cto}, {"retrain", retrain}} {
		if f.val == "" {
			continue
		}
		if _, err := sweep.ParseDuration(f.val); err != nil {
			return nil, fmt.Errorf("-%s: %w", f.name, err)
		}
		overrides = append(overrides, f.name+"="+f.val)
	}
	return overrides, nil
}

// reproduce regenerates the paper's figures and tables into dir.
func reproduce(dir, only string, q report.Quality, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	type experiment struct {
		id  string
		run func() error
	}
	writeFig := func(fig *report.Figure) error {
		path := filepath.Join(dir, fig.ID+".tsv")
		if err := os.WriteFile(path, []byte(fig.TSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", path)
		return nil
	}
	writeFigs := func(figs []*report.Figure, err error) error {
		if err != nil {
			return err
		}
		for _, f := range figs {
			if err := writeFig(f); err != nil {
				return err
			}
		}
		return nil
	}
	writeFigErr := func(fig *report.Figure, err error) error {
		if err != nil {
			return err
		}
		return writeFig(fig)
	}
	writeTable := func(name string, t *report.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		return os.WriteFile(filepath.Join(dir, name+".tsv"), []byte(t.TSV()), 0o644)
	}

	experiments := []experiment{
		{"table1", func() error { return writeTable("table1", report.Table1(), nil) }},
		{"fig1", func() error { return writeFig(report.Fig1()) }},
		{"fig2", func() error { fig, err := report.Fig2(q); return writeFigErr(fig, err) }},
		{"fig4", func() error { figs, err := report.Fig4(q); return writeFigs(figs, err) }},
		{"fig5", func() error { fig, err := report.Fig5(q); return writeFigErr(fig, err) }},
		{"fig6", func() error { fig, err := report.Fig6(q); return writeFigErr(fig, err) }},
		{"fig7", func() error { figs, err := report.Fig7(q); return writeFigs(figs, err) }},
		{"fig8", func() error { fig, err := report.Fig8(q); return writeFigErr(fig, err) }},
		{"fig9", func() error { fig, err := report.Fig9(q); return writeFigErr(fig, err) }},
		{"table2", func() error { t, err := report.Table2(q); return writeTable("table2", t, err) }},
		{"ablations", func() error {
			if err := writeFig(report.AblationMPS()); err != nil {
				return err
			}
			for _, run := range []func(report.Quality) (*report.Figure, error){
				report.AblationGen4, report.AblationWalkers, report.AblationInFlight,
			} {
				fig, err := run(q)
				if err != nil {
					return err
				}
				if err := writeFig(fig); err != nil {
					return err
				}
			}
			return nil
		}},
		{"expect", func() error {
			t, err := report.Expectations(q)
			return writeTable("expectations", t, err)
		}},
	}

	for _, e := range experiments {
		if only != "" && !strings.HasPrefix(e.id, only) && e.id != "expect" {
			continue
		}
		start := time.Now()
		fmt.Fprintf(stdout, "== %s ==\n", e.id)
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(stdout, "  (%.1fs)\n", time.Since(start).Seconds())
	}
	return nil
}
